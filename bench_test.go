// Benchmark harness: one benchmark per table and figure of the paper.
// Each benchmark regenerates its artifact end to end at small scale and
// reports the wall time per regeneration; run with
//
//	go test -bench=. -benchmem
//
// The printed tables themselves come from cmd/coach-experiments; these
// benchmarks exist so `go test -bench` exercises every experiment code
// path and tracks its cost.
package coach

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/coach-oss/coach/internal/experiments"
	"github.com/coach-oss/coach/internal/mlforest"
	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/trace"
)

var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
)

// benchContext shares one small-scale context (trace, fleets, trained
// models) across all benchmarks, mirroring how the cmd tools run with
// -preset: the trace comes from the capacity scenario preset rescaled to
// ScaleSmall, so benchmarks exercise the same declarative generator the
// scenario tests and the simulator presets do (docs/DESIGN.md §11)
// rather than the legacy GenConfig path.
func benchContext() *experiments.Context {
	benchCtxOnce.Do(func() {
		benchCtx = experiments.NewContext(experiments.ScaleSmall)
		sp, err := scenario.Preset("capacity")
		if err != nil {
			panic(err)
		}
		benchCtx.Scenario = experiments.ScaleSmall.ScenarioSpec(sp)
	})
	return benchCtx
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	ctx := benchContext()
	// Warm the shared caches outside the timed region.
	if _, err := ctx.Trace(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

// Characterization (paper §2).

func BenchmarkFig2DurationHours(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig3SizeHours(b *testing.B)           { benchExperiment(b, "fig3") }
func BenchmarkFig4Stranding(b *testing.B)           { benchExperiment(b, "fig4") }
func BenchmarkFig5Bottleneck(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig6Correlation(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig7Windows(b *testing.B)             { benchExperiment(b, "fig7") }
func BenchmarkFig8PeaksValleys(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9Consistency(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10Savings(b *testing.B)            { benchExperiment(b, "fig10") }
func BenchmarkFig11SavingsViolin(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkFig12Groups(b *testing.B)             { benchExperiment(b, "fig12") }
func BenchmarkFig17PercentileTradeoff(b *testing.B) { benchExperiment(b, "fig17") }

// Server-scale evaluation (paper §4.2, §4.4).

func BenchmarkFig15PAVATradeoff(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig18WorkloadPerf(b *testing.B) { benchExperiment(b, "fig18") }
func BenchmarkFig21Mitigation(b *testing.B)   { benchExperiment(b, "fig21") }

// Cluster-scale evaluation (paper §4.3).

func BenchmarkFig19PredictionError(b *testing.B) { benchExperiment(b, "fig19") }
func BenchmarkFig20Packing(b *testing.B)         { benchExperiment(b, "fig20") }

// Tables and overheads.

func BenchmarkTable1Fungibility(b *testing.B) { benchExperiment(b, "tab1") }
func BenchmarkTable2Workloads(b *testing.B)   { benchExperiment(b, "tab2") }
func BenchmarkSec45Overheads(b *testing.B)    { benchExperiment(b, "sec45") }

// Ablations (beyond the paper; see docs/DESIGN.md §5).

func BenchmarkAblationWindows(b *testing.B)         { benchExperiment(b, "abl-windows") }
func BenchmarkAblationPercentile(b *testing.B)      { benchExperiment(b, "abl-percentile") }
func BenchmarkAblationForest(b *testing.B)          { benchExperiment(b, "abl-forest") }
func BenchmarkAblationMonitor(b *testing.B)         { benchExperiment(b, "abl-monitor") }
func BenchmarkAblationFleetMitigation(b *testing.B) { benchExperiment(b, "abl-fleetmit") }

// BenchmarkFleetMigration regenerates the abl-fleetmig ladders
// (no-migration vs same-shard vs cross-shard live migration, docs/
// DESIGN.md §10), so bench-smoke compiles and runs the sample-boundary
// exchange path on every push; before/after numbers for the unified
// engine are recorded in BENCH_migration.json.
func BenchmarkFleetMigration(b *testing.B) { benchExperiment(b, "abl-fleetmig") }

// BenchmarkAblationFaults regenerates the abl-faults ladders (None vs
// Coach vs Coach+Recovery under the chaos fault schedule, docs/
// DESIGN.md §13), so bench-smoke drives the failure-domain engine —
// crash eviction, recovery placement, downtime attribution — on every
// push; loss/downtime deltas are recorded in BENCH_faults.json.
func BenchmarkAblationFaults(b *testing.B) { benchExperiment(b, "abl-faults") }

// BenchmarkSimRunParallel measures the sharded cluster-simulation engine
// (docs/DESIGN.md §6) at 1/2/4/8 workers on the small-scale trace. The
// predictor is trained once outside the timed region so the benchmark
// isolates the replay engine the worker pool parallelizes.
func BenchmarkSimRunParallel(b *testing.B) {
	ctx := benchContext()
	tr, err := ctx.Trace()
	if err != nil {
		b.Fatal(err)
	}
	model, err := ctx.Model(95)
	if err != nil {
		b.Fatal(err)
	}
	fleet := NewFleet(DefaultClusters(40))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := SimConfigForPolicy(PolicyCoach)
			cfg.TrainUpTo = tr.Horizon / 2
			cfg.Model = model
			cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Simulate(tr, fleet, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Placed == 0 {
					b.Fatal("nothing placed")
				}
			}
		})
	}
}

// BenchmarkServeThroughput measures the serving layer's prediction hot
// path (docs/DESIGN.md §7) at 1/8/64 concurrent clients, comparing the
// unbatched per-request path against the batcher that coalesces
// concurrent requests into single forest passes. Requests draw from the
// evaluation-period VM population (the arrivals an admission service
// actually sees), which exercises the forest path rather than the cheap
// own-history path. The model is trained once outside the timed region
// via a shared cache. On a single-CPU host the win shows up in
// allocations/op (amortized feature rows and window slices) more than in
// wall time; on multi-core hardware batched passes also reclaim the
// per-request dispatch overhead.
func BenchmarkServeThroughput(b *testing.B) {
	ctx := benchContext()
	tr, err := ctx.Trace()
	if err != nil {
		b.Fatal(err)
	}
	var fresh []*trace.VM
	for i := range tr.VMs {
		if tr.VMs[i].Start >= tr.Horizon/2 {
			fresh = append(fresh, &tr.VMs[i])
		}
	}
	if len(fresh) == 0 {
		b.Fatal("no evaluation-period VMs")
	}
	cache := NewModelCache()
	for _, mode := range []struct {
		name     string
		disabled bool
	}{
		{"unbatched", true},
		{"batched", false},
	} {
		for _, clients := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/clients=%d", mode.name, clients), func(b *testing.B) {
				cfg := DefaultServiceConfig()
				cfg.Cache = cache
				cfg.Batch.Disabled = mode.disabled
				// A small straggler window lets batches form even on a
				// single CPU, where the purely opportunistic drain runs
				// before concurrent clients get scheduled to enqueue.
				cfg.Batch.MaxWait = time.Millisecond
				svc, err := NewService(tr, NewFleet(DefaultClusters(8)), cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer svc.Close()
				if err := svc.Warm(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / clients
				if b.N%clients != 0 {
					per++
				}
				var failed atomic.Bool
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							vm := fresh[(c*per+i)%len(fresh)]
							if _, _, err := svc.Predict(vm); err != nil {
								failed.Store(true)
								return
							}
						}
					}(c)
				}
				wg.Wait()
				if failed.Load() {
					b.Fatal("prediction failed")
				}
			})
		}
	}
}

// BenchmarkServeAdmit measures the admission hot path (docs/DESIGN.md
// §15) at 1/8/64 concurrent clients under both admission modes: serial
// (mode=serial, every request takes its own forest pass, candidate scan
// and pool sweep under the shard lock) and coalesced (mode=batched,
// concurrent requests share one scheduler snapshot, one PredictMatrix
// pass and one rollout matrix, committed in arrival order). The two
// modes produce bit-identical admission decisions (pinned by the serve
// equivalence tests), so the grid differs only in throughput. Each op is
// one admit/release pair against a pressure-aware data-plane service;
// clients work disjoint strides of the evaluation-period VM population
// so ids never collide. Before/after numbers are recorded in
// BENCH_serve.json and the batched:serial ns/op ratio is gated by
// cmd/coach-benchdiff -grid serve in CI. On a single-CPU host the
// coalescing win is modest (batches stay shallow without true
// parallelism); multi-core hardware is where fleet-sized batches form.
func BenchmarkServeAdmit(b *testing.B) {
	ctx := benchContext()
	tr, err := ctx.Trace()
	if err != nil {
		b.Fatal(err)
	}
	var fresh []*trace.VM
	for i := range tr.VMs {
		if tr.VMs[i].Start >= tr.Horizon/2 {
			fresh = append(fresh, &tr.VMs[i])
		}
	}
	cache := NewModelCache()
	for _, mode := range []struct {
		name  string
		admit ServiceBatchConfig
	}{
		{"serial", ServiceBatchConfig{Disabled: true}},
		// A small straggler window lets admit batches form even on a
		// single CPU, where the opportunistic drain runs before
		// concurrent clients get scheduled to enqueue.
		{"batched", ServiceBatchConfig{MaxWait: time.Millisecond}},
	} {
		for _, clients := range []int{1, 8, 64} {
			if clients > len(fresh) {
				b.Fatalf("only %d evaluation-period VMs for %d clients", len(fresh), clients)
			}
			b.Run(fmt.Sprintf("clients=%d/mode=%s", clients, mode.name), func(b *testing.B) {
				cfg := DefaultServiceConfig()
				cfg.Cache = cache
				cfg.DataPlane = true
				cfg.AdmitPressureFrac = 0.95
				cfg.AdmitBatch = mode.admit
				svc, err := NewService(tr, NewFleet(DefaultClusters(8)), cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer svc.Close()
				if err := svc.Warm(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / clients
				if b.N%clients != 0 {
					per++
				}
				var failed atomic.Bool
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						// Client c owns the VMs at indices ≡ c (mod
						// clients): no two clients ever race on one id.
						var own []*trace.VM
						for j := c; j < len(fresh); j += clients {
							own = append(own, fresh[j])
						}
						for i := 0; i < per; i++ {
							vm := own[i%len(own)]
							res, err := svc.Admit(vm)
							if err != nil {
								failed.Store(true)
								return
							}
							if res.Admitted {
								if _, err := svc.Release(vm); err != nil {
									failed.Store(true)
									return
								}
							}
						}
					}(c)
				}
				wg.Wait()
				if failed.Load() {
					b.Fatal("admission failed")
				}
			})
		}
	}
}

// BenchmarkForestTrain measures the columnar pre-sorted training engine
// (docs/DESIGN.md §8) on small (3k-row) and large (20k-row) trace-shaped
// training sets at 1/2/4/8 tree-growth workers. The trained forest is
// byte-identical for any worker count, so the sub-benchmarks differ only
// in throughput. Before/after numbers against the seed engine are
// recorded in BENCH_forest.json; on a single-CPU host extra workers show
// no wall-clock win (the pool adds negligible overhead), while the
// algorithmic rewrite alone is the ≥2× single-threaded speedup.
func BenchmarkForestTrain(b *testing.B) {
	for _, size := range []struct {
		name string
		rows int
	}{
		{"small", 3000},
		{"large", 20000},
	} {
		data := mlforest.TraceLikeSamples(size.rows, 11)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", size.name, workers), func(b *testing.B) {
				cfg := mlforest.DefaultForestConfig()
				cfg.Workers = workers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := mlforest.Train(data, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPredictMatrix measures the forest inference hot path across a
// trees × depth × batch grid under both layouts: the per-row pointer walk
// (layout=walk, one Predict call per row — the pre-batching shape of every
// admission and what-if decision) and the level-synchronous breadth-first
// path (layout=matrix, one PredictMatrix pass over a feature-major
// RowMatrix; docs/DESIGN.md §14). The two layouts produce bit-identical
// predictions (pinned by the mlforest equivalence wall), so the grid
// differs only in throughput; each sub-benchmark reports ns/row so points
// with different batch sizes are comparable. Before/after numbers are
// recorded in BENCH_predict.json and the matrix:walk ns/row ratio is
// gated by cmd/coach-benchdiff -grid predict in CI.
func BenchmarkPredictMatrix(b *testing.B) {
	const poolRows = 4096
	pool := mlforest.TraceLikeSamples(poolRows, 23)
	for _, trees := range []int{8, 40} {
		for _, depth := range []int{6, 12} {
			cfg := mlforest.DefaultForestConfig()
			cfg.Trees = trees
			cfg.Tree.MaxDepth = depth
			f, err := mlforest.Train(mlforest.TraceLikeSamples(3000, 17), cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, batch := range []int{1, 64, 4096} {
				rows := make([][]float64, batch)
				for i := range rows {
					rows[i] = pool[i%poolRows].Features
				}
				m := mlforest.NewRowMatrix(batch, f.NumFeatures())
				for i, r := range rows {
					m.SetRow(i, r)
				}
				out := make([]float64, batch)
				grid := fmt.Sprintf("trees=%d/depth=%d/batch=%d", trees, depth, batch)
				b.Run(grid+"/layout=walk", func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						for j, r := range rows {
							out[j] = f.Predict(r)
						}
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(batch), "ns/row")
				})
				b.Run(grid+"/layout=matrix", func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						f.PredictMatrix(m, out)
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(batch), "ns/row")
				})
			}
		}
	}
}

// BenchmarkColdStart measures a serve ModelCache miss through to the first
// prediction: every iteration constructs a service with a fresh cache, so
// the timed region is dominated by training the 8 per-(resource, target)
// forests — the cold-start path the columnar engine was rebuilt to
// shorten (docs/DESIGN.md §8).
func BenchmarkColdStart(b *testing.B) {
	ctx := benchContext()
	tr, err := ctx.Trace()
	if err != nil {
		b.Fatal(err)
	}
	fresh := -1
	for i := range tr.VMs {
		if tr.VMs[i].Start >= tr.Horizon/2 {
			fresh = i
			break
		}
	}
	if fresh < 0 {
		b.Fatal("no evaluation-period VM")
	}
	fleet := NewFleet(DefaultClusters(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultServiceConfig()
		cfg.Cache = NewModelCache() // fresh cache: every iteration is a cold miss
		svc, err := NewService(tr, fleet, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := svc.Predict(&tr.VMs[fresh]); err != nil {
			b.Fatal(err)
		}
		svc.Close()
	}
}

// BenchmarkFleetTick measures the per-tick cost of the per-server memory
// data plane (memsim server + oversubscription agent) across a servers ×
// VMs grid — the inner loop the fleet-scale simulator executes once per
// simulated 5-minute sample per server (docs/DESIGN.md §9). One benchmark
// op is one fleet-wide tick: every server's working sets move, the
// hypervisor services faults under pool pressure, and the agent runs its
// monitoring/mitigation pass. Before/after numbers for the incremental
// pool accounting and the reusable tick-stats frame are recorded in
// BENCH_dataplane.json.
func BenchmarkFleetTick(b *testing.B) {
	for _, servers := range []int{4, 32} {
		for _, vms := range []int{4, 16} {
			b.Run(fmt.Sprintf("servers=%d/vms=%d", servers, vms), func(b *testing.B) {
				fleet := make([]*Server, servers)
				for s := range fleet {
					cfg := DefaultServerConfig(3*float64(vms), 2*float64(vms))
					cfg.Agent.Policy = MitigateExtend
					srv, err := NewServer(cfg)
					if err != nil {
						b.Fatal(err)
					}
					for v := 1; v <= vms; v++ {
						vm, err := NewVMMemory(v, 8, 2)
						if err != nil {
							b.Fatal(err)
						}
						if err := srv.Server.AddVM(vm); err != nil {
							b.Fatal(err)
						}
						vm.SetWSS(4)
					}
					fleet[s] = srv
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for s, srv := range fleet {
						// Deterministic drift keeps demand moving around the
						// pool limit so faults, evictions and mitigations all
						// stay on the hot path.
						wss := 4 + 3*math.Sin(float64(i+7*s)*0.1)
						for _, id := range srv.Server.VMs() {
							srv.Server.VM(id).SetWSS(wss + 0.1*float64(id))
						}
						if _, err := srv.Tick(300); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// Micro-benchmarks of the hot paths underlying the experiments.

func BenchmarkTraceGeneration(b *testing.B) {
	sp, err := scenario.Preset("capacity")
	if err != nil {
		b.Fatal(err)
	}
	sp = sp.Scaled(200, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.GenerateScenario(sp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerPlace(b *testing.B) {
	ctx := benchContext()
	tr, err := ctx.Trace()
	if err != nil {
		b.Fatal(err)
	}
	fleet := NewFleet(DefaultClusters(50))
	platform, err := NewPlatform(fleet, DefaultPlatformConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := platform.Train(tr, tr.Horizon/2); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := &tr.VMs[i%len(tr.VMs)]
		cvm, err := platform.Request(vm)
		if err != nil {
			b.Fatal(err)
		}
		cvm.ID = 1_000_000 + i // unique id per placement
		if _, ok := platform.Place(cvm); ok && i%200 == 199 {
			// Periodically drain to keep the fleet from saturating.
			b.StopTimer()
			for j := i - 199; j <= i; j++ {
				platform.Deallocate(1_000_000 + j)
			}
			b.StartTimer()
		}
	}
}

func BenchmarkMemsimTick(b *testing.B) {
	srv, err := NewServer(DefaultServerConfig(16, 8))
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		vm, err := NewVMMemory(i, 8, 2)
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Server.AddVM(vm); err != nil {
			b.Fatal(err)
		}
		vm.SetWSS(4)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Tick(1); err != nil {
			b.Fatal(err)
		}
	}
}
