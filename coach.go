// Package coach is the public API of the Coach reproduction: a system for
// all-resource oversubscription in cloud platforms that exploits temporal
// utilization patterns (Reidys et al., ASPLOS '25).
//
// The package is a facade over the internal implementation:
//
//   - GenerateTrace synthesizes an Azure-like VM trace (the substitute for
//     the paper's production telemetry).
//   - NewPlatform builds the Coach control plane — prediction model,
//     time-window scheduler and oversubscription policy — over a fleet.
//   - NewServer builds a single oversubscribed server: the hypervisor
//     memory model plus the monitoring/prediction/mitigation agent.
//   - Simulate replays a trace against a fleet under a policy and reports
//     capacity and violations (the paper's §4.3 evaluation).
//   - RunExperiment regenerates any table or figure of the paper.
//   - NewService builds the online serving entry point: a long-running,
//     concurrency-safe prediction-and-admission service with batched
//     forest inference and per-cluster sharded fleet state, exposed over
//     HTTP by cmd/coachd (see docs/api.md).
//
// See the runnable programs under examples/ for end-to-end usage.
package coach

import (
	"io"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/core"
	"github.com/coach-oss/coach/internal/experiments"
	"github.com/coach-oss/coach/internal/memsim"
	"github.com/coach-oss/coach/internal/report"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/serve"
	"github.com/coach-oss/coach/internal/sim"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
	"github.com/coach-oss/coach/internal/workload"
)

// Resource kinds and vectors.
type (
	// ResourceKind identifies CPU, Memory, Network or SSD.
	ResourceKind = resources.Kind
	// ResourceVector holds one amount per resource kind.
	ResourceVector = resources.Vector
)

// Resource kind constants.
const (
	CPU     = resources.CPU
	Memory  = resources.Memory
	Network = resources.Network
	SSD     = resources.SSD
)

// NewResourceVector builds a vector from cores, GB, Gbps and GB of SSD.
func NewResourceVector(cpu, memoryGB, networkGbps, ssdGB float64) ResourceVector {
	return resources.NewVector(cpu, memoryGB, networkGbps, ssdGB)
}

// Traces.
type (
	// Trace is a VM telemetry trace (allocations plus 5-minute
	// utilization series).
	Trace = trace.Trace
	// VM is one trace record.
	VM = trace.VM
	// TraceConfig parameterizes the synthetic generator.
	TraceConfig = trace.GenConfig
)

// DefaultTraceConfig returns the calibrated 2-week, 10-cluster default.
func DefaultTraceConfig() TraceConfig { return trace.DefaultGenConfig() }

// GenerateTrace synthesizes a trace with the paper's §2 distributional
// properties. The same config always produces the same trace.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// LoadTrace reads a trace previously written with Trace.Save.
func LoadTrace(r io.Reader) (*Trace, error) { return trace.Load(r) }

// Time windows.
type Windows = timeseries.Windows

// Fleet and clusters.
type (
	// Fleet is a server inventory grouped into clusters.
	Fleet = cluster.Fleet
	// ClusterSpec describes one cluster's hardware and server count.
	ClusterSpec = cluster.Config
)

// DefaultClusters returns the ten-cluster fleet configuration (C1-C10)
// with the given servers per cluster.
func DefaultClusters(serversPer int) []ClusterSpec { return cluster.DefaultClusters(serversPer) }

// NewFleet materializes cluster specs into a fleet.
func NewFleet(specs []ClusterSpec) *Fleet { return cluster.NewFleet(specs) }

// Policies.
type PolicyKind = scheduler.PolicyKind

// Oversubscription policies (Fig. 20).
const (
	PolicyNone      = scheduler.PolicyNone
	PolicySingle    = scheduler.PolicySingle
	PolicyCoach     = scheduler.PolicyCoach
	PolicyAggrCoach = scheduler.PolicyAggrCoach
)

// CoachVM building blocks.
type (
	// CoachVM is a VM with guaranteed and oversubscribed resource
	// portions (the paper's CVM).
	CoachVM = coachvm.CVM
	// Prediction holds per-time-window utilization predictions.
	Prediction = coachvm.Prediction
)

// Platform is the Coach control plane over a fleet.
type (
	Platform       = core.ClusterManager
	PlatformConfig = core.ClusterConfig
)

// DefaultPlatformConfig returns the deployed configuration: Coach policy,
// 6x4h windows, P95.
func DefaultPlatformConfig() PlatformConfig { return core.DefaultClusterConfig() }

// NewPlatform builds the control plane over a fleet.
func NewPlatform(fleet *Fleet, cfg PlatformConfig) (*Platform, error) {
	return core.NewClusterManager(fleet, cfg)
}

// Server-level simulation.
type (
	// Server is one oversubscribed host: hypervisor memory model plus
	// oversubscription agent.
	Server = core.ServerManager
	// ServerConfig parameterizes it.
	ServerConfig = core.ServerConfig
	// VMMemory is the per-VM memory state on a server.
	VMMemory = memsim.VMMem
	// MemoryTickStats reports one VM's per-tick memory behaviour.
	MemoryTickStats = memsim.TickStats
	// MemoryTickFrame is one tick's per-VM stats in deterministic
	// (ascending VM id) order, returned by Server.Tick; the server owns
	// and reuses it across ticks.
	MemoryTickFrame = memsim.TickFrame
	// MemoryTotals are a server's cumulative mitigation and paging
	// volumes (trimmed/extended/migrated/faulted/stolen GB).
	MemoryTotals = memsim.Totals
	// MitigationPolicy selects None/Trim/Extend/Migrate.
	MitigationPolicy = agent.Policy
	// MitigationMode selects Reactive or Proactive.
	MitigationMode = agent.Mode
	// MigrationConfig parameterizes the unified live-migration engine
	// (docs/DESIGN.md §10): the pre-copy dirty fraction that
	// demand-faults at the target, the projected pool occupancy above
	// which a server is not a migration target, and whether migrations
	// may land cross-shard. The simulator and coachd expose its knobs as
	// MigrationDirtyFrac / MigrationPressureFrac / CrossShardMigration
	// on their configs.
	MigrationConfig = core.MigrationConfig
	// MigrationPlan records one landed migration: source and destination
	// servers (capacity bookkeeping and memory move together), the
	// pre-copied volume that arrived resident, and whether the VM
	// re-landed on its source because nothing could take it.
	MigrationPlan = core.MigrationPlan
)

// Mitigation policy and mode constants (§3.4, §4.4).
const (
	MitigateNone    = agent.PolicyNone
	MitigateTrim    = agent.PolicyTrim
	MitigateExtend  = agent.PolicyExtend
	MitigateMigrate = agent.PolicyMigrate
	Reactive        = agent.Reactive
	Proactive       = agent.Proactive
)

// DefaultServerConfig returns a server with the default hardware model and
// a reactive trim-only agent.
func DefaultServerConfig(poolGB, unallocGB float64) ServerConfig {
	return core.DefaultServerConfig(poolGB, unallocGB)
}

// DefaultMigrationConfig returns the migration engine defaults: a 20%
// pre-copy dirty fraction and a 75% projected-occupancy pressure bar,
// same-shard only.
func DefaultMigrationConfig() MigrationConfig { return core.DefaultMigrationConfig() }

// NewServer builds a single oversubscribed server.
func NewServer(cfg ServerConfig) (*Server, error) { return core.NewServerManager(cfg) }

// NewVMMemory creates the memory state for a VM of sizeGB with a paGB
// guaranteed (PA-backed) portion; the remainder is oversubscribed VA.
func NewVMMemory(id int, sizeGB, paGB float64) (*VMMemory, error) {
	return memsim.NewVMMem(id, sizeGB, paGB)
}

// Workloads.
type (
	// Workload describes one Table-2 application model.
	Workload = workload.Spec
	// WorkloadRunner drives a workload against a server VM.
	WorkloadRunner = workload.Runner
)

// Workloads returns the paper's Table 2 suite.
func Workloads() []Workload { return workload.Table2() }

// WorkloadByName looks up one Table 2 entry.
func WorkloadByName(name string) (Workload, error) { return workload.SpecByName(name) }

// NewWorkloadRunner attaches a workload to a VM's memory state.
func NewWorkloadRunner(spec Workload, vm *VMMemory, cfg memsim.Config) (*WorkloadRunner, error) {
	return workload.NewRunner(spec, vm, cfg)
}

// Cluster-scale simulation.
type (
	// SimConfig parameterizes a cluster simulation run. Its Workers
	// field bounds how many cluster shards replay concurrently
	// (0 = GOMAXPROCS); the Result is identical for any value. Setting
	// DataPlane runs the per-server memory data plane (memsim +
	// oversubscription agent) during replay under MitigationPolicy /
	// MitigationMode; CrossShardMigration additionally lets completed
	// live migrations re-home across cluster shards through the
	// deterministic sample-boundary exchange (docs/DESIGN.md §10).
	SimConfig = sim.Config
	// SimResult summarizes capacity and violations; its DataPlane field
	// (non-nil when SimConfig.DataPlane is set) aggregates fleet-wide
	// mitigation metrics.
	SimResult = sim.Result
	// DataPlaneResult aggregates the fleet-wide memory data plane of one
	// simulation run: mitigation and paging volumes, agent counters and
	// the access-latency distribution.
	DataPlaneResult = sim.DataPlaneResult
)

// SimConfigForPolicy returns the §4.3 configuration for a policy.
func SimConfigForPolicy(p PolicyKind) SimConfig { return sim.ConfigForPolicy(p) }

// Simulate replays tr against fleet under cfg. The fleet is partitioned
// into one independent shard per cluster and shards replay concurrently
// on a worker pool (see SimConfig.Workers); per-shard results merge
// deterministically, so the Result is byte-identical for any worker
// count.
func Simulate(tr *Trace, fleet *Fleet, cfg SimConfig) (*SimResult, error) {
	return sim.Run(tr, fleet, cfg)
}

// Experiments.
type (
	// Table is a printable experiment result.
	Table = report.Table
	// ExperimentInfo describes one registered experiment.
	ExperimentInfo struct {
		ID         string
		Title      string
		PaperClaim string
	}
)

// Experiments lists every registered table/figure experiment.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, PaperClaim: e.PaperClaim})
	}
	return out
}

// RunExperiment regenerates one table/figure at the given scale
// ("small", "medium" or "full").
func RunExperiment(id, scale string) ([]*Table, error) {
	s, err := experiments.ParseScale(scale)
	if err != nil {
		return nil, err
	}
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(experiments.NewContext(s))
}

// DefaultMemoryConfig returns the hardware parameters of the simulated
// server (latencies, bandwidths).
func DefaultMemoryConfig() memsim.Config { return memsim.DefaultConfig() }

// Serving.
type (
	// Service is the online prediction-and-admission server: the
	// long-term predictor, time-window scheduler and CoachVM shaping
	// behind a concurrency-safe API with batched inference. cmd/coachd
	// serves it over HTTP (see docs/api.md); Service.Handler exposes the
	// same API for embedding.
	Service = serve.Service
	// ServiceConfig parameterizes a Service: policy, windows, percentile,
	// prediction batching and the shared trained-model cache.
	ServiceConfig = serve.Config
	// ServiceBatchConfig tunes how concurrent predictions coalesce into
	// single forest passes.
	ServiceBatchConfig = serve.BatchConfig
	// ModelCache memoizes trained predictors by (trace, config) so cold
	// starts pay forest training once; share one across Services to reuse
	// models.
	ModelCache = serve.ModelCache
	// AdmitResult reports one admission decision.
	AdmitResult = serve.AdmitResult
	// ServiceStats snapshots admission counters, batching effectiveness,
	// model-cache behaviour and the fleet data plane.
	ServiceStats = serve.Stats
	// ServiceDataPlaneStats aggregates the serving fleet's memory data
	// plane (pool occupancy, mitigation and paging volumes); enabled via
	// ServiceConfig.DataPlane and advanced by Service.TickDataPlane.
	ServiceDataPlaneStats = serve.DataPlaneStats
)

// NewModelCache returns an empty trained-model cache for sharing across
// services.
func NewModelCache() *ModelCache { return serve.NewModelCache() }

// DefaultServiceConfig returns the deployed serving configuration: Coach
// policy, 6x4h windows, P95, opportunistic batching.
func DefaultServiceConfig() ServiceConfig { return serve.DefaultConfig() }

// NewService builds a prediction-and-admission service over a trace and a
// fleet. The model trains lazily through the config's cache on the first
// prediction (or Service.Warm); Close drains in-flight requests.
func NewService(tr *Trace, fleet *Fleet, cfg ServiceConfig) (*Service, error) {
	return serve.New(tr, fleet, cfg)
}
