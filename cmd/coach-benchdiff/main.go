// Command coach-benchdiff gates CI on a committed benchmark-grid
// baseline: it parses `go test -bench` output for one of the repo's
// two-variant benchmark grids and compares every grid point against the
// matching BENCH_*.json file. Exit status 1 means a regression (or a
// missing grid point).
//
// Usage:
//
//	go test -run=NONE -bench='^BenchmarkSimCore$' -benchtime=3x . > out.txt
//	coach-benchdiff -grid simcore [-tolerance 0.25] out.txt
//
//	go test -run=NONE -bench='^BenchmarkPredictMatrix$' . > out.txt
//	coach-benchdiff -grid predict [-tolerance 0.25] out.txt
//
//	go test -run=NONE -bench='^BenchmarkServeAdmit$' . > out.txt
//	coach-benchdiff -grid serve [-tolerance 0.5] out.txt
//
// With no file argument the bench output is read from stdin.
//
// Each grid measures the same work under two variants — simcore runs the
// dense reference replay loop against the event-driven core, predict runs
// the per-row pointer walk against the level-synchronous PredictMatrix
// path, serve runs serial per-request admission against the coalesced
// batched admit path — and the checks are chosen to be meaningful across
// machines (raw ns/op on shared CI runners is far too noisy to gate on):
//
//   - visits/op, where the grid reports it (simcore), must match the
//     baseline within the tolerance for each variant. The count is
//     deterministic, so any drift is a behavioural change: the event
//     core visiting VMs it used to skip is exactly the regression this
//     gate exists to catch.
//   - the variant ratio (event:dense ns/op for simcore, matrix:walk
//     ns/row for predict) must not exceed its baseline ratio by more
//     than the tolerance. Comparing the two variants on the same host in
//     the same run cancels machine speed out of the gate; for predict
//     this is the batched-inference speedup recorded in
//     BENCH_predict.json, so the gate fires when the level-synchronous
//     path loses ground to the walk it replaced. For serve the ratio is
//     batched:serial admit ns/op per client count (BENCH_serve.json), so
//     the gate fires when admission coalescing stops paying for itself.
//
// Baseline grid points whose names never appear in the bench output fail
// the gate too — a renamed or silently skipped benchmark would otherwise
// pass forever. Entries under "full_scale" in the baseline are recorded
// for documentation (the opt-in COACH_BENCH_FULL acceptance run) and are
// compared only when present in the output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// engineSample is one (grid point, engine) measurement.
type engineSample struct {
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerRow    float64 `json:"ns_per_row,omitempty"`
	VisitsPerOp float64 `json:"visits_per_op,omitempty"`
}

// gridPoint is one grid configuration measured under both variants. The
// simcore grid fills dense/event, the predict grid walk/matrix, the
// serve grid serial/batched.
type gridPoint struct {
	Dense   *engineSample `json:"dense,omitempty"`
	Event   *engineSample `json:"event,omitempty"`
	Walk    *engineSample `json:"walk,omitempty"`
	Matrix  *engineSample `json:"matrix,omitempty"`
	Serial  *engineSample `json:"serial,omitempty"`
	Batched *engineSample `json:"batched,omitempty"`
}

func (p *gridPoint) sample(name string) *engineSample {
	switch name {
	case "dense":
		return p.Dense
	case "event":
		return p.Event
	case "walk":
		return p.Walk
	case "matrix":
		return p.Matrix
	case "serial":
		return p.Serial
	case "batched":
		return p.Batched
	}
	return nil
}

func (p *gridPoint) setSample(name string, s *engineSample) {
	switch name {
	case "dense":
		p.Dense = s
	case "event":
		p.Event = s
	case "walk":
		p.Walk = s
	case "matrix":
		p.Matrix = s
	case "serial":
		p.Serial = s
	case "batched":
		p.Batched = s
	}
}

// gridSpec describes one gated benchmark grid: which path segment names
// the variant, which variant is the reference and which the optimized
// path, and which reported metric feeds the ratio check.
type gridSpec struct {
	baseline   string // default -baseline
	seg        string // variant path-segment prefix, e.g. "engine="
	base, alt  string // reference and optimized variant names
	metricName string // reported metric feeding the ratio check
	metric     func(*engineSample) float64
}

var grids = map[string]gridSpec{
	"simcore": {
		baseline: "BENCH_simcore.json", seg: "engine=",
		base: "dense", alt: "event",
		metricName: "ns/op", metric: func(s *engineSample) float64 { return s.NsPerOp },
	},
	"predict": {
		baseline: "BENCH_predict.json", seg: "layout=",
		base: "walk", alt: "matrix",
		metricName: "ns/row", metric: func(s *engineSample) float64 { return s.NsPerRow },
	},
	"serve": {
		baseline: "BENCH_serve.json", seg: "mode=",
		base: "serial", alt: "batched",
		metricName: "ns/op", metric: func(s *engineSample) float64 { return s.NsPerOp },
	},
}

// baseline mirrors BENCH_simcore.json. Narrative fields (description,
// analysis) are carried so the file stays self-documenting; only the two
// grids matter here.
type baseline struct {
	Description string               `json:"description"`
	Benchmarks  map[string]gridPoint `json:"benchmarks"`
	FullScale   map[string]gridPoint `json:"full_scale"`
	Analysis    json.RawMessage      `json:"analysis"`
}

func main() {
	gridName := flag.String("grid", "simcore", "benchmark grid to gate: simcore, predict or serve")
	baselinePath := flag.String("baseline", "", "committed baseline JSON (defaults per -grid)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed relative drift for visits/op and for the variant ratio")
	flag.Parse()

	spec, ok := grids[*gridName]
	if !ok {
		fatal(fmt.Errorf("unknown -grid %q (want simcore, predict or serve)", *gridName))
	}
	if *baselinePath == "" {
		*baselinePath = spec.baseline
	}

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in, spec)
	if err != nil {
		fatal(err)
	}

	var failures []string
	checked := 0
	for _, grid := range []struct {
		name     string
		points   map[string]gridPoint
		required bool
	}{
		{"benchmarks", base.Benchmarks, true},
		{"full_scale", base.FullScale, false},
	} {
		for _, key := range sortedKeys(grid.points) {
			want := grid.points[key]
			have, ok := got[key]
			if !ok {
				if grid.required {
					failures = append(failures, fmt.Sprintf("%s: grid point missing from bench output", key))
				}
				continue
			}
			checked++
			failures = append(failures, checkPoint(key, want, have, *tolerance, spec)...)
		}
	}
	if checked == 0 {
		failures = append(failures, fmt.Sprintf("no baseline grid point found in bench output (did the %s grid run?)", *gridName))
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("coach-benchdiff: %d grid points within %.0f%% of %s\n", checked, 100**tolerance, *baselinePath)
}

// checkPoint compares one measured grid point against its baseline.
func checkPoint(key string, want, have gridPoint, tol float64, spec gridSpec) []string {
	var out []string
	for _, name := range []string{spec.base, spec.alt} {
		w, h := want.sample(name), have.sample(name)
		if w == nil {
			continue
		}
		if h == nil {
			out = append(out, fmt.Sprintf("%s: %s%s missing from bench output", key, spec.seg, name))
			continue
		}
		if drift := relDrift(h.VisitsPerOp, w.VisitsPerOp); drift > tol {
			out = append(out, fmt.Sprintf("%s %s%s: visits/op %.0f vs baseline %.0f (%+.0f%%)",
				key, spec.seg, name, h.VisitsPerOp, w.VisitsPerOp, 100*(h.VisitsPerOp/w.VisitsPerOp-1)))
		}
	}
	wb, wa := want.sample(spec.base), want.sample(spec.alt)
	hb, ha := have.sample(spec.base), have.sample(spec.alt)
	if wb != nil && wa != nil && hb != nil && ha != nil &&
		spec.metric(wb) > 0 && spec.metric(hb) > 0 {
		wantRatio := spec.metric(wa) / spec.metric(wb)
		haveRatio := spec.metric(ha) / spec.metric(hb)
		if haveRatio > wantRatio*(1+tol) {
			out = append(out, fmt.Sprintf("%s: %s:%s %s ratio %.2f vs baseline %.2f (the %s path lost ground to the %s reference)",
				key, spec.alt, spec.base, spec.metricName, haveRatio, wantRatio, spec.alt, spec.base))
		}
	}
	return out
}

// relDrift is |have-want|/want, treating a zero baseline as only
// matching zero.
func relDrift(have, want float64) float64 {
	if want == 0 {
		if have == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(have-want) / want
}

// parseBench reads `go test -bench` output and folds the two variant
// sub-benchmarks of each grid point together. Keys match the baseline's:
// the benchmark name with the "Benchmark" prefix, the GOMAXPROCS "-N"
// suffix and the variant path segment removed, e.g.
// "SimCore/sparse-churn/vms=1000/days=7/workers=1",
// "PredictMatrix/trees=40/depth=12/batch=64" or
// "ServeAdmit/clients=64".
func parseBench(r io.Reader, spec gridSpec) (map[string]gridPoint, error) {
	out := make(map[string]gridPoint)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > strings.LastIndex(name, "/") {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		key, variant, ok := splitVariant(name, spec.seg)
		if !ok {
			continue
		}
		s := engineSample{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = v
			case "ns/row":
				s.NsPerRow = v
			case "visits/op":
				s.VisitsPerOp = v
			}
		}
		if variant != spec.base && variant != spec.alt {
			continue
		}
		p := out[key]
		p.setSample(variant, &s)
		out[key] = p
	}
	return out, sc.Err()
}

// splitVariant removes the variant path segment (e.g. "engine=X",
// "layout=X") from a benchmark name, returning the remaining key and the
// variant.
func splitVariant(name, segPrefix string) (key, variant string, ok bool) {
	segs := strings.Split(name, "/")
	rest := segs[:0]
	for _, seg := range segs {
		if v, found := strings.CutPrefix(seg, segPrefix); found {
			variant = v
			continue
		}
		rest = append(rest, seg)
	}
	if variant == "" {
		return "", "", false
	}
	return strings.Join(rest, "/"), variant, true
}

func loadBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in baseline", path)
	}
	return &b, nil
}

func sortedKeys(m map[string]gridPoint) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coach-benchdiff:", err)
	os.Exit(1)
}
