// Command coach-benchdiff gates CI on the simulator-core benchmark grid:
// it parses `go test -bench` output for the BenchmarkSimCore grid and
// compares every grid point against the committed BENCH_simcore.json
// baseline. Exit status 1 means a regression (or a missing grid point).
//
// Usage:
//
//	go test -run=NONE -bench='^BenchmarkSimCore$' -benchtime=3x . > out.txt
//	coach-benchdiff -baseline BENCH_simcore.json [-tolerance 0.25] out.txt
//
// With no file argument the bench output is read from stdin.
//
// Two checks run per grid point, chosen to be meaningful across machines
// (raw ns/op on shared CI runners is far too noisy to gate on):
//
//   - visits/op — the number of placed-VM records the shard loop touched
//     per replay, reported via sim.Config.VisitCounter — must match the
//     baseline within the tolerance for each engine. The count is
//     deterministic, so any drift is a behavioural change: the event
//     core visiting VMs it used to skip is exactly the regression this
//     gate exists to catch.
//   - the event:dense ns/op ratio must not exceed its baseline ratio by
//     more than the tolerance. Comparing the two engines on the same
//     host in the same run cancels machine speed out of the gate.
//
// Baseline grid points whose names never appear in the bench output fail
// the gate too — a renamed or silently skipped benchmark would otherwise
// pass forever. Entries under "full_scale" in the baseline are recorded
// for documentation (the opt-in COACH_BENCH_FULL acceptance run) and are
// compared only when present in the output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// engineSample is one (grid point, engine) measurement.
type engineSample struct {
	NsPerOp     float64 `json:"ns_per_op"`
	VisitsPerOp float64 `json:"visits_per_op"`
}

// gridPoint is one preset/size/workers configuration measured under both
// engines.
type gridPoint struct {
	Dense *engineSample `json:"dense"`
	Event *engineSample `json:"event"`
}

// baseline mirrors BENCH_simcore.json. Narrative fields (description,
// analysis) are carried so the file stays self-documenting; only the two
// grids matter here.
type baseline struct {
	Description string               `json:"description"`
	Benchmarks  map[string]gridPoint `json:"benchmarks"`
	FullScale   map[string]gridPoint `json:"full_scale"`
	Analysis    json.RawMessage      `json:"analysis"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_simcore.json", "committed baseline JSON")
	tolerance := flag.Float64("tolerance", 0.25, "allowed relative drift for visits/op and for the event:dense ns/op ratio")
	flag.Parse()

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		fatal(err)
	}

	var failures []string
	checked := 0
	for _, grid := range []struct {
		name     string
		points   map[string]gridPoint
		required bool
	}{
		{"benchmarks", base.Benchmarks, true},
		{"full_scale", base.FullScale, false},
	} {
		for _, key := range sortedKeys(grid.points) {
			want := grid.points[key]
			have, ok := got[key]
			if !ok {
				if grid.required {
					failures = append(failures, fmt.Sprintf("%s: grid point missing from bench output", key))
				}
				continue
			}
			checked++
			failures = append(failures, checkPoint(key, want, have, *tolerance)...)
		}
	}
	if checked == 0 {
		failures = append(failures, "no baseline grid point found in bench output (did BenchmarkSimCore run?)")
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("coach-benchdiff: %d grid points within %.0f%% of %s\n", checked, 100**tolerance, *baselinePath)
}

// checkPoint compares one measured grid point against its baseline.
func checkPoint(key string, want, have gridPoint, tol float64) []string {
	var out []string
	for _, e := range []struct {
		name       string
		want, have *engineSample
	}{{"dense", want.Dense, have.Dense}, {"event", want.Event, have.Event}} {
		if e.want == nil {
			continue
		}
		if e.have == nil {
			out = append(out, fmt.Sprintf("%s: engine=%s missing from bench output", key, e.name))
			continue
		}
		if drift := relDrift(e.have.VisitsPerOp, e.want.VisitsPerOp); drift > tol {
			out = append(out, fmt.Sprintf("%s engine=%s: visits/op %.0f vs baseline %.0f (%+.0f%%)",
				key, e.name, e.have.VisitsPerOp, e.want.VisitsPerOp, 100*(e.have.VisitsPerOp/e.want.VisitsPerOp-1)))
		}
	}
	if want.Dense != nil && want.Event != nil && have.Dense != nil && have.Event != nil &&
		want.Dense.NsPerOp > 0 && have.Dense.NsPerOp > 0 {
		wantRatio := want.Event.NsPerOp / want.Dense.NsPerOp
		haveRatio := have.Event.NsPerOp / have.Dense.NsPerOp
		if haveRatio > wantRatio*(1+tol) {
			out = append(out, fmt.Sprintf("%s: event:dense ns/op ratio %.2f vs baseline %.2f (event core slowed down relative to the reference loop)",
				key, haveRatio, wantRatio))
		}
	}
	return out
}

// relDrift is |have-want|/want, treating a zero baseline as only
// matching zero.
func relDrift(have, want float64) float64 {
	if want == 0 {
		if have == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(have-want) / want
}

// parseBench reads `go test -bench` output and folds the engine=dense /
// engine=event sub-benchmarks of each grid point together. Keys match
// the baseline's: the benchmark name with the "Benchmark" prefix, the
// GOMAXPROCS "-N" suffix and the "engine=X/" path segment removed, e.g.
// "SimCore/sparse-churn/vms=1000/days=7/workers=1".
func parseBench(r io.Reader) (map[string]gridPoint, error) {
	out := make(map[string]gridPoint)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > strings.LastIndex(name, "/") {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		key, engine, ok := splitEngine(name)
		if !ok {
			continue
		}
		s := engineSample{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = v
			case "visits/op":
				s.VisitsPerOp = v
			}
		}
		p := out[key]
		switch engine {
		case "dense":
			p.Dense = &s
		case "event":
			p.Event = &s
		}
		out[key] = p
	}
	return out, sc.Err()
}

// splitEngine removes the "engine=X" path segment from a benchmark name,
// returning the remaining key and the engine.
func splitEngine(name string) (key, engine string, ok bool) {
	segs := strings.Split(name, "/")
	rest := segs[:0]
	for _, seg := range segs {
		if v, found := strings.CutPrefix(seg, "engine="); found {
			engine = v
			continue
		}
		rest = append(rest, seg)
	}
	if engine == "" {
		return "", "", false
	}
	return strings.Join(rest, "/"), engine, true
}

func loadBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in baseline", path)
	}
	return &b, nil
}

func sortedKeys(m map[string]gridPoint) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coach-benchdiff:", err)
	os.Exit(1)
}
