// Command coach-sim runs the cluster-scale simulation (§4.3): it replays a
// synthetic trace against a fixed fleet under one or more oversubscription
// policies and reports placed capacity and performance violations. With
// -data-plane it additionally runs the per-server memory data plane
// (memsim + oversubscription agent) during replay and reports fleet-wide
// mitigation metrics per mitigation policy (§4.4 at fleet scale).
//
// Usage:
//
//	coach-sim [-scale small|medium|full] [-preset NAME|spec.txt]
//	          [-policy None|Single|Coach|AggrCoach|all]
//	          [-percentile 95] [-windows 6] [-fleet-frac 0.55] [-workers 0]
//	          [-train-workers 0]
//	          [-data-plane] [-mitigation None|Trim|Extend|Migrate|all]
//	          [-mitigation-mode Reactive|Proactive] [-dp-pool-frac 0.02]
//	          [-cross-shard] [-engine event|dense]
//
// -preset replays a declarative workload scenario (internal/scenario)
// instead of the calibrated GenConfig trace: a shipped preset name or a
// path to a spec file, rescaled to the chosen -scale.
//
// -cross-shard lets completed live migrations escape their home cluster
// shard through the simulator's sample-boundary exchange (docs/DESIGN.md
// §10); results stay byte-identical for any -workers value.
//
// -engine selects the replay core (docs/DESIGN.md §12): "event" (the
// default) drives each shard from a calendar queue of utilization change
// events and skips steady data-plane servers; "dense" is the reference
// loop. Both produce byte-identical results — -engine only changes speed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/experiments"
	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/report"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/sim"
	"github.com/coach-oss/coach/internal/timeseries"
)

func main() {
	scale := flag.String("scale", "medium", "input scale: small, medium or full")
	preset := flag.String("preset", "", "workload scenario: a preset name ("+strings.Join(scenario.PresetNames, ", ")+") or a spec file path; empty uses the calibrated GenConfig trace")
	policy := flag.String("policy", "all", "None, Single, Coach, AggrCoach or all")
	percentile := flag.Float64("percentile", 0, "override prediction percentile (0 = policy default)")
	windows := flag.Int("windows", 6, "time windows per day")
	fleetFrac := flag.Float64("fleet-frac", 0.55, "fleet capacity as a fraction of peak demand")
	workers := flag.Int("workers", 0, "shard replay workers (0 = GOMAXPROCS); results are identical for any value")
	trainWorkers := flag.Int("train-workers", 0, "goroutines growing forest trees during model training (0 = GOMAXPROCS); the model is identical for any value")
	dataPlane := flag.Bool("data-plane", false, "run the per-server memory data plane (memsim + agent) during replay")
	mitigation := flag.String("mitigation", "all", "mitigation policy: None, Trim, Extend, Migrate or all (requires -data-plane)")
	mitigationMode := flag.String("mitigation-mode", "Reactive", "mitigation triggering: Reactive or Proactive")
	dpPoolFrac := flag.Float64("dp-pool-frac", 0.02, "oversubscribed pool as a fraction of server memory; small values provoke the contention the mitigation ladder resolves")
	crossShard := flag.Bool("cross-shard", false, "let completed live migrations land in other cluster shards via the sample-boundary exchange (requires -data-plane)")
	engine := flag.String("engine", "event", "replay core: event (calendar-queue, skips unchanged VMs and steady servers) or dense (reference loop); results are byte-identical")
	flag.Parse()

	s, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	ctx := experiments.NewContext(s)
	ctx.TrainWorkers = *trainWorkers
	if *preset != "" {
		sp, err := scenario.Load(*preset)
		if err != nil {
			fatal(err)
		}
		ctx.Scenario = s.ScenarioSpec(sp)
	}
	tr, err := ctx.Trace()
	if err != nil {
		fatal(err)
	}
	fleet, err := ctx.CapacityFleet(*fleetFrac)
	if err != nil {
		fatal(err)
	}

	policies, err := parsePolicies(*policy)
	if err != nil {
		fatal(err)
	}
	if *dataPlane && *policy == "all" {
		// One scheduler policy per data-plane sweep; default to AggrCoach,
		// whose P50 guaranteed portions exercise the oversubscribed path.
		policies = []scheduler.PolicyKind{scheduler.PolicyAggrCoach}
	}

	mkConfig := func(p scheduler.PolicyKind) sim.Config {
		cfg := sim.ConfigForPolicy(p)
		cfg.Windows = timeseries.Windows{PerDay: *windows}
		cfg.TrainUpTo = tr.Horizon / 2
		cfg.Workers = *workers
		cfg.Engine = eng
		cfg.LongTerm.Forest.Workers = *trainWorkers
		if *percentile > 0 {
			cfg.Percentile = *percentile
		}
		return cfg
	}

	t := &report.Table{
		Title: fmt.Sprintf("Cluster simulation (%s scale, %d servers, %dx%gh windows)",
			s, len(fleet.Servers), *windows, 24/float64(*windows)),
		Headers: []string{"policy", "requested", "placed", "placed %", "oversubscribed",
			"CPU viol %", "mem viol %", "servers used", "over-alloc mem %", "under-alloc mem %"},
	}
	addRow := func(res *sim.Result, p scheduler.PolicyKind) {
		t.AddRow(p.String(), res.Requested, res.Placed, 100*res.PlacedFrac(),
			res.Oversubscribed, 100*res.CPUViolationFrac(), 100*res.MemViolationFrac(),
			res.UsedServers, 100*res.MeanOverAllocFrac(resources.Memory),
			100*res.UnderAllocFrac(resources.Memory))
	}

	if !*dataPlane {
		for _, p := range policies {
			res, err := sim.Run(tr, fleet, mkConfig(p))
			if err != nil {
				fatal(fmt.Errorf("%s: %w", p, err))
			}
			addRow(res, p)
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	mode, err := agent.ParseMode(*mitigationMode)
	if err != nil {
		fatal(err)
	}
	mits, err := parseMitigations(*mitigation)
	if err != nil {
		fatal(err)
	}
	p := policies[0]
	// The mitigation policy never affects training: train the predictor
	// once and share it across the sweep.
	cfg := mkConfig(p)
	if p != scheduler.PolicyNone {
		ltCfg := cfg.LongTerm
		ltCfg.Windows = cfg.Windows
		ltCfg.Percentile = cfg.Percentile
		model, err := predict.TrainLongTerm(tr, cfg.TrainUpTo, ltCfg)
		if err != nil {
			fatal(err)
		}
		cfg.Model = model
	}
	title := fmt.Sprintf("Fleet memory data plane (%s scheduler, %s triggering, pool %g%% of server memory",
		p, mode, 100**dpPoolFrac)
	if *crossShard {
		title += ", cross-shard migration"
	}
	dpTable := &report.Table{
		Title: title + ")",
		Headers: []string{"mitigation", "contentions", "trims", "extends", "migrations",
			"landed same/cross/failed", "trimmed GB", "extended GB", "migrated GB",
			"hard-fault GB", "soft-fault %", "stolen GB", "P50 ns", "P99 ns", "max ns"},
	}
	for i, m := range mits {
		cfg.DataPlane = true
		cfg.MitigationPolicy = m
		cfg.MitigationMode = mode
		cfg.DataPlanePoolFrac = *dpPoolFrac
		cfg.DataPlaneUnallocFrac = *dpPoolFrac
		cfg.CrossShardMigration = *crossShard
		res, err := sim.Run(tr, fleet, cfg)
		if err != nil {
			fatal(fmt.Errorf("%s/%s: %w", p, m, err))
		}
		if i == 0 {
			// Capacity results do not depend on the mitigation policy.
			addRow(res, p)
		}
		dp := res.DataPlane
		dpTable.AddRow(m.String(), dp.Counters.Contentions, dp.Counters.Trims,
			dp.Counters.Extends, dp.Counters.Migrations,
			fmt.Sprintf("%d/%d/%d", dp.SameShardMigrations, dp.CrossShardMigrations, dp.FailedMigrations),
			dp.Totals.TrimmedGB, dp.Totals.ExtendedGB, dp.Totals.MigratedGB,
			dp.Totals.HardFaultGB, 100*dp.SoftFaultFrac(), dp.Totals.StolenGB,
			dp.AccessP50Ns(), dp.AccessP99Ns(), dp.AccessMaxNs())
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()
	if err := dpTable.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func parsePolicies(s string) ([]scheduler.PolicyKind, error) {
	if s == "all" {
		return scheduler.Policies, nil
	}
	for _, p := range scheduler.Policies {
		if p.String() == s {
			return []scheduler.PolicyKind{p}, nil
		}
	}
	return nil, fmt.Errorf("unknown policy %q", s)
}

func parseMitigations(s string) ([]agent.Policy, error) {
	if s == "all" {
		return []agent.Policy{agent.PolicyNone, agent.PolicyTrim, agent.PolicyExtend, agent.PolicyMigrate}, nil
	}
	p, err := agent.ParsePolicy(s)
	if err != nil {
		return nil, err
	}
	return []agent.Policy{p}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coach-sim:", err)
	os.Exit(1)
}
