// Command coach-sim runs the cluster-scale simulation (§4.3): it replays a
// synthetic trace against a fixed fleet under one or more oversubscription
// policies and reports placed capacity and performance violations.
//
// Usage:
//
//	coach-sim [-scale small|medium|full] [-policy None|Single|Coach|AggrCoach|all]
//	          [-percentile 95] [-windows 6] [-fleet-frac 0.55] [-workers 0]
//	          [-train-workers 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/coach-oss/coach/internal/experiments"
	"github.com/coach-oss/coach/internal/report"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/sim"
	"github.com/coach-oss/coach/internal/timeseries"
)

func main() {
	scale := flag.String("scale", "medium", "input scale: small, medium or full")
	policy := flag.String("policy", "all", "None, Single, Coach, AggrCoach or all")
	percentile := flag.Float64("percentile", 0, "override prediction percentile (0 = policy default)")
	windows := flag.Int("windows", 6, "time windows per day")
	fleetFrac := flag.Float64("fleet-frac", 0.55, "fleet capacity as a fraction of peak demand")
	workers := flag.Int("workers", 0, "shard replay workers (0 = GOMAXPROCS); results are identical for any value")
	trainWorkers := flag.Int("train-workers", 0, "goroutines growing forest trees during model training (0 = GOMAXPROCS); the model is identical for any value")
	flag.Parse()

	s, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	ctx := experiments.NewContext(s)
	tr, err := ctx.Trace()
	if err != nil {
		fatal(err)
	}
	fleet, err := ctx.CapacityFleet(*fleetFrac)
	if err != nil {
		fatal(err)
	}

	policies, err := parsePolicies(*policy)
	if err != nil {
		fatal(err)
	}

	t := &report.Table{
		Title: fmt.Sprintf("Cluster simulation (%s scale, %d servers, %dx%gh windows)",
			s, len(fleet.Servers), *windows, 24/float64(*windows)),
		Headers: []string{"policy", "requested", "placed", "placed %", "oversubscribed",
			"CPU viol %", "mem viol %", "servers used", "over-alloc mem %", "under-alloc mem %"},
	}
	for _, p := range policies {
		cfg := sim.ConfigForPolicy(p)
		cfg.Windows = timeseries.Windows{PerDay: *windows}
		cfg.TrainUpTo = tr.Horizon / 2
		cfg.Workers = *workers
		cfg.LongTerm.Forest.Workers = *trainWorkers
		if *percentile > 0 {
			cfg.Percentile = *percentile
		}
		res, err := sim.Run(tr, fleet, cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", p, err))
		}
		t.AddRow(p.String(), res.Requested, res.Placed, 100*res.PlacedFrac(),
			res.Oversubscribed, 100*res.CPUViolationFrac(), 100*res.MemViolationFrac(),
			res.UsedServers, 100*res.MeanOverAllocFrac(resources.Memory),
			100*res.UnderAllocFrac(resources.Memory))
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func parsePolicies(s string) ([]scheduler.PolicyKind, error) {
	if s == "all" {
		return scheduler.Policies, nil
	}
	for _, p := range scheduler.Policies {
		if p.String() == s {
			return []scheduler.PolicyKind{p}, nil
		}
	}
	return nil, fmt.Errorf("unknown policy %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coach-sim:", err)
	os.Exit(1)
}
