// Command coach-characterize reproduces the paper's §2 characterization
// (Figs. 2-12 and 17) on a synthetic trace and prints the figure data.
//
// Usage:
//
//	coach-characterize [-scale small|medium|full] [-figs fig2,fig8,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/coach-oss/coach/internal/experiments"
)

var characterizationFigs = []string{
	"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig17",
}

func main() {
	scale := flag.String("scale", "medium", "input scale: small, medium or full")
	figs := flag.String("figs", "", "comma-separated figure ids (default: all of §2)")
	flag.Parse()

	s, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	ids := characterizationFigs
	if *figs != "" {
		ids = strings.Split(*figs, ",")
	}
	ctx := experiments.NewContext(s)
	for _, id := range ids {
		e, err := experiments.ByID(strings.TrimSpace(id))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		tables, err := e.Run(ctx)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		for _, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coach-characterize:", err)
	os.Exit(1)
}
