// Command coachd is the Coach admission server: a long-running HTTP/JSON
// service exposing the prediction-and-admission control plane
// (internal/serve) over a synthetic trace and fleet. It is "server" in
// this repo's vocabulary — the offline experiment harnesses live in
// cmd/coach-experiments and cmd/coach-experiments-single.
//
// Usage:
//
//	coachd [-addr :8080] [-scale small|medium|full] [-scenario NAME|spec.txt]
//	       [-servers N] [-policy none|single|coach|aggrcoach]
//	       [-batch-max N] [-batch-wait D] [-no-batch] [-lazy-train]
//	       [-train-workers N] [-drain-timeout 10s]
//	       [-data-plane] [-mitigation None|Trim|Extend|Migrate]
//	       [-mitigation-mode Reactive|Proactive] [-dp-interval 2s]
//	       [-dp-pool-frac 0] [-cross-shard=true] [-admit-pressure 0]
//	       [-pprof-addr ""]
//
// On start, coachd generates the trace for the chosen scale — from the
// calibrated GenConfig generator, or with -scenario from a declarative
// workload spec (a preset name or spec file, see internal/scenario);
// cmd/coach-loadgen can replay the same scenario's arrival schedule
// against the server. It then trains the
// long-term predictor on the first half (unless -lazy-train defers that
// to the first request), and serves until SIGINT/SIGTERM, then shuts
// down gracefully: in-flight requests finish, the admission and
// prediction batchers drain, new requests get 503.
//
// Concurrent admissions on the same cluster coalesce into fleet-sized
// what-if rollouts (one forest pass, one score matrix, one pool sweep per
// batch) committed in arrival order — bit-identical to serial admission
// (docs/DESIGN.md §15). -no-batch disables both batchers (the fully
// serial baseline); -no-admit-batch disables only admission coalescing,
// and -admit-batch-max caps an admit batch separately from -batch-max
// (0 inherits it).
//
// With -data-plane every fleet server runs the memory data plane (memsim
// server + oversubscription agent): admitted VMs attach their memory, and
// every -dp-interval of wall time the fleet advances by one simulated
// 5-minute sample — working sets follow each VM's utilization series
// (until a client pushes live utilization via POST /v1/report) and the
// agents trim/extend/migrate under pressure. Completed live migrations
// resolve through the unified migration engine (docs/DESIGN.md §10):
// scheduler bookkeeping and memory move together, and with -cross-shard
// (the default) migrations that no home-cluster pool can absorb hand off
// to other clusters through a two-phase reserve-then-commit protocol.
// -admit-pressure > 0 additionally makes admission pressure-aware: an
// oversubscribed VM is re-routed or rejected when the target pools are
// thrashing. GET /v1/stats reports the fleet-wide aggregates
// (docs/api.md).
//
// A scenario with a faults: section (docs/scenarios.md) compiles into a
// deterministic fault schedule — the same schedule the simulator applies
// for that spec — and requires -data-plane for the server crash/recover
// events to fire (they apply on data-plane ticks). Training failure,
// injected or real, leaves coachd serving degraded: admissions fall back
// to fully-guaranteed best-fit, predictions answer 503 with Retry-After,
// and /readyz reports not-ready (docs/DESIGN.md §13).
//
// Endpoints (full schemas and curl examples in docs/api.md):
//
//	GET  /healthz     GET  /readyz    GET  /v1/stats
//	POST /v1/predict  POST /v1/admit  POST /v1/release  POST /v1/report
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux; the service uses its own Handler
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/experiments"
	"github.com/coach-oss/coach/internal/fault"
	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/serve"
	"github.com/coach-oss/coach/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.String("scale", "small", "trace scale: small, medium or full")
	scenarioFlag := flag.String("scenario", "", "workload scenario: a preset name ("+strings.Join(scenario.PresetNames, ", ")+") or a spec file path; empty uses the calibrated GenConfig trace")
	servers := flag.Int("servers", 8, "servers per cluster in the ten-cluster fleet")
	policy := flag.String("policy", "coach", "oversubscription policy: none, single, coach or aggrcoach")
	batchMax := flag.Int("batch-max", 64, "max prediction requests coalesced into one forest pass")
	batchWait := flag.Duration("batch-wait", 0, "max wait for stragglers per batch (0 = opportunistic)")
	noBatch := flag.Bool("no-batch", false, "disable both batchers: per-request inference and serial admission")
	noAdmitBatch := flag.Bool("no-admit-batch", false, "disable admission coalescing only (predictions still batch)")
	admitBatchMax := flag.Int("admit-batch-max", 0, "max admissions coalesced into one rollout (0 = -batch-max)")
	lazyTrain := flag.Bool("lazy-train", false, "defer model training to the first prediction request")
	trainWorkers := flag.Int("train-workers", 0, "goroutines growing forest trees during training (0 = GOMAXPROCS); the model is identical for any value")
	dataPlane := flag.Bool("data-plane", false, "run the per-server memory data plane (memsim + oversubscription agent)")
	mitigation := flag.String("mitigation", "Trim", "data-plane mitigation policy: None, Trim, Extend or Migrate")
	mitigationMode := flag.String("mitigation-mode", "Reactive", "data-plane mitigation triggering: Reactive or Proactive")
	dpInterval := flag.Duration("dp-interval", 2*time.Second, "wall-clock interval between data-plane ticks (each one simulated 5-minute sample)")
	dpPoolFrac := flag.Float64("dp-pool-frac", 0, "oversubscribed pool as a fraction of server memory (0 = default 25%)")
	crossShard := flag.Bool("cross-shard", true, "let completed live migrations hand off to other cluster shards (requires -data-plane)")
	admitPressure := flag.Float64("admit-pressure", 0, "pressure-aware admission: reject or re-route oversubscribed VMs whose scheduled VA demand would push a pool past this occupancy (0 = off)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on SIGINT/SIGTERM before forcing shutdown")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	flag.Parse()

	opts := options{
		addr: *addr, scale: *scale, scenario: *scenarioFlag, servers: *servers, policy: *policy,
		batchMax: *batchMax, batchWait: *batchWait, noBatch: *noBatch,
		noAdmitBatch: *noAdmitBatch, admitBatchMax: *admitBatchMax,
		lazyTrain: *lazyTrain, trainWorkers: *trainWorkers,
		dataPlane: *dataPlane, mitigation: *mitigation,
		mitigationMode: *mitigationMode, dpInterval: *dpInterval,
		dpPoolFrac: *dpPoolFrac, crossShard: *crossShard, admitPressure: *admitPressure,
		drainTimeout: *drainTimeout, pprofAddr: *pprofAddr,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "coachd:", err)
		os.Exit(1)
	}
}

// options carries the parsed flags.
type options struct {
	addr           string
	scale          string
	scenario       string
	servers        int
	policy         string
	batchMax       int
	batchWait      time.Duration
	noBatch        bool
	noAdmitBatch   bool
	admitBatchMax  int
	lazyTrain      bool
	trainWorkers   int
	dataPlane      bool
	mitigation     string
	mitigationMode string
	dpInterval     time.Duration
	dpPoolFrac     float64
	crossShard     bool
	admitPressure  float64
	drainTimeout   time.Duration
	pprofAddr      string
}

func run(o options) error {
	if o.pprofAddr != "" {
		// The API server uses its own mux (serve.Handler), so the default
		// mux carries only the pprof registrations — profiling the
		// inference and what-if hot paths never shares a listener with
		// admission traffic.
		go func() {
			log.Printf("pprof: http://%s/debug/pprof/", o.pprofAddr)
			if err := http.ListenAndServe(o.pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	pk, err := parsePolicy(o.policy)
	if err != nil {
		return err
	}
	sc, err := experiments.ParseScale(o.scale)
	if err != nil {
		return err
	}

	var tr *trace.Trace
	var sp *scenario.Spec
	if o.scenario != "" {
		loaded, err := scenario.Load(o.scenario)
		if err != nil {
			return err
		}
		sp = sc.ScenarioSpec(loaded)
		log.Printf("generating %s-scale trace from scenario %q", sc, sp.Name)
		if tr, err = trace.GenerateScenario(sp); err != nil {
			return err
		}
	} else {
		log.Printf("generating %s-scale trace", sc)
		if tr, err = trace.Generate(sc.GenConfig()); err != nil {
			return err
		}
	}
	fleet := cluster.NewFleet(cluster.DefaultClusters(o.servers))

	cfg := serve.DefaultConfig()
	cfg.Policy = pk
	if pk == scheduler.PolicyAggrCoach {
		// Mirror sim.ConfigForPolicy: AggrCoach guarantees the P50, not
		// the P95 — the aggressive split that actually exercises the
		// oversubscribed pool.
		cfg.Percentile = 50
	}
	cfg.Batch = serve.BatchConfig{Disabled: o.noBatch, MaxBatch: o.batchMax, MaxWait: o.batchWait}
	// The zero AdmitBatch mirrors Batch, so -no-batch alone serves fully
	// serially; the explicit knobs below override that mirror.
	if o.noAdmitBatch {
		cfg.AdmitBatch = serve.BatchConfig{Disabled: true}
	} else if o.admitBatchMax > 0 {
		cfg.AdmitBatch = serve.BatchConfig{Disabled: o.noBatch, MaxBatch: o.admitBatchMax, MaxWait: o.batchWait}
	}
	cfg.LongTerm.Forest.Workers = o.trainWorkers
	if o.dataPlane {
		cfg.DataPlane = true
		if cfg.MitigationPolicy, err = agent.ParsePolicy(o.mitigation); err != nil {
			return err
		}
		if cfg.MitigationMode, err = agent.ParseMode(o.mitigationMode); err != nil {
			return err
		}
		if o.dpInterval <= 0 {
			return fmt.Errorf("non-positive -dp-interval %s", o.dpInterval)
		}
		cfg.DataPlanePoolFrac = o.dpPoolFrac
		cfg.DataPlaneUnallocFrac = o.dpPoolFrac
		cfg.CrossShardMigration = o.crossShard
		cfg.AdmitPressureFrac = o.admitPressure
	}
	if sp != nil && len(sp.Faults) > 0 {
		// Compile the scenario's fault schedule against this fleet — the
		// same compilation the simulator runs for this spec, so one
		// scenario drives identical failure sequences in both. Crash and
		// recovery events fire on data-plane ticks; the tick counter
		// starts at process start, mirroring the simulator's evaluation
		// period.
		sizes := make([]int, 0, fleet.NumClusters())
		for _, servers := range fleet.Shards() {
			sizes = append(sizes, len(servers))
		}
		sched, err := fault.Compile(sp.Faults, sp.Seed, sizes, tr.Horizon-tr.Horizon/2)
		if err != nil {
			return err
		}
		cfg.Faults = sched
		if !o.dataPlane {
			log.Printf("warning: scenario %q has a faults: section but -data-plane is off — server crash/recover events fire on data-plane ticks and will never apply", sp.Name)
		}
		log.Printf("fault schedule: %d server crashes compiled (seed %d)", sched.Crashes(), sp.Seed)
	}
	svc, err := serve.New(tr, fleet, cfg)
	if err != nil {
		return err
	}
	if !o.lazyTrain {
		start := time.Now()
		if err := svc.Warm(); err != nil {
			// Keep serving: admissions fall back to fully-guaranteed
			// best-fit and /readyz reports not-ready until a later
			// training attempt succeeds.
			log.Printf("warning: model training failed, serving degraded: %v", err)
		} else {
			log.Printf("model trained in %s", time.Since(start).Round(time.Millisecond))
		}
	}

	srv := &http.Server{Addr: o.addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if o.dataPlane {
		go func() {
			log.Printf("data plane: %s/%s, one 5-minute sample per %s",
				cfg.MitigationPolicy, cfg.MitigationMode, o.dpInterval)
			ticker := time.NewTicker(o.dpInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if err := svc.TickDataPlane(); err != nil {
						if !errors.Is(err, serve.ErrClosed) {
							log.Printf("data plane tick: %v", err)
						}
						return
					}
				}
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving %d VMs on %d servers (%d clusters, policy %s) at %s",
			len(tr.VMs), len(fleet.Servers), fleet.NumClusters(), pk, o.addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	log.Printf("shutting down (drain timeout %s)", o.drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	err = srv.Shutdown(shutdownCtx) // stop accepting, finish in-flight requests
	svc.Close()                     // then drain the batcher
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	st := svc.Stats()
	log.Printf("final: placed=%d batches=%d (mean size %.1f) cache hits/misses=%d/%d",
		st.Placed, st.Batch.Batches, st.Batch.MeanSize, st.Cache.Hits, st.Cache.Misses)
	if st.AdmitBatch.Batches > 0 {
		log.Printf("admit batches: %d over %d admissions (mean %.1f, p50 %d, max %d), conflict replays %d",
			st.AdmitBatch.Batches, st.AdmitBatch.Requests, st.AdmitBatch.MeanSize,
			st.AdmitBatch.P50Size, st.AdmitBatch.MaxBatch, st.AdmitBatch.ConflictReplays)
	}
	if st.DataPlane.Enabled {
		log.Printf("data plane: ticks=%d attached=%d pool used %.1f/%.1f GB, trims=%d (%.1f GB) extends=%d (%.1f GB) migrations=%d (%.1f GB), faults hard %.1f GB / soft %.1f GB, stolen %.1f GB",
			st.DataPlane.Ticks, st.DataPlane.AttachedVMs,
			st.DataPlane.PoolUsedGB, st.DataPlane.PoolGB,
			st.DataPlane.Trims, st.DataPlane.TrimmedGB,
			st.DataPlane.Extends, st.DataPlane.ExtendedGB,
			st.DataPlane.Migrations, st.DataPlane.MigratedGB,
			st.DataPlane.HardFaultGB, st.DataPlane.SoftFaultGB, st.DataPlane.StolenGB)
		log.Printf("migration engine: landed same-shard=%d cross-shard=%d failed=%d, warm-arrived %.1f GB, pressure-rejected admissions=%d",
			st.DataPlane.SameShardMigrations, st.DataPlane.CrossShardMigrations,
			st.DataPlane.FailedMigrations, st.DataPlane.WarmArrivedGB,
			st.DataPlane.PressureRejected)
		if st.DataPlane.Crashes > 0 || st.DataPlane.Recoveries > 0 {
			log.Printf("failure domain: crashes=%d recoveries=%d evicted=%d replaced=%d lost=%d pending-handoffs=%d",
				st.DataPlane.Crashes, st.DataPlane.Recoveries, st.DataPlane.EvictedVMs,
				st.DataPlane.ReplacedVMs, st.DataPlane.LostVMs, st.DataPlane.PendingHandoffs)
		}
	}
	return nil
}

func parsePolicy(s string) (scheduler.PolicyKind, error) {
	switch strings.ToLower(s) {
	case "none":
		return scheduler.PolicyNone, nil
	case "single":
		return scheduler.PolicySingle, nil
	case "coach":
		return scheduler.PolicyCoach, nil
	case "aggrcoach":
		return scheduler.PolicyAggrCoach, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (none|single|coach|aggrcoach)", s)
	}
}
