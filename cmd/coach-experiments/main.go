// Command coach-experiments runs the registered paper experiments and
// prints their tables, or regenerates EXPERIMENTS.md with -markdown.
//
// Usage:
//
//	coach-experiments [-scale small|medium|full] [-preset NAME|spec.txt]
//	                  [-run id[,id...]] [-parallel n]
//	                  [-train-workers n] [-markdown] [-list]
//
// Experiments are independent, so -parallel n runs up to n of them
// concurrently over a shared context (n <= 0 uses GOMAXPROCS). Output is
// buffered per experiment and printed in selection order, so it is
// identical for any parallelism.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"

	"github.com/coach-oss/coach/internal/experiments"
	"github.com/coach-oss/coach/internal/scenario"
)

func main() {
	scale := flag.String("scale", "medium", "input scale: small, medium or full")
	preset := flag.String("preset", "", "workload scenario (preset name or spec file) replacing the calibrated trace for every selected experiment")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	parallel := flag.Int("parallel", 1, "experiments to run concurrently (<=0: GOMAXPROCS)")
	markdown := flag.Bool("markdown", false, "emit Markdown (EXPERIMENTS.md format)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	trainWorkers := flag.Int("train-workers", 0, "goroutines growing forest trees during model training (0 = GOMAXPROCS); output is identical for any value")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	s, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(selected) {
		workers = len(selected)
	}

	ctx := experiments.NewContext(s)
	ctx.TrainWorkers = *trainWorkers
	if *preset != "" {
		sp, err := scenario.Load(*preset)
		if err != nil {
			fatal(err)
		}
		ctx.Scenario = s.ScenarioSpec(sp)
	}
	outs := make([]bytes.Buffer, len(selected))
	errs := make([]error, len(selected))
	if workers <= 1 {
		// Serial: stream directly so progress is visible as it happens.
		for _, e := range selected {
			if err := runOne(ctx, e, *markdown, os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = runOne(ctx, selected[i], *markdown, &outs[i])
			}
		}()
	}
	for i := range selected {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i := range selected {
		if errs[i] != nil {
			fatal(errs[i])
		}
		if _, err := outs[i].WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// runOne renders one experiment's header and tables to w.
func runOne(ctx *experiments.Context, e experiments.Experiment, markdown bool, w io.Writer) error {
	if markdown {
		fmt.Fprintf(w, "## %s (`%s`)\n\n**Paper:** %s\n\n", e.Title, e.ID, e.PaperClaim)
	} else {
		fmt.Fprintf(w, "### %s — %s\n", e.ID, e.Title)
		fmt.Fprintf(w, "paper: %s\n\n", e.PaperClaim)
	}
	tables, err := e.Run(ctx)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	for _, t := range tables {
		if markdown {
			err = t.Markdown(w)
		} else {
			err = t.Render(w)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coach-experiments:", err)
	os.Exit(1)
}
