// Command coach-experiments runs the registered paper experiments and
// prints their tables, or regenerates EXPERIMENTS.md with -markdown.
//
// Usage:
//
//	coach-experiments [-scale small|medium|full] [-run id[,id...]] [-markdown] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/coach-oss/coach/internal/experiments"
)

func main() {
	scale := flag.String("scale", "medium", "input scale: small, medium or full")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	markdown := flag.Bool("markdown", false, "emit Markdown (EXPERIMENTS.md format)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	s, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
	}

	ctx := experiments.NewContext(s)
	for _, e := range selected {
		if *markdown {
			fmt.Printf("## %s (`%s`)\n\n**Paper:** %s\n\n", e.Title, e.ID, e.PaperClaim)
		} else {
			fmt.Printf("### %s — %s\n", e.ID, e.Title)
			fmt.Printf("paper: %s\n\n", e.PaperClaim)
		}
		tables, err := e.Run(ctx)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		for _, t := range tables {
			if *markdown {
				err = t.Markdown(os.Stdout)
			} else {
				err = t.Render(os.Stdout)
			}
			if err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coach-experiments:", err)
	os.Exit(1)
}
