package main

import (
	"fmt"
	"sort"
	"time"

	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

// event is one scheduled request of a scenario replay.
type event struct {
	// At is the wall-clock offset from replay start.
	At time.Duration
	VM int
	// Admit selects the request: true admits the VM, false releases it.
	Admit bool
}

// buildSchedule turns a scenario's trace into a wall-clock request
// schedule: every VM arriving inside the replayed window is admitted at
// its arrival sample and released at its departure sample when that
// also falls inside the window, with trace time compressed by speedup
// (3600 replays an hour of trace per wall-clock second). The schedule
// is a pure function of the trace, so a loadgen and a coachd built from
// the same scenario spec at the same scale agree on every VM id.
func buildSchedule(tr *trace.Trace, fromDay, replayDays int, speedup float64) ([]event, error) {
	if speedup <= 0 {
		return nil, fmt.Errorf("speedup %g must be positive", speedup)
	}
	lo := fromDay * timeseries.SamplesPerDay
	hi := lo + replayDays*timeseries.SamplesPerDay
	if fromDay < 0 || replayDays < 1 || hi > tr.Horizon {
		return nil, fmt.Errorf("replay window days [%d,%d) outside the %d-day trace",
			fromDay, fromDay+replayDays, tr.Horizon/timeseries.SamplesPerDay)
	}
	wall := func(t int) time.Duration {
		return time.Duration(float64(t-lo) * float64(timeseries.SampleMinutes) * float64(time.Minute) / speedup)
	}
	var evs []event
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.Start < lo || vm.Start >= hi {
			continue
		}
		evs = append(evs, event{At: wall(vm.Start), VM: vm.ID, Admit: true})
		if vm.End < hi {
			evs = append(evs, event{At: wall(vm.End), VM: vm.ID})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.VM != b.VM {
			return a.VM < b.VM
		}
		// A VM's admit precedes its release when speedup collapses its
		// whole lifetime into one instant.
		return a.Admit
	})
	return evs, nil
}
