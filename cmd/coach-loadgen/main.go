// Command coach-loadgen drives a running coachd with concurrent clients
// and reports throughput and latency percentiles. Each client loops over
// a deterministic per-client stream of VM ids, issuing predictions plus a
// configurable fraction of admit/release pairs.
//
// Usage:
//
//	coach-loadgen [-addr http://localhost:8080] [-clients 16]
//	              [-requests 2000] [-admit-frac 0.25] [-vms 500] [-seed 1]
//	              [-scenario NAME|spec.txt] [-scale small|medium|full]
//	              [-speedup 3600] [-from-day -1] [-replay-days 1]
//
// -vms must match the served trace's VM population (coachd -scale small
// serves 500 VMs); unknown ids count as errors.
//
// With -scenario, loadgen switches to scenario replay: it regenerates
// the same trace a coachd started with the same -scenario and -scale is
// serving (the scenario engine is deterministic from its seed), then
// replays the arrival/departure schedule of the chosen trace window in
// real time compressed by -speedup (3600 = one trace hour per second).
// Each arriving VM is admitted at its arrival instant and released at
// its departure; -from-day -1 starts at the trace midpoint, where
// coachd's predictor training ends. -clients bounds in-flight requests.
//
// Example output:
//
//	clients=16 requests=2000 errors=0  wall=1.32s  1515.2 req/s
//	latency: p50=9.1ms p95=22.4ms p99=31.0ms max=48.2ms
//	server:  batches=163 mean-size=11.9 cache hits/misses=0/1
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/coach-oss/coach/internal/experiments"
	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/serve"
	"github.com/coach-oss/coach/internal/stats"
	"github.com/coach-oss/coach/internal/trace"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "coachd base URL")
	clients := flag.Int("clients", 16, "concurrent clients")
	requests := flag.Int("requests", 2000, "total requests across all clients")
	admitFrac := flag.Float64("admit-frac", 0.25, "fraction of requests that are admit (each later released)")
	vms := flag.Int("vms", 500, "VM id space to draw from (must match the served trace)")
	seed := flag.Int64("seed", 1, "base RNG seed (client i uses seed+i)")
	scenarioFlag := flag.String("scenario", "", "replay a workload scenario (preset name or spec file) instead of the random request mix; must match the served coachd's -scenario")
	scale := flag.String("scale", "small", "trace scale of the served coachd (scenario replay only)")
	speedup := flag.Float64("speedup", 3600, "trace-time compression for scenario replay (3600 = 1 trace hour per second)")
	fromDay := flag.Int("from-day", -1, "first trace day to replay (-1 = the trace midpoint, where training ends)")
	replayDays := flag.Int("replay-days", 1, "number of trace days to replay")
	flag.Parse()

	var err error
	if *scenarioFlag != "" {
		err = replay(*addr, *scenarioFlag, *scale, *fromDay, *replayDays, *speedup, *clients)
	} else {
		err = run(*addr, *clients, *requests, *admitFrac, *vms, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "coach-loadgen:", err)
		os.Exit(1)
	}
}

// replay regenerates the scenario's trace and replays one window of its
// arrival/departure schedule against the server.
func replay(addr, scen, scaleName string, fromDay, replayDays int, speedup float64, clients int) error {
	if clients < 1 {
		return fmt.Errorf("clients must be positive")
	}
	sc, err := experiments.ParseScale(scaleName)
	if err != nil {
		return err
	}
	sp, err := scenario.Load(scen)
	if err != nil {
		return err
	}
	spec := sc.ScenarioSpec(sp)
	tr, err := trace.GenerateScenario(spec)
	if err != nil {
		return err
	}
	if fromDay < 0 {
		fromDay = spec.Days / 2
	}
	evs, err := buildSchedule(tr, fromDay, replayDays, speedup)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("no arrivals in days %d..%d of scenario %q", fromDay, fromDay+replayDays, spec.Name)
	}
	if err := check(addr + "/healthz"); err != nil {
		return fmt.Errorf("coachd not reachable at %s: %w", addr, err)
	}
	fmt.Printf("replaying scenario %q day %d..%d: %d events over %s (speedup %gx)\n",
		spec.Name, fromDay, fromDay+replayDays, len(evs),
		evs[len(evs)-1].At.Round(time.Millisecond), speedup)

	sem := make(chan struct{}, clients)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var lat []float64
	var placed, rejected, releases, errors int
	start := time.Now()
	for _, ev := range evs {
		if d := ev.At - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(ev event) {
			defer wg.Done()
			defer func() { <-sem }()
			body := fmt.Sprintf(`{"vm": %d}`, ev.VM)
			t0 := time.Now()
			if ev.Admit {
				var resp serve.AdmitResponse
				code, err := postJSON(addr+"/v1/admit", body, &resp)
				d := time.Since(t0).Seconds()
				mu.Lock()
				defer mu.Unlock()
				lat = append(lat, d)
				switch {
				case err != nil || code >= 500:
					errors++
				case code == http.StatusOK && resp.Admitted:
					placed++
				case code == http.StatusOK:
					rejected++
				}
				return
			}
			// Releasing a VM the server rejected on admit answers 409;
			// that is schedule skew, not failure.
			code, err := post(addr+"/v1/release", body)
			d := time.Since(t0).Seconds()
			mu.Lock()
			defer mu.Unlock()
			lat = append(lat, d)
			releases++
			if err != nil || code >= 500 {
				errors++
			}
		}(ev)
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Float64s(lat)
	fmt.Printf("events=%d placed=%d rejected=%d released=%d errors=%d  wall=%s  %.1f req/s\n",
		len(lat), placed, rejected, releases, errors,
		wall.Round(time.Millisecond), float64(len(lat))/wall.Seconds())
	if n := len(lat); n > 0 {
		fmt.Printf("latency: p50=%s p95=%s p99=%s max=%s\n",
			dur(stats.PercentileSorted(lat, 50)), dur(stats.PercentileSorted(lat, 95)),
			dur(stats.PercentileSorted(lat, 99)), dur(lat[n-1]))
	}
	var st serve.Stats
	if err := getJSON(addr+"/v1/stats", &st); err == nil {
		var srvReleased, srvRejected int64
		for _, cs := range st.Clusters {
			srvReleased += cs.Released
			srvRejected += cs.Rejected
		}
		fmt.Printf("server:  placed=%d released=%d rejected=%d batches=%d mean-size=%.1f\n",
			st.Placed, srvReleased, srvRejected, st.Batch.Batches, st.Batch.MeanSize)
	}
	if errors > 0 {
		return fmt.Errorf("%d requests failed", errors)
	}
	return nil
}

// result collects one client's measurements.
type result struct {
	latencies []float64 // seconds
	errors    int
}

func run(addr string, clients, requests int, admitFrac float64, vms int, seed int64) error {
	if clients < 1 || requests < 1 {
		return fmt.Errorf("clients and requests must be positive")
	}
	if err := check(addr + "/healthz"); err != nil {
		return fmt.Errorf("coachd not reachable at %s: %w", addr, err)
	}

	perClient := requests / clients
	if perClient == 0 {
		perClient = 1
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = client(addr, perClient, admitFrac, vms, seed+int64(c))
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []float64
	errors := 0
	for _, r := range results {
		all = append(all, r.latencies...)
		errors += r.errors
	}
	sort.Float64s(all)
	total := len(all)
	fmt.Printf("clients=%d requests=%d errors=%d  wall=%s  %.1f req/s\n",
		clients, total, errors, wall.Round(time.Millisecond), float64(total)/wall.Seconds())
	if total > 0 {
		fmt.Printf("latency: p50=%s p95=%s p99=%s max=%s\n",
			dur(stats.PercentileSorted(all, 50)), dur(stats.PercentileSorted(all, 95)),
			dur(stats.PercentileSorted(all, 99)), dur(all[total-1]))
	}

	var st serve.Stats
	if err := getJSON(addr+"/v1/stats", &st); err == nil {
		fmt.Printf("server:  batches=%d mean-size=%.1f cache hits/misses=%d/%d\n",
			st.Batch.Batches, st.Batch.MeanSize, st.Cache.Hits, st.Cache.Misses)
	}
	if errors > 0 {
		return fmt.Errorf("%d requests failed", errors)
	}
	return nil
}

// client issues n requests against the service, timing each round trip.
func client(addr string, n int, admitFrac float64, vms int, seed int64) result {
	rng := rand.New(rand.NewSource(seed))
	var res result
	for i := 0; i < n; i++ {
		id := rng.Intn(vms)
		body := fmt.Sprintf(`{"vm": %d}`, id)
		if rng.Float64() < admitFrac {
			// Admit then immediately release, so the fleet does not fill
			// up over a long run and every admit exercises placement.
			t0 := time.Now()
			code, err := post(addr+"/v1/admit", body)
			res.latencies = append(res.latencies, time.Since(t0).Seconds())
			// 409 (already admitted by a colliding client) is contention,
			// not failure; only transport and 5xx errors count.
			if err != nil || code >= 500 {
				res.errors++
				continue
			}
			if code == http.StatusOK {
				if _, err := post(addr+"/v1/release", body); err != nil {
					res.errors++
				}
			}
			continue
		}
		t0 := time.Now()
		code, err := post(addr+"/v1/predict", body)
		res.latencies = append(res.latencies, time.Since(t0).Seconds())
		if err != nil || code != http.StatusOK {
			res.errors++
		}
	}
	return res
}

func postJSON(url, body string, v any) (int, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

func post(url, body string) (int, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func check(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func dur(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second)).Round(10 * time.Microsecond)
}
