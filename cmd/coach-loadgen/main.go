// Command coach-loadgen drives a running coachd with concurrent clients
// and reports throughput and latency percentiles. Each client loops over
// a deterministic per-client stream of VM ids, issuing predictions plus a
// configurable fraction of admit/release pairs.
//
// Usage:
//
//	coach-loadgen [-addr http://localhost:8080] [-clients 16]
//	              [-requests 2000] [-admit-frac 0.25] [-vms 500] [-seed 1]
//
// -vms must match the served trace's VM population (coachd -scale small
// serves 500 VMs); unknown ids count as errors. Example output:
//
//	clients=16 requests=2000 errors=0  wall=1.32s  1515.2 req/s
//	latency: p50=9.1ms p95=22.4ms p99=31.0ms max=48.2ms
//	server:  batches=163 mean-size=11.9 cache hits/misses=0/1
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/coach-oss/coach/internal/serve"
	"github.com/coach-oss/coach/internal/stats"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "coachd base URL")
	clients := flag.Int("clients", 16, "concurrent clients")
	requests := flag.Int("requests", 2000, "total requests across all clients")
	admitFrac := flag.Float64("admit-frac", 0.25, "fraction of requests that are admit (each later released)")
	vms := flag.Int("vms", 500, "VM id space to draw from (must match the served trace)")
	seed := flag.Int64("seed", 1, "base RNG seed (client i uses seed+i)")
	flag.Parse()

	if err := run(*addr, *clients, *requests, *admitFrac, *vms, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "coach-loadgen:", err)
		os.Exit(1)
	}
}

// result collects one client's measurements.
type result struct {
	latencies []float64 // seconds
	errors    int
}

func run(addr string, clients, requests int, admitFrac float64, vms int, seed int64) error {
	if clients < 1 || requests < 1 {
		return fmt.Errorf("clients and requests must be positive")
	}
	if err := check(addr + "/healthz"); err != nil {
		return fmt.Errorf("coachd not reachable at %s: %w", addr, err)
	}

	perClient := requests / clients
	if perClient == 0 {
		perClient = 1
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = client(addr, perClient, admitFrac, vms, seed+int64(c))
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []float64
	errors := 0
	for _, r := range results {
		all = append(all, r.latencies...)
		errors += r.errors
	}
	sort.Float64s(all)
	total := len(all)
	fmt.Printf("clients=%d requests=%d errors=%d  wall=%s  %.1f req/s\n",
		clients, total, errors, wall.Round(time.Millisecond), float64(total)/wall.Seconds())
	if total > 0 {
		fmt.Printf("latency: p50=%s p95=%s p99=%s max=%s\n",
			dur(stats.PercentileSorted(all, 50)), dur(stats.PercentileSorted(all, 95)),
			dur(stats.PercentileSorted(all, 99)), dur(all[total-1]))
	}

	var st serve.Stats
	if err := getJSON(addr+"/v1/stats", &st); err == nil {
		fmt.Printf("server:  batches=%d mean-size=%.1f cache hits/misses=%d/%d\n",
			st.Batch.Batches, st.Batch.MeanSize, st.Cache.Hits, st.Cache.Misses)
	}
	if errors > 0 {
		return fmt.Errorf("%d requests failed", errors)
	}
	return nil
}

// client issues n requests against the service, timing each round trip.
func client(addr string, n int, admitFrac float64, vms int, seed int64) result {
	rng := rand.New(rand.NewSource(seed))
	var res result
	for i := 0; i < n; i++ {
		id := rng.Intn(vms)
		body := fmt.Sprintf(`{"vm": %d}`, id)
		if rng.Float64() < admitFrac {
			// Admit then immediately release, so the fleet does not fill
			// up over a long run and every admit exercises placement.
			t0 := time.Now()
			code, err := post(addr+"/v1/admit", body)
			res.latencies = append(res.latencies, time.Since(t0).Seconds())
			// 409 (already admitted by a colliding client) is contention,
			// not failure; only transport and 5xx errors count.
			if err != nil || code >= 500 {
				res.errors++
				continue
			}
			if code == http.StatusOK {
				if _, err := post(addr+"/v1/release", body); err != nil {
					res.errors++
				}
			}
			continue
		}
		t0 := time.Now()
		code, err := post(addr+"/v1/predict", body)
		res.latencies = append(res.latencies, time.Since(t0).Seconds())
		if err != nil || code != http.StatusOK {
			res.errors++
		}
	}
	return res
}

func post(url, body string) (int, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func check(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func dur(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second)).Round(10 * time.Microsecond)
}
