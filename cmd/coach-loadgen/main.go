// Command coach-loadgen drives a running coachd with concurrent clients
// and reports throughput and latency percentiles. Each client loops over
// a deterministic per-client stream of VM ids, issuing predictions plus a
// configurable fraction of admit/release pairs.
//
// Usage:
//
//	coach-loadgen [-addr http://localhost:8080] [-clients 16]
//	              [-requests 2000] [-admit-frac 0.25] [-admit-mix pair|storm]
//	              [-vms 500] [-seed 1]
//	              [-scenario NAME|spec.txt] [-scale small|medium|full]
//	              [-speedup 3600] [-from-day -1] [-replay-days 1]
//	              [-timeout 10s] [-retries 3] [-retry-backoff 100ms]
//	              [-pprof-addr ""]
//
// -vms must match the served trace's VM population (coachd -scale small
// serves 500 VMs); unknown ids count as errors.
//
// Every request carries a -timeout deadline, and transient failures —
// transport errors, timeouts and 5xx responses that are not definitive
// rejections — are retried up to -retries times with jittered
// exponential backoff, honoring the server's Retry-After header. A 503
// admit rejection with a parseable body (capacity or pool pressure) is
// the server's definitive answer and counts as rejected, not failed.
// When any request still fails after retries, loadgen prints a breakdown
// by error class (timeout, transport, http-5xx) and exits non-zero.
//
// With -scenario, loadgen switches to scenario replay: it regenerates
// the same trace a coachd started with the same -scenario and -scale is
// serving (the scenario engine is deterministic from its seed), then
// replays the arrival/departure schedule of the chosen trace window in
// real time compressed by -speedup (3600 = one trace hour per second).
// Each arriving VM is admitted at its arrival instant and released at
// its departure; -from-day -1 starts at the trace midpoint, where
// coachd's predictor training ends. -clients bounds in-flight requests.
//
// -admit-mix picks how admissions are issued. "pair" (the default) is
// the steady-state shape: each client admits one VM and releases it
// before moving on, so concurrent admits only overlap by chance.
// "storm" buffers each client's admits and fires them as a concurrent
// burst, then releases the placed VMs as a second burst — the shape
// that drives the server's admission coalescing (many admits inside
// one batch window) even at low client counts.
//
// Latency percentiles are reported both overall and per endpoint, so a
// run shows directly what admission batching costs or saves relative
// to predictions and releases.
//
// Example output:
//
//	clients=16 requests=2000 errors=0  wall=1.32s  1515.2 req/s
//	latency: p50=9.1ms p95=22.4ms p99=31.0ms max=48.2ms
//	admit:   n=378 p50=11.3ms p95=25.9ms p99=34.1ms max=48.2ms
//	predict: n=1244 p50=8.6ms p95=20.8ms p99=29.5ms max=41.7ms
//	release: n=378 p50=7.9ms p95=18.2ms p99=26.0ms max=37.3ms
//	server:  batches=163 mean-size=11.9 admit-batches=48 (mean 7.9) cache hits/misses=0/1
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/coach-oss/coach/internal/experiments"
	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/serve"
	"github.com/coach-oss/coach/internal/stats"
	"github.com/coach-oss/coach/internal/trace"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "coachd base URL")
	clients := flag.Int("clients", 16, "concurrent clients")
	requests := flag.Int("requests", 2000, "total requests across all clients")
	admitFrac := flag.Float64("admit-frac", 0.25, "fraction of requests that are admit (each later released)")
	admitMix := flag.String("admit-mix", "pair", "admit issue pattern: pair (admit, release, move on) or storm (concurrent admit bursts that exercise admission coalescing)")
	vms := flag.Int("vms", 500, "VM id space to draw from (must match the served trace)")
	seed := flag.Int64("seed", 1, "base RNG seed (client i uses seed+i)")
	scenarioFlag := flag.String("scenario", "", "replay a workload scenario (preset name or spec file) instead of the random request mix; must match the served coachd's -scenario")
	scale := flag.String("scale", "small", "trace scale of the served coachd (scenario replay only)")
	speedup := flag.Float64("speedup", 3600, "trace-time compression for scenario replay (3600 = 1 trace hour per second)")
	fromDay := flag.Int("from-day", -1, "first trace day to replay (-1 = the trace midpoint, where training ends)")
	replayDays := flag.Int("replay-days", 1, "number of trace days to replay")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline")
	retries := flag.Int("retries", 3, "retry attempts for transient failures (transport errors, timeouts, non-definitive 5xx)")
	retryBackoff := flag.Duration("retry-backoff", 100*time.Millisecond, "base retry backoff (doubled per attempt, jittered, capped by Retry-After when the server sends one)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6061; empty = off)")
	flag.Parse()

	if *pprofAddr != "" {
		// loadgen makes no HTTP server of its own, so the default mux is
		// free for the pprof registrations — profile the client side of a
		// load run (scenario replay scheduling, encode/decode) directly.
		go func() {
			fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof server:", err)
			}
		}()
	}

	hc := newHTTPClient(*timeout, *retries, *retryBackoff, *seed)
	var err error
	if *scenarioFlag != "" {
		err = replay(hc, *addr, *scenarioFlag, *scale, *fromDay, *replayDays, *speedup, *clients)
	} else {
		err = run(hc, *addr, *clients, *requests, *admitFrac, *admitMix, *vms, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "coach-loadgen:", err)
		os.Exit(1)
	}
}

// httpClient wraps the shared HTTP client with the retry policy: every
// request carries the configured deadline, and transient failures back
// off exponentially with jitter, honoring Retry-After.
type httpClient struct {
	c       *http.Client
	retries int
	backoff time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

func newHTTPClient(timeout time.Duration, retries int, backoff time.Duration, seed int64) *httpClient {
	return &httpClient{
		c:       &http.Client{Timeout: timeout},
		retries: retries,
		backoff: backoff,
		rng:     rand.New(rand.NewSource(seed ^ 0x10ad9e4)),
	}
}

// jitter scales d by a uniform factor in [0.5, 1.5) so synchronized
// clients do not retry in lockstep.
func (hc *httpClient) jitter(d time.Duration) time.Duration {
	hc.mu.Lock()
	f := 0.5 + hc.rng.Float64()
	hc.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// post issues one POST with the retry policy and returns the final
// status code and response body. definitive reports whether a non-2xx
// response is the server's final answer (no point retrying): admit
// rejections carry a parseable AdmitResponse body even at 503.
func (hc *httpClient) post(url, body string) (code int, respBody []byte, err error) {
	for attempt := 0; ; attempt++ {
		var resp *http.Response
		resp, err = hc.c.Post(url, "application/json", bytes.NewReader([]byte(body)))
		var retryAfter time.Duration
		if err == nil {
			respBody, _ = io.ReadAll(resp.Body)
			resp.Body.Close()
			code = resp.StatusCode
			if code < 500 {
				return code, respBody, nil
			}
			if code == http.StatusServiceUnavailable && definitiveAdmitReject(respBody) {
				// The server decided: the fleet cannot take this VM now.
				// Retry-After is advice for a client that wants in later;
				// a load generator's schedule moves on.
				return code, respBody, nil
			}
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
					retryAfter = time.Duration(secs) * time.Second
				}
			}
		}
		if attempt >= hc.retries {
			return code, respBody, err
		}
		d := hc.jitter(hc.backoff << attempt)
		if retryAfter > 0 && retryAfter < d {
			d = retryAfter
		}
		time.Sleep(d)
	}
}

// definitiveAdmitReject reports whether a 503 body is a parseable admit
// rejection — the server's final word rather than a transient outage.
func definitiveAdmitReject(body []byte) bool {
	var ar serve.AdmitResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		return false
	}
	return !ar.Admitted && ar.Reason != ""
}

// errClasses breaks ultimate failures (after retries) down by cause.
type errClasses struct {
	timeout   int
	transport int
	http5xx   int
}

func (e *errClasses) total() int { return e.timeout + e.transport + e.http5xx }

func (e *errClasses) String() string {
	return fmt.Sprintf("timeout=%d transport=%d http-5xx=%d", e.timeout, e.transport, e.http5xx)
}

// add merges o into e.
func (e *errClasses) add(o errClasses) {
	e.timeout += o.timeout
	e.transport += o.transport
	e.http5xx += o.http5xx
}

// classify records a request's final outcome, returning true when it is
// a failure.
func (e *errClasses) classify(err error, code int) bool {
	switch {
	case err != nil:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			e.timeout++
		} else {
			e.transport++
		}
		return true
	case code >= 500:
		e.http5xx++
		return true
	}
	return false
}

// replay regenerates the scenario's trace and replays one window of its
// arrival/departure schedule against the server.
func replay(hc *httpClient, addr, scen, scaleName string, fromDay, replayDays int, speedup float64, clients int) error {
	if clients < 1 {
		return fmt.Errorf("clients must be positive")
	}
	sc, err := experiments.ParseScale(scaleName)
	if err != nil {
		return err
	}
	sp, err := scenario.Load(scen)
	if err != nil {
		return err
	}
	spec := sc.ScenarioSpec(sp)
	tr, err := trace.GenerateScenario(spec)
	if err != nil {
		return err
	}
	if fromDay < 0 {
		fromDay = spec.Days / 2
	}
	evs, err := buildSchedule(tr, fromDay, replayDays, speedup)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("no arrivals in days %d..%d of scenario %q", fromDay, fromDay+replayDays, spec.Name)
	}
	if err := check(addr + "/healthz"); err != nil {
		return fmt.Errorf("coachd not reachable at %s: %w", addr, err)
	}
	fmt.Printf("replaying scenario %q day %d..%d: %d events over %s (speedup %gx)\n",
		spec.Name, fromDay, fromDay+replayDays, len(evs),
		evs[len(evs)-1].At.Round(time.Millisecond), speedup)

	sem := make(chan struct{}, clients)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var admitLat, releaseLat []float64
	var placed, rejected, releases int
	var ec errClasses
	start := time.Now()
	for _, ev := range evs {
		if d := ev.At - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(ev event) {
			defer wg.Done()
			defer func() { <-sem }()
			body := fmt.Sprintf(`{"vm": %d}`, ev.VM)
			t0 := time.Now()
			if ev.Admit {
				code, respBody, err := hc.post(addr+"/v1/admit", body)
				d := time.Since(t0).Seconds()
				var resp serve.AdmitResponse
				parsed := err == nil && json.Unmarshal(respBody, &resp) == nil
				mu.Lock()
				defer mu.Unlock()
				admitLat = append(admitLat, d)
				switch {
				case parsed && code == http.StatusOK && resp.Admitted:
					placed++
				case parsed && !resp.Admitted && resp.Reason != "":
					// A definitive rejection — capacity, pool pressure —
					// whether served as 200 or 503: expected behaviour
					// under load, not a failure.
					rejected++
				default:
					ec.classify(err, code)
				}
				return
			}
			// Releasing a VM the server rejected on admit answers 409;
			// that is schedule skew, not failure.
			code, _, err := hc.post(addr+"/v1/release", body)
			d := time.Since(t0).Seconds()
			mu.Lock()
			defer mu.Unlock()
			releaseLat = append(releaseLat, d)
			releases++
			ec.classify(err, code)
		}(ev)
	}
	wg.Wait()
	wall := time.Since(start)

	var lat []float64
	lat = append(append(lat, admitLat...), releaseLat...)
	sort.Float64s(lat)
	fmt.Printf("events=%d placed=%d rejected=%d released=%d errors=%d  wall=%s  %.1f req/s\n",
		len(lat), placed, rejected, releases, ec.total(),
		wall.Round(time.Millisecond), float64(len(lat))/wall.Seconds())
	if n := len(lat); n > 0 {
		fmt.Printf("latency: p50=%s p95=%s p99=%s max=%s\n",
			dur(stats.PercentileSorted(lat, 50)), dur(stats.PercentileSorted(lat, 95)),
			dur(stats.PercentileSorted(lat, 99)), dur(lat[n-1]))
	}
	latLine("admit", admitLat)
	latLine("release", releaseLat)
	var st serve.Stats
	if err := getJSON(addr+"/v1/stats", &st); err == nil {
		var srvReleased, srvRejected int64
		for _, cs := range st.Clusters {
			srvReleased += cs.Released
			srvRejected += cs.Rejected
		}
		fmt.Printf("server:  placed=%d released=%d rejected=%d batches=%d mean-size=%.1f admit-batches=%d (mean %.1f)\n",
			st.Placed, srvReleased, srvRejected, st.Batch.Batches, st.Batch.MeanSize,
			st.AdmitBatch.Batches, st.AdmitBatch.MeanSize)
		if st.DataPlane.Crashes > 0 || st.DataPlane.LostVMs > 0 {
			fmt.Printf("faults:  crashes=%d recoveries=%d evicted=%d replaced=%d lost=%d\n",
				st.DataPlane.Crashes, st.DataPlane.Recoveries, st.DataPlane.EvictedVMs,
				st.DataPlane.ReplacedVMs, st.DataPlane.LostVMs)
		}
	}
	if ec.total() > 0 {
		return fmt.Errorf("%d requests failed after retries (%s)", ec.total(), &ec)
	}
	return nil
}

// result collects one client's measurements, with latencies kept per
// endpoint so the report can show what each request class costs.
type result struct {
	admitLat   []float64 // seconds
	predictLat []float64
	releaseLat []float64
	errs       errClasses
}

// latLine prints one endpoint's latency percentiles; endpoints the mix
// never exercised print nothing. Sorts lat in place.
func latLine(name string, lat []float64) {
	n := len(lat)
	if n == 0 {
		return
	}
	sort.Float64s(lat)
	fmt.Printf("%-8s n=%d p50=%s p95=%s p99=%s max=%s\n", name+":", n,
		dur(stats.PercentileSorted(lat, 50)), dur(stats.PercentileSorted(lat, 95)),
		dur(stats.PercentileSorted(lat, 99)), dur(lat[n-1]))
}

func run(hc *httpClient, addr string, clients, requests int, admitFrac float64, admitMix string, vms int, seed int64) error {
	if clients < 1 || requests < 1 {
		return fmt.Errorf("clients and requests must be positive")
	}
	if admitMix != "pair" && admitMix != "storm" {
		return fmt.Errorf("unknown -admit-mix %q (want pair or storm)", admitMix)
	}
	if err := check(addr + "/healthz"); err != nil {
		return fmt.Errorf("coachd not reachable at %s: %w", addr, err)
	}

	perClient := requests / clients
	if perClient == 0 {
		perClient = 1
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if admitMix == "storm" {
				results[c] = stormClient(hc, addr, perClient, admitFrac, vms, seed+int64(c))
			} else {
				results[c] = client(hc, addr, perClient, admitFrac, vms, seed+int64(c))
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var admitL, predictL, releaseL []float64
	var ec errClasses
	for _, r := range results {
		admitL = append(admitL, r.admitLat...)
		predictL = append(predictL, r.predictLat...)
		releaseL = append(releaseL, r.releaseLat...)
		ec.add(r.errs)
	}
	var all []float64
	all = append(append(append(all, admitL...), predictL...), releaseL...)
	sort.Float64s(all)
	total := len(all)
	fmt.Printf("clients=%d requests=%d errors=%d  wall=%s  %.1f req/s\n",
		clients, total, ec.total(), wall.Round(time.Millisecond), float64(total)/wall.Seconds())
	if total > 0 {
		fmt.Printf("latency: p50=%s p95=%s p99=%s max=%s\n",
			dur(stats.PercentileSorted(all, 50)), dur(stats.PercentileSorted(all, 95)),
			dur(stats.PercentileSorted(all, 99)), dur(all[total-1]))
	}
	latLine("admit", admitL)
	latLine("predict", predictL)
	latLine("release", releaseL)

	var st serve.Stats
	if err := getJSON(addr+"/v1/stats", &st); err == nil {
		fmt.Printf("server:  batches=%d mean-size=%.1f admit-batches=%d (mean %.1f) cache hits/misses=%d/%d\n",
			st.Batch.Batches, st.Batch.MeanSize, st.AdmitBatch.Batches, st.AdmitBatch.MeanSize,
			st.Cache.Hits, st.Cache.Misses)
	}
	if ec.total() > 0 {
		return fmt.Errorf("%d requests failed after retries (%s)", ec.total(), &ec)
	}
	return nil
}

// client issues n requests against the service, timing each round trip.
func client(hc *httpClient, addr string, n int, admitFrac float64, vms int, seed int64) result {
	rng := rand.New(rand.NewSource(seed))
	var res result
	for i := 0; i < n; i++ {
		id := rng.Intn(vms)
		body := fmt.Sprintf(`{"vm": %d}`, id)
		if rng.Float64() < admitFrac {
			// Admit then immediately release, so the fleet does not fill
			// up over a long run and every admit exercises placement.
			t0 := time.Now()
			code, respBody, err := hc.post(addr+"/v1/admit", body)
			res.admitLat = append(res.admitLat, time.Since(t0).Seconds())
			// 409 (already admitted by a colliding client) is contention
			// and a definitive 503 rejection is expected under load; only
			// transport errors, timeouts and other 5xx count.
			if code == http.StatusServiceUnavailable && definitiveAdmitReject(respBody) {
				continue
			}
			if res.errs.classify(err, code) {
				continue
			}
			if code == http.StatusOK {
				t0 = time.Now()
				_, _, err := hc.post(addr+"/v1/release", body)
				res.releaseLat = append(res.releaseLat, time.Since(t0).Seconds())
				if err != nil {
					res.errs.classify(err, 0)
				}
			}
			continue
		}
		t0 := time.Now()
		code, _, err := hc.post(addr+"/v1/predict", body)
		res.predictLat = append(res.predictLat, time.Since(t0).Seconds())
		if !res.errs.classify(err, code) && code != http.StatusOK {
			// Unexpected non-200 on predict (404/405/...): misconfigured
			// run — surface it as a transport-class failure.
			res.errs.transport++
		}
	}
	return res
}

// stormClient is the -admit-mix storm shape: admits are buffered and
// fired as a concurrent burst so they land inside one server batch
// window, then the placed VMs are released as a second burst. Predicts
// interleave serially as in the pair mix.
func stormClient(hc *httpClient, addr string, n int, admitFrac float64, vms int, seed int64) result {
	rng := rand.New(rand.NewSource(seed))
	var res result
	const burst = 8
	var pending []int
	type out struct {
		lat    float64
		code   int
		err    error
		reject bool
	}
	flush := func() {
		if len(pending) == 0 {
			return
		}
		outs := make([]out, len(pending))
		var wg sync.WaitGroup
		for i, id := range pending {
			wg.Add(1)
			go func(i, id int) {
				defer wg.Done()
				body := fmt.Sprintf(`{"vm": %d}`, id)
				t0 := time.Now()
				code, respBody, err := hc.post(addr+"/v1/admit", body)
				outs[i] = out{lat: time.Since(t0).Seconds(), code: code, err: err,
					reject: code == http.StatusServiceUnavailable && definitiveAdmitReject(respBody)}
			}(i, id)
		}
		wg.Wait()
		var placed []int
		for i, o := range outs {
			res.admitLat = append(res.admitLat, o.lat)
			if o.reject {
				continue
			}
			if res.errs.classify(o.err, o.code) {
				continue
			}
			if o.code == http.StatusOK {
				placed = append(placed, pending[i])
			}
		}
		rel := make([]out, len(placed))
		var rg sync.WaitGroup
		for i, id := range placed {
			rg.Add(1)
			go func(i, id int) {
				defer rg.Done()
				body := fmt.Sprintf(`{"vm": %d}`, id)
				t0 := time.Now()
				code, _, err := hc.post(addr+"/v1/release", body)
				rel[i] = out{lat: time.Since(t0).Seconds(), code: code, err: err}
			}(i, id)
		}
		rg.Wait()
		for _, o := range rel {
			res.releaseLat = append(res.releaseLat, o.lat)
			res.errs.classify(o.err, o.code)
		}
		pending = pending[:0]
	}
	for i := 0; i < n; i++ {
		id := rng.Intn(vms)
		if rng.Float64() < admitFrac {
			pending = append(pending, id)
			if len(pending) == burst {
				flush()
			}
			continue
		}
		body := fmt.Sprintf(`{"vm": %d}`, id)
		t0 := time.Now()
		code, _, err := hc.post(addr+"/v1/predict", body)
		res.predictLat = append(res.predictLat, time.Since(t0).Seconds())
		if !res.errs.classify(err, code) && code != http.StatusOK {
			// Unexpected non-200 on predict (404/405/...): misconfigured
			// run — surface it as a transport-class failure.
			res.errs.transport++
		}
	}
	flush()
	return res
}

func check(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func dur(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second)).Round(10 * time.Microsecond)
}
