package main

import (
	"testing"
	"time"

	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

func scheduleTrace(t *testing.T) *trace.Trace {
	t.Helper()
	sp, err := scenario.Preset("capacity")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.GenerateScenario(sp.Scaled(300, 30))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildScheduleWindowAndOrder(t *testing.T) {
	tr := scheduleTrace(t)
	const fromDay, replayDays = 7, 2
	const speedup = 3600.0
	evs, err := buildSchedule(tr, fromDay, replayDays, speedup)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("empty schedule for a two-day window")
	}
	lo := fromDay * timeseries.SamplesPerDay
	hi := lo + replayDays*timeseries.SamplesPerDay
	window := time.Duration(float64(hi-lo) * float64(timeseries.SampleMinutes) * float64(time.Minute) / speedup)
	admitted := map[int]bool{}
	for i, ev := range evs {
		if ev.At < 0 || ev.At > window {
			t.Fatalf("event %d at %v outside [0,%v]", i, ev.At, window)
		}
		if i > 0 && ev.At < evs[i-1].At {
			t.Fatalf("events not sorted at %d: %v < %v", i, ev.At, evs[i-1].At)
		}
		if ev.Admit {
			if admitted[ev.VM] {
				t.Fatalf("VM %d admitted twice", ev.VM)
			}
			admitted[ev.VM] = true
		} else if !admitted[ev.VM] {
			t.Fatalf("VM %d released before its admit", ev.VM)
		}
	}
	// Every scheduled admit is a VM arriving inside the window, and every
	// such VM is scheduled.
	want := map[int]bool{}
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.Start >= lo && vm.Start < hi {
			want[vm.ID] = true
		}
	}
	if len(want) != len(admitted) {
		t.Fatalf("scheduled %d admits, window holds %d arrivals", len(admitted), len(want))
	}
	for id := range admitted {
		if !want[id] {
			t.Fatalf("VM %d admitted but arrives outside the window", id)
		}
	}
}

func TestBuildScheduleDeterministic(t *testing.T) {
	tr := scheduleTrace(t)
	a, err := buildSchedule(tr, 7, 1, 3600)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildSchedule(tr, 7, 1, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestBuildScheduleErrors(t *testing.T) {
	tr := scheduleTrace(t)
	cases := []struct {
		name          string
		fromDay, days int
		speedup       float64
	}{
		{"zero-speedup", 0, 1, 0},
		{"negative-speedup", 0, 1, -5},
		{"negative-from-day", -1, 1, 3600},
		{"zero-days", 0, 0, 3600},
		{"past-horizon", 13, 2, 3600},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := buildSchedule(tr, tc.fromDay, tc.days, tc.speedup); err == nil {
				t.Error("buildSchedule accepted an invalid window")
			}
		})
	}
}
