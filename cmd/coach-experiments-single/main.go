// Command coach-experiments-single runs the single-server experiments: the PA/VA
// trade-off (Fig. 15), workload performance across VM configurations
// (Fig. 18), contention mitigation (Fig. 21) and platform overheads
// (§4.5).
//
// Usage:
//
//	coach-experiments-single [-scale small|medium|full] [-run fig15,fig18,fig21,sec45]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/coach-oss/coach/internal/experiments"
)

func main() {
	scale := flag.String("scale", "medium", "input scale: small, medium or full")
	run := flag.String("run", "fig15,fig18,fig21,sec45", "experiments to run")
	flag.Parse()

	s, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	ctx := experiments.NewContext(s)
	for _, id := range strings.Split(*run, ",") {
		e, err := experiments.ByID(strings.TrimSpace(id))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		tables, err := e.Run(ctx)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		for _, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coach-experiments-single:", err)
	os.Exit(1)
}
