package coach

import (
	"bytes"
	"testing"
)

// TestPublicAPIEndToEnd exercises the facade the way the quickstart
// example does: trace -> platform -> train -> request -> place.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.VMs = 150
	cfg.Subscriptions = 15
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Days() != 14 {
		t.Errorf("default trace covers %d days, want 14", tr.Days())
	}

	fleet := NewFleet(DefaultClusters(2))
	platform, err := NewPlatform(fleet, DefaultPlatformConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := platform.Train(tr, tr.Horizon/2); err != nil {
		t.Fatal(err)
	}
	placed := 0
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.End <= tr.Horizon/2 {
			continue
		}
		cvm, err := platform.Request(vm)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := platform.Place(cvm); ok {
			placed++
		}
	}
	if placed == 0 {
		t.Fatal("public API placed nothing")
	}
}

func TestTraceSaveLoadViaFacade(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.VMs = 20
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VMs) != 20 {
		t.Error("roundtrip lost VMs")
	}
}

func TestServerFacade(t *testing.T) {
	srv, err := NewServer(DefaultServerConfig(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	vm, err := NewVMMemory(1, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Server.AddVM(vm); err != nil {
		t.Fatal(err)
	}
	spec, err := WorkloadByName("Cache")
	if err != nil {
		t.Fatal(err)
	}
	spec.VMSizeGB, spec.WSSGB, spec.PhaseAmpGB = 8, 4, 0
	run, err := NewWorkloadRunner(spec, vm, DefaultMemoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		run.Step(1)
		st, err := srv.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		run.Record(st.Get(1))
	}
	if run.Ticks() != 30 {
		t.Errorf("runner recorded %d ticks", run.Ticks())
	}
}

func TestWorkloadsFacade(t *testing.T) {
	if len(Workloads()) != 9 {
		t.Error("Workloads() must return the Table 2 suite")
	}
	if _, err := WorkloadByName("nope"); err == nil {
		t.Error("unknown workload must fail")
	}
}

func TestSimulateFacade(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.VMs = 120
	cfg.Subscriptions = 12
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(DefaultClusters(1))
	simCfg := SimConfigForPolicy(PolicyCoach)
	simCfg.TrainUpTo = tr.Horizon / 2
	res, err := Simulate(tr, fleet, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requested == 0 {
		t.Error("simulation saw no requests")
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	infos := Experiments()
	if len(infos) < 20 {
		t.Errorf("only %d experiments registered", len(infos))
	}
	tables, err := RunExperiment("tab1", "small")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 10 {
		t.Error("tab1 must render the 10-row fungibility table")
	}
	if _, err := RunExperiment("nope", "small"); err == nil {
		t.Error("unknown experiment must fail")
	}
	if _, err := RunExperiment("tab1", "gigantic"); err == nil {
		t.Error("unknown scale must fail")
	}
}
