package core

import (
	"testing"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/resources"
)

// TestDataPlaneSkipsIdleServers is the sparse-ticking contract: in a
// scripted fleet where only server 0 ever hosts VMs, the idle servers
// must receive zero full memsim ticks — their per-server tick counter
// (the hook memsim.Server.TickCount exposes) stays at zero while their
// skip counter advances every round.
func TestDataPlaneSkipsIdleServers(t *testing.T) {
	dp := dpFixture(t, 4, agent.PolicyTrim, 0.25, 0.1)
	if err := dp.Attach(0, 1, 16, 2); err != nil {
		t.Fatal(err)
	}
	const rounds = 50
	for i := 0; i < rounds; i++ {
		// Alternate the busy VM's working set so server 0 keeps faulting
		// pages in and never settles into steadiness.
		if i%2 == 0 {
			dp.SetWSS(1, 8)
		} else {
			dp.SetWSS(1, 3)
		}
		if _, _, err := dp.Tick(300); err != nil {
			t.Fatal(err)
		}
	}
	servers := dp.Servers()
	if n := servers[0].Server.TickCount(); n == 0 {
		t.Error("busy server 0 was never fully ticked")
	}
	for i := 1; i < 4; i++ {
		s := servers[i].Server
		if n := s.TickCount(); n != 0 {
			t.Errorf("idle server %d received %d full ticks, want 0", i, n)
		}
		if n := s.SkipCount(); n != rounds {
			t.Errorf("idle server %d skipped %d ticks, want %d", i, n, rounds)
		}
	}
}

// TestDataPlaneSteadyWakesOnMutation: a server that settled into
// steadiness must re-simulate after any externally visible mutation —
// attach, working-set change, detach — and may re-settle afterwards.
func TestDataPlaneSteadyWakesOnMutation(t *testing.T) {
	dp := dpFixture(t, 1, agent.PolicyNone, 0.25, 0.1)
	if err := dp.Attach(0, 1, 16, 2); err != nil {
		t.Fatal(err)
	}
	dp.SetWSS(1, 4)
	settle := func() {
		t.Helper()
		for i := 0; i < 100 && !dp.Steady()[0]; i++ {
			if _, _, err := dp.Tick(300); err != nil {
				t.Fatal(err)
			}
		}
		if !dp.Steady()[0] {
			t.Fatal("server never settled")
		}
	}
	settle()
	ticks := dp.Servers()[0].Server.TickCount()
	// Re-asserting the same working set must NOT wake the server…
	dp.SetWSS(1, 4)
	if _, _, err := dp.Tick(300); err != nil {
		t.Fatal(err)
	}
	if got := dp.Servers()[0].Server.TickCount(); got != ticks {
		t.Errorf("unchanged SetWSS woke the server (%d -> %d full ticks)", ticks, got)
	}
	// …but a changed one must.
	dp.SetWSS(1, 6)
	if _, _, err := dp.Tick(300); err != nil {
		t.Fatal(err)
	}
	if got := dp.Servers()[0].Server.TickCount(); got != ticks+1 {
		t.Errorf("changed SetWSS did not wake the server (%d -> %d full ticks)", ticks, got)
	}
	settle()
	ticks = dp.Servers()[0].Server.TickCount()
	if err := dp.Attach(0, 2, 8, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dp.Tick(300); err != nil {
		t.Fatal(err)
	}
	if got := dp.Servers()[0].Server.TickCount(); got != ticks+1 {
		t.Errorf("attach did not wake the server")
	}
	settle()
	ticks = dp.Servers()[0].Server.TickCount()
	if !dp.Detach(2) {
		t.Fatal("detach failed")
	}
	if _, _, err := dp.Tick(300); err != nil {
		t.Fatal(err)
	}
	if got := dp.Servers()[0].Server.TickCount(); got != ticks+1 {
		t.Errorf("detach did not wake the server")
	}
}

// TestDataPlaneSparseTotalsMatchAlwaysTick is the regression wall for
// the skip path: the same scripted workload replayed on a sparse data
// plane and on an always-tick one must end with identical cumulative
// Totals and agent Counters — a skipped tick must be observably
// indistinguishable from re-simulating a steady server.
func TestDataPlaneSparseTotalsMatchAlwaysTick(t *testing.T) {
	run := func(alwaysTick bool) *DataPlane {
		cfg := DefaultDataPlaneConfig()
		cfg.Agent.Policy = agent.PolicyTrim
		cfg.PoolFrac = 0.0625
		cfg.UnallocFrac = 0.05
		cfg.AlwaysTick = alwaysTick
		servers := make([]*cluster.Server, 3)
		for i := range servers {
			servers[i] = &cluster.Server{
				ID:   i,
				Spec: cluster.ServerSpec{Name: "t", Generation: 1, Capacity: resources.NewVector(16, 64, 10, 100)},
			}
		}
		dp, err := NewDataPlane(cfg, servers)
		if err != nil {
			t.Fatal(err)
		}
		for id := 1; id <= 4; id++ {
			if err := dp.Attach(id%2, id, 16, 1); err != nil {
				t.Fatal(err)
			}
		}
		// Phased script: pressure builds, holds (letting servers settle),
		// then releases — covering busy ticks, steady stretches and
		// wake-ups on the same trajectory.
		for tick := 0; tick < 400; tick++ {
			switch {
			case tick == 0:
				for id := 1; id <= 4; id++ {
					dp.SetWSS(id, 5)
				}
			case tick == 150:
				for id := 1; id <= 4; id++ {
					dp.SetWSS(id, 2)
				}
			case tick == 300:
				dp.SetWSS(1, 6)
			}
			if _, _, err := dp.Tick(300); err != nil {
				t.Fatal(err)
			}
		}
		return dp
	}
	sparse := run(false)
	dense := run(true)
	if got, want := sparse.Totals(), dense.Totals(); got != want {
		t.Errorf("sparse Totals %+v != always-tick Totals %+v", got, want)
	}
	if got, want := sparse.Counters(), dense.Counters(); got != want {
		t.Errorf("sparse Counters %+v != always-tick Counters %+v", got, want)
	}
	var skips int64
	for _, sm := range sparse.Servers() {
		skips += sm.Server.SkipCount()
	}
	if skips == 0 {
		t.Error("fixture regression: sparse run never skipped a tick")
	}
}
