// Package core assembles Coach's control plane as depicted in the paper's
// design overview (Fig. 13): a logically centralized ClusterManager that
// converts VM requests into CoachVMs using the long-term prediction model
// and the time-window scheduling policy, and a per-server ServerManager
// that runs the memory simulator together with the local oversubscription
// agent (monitoring, prediction, mitigation).
package core

import (
	"fmt"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/memsim"
	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

// ClusterConfig configures a ClusterManager.
type ClusterConfig struct {
	// Policy selects the oversubscription policy (default Coach).
	Policy scheduler.PolicyKind
	// Windows is the time-window split (default 6x4h).
	Windows timeseries.Windows
	// Percentile sizes the guaranteed portion (default P95).
	Percentile float64
	// LongTerm configures predictor training.
	LongTerm predict.LongTermConfig
}

// DefaultClusterConfig returns the paper's deployed configuration.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Policy:     scheduler.PolicyCoach,
		Windows:    timeseries.Windows{PerDay: 6},
		Percentile: 95,
		LongTerm:   predict.DefaultLongTermConfig(),
	}
}

// ClusterManager is the centralized manager of Fig. 13: it owns the
// prediction model and the cluster scheduler, converts incoming VM
// requests into guaranteed/oversubscribed CoachVM allocations, and places
// them onto servers.
type ClusterManager struct {
	cfg   ClusterConfig
	sched *scheduler.Scheduler
	model *predict.LongTerm
	tr    *trace.Trace
}

// NewClusterManager builds a manager over the fleet.
func NewClusterManager(fleet *cluster.Fleet, cfg ClusterConfig) (*ClusterManager, error) {
	if cfg.Percentile == 0 {
		cfg.Percentile = 95
	}
	if cfg.Windows.PerDay == 0 {
		cfg.Windows = timeseries.Windows{PerDay: 6}
	}
	sched, err := scheduler.New(fleet, cfg.Windows)
	if err != nil {
		return nil, err
	}
	return &ClusterManager{cfg: cfg, sched: sched}, nil
}

// Train fits the long-term prediction model on the trace up to sample
// upTo. It must be called before Request for any policy other than None.
func (m *ClusterManager) Train(tr *trace.Trace, upTo int) error {
	ltCfg := m.cfg.LongTerm
	ltCfg.Windows = m.cfg.Windows
	ltCfg.Percentile = m.cfg.Percentile
	model, err := predict.TrainLongTerm(tr, upTo, ltCfg)
	if err != nil {
		return err
	}
	m.model = model
	m.tr = tr
	return nil
}

// Request converts a VM request into a CoachVM according to the policy:
// the cluster manager "converts the request into resource requirements and
// oversubscription rates" (§3.1). VMs without sufficient history are
// conservatively fully guaranteed.
func (m *ClusterManager) Request(vm *trace.VM) (*coachvm.CVM, error) {
	var pred coachvm.Prediction
	ok := false
	if m.model != nil && m.cfg.Policy != scheduler.PolicyNone {
		pred, ok = m.model.Predict(m.tr, vm)
	}
	return scheduler.BuildCVM(m.cfg.Policy, vm.ID, vm.Alloc, pred, ok, m.cfg.Windows)
}

// Place assigns a CoachVM to a server; ok is false when the fleet is full.
func (m *ClusterManager) Place(cvm *coachvm.CVM) (server int, ok bool) {
	return m.sched.Place(cvm)
}

// Deallocate removes a VM from its server.
func (m *ClusterManager) Deallocate(vmID int) { m.sched.Remove(vmID) }

// Scheduler exposes the underlying scheduler for inspection.
func (m *ClusterManager) Scheduler() *scheduler.Scheduler { return m.sched }

// Model exposes the trained prediction model (nil before Train).
func (m *ClusterManager) Model() *predict.LongTerm { return m.model }

// ServerConfig configures a ServerManager.
type ServerConfig struct {
	// Memory is the hardware/hypervisor parameterization.
	Memory memsim.Config
	// Agent configures monitoring/prediction/mitigation.
	Agent agent.Config
	// PoolGB is the oversubscribed pool's initial physical size.
	PoolGB float64
	// UnallocatedGB is spare server memory available to Extend.
	UnallocatedGB float64
}

// DefaultServerConfig returns a server with the default memory parameters
// and a reactive trim-only agent.
func DefaultServerConfig(poolGB, unallocGB float64) ServerConfig {
	return ServerConfig{
		Memory:        memsim.DefaultConfig(),
		Agent:         agent.DefaultConfig(),
		PoolGB:        poolGB,
		UnallocatedGB: unallocGB,
	}
}

// ServerManager is the local component of Fig. 13: the hypervisor-level
// memory manager plus the oversubscription agent supervising it.
type ServerManager struct {
	Server *memsim.Server
	Agent  *agent.Agent
}

// NewServerManager builds the per-server stack.
func NewServerManager(cfg ServerConfig) (*ServerManager, error) {
	srv := memsim.NewServer(cfg.Memory, cfg.PoolGB, cfg.UnallocatedGB)
	ag, err := agent.New(cfg.Agent, srv)
	if err != nil {
		return nil, err
	}
	return &ServerManager{Server: srv, Agent: ag}, nil
}

// Attach registers a CoachVM's memory on the server: the guaranteed
// memory portion becomes the PA region, the rest is VA.
func (sm *ServerManager) Attach(cvm *coachvm.CVM) (*memsim.VMMem, error) {
	size := cvm.Alloc[resources.Memory]
	pa := cvm.Guaranteed[resources.Memory]
	if pa > size {
		return nil, fmt.Errorf("core: vm %d guaranteed %.1fGB exceeds size %.1fGB", cvm.ID, pa, size)
	}
	vm, err := memsim.NewVMMem(cvm.ID, size, pa)
	if err != nil {
		return nil, err
	}
	if err := sm.Server.AddVM(vm); err != nil {
		return nil, err
	}
	return vm, nil
}

// Tick advances the server by dt seconds: hypervisor memory management
// first, then the agent's monitoring/prediction/mitigation pass. The
// returned frame is owned by the underlying server and reused on the next
// Tick.
func (sm *ServerManager) Tick(dt float64) (*memsim.TickFrame, error) {
	st, err := sm.Server.Tick(dt)
	if err != nil {
		return nil, err
	}
	sm.Agent.Tick(dt, st)
	return st, nil
}
