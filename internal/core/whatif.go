package core

import (
	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/scheduler"
)

// WhatIfScorer batches the placement question every control-plane
// decision asks: "admit/migrate/recover VM X onto any of K candidate
// servers" (docs/DESIGN.md §14). One Score call runs a single
// scratch-backed candidate enumeration (scheduler.CandidatesInto) and a
// single batched pool-pressure sweep (DataPlane.ProjectPressures) over
// the whole ranking, instead of the per-candidate calls the decision
// loops used to make — so a decision's cost is one pass over K servers,
// and the scratch is reused across decisions, keeping the serving and
// simulation hot paths allocation-free in steady state.
//
// Decisions are exactly those of the unbatched loops: PickPlacement takes
// the first candidate in rank order whose projected pressure clears the
// bar, PickRecovery and PickSettle take the least-pressured candidate
// with ties broken on rank. The golden-equivalence and migration-behavior
// tests pin this.
//
// A scorer belongs to one shard and is driven under that shard's lock (or
// from its single replay goroutine), like the scheduler and data plane it
// wraps; it is not internally synchronized.
type WhatIfScorer struct {
	sched *scheduler.Scheduler
	dp    *DataPlane

	cands []scheduler.Candidate
	press []float64

	// rollout is the multi-request scratch ScoreMany hands out
	// (rollout.go); one live rollout per scorer, like cands/press.
	rollout Rollout

	batches int64 // pressure sweeps run
	scored  int64 // candidates scored across sweeps
}

// WhatIfStats counts the scorer's batched work: Batches pressure sweeps
// covering Scored candidates in total. A decision path that batches
// correctly runs one sweep per decision (recovery's least-pressured
// fallback adds a second), however many candidates the fleet offers —
// the call-count tests in serve and core assert exactly that.
type WhatIfStats struct {
	Batches int64
	Scored  int64
}

// NewWhatIfScorer builds a scorer over one shard's scheduler and data
// plane (the same pair a MigrationEngine coordinates).
func NewWhatIfScorer(sched *scheduler.Scheduler, dp *DataPlane) *WhatIfScorer {
	return &WhatIfScorer{sched: sched, dp: dp}
}

// Stats returns the scorer's cumulative counters.
func (w *WhatIfScorer) Stats() WhatIfStats {
	return WhatIfStats{Batches: w.batches, Scored: w.scored}
}

// Score ranks cvm's feasible servers (excluding exclude, -1 for none) and
// projects every candidate pool's occupancy after absorbing needGB, as
// one enumeration plus one batched sweep. Both returned slices are the
// scorer's scratch — valid only until the next Score call, never to be
// retained.
func (w *WhatIfScorer) Score(cvm *coachvm.CVM, exclude int, needGB float64) ([]scheduler.Candidate, []float64) {
	w.cands = w.sched.CandidatesInto(cvm, exclude, w.cands[:0])
	w.press = w.dp.ProjectPressures(w.cands, needGB, w.press)
	w.batches++
	w.scored += int64(len(w.cands))
	return w.cands, w.press
}

// rescore re-projects the current candidate ranking under a different
// incoming demand without re-enumerating — recovery's fallback reuses the
// ranking Score just built.
func (w *WhatIfScorer) rescore(needGB float64) []float64 {
	w.press = w.dp.ProjectPressures(w.cands, needGB, w.press)
	w.batches++
	w.scored += int64(len(w.cands))
	return w.press
}

// PickPlacement returns the best-fit candidate whose pool, after
// absorbing needGB, stays below pressureFrac (ok=false when none
// qualifies) — PickPlacement's decision, one batched pass.
func (w *WhatIfScorer) PickPlacement(cvm *coachvm.CVM, exclude int, needGB, pressureFrac float64) (scheduler.Candidate, bool) {
	cands, press := w.Score(cvm, exclude, needGB)
	for i, c := range cands {
		if press[i] < pressureFrac {
			return c, true
		}
	}
	return scheduler.Candidate{}, false
}

// PickRecovery returns the server a crash-evicted VM re-admits to: the
// pressure-filtered best fit, else the least-pressured feasible server —
// PickRecovery's decision. The fallback re-projects the ranking already
// enumerated (at zero incoming demand, i.e. current occupancy) rather
// than enumerating again.
func (w *WhatIfScorer) PickRecovery(cvm *coachvm.CVM, pressureFrac float64) (int, bool) {
	cands, press := w.Score(cvm, -1, VAPeakGB(cvm))
	for i, c := range cands {
		if press[i] < pressureFrac {
			return c.Server, true
		}
	}
	if len(cands) == 0 {
		return -1, false
	}
	press = w.rescore(0)
	best, bestPressure := -1, 0.0
	for i, c := range cands {
		if p := press[i]; best < 0 || p < bestPressure {
			best, bestPressure = c.Server, p
		}
	}
	return best, best >= 0
}

// PickSettle returns the least-pressured feasible server for a migration
// that found no unpressured target (ties break on candidate rank, i.e.
// best fit), -1 when nothing in the shard fits — settleLocal's decision,
// one batched pass at current occupancy.
func (w *WhatIfScorer) PickSettle(cvm *coachvm.CVM, exclude int) int {
	cands, press := w.Score(cvm, exclude, 0)
	best, bestPressure := -1, 0.0
	for i, c := range cands {
		if p := press[i]; best < 0 || p < bestPressure {
			best, bestPressure = c.Server, p
		}
	}
	return best
}

// PickPlacement ranks cvm's feasible servers by the scheduler's best-fit
// policy and returns the best one whose pool, after absorbing needGB of
// incoming resident demand, stays below pressureFrac occupancy (ok=false
// when none qualifies). It is the single placement decision shared by
// same-shard migration landing, the cross-shard apply step and serve's
// pressure-aware admission; long-lived callers hold a WhatIfScorer and
// use its methods so the scratch persists across decisions — this
// package-level form builds a transient scorer for one-shot callers.
func PickPlacement(sched *scheduler.Scheduler, dp *DataPlane, cvm *coachvm.CVM, exclude int, needGB, pressureFrac float64) (scheduler.Candidate, bool) {
	return NewWhatIfScorer(sched, dp).PickPlacement(cvm, exclude, needGB, pressureFrac)
}

// PickRecovery chooses the server a crash-evicted VM re-admits to: the
// pressure-filtered best fit (PickPlacement), else the least-pressured
// feasible server — after a server failure the fleet is short capacity,
// so a pressured-but-feasible home beats losing the VM. ok=false means
// nothing in the shard can host it and the VM is lost. The failure-domain
// engines (sim fault processing, serve's crash handler) hold per-shard
// scorers and call their PickRecovery; this package-level form builds a
// transient scorer for one-shot callers.
func PickRecovery(sched *scheduler.Scheduler, dp *DataPlane, cvm *coachvm.CVM, pressureFrac float64) (int, bool) {
	return NewWhatIfScorer(sched, dp).PickRecovery(cvm, pressureFrac)
}
