package core

import (
	"fmt"
	"sort"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/memsim"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
)

// This file implements the fleet-scale memory data plane: one
// memsim.Server + oversubscription agent per fleet server, managed as a
// group so the cluster simulator (internal/sim) and the serving layer
// (internal/serve) drive the same machinery. A DataPlane covers one
// cluster shard — the same partition the scheduler and the parallel
// simulator use — so shards tick concurrently without sharing state.
// See docs/DESIGN.md §9.

// DataPlaneConfig sizes the per-server data planes of a fleet.
type DataPlaneConfig struct {
	// Memory is the hardware/hypervisor parameterization of every server.
	Memory memsim.Config
	// Agent configures each server's monitoring/prediction/mitigation
	// agent (Policy and Mode select the ladder under test).
	Agent agent.Config
	// PoolFrac sizes the oversubscribed pool as a fraction of the
	// server's memory capacity; the guaranteed (PA) portions are assumed
	// to come out of the remainder.
	PoolFrac float64
	// UnallocFrac is the spare memory Extend can claim, as a fraction of
	// the server's memory capacity.
	UnallocFrac float64
	// AlwaysTick disables sparse ticking: every server runs a full memsim
	// tick on every Tick even when provably steady. The event-driven
	// simulator's dense reference engine sets it so the golden-equivalence
	// tests compare the sparse path against a ground-truth full replay;
	// production paths leave it off.
	AlwaysTick bool
}

// DefaultDataPlaneConfig returns the fleet defaults: a quarter of each
// server's memory backs the oversubscribed pool and a tenth is held back
// for Extend, with the §3.6 agent settings.
func DefaultDataPlaneConfig() DataPlaneConfig {
	return DataPlaneConfig{
		Memory:      memsim.DefaultConfig(),
		Agent:       agent.DefaultConfig(),
		PoolFrac:    0.25,
		UnallocFrac: 0.10,
	}
}

// AgentCounters aggregates the mitigation agents' evaluation counters.
type AgentCounters struct {
	Contentions int
	Trims       int
	Extends     int
	Migrations  int
}

// Add returns the element-wise sum of two counter sets.
func (c AgentCounters) Add(o AgentCounters) AgentCounters {
	c.Contentions += o.Contentions
	c.Trims += o.Trims
	c.Extends += o.Extends
	c.Migrations += o.Migrations
	return c
}

// attachment records where a VM's memory lives and how to rebuild it
// after a live migration re-homes it.
type attachment struct {
	server int
	sizeGB float64
	paGB   float64
	wss    float64
}

// CompletedMigration reports one VM whose live migration finished during
// a Tick: its memory has left the source server and awaits a landing
// decision. The MigrationEngine resolves it — re-placing the VM through
// the scheduler's placement policy and re-attaching its memory warm —
// same-shard, or cross-shard via a MigrationRequest.
type CompletedMigration struct {
	VMID int
	// Server is the source server index the memory departed from.
	Server int
	// SizeGB and PAGB reproduce the VM's memory shape at the target.
	SizeGB float64
	PAGB   float64
	// WSS is the working set the VM carried when the migration completed.
	WSS float64
}

// DataPlane manages the memory data planes of one shard's servers:
// attachment and detachment of VM memory, per-tick working-set updates,
// and surfacing of completed live migrations for the migration engine to
// land. All operations are deterministic — iteration follows the server
// slice and ascending VM ids — so replays produce bit-identical results
// for any worker count. It is not safe for concurrent use; callers (one
// simulator shard, one serve shard under its lock) serialize access.
type DataPlane struct {
	cfg     DataPlaneConfig
	servers []*ServerManager
	frames  []*memsim.TickFrame // last Tick's frames, parallel to servers
	vms     map[int]*attachment

	// steady marks servers whose next Tick is a provable no-op: the last
	// full tick moved nothing (memsim.Server.Quiet), no operations are in
	// flight, and no attach/detach/working-set mutation has touched the
	// server since. Tick skips them — the cached frame from the last full
	// tick is bit-identical to what re-ticking would produce — while the
	// agent still runs every tick (TickIdle) so its monitoring clock and
	// predictor state evolve exactly as under full ticking. Every mutating
	// DataPlane method clears the flag for the servers it touches.
	steady []bool

	completed []CompletedMigration // Tick scratch, reused across ticks
}

// NewDataPlane builds one ServerManager per fleet server, sizing pools
// from each server's memory capacity.
func NewDataPlane(cfg DataPlaneConfig, servers []*cluster.Server) (*DataPlane, error) {
	if cfg.PoolFrac <= 0 || cfg.PoolFrac > 1 {
		return nil, fmt.Errorf("core: pool fraction %g outside (0,1]", cfg.PoolFrac)
	}
	if cfg.UnallocFrac < 0 || cfg.UnallocFrac > 1 {
		return nil, fmt.Errorf("core: unallocated fraction %g outside [0,1]", cfg.UnallocFrac)
	}
	d := &DataPlane{
		cfg:     cfg,
		servers: make([]*ServerManager, len(servers)),
		frames:  make([]*memsim.TickFrame, len(servers)),
		vms:     make(map[int]*attachment),
		steady:  make([]bool, len(servers)),
	}
	for i, srv := range servers {
		mem := srv.Capacity()[resources.Memory]
		sm, err := NewServerManager(ServerConfig{
			Memory:        cfg.Memory,
			Agent:         cfg.Agent,
			PoolGB:        cfg.PoolFrac * mem,
			UnallocatedGB: cfg.UnallocFrac * mem,
		})
		if err != nil {
			return nil, err
		}
		d.servers[i] = sm
		// A freshly built server hosts no VMs, has no demand and no
		// operations: it is steady from birth, so a server that never
		// receives a VM never runs a single full tick.
		d.steady[i] = !cfg.AlwaysTick
		d.frames[i] = sm.Server.Frame()
	}
	return d, nil
}

// Steady reports, per server (parallel to Servers()), whether the last
// Tick skipped that server's memsim pass and reused its cached frame.
// The slice is owned by the DataPlane; callers must not mutate it. The
// simulator uses it to reuse cached per-server histogram contributions
// instead of re-walking unchanged frames.
func (d *DataPlane) Steady() []bool { return d.steady }

// touch marks a server busy: its next Tick must run the full memsim pass.
func (d *DataPlane) touch(server int) {
	if server >= 0 && server < len(d.steady) {
		d.steady[server] = false
	}
}

// Servers exposes the per-server managers (shared slice: do not mutate).
func (d *DataPlane) Servers() []*ServerManager { return d.servers }

// Attached returns the number of VMs currently attached.
func (d *DataPlane) Attached() int { return len(d.vms) }

// ServerOf returns the index of the server hosting id's memory, or -1 —
// including for a VM whose live migration completed but has not been
// landed by the migration engine yet (its memory is in flight). Once
// landed, memory and scheduler placement agree by construction
// (docs/DESIGN.md §10).
func (d *DataPlane) ServerOf(id int) int {
	if att, ok := d.vms[id]; ok {
		return att.server
	}
	return -1
}

// Attach places VM id's memory on server: the guaranteed portion paGB
// becomes the PA region, the rest of sizeGB is oversubscribed VA.
func (d *DataPlane) Attach(server, id int, sizeGB, paGB float64) error {
	if server < 0 || server >= len(d.servers) {
		return fmt.Errorf("core: data-plane server %d outside [0,%d)", server, len(d.servers))
	}
	if _, dup := d.vms[id]; dup {
		return fmt.Errorf("core: vm %d already attached", id)
	}
	if paGB > sizeGB {
		paGB = sizeGB
	}
	vm, err := memsim.NewVMMem(id, sizeGB, paGB)
	if err != nil {
		return err
	}
	if err := d.servers[server].Server.AddVM(vm); err != nil {
		return err
	}
	d.vms[id] = &attachment{server: server, sizeGB: sizeGB, paGB: paGB}
	d.touch(server)
	return nil
}

// Detach removes VM id's memory, freeing its pool frames. Returns false
// when the VM is not attached.
func (d *DataPlane) Detach(id int) bool {
	att, ok := d.vms[id]
	if !ok {
		return false
	}
	delete(d.vms, id)
	d.touch(att.server)
	return d.servers[att.server].Server.RemoveVM(id)
}

// CrashServer fails server: every attached VM's memory is lost (the
// hypervisor state is gone, so there is nothing to migrate), the
// memsim server reboots empty with its boot-time pool split, and the
// evicted VM ids are returned in ascending order for the caller to
// re-admit or declare lost. The agent is not reset — its monitoring
// history and counters describe the fleet's past, which a reboot does
// not rewrite. The caller owns marking the server down in its
// scheduler; a recovered server simply starts accepting placements
// again.
func (d *DataPlane) CrashServer(server int) []int {
	if server < 0 || server >= len(d.servers) {
		return nil
	}
	var evicted []int
	for id, att := range d.vms {
		if att.server == server {
			evicted = append(evicted, id)
		}
	}
	sort.Ints(evicted)
	for _, id := range evicted {
		delete(d.vms, id)
	}
	d.servers[server].Server.Crash()
	d.touch(server)
	d.frames[server] = d.servers[server].Server.Frame()
	return evicted
}

// SetWSS drives VM id's working set (a no-op for unattached ids and for
// VMs whose memory is mid-migration off their server).
func (d *DataPlane) SetWSS(id int, wss float64) {
	att, ok := d.vms[id]
	if !ok {
		return
	}
	if att.wss == wss {
		// Value-unchanged updates are no-ops on the VM's page populations
		// (VMMem.SetWSS with the same working set moves nothing), so they
		// must not wake a steady server. serve re-asserts every attached
		// VM's working set each tick; this guard is what keeps those
		// asserts from defeating sparse ticking.
		return
	}
	att.wss = wss
	if vm := d.servers[att.server].Server.VM(id); vm != nil {
		vm.SetWSS(wss)
		d.touch(att.server)
	}
}

// Tick advances every server by dt seconds (hypervisor paging plus agent
// pass). It returns one stats frame per server, parallel to Servers(),
// plus the VMs whose live migrations completed mid-tick: their memory has
// left its source server and they are detached until the caller lands
// them (MigrationEngine.Resolve same-shard, or a cross-shard apply step).
// Frames and the completed slice are owned by the DataPlane and
// overwritten on the next Tick. The completed order is deterministic:
// ascending server index, then ascending VM id within a server.
func (d *DataPlane) Tick(dt float64) ([]*memsim.TickFrame, []CompletedMigration, error) {
	d.completed = d.completed[:0]
	for i, sm := range d.servers {
		if d.steady[i] {
			// Provably idle since its last full tick: reuse that tick's
			// frame (bit-identical to re-ticking) and advance only the
			// clocks. The agent still monitors every tick; if its pass
			// starts a mitigation, the server has work again and the next
			// Tick runs it for real. A steady server cannot complete a
			// migration (in-flight operations preclude steadiness), so
			// the departed scan is skipped too.
			d.frames[i] = sm.Server.SkipTick(dt)
			sm.Agent.TickIdle(dt)
			if sm.Server.OpsInFlight() > 0 {
				d.steady[i] = false
			}
			continue
		}
		f, err := sm.Tick(dt)
		if err != nil {
			return nil, nil, err
		}
		d.frames[i] = f
		if !d.cfg.AlwaysTick {
			d.steady[i] = sm.Server.Quiet() && sm.Server.OpsInFlight() == 0
		}
		for j := 0; j < f.Len(); j++ {
			if !f.Departed(j) {
				continue
			}
			id := f.ID(j)
			att, ok := d.vms[id]
			if !ok || att.server != i {
				continue // detached mid-tick (VM ended)
			}
			d.completed = append(d.completed, CompletedMigration{
				VMID:   id,
				Server: i,
				SizeGB: att.sizeGB,
				PAGB:   att.paGB,
				WSS:    att.wss,
			})
			delete(d.vms, id)
		}
	}
	return d.frames, d.completed, nil
}

// AttachMigrated lands a migrated VM's memory on server: the VM's memory
// shape is rebuilt, its working set restored, and the pre-copied share of
// its pending demand — everything but dirtyFrac, the fraction touched
// after the final pre-copy pass — arrives resident without fault cost
// (memsim.Server.AdmitWarm). The dirty remainder demand-faults at the
// target like any cold page. Returns the GB that arrived warm.
func (d *DataPlane) AttachMigrated(server, id int, sizeGB, paGB, wss, dirtyFrac float64) (warmGB float64, err error) {
	if dirtyFrac < 0 {
		dirtyFrac = 0
	}
	if dirtyFrac > 1 {
		dirtyFrac = 1
	}
	if err := d.Attach(server, id, sizeGB, paGB); err != nil {
		return 0, err
	}
	d.SetWSS(id, wss)
	srv := d.servers[server].Server
	if vm := srv.VM(id); vm != nil {
		warmGB = srv.AdmitWarm(id, (1-dirtyFrac)*vm.Missing())
	}
	return warmGB, nil
}

// PressureOf returns server's pool occupancy (used fraction, 1 when the
// server has no pool) — the signal migration targeting and pressure-aware
// admission filter candidates on.
func (d *DataPlane) PressureOf(server int) float64 {
	return d.ProjectedPressure(server, 0)
}

// ProjectedPressure returns server's pool occupancy after absorbing
// incomingGB of additional resident demand — what the pool would look
// like once a migrated-in working set (or a newly admitted VM's
// spillover) lands. Filtering candidates on the projection instead of
// the current occupancy keeps migrations from dumping a large working
// set onto a pool too small to hold it, which would just move the
// thrashing. Returns 1 when the server has no pool.
func (d *DataPlane) ProjectedPressure(server int, incomingGB float64) float64 {
	srv := d.servers[server].Server
	pool := srv.PoolGB()
	if pool <= 0 {
		return 1
	}
	if incomingGB < 0 {
		incomingGB = 0
	}
	return (srv.PoolUsed() + incomingGB) / pool
}

// ProjectPressures is the batched ProjectedPressure sweep behind the
// what-if scorer: it fills out[i] with candidate i's pool occupancy after
// absorbing incomingGB (reallocating out only when too small) and returns
// the slice used. One call scores a whole candidate ranking; the values
// are exactly ProjectedPressure per server.
func (d *DataPlane) ProjectPressures(cands []scheduler.Candidate, incomingGB float64, out []float64) []float64 {
	if cap(out) < len(cands) {
		out = make([]float64, len(cands))
	}
	out = out[:len(cands)]
	if incomingGB < 0 {
		incomingGB = 0
	}
	for i, c := range cands {
		srv := d.servers[c.Server].Server
		pool := srv.PoolGB()
		if pool <= 0 {
			out[i] = 1
			continue
		}
		out[i] = (srv.PoolUsed() + incomingGB) / pool
	}
	return out
}

// PoolStatesInto fills used[i] and pool[i] with server i's pool frames in
// use and pool size, as one sweep over the shard. It is the batched-
// admission form of ProjectPressures: the rollout captures the raw pool
// state once per batch and derives every (request, server) projection as
// (used+need)/pool — the exact ProjectedPressure arithmetic — so one sweep
// serves however many requests coalesced, and a post-commit delta only has
// to refresh the one server a placement touched. Both slices must be
// len(Servers()).
func (d *DataPlane) PoolStatesInto(used, pool []float64) {
	for i, sm := range d.servers {
		used[i] = sm.Server.PoolUsed()
		pool[i] = sm.Server.PoolGB()
	}
}

// Totals sums the servers' cumulative data-plane volumes in server order.
func (d *DataPlane) Totals() memsim.Totals {
	var t memsim.Totals
	for _, sm := range d.servers {
		t = t.Add(sm.Server.Totals())
	}
	return t
}

// Counters sums the agents' mitigation counters in server order.
func (d *DataPlane) Counters() AgentCounters {
	var c AgentCounters
	for _, sm := range d.servers {
		c.Contentions += sm.Agent.ContentionsDetected
		c.Trims += sm.Agent.TrimsStarted
		c.Extends += sm.Agent.ExtendsStarted
		c.Migrations += sm.Agent.MigrationsStarted
	}
	return c
}

// PoolGB returns the fleet-wide oversubscribed pool size.
func (d *DataPlane) PoolGB() float64 {
	var t float64
	for _, sm := range d.servers {
		t += sm.Server.PoolGB()
	}
	return t
}

// PoolUsedGB returns the fleet-wide pool frames in use.
func (d *DataPlane) PoolUsedGB() float64 {
	var t float64
	for _, sm := range d.servers {
		t += sm.Server.PoolUsed()
	}
	return t
}
