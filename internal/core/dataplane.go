package core

import (
	"fmt"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/memsim"
	"github.com/coach-oss/coach/internal/resources"
)

// This file implements the fleet-scale memory data plane: one
// memsim.Server + oversubscription agent per fleet server, managed as a
// group so the cluster simulator (internal/sim) and the serving layer
// (internal/serve) drive the same machinery. A DataPlane covers one
// cluster shard — the same partition the scheduler and the parallel
// simulator use — so shards tick concurrently without sharing state.
// See docs/DESIGN.md §9.

// DataPlaneConfig sizes the per-server data planes of a fleet.
type DataPlaneConfig struct {
	// Memory is the hardware/hypervisor parameterization of every server.
	Memory memsim.Config
	// Agent configures each server's monitoring/prediction/mitigation
	// agent (Policy and Mode select the ladder under test).
	Agent agent.Config
	// PoolFrac sizes the oversubscribed pool as a fraction of the
	// server's memory capacity; the guaranteed (PA) portions are assumed
	// to come out of the remainder.
	PoolFrac float64
	// UnallocFrac is the spare memory Extend can claim, as a fraction of
	// the server's memory capacity.
	UnallocFrac float64
}

// DefaultDataPlaneConfig returns the fleet defaults: a quarter of each
// server's memory backs the oversubscribed pool and a tenth is held back
// for Extend, with the §3.6 agent settings.
func DefaultDataPlaneConfig() DataPlaneConfig {
	return DataPlaneConfig{
		Memory:      memsim.DefaultConfig(),
		Agent:       agent.DefaultConfig(),
		PoolFrac:    0.25,
		UnallocFrac: 0.10,
	}
}

// AgentCounters aggregates the mitigation agents' evaluation counters.
type AgentCounters struct {
	Contentions int
	Trims       int
	Extends     int
	Migrations  int
}

// Add returns the element-wise sum of two counter sets.
func (c AgentCounters) Add(o AgentCounters) AgentCounters {
	c.Contentions += o.Contentions
	c.Trims += o.Trims
	c.Extends += o.Extends
	c.Migrations += o.Migrations
	return c
}

// attachment records where a VM's memory lives and how to rebuild it
// after a live migration re-homes it.
type attachment struct {
	server int
	sizeGB float64
	paGB   float64
	wss    float64
}

// DataPlane manages the memory data planes of one shard's servers:
// attachment and detachment of VM memory, per-tick working-set updates,
// and re-homing of completed live migrations. All operations are
// deterministic — iteration follows the server slice and ascending VM
// ids — so replays produce bit-identical results for any worker count.
// It is not safe for concurrent use; callers (one simulator shard, one
// serve shard under its lock) serialize access.
type DataPlane struct {
	cfg     DataPlaneConfig
	servers []*ServerManager
	frames  []*memsim.TickFrame // last Tick's frames, parallel to servers
	vms     map[int]*attachment

	migrated []int // Tick scratch: ids re-homed by completed migrations
}

// NewDataPlane builds one ServerManager per fleet server, sizing pools
// from each server's memory capacity.
func NewDataPlane(cfg DataPlaneConfig, servers []*cluster.Server) (*DataPlane, error) {
	if cfg.PoolFrac <= 0 || cfg.PoolFrac > 1 {
		return nil, fmt.Errorf("core: pool fraction %g outside (0,1]", cfg.PoolFrac)
	}
	if cfg.UnallocFrac < 0 || cfg.UnallocFrac > 1 {
		return nil, fmt.Errorf("core: unallocated fraction %g outside [0,1]", cfg.UnallocFrac)
	}
	d := &DataPlane{
		cfg:     cfg,
		servers: make([]*ServerManager, len(servers)),
		frames:  make([]*memsim.TickFrame, len(servers)),
		vms:     make(map[int]*attachment),
	}
	for i, srv := range servers {
		mem := srv.Capacity()[resources.Memory]
		sm, err := NewServerManager(ServerConfig{
			Memory:        cfg.Memory,
			Agent:         cfg.Agent,
			PoolGB:        cfg.PoolFrac * mem,
			UnallocatedGB: cfg.UnallocFrac * mem,
		})
		if err != nil {
			return nil, err
		}
		d.servers[i] = sm
	}
	return d, nil
}

// Servers exposes the per-server managers (shared slice: do not mutate).
func (d *DataPlane) Servers() []*ServerManager { return d.servers }

// Attached returns the number of VMs currently attached.
func (d *DataPlane) Attached() int { return len(d.vms) }

// ServerOf returns the index of the server hosting id's memory, or -1.
// After a completed live migration this can differ from the scheduler's
// placement: the data plane re-homes memory within the shard while the
// capacity bookkeeping stays put (see docs/DESIGN.md §9).
func (d *DataPlane) ServerOf(id int) int {
	if att, ok := d.vms[id]; ok {
		return att.server
	}
	return -1
}

// Attach places VM id's memory on server: the guaranteed portion paGB
// becomes the PA region, the rest of sizeGB is oversubscribed VA.
func (d *DataPlane) Attach(server, id int, sizeGB, paGB float64) error {
	if server < 0 || server >= len(d.servers) {
		return fmt.Errorf("core: data-plane server %d outside [0,%d)", server, len(d.servers))
	}
	if _, dup := d.vms[id]; dup {
		return fmt.Errorf("core: vm %d already attached", id)
	}
	if paGB > sizeGB {
		paGB = sizeGB
	}
	vm, err := memsim.NewVMMem(id, sizeGB, paGB)
	if err != nil {
		return err
	}
	if err := d.servers[server].Server.AddVM(vm); err != nil {
		return err
	}
	d.vms[id] = &attachment{server: server, sizeGB: sizeGB, paGB: paGB}
	return nil
}

// Detach removes VM id's memory, freeing its pool frames. Returns false
// when the VM is not attached.
func (d *DataPlane) Detach(id int) bool {
	att, ok := d.vms[id]
	if !ok {
		return false
	}
	delete(d.vms, id)
	return d.servers[att.server].Server.RemoveVM(id)
}

// SetWSS drives VM id's working set (a no-op for unattached ids and for
// VMs whose memory is mid-migration off their server).
func (d *DataPlane) SetWSS(id int, wss float64) {
	att, ok := d.vms[id]
	if !ok {
		return
	}
	att.wss = wss
	if vm := d.servers[att.server].Server.VM(id); vm != nil {
		vm.SetWSS(wss)
	}
}

// Tick advances every server by dt seconds (hypervisor paging plus agent
// pass) and re-homes VMs whose live migrations completed. It returns one
// stats frame per server, parallel to Servers(); frames are owned by the
// servers and overwritten on the next Tick.
func (d *DataPlane) Tick(dt float64) ([]*memsim.TickFrame, error) {
	d.migrated = d.migrated[:0]
	for i, sm := range d.servers {
		f, err := sm.Tick(dt)
		if err != nil {
			return nil, err
		}
		d.frames[i] = f
		for j := 0; j < f.Len(); j++ {
			if !f.Departed(j) {
				continue
			}
			id := f.ID(j)
			if att, ok := d.vms[id]; ok && att.server == i {
				d.migrated = append(d.migrated, id)
			}
		}
	}
	for _, id := range d.migrated {
		if err := d.rehome(id); err != nil {
			return nil, err
		}
	}
	return d.frames, nil
}

// rehome lands a migrated VM's memory on the shard server with the most
// free pool (ties break on the lowest index, so the choice is
// deterministic), preferring a server other than the source. The memory
// arrives cold: the working set demand-faults back in at the target — the
// post-migration warmup live migration pays in practice. With a
// single-server shard the VM re-lands on the same host.
func (d *DataPlane) rehome(id int) error {
	att := d.vms[id]
	target, bestFree := -1, -1.0
	for i, sm := range d.servers {
		if i == att.server && len(d.servers) > 1 {
			continue
		}
		if free := sm.Server.PoolFree(); free > bestFree {
			target, bestFree = i, free
		}
	}
	vm, err := memsim.NewVMMem(id, att.sizeGB, att.paGB)
	if err != nil {
		return err
	}
	if err := d.servers[target].Server.AddVM(vm); err != nil {
		return err
	}
	att.server = target
	vm.SetWSS(att.wss)
	return nil
}

// Totals sums the servers' cumulative data-plane volumes in server order.
func (d *DataPlane) Totals() memsim.Totals {
	var t memsim.Totals
	for _, sm := range d.servers {
		t = t.Add(sm.Server.Totals())
	}
	return t
}

// Counters sums the agents' mitigation counters in server order.
func (d *DataPlane) Counters() AgentCounters {
	var c AgentCounters
	for _, sm := range d.servers {
		c.Contentions += sm.Agent.ContentionsDetected
		c.Trims += sm.Agent.TrimsStarted
		c.Extends += sm.Agent.ExtendsStarted
		c.Migrations += sm.Agent.MigrationsStarted
	}
	return c
}

// PoolGB returns the fleet-wide oversubscribed pool size.
func (d *DataPlane) PoolGB() float64 {
	var t float64
	for _, sm := range d.servers {
		t += sm.Server.PoolGB()
	}
	return t
}

// PoolUsedGB returns the fleet-wide pool frames in use.
func (d *DataPlane) PoolUsedGB() float64 {
	var t float64
	for _, sm := range d.servers {
		t += sm.Server.PoolUsed()
	}
	return t
}
