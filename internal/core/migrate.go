package core

import (
	"fmt"

	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
)

// This file implements the unified live-migration engine (docs/DESIGN.md
// §10): one coordinator that lands completed live migrations by moving
// the scheduler's CVM bookkeeping and the VM's memory *together*, picks
// destinations through the scheduler's placement policy filtered by
// data-plane pool pressure, and models pre-copied pages arriving
// resident. Both the sharded simulator (internal/sim) and the serving
// layer (internal/serve) drive the same engine, so "where does a
// migrated VM land" has exactly one answer in the codebase. Migrations
// that cannot land in their home shard surface as MigrationRequests for
// the caller's cross-shard apply step.

// MigrationConfig parameterizes the migration engine.
type MigrationConfig struct {
	// DirtyFrac is the fraction of the working set dirtied after the
	// final pre-copy pass: it demand-faults at the target while the rest
	// arrives resident (§3.2 live migration; pre-copy converges to a
	// small dirty set).
	DirtyFrac float64
	// PressureFrac filters placement candidates: servers whose pool
	// occupancy is at or above this fraction are not migration targets —
	// landing a migrated working set on an already-pressured pool would
	// re-trigger the contention the migration was escaping.
	PressureFrac float64
	// CrossShard lets migrations that find no unpressured same-shard
	// target escape the shard: the engine emits a MigrationRequest for
	// the caller's inter-shard apply step instead of settling for a
	// pressured local server.
	CrossShard bool
}

// DefaultMigrationConfig returns the engine defaults: 20% of the working
// set re-dirtied during the final pre-copy round, targets accepted below
// 75% pool occupancy, same-shard only.
func DefaultMigrationConfig() MigrationConfig {
	return MigrationConfig{DirtyFrac: 0.2, PressureFrac: 0.75}
}

// MigrationConfigFor derives an engine configuration from caller knobs
// (0 keeps the default): the single place the simulator and serve turn
// their config fields into a MigrationConfig, so the two layers cannot
// drift. crossShard is ignored for a lone shard — there is nowhere to
// escape to, and emitting undeliverable requests would just defer the
// same-shard fallback.
func MigrationConfigFor(dirtyFrac, pressureFrac float64, crossShard bool, shards int) MigrationConfig {
	mc := DefaultMigrationConfig()
	if dirtyFrac > 0 {
		mc.DirtyFrac = dirtyFrac
	}
	if pressureFrac > 0 {
		mc.PressureFrac = pressureFrac
	}
	mc.CrossShard = crossShard && shards > 1
	return mc
}

// MigrationPlan records one landed migration: where the VM's capacity
// bookkeeping and memory moved, and how much of its working set arrived
// resident.
type MigrationPlan struct {
	VMID int
	From int
	To   int
	// WarmGB is the pre-copied volume that arrived resident at the
	// target (no fault cost).
	WarmGB float64
	// Relanded is true when no feasible target existed anywhere and the
	// VM re-landed on its source server: a failed migration.
	Relanded bool
}

// MigrationRequest is a completed live migration that could not land in
// its home shard: the VM's scheduler bookkeeping is still on its source
// server (capacity stays reserved until a destination commits — the
// reserve side of the two-phase handoff), while its memory is in flight.
// The caller's apply step either commits it to another shard or hands it
// back to the source engine's Reland.
type MigrationRequest struct {
	VMID int
	// SrcShard and SrcServer locate the reservation to release on commit.
	SrcShard  int
	SrcServer int
	// Tick is the evaluation tick the migration completed on; the
	// inter-shard apply step sorts requests by (Tick, SrcShard, VMID) so
	// the exchange is deterministic for any worker count.
	Tick int
	// CVM is the placed CoachVM (guaranteed/oversubscribed split) to
	// re-place at the destination.
	CVM *coachvm.CVM
	// SizeGB, PAGB and WSS reproduce the memory shape at the target.
	SizeGB float64
	PAGB   float64
	WSS    float64
}

// MigrationEngine coordinates one shard's scheduler and data plane: it
// resolves the data plane's completed live migrations into placements.
type MigrationEngine struct {
	cfg    MigrationConfig
	shard  int
	sched  *scheduler.Scheduler
	dp     *DataPlane
	scorer *WhatIfScorer
}

// NewMigrationEngine builds the engine for one shard. sched and dp must
// cover the same server slice in the same order.
func NewMigrationEngine(cfg MigrationConfig, shard int, sched *scheduler.Scheduler, dp *DataPlane) (*MigrationEngine, error) {
	if cfg.DirtyFrac < 0 || cfg.DirtyFrac > 1 {
		return nil, fmt.Errorf("core: dirty fraction %g outside [0,1]", cfg.DirtyFrac)
	}
	if cfg.PressureFrac <= 0 || cfg.PressureFrac > 1 {
		return nil, fmt.Errorf("core: pressure fraction %g outside (0,1]", cfg.PressureFrac)
	}
	if sched == nil || dp == nil {
		return nil, fmt.Errorf("core: migration engine needs both a scheduler and a data plane")
	}
	if len(sched.Servers()) != len(dp.Servers()) {
		return nil, fmt.Errorf("core: scheduler covers %d servers, data plane %d",
			len(sched.Servers()), len(dp.Servers()))
	}
	e := &MigrationEngine{cfg: cfg, shard: shard, sched: sched, dp: dp}
	e.scorer = NewWhatIfScorer(sched, dp)
	return e, nil
}

// Config returns the engine's configuration.
func (e *MigrationEngine) Config() MigrationConfig { return e.cfg }

// Scorer exposes the engine's what-if scorer so the layer driving the
// engine (sim shard, serve shard) can share one scratch — and one set of
// batching counters — across every decision on the shard.
func (e *MigrationEngine) Scorer() *WhatIfScorer { return e.scorer }

// VAPeakGB is the pool demand a CoachVM brings to a target server: the
// peak over time windows of its scheduled oversubscribed memory demand.
// Migration targeting projects this — not the instantaneous working-set
// spillover, which is often near zero right after a long pre-copy while
// the VM is cool — onto candidate pools, so a VM whose allocator-promised
// VA demand no pool can absorb is not bounced from one thrashing pool to
// the next.
func VAPeakGB(cvm *coachvm.CVM) float64 {
	var m float64
	for _, d := range cvm.VADemand[resources.Memory] {
		if d > m {
			m = d
		}
	}
	return m
}

// VANeed is the incoming pool demand of a cross-shard request.
func (r MigrationRequest) VANeed() float64 { return VAPeakGB(r.CVM) }

// Resolve lands the completed migrations of one Tick. Same-shard
// landings move the scheduler's capacity bookkeeping and the VM's memory
// together (scheduler.MigrateTo + AttachMigrated). When no same-shard
// server clears the pressure filter, the outcome depends on CrossShard:
// enabled, the migration becomes a MigrationRequest (bookkeeping stays
// reserved at the source until the apply step commits or relands it);
// disabled, the engine falls back to the least-pressured feasible server,
// or re-lands the VM on its source when nothing in the shard fits.
// tick tags emitted requests for deterministic cross-shard ordering.
func (e *MigrationEngine) Resolve(tick int, completed []CompletedMigration) ([]MigrationPlan, []MigrationRequest, error) {
	var plans []MigrationPlan
	var reqs []MigrationRequest
	for _, cm := range completed {
		cvm := e.sched.CVM(cm.VMID)
		if cvm == nil || e.sched.ServerOf(cm.VMID) != cm.Server {
			// The scheduler no longer holds this VM on that server: it
			// was released mid-migration. Its memory has nowhere to live;
			// drop it rather than re-attach an unowned VMMem.
			continue
		}
		if c, ok := e.scorer.PickPlacement(cvm, cm.Server, VAPeakGB(cvm), e.cfg.PressureFrac); ok {
			plan, err := e.commitLocal(cm, c.Server)
			if err != nil {
				return nil, nil, err
			}
			plans = append(plans, plan)
			continue
		}
		if e.cfg.CrossShard {
			reqs = append(reqs, MigrationRequest{
				VMID:      cm.VMID,
				SrcShard:  e.shard,
				SrcServer: cm.Server,
				Tick:      tick,
				CVM:       cvm,
				SizeGB:    cm.SizeGB,
				PAGB:      cm.PAGB,
				WSS:       cm.WSS,
			})
			continue
		}
		plan, err := e.settleLocal(cm, cvm)
		if err != nil {
			return nil, nil, err
		}
		plans = append(plans, plan)
	}
	return plans, reqs, nil
}

// settleLocal is the same-shard-only fallback when every feasible server
// is pressured: take the least-pressured one (ties break on candidate
// rank, i.e. best fit), or re-land on the source when nothing fits.
func (e *MigrationEngine) settleLocal(cm CompletedMigration, cvm *coachvm.CVM) (MigrationPlan, error) {
	best := e.scorer.PickSettle(cvm, cm.Server)
	if best < 0 {
		return e.Reland(cm)
	}
	return e.commitLocal(cm, best)
}

// commitLocal moves bookkeeping and memory to a same-shard target.
func (e *MigrationEngine) commitLocal(cm CompletedMigration, target int) (MigrationPlan, error) {
	if err := e.sched.MigrateTo(cm.VMID, target); err != nil {
		return MigrationPlan{}, fmt.Errorf("core: landing migrated vm %d: %w", cm.VMID, err)
	}
	warm, err := e.dp.AttachMigrated(target, cm.VMID, cm.SizeGB, cm.PAGB, cm.WSS, e.cfg.DirtyFrac)
	if err != nil {
		return MigrationPlan{}, err
	}
	return MigrationPlan{VMID: cm.VMID, From: cm.Server, To: target, WarmGB: warm}, nil
}

// The methods below are the cross-shard handoff protocol, driven by the
// caller that can see multiple shards (the simulator's sample-boundary
// exchange, serve's TickDataPlane). The destination engine runs
// PickInbound → Reserve → CommitInbound; the source engine runs
// ReleaseSource after the reservation holds (two-phase: capacity is
// reserved at the destination before the source lets go, so a crashed
// handoff never strands the VM without capacity anywhere). Settle and
// Reland are the declined paths.

// PickInbound ranks this shard's servers for an inbound cross-shard
// request: the best-fit candidate whose pool absorbs the incoming
// working set below the pressure bar.
func (e *MigrationEngine) PickInbound(req MigrationRequest) (scheduler.Candidate, bool) {
	return e.scorer.PickPlacement(req.CVM, -1, req.VANeed(), e.cfg.PressureFrac)
}

// Reserve places the request's CoachVM on an explicit server in this
// shard's scheduler — the reservation phase. Memory is not attached yet.
func (e *MigrationEngine) Reserve(req MigrationRequest, target int) error {
	return e.sched.PlaceAt(req.CVM, target)
}

// CancelReservation rolls a Reserve back (e.g. the source vanished
// between reserve and commit in serve's concurrent handoff).
func (e *MigrationEngine) CancelReservation(vmID int) {
	e.sched.Remove(vmID)
}

// CommitInbound attaches the request's memory to the reserved server,
// pre-copied pages arriving resident — the commit phase.
func (e *MigrationEngine) CommitInbound(req MigrationRequest, target int) (MigrationPlan, error) {
	warm, err := e.dp.AttachMigrated(target, req.VMID, req.SizeGB, req.PAGB, req.WSS, e.cfg.DirtyFrac)
	if err != nil {
		return MigrationPlan{}, err
	}
	return MigrationPlan{VMID: req.VMID, From: req.SrcServer, To: target, WarmGB: warm}, nil
}

// ReleaseSource drops the source-side capacity reservation once the
// destination holds its own.
func (e *MigrationEngine) ReleaseSource(vmID int) {
	e.sched.Remove(vmID)
}

// Settle lands a declined cross-shard request back in its home shard:
// the least-pressured feasible server, or a warm re-land on the source
// when nothing in the shard fits — exactly the CrossShard=false
// fallback, applied after the fact.
func (e *MigrationEngine) Settle(req MigrationRequest) (MigrationPlan, error) {
	cm := CompletedMigration{
		VMID:   req.VMID,
		Server: req.SrcServer,
		SizeGB: req.SizeGB,
		PAGB:   req.PAGB,
		WSS:    req.WSS,
	}
	cvm := e.sched.CVM(req.VMID)
	if cvm == nil {
		return MigrationPlan{}, fmt.Errorf("core: settling unknown vm %d", req.VMID)
	}
	return e.settleLocal(cm, cvm)
}

// Reland puts a migration's memory back on its source server, fully warm
// — the failure path when no destination anywhere could take the VM. The
// scheduler bookkeeping never moved, so only the memory re-attaches. The
// cross-shard apply step also calls it when every other shard declines a
// MigrationRequest.
func (e *MigrationEngine) Reland(cm CompletedMigration) (MigrationPlan, error) {
	warm, err := e.dp.AttachMigrated(cm.Server, cm.VMID, cm.SizeGB, cm.PAGB, cm.WSS, 0)
	if err != nil {
		return MigrationPlan{}, err
	}
	return MigrationPlan{VMID: cm.VMID, From: cm.Server, To: cm.Server, WarmGB: warm, Relanded: true}, nil
}

// MemoryProfile extracts the memory shape admission uses when attaching
// a CoachVM: total allocation and guaranteed (PA) portion.
func MemoryProfile(cvm *coachvm.CVM) (sizeGB, paGB float64) {
	return cvm.Alloc[resources.Memory], cvm.Guaranteed[resources.Memory]
}
