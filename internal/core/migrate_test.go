package core

import (
	"math"
	"testing"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/timeseries"
)

// oversubCVM builds a CoachVM whose memory guaranteed portion is
// guarFrac of the allocation (bucketed), leaving the rest oversubscribed.
func oversubCVM(t *testing.T, id int, cores, memGB, guarFrac float64) *coachvm.CVM {
	t.Helper()
	w := timeseries.Windows{PerDay: 6}
	pred := coachvm.Prediction{Windows: w, Percentile: 50}
	for _, k := range resources.Kinds {
		pred.Pct[k] = make([]float64, w.PerDay)
		pred.Max[k] = make([]float64, w.PerDay)
		for ti := 0; ti < w.PerDay; ti++ {
			pred.Pct[k][ti] = guarFrac
			pred.Max[k][ti] = 1
		}
	}
	cvm, err := coachvm.New(id, resources.NewVector(cores, memGB, 1, 32), pred)
	if err != nil {
		t.Fatal(err)
	}
	return cvm
}

// engineFixture builds a shard (scheduler + data plane + engine) over n
// identical servers.
func engineFixture(t *testing.T, n int, cfg MigrationConfig, poolFrac float64) (*MigrationEngine, *scheduler.Scheduler, *DataPlane) {
	t.Helper()
	dp := dpFixture(t, n, agent.PolicyMigrate, poolFrac, 0)
	servers := make([]*cluster.Server, n)
	for i := range servers {
		servers[i] = &cluster.Server{
			ID:   i,
			Spec: cluster.ServerSpec{Name: "t", Generation: 1, Capacity: resources.NewVector(16, 64, 10, 100)},
		}
	}
	sched, err := scheduler.NewOverServers(servers, timeseries.Windows{PerDay: 6})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewMigrationEngine(cfg, 0, sched, dp)
	if err != nil {
		t.Fatal(err)
	}
	return eng, sched, dp
}

// place admits a CoachVM at an explicit server in both the scheduler and
// the data plane, the way sim and serve do.
func place(t *testing.T, sched *scheduler.Scheduler, dp *DataPlane, cvm *coachvm.CVM, server int) {
	t.Helper()
	if err := sched.PlaceAt(cvm, server); err != nil {
		t.Fatal(err)
	}
	size, pa := MemoryProfile(cvm)
	if err := dp.Attach(server, cvm.ID, size, pa); err != nil {
		t.Fatal(err)
	}
}

func TestNewMigrationEngineValidation(t *testing.T) {
	_, sched, dp := engineFixture(t, 2, DefaultMigrationConfig(), 0.25)
	bad := DefaultMigrationConfig()
	bad.DirtyFrac = 1.5
	if _, err := NewMigrationEngine(bad, 0, sched, dp); err == nil {
		t.Error("dirty fraction above 1 must fail")
	}
	bad = DefaultMigrationConfig()
	bad.PressureFrac = 0
	if _, err := NewMigrationEngine(bad, 0, sched, dp); err == nil {
		t.Error("zero pressure fraction must fail")
	}
	if _, err := NewMigrationEngine(DefaultMigrationConfig(), 0, nil, dp); err == nil {
		t.Error("nil scheduler must fail")
	}
}

// TestEngineMovesBookkeepingAndMemoryTogether is the tentpole invariant:
// after a completed live migration resolves, the scheduler's capacity
// bookkeeping and the VM's memory agree on the destination, the
// destination came from the scheduler's placement ranking, and the
// pre-copied working set arrived warm.
func TestEngineMovesBookkeepingAndMemoryTogether(t *testing.T) {
	// Pool 4GB per server (64 * 0.0625): three 4GB working sets with 1GB
	// PA portions overwhelm server 0's pool and the agent migrates one.
	eng, sched, dp := engineFixture(t, 2, DefaultMigrationConfig(), 0.0625)
	for id := 1; id <= 3; id++ {
		place(t, sched, dp, oversubCVM(t, id, 2, 16, 0.05), 0)
	}
	var plans []MigrationPlan
	for tick := 0; tick < 600 && len(plans) == 0; tick++ {
		for id := 1; id <= 3; id++ {
			dp.SetWSS(id, 4)
		}
		_, completed, err := dp.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		got, reqs, err := eng.Resolve(tick, completed)
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) != 0 {
			t.Fatal("same-shard engine must not emit cross-shard requests")
		}
		plans = append(plans, got...)
	}
	if len(plans) == 0 {
		t.Fatal("no migration resolved")
	}
	p := plans[0]
	if p.Relanded || p.From != 0 || p.To != 1 {
		t.Fatalf("plan %+v, want a 0->1 landing", p)
	}
	if sched.ServerOf(p.VMID) != p.To {
		t.Error("scheduler bookkeeping did not move with the migration")
	}
	if dp.ServerOf(p.VMID) != p.To {
		t.Error("memory did not move with the migration")
	}
	vm := dp.Servers()[p.To].Server.VM(p.VMID)
	if vm == nil {
		t.Fatal("migrated VM missing from target server")
	}
	if vm.WSS() != 4 {
		t.Errorf("migrated VM working set %v, want 4", vm.WSS())
	}
	// Pre-copied pages land resident: 80% of the pending VA demand with
	// the default 20% dirty fraction (the target pool is empty, so the
	// warm admission is not clamped).
	if want := 0.8 * vm.Missing() / 0.2 * 1; p.WarmGB <= 0 {
		t.Errorf("no warm arrival: plan %+v, residual missing %v (want warm ~%v)", p, vm.Missing(), want)
	}
	if res := vm.ResidentVA(); res <= 0 {
		t.Error("migrated VM arrived fully cold")
	}
	if math.Abs(vm.ResidentVA()-p.WarmGB) > 1e-6 {
		t.Errorf("resident %v != warm-arrived %v", vm.ResidentVA(), p.WarmGB)
	}
}

// TestEngineRelandsWhenNothingFits pins the failure path: a single-server
// shard has no migration target, so the VM re-lands on its source fully
// warm and the plan is marked Relanded.
func TestEngineRelandsWhenNothingFits(t *testing.T) {
	eng, sched, dp := engineFixture(t, 1, DefaultMigrationConfig(), 0.0625)
	for id := 1; id <= 3; id++ {
		place(t, sched, dp, oversubCVM(t, id, 2, 16, 0.05), 0)
	}
	var plans []MigrationPlan
	for tick := 0; tick < 600 && len(plans) == 0; tick++ {
		for id := 1; id <= 3; id++ {
			dp.SetWSS(id, 4)
		}
		_, completed, err := dp.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := eng.Resolve(tick, completed)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, got...)
	}
	if len(plans) == 0 {
		t.Skip("agent never migrated on the single-server fixture")
	}
	p := plans[0]
	if !p.Relanded || p.From != 0 || p.To != 0 {
		t.Fatalf("plan %+v, want a relanded 0->0", p)
	}
	if sched.ServerOf(p.VMID) != 0 || dp.ServerOf(p.VMID) != 0 {
		t.Error("relanded VM must stay on its source in both planes")
	}
}

// TestEngineEmitsCrossShardRequests pins the escape valve: with
// CrossShard set and no unpressured same-shard target, Resolve emits a
// MigrationRequest instead of settling, leaving the source reservation
// in place (two-phase: capacity stays held until the apply step commits).
func TestEngineEmitsCrossShardRequests(t *testing.T) {
	cfg := DefaultMigrationConfig()
	cfg.CrossShard = true
	eng, sched, dp := engineFixture(t, 1, cfg, 0.0625)
	for id := 1; id <= 3; id++ {
		place(t, sched, dp, oversubCVM(t, id, 2, 16, 0.05), 0)
	}
	var reqs []MigrationRequest
	lastTick := -1
	for tick := 0; tick < 600 && len(reqs) == 0; tick++ {
		for id := 1; id <= 3; id++ {
			dp.SetWSS(id, 4)
		}
		_, completed, err := dp.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		plans, got, err := eng.Resolve(tick, completed)
		if err != nil {
			t.Fatal(err)
		}
		if len(plans) != 0 {
			t.Fatalf("cross-shard engine settled locally with no local target: %+v", plans)
		}
		reqs, lastTick = got, tick
	}
	if len(reqs) == 0 {
		t.Skip("agent never migrated on the single-server fixture")
	}
	r := reqs[0]
	if r.SrcShard != 0 || r.SrcServer != 0 || r.Tick != lastTick {
		t.Errorf("request provenance wrong: %+v", r)
	}
	if r.CVM == nil || r.CVM.ID != r.VMID || r.SizeGB != 16 || r.WSS != 4 {
		t.Errorf("request payload wrong: %+v", r)
	}
	// Reservation still held at the source.
	if sched.ServerOf(r.VMID) != 0 {
		t.Error("source reservation released before commit")
	}
	// Memory is in flight.
	if dp.ServerOf(r.VMID) != -1 {
		t.Error("in-flight VM still attached")
	}
	// The apply step's failure path: hand the request back for relanding.
	plan, err := eng.Reland(CompletedMigration{
		VMID: r.VMID, Server: r.SrcServer, SizeGB: r.SizeGB, PAGB: r.PAGB, WSS: r.WSS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Relanded || dp.ServerOf(r.VMID) != r.SrcServer {
		t.Errorf("reland failed: %+v", plan)
	}
}

// TestPickPlacementPressureFilter checks the shared placement path:
// candidates are taken in the scheduler's ranking order, skipping
// pressured pools.
func TestPickPlacementPressureFilter(t *testing.T) {
	_, sched, dp := engineFixture(t, 3, DefaultMigrationConfig(), 0.0625)
	// Pressure server 1's pool (the scheduler's best-fit favourite once
	// it holds the most load): attach and touch a 4GB working set.
	place(t, sched, dp, oversubCVM(t, 10, 4, 16, 0.05), 1)
	dp.SetWSS(10, 5)
	for i := 0; i < 5; i++ { // let the 4GB VA demand saturate the 4GB pool
		if _, _, err := dp.Tick(1); err != nil {
			t.Fatal(err)
		}
	}
	if p := dp.PressureOf(1); p < 0.9 {
		t.Fatalf("fixture: server 1 pool pressure %v, want ~1", p)
	}
	probe := oversubCVM(t, 11, 2, 16, 0.05)
	best := sched.Candidates(probe, -1)[0].Server
	if best != 1 {
		t.Fatalf("fixture: best-fit candidate is %d, want the loaded server 1", best)
	}
	c, ok := PickPlacement(sched, dp, probe, -1, 0, 0.75)
	if !ok {
		t.Fatal("no unpressured candidate found")
	}
	if c.Server == 1 {
		t.Error("pressure filter did not skip the saturated pool")
	}
	// With an impossible pressure bar nothing qualifies.
	if _, ok := PickPlacement(sched, dp, probe, -1, 0, 0); ok {
		t.Error("candidate passed an impossible pressure bar")
	}
	// The projection counts the incoming working set: a demand larger
	// than any empty pool (4GB here) disqualifies every server.
	if _, ok := PickPlacement(sched, dp, probe, -1, 64, 0.75); ok {
		t.Error("a working set no pool can absorb still found a target")
	}
	// A small incoming demand still lands on an unpressured pool.
	if c, ok := PickPlacement(sched, dp, probe, -1, 1, 0.75); !ok || c.Server == 1 {
		t.Errorf("small demand should land on an empty pool, got %+v ok=%v", c, ok)
	}
}
