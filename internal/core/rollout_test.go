package core

import (
	"testing"

	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/scheduler"
)

// admitOutcome is one request's placement decision in the reference
// serial admission sequence.
type admitOutcome struct {
	server   int // -1 when rejected
	pressure bool
	capacity bool
}

// serialAdmitStep replicates serve's per-request placement decision (the
// pressure-filtered pick, the pressure rejection, the best-fit fallback)
// against live state, applying the placement like an admission does.
func serialAdmitStep(t *testing.T, sched *scheduler.Scheduler, dp *DataPlane, scorer *WhatIfScorer, cvm *coachvm.CVM, frac float64) admitOutcome {
	t.Helper()
	need := VAPeakGB(cvm)
	srv, placed := -1, false
	if frac > 0 && need > 0 {
		if c, ok := scorer.PickPlacement(cvm, -1, need, frac); ok {
			if err := sched.PlaceAt(cvm, c.Server); err == nil {
				srv, placed = c.Server, true
			}
		} else if sched.HasFeasible(cvm, -1) {
			return admitOutcome{server: -1, pressure: true}
		}
	}
	if !placed {
		if v, ok := sched.Place(cvm); ok {
			srv = v
		} else {
			return admitOutcome{server: -1, capacity: true}
		}
	}
	size, pa := MemoryProfile(cvm)
	if err := dp.Attach(srv, cvm.ID, size, pa); err != nil {
		t.Fatal(err)
	}
	return admitOutcome{server: srv}
}

// loadFixture skews one fixture's pools so servers differ in pressure,
// identically for the serial and batched copies.
func loadFixture(t *testing.T, sched *scheduler.Scheduler, dp *DataPlane) {
	t.Helper()
	id := 1000
	for srv := 0; srv < 3; srv++ {
		for j := 0; j <= srv; j++ {
			place(t, sched, dp, oversubCVM(t, id, 1, 8, 0.1), srv)
			dp.SetWSS(id, 6)
			id++
		}
	}
	if _, _, err := dp.Tick(1); err != nil {
		t.Fatal(err)
	}
}

// TestRolloutMatchesSerialAdmission is the core half of the bit-identity
// contract: one ScoreMany rollout committed in arrival order must make
// exactly the decisions the serial per-request sequence makes on an
// identical twin fixture — including requests rejected because earlier
// requests consumed the capacity or pool headroom they needed.
func TestRolloutMatchesSerialAdmission(t *testing.T) {
	mkReqs := func() []*coachvm.CVM {
		var reqs []*coachvm.CVM
		// Big CPU footprints against 16-core servers force capacity
		// conflicts (32-core requests fit nowhere at all); heavier working
		// sets with a low pressure bar force pressure rejections once pools
		// fill.
		shapes := []struct{ cores, mem, frac float64 }{
			{8, 16, 0.1}, {8, 32, 0.3}, {4, 8, 0.1}, {12, 16, 0.2},
			{32, 16, 0.1}, {8, 8, 0.5}, {16, 32, 0.1}, {4, 16, 0.1},
			{8, 16, 0.3}, {2, 4, 0.1}, {32, 64, 0.1}, {8, 16, 0.1},
		}
		for i, sp := range shapes {
			reqs = append(reqs, oversubCVM(t, i+1, sp.cores, sp.mem, sp.frac))
		}
		return reqs
	}

	for _, frac := range []float64{0, 0.35, 0.95} {
		engS, schedS, dpS := engineFixture(t, 5, DefaultMigrationConfig(), 0.25)
		engB, schedB, dpB := engineFixture(t, 5, DefaultMigrationConfig(), 0.25)
		loadFixture(t, schedS, dpS)
		loadFixture(t, schedB, dpB)

		reqsS, reqsB := mkReqs(), mkReqs()
		want := make([]admitOutcome, len(reqsS))
		for r, cvm := range reqsS {
			want[r] = serialAdmitStep(t, schedS, dpS, engS.Scorer(), cvm, frac)
		}

		needs := make([]float64, len(reqsB))
		for r, cvm := range reqsB {
			needs[r] = VAPeakGB(cvm)
		}
		scorer := engB.Scorer()
		base := scorer.Stats()
		ro := scorer.ScoreMany(reqsB, needs)
		if got := scorer.Stats().Batches - base.Batches; got != 1 {
			t.Fatalf("frac %g: ScoreMany ran %d batches, want 1", frac, got)
		}
		replays := 0
		for r, cvm := range reqsB {
			var got admitOutcome
			srv, placed := -1, false
			if frac > 0 && needs[r] > 0 {
				if c := ro.PickPressured(r, frac); c >= 0 {
					if err := schedB.PlaceAt(cvm, c); err == nil {
						srv, placed = c, true
					}
				} else if ro.HasFeasible(r) {
					got = admitOutcome{server: -1, pressure: true}
					if got != want[r] {
						t.Fatalf("frac %g request %d: batched %+v, serial %+v", frac, r, got, want[r])
					}
					continue
				}
			}
			if !placed {
				if f := ro.PickFit(r); f >= 0 {
					if err := schedB.PlaceAt(cvm, f); err == nil {
						srv, placed = f, true
					}
				}
				if !placed {
					got = admitOutcome{server: -1, capacity: true}
					if got != want[r] {
						t.Fatalf("frac %g request %d: batched %+v, serial %+v", frac, r, got, want[r])
					}
					continue
				}
			}
			size, pa := MemoryProfile(cvm)
			if err := dpB.Attach(srv, cvm.ID, size, pa); err != nil {
				t.Fatal(err)
			}
			replays += ro.Commit(r, srv)
			got = admitOutcome{server: srv}
			if got != want[r] {
				t.Fatalf("frac %g request %d: batched %+v, serial %+v", frac, r, got, want[r])
			}
		}

		// The shapes above are chosen to produce every outcome class at the
		// mid bar, so the equivalence is not vacuous.
		if frac == 0.35 {
			var admits, prejects, crejects int
			for _, w := range want {
				switch {
				case w.server >= 0:
					admits++
				case w.pressure:
					prejects++
				case w.capacity:
					crejects++
				}
			}
			if admits == 0 || prejects == 0 || crejects == 0 {
				t.Fatalf("outcome mix admits=%d pressure=%d capacity=%d leaves a branch untested", admits, prejects, crejects)
			}
			if replays == 0 {
				t.Fatal("no conflict replays despite in-batch commits")
			}
		}
	}
}

// TestRolloutNilCVMsAndNoDataPlane covers the edge rows: a nil CVM
// (a request that failed before placement) scores infeasible everywhere,
// and without a data plane every pressure projection reports 1 — the
// no-pool convention — so only a bar above 1 ever passes.
func TestRolloutNilCVMsAndNoDataPlane(t *testing.T) {
	_, sched, _ := engineFixture(t, 3, DefaultMigrationConfig(), 0.25)
	scorer := NewWhatIfScorer(sched, nil)
	cvms := []*coachvm.CVM{nil, oversubCVM(t, 1, 2, 8, 0.1)}
	ro := scorer.ScoreMany(cvms, []float64{0, 4})
	if ro.HasFeasible(0) || ro.PickFit(0) != -1 || ro.PickPressured(0, 2) != -1 {
		t.Error("nil CVM row must be entirely infeasible")
	}
	if !ro.HasFeasible(1) || ro.PickFit(1) < 0 {
		t.Error("real CVM must fit an empty fleet")
	}
	if ro.PickPressured(1, 0.99) != -1 {
		t.Error("without a data plane every projection is 1: bars below 1 never pass")
	}
	if got := ro.PickPressured(1, 1.5); got != ro.PickFit(1) {
		t.Errorf("bar above 1 must reduce to best fit: got %d, want %d", got, ro.PickFit(1))
	}
}
