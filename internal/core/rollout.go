package core

import (
	"github.com/coach-oss/coach/internal/coachvm"
)

// This file implements the fleet-sized admission rollout: the multi-VM
// extension of the WhatIfScorer (docs/DESIGN.md §15). Where Score answers
// "VM X onto any of K candidates" with one enumeration and one pressure
// sweep, ScoreMany answers it for every request that coalesced into an
// admit batch — one dense (request × server) score matrix filled by
// scheduler.ScoreRowInto, one DataPlane.PoolStatesInto sweep capturing raw
// pool state — and then supports a serial arrival-order commit loop:
// committing request r on server s invalidates exactly column s of the
// later rows (no other server's pool or scheduler state changed), so
// Commit re-scores that single cell per remaining request instead of
// re-running the sweep. Every decision read from the matrix is
// bit-identical to what the serial per-request path would have computed
// at the same point in arrival order; the equivalence and conflict tests
// in serve pin this.

// Rollout is one batch's scored placement matrix, backed by scorer
// scratch: valid only until the scorer's next ScoreMany (or Score) call,
// never to be retained. Row r holds request r's post-placement packing
// score on every server, -1 where the server is down or the VM does not
// fit (nil CVMs — requests that failed before placement — score -1
// everywhere). Like the scorer it is driven under the shard lock.
type Rollout struct {
	w     *WhatIfScorer
	cvms  []*coachvm.CVM
	needs []float64

	ns    int
	score []float64 // len(cvms) × ns, row-major; <0 marks infeasible

	// used/pool mirror DataPlane.PoolStatesInto for pressure projection;
	// nil when the scorer has no data plane (pressureAt then reports 1,
	// matching ProjectedPressure's no-pool convention).
	used, pool []float64
}

// ScoreMany scores every (request, server) placement of one admit batch
// as a single rollout: one ScoreRowInto pass per request against the
// scheduler's current state and one PoolStatesInto sweep over the data
// plane, counted as one batch in the scorer's stats however many requests
// coalesced. needs[r] is request r's incoming resident demand (VAPeakGB)
// for pressure projection; cvms[r] may be nil for requests that failed
// before placement. The returned Rollout shares the scorer's scratch.
func (w *WhatIfScorer) ScoreMany(cvms []*coachvm.CVM, needs []float64) *Rollout {
	ro := &w.rollout
	ro.w = w
	ro.cvms = cvms
	ro.needs = needs
	ro.ns = w.sched.NumServers()
	n := len(cvms) * ro.ns
	if cap(ro.score) < n {
		ro.score = make([]float64, n)
	}
	ro.score = ro.score[:n]
	scored := 0
	for r, cvm := range cvms {
		row := ro.score[r*ro.ns : (r+1)*ro.ns]
		if cvm == nil {
			for i := range row {
				row[i] = -1
			}
			continue
		}
		w.sched.ScoreRowInto(cvm, row)
		for _, sc := range row {
			if sc >= 0 {
				scored++
			}
		}
	}
	if w.dp != nil {
		if cap(ro.used) < ro.ns {
			ro.used = make([]float64, ro.ns)
			ro.pool = make([]float64, ro.ns)
		}
		ro.used = ro.used[:ro.ns]
		ro.pool = ro.pool[:ro.ns]
		w.dp.PoolStatesInto(ro.used, ro.pool)
	} else {
		ro.used, ro.pool = nil, nil
	}
	w.batches++
	w.scored += int64(scored)
	return ro
}

// HasFeasible reports whether any server can host request r — the batched
// form of scheduler.HasFeasible against the rollout's snapshot.
func (ro *Rollout) HasFeasible(r int) bool {
	for _, sc := range ro.row(r) {
		if sc >= 0 {
			return true
		}
	}
	return false
}

// PickFit returns the best-fit server for request r (-1 when none fits):
// the highest score with ties on the lowest index, which is exactly the
// strict-greater ascending scan scheduler.Place runs.
func (ro *Rollout) PickFit(r int) int {
	best, bestScore := -1, -1.0
	for i, sc := range ro.row(r) {
		if sc > bestScore {
			best, bestScore = i, sc
		}
	}
	return best
}

// PickPressured returns the best-fit server for request r whose pool,
// after absorbing needs[r], stays below pressureFrac (-1 when none
// qualifies). Taking the highest score passing the pressure filter with
// ties on the lowest index reproduces the serial decision — the first
// candidate of the CandidatesInto ranking (score descending, ties
// ascending) whose projected pressure clears the bar — without sorting.
func (ro *Rollout) PickPressured(r int, pressureFrac float64) int {
	best, bestScore := -1, -1.0
	for i, sc := range ro.row(r) {
		if sc < 0 || sc <= bestScore {
			continue
		}
		if ro.pressureAt(r, i) < pressureFrac {
			best, bestScore = i, sc
		}
	}
	return best
}

// Commit folds request r's placement on server into the snapshot so later
// requests observe it, after the caller applied the placement to the live
// scheduler and data plane (PlaceAt + Attach/SetWSS). Only column server
// went stale — a placement mutates that one pool — so each later request's
// cell is re-scored against the live scheduler state and the server's pool
// numbers are re-read, which is bit-identical to rebuilding the whole
// rollout. Returns the number of cells re-scored (the conflict-replay
// count surfaced in serve's admit-batch stats).
func (ro *Rollout) Commit(r, server int) int {
	replays := 0
	for r2 := r + 1; r2 < len(ro.cvms); r2++ {
		cvm := ro.cvms[r2]
		if cvm == nil {
			continue
		}
		ro.score[r2*ro.ns+server] = ro.w.sched.ScoreAt(cvm, server)
		replays++
	}
	ro.w.scored += int64(replays)
	if ro.w.dp != nil {
		srv := ro.w.dp.servers[server].Server
		ro.used[server] = srv.PoolUsed()
		ro.pool[server] = srv.PoolGB()
	}
	return replays
}

// pressureAt projects server s's pool occupancy after absorbing request
// r's demand — the ProjectedPressure arithmetic against the snapshot's
// pool state: 1 when there is no data plane or no pool, else
// (used+need)/pool with negative need clamped to zero.
func (ro *Rollout) pressureAt(r, s int) float64 {
	if ro.pool == nil {
		return 1
	}
	pool := ro.pool[s]
	if pool <= 0 {
		return 1
	}
	need := ro.needs[r]
	if need < 0 {
		need = 0
	}
	return (ro.used[s] + need) / pool
}

// row returns request r's score row.
func (ro *Rollout) row(r int) []float64 {
	return ro.score[r*ro.ns : (r+1)*ro.ns]
}
