package core

import (
	"testing"

	"github.com/coach-oss/coach/internal/scheduler"
)

// refPickPlacement is the pre-batching decision loop, kept as the test
// oracle: first candidate in rank order whose per-candidate projected
// pressure clears the bar.
func refPickPlacement(sched *scheduler.Scheduler, dp *DataPlane, vmID int, exclude int, needGB, pressureFrac float64) (scheduler.Candidate, bool) {
	cvm := sched.CVM(vmID)
	for _, c := range sched.Candidates(cvm, exclude) {
		if dp.ProjectedPressure(c.Server, needGB) < pressureFrac {
			return c, true
		}
	}
	return scheduler.Candidate{}, false
}

// TestWhatIfScorerMatchesUnbatchedLoops pins the scorer's decisions to
// the per-candidate reference loops across a spread of incoming demands
// and pressure bars, on a fleet with some loaded and some empty pools.
func TestWhatIfScorerMatchesUnbatchedLoops(t *testing.T) {
	eng, sched, dp := engineFixture(t, 6, DefaultMigrationConfig(), 0.25)
	// Load a few pools unevenly so pressures differ across servers.
	id := 1
	for srv := 0; srv < 3; srv++ {
		for j := 0; j <= srv; j++ {
			place(t, sched, dp, oversubCVM(t, id, 1, 8, 0.1), srv)
			dp.SetWSS(id, 6)
			id++
		}
	}
	if _, _, err := dp.Tick(1); err != nil {
		t.Fatal(err)
	}

	probe := oversubCVM(t, 900, 2, 16, 0.1)
	if err := sched.PlaceAt(probe, 5); err != nil {
		t.Fatal(err)
	}
	scorer := eng.Scorer()
	base := scorer.Stats()
	for _, tc := range []struct {
		exclude      int
		needGB       float64
		pressureFrac float64
	}{
		{-1, 0, 0.75}, {-1, 3, 0.75}, {5, 3, 0.75},
		{-1, 0, 0.0001}, {5, 100, 0.75}, {0, 2, 0.5},
	} {
		wantC, wantOK := refPickPlacement(sched, dp, probe.ID, tc.exclude, tc.needGB, tc.pressureFrac)
		gotC, gotOK := scorer.PickPlacement(probe, tc.exclude, tc.needGB, tc.pressureFrac)
		if gotOK != wantOK || gotC != wantC {
			t.Errorf("%+v: scorer picked %+v/%v, reference %+v/%v", tc, gotC, gotOK, wantC, wantOK)
		}
	}

	// Recovery: pressure-filtered pick and the least-pressured fallback.
	expectBatches := int64(6) // the PickPlacement cases above, 1 sweep each
	for _, frac := range []float64{0.75, 0.0001} {
		cands := sched.Candidates(probe, -1)
		wantSrv, wantOK := -1, false
		for _, c := range cands {
			if dp.ProjectedPressure(c.Server, VAPeakGB(probe)) < frac {
				wantSrv, wantOK = c.Server, true
				break
			}
		}
		expectBatches++ // the filtered sweep
		if !wantOK {
			bestP := 0.0
			for _, c := range cands {
				if p := dp.PressureOf(c.Server); wantSrv < 0 || p < bestP {
					wantSrv, bestP = c.Server, p
				}
			}
			wantOK = wantSrv >= 0
			if len(cands) > 0 {
				expectBatches++ // the fallback re-score
			}
		}
		gotSrv, gotOK := scorer.PickRecovery(probe, frac)
		if gotOK != wantOK || gotSrv != wantSrv {
			t.Errorf("recovery frac %g: scorer %d/%v, reference %d/%v", frac, gotSrv, gotOK, wantSrv, wantOK)
		}
	}

	// Settle: least-pressured with ties on rank.
	wantSettle := -1
	bestP := 0.0
	for _, c := range sched.Candidates(probe, 5) {
		if p := dp.PressureOf(c.Server); wantSettle < 0 || p < bestP {
			wantSettle, bestP = c.Server, p
		}
	}
	if got := scorer.PickSettle(probe, 5); got != wantSettle {
		t.Errorf("settle: scorer %d, reference %d", got, wantSettle)
	}

	// Counter shape: one sweep per decision (plus recovery fallbacks the
	// loop above accounted for) — batching is per decision, not per
	// candidate.
	expectBatches++ // the settle sweep
	s := scorer.Stats()
	if got := s.Batches - base.Batches; got != expectBatches {
		t.Errorf("scorer ran %d batches, want %d", got, expectBatches)
	}
	if s.Scored <= base.Scored {
		t.Error("scorer scored no candidates")
	}
}

// TestResolveScoresCandidatesInOneBatch is the migration half of the
// batching acceptance test: landing one completed live migration costs
// one what-if sweep over the whole candidate ranking, not one pressure
// probe per candidate.
func TestResolveScoresCandidatesInOneBatch(t *testing.T) {
	// Pool 4GB per server: three 4GB working sets overwhelm server 0's
	// pool and the agent migrates one (same fixture as the engine tests).
	eng, sched, dp := engineFixture(t, 8, DefaultMigrationConfig(), 0.0625)
	for id := 1; id <= 3; id++ {
		place(t, sched, dp, oversubCVM(t, id, 2, 16, 0.05), 0)
	}
	for tick := 0; tick < 600; tick++ {
		for id := 1; id <= 3; id++ {
			dp.SetWSS(id, 4)
		}
		_, completed, err := dp.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(completed) == 0 {
			continue
		}
		base := eng.Scorer().Stats()
		plans, _, err := eng.Resolve(tick, completed)
		if err != nil {
			t.Fatal(err)
		}
		if len(plans) != len(completed) {
			t.Fatalf("%d completed migrations produced %d plans", len(completed), len(plans))
		}
		s := eng.Scorer().Stats()
		// In this fixture every pool is too small to absorb the migrated
		// VA demand, so each landing is exactly two batched sweeps — the
		// pressure-filtered pick and the settle fallback — independent of
		// how many candidate servers the shard offers.
		if got := s.Batches - base.Batches; got != 2*int64(len(completed)) {
			t.Errorf("%d migrations ran %d what-if batches, want two per migration", len(completed), got)
		}
		if perBatch := (s.Scored - base.Scored) / (s.Batches - base.Batches); perBatch < 2 {
			t.Errorf("each sweep scored %d candidates on an 8-server shard", perBatch)
		}
		return
	}
	t.Fatal("no migration completed")
}

// TestProjectPressuresMatchesProjectedPressure pins the batched sweep to
// the scalar projection per candidate.
func TestProjectPressuresMatchesProjectedPressure(t *testing.T) {
	_, sched, dp := engineFixture(t, 4, DefaultMigrationConfig(), 0.25)
	place(t, sched, dp, oversubCVM(t, 1, 1, 8, 0.1), 0)
	dp.SetWSS(1, 6)
	if _, _, err := dp.Tick(1); err != nil {
		t.Fatal(err)
	}
	cands := []scheduler.Candidate{{Server: 3}, {Server: 0}, {Server: 1}}
	for _, need := range []float64{0, 2.5, -1} {
		out := dp.ProjectPressures(cands, need, nil)
		for i, c := range cands {
			if want := dp.ProjectedPressure(c.Server, need); out[i] != want {
				t.Errorf("need %g candidate %d: batched %v, scalar %v", need, c.Server, out[i], want)
			}
		}
	}
	// Scratch reuse: a big-enough out slice is returned as-is.
	scratch := make([]float64, 8)
	out := dp.ProjectPressures(cands, 1, scratch)
	if len(out) != len(cands) || &out[0] != &scratch[0] {
		t.Error("ProjectPressures reallocated despite sufficient scratch")
	}
}
