package core

import (
	"testing"

	"github.com/coach-oss/coach/internal/agent"
)

// TestCrashServerEvictsAndReboots pins the data-plane half of crash
// handling: evicted ids come back ascending, their memory is gone, other
// servers are untouched, and the crashed server reboots attachable.
func TestCrashServerEvictsAndReboots(t *testing.T) {
	dp := dpFixture(t, 2, agent.PolicyTrim, 0.25, 0.1)
	for i, srv := range []int{0, 0, 1} {
		if err := dp.Attach(srv, 10+i, 8, 2); err != nil {
			t.Fatal(err)
		}
	}
	dp.SetWSS(11, 6)

	evicted := dp.CrashServer(0)
	if len(evicted) != 2 || evicted[0] != 10 || evicted[1] != 11 {
		t.Fatalf("evicted = %v, want ascending [10 11]", evicted)
	}
	if dp.ServerOf(10) != -1 || dp.ServerOf(11) != -1 {
		t.Error("evicted VMs still attached")
	}
	if dp.ServerOf(12) != 1 {
		t.Error("crash touched the surviving server's VM")
	}
	// Reboot leaves the server attachable; re-admission works.
	if err := dp.Attach(0, 10, 8, 2); err != nil {
		t.Fatalf("re-attach after crash: %v", err)
	}
	// Out-of-range crashes are inert.
	if got := dp.CrashServer(-1); got != nil {
		t.Fatalf("CrashServer(-1) = %v", got)
	}
	if got := dp.CrashServer(9); got != nil {
		t.Fatalf("CrashServer(9) = %v", got)
	}
}

// TestPickRecovery pins recovery placement: the pressure-filtered pick
// wins when one exists, the least-pressured feasible server is the
// fallback, and an infeasible VM is reported lost.
func TestPickRecovery(t *testing.T) {
	cfg := DefaultMigrationConfig()
	_, sched, dp := engineFixture(t, 3, cfg, 0.25)

	// Server 0 down (the crash site), server 1's pool thrashing (working
	// sets far past guarantees), server 2 empty: the pressure filter must
	// steer recovery to 2, not the down server or the hot pool.
	sched.SetDown(0, true)
	for id := 1; id <= 2; id++ {
		place(t, sched, dp, oversubCVM(t, id, 4, 16, 0.5), 1)
		dp.SetWSS(id, 15)
	}
	if _, _, err := dp.Tick(300); err != nil {
		t.Fatal(err)
	}
	if p := dp.PressureOf(1); p < cfg.PressureFrac {
		t.Fatalf("fixture pool not pressured: %.2f < %.2f", p, cfg.PressureFrac)
	}
	target, ok := PickRecovery(sched, dp, oversubCVM(t, 3, 4, 16, 0.5), cfg.PressureFrac)
	if !ok || target != 2 {
		t.Fatalf("PickRecovery = (%d, %v), want the empty server 2", target, ok)
	}

	// With every pool saturated by a zero pressure budget, the fallback
	// still finds the least-pressured feasible server rather than losing
	// the VM.
	target, ok = PickRecovery(sched, dp, oversubCVM(t, 4, 4, 16, 0.5), 0)
	if !ok {
		t.Fatal("fallback lost a feasible VM")
	}
	if target == 0 {
		t.Fatal("fallback landed on the down server")
	}

	// A VM no surviving server can hold is lost.
	if _, ok := PickRecovery(sched, dp, oversubCVM(t, 5, 64, 256, 1), cfg.PressureFrac); ok {
		t.Fatal("infeasible VM was placed")
	}
}
