package core

import (
	"testing"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/resources"
)

// dpFixture builds a data plane over n identical servers with the given
// mitigation policy and pool sizing.
func dpFixture(t *testing.T, n int, policy agent.Policy, poolFrac, unallocFrac float64) *DataPlane {
	t.Helper()
	cfg := DefaultDataPlaneConfig()
	cfg.Agent.Policy = policy
	cfg.PoolFrac = poolFrac
	cfg.UnallocFrac = unallocFrac
	servers := make([]*cluster.Server, n)
	for i := range servers {
		servers[i] = &cluster.Server{
			ID:   i,
			Spec: cluster.ServerSpec{Name: "t", Generation: 1, Capacity: resources.NewVector(16, 64, 10, 100)},
		}
	}
	dp, err := NewDataPlane(cfg, servers)
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

func TestNewDataPlaneValidation(t *testing.T) {
	cfg := DefaultDataPlaneConfig()
	cfg.PoolFrac = 0
	if _, err := NewDataPlane(cfg, nil); err == nil {
		t.Error("zero pool fraction must fail")
	}
	cfg = DefaultDataPlaneConfig()
	cfg.UnallocFrac = -1
	if _, err := NewDataPlane(cfg, nil); err == nil {
		t.Error("negative unallocated fraction must fail")
	}
}

func TestDataPlaneAttachDetach(t *testing.T) {
	dp := dpFixture(t, 2, agent.PolicyTrim, 0.25, 0.1)
	if err := dp.Attach(0, 1, 8, 2); err != nil {
		t.Fatal(err)
	}
	if err := dp.Attach(0, 1, 8, 2); err == nil {
		t.Error("duplicate attach must fail")
	}
	if err := dp.Attach(5, 2, 8, 2); err == nil {
		t.Error("out-of-range server must fail")
	}
	// A guaranteed portion above the VM size is clamped, not an error:
	// fully guaranteed VMs have no oversubscribed region.
	if err := dp.Attach(1, 3, 8, 12); err != nil {
		t.Fatal(err)
	}
	if dp.Attached() != 2 || dp.ServerOf(1) != 0 || dp.ServerOf(3) != 1 || dp.ServerOf(9) != -1 {
		t.Error("attachment bookkeeping wrong")
	}
	dp.SetWSS(1, 5)
	frames, _, err := dp.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 || frames[0].Len() != 1 || frames[1].Len() != 1 {
		t.Fatal("expected one VM per server frame")
	}
	if !dp.Detach(1) || dp.Detach(1) {
		t.Error("detach semantics wrong")
	}
	if dp.Servers()[0].Server.VM(1) != nil {
		t.Error("detach left VM on server")
	}
}

// TestDataPlaneTickSurfacesCompletedMigrations drives one server into
// contention under the Migrate policy and checks that Tick detaches the
// victim and surfaces it as a CompletedMigration carrying its memory
// shape and working set (the engine's input), rather than re-homing it
// internally.
func TestDataPlaneTickSurfacesCompletedMigrations(t *testing.T) {
	// Pool 4GB per server (64 * 0.0625), no unallocated memory.
	dp := dpFixture(t, 2, agent.PolicyMigrate, 0.0625, 0)
	for id := 1; id <= 3; id++ {
		if err := dp.Attach(0, id, 16, 1); err != nil {
			t.Fatal(err)
		}
	}
	var got []CompletedMigration
	for tick := 0; tick < 600 && len(got) == 0; tick++ {
		for id := 1; id <= 3; id++ {
			dp.SetWSS(id, 4) // 3GB VA demand each: 9GB against a 4GB pool
		}
		_, completed, err := dp.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, completed...)
	}
	if len(got) == 0 {
		t.Fatal("no migration completed on the contended server")
	}
	cm := got[0]
	if cm.Server != 0 || cm.SizeGB != 16 || cm.PAGB != 1 || cm.WSS != 4 {
		t.Errorf("completed migration carries wrong shape: %+v", cm)
	}
	if dp.ServerOf(cm.VMID) != -1 {
		t.Error("completed migration must detach the VM until the engine lands it")
	}
	if dp.Servers()[0].Server.VM(cm.VMID) != nil {
		t.Error("migrated VM still on the source server")
	}
	if dp.Counters().Migrations == 0 {
		t.Error("migration not counted")
	}
	if dp.Totals().MigratedGB <= 0 {
		t.Error("migrated volume not accounted")
	}
}

// TestDataPlaneLadderOrdering scripts the §3.4 ladder at fleet scale:
// cold memory accumulates first, pressure follows, and the agent must
// trim before it extends (Extend policy) or migrates (Migrate policy).
func TestDataPlaneLadderOrdering(t *testing.T) {
	for _, policy := range []agent.Policy{agent.PolicyExtend, agent.PolicyMigrate} {
		// Pool 8GB per server (64 * 0.125).
		dp := dpFixture(t, 2, policy, 0.125, 0.125)
		for srv := 0; srv < 2; srv++ {
			for i := 0; i < 2; i++ {
				if err := dp.Attach(srv, 10*srv+i+1, 24, 2); err != nil {
					t.Fatal(err)
				}
			}
		}
		firstTrim, firstEscalate := -1, -1
		for tick := 0; tick < 400; tick++ {
			for srv := 0; srv < 2; srv++ {
				holder, grower := 10*srv+1, 10*srv+2
				switch {
				case tick < 40:
					dp.SetWSS(holder, 7) // touch 5GB of VA
					dp.SetWSS(grower, 4)
				case tick < 80:
					dp.SetWSS(holder, 4) // 3GB goes cold: the trim reserve
					dp.SetWSS(grower, 4)
				default:
					dp.SetWSS(holder, 4)
					dp.SetWSS(grower, 14) // 12GB VA demand against 8GB pool
				}
			}
			if _, _, err := dp.Tick(1); err != nil {
				t.Fatal(err)
			}
			c := dp.Counters()
			if firstTrim < 0 && c.Trims > 0 {
				firstTrim = tick
			}
			if firstEscalate < 0 && c.Extends+c.Migrations > 0 {
				firstEscalate = tick
			}
		}
		c := dp.Counters()
		if c.Trims == 0 {
			t.Fatalf("%s: agent never trimmed despite cold reserve", policy)
		}
		if c.Extends+c.Migrations == 0 {
			t.Fatalf("%s: agent never escalated past trimming", policy)
		}
		if policy == agent.PolicyExtend && c.Migrations != 0 {
			t.Errorf("Extend policy must not migrate (got %d)", c.Migrations)
		}
		if policy == agent.PolicyMigrate && c.Extends != 0 {
			t.Errorf("Migrate policy must not extend (got %d)", c.Extends)
		}
		if firstTrim > firstEscalate {
			t.Errorf("%s: first trim at tick %d after first escalation at %d — ladder order violated",
				policy, firstTrim, firstEscalate)
		}
	}
}

// TestDataPlaneDeterministic replays the ladder scenario twice and
// requires bit-identical totals — the fleet-scale determinism the sharded
// simulator's byte-identity guarantee rests on.
func TestDataPlaneDeterministic(t *testing.T) {
	run := func() ([4]float64, AgentCounters) {
		dp := dpFixture(t, 3, agent.PolicyExtend, 0.125, 0.125)
		for srv := 0; srv < 3; srv++ {
			for i := 0; i < 3; i++ {
				if err := dp.Attach(srv, 10*srv+i+1, 24, 2); err != nil {
					t.Fatal(err)
				}
			}
		}
		for tick := 0; tick < 300; tick++ {
			for srv := 0; srv < 3; srv++ {
				for i := 0; i < 3; i++ {
					dp.SetWSS(10*srv+i+1, 4+3*float64((tick+17*i)%50)/10)
				}
			}
			if _, _, err := dp.Tick(1); err != nil {
				t.Fatal(err)
			}
		}
		tot := dp.Totals()
		return [4]float64{tot.TrimmedGB, tot.ExtendedGB, tot.HardFaultGB, dp.PoolUsedGB()}, dp.Counters()
	}
	sigA, cA := run()
	sigB, cB := run()
	if sigA != sigB || cA != cB {
		t.Errorf("data plane not deterministic: %v/%v vs %v/%v", sigA, cA, sigB, cB)
	}
}
