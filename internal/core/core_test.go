package core

import (
	"testing"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/trace"
)

func testTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.VMs = 200
	cfg.Subscriptions = 20
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestClusterManagerLifecycle(t *testing.T) {
	tr := testTrace(t)
	fleet := cluster.NewFleet(cluster.DefaultClusters(2))
	m, err := NewClusterManager(fleet, DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(tr, tr.Horizon/2); err != nil {
		t.Fatal(err)
	}
	if m.Model() == nil {
		t.Fatal("no model after Train")
	}

	placed := 0
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.End <= tr.Horizon/2 {
			continue
		}
		cvm, err := m.Request(vm)
		if err != nil {
			t.Fatal(err)
		}
		if !cvm.Guaranteed.FitsIn(vm.Alloc) {
			t.Fatalf("guaranteed %v exceeds allocation %v", cvm.Guaranteed, vm.Alloc)
		}
		if _, ok := m.Place(cvm); ok {
			placed++
		}
	}
	if placed == 0 {
		t.Fatal("nothing placed")
	}
	if m.Scheduler().Placed() != placed {
		t.Error("scheduler bookkeeping inconsistent")
	}

	// Deallocate everything; the fleet must drain.
	for i := range tr.VMs {
		m.Deallocate(tr.VMs[i].ID)
	}
	if m.Scheduler().Placed() != 0 {
		t.Error("deallocation left VMs behind")
	}
}

func TestClusterManagerDefaults(t *testing.T) {
	fleet := cluster.NewFleet(cluster.DefaultClusters(1))
	m, err := NewClusterManager(fleet, ClusterConfig{Policy: scheduler.PolicyCoach})
	if err != nil {
		t.Fatal(err)
	}
	// Without training, requests must fall back to fully guaranteed.
	vm := &trace.VM{ID: 1, Alloc: resources.NewVector(4, 16, 2, 128)}
	cvm, err := m.Request(vm)
	if err != nil {
		t.Fatal(err)
	}
	if cvm.Guaranteed != vm.Alloc {
		t.Error("untrained manager must fully guarantee")
	}
}

func TestServerManager(t *testing.T) {
	sm, err := NewServerManager(DefaultServerConfig(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrace(t)
	fleet := cluster.NewFleet(cluster.DefaultClusters(1))
	m, err := NewClusterManager(fleet, DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(tr, tr.Horizon/2); err != nil {
		t.Fatal(err)
	}
	var attached int
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.MemoryGB() > 16 {
			continue
		}
		cvm, err := m.Request(vm)
		if err != nil {
			t.Fatal(err)
		}
		mem, err := sm.Attach(cvm)
		if err != nil {
			t.Fatal(err)
		}
		mem.SetWSS(vm.MemoryGB() * 0.5)
		attached++
		if attached == 2 {
			break
		}
	}
	if attached != 2 {
		t.Fatal("could not attach two VMs")
	}
	for i := 0; i < 30; i++ {
		st, err := sm.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		if st.Len() != 2 {
			t.Fatalf("tick stats for %d VMs, want 2", st.Len())
		}
	}
}
