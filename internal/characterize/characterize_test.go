package characterize

import (
	"math"
	"testing"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

var charTrace *trace.Trace

func getTrace(t *testing.T) *trace.Trace {
	t.Helper()
	if charTrace == nil {
		cfg := trace.DefaultGenConfig()
		cfg.VMs = 400
		cfg.Subscriptions = 40
		tr, err := trace.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		charTrace = tr
	}
	return charTrace
}

func TestDurationHoursMonotone(t *testing.T) {
	rows := DurationHours(getTrace(t))
	if len(rows) != len(DurationThresholds) {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].CPUHoursPct > rows[i-1].CPUHoursPct+1e-9 {
			t.Errorf("core-hours share must decrease with threshold: %v then %v",
				rows[i-1].CPUHoursPct, rows[i].CPUHoursPct)
		}
		if rows[i].VMsPct > rows[i-1].VMsPct+1e-9 {
			t.Error("VM share must decrease with threshold")
		}
	}
}

func TestDurationHoursPaperShape(t *testing.T) {
	// Fig. 2: VMs > 1 day hold ~96% of core-hours but only ~28% of VMs.
	rows := DurationHours(getTrace(t))
	var oneDay DurationRow
	for _, r := range rows {
		if r.Threshold.Hours() == 24 {
			oneDay = r
		}
	}
	if oneDay.CPUHoursPct < 85 {
		t.Errorf(">1day VMs hold %.1f%% of core-hours, want >85%%", oneDay.CPUHoursPct)
	}
	if oneDay.VMsPct > 45 {
		t.Errorf(">1day VMs are %.1f%% of VMs, want <45%%", oneDay.VMsPct)
	}
}

func TestSizeHoursMonotone(t *testing.T) {
	tr := getTrace(t)
	rows := SizeHours(tr, resources.Memory, MemThresholds)
	for i := 1; i < len(rows); i++ {
		if rows[i].HoursPct > rows[i-1].HoursPct+1e-9 {
			t.Error("GB-hours share must decrease with size threshold")
		}
	}
	// Nearly every VM has >= 4GB (only 1-core compute-optimized VMs have
	// 2GB in the generator).
	if rows[0].VMsPct < 90 {
		t.Errorf("VMs with >= 4GB = %.1f%%, want > 90%%", rows[0].VMsPct)
	}
}

func TestMedianVMSize(t *testing.T) {
	cores, mem := MedianVMSize(getTrace(t))
	// Paper §2.1: median 4 cores, < 16GB.
	if cores < 2 || cores > 8 {
		t.Errorf("median cores = %v, want ~4", cores)
	}
	if mem < 4 || mem > 32 {
		t.Errorf("median memory = %v, want < 32", mem)
	}
}

func TestStranding(t *testing.T) {
	tr := getTrace(t)
	fleet := cluster.NewFleet(cluster.DefaultClusters(2))
	res := Stranding(tr, fleet)

	for li := range OversubLevels {
		for _, k := range resources.Kinds {
			if v := res.StrandedPct[li][k]; v < 0 || v > 100 {
				t.Fatalf("stranded pct %v for level %d kind %v", v, li, k)
			}
		}
		// Bottleneck shares per cluster must sum to ~100.
		for c := 0; c <= len(fleet.Clusters); c++ {
			var sum float64
			for _, k := range resources.Kinds {
				sum += res.BottleneckPct[li][c][k]
			}
			if math.Abs(sum-100) > 1e-6 && sum != 0 {
				t.Fatalf("bottleneck shares sum to %v", sum)
			}
		}
	}
}

func TestStrandingOversubShiftsBottleneck(t *testing.T) {
	// Fig. 5: oversubscribing CPU shifts the bottleneck away from CPU.
	tr := getTrace(t)
	fleet := cluster.NewFleet(cluster.DefaultClusters(2))
	res := Stranding(tr, fleet)
	all := len(fleet.Clusters)
	noOversubCPU := res.BottleneckPct[0][all][resources.CPU]
	cpuOnlyCPU := res.BottleneckPct[1][all][resources.CPU]
	if cpuOnlyCPU >= noOversubCPU {
		t.Errorf("CPU bottleneck share must drop under CPU oversubscription: %v -> %v",
			noOversubCPU, cpuOnlyCPU)
	}
}

func TestPackHypothetical(t *testing.T) {
	// Free resources fitting exactly 3 probe VMs leave the remainder
	// stranded, bottlenecked by CPU.
	free := HypotheticalVM.Scale(3).Add(resources.NewVector(0, 100, 5, 500))
	stranded, bottleneck := packHypothetical(free)
	if bottleneck != resources.CPU {
		t.Errorf("bottleneck = %v, want CPU", bottleneck)
	}
	if stranded[resources.CPU] != 0 {
		t.Errorf("CPU stranded = %v, want 0", stranded[resources.CPU])
	}
	if stranded[resources.Memory] != 100 {
		t.Errorf("memory stranded = %v, want 100", stranded[resources.Memory])
	}
}

func TestUtilizationSummary(t *testing.T) {
	s := Utilization(getTrace(t))
	// §2.3: most VMs average < 50% CPU; memory ranges narrow.
	if s.CPUMeanBelow50Pct < 50 {
		t.Errorf("only %.1f%% of VMs below 50%% mean CPU", s.CPUMeanBelow50Pct)
	}
	if s.CPURangeViolin.Median <= s.MemRangeViolin.Median {
		t.Errorf("CPU range median %.3f must exceed memory %.3f",
			s.CPURangeViolin.Median, s.MemRangeViolin.Median)
	}
	if s.MeanCorrelation < -1 || s.MeanCorrelation > 1 {
		t.Error("correlation out of range")
	}
}

func TestPeaksValleys(t *testing.T) {
	tr := getTrace(t)
	rows := PeaksValleys(tr, resources.CPU, timeseries.Windows{PerDay: 6}, true)
	if len(rows) != tr.Days() {
		t.Fatalf("%d rows, want %d days", len(rows), tr.Days())
	}
	for _, r := range rows {
		var sum float64
		for _, p := range r.WindowPct {
			if p < 0 || p > 100 {
				t.Fatalf("window pct %v", p)
			}
			sum += p
		}
		if sum > 0 && math.Abs(sum-100) > 1e-6 {
			t.Fatalf("window shares sum to %v", sum)
		}
		if r.NonePct < 0 || r.NonePct > 100 {
			t.Fatalf("none pct %v", r.NonePct)
		}
	}
	// Paper Fig. 8: <10% of VMs have no CPU peaks. Allow slack at small scale.
	if rows[2].NonePct > 25 {
		t.Errorf("%.1f%% of VMs with no CPU peaks, want small", rows[2].NonePct)
	}
}

func TestConsistencyCDF(t *testing.T) {
	tr := getTrace(t)
	configs := []timeseries.Windows{{PerDay: 4}, {PerDay: 1}}
	thresholds := []float64{0.05, 0.20, 0.50}
	cdf := ConsistencyCDF(tr, resources.Memory, configs, thresholds)
	for w, pts := range cdf {
		for i := 1; i < len(pts); i++ {
			if pts[i].Fraction < pts[i-1].Fraction {
				t.Fatalf("%v CDF not monotone", w)
			}
		}
		// Fig. 9: memory is very consistent day over day.
		if pts[1].Fraction < 0.8 {
			t.Errorf("%v: only %.2f of memory window maxima within 20pts day-over-day", w, pts[1].Fraction)
		}
	}
}

func TestSavingsShape(t *testing.T) {
	tr := getTrace(t)
	configs := timeseries.CommonWindowConfigs()
	rows := Savings(tr, -1, resources.CPU, configs)
	if len(rows) != tr.Days() {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		for _, p := range r.Pct {
			if p < -1e-9 || p > 100 {
				t.Fatalf("savings %v out of range", p)
			}
		}
		// Ideal (5-min multiplexing) must dominate every window config.
		ideal := r.Pct[len(configs)]
		for i := 0; i < len(configs); i++ {
			if r.Pct[i] > ideal+1e-6 {
				t.Fatalf("day %d: %v windows save %v > ideal %v", r.Day, configs[i], r.Pct[i], ideal)
			}
		}
		// More windows never save less (refinement property): 1x24h vs 24x1h.
		if r.Pct[0] > r.Pct[len(configs)-1]+1e-6 {
			t.Fatalf("day %d: 1x24h saves %v > 24x1h %v", r.Day, r.Pct[0], r.Pct[len(configs)-1])
		}
	}
}

func TestSavingsViolin(t *testing.T) {
	tr := getTrace(t)
	configs := timeseries.CommonWindowConfigs()
	violins := SavingsViolin(tr, resources.CPU, configs)
	if len(violins) != len(configs)+1 {
		t.Fatalf("%d violins", len(violins))
	}
	// Fig. 11: savings grow with window count (medians non-decreasing,
	// modulo small-sample noise — require the endpoints ordered).
	if violins[0].Median > violins[len(configs)-1].Median+1e-6 {
		t.Errorf("1x24h median %.2f exceeds 24x1h median %.2f",
			violins[0].Median, violins[len(configs)-1].Median)
	}
}

func TestGroups(t *testing.T) {
	tr := getTrace(t)
	for _, k := range []resources.Kind{resources.CPU, resources.Memory} {
		results := Groups(tr, k)
		if len(results) != 3 {
			t.Fatalf("%d groupings", len(results))
		}
		byG := map[Grouping]GroupResult{}
		for _, g := range results {
			byG[g.Grouping] = g
			if g.Within10Pct < 0 || g.Within10Pct > 100 || g.Within20Pct < g.Within10Pct {
				t.Fatalf("predictability percentages inconsistent: %+v", g)
			}
		}
		// Fig. 12: grouping by configuration yields more priors with wider
		// ranges than subscription+configuration.
		if byG[ByConfig].MedianPriorVMs < byG[BySubscriptionConfig].MedianPriorVMs {
			t.Errorf("%v: config grouping has fewer priors than sub+config", k)
		}
		if byG[ByConfig].MedianPeakRangePct < byG[BySubscriptionConfig].MedianPeakRangePct {
			t.Errorf("%v: config grouping has narrower ranges than sub+config", k)
		}
	}
}

func TestGroupingStrings(t *testing.T) {
	if BySubscription.String() != "subscription" || ByConfig.String() != "configuration" {
		t.Error("grouping strings wrong")
	}
}

func TestPercentileTradeoff(t *testing.T) {
	tr := getTrace(t)
	configs := []timeseries.Windows{{PerDay: 6}}
	rows := PercentileTradeoff(tr, resources.Memory, configs)
	byPct := map[float64]float64{}
	for _, r := range rows {
		byPct[r.Percentile] = r.MeanOversubAccessPct
		// Fig. 17a: VA accesses stay far below the worst case 100-P.
		if r.MeanOversubAccessPct > 100-r.Percentile {
			t.Errorf("P%.0f oversub access %.2f%% exceeds worst case %.0f%%",
				r.Percentile, r.MeanOversubAccessPct, 100-r.Percentile)
		}
	}
	// Lower percentile -> more oversubscribed accesses.
	if byPct[65] < byPct[95] {
		t.Errorf("P65 accesses %.3f < P95 %.3f", byPct[65], byPct[95])
	}
}

func TestOversubAccessCDF(t *testing.T) {
	tr := getTrace(t)
	cdf := OversubAccessCDF(tr, resources.Memory, timeseries.Windows{PerDay: 6}, []float64{1, 5, 20})
	for pct, pts := range cdf {
		for i := 1; i < len(pts); i++ {
			if pts[i].Fraction < pts[i-1].Fraction {
				t.Fatalf("P%.0f CDF not monotone", pct)
			}
		}
	}
	// Fig. 17b: at P95 with 4h windows almost every VM sees < 5% VA
	// accesses.
	if f := cdf[95][1].Fraction; f < 0.9 {
		t.Errorf("only %.2f of VMs below 5%% VA accesses at P95", f)
	}
}
