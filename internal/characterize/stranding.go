package characterize

import (
	"sort"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/trace"
)

// OversubLevel selects which resources the hypothetical-stranding analysis
// may reclaim from underutilization (Fig. 4: No Oversub / CPU Only /
// CPU+Memory).
type OversubLevel int

const (
	// NoOversub places hypothetical VMs against allocated resources only.
	NoOversub OversubLevel = iota
	// CPUOnly additionally reclaims underutilized CPU.
	CPUOnly
	// CPUMem reclaims underutilized CPU and memory.
	CPUMem
)

func (l OversubLevel) String() string {
	switch l {
	case NoOversub:
		return "No Oversub"
	case CPUOnly:
		return "CPU Only"
	case CPUMem:
		return "CPU+Memory"
	default:
		return "OversubLevel?"
	}
}

// OversubLevels lists the Fig. 4 configurations in order.
var OversubLevels = []OversubLevel{NoOversub, CPUOnly, CPUMem}

// HypotheticalVM is the probe used by the stranding analysis: the most
// typical VM configuration, 4GB/core general purpose (§2.2, Azure
// D-series), at 2 cores.
var HypotheticalVM = resources.NewVector(2, 8, 1, 64)

// StrandingResult aggregates the stranding analysis.
type StrandingResult struct {
	// StrandedPct[l][k] is the average percentage of resource k's
	// capacity left stranded under oversubscription level l (Fig. 4).
	StrandedPct [3]resources.Vector
	// BottleneckPct[l][c][k] is the percentage of time resource k is the
	// allocation bottleneck in cluster c (Fig. 5). Index c == number of
	// clusters holds the ALL aggregate.
	BottleneckPct [3][]resources.Vector
}

// placement tracks the first-fit assignment of trace VMs to servers used
// to establish realistic occupancy before probing with hypothetical VMs.
type placement struct {
	fleet    *cluster.Fleet
	byServer [][]*trace.VM // placed VMs per server
	assigned map[int]int   // vm ID -> server index
}

// newPlacement assigns each cluster's VMs to that cluster's servers
// first-fit by allocation at arrival time. VMs that do not fit anywhere in
// their home cluster are dropped (the real trace only contains VMs that
// fit, so overflow is an artifact of the down-scaled fleet).
func newPlacement(tr *trace.Trace, fleet *cluster.Fleet) *placement {
	p := &placement{
		fleet:    fleet,
		byServer: make([][]*trace.VM, len(fleet.Servers)),
		assigned: make(map[int]int),
	}
	// Per-server free allocation over time is tracked by replaying
	// arrivals in start order and removing departed VMs lazily.
	type srvState struct {
		free resources.Vector
		vms  []*trace.VM
	}
	states := make([]srvState, len(fleet.Servers))
	serversOfCluster := make(map[int][]int)
	for i := range fleet.Servers {
		states[i].free = fleet.Servers[i].Capacity()
		serversOfCluster[fleet.Servers[i].Cluster] = append(serversOfCluster[fleet.Servers[i].Cluster], i)
	}

	order := make([]*trace.VM, 0, len(tr.VMs))
	for i := range tr.VMs {
		order = append(order, &tr.VMs[i])
	}
	sortVMsByStart(order)

	for _, vm := range order {
		ci := vm.Cluster % len(fleet.Clusters)
		for _, si := range serversOfCluster[ci] {
			st := &states[si]
			// Lazily release departed VMs.
			live := st.vms[:0]
			for _, old := range st.vms {
				if old.End <= vm.Start {
					st.free = st.free.Add(old.Alloc)
				} else {
					live = append(live, old)
				}
			}
			st.vms = live
			if vm.Alloc.FitsIn(st.free) {
				st.free = st.free.Sub(vm.Alloc)
				st.vms = append(st.vms, vm)
				p.byServer[si] = append(p.byServer[si], vm)
				p.assigned[vm.ID] = si
				break
			}
		}
	}
	return p
}

func sortVMsByStart(vms []*trace.VM) {
	sort.SliceStable(vms, func(i, j int) bool {
		if vms[i].Start != vms[j].Start {
			return vms[i].Start < vms[j].Start
		}
		return vms[i].ID < vms[j].ID
	})
}

// allocatedAt returns the total allocation and utilized demand of server
// si's VMs at trace sample t.
func (p *placement) allocatedAt(si, t int) (alloc, used resources.Vector) {
	for _, vm := range p.byServer[si] {
		if vm.AliveAt(t) {
			alloc = alloc.Add(vm.Alloc)
			used = used.Add(vm.DemandAt(t))
		}
	}
	return alloc, used
}

// Stranding reproduces Figs. 4 and 5: at each (hourly) timestamp it packs
// hypothetical 4GB/core VMs into every server's free resources — free
// meaning unallocated, plus underutilized CPU (and memory) at the higher
// oversubscription levels — and measures what remains stranded and which
// resource blocked further placement.
func Stranding(tr *trace.Trace, fleet *cluster.Fleet) *StrandingResult {
	p := newPlacement(tr, fleet)
	res := &StrandingResult{}
	nc := len(fleet.Clusters)
	for l := range OversubLevels {
		res.BottleneckPct[l] = make([]resources.Vector, nc+1)
	}

	var strandSum [3]resources.Vector
	var capSum resources.Vector
	bottleneckCount := make([][3]map[resources.Kind]int, nc+1)
	steps := 0
	for i := range bottleneckCount {
		for l := range OversubLevels {
			bottleneckCount[i][l] = make(map[resources.Kind]int)
		}
	}

	for t := 0; t < tr.Horizon; t += evalSamplesPerStep {
		steps++
		for si := range fleet.Servers {
			srv := &fleet.Servers[si]
			cap := srv.Capacity()
			alloc, used := p.allocatedAt(si, t)
			for li, level := range OversubLevels {
				free := cap.Sub(alloc)
				// Oversubscription reclaims underutilized (allocated but
				// unused) resources for new placements.
				if level == CPUOnly || level == CPUMem {
					free[resources.CPU] = cap[resources.CPU] - used[resources.CPU]
				}
				if level == CPUMem {
					free[resources.Memory] = cap[resources.Memory] - used[resources.Memory]
				}
				free = free.ClampNonNegative()
				stranded, bottleneck := packHypothetical(free)
				strandSum[li] = strandSum[li].Add(stranded)
				bottleneckCount[srv.Cluster][li][bottleneck]++
				bottleneckCount[nc][li][bottleneck]++
			}
			capSum = capSum.Add(cap)
		}
	}

	for li := range OversubLevels {
		for _, k := range resources.Kinds {
			if capSum[k] > 0 {
				res.StrandedPct[li][k] = 100 * strandSum[li][k] / capSum[k]
			}
		}
		for c := 0; c <= nc; c++ {
			var total int
			for _, n := range bottleneckCount[c][li] {
				total += n
			}
			if total == 0 {
				continue
			}
			for _, k := range resources.Kinds {
				res.BottleneckPct[li][c][k] = 100 * float64(bottleneckCount[c][li][k]) / float64(total)
			}
		}
	}
	return res
}

// packHypothetical fills free with as many HypotheticalVM units as fit and
// returns the remaining (stranded) resources and the bottleneck kind — the
// resource that ran out first.
func packHypothetical(free resources.Vector) (stranded resources.Vector, bottleneck resources.Kind) {
	// The number of probe VMs that fit is limited by the scarcest
	// resource relative to the probe's shape.
	units := -1.0
	bottleneck = resources.CPU
	for _, k := range resources.Kinds {
		if HypotheticalVM[k] <= 0 {
			continue
		}
		u := free[k] / HypotheticalVM[k]
		if units < 0 || u < units {
			units = u
			bottleneck = k
		}
	}
	if units < 0 {
		units = 0
	}
	fit := float64(int(units)) // whole VMs only
	stranded = free.Sub(HypotheticalVM.Scale(fit)).ClampNonNegative()
	return stranded, bottleneck
}
