// Package characterize reproduces the paper's §2 characterization of VM
// resource utilization: resource hours by duration and size (Figs. 2-3),
// stranding and bottlenecks (Figs. 4-5), utilization statistics and
// temporal patterns (Figs. 6-9), complementary-pattern savings
// (Figs. 10-11), grouping predictability (Fig. 12) and the
// packing-vs-performance percentile trade-off (Fig. 17).
//
// Every analysis is a pure function over a trace (plus a fleet where
// placement matters), so the same code serves tests, benchmarks, examples
// and the experiment harness.
package characterize

import (
	"sort"
	"time"

	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

// DurationThresholds are Fig. 2's x-axis values.
var DurationThresholds = []time.Duration{
	5 * time.Minute,
	30 * time.Minute,
	time.Hour,
	2 * time.Hour,
	6 * time.Hour,
	12 * time.Hour,
	24 * time.Hour,
	48 * time.Hour,
	96 * time.Hour,
	7 * 24 * time.Hour,
}

// DurationRow is one Fig. 2 data point: the share of resource hours and of
// VM count held by VMs lasting longer than Threshold.
type DurationRow struct {
	Threshold   time.Duration
	CPUHoursPct float64
	MemHoursPct float64
	VMsPct      float64
}

// DurationHours computes Fig. 2: the percentage of core-hours, GB-hours
// and VMs contributed by VMs lasting more than each threshold.
func DurationHours(tr *trace.Trace) []DurationRow {
	var totalCPU, totalMem float64
	for i := range tr.VMs {
		totalCPU += tr.VMs[i].ResourceHours(resources.CPU)
		totalMem += tr.VMs[i].ResourceHours(resources.Memory)
	}
	total := float64(len(tr.VMs))
	out := make([]DurationRow, len(DurationThresholds))
	for ti, th := range DurationThresholds {
		row := DurationRow{Threshold: th}
		var cpu, mem, n float64
		for i := range tr.VMs {
			vm := &tr.VMs[i]
			if vm.Duration() > th {
				cpu += vm.ResourceHours(resources.CPU)
				mem += vm.ResourceHours(resources.Memory)
				n++
			}
		}
		if totalCPU > 0 {
			row.CPUHoursPct = 100 * cpu / totalCPU
		}
		if totalMem > 0 {
			row.MemHoursPct = 100 * mem / totalMem
		}
		if total > 0 {
			row.VMsPct = 100 * n / total
		}
		out[ti] = row
	}
	return out
}

// SizeRow is one Fig. 3 data point: the share of resource hours and VM
// count held by VMs at least as large as Threshold (cores or GB).
type SizeRow struct {
	Threshold float64
	HoursPct  float64
	VMsPct    float64
}

// SizeHours computes Fig. 3 for one resource kind: thresholds over the VM
// size in that resource's unit; each row reports the share of that
// resource's hours (and of VMs) from VMs with size >= threshold.
func SizeHours(tr *trace.Trace, k resources.Kind, thresholds []float64) []SizeRow {
	var totalHours float64
	for i := range tr.VMs {
		totalHours += tr.VMs[i].ResourceHours(k)
	}
	total := float64(len(tr.VMs))
	out := make([]SizeRow, len(thresholds))
	for ti, th := range thresholds {
		row := SizeRow{Threshold: th}
		var hours, n float64
		for i := range tr.VMs {
			vm := &tr.VMs[i]
			if vm.Alloc[k] >= th {
				hours += vm.ResourceHours(k)
				n++
			}
		}
		if totalHours > 0 {
			row.HoursPct = 100 * hours / totalHours
		}
		if total > 0 {
			row.VMsPct = 100 * n / total
		}
		out[ti] = row
	}
	return out
}

// CoreThresholds and MemThresholds are Fig. 3's x-axes.
var (
	CoreThresholds = []float64{1, 2, 4, 8, 16, 32, 40}
	MemThresholds  = []float64{4, 8, 16, 32, 64, 128, 256, 512}
)

// MedianVMSize returns the median cores and memory across VMs (§2.1:
// "The median VM in our study has 4 cores and less than 16GB").
func MedianVMSize(tr *trace.Trace) (cores, memGB float64) {
	if len(tr.VMs) == 0 {
		return 0, 0
	}
	cs := make([]float64, 0, len(tr.VMs))
	ms := make([]float64, 0, len(tr.VMs))
	for i := range tr.VMs {
		cs = append(cs, tr.VMs[i].Cores())
		ms = append(ms, tr.VMs[i].MemoryGB())
	}
	return median(cs), median(ms)
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// evalSamplesPerStep is the stride used by per-timestamp fleet analyses
// (hourly rather than every 5 minutes, for tractability).
const evalSamplesPerStep = timeseries.SamplesPerHour
