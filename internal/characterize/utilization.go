package characterize

import (
	"time"

	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/stats"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

// UtilizationSummary captures the Fig. 6 scatter statistics over the
// long-running VM population.
type UtilizationSummary struct {
	// MeanCorrelation is the Pearson correlation between per-VM mean CPU
	// and mean memory utilization (left panel of Fig. 6).
	MeanCorrelation float64
	// RangeCorrelation correlates the P95-P5 CPU and memory ranges
	// (right panel).
	RangeCorrelation float64
	// CPUMeanBelow50Pct is the share of VMs with mean CPU utilization
	// under 50% (§2.3 reports "most VMs").
	CPUMeanBelow50Pct float64
	// CPURangeViolin / MemRangeViolin summarize the utilization ranges.
	CPURangeViolin stats.Violin
	MemRangeViolin stats.Violin
	// MemRangeBelow10Pct / MemRangeAbove50Pct report the §2.3 claims that
	// 50% of VMs have a memory range under 10% and only 10% exceed 50%.
	MemRangeBelow10Pct float64
	MemRangeAbove50Pct float64
}

// Utilization computes Fig. 6's statistics over VMs lasting more than one
// day (the paper's §2.3 focus population).
func Utilization(tr *trace.Trace) UtilizationSummary {
	var meanCPU, meanMem, rangeCPU, rangeMem []float64
	for _, vm := range tr.LongRunning() {
		meanCPU = append(meanCPU, vm.Util[resources.CPU].Mean())
		meanMem = append(meanMem, vm.Util[resources.Memory].Mean())
		rangeCPU = append(rangeCPU, vm.Util[resources.CPU].UtilRange(5, 95))
		rangeMem = append(rangeMem, vm.Util[resources.Memory].UtilRange(5, 95))
	}
	s := UtilizationSummary{
		MeanCorrelation:  stats.Pearson(meanCPU, meanMem),
		RangeCorrelation: stats.Pearson(rangeCPU, rangeMem),
		CPURangeViolin:   stats.NewViolin(rangeCPU),
		MemRangeViolin:   stats.NewViolin(rangeMem),
	}
	n := float64(len(meanCPU))
	if n == 0 {
		return s
	}
	var below50, memBelow10, memAbove50 float64
	for i := range meanCPU {
		if meanCPU[i] < 0.5 {
			below50++
		}
		if rangeMem[i] < 0.10 {
			memBelow10++
		}
		if rangeMem[i] > 0.50 {
			memAbove50++
		}
	}
	s.CPUMeanBelow50Pct = 100 * below50 / n
	s.MemRangeBelow10Pct = 100 * memBelow10 / n
	s.MemRangeAbove50Pct = 100 * memAbove50 / n
	return s
}

// PeaksValleysRow is one Fig. 8 cell set: for one weekday, the share of
// peak (or valley) VMs falling in each time window, plus the share of VMs
// with no peaks that day.
type PeaksValleysRow struct {
	Weekday time.Weekday
	// WindowPct[w] is the percentage of that day's peak (valley) VMs
	// whose peak (valley) falls in window w; a VM can appear in several.
	WindowPct []float64
	NonePct   float64
}

// PeaksValleys computes Fig. 8 for one resource with the given windows
// (paper: 6x4h) over long-running VMs.
func PeaksValleys(tr *trace.Trace, k resources.Kind, w timeseries.Windows, wantPeaks bool) []PeaksValleysRow {
	days := tr.Days()
	rows := make([]PeaksValleysRow, 0, days)
	for d := 0; d < days; d++ {
		counts := make([]float64, w.PerDay)
		var withAny, none, total float64
		for _, vm := range tr.LongRunning() {
			// The VM must cover this full trace day.
			dayStart := d * timeseries.SamplesPerDay
			if vm.Start > dayStart || vm.End < dayStart+timeseries.SamplesPerDay {
				continue
			}
			total++
			localDay := (dayStart - vm.Start) / timeseries.SamplesPerDay
			peaks, valleys, has := vm.Util[k].PeaksValleys(localDay, w)
			if !has {
				none++
				continue
			}
			marks := peaks
			if !wantPeaks {
				marks = valleys
			}
			any := false
			for wi, m := range marks {
				if m {
					counts[wi]++
					any = true
				}
			}
			if any {
				withAny++
			}
		}
		row := PeaksValleysRow{Weekday: tr.WeekdayAt(d * timeseries.SamplesPerDay), WindowPct: make([]float64, w.PerDay)}
		if withAny > 0 {
			// Normalize against VMs with a peak/valley that day, as the
			// paper does.
			var sum float64
			for _, c := range counts {
				sum += c
			}
			for wi := range counts {
				row.WindowPct[wi] = 100 * counts[wi] / sum
			}
		}
		if total > 0 {
			row.NonePct = 100 * none / total
		}
		rows = append(rows, row)
	}
	return rows
}

// ConsistencyCDF computes Fig. 9 for one resource: for each window length,
// the CDF of the absolute difference between a window's maximum on
// consecutive days, evaluated at the given thresholds (fractions).
func ConsistencyCDF(tr *trace.Trace, k resources.Kind, configs []timeseries.Windows, thresholds []float64) map[timeseries.Windows][]stats.CDFPoint {
	out := make(map[timeseries.Windows][]stats.CDFPoint, len(configs))
	for _, w := range configs {
		var diffs []float64
		for _, vm := range tr.LongRunning() {
			days := vm.Util[k].Days()
			for d := 0; d+1 < days; d++ {
				a := vm.Util[k].DayWindowMax(d, w)
				b := vm.Util[k].DayWindowMax(d+1, w)
				for wi := range a {
					diff := a[wi] - b[wi]
					if diff < 0 {
						diff = -diff
					}
					diffs = append(diffs, diff)
				}
			}
		}
		out[w] = stats.CDF(diffs, thresholds)
	}
	return out
}
