package characterize

import (
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/stats"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

// PercentileTradeoffRow is one Fig. 17a point: the expected percentage of
// memory accesses served by the oversubscribed (VA) portion when the
// guaranteed portion is sized at the given prediction percentile, for one
// window length.
type PercentileTradeoffRow struct {
	Percentile float64
	Windows    timeseries.Windows
	// MeanOversubAccessPct is averaged across VMs.
	MeanOversubAccessPct float64
}

// TradeoffPercentiles are Fig. 17's x-axis values.
var TradeoffPercentiles = []float64{65, 70, 75, 80, 85, 90, 95}

// oversubAccessPct computes, for one VM, the expected percentage of
// accesses landing in the oversubscribed portion when the guaranteed (PA)
// portion is the bucketed P-percentile of each window's utilization,
// assuming uniform access over utilized memory (§3.3, Fig. 17).
func oversubAccessPct(vm *trace.VM, k resources.Kind, w timeseries.Windows, pct float64) float64 {
	s := vm.Util[k]
	pa := s.WindowPercentile(w, pct)
	// The PA allocation is static: the max across windows (formula 1),
	// rounded up to a 5% bucket.
	var paFrac float64
	for _, v := range pa {
		if b := stats.BucketUp(v, timeseries.PeakBucket); b > paFrac {
			paFrac = b
		}
	}
	if paFrac > 1 {
		paFrac = 1
	}
	var sum float64
	for _, u := range s {
		if u > paFrac && u > 0 {
			sum += (u - paFrac) / u
		}
	}
	if len(s) == 0 {
		return 0
	}
	return 100 * sum / float64(len(s))
}

// PercentileTradeoff computes Fig. 17a over long-running VMs.
func PercentileTradeoff(tr *trace.Trace, k resources.Kind, configs []timeseries.Windows) []PercentileTradeoffRow {
	vms := tr.LongRunning()
	var rows []PercentileTradeoffRow
	for _, pct := range TradeoffPercentiles {
		for _, w := range configs {
			var sum float64
			var n int
			for _, vm := range vms {
				sum += oversubAccessPct(vm, k, w, pct)
				n++
			}
			row := PercentileTradeoffRow{Percentile: pct, Windows: w}
			if n > 0 {
				row.MeanOversubAccessPct = sum / float64(n)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// OversubAccessCDF computes Fig. 17b: for each percentile, the CDF across
// VMs of the per-VM oversubscribed access percentage, using the given
// window config (paper: 4-hour windows) and thresholds in percent.
func OversubAccessCDF(tr *trace.Trace, k resources.Kind, w timeseries.Windows, thresholds []float64) map[float64][]stats.CDFPoint {
	vms := tr.LongRunning()
	out := make(map[float64][]stats.CDFPoint, len(TradeoffPercentiles))
	for _, pct := range TradeoffPercentiles {
		vals := make([]float64, 0, len(vms))
		for _, vm := range vms {
			vals = append(vals, oversubAccessPct(vm, k, w, pct))
		}
		out[pct] = stats.CDF(vals, thresholds)
	}
	return out
}
