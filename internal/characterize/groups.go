package characterize

import (
	"fmt"

	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/stats"
	"github.com/coach-oss/coach/internal/trace"
)

// Grouping selects the Fig. 12 similarity grouping.
type Grouping int

const (
	// BySubscription groups VMs by customer subscription.
	BySubscription Grouping = iota
	// ByConfig groups VMs by VM configuration.
	ByConfig
	// BySubscriptionConfig groups by the combination of both.
	BySubscriptionConfig
)

func (g Grouping) String() string {
	switch g {
	case BySubscription:
		return "subscription"
	case ByConfig:
		return "configuration"
	case BySubscriptionConfig:
		return "subscription+configuration"
	default:
		return "Grouping?"
	}
}

// Groupings lists the three Fig. 12 groupings.
var Groupings = []Grouping{BySubscription, ByConfig, BySubscriptionConfig}

func (g Grouping) key(vm *trace.VM) string {
	switch g {
	case BySubscription:
		return fmt.Sprintf("s%d", vm.Subscription)
	case ByConfig:
		return fmt.Sprintf("c%d", vm.Config)
	default:
		return fmt.Sprintf("s%d/c%d", vm.Subscription, vm.Config)
	}
}

// GroupResult summarizes Fig. 12 for one grouping and resource.
type GroupResult struct {
	Grouping Grouping
	Kind     resources.Kind
	// MedianPriorVMs is the median number of first-week VMs matching a
	// second-week VM's group.
	MedianPriorVMs float64
	// MedianPeakRangePct is the median (max-min) spread of the prior
	// VMs' peak utilizations, in percentage points.
	MedianPeakRangePct float64
	// Within10Pct / Within20Pct report the share of second-week VMs
	// whose own peak falls within 10 (20) percentage points of the mean
	// peak of their prior VMs — the §2.3 predictability metric.
	Within10Pct float64
	Within20Pct float64
	// Evaluated is the number of second-week VMs with at least one prior.
	Evaluated int
}

// Groups reproduces Fig. 12: for every VM allocated in the second half of
// the trace, it collects the first-half VMs of the same group and
// measures how many there are, how widely their peak utilizations ranged,
// and how predictive their average peak is.
func Groups(tr *trace.Trace, k resources.Kind) []GroupResult {
	split := tr.Horizon / 2

	// First-week peaks per group key.
	type groupStats struct {
		peaks []float64
	}
	firstWeek := make([]map[string]*groupStats, len(Groupings))
	for gi := range Groupings {
		firstWeek[gi] = make(map[string]*groupStats)
	}
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.Start >= split || vm.DurationSamples() < evalSamplesPerStep {
			continue
		}
		visible := vm.End
		if visible > split {
			visible = split
		}
		peak := vm.Util[k][:visible-vm.Start].Max()
		for gi, g := range Groupings {
			key := g.key(vm)
			gs := firstWeek[gi][key]
			if gs == nil {
				gs = &groupStats{}
				firstWeek[gi][key] = gs
			}
			gs.peaks = append(gs.peaks, peak)
		}
	}

	out := make([]GroupResult, 0, len(Groupings))
	for gi, g := range Groupings {
		var counts, ranges []float64
		var within10, within20, evaluated int
		for i := range tr.VMs {
			vm := &tr.VMs[i]
			if vm.Start < split || vm.DurationSamples() < evalSamplesPerStep {
				continue
			}
			gs := firstWeek[gi][g.key(vm)]
			if gs == nil || len(gs.peaks) == 0 {
				continue
			}
			evaluated++
			counts = append(counts, float64(len(gs.peaks)))
			ranges = append(ranges, 100*(stats.Max(gs.peaks)-stats.Min(gs.peaks)))
			ownPeak := vm.Util[k].Max()
			diff := 100 * abs(ownPeak-stats.Mean(gs.peaks))
			if diff <= 10 {
				within10++
			}
			if diff <= 20 {
				within20++
			}
		}
		res := GroupResult{Grouping: g, Kind: k, Evaluated: evaluated}
		res.MedianPriorVMs = stats.Percentile(counts, 50)
		res.MedianPeakRangePct = stats.Percentile(ranges, 50)
		if evaluated > 0 {
			res.Within10Pct = 100 * float64(within10) / float64(evaluated)
			res.Within20Pct = 100 * float64(within20) / float64(evaluated)
		}
		out = append(out, res)
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
