package characterize

import (
	"math"

	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/stats"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

// SavingsRow is one Fig. 10 data point: for one trace day, the percentage
// of allocated resources saved by packing with per-window maxima instead
// of the lifetime maximum. Ideal multiplexes at 5-minute granularity.
type SavingsRow struct {
	Day int
	// Pct[w] is the savings for window config index w; the final entry
	// is Ideal.
	Pct []float64
}

// dailySavings computes, for the VMs of one cluster (or all when
// cluster < 0), the resource-weighted savings fraction for resource k on
// day d: sum over VMs of alloc * mean-over-windows(lifetimeMax - windowMax)
// divided by the summed allocation of VMs live that day.
func dailySavings(vms []*trace.VM, k resources.Kind, d int, w timeseries.Windows) float64 {
	var saved, alloc float64
	dayStart := d * timeseries.SamplesPerDay
	for _, vm := range vms {
		if vm.Start > dayStart || vm.End < dayStart+timeseries.SamplesPerDay {
			continue
		}
		localDay := (dayStart - vm.Start) / timeseries.SamplesPerDay
		lifetimeMax := vm.Util[k].Max()
		sv := vm.Util[k].WindowSavings(localDay, w, lifetimeMax)
		saved += vm.Alloc[k] * stats.Mean(sv)
		alloc += vm.Alloc[k]
	}
	if alloc == 0 {
		return 0
	}
	return 100 * saved / alloc
}

// idealSavings is dailySavings at 5-minute multiplexing: the mean gap
// between lifetime max and each 5-minute sample.
func idealSavings(vms []*trace.VM, k resources.Kind, d int) float64 {
	var saved, alloc float64
	dayStart := d * timeseries.SamplesPerDay
	for _, vm := range vms {
		if vm.Start > dayStart || vm.End < dayStart+timeseries.SamplesPerDay {
			continue
		}
		day := vm.Util[k][dayStart-vm.Start : dayStart-vm.Start+timeseries.SamplesPerDay]
		lifetimeMax := vm.Util[k].Max()
		var sum float64
		for _, u := range day {
			if s := lifetimeMax - u; s > 0 {
				sum += s
			}
		}
		saved += vm.Alloc[k] * sum / float64(len(day))
		alloc += vm.Alloc[k]
	}
	if alloc == 0 {
		return 0
	}
	return 100 * saved / alloc
}

// Savings computes Fig. 10 for one cluster (cluster < 0 means the whole
// trace): per day, the savings percentage for each window config plus
// Ideal as the last column.
func Savings(tr *trace.Trace, clusterIdx int, k resources.Kind, configs []timeseries.Windows) []SavingsRow {
	vms := tr.LongRunning()
	if clusterIdx >= 0 {
		filtered := vms[:0]
		for _, vm := range vms {
			if vm.Cluster == clusterIdx {
				filtered = append(filtered, vm)
			}
		}
		vms = filtered
	}
	days := tr.Days()
	rows := make([]SavingsRow, 0, days)
	for d := 0; d < days; d++ {
		row := SavingsRow{Day: d, Pct: make([]float64, len(configs)+1)}
		for wi, w := range configs {
			row.Pct[wi] = dailySavings(vms, k, d, w)
		}
		row.Pct[len(configs)] = idealSavings(vms, k, d)
		rows = append(rows, row)
	}
	return rows
}

// SavingsViolin computes Fig. 11: for each window config (plus Ideal as
// the final entry), the distribution of per-cluster savings for resource
// k, summarized as a violin. Savings per cluster average over days.
func SavingsViolin(tr *trace.Trace, k resources.Kind, configs []timeseries.Windows) []stats.Violin {
	out := make([]stats.Violin, len(configs)+1)
	perCluster := make([][]float64, len(configs)+1)
	for c := 0; c < tr.Clusters; c++ {
		rows := Savings(tr, c, k, configs)
		if len(rows) == 0 {
			continue
		}
		for col := 0; col <= len(configs); col++ {
			var sum float64
			var n int
			for _, r := range rows {
				if !math.IsNaN(r.Pct[col]) {
					sum += r.Pct[col]
					n++
				}
			}
			if n > 0 {
				perCluster[col] = append(perCluster[col], sum/float64(n))
			}
		}
	}
	for col := range perCluster {
		out[col] = stats.NewViolin(perCluster[col])
	}
	return out
}
