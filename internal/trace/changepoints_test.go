package trace

import (
	"reflect"
	"testing"

	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
)

func TestChangePoints(t *testing.T) {
	vm := &VM{Start: 10, End: 16}
	// CPU changes at offsets 2 and 4; memory changes at offsets 2 and 5.
	vm.Util[resources.CPU] = timeseries.Series{0.3, 0.3, 0.5, 0.5, 0.2, 0.2}
	vm.Util[resources.Memory] = timeseries.Series{0.1, 0.1, 0.4, 0.4, 0.4, 0.6}
	got := vm.ChangePoints()
	want := []int32{2, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ChangePoints = %v, want %v", got, want)
	}

	flat := &VM{Start: 0, End: 4}
	flat.Util[resources.CPU] = timeseries.Series{0.5, 0.5, 0.5, 0.5}
	flat.Util[resources.Memory] = timeseries.Series{0.2, 0.2, 0.2, 0.2}
	if got := flat.ChangePoints(); got != nil {
		t.Errorf("flat series ChangePoints = %v, want nil", got)
	}

	// A series shorter than the lifetime reads as zero past its end
	// (UtilAt's contract), so the fall-off is one final change point.
	short := &VM{Start: 0, End: 6}
	short.Util[resources.CPU] = timeseries.Series{0.5, 0.5, 0.5}
	if got, want := short.ChangePoints(), []int32{3}; !reflect.DeepEqual(got, want) {
		t.Errorf("short series ChangePoints = %v, want %v", got, want)
	}
}

// TestChangePointsMatchUtilUnchanged pins the contract the event core's
// equivalence rests on: over generated VMs, offset i (0 < i < lifetime)
// is a change point exactly when the utilization vector at Start+i
// differs from the one at Start+i-1.
func TestChangePointsMatchUtilUnchanged(t *testing.T) {
	tr := getTrace(t)
	checked := 0
	for i := range tr.VMs {
		if i%7 != 0 { // sample the population; full sweep is slow
			continue
		}
		vm := &tr.VMs[i]
		cps := vm.ChangePoints()
		isCP := make(map[int]bool, len(cps))
		for _, c := range cps {
			isCP[int(c)] = true
		}
		for off := 1; off < vm.DurationSamples(); off++ {
			changed := false
			for _, k := range resources.Kinds {
				if vm.UtilAt(k, vm.Start+off) != vm.UtilAt(k, vm.Start+off-1) {
					changed = true
					break
				}
			}
			if changed != isCP[off] {
				t.Fatalf("vm %d offset %d: changed=%v but change point=%v", vm.ID, off, changed, isCP[off])
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no offsets checked")
	}
}
