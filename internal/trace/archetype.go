package trace

import "math"

// Archetype is a behavioural template for the workloads of one customer
// subscription. The paper observes (§2.3) that VMs exhibit daily peaks and
// valleys at consistent times, that memory fluctuates within narrow bounds
// while CPU swings widely, and that VMs from the same subscription behave
// alike (Fig. 12). Archetypes encode those facts; the generator assigns one
// per subscription and jitters its parameters per VM.
type Archetype struct {
	Name string

	// BaseCPU is the off-peak CPU utilization fraction.
	BaseCPU float64
	// PeakCPU is the additional CPU utilization at the top of the daily
	// peak (so peak utilization ~= BaseCPU + PeakCPU).
	PeakCPU float64
	// PeakHour is the hour of day [0,24) at which activity peaks.
	PeakHour float64
	// PeakWidthHours is the standard deviation of the Gaussian activity
	// bump around PeakHour.
	PeakWidthHours float64
	// SecondPeakHour, when >= 0, adds a second daily bump at 60% height.
	SecondPeakHour float64

	// BaseMem and PeakMem shape the memory series the same way. Memory
	// ranges are much narrower than CPU (§2.3: 50% of VMs have a memory
	// range below 10%).
	BaseMem float64
	PeakMem float64

	// WeekendFactor scales the peak amplitude on Saturday and Sunday
	// (1 = unchanged; business workloads use < 1, consumer ones > 1).
	WeekendFactor float64

	// NoiseCPU and NoiseMem are the standard deviations of per-sample
	// Gaussian noise.
	NoiseCPU float64
	NoiseMem float64

	// SpikeProb is the per-sample probability of a short CPU burst of
	// amplitude SpikeAmp (the 0-8h spikes visible in Fig. 7).
	SpikeProb float64
	SpikeAmp  float64
}

// Archetypes is the catalogue the generator draws from. The mix covers the
// pattern classes the paper identifies: daytime/business peaks, nightly
// batch, morning and evening peaks, double peaks, near-constant high and
// low utilization, and unpredictable VMs (<10% of VMs have no CPU
// peaks/valleys, Fig. 8; prior work's periodic/constant/unpredictable
// classes, §2.3).
var Archetypes = []Archetype{
	{
		Name: "business-hours", BaseCPU: 0.10, PeakCPU: 0.45, PeakHour: 13, PeakWidthHours: 3.5,
		SecondPeakHour: -1, BaseMem: 0.45, PeakMem: 0.15, WeekendFactor: 0.35,
		NoiseCPU: 0.03, NoiseMem: 0.010, SpikeProb: 0.015, SpikeAmp: 0.30,
	},
	{
		Name: "nightly-batch", BaseCPU: 0.08, PeakCPU: 0.55, PeakHour: 2, PeakWidthHours: 2.5,
		SecondPeakHour: -1, BaseMem: 0.35, PeakMem: 0.20, WeekendFactor: 1.0,
		NoiseCPU: 0.03, NoiseMem: 0.012, SpikeProb: 0.012, SpikeAmp: 0.25,
	},
	{
		Name: "morning-peak", BaseCPU: 0.12, PeakCPU: 0.40, PeakHour: 8, PeakWidthHours: 2.0,
		SecondPeakHour: -1, BaseMem: 0.50, PeakMem: 0.12, WeekendFactor: 0.6,
		NoiseCPU: 0.035, NoiseMem: 0.010, SpikeProb: 0.015, SpikeAmp: 0.25,
	},
	{
		Name: "evening-peak", BaseCPU: 0.12, PeakCPU: 0.42, PeakHour: 20, PeakWidthHours: 2.5,
		SecondPeakHour: -1, BaseMem: 0.40, PeakMem: 0.14, WeekendFactor: 1.25,
		NoiseCPU: 0.035, NoiseMem: 0.010, SpikeProb: 0.015, SpikeAmp: 0.25,
	},
	{
		Name: "double-peak", BaseCPU: 0.10, PeakCPU: 0.38, PeakHour: 10, PeakWidthHours: 1.8,
		SecondPeakHour: 19, BaseMem: 0.42, PeakMem: 0.12, WeekendFactor: 0.8,
		NoiseCPU: 0.03, NoiseMem: 0.010, SpikeProb: 0.015, SpikeAmp: 0.25,
	},
	{
		Name: "steady-high", BaseCPU: 0.55, PeakCPU: 0.08, PeakHour: 12, PeakWidthHours: 5,
		SecondPeakHour: -1, BaseMem: 0.70, PeakMem: 0.05, WeekendFactor: 1.0,
		NoiseCPU: 0.02, NoiseMem: 0.008, SpikeProb: 0.008, SpikeAmp: 0.15,
	},
	{
		Name: "steady-low", BaseCPU: 0.06, PeakCPU: 0.03, PeakHour: 12, PeakWidthHours: 6,
		SecondPeakHour: -1, BaseMem: 0.30, PeakMem: 0.03, WeekendFactor: 1.0,
		NoiseCPU: 0.012, NoiseMem: 0.006, SpikeProb: 0.006, SpikeAmp: 0.10,
	},
	{
		Name: "unpredictable", BaseCPU: 0.20, PeakCPU: 0.15, PeakHour: 15, PeakWidthHours: 4,
		SecondPeakHour: -1, BaseMem: 0.45, PeakMem: 0.10, WeekendFactor: 1.0,
		NoiseCPU: 0.14, NoiseMem: 0.05, SpikeProb: 0.02, SpikeAmp: 0.45,
	},
}

// activity returns the diurnal activity factor in [0,1] at the given hour
// of day for the archetype: a wrapped-Gaussian bump around PeakHour, plus
// an optional 60%-height secondary bump.
func (a *Archetype) activity(hour float64) float64 {
	act := gaussBump(hour, a.PeakHour, a.PeakWidthHours)
	if a.SecondPeakHour >= 0 {
		act += 0.6 * gaussBump(hour, a.SecondPeakHour, a.PeakWidthHours)
	}
	if act > 1 {
		act = 1
	}
	return act
}

// gaussBump evaluates a circular (24h-wrapped) Gaussian bump.
func gaussBump(hour, center, width float64) float64 {
	d := math.Abs(hour - center)
	if d > 12 {
		d = 24 - d
	}
	return math.Exp(-d * d / (2 * width * width))
}
