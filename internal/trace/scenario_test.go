package trace

import (
	"bytes"
	"math"
	"testing"

	"github.com/coach-oss/coach/internal/scenario"
)

// miniSpec returns the named preset scaled down to test size.
func miniSpec(t *testing.T, name string) *scenario.Spec {
	t.Helper()
	sp, err := scenario.Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	return sp.Scaled(300, 30)
}

func TestGenerateScenarioValid(t *testing.T) {
	for _, name := range scenario.PresetNames {
		t.Run(name, func(t *testing.T) {
			tr, err := GenerateScenario(miniSpec(t, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			// The arrival processes target the spec's VM budget on
			// average; the realized count should land near it.
			n := len(tr.VMs)
			if n < 150 || n > 600 {
				t.Errorf("%d VMs generated, want ~300", n)
			}
		})
	}
}

// TestGenerateScenarioDeterministic gob-serializes two independent
// generations of the same spec and requires byte identity — stronger
// than field spot checks, and exactly what the replay tooling relies
// on when loadgen and the simulator regenerate the trace separately.
func TestGenerateScenarioDeterministic(t *testing.T) {
	for _, name := range scenario.PresetNames {
		t.Run(name, func(t *testing.T) {
			var bufs [2]bytes.Buffer
			for i := range bufs {
				tr, err := GenerateScenario(miniSpec(t, name))
				if err != nil {
					t.Fatal(err)
				}
				if err := tr.Save(&bufs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
				t.Fatal("same spec produced different trace bytes")
			}
		})
	}
}

func TestGenerateScenarioRejectsInvalid(t *testing.T) {
	sp := miniSpec(t, "capacity")
	sp.Classes[0].Fraction = -1
	if _, err := GenerateScenario(sp); err == nil {
		t.Error("invalid spec must be rejected")
	}

	sp = miniSpec(t, "capacity")
	sp.Classes[0].Archetype = "no-such-archetype"
	if _, err := GenerateScenario(sp); err == nil {
		t.Error("unknown archetype must be rejected")
	}
}

func TestGenerateScenarioClusterPinning(t *testing.T) {
	// skewed-hot-cold pins the hot class (subscription range of class 0)
	// to clusters 0 and 1; there are no surges to re-home anyone.
	sp := miniSpec(t, "skewed-hot-cold")
	tr, err := GenerateScenario(sp)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := sp.SubscriptionRange(0)
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.Subscription >= lo && vm.Subscription < hi && vm.Cluster > 1 {
			t.Fatalf("hot-class vm %d placed in cluster %d, want 0 or 1", vm.ID, vm.Cluster)
		}
	}
}

func TestGenerateScenarioSizeBias(t *testing.T) {
	// churn: class 0 ("ephemeral") is small, class 1 ("resident") is
	// large. Mean cores must reflect the bias.
	sp := miniSpec(t, "churn")
	tr, err := GenerateScenario(sp)
	if err != nil {
		t.Fatal(err)
	}
	var cores [2]float64
	var n [2]int
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		ci := sp.ClassOfSubscription(vm.Subscription)
		cores[ci] += vm.Cores()
		n[ci]++
	}
	if n[0] == 0 || n[1] == 0 {
		t.Fatal("a class generated no VMs")
	}
	small, large := cores[0]/float64(n[0]), cores[1]/float64(n[1])
	if small >= large {
		t.Errorf("small-class mean cores %.1f >= large-class %.1f", small, large)
	}
}

func TestGenerateScenarioWorkingSetCentersMemory(t *testing.T) {
	// skewed-hot-cold: hot VMs draw working sets in [0.6,0.9], cold in
	// [0.1,0.3]. Mean memory utilization must separate accordingly.
	sp := miniSpec(t, "skewed-hot-cold")
	tr, err := GenerateScenario(sp)
	if err != nil {
		t.Fatal(err)
	}
	var mem [2]float64
	var n [2]int
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.DurationSamples() < 12 {
			continue
		}
		ci := sp.ClassOfSubscription(vm.Subscription)
		mem[ci] += vm.Util[1].Mean() // resources.Memory
		n[ci]++
	}
	if n[0] == 0 || n[1] == 0 {
		t.Fatal("a class generated no VMs")
	}
	hot, cold := mem[0]/float64(n[0]), mem[1]/float64(n[1])
	if hot < cold+0.15 {
		t.Errorf("hot mean memory %.2f not clearly above cold %.2f", hot, cold)
	}
}

// TestGenerateScenarioQuantizedSparsity pins the sparse-churn contract:
// with util-quantum set, every generated sample is a quantum multiple,
// and the per-VM change-point density collapses — the property the
// event-driven simulator core's visit advantage is built on. An
// unquantized preset (capacity) stays dense by comparison.
func TestGenerateScenarioQuantizedSparsity(t *testing.T) {
	density := func(name string) float64 {
		tr, err := GenerateScenario(miniSpec(t, name))
		if err != nil {
			t.Fatal(err)
		}
		changes, samples := 0, 0
		for i := range tr.VMs {
			vm := &tr.VMs[i]
			changes += len(vm.ChangePoints())
			samples += vm.DurationSamples()
		}
		if samples == 0 {
			t.Fatalf("%s: no samples", name)
		}
		return float64(changes) / float64(samples)
	}

	sp := miniSpec(t, "sparse-churn")
	q := sp.UtilQuantum
	if q <= 0 {
		t.Fatal("sparse-churn preset must set util-quantum")
	}
	tr, err := GenerateScenario(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		for k := range vm.Util {
			for _, x := range vm.Util[k] {
				if snapped := math.Round(x/q) * q; x != snapped && !(x == 0 || x == 1) {
					t.Fatalf("vm %d sample %v is not a multiple of quantum %v", vm.ID, x, q)
				}
			}
		}
	}

	sparse, dense := density("sparse-churn"), density("capacity")
	if sparse > 0.5 {
		t.Errorf("sparse-churn change density %.3f, want well under 0.5", sparse)
	}
	if dense < 0.9 {
		t.Errorf("capacity change density %.3f, want ~1 (fixture drift?)", dense)
	}
	if sparse > dense/5 {
		t.Errorf("sparse-churn density %.3f not ≥5x sparser than capacity %.3f", sparse, dense)
	}
}
