package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/timeseries"
)

// GenerateScenario synthesizes a trace from a declarative workload
// spec — the scenario-backed sibling of Generate(GenConfig). Arrivals
// come from each class's renewal process modulated by seasonality and
// surges; lifetimes and working sets come from the class distributions;
// utilization series reuse the archetype synthesizer (with the class's
// working-set draw re-centering memory, and surge windows lifting the
// diurnal amplitude). The same spec always yields the same trace: class
// arrival streams derive from (Seed, class) and every VM derives its
// own rand stream from (Seed, VM ID). See docs/DESIGN.md §11.
func GenerateScenario(spec *scenario.Spec) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	archIdx, err := resolveArchetypes(spec)
	if err != nil {
		return nil, err
	}

	tr := &Trace{
		Horizon:      spec.Horizon(),
		StartWeekday: spec.StartWeekday,
		Configs:      DefaultConfigs(),
		Clusters:     spec.Clusters,
	}

	// Subscriptions are split across classes proportionally to their
	// rate fractions; each subscription carries its class's archetype
	// ("mixed" classes draw from the default weights), preserving the
	// Fig. 12 premise that same-subscription VMs behave alike.
	rng := rand.New(rand.NewSource(spec.Seed))
	tr.Subscriptions = make([]Subscription, spec.Subscriptions)
	for i := range tr.Subscriptions {
		arch := archIdx[spec.ClassOfSubscription(i)]
		if arch < 0 {
			arch = pickWeighted(rng, defaultArchetypeWeights)
		}
		tr.Subscriptions[i] = Subscription{
			ID:        i,
			Type:      pickSubscriptionType(rng),
			Archetype: arch,
		}
	}

	// Merge the per-class arrival streams in (sample, class) order; VM
	// IDs follow the merged order, so they are chronological like a
	// production snapshot's.
	type arrival struct{ t, class int }
	var evs []arrival
	for ci := range spec.Classes {
		for _, t := range spec.ClassArrivals(ci) {
			evs = append(evs, arrival{t, ci})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].class < evs[j].class
	})

	tr.VMs = make([]VM, len(evs))
	for id, e := range evs {
		vmRng := rand.New(rand.NewSource(spec.Seed ^ int64(uint64(id+1)*0x9e3779b97f4a7c15)))
		tr.VMs[id] = generateScenarioVM(spec, tr, id, e.class, e.t, vmRng)
	}
	return tr, nil
}

// resolveArchetypes maps each class's archetype name to its index in
// Archetypes (-1 for "mixed"/empty).
func resolveArchetypes(spec *scenario.Spec) ([]int, error) {
	out := make([]int, len(spec.Classes))
	for i := range spec.Classes {
		name := spec.Classes[i].Archetype
		if name == "" || name == "mixed" {
			out[i] = -1
			continue
		}
		out[i] = -1
		for j := range Archetypes {
			if Archetypes[j].Name == name {
				out[i] = j
				break
			}
		}
		if out[i] < 0 {
			var known []string
			for j := range Archetypes {
				known = append(known, Archetypes[j].Name)
			}
			return nil, fmt.Errorf("trace: class %q references unknown archetype %q (have %v)",
				spec.Classes[i].Name, name, known)
		}
	}
	return out, nil
}

// generateScenarioVM creates VM id of class ci arriving at sample start.
func generateScenarioVM(spec *scenario.Spec, tr *Trace, id, ci, start int, rng *rand.Rand) VM {
	c := &spec.Classes[ci]
	lo, hi := spec.SubscriptionRange(ci)
	sub := &tr.Subscriptions[lo+rng.Intn(hi-lo)]

	// Lifetime: class distribution in hours, clipped to the horizon.
	dur := int(c.Lifetime.Sample(rng) * timeseries.SamplesPerHour)
	if dur < 1 {
		dur = 1
	}
	end := start + dur
	if end > tr.Horizon {
		end = tr.Horizon
	}
	long := end-start > timeseries.SamplesPerDay

	cfgIdx := scenarioConfig(rng, c.Size, long, len(tr.Configs))
	offering := IaaS
	if rng.Float64() < 0.35 {
		offering = PaaS
	}

	home := rng.Intn(spec.Clusters)
	if len(c.Clusters) > 0 {
		home = c.Clusters[rng.Intn(len(c.Clusters))]
	}
	home = spec.HomeClusterAt(ci, start, home)

	vm := VM{
		ID:           id,
		Subscription: sub.ID,
		Config:       cfgIdx,
		Alloc:        tr.Configs[cfgIdx].Alloc,
		Start:        start,
		End:          end,
		Offering:     offering,
		Cluster:      home,
	}

	ws := c.WorkingSet.Sample(rng)
	if ws > 1 {
		ws = 1
	}
	var ampAt func(t int) float64
	if len(spec.Surges) > 0 {
		ampAt = func(t int) float64 { return spec.UtilMultAt(ci, t) }
	}
	synthesizeShaped(&vm, tr, &Archetypes[sub.Archetype], ws, ampAt, rng)
	if spec.UtilQuantum > 0 {
		quantizeUtil(&vm, spec.UtilQuantum)
	}
	return vm
}

// quantizeUtil snaps every utilization sample to the nearest multiple of
// q, clamped to [0,1]. The synthesizer's per-sample noise then collapses
// into runs of identical samples: demand changes only at genuine level
// shifts, which is both how coarse production telemetry looks and what
// gives the event-driven replay core change points to skip between.
func quantizeUtil(vm *VM, q float64) {
	for k := range vm.Util {
		s := vm.Util[k]
		for i, x := range s {
			v := math.Round(x/q) * q
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			s[i] = v
		}
	}
}

// scenarioConfig picks a VM configuration index under the class's size
// bias. "mixed" follows the GenConfig generator's long/short split;
// "small" concentrates on the bottom of the size ladder; "large"
// shifts both the size ladder and the ratio families toward the
// memory-heavy end (the hot-class shape of the migration studies).
func scenarioConfig(rng *rand.Rand, size string, long bool, numConfigs int) int {
	switch size {
	case "small":
		s := pickWeighted(rng, []float64{0.35, 0.30, 0.22, 0.09, 0.03, 0.01, 0})
		ratio := pickWeighted(rng, []float64{0.25, 0.60, 0.12, 0.03})
		return clampConfig(ratio*7+s, numConfigs)
	case "large":
		s := pickWeighted(rng, []float64{0.02, 0.06, 0.17, 0.25, 0.23, 0.17, 0.10})
		ratio := pickWeighted(rng, []float64{0.10, 0.45, 0.30, 0.15})
		return clampConfig(ratio*7+s, numConfigs)
	default:
		return sampleConfig(rng, long, numConfigs)
	}
}

func clampConfig(idx, numConfigs int) int {
	if idx >= numConfigs {
		return numConfigs - 1
	}
	return idx
}
