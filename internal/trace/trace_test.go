package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
)

// testTrace is generated once and shared by read-only tests.
var testTrace *Trace

func getTrace(t *testing.T) *Trace {
	t.Helper()
	if testTrace == nil {
		cfg := DefaultGenConfig()
		cfg.VMs = 400
		cfg.Subscriptions = 40
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		testTrace = tr
	}
	return testTrace
}

func TestGenConfigValidate(t *testing.T) {
	good := DefaultGenConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	// One case per field, each mutating a valid config, so every error
	// branch is pinned to the field that trips it.
	cases := []struct {
		name    string
		mutate  func(*GenConfig)
		errWant string
	}{
		{"days-zero", func(c *GenConfig) { c.Days = 0 }, "Days"},
		{"days-negative", func(c *GenConfig) { c.Days = -3 }, "Days"},
		{"vms-zero", func(c *GenConfig) { c.VMs = 0 }, "VMs"},
		{"vms-negative", func(c *GenConfig) { c.VMs = -1 }, "VMs"},
		{"subscriptions-zero", func(c *GenConfig) { c.Subscriptions = 0 }, "Subscriptions"},
		{"clusters-zero", func(c *GenConfig) { c.Clusters = 0 }, "Clusters"},
		{"long-frac-negative", func(c *GenConfig) { c.LongRunningFrac = -0.1 }, "LongRunningFrac"},
		{"long-frac-above-one", func(c *GenConfig) { c.LongRunningFrac = 1.5 }, "LongRunningFrac"},
		{"weekday-negative", func(c *GenConfig) { c.StartWeekday = -1 }, "StartWeekday"},
		{"weekday-above-saturday", func(c *GenConfig) { c.StartWeekday = 7 }, "StartWeekday"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultGenConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("config should be invalid")
			}
			if !strings.Contains(err.Error(), tc.errWant) {
				t.Errorf("error %q does not name field %s", err, tc.errWant)
			}
			if _, err := Generate(cfg); err == nil {
				t.Error("Generate must reject what Validate rejects")
			}
		})
	}
}

func TestGenerateValidates(t *testing.T) {
	tr := getTrace(t)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.VMs = 50
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.VMs) != len(b.VMs) {
		t.Fatal("different VM counts")
	}
	for i := range a.VMs {
		av, bv := &a.VMs[i], &b.VMs[i]
		if av.Start != bv.Start || av.End != bv.End || av.Alloc != bv.Alloc || av.Subscription != bv.Subscription {
			t.Fatalf("vm %d differs between runs", i)
		}
		for _, k := range resources.Kinds {
			for j := range av.Util[k] {
				if av.Util[k][j] != bv.Util[k][j] {
					t.Fatalf("vm %d %v sample %d differs", i, k, j)
				}
			}
		}
	}
}

func TestCalibrationLongRunningShare(t *testing.T) {
	tr := getTrace(t)
	long := tr.LongRunning()
	frac := float64(len(long)) / float64(len(tr.VMs))
	// Paper Fig. 2: ~28% of VMs last more than one day.
	if frac < 0.18 || frac > 0.40 {
		t.Errorf("long-running fraction = %.2f, want ~0.28", frac)
	}

	var longHours, totalHours float64
	for i := range tr.VMs {
		h := tr.VMs[i].ResourceHours(resources.CPU)
		totalHours += h
		if tr.VMs[i].LongRunning() {
			longHours += h
		}
	}
	// Paper: ~96% of core-hours come from >1-day VMs.
	if share := longHours / totalHours; share < 0.85 {
		t.Errorf("long-running core-hour share = %.2f, want > 0.85", share)
	}
}

func TestCalibrationMedianSize(t *testing.T) {
	tr := getTrace(t)
	var cores []float64
	for i := range tr.VMs {
		cores = append(cores, tr.VMs[i].Cores())
	}
	// Paper §2.1: median VM has 4 cores.
	n := 0
	for _, c := range cores {
		if c <= 4 {
			n++
		}
	}
	frac := float64(n) / float64(len(cores))
	if frac < 0.4 || frac > 0.9 {
		t.Errorf("fraction of VMs <= 4 cores = %.2f; median far from 4", frac)
	}
}

func TestCalibrationMemoryNarrowerThanCPU(t *testing.T) {
	tr := getTrace(t)
	var cpuR, memR float64
	var n int
	for _, vm := range tr.LongRunning() {
		cpuR += vm.Util[resources.CPU].UtilRange(5, 95)
		memR += vm.Util[resources.Memory].UtilRange(5, 95)
		n++
	}
	if n == 0 {
		t.Fatal("no long-running VMs")
	}
	// Paper §2.3: CPU fluctuates much more than memory.
	if cpuR/float64(n) <= memR/float64(n) {
		t.Errorf("mean CPU range %.3f <= mean memory range %.3f", cpuR/float64(n), memR/float64(n))
	}
}

func TestUtilBounds(t *testing.T) {
	tr := getTrace(t)
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		for _, k := range resources.Kinds {
			for _, u := range vm.Util[k] {
				if u < 0 || u > 1 {
					t.Fatalf("vm %d %v utilization %v outside [0,1]", vm.ID, k, u)
				}
			}
		}
	}
}

func TestVMAccessors(t *testing.T) {
	tr := getTrace(t)
	vm := &tr.VMs[0]
	if vm.Duration() != time.Duration(vm.DurationSamples())*5*time.Minute {
		t.Error("Duration inconsistent with DurationSamples")
	}
	if vm.AliveAt(vm.Start-1) || !vm.AliveAt(vm.Start) || vm.AliveAt(vm.End) {
		t.Error("AliveAt boundary conditions wrong")
	}
	if vm.UtilAt(resources.CPU, vm.Start-1) != 0 {
		t.Error("UtilAt outside lifetime must be 0")
	}
	d := vm.DemandAt(vm.Start)
	if !d.FitsIn(vm.Alloc) {
		t.Errorf("demand %v exceeds allocation %v", d, vm.Alloc)
	}
}

func TestResourceHours(t *testing.T) {
	vm := VM{Alloc: resources.NewVector(4, 16, 2, 128), Start: 0, End: timeseries.SamplesPerDay}
	if got := vm.ResourceHours(resources.CPU); got != 4*24 {
		t.Errorf("core-hours for a 4-core 1-day VM = %v, want 96", got)
	}
}

func TestWeekdayAt(t *testing.T) {
	tr := &Trace{Horizon: 3 * timeseries.SamplesPerDay, StartWeekday: time.Monday}
	if tr.WeekdayAt(0) != time.Monday {
		t.Error("day 0 weekday wrong")
	}
	if tr.WeekdayAt(timeseries.SamplesPerDay) != time.Tuesday {
		t.Error("day 1 weekday wrong")
	}
}

func TestInCluster(t *testing.T) {
	tr := getTrace(t)
	count := 0
	for c := 0; c < tr.Clusters; c++ {
		count += len(tr.InCluster(c))
	}
	if count != len(tr.VMs) {
		t.Errorf("cluster partition covers %d of %d VMs", count, len(tr.VMs))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.VMs = 5
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.VMs[0].End = tr.Horizon + 1
	if err := tr.Validate(); err == nil {
		t.Error("out-of-horizon VM must fail validation")
	}
	tr, _ = Generate(cfg)
	tr.VMs[0].Util[0][0] = 1.5
	if err := tr.Validate(); err == nil {
		t.Error("out-of-range utilization must fail validation")
	}
	tr, _ = Generate(cfg)
	tr.VMs[0].Config = 999
	if err := tr.Validate(); err == nil {
		t.Error("dangling config reference must fail validation")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.VMs = 20
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VMs) != len(tr.VMs) || got.Horizon != tr.Horizon {
		t.Fatal("roundtrip lost data")
	}
	if got.VMs[3].Util[1][0] != tr.VMs[3].Util[1][0] {
		t.Fatal("roundtrip corrupted series")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage input must fail")
	}
}

func TestWriteSummaryCSV(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.VMs = 10
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteSummaryCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 11 {
		t.Fatalf("CSV has %d lines, want 11 (header + 10 VMs)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "vm_id,subscription,config") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestDefaultConfigsShapes(t *testing.T) {
	cfgs := DefaultConfigs()
	if len(cfgs) != 28 {
		t.Fatalf("%d configs, want 28 (4 families x 7 sizes)", len(cfgs))
	}
	for _, c := range cfgs {
		if !c.Alloc.Positive() {
			t.Errorf("config %s has non-positive allocation", c.Name)
		}
		ratio := c.Alloc[resources.Memory] / c.Alloc[resources.CPU]
		if ratio < 2 || ratio > 16 {
			t.Errorf("config %s GB/core = %v outside [2,16]", c.Name, ratio)
		}
	}
}

func TestSubscriptionSimilarity(t *testing.T) {
	// VMs in the same subscription should have more similar CPU peaks than
	// random pairs (the Fig. 12 premise).
	tr := getTrace(t)
	bySub := map[int][]float64{}
	for _, vm := range tr.LongRunning() {
		bySub[vm.Subscription] = append(bySub[vm.Subscription], vm.Util[resources.CPU].Max())
	}
	var withinSpread, n float64
	var all []float64
	for _, peaks := range bySub {
		all = append(all, peaks...)
		if len(peaks) < 2 {
			continue
		}
		min, max := peaks[0], peaks[0]
		for _, p := range peaks {
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		withinSpread += max - min
		n++
	}
	if n == 0 {
		t.Skip("no subscriptions with >= 2 long VMs at this scale")
	}
	globalMin, globalMax := all[0], all[0]
	for _, p := range all {
		if p < globalMin {
			globalMin = p
		}
		if p > globalMax {
			globalMax = p
		}
	}
	if withinSpread/n >= (globalMax - globalMin) {
		t.Errorf("within-subscription peak spread %.3f not smaller than global %.3f",
			withinSpread/n, globalMax-globalMin)
	}
}

func TestArchetypeActivityBounds(t *testing.T) {
	for _, a := range Archetypes {
		for h := 0.0; h < 24; h += 0.5 {
			act := a.activity(h)
			if act < 0 || act > 1 {
				t.Fatalf("%s activity(%v) = %v outside [0,1]", a.Name, h, act)
			}
		}
		// The peak hour should be (close to) the max activity.
		if a.activity(a.PeakHour) < 0.99 {
			t.Errorf("%s activity at peak hour = %v", a.Name, a.activity(a.PeakHour))
		}
	}
}

func TestGaussBumpWraps(t *testing.T) {
	// 23:00 and 1:00 are equidistant from a midnight peak.
	if d := gaussBump(23, 0, 2) - gaussBump(1, 0, 2); d > 1e-12 || d < -1e-12 {
		t.Errorf("24h wrapping broken: %v", d)
	}
}

func TestOfferingSubscriptionTypeStrings(t *testing.T) {
	if IaaS.String() != "IaaS" || PaaS.String() != "PaaS" {
		t.Error("offering strings wrong")
	}
	if Production.String() != "production" || Test.String() != "test" {
		t.Error("subscription type strings wrong")
	}
	if !strings.Contains(SubscriptionType(42).String(), "42") {
		t.Error("unknown subscription type string wrong")
	}
}
