package trace

import "github.com/coach-oss/coach/internal/resources"

// ChangePoints returns the sample offsets i in [1, DurationSamples) at
// which any resource kind's utilization sample differs from the previous
// one — exactly the ticks where the VM's demand vector can change. The
// event-driven simulator core schedules one delta event per offset
// instead of visiting the VM every tick; between consecutive offsets the
// demand series is constant, so skipping those ticks is bit-identical to
// replaying them.
//
// Samples outside a series' recorded range read as zero (matching
// VM.UtilAt), so a series shorter than the lifetime contributes one final
// change point where it falls off to zero. Offsets fit int32 (a two-week
// trace has 4032 samples); the compact width matters when the replay
// core keeps a list per placed VM at fleet scale.
func (vm *VM) ChangePoints() []int32 {
	n := vm.DurationSamples()
	var out []int32
	for i := 1; i < n; i++ {
		for _, k := range resources.Kinds {
			s := vm.Util[k]
			var prev, cur float64
			if i-1 < len(s) {
				prev = s[i-1]
			}
			if i < len(s) {
				cur = s[i]
			}
			if cur != prev {
				out = append(out, int32(i))
				break
			}
		}
	}
	return out
}
