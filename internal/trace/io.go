package trace

import (
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"
)

// Save serializes the full trace (including utilization series) with
// encoding/gob. Use Load to read it back.
func (tr *Trace) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(tr)
}

// Load reads a trace written by Save and validates it.
func Load(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := gob.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// summaryHeader is the column layout of WriteSummaryCSV.
var summaryHeader = []string{
	"vm_id", "subscription", "config", "cluster", "offering",
	"cores", "memory_gb", "network_gbps", "ssd_gb",
	"start_sample", "end_sample",
	"cpu_max", "cpu_mean", "mem_max", "mem_mean",
}

// WriteSummaryCSV emits one row per VM with its allocation, lifetime and
// aggregate utilization — the shape of the paper's long-term telemetry
// store. It intentionally omits the raw series (use Save for those).
func (tr *Trace) WriteSummaryCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(summaryHeader); err != nil {
		return err
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', 6, 64) }
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		row := []string{
			strconv.Itoa(vm.ID),
			strconv.Itoa(vm.Subscription),
			tr.Configs[vm.Config].Name,
			strconv.Itoa(vm.Cluster),
			vm.Offering.String(),
			f(vm.Alloc[0]), f(vm.Alloc[1]), f(vm.Alloc[2]), f(vm.Alloc[3]),
			strconv.Itoa(vm.Start), strconv.Itoa(vm.End),
			f(vm.Util[0].Max()), f(vm.Util[0].Mean()),
			f(vm.Util[1].Max()), f(vm.Util[1].Mean()),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
