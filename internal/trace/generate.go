package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
)

// GenConfig parameterizes the synthetic trace generator. The defaults are
// calibrated so the generated population reproduces the distributional
// facts of §2 (see trace tests for the assertions): ~28% of VMs outlive one
// day while holding ~96% of core-hours, a median VM of 4 cores and <16GB,
// narrow memory ranges, wide CPU ranges, and consistent daily peaks.
type GenConfig struct {
	Seed int64
	// Days is the trace horizon in days (paper: 14).
	Days int
	// VMs is the total number of VM records to generate.
	VMs int
	// Subscriptions is the number of customer subscriptions.
	Subscriptions int
	// Clusters is the number of home clusters (paper: 10).
	Clusters int
	// LongRunningFrac is the fraction of VMs lasting more than one day
	// (paper Fig. 2: ~28%).
	LongRunningFrac float64
	// StartWeekday is the weekday of sample 0.
	StartWeekday time.Weekday
}

// DefaultGenConfig returns the calibrated default configuration: a 2-week,
// 10-cluster trace, scaled down in VM count to laptop size.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:            42,
		Days:            14,
		VMs:             2000,
		Subscriptions:   120,
		Clusters:        10,
		LongRunningFrac: 0.28,
		StartWeekday:    time.Monday,
	}
}

// Validate reports an error for out-of-range parameters.
func (c GenConfig) Validate() error {
	switch {
	case c.Days < 1:
		return fmt.Errorf("trace: GenConfig.Days %d < 1", c.Days)
	case c.VMs < 1:
		return fmt.Errorf("trace: GenConfig.VMs %d < 1", c.VMs)
	case c.Subscriptions < 1:
		return fmt.Errorf("trace: GenConfig.Subscriptions %d < 1", c.Subscriptions)
	case c.Clusters < 1:
		return fmt.Errorf("trace: GenConfig.Clusters %d < 1", c.Clusters)
	case c.LongRunningFrac < 0 || c.LongRunningFrac > 1:
		return fmt.Errorf("trace: GenConfig.LongRunningFrac %f outside [0,1]", c.LongRunningFrac)
	case c.StartWeekday < time.Sunday || c.StartWeekday > time.Saturday:
		// Previously ignored: an out-of-range weekday silently shifted
		// WeekdayAt into nonsense values that never matched Saturday or
		// Sunday, so weekend dampening disappeared from the whole trace.
		return fmt.Errorf("trace: GenConfig.StartWeekday %d outside [Sunday,Saturday]", c.StartWeekday)
	}
	return nil
}

// DefaultConfigs returns the sellable VM configurations: general-purpose
// (4 GB/core), compute-optimized (2 GB/core) and memory-optimized
// (8 and 16 GB/core) shapes across the size ladder, mirroring the
// explosion of VM configurations the paper describes (§2.2).
func DefaultConfigs() []VMConfig {
	var out []VMConfig
	cores := []float64{1, 2, 4, 8, 16, 32, 40}
	ratios := []struct {
		suffix string
		gbPer  float64
	}{
		{"c", 2},  // compute optimized
		{"d", 4},  // general purpose
		{"e", 8},  // memory optimized
		{"m", 16}, // large memory
	}
	for _, r := range ratios {
		for _, c := range cores {
			out = append(out, VMConfig{
				Name: fmt.Sprintf("%s%g", r.suffix, c),
				Alloc: resources.NewVector(
					c,         // cores
					c*r.gbPer, // GB memory
					0.25*c,    // Gbps network
					32*c,      // GB SSD
				),
			})
		}
	}
	return out
}

// Generate synthesizes a trace. The same config always yields the same
// trace: every VM derives its own rand stream from (Seed, VM ID).
func Generate(cfg GenConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{
		Horizon:      cfg.Days * timeseries.SamplesPerDay,
		StartWeekday: cfg.StartWeekday,
		Configs:      DefaultConfigs(),
		Clusters:     cfg.Clusters,
	}

	tr.Subscriptions = make([]Subscription, cfg.Subscriptions)
	for i := range tr.Subscriptions {
		tr.Subscriptions[i] = Subscription{
			ID:        i,
			Type:      pickSubscriptionType(rng),
			Archetype: pickWeighted(rng, defaultArchetypeWeights),
		}
	}

	tr.VMs = make([]VM, cfg.VMs)
	for i := range tr.VMs {
		vmRng := rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(i+1)*0x9e3779b97f4a7c15)))
		tr.VMs[i] = generateVM(cfg, tr, i, vmRng)
	}
	return tr, nil
}

// defaultArchetypeWeights bias subscription archetypes toward the
// diurnal classes; "unpredictable" stays a small minority (<10% of VMs
// end up with no clear peaks). Shared by the GenConfig generator and
// the scenario path's "mixed" classes.
var defaultArchetypeWeights = []float64{0.24, 0.14, 0.10, 0.12, 0.10, 0.12, 0.12, 0.06}

func pickSubscriptionType(rng *rand.Rand) SubscriptionType {
	r := rng.Float64()
	switch {
	case r < 0.62:
		return Production
	case r < 0.87:
		return Test
	default:
		return InternalProduction
	}
}

func pickWeighted(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		if r < w {
			return i
		}
		r -= w
	}
	return len(weights) - 1
}

// generateVM creates VM i with its full utilization series.
func generateVM(cfg GenConfig, tr *Trace, id int, rng *rand.Rand) VM {
	long := rng.Float64() < cfg.LongRunningFrac
	start, end := sampleLifetime(cfg, rng, long)

	sub := &tr.Subscriptions[rng.Intn(len(tr.Subscriptions))]
	cfgIdx := sampleConfig(rng, long, len(tr.Configs))

	offering := IaaS
	if rng.Float64() < 0.35 {
		offering = PaaS
	}

	vm := VM{
		ID:           id,
		Subscription: sub.ID,
		Config:       cfgIdx,
		Alloc:        tr.Configs[cfgIdx].Alloc,
		Start:        start,
		End:          end,
		Offering:     offering,
		Cluster:      rng.Intn(cfg.Clusters),
	}
	synthesizeUtil(&vm, tr, sub, rng)
	return vm
}

// sampleLifetime draws a VM lifetime in samples. Short VMs are minutes to
// hours; long VMs last 1 day to multiple weeks (clipped by the horizon).
// Half of the long VMs predate the trace and are live at sample 0,
// matching how a production snapshot observes long-running VMs.
func sampleLifetime(cfg GenConfig, rng *rand.Rand, long bool) (start, end int) {
	horizon := cfg.Days * timeseries.SamplesPerDay
	if long {
		// Duration: 1 day + Exp(mean 5 days).
		days := 1 + rng.ExpFloat64()*5
		dur := int(days * timeseries.SamplesPerDay)
		if dur > horizon {
			dur = horizon
		}
		if rng.Float64() < 0.5 {
			start = 0
		} else {
			start = rng.Intn(horizon - dur + 1)
		}
		end = start + dur
		return start, end
	}
	// Short VM: log-uniform between 5 minutes and ~20 hours.
	minS, maxS := 1.0, 20.0*timeseries.SamplesPerHour
	dur := int(math.Exp(rng.Float64()*math.Log(maxS/minS)) * minS)
	if dur < 1 {
		dur = 1
	}
	if dur >= horizon {
		dur = horizon - 1
	}
	start = rng.Intn(horizon - dur)
	end = start + dur
	return start, end
}

// sampleConfig picks a VM configuration index. Long-running VMs skew
// larger (§2.1: larger VMs hold most resource hours). Config layout is
// 4 ratio families x 7 sizes (see DefaultConfigs).
func sampleConfig(rng *rand.Rand, long bool, numConfigs int) int {
	// Size ladder weights over {1,2,4,8,16,32,40} cores.
	var sizeW []float64
	if long {
		sizeW = []float64{0.07, 0.15, 0.28, 0.22, 0.15, 0.09, 0.04}
	} else {
		sizeW = []float64{0.20, 0.27, 0.30, 0.13, 0.06, 0.03, 0.01}
	}
	size := pickWeighted(rng, sizeW)
	// Ratio family weights: compute, general, memory, large-memory. The
	// mix averages ~4.6 GB/core, aligned with the general-purpose server
	// shapes (misalignment is studied separately in the stranding
	// analysis, §2.2).
	ratio := pickWeighted(rng, []float64{0.18, 0.62, 0.15, 0.05})
	idx := ratio*7 + size
	if idx >= numConfigs {
		idx = numConfigs - 1
	}
	return idx
}

// synthesizeUtil fills the VM's four utilization series. The subscription
// archetype fixes the diurnal shape; per-VM jitter keeps same-subscription
// VMs similar but not identical (Fig. 12: grouping by subscription+config
// yields the narrowest peak ranges).
func synthesizeUtil(vm *VM, tr *Trace, sub *Subscription, rng *rand.Rand) {
	synthesizeShaped(vm, tr, &Archetypes[sub.Archetype], -1, nil, rng)
}

// synthesizeShaped is the shared series synthesizer behind both
// generators. baseMem >= 0 re-centers the memory base level (the
// scenario path's per-class working-set draw); ampAt, when non-nil,
// multiplies the diurnal activity amplitude at each trace sample (the
// scenario path's surge utilization lift).
func synthesizeShaped(vm *VM, tr *Trace, archp *Archetype, baseMemCenter float64, ampAt func(t int) float64, rng *rand.Rand) {
	arch := *archp
	if baseMemCenter < 0 {
		baseMemCenter = arch.BaseMem
	}

	// Per-VM jitter: small shifts in base, amplitude and phase. Memory
	// jitter is narrower than CPU, reflecting the tighter within-group
	// memory predictability of Fig. 12.
	baseCPU := clamp01(arch.BaseCPU + 0.04*rng.NormFloat64())
	peakCPU := math.Max(0, arch.PeakCPU*(1+0.15*rng.NormFloat64()))
	baseMem := clamp01(baseMemCenter + 0.02*rng.NormFloat64())
	peakMem := math.Max(0, arch.PeakMem*(1+0.10*rng.NormFloat64()))
	phase := 0.5 * rng.NormFloat64() // hours

	n := vm.DurationSamples()
	for _, k := range resources.Kinds {
		vm.Util[k] = make(timeseries.Series, n)
	}

	// Memory has day-scale persistence: a slowly drifting resident set.
	memDrift := 0.0

	for i := 0; i < n; i++ {
		t := vm.Start + i
		hour := float64(t%timeseries.SamplesPerDay) / timeseries.SamplesPerHour
		weekday := tr.WeekdayAt(t)
		amp := 1.0
		if weekday == time.Saturday || weekday == time.Sunday {
			amp = arch.WeekendFactor
		}
		if ampAt != nil {
			amp *= ampAt(t)
		}
		act := arch.activity(hour + phase)

		cpu := baseCPU + amp*peakCPU*act + arch.NoiseCPU*rng.NormFloat64()
		if rng.Float64() < arch.SpikeProb {
			cpu += arch.SpikeAmp * rng.Float64()
		}

		if i%timeseries.SamplesPerHour == 0 {
			memDrift = 0.9*memDrift + 0.005*rng.NormFloat64()
		}
		mem := baseMem + amp*peakMem*act + memDrift + arch.NoiseMem*rng.NormFloat64()
		// Occasional short memory spikes (page-cache fills, batch jobs):
		// they lift the window maximum above the window percentile, the
		// gap Coach's VA portion absorbs and multiplexes (Fig. 16).
		if rng.Float64() < arch.SpikeProb {
			mem += 0.7 * arch.SpikeAmp * rng.Float64()
		}

		// Network follows CPU activity with lower base; SSD space behaves
		// like memory (slow, narrow) per §2.3 ("network and storage
		// resemble memory/CPU" respectively).
		net := 0.6*cpu + 0.02*rng.NormFloat64()
		ssd := 0.5*mem + 0.1 + 0.01*rng.NormFloat64()

		vm.Util[resources.CPU][i] = clamp01(cpu)
		vm.Util[resources.Memory][i] = clamp01(mem)
		vm.Util[resources.Network][i] = clamp01(net)
		vm.Util[resources.SSD][i] = clamp01(ssd)
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
