// Package trace defines the VM trace schema used throughout the Coach
// reproduction and a statistical generator that synthesizes traces with the
// distributional properties the paper reports for Azure (§2).
//
// The paper collected two weeks of telemetry for over one million opaque
// VMs: allocation/deallocation times, resource allocation, host server, and
// per-resource maximum utilization at 5-minute intervals. We reproduce that
// schema exactly; the generator is the substitute for the proprietary
// production trace (see docs/DESIGN.md §2).
package trace

import (
	"fmt"
	"time"

	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
)

// Offering distinguishes how the VM was sold (§3.3 lists it as a
// prediction feature: utilization tends to be higher for IaaS VMs).
type Offering int

const (
	IaaS Offering = iota
	PaaS
)

func (o Offering) String() string {
	if o == IaaS {
		return "IaaS"
	}
	return "PaaS"
}

// SubscriptionType is the customer-subscription class (§3.3: e.g.,
// internal production vs. test).
type SubscriptionType int

const (
	Production SubscriptionType = iota
	Test
	InternalProduction
	NumSubscriptionTypes
)

func (t SubscriptionType) String() string {
	switch t {
	case Production:
		return "production"
	case Test:
		return "test"
	case InternalProduction:
		return "internal-production"
	default:
		return fmt.Sprintf("SubscriptionType(%d)", int(t))
	}
}

// VMConfig is a sellable VM shape (series + size), e.g. a 4-core/16GB
// general-purpose instance. Configurations are one of the similarity
// groupings studied in Fig. 12.
type VMConfig struct {
	Name  string
	Alloc resources.Vector
}

// Subscription is a customer subscription. VMs in the same subscription
// tend to run similar workloads (§2.3, Fig. 12), which the generator models
// by assigning each subscription a behavioural archetype.
type Subscription struct {
	ID        int
	Type      SubscriptionType
	Archetype int // index into the generator's archetype table
}

// VM is one virtual machine record.
type VM struct {
	ID           int
	Subscription int // Subscription.ID
	Config       int // index into Trace.Configs
	Alloc        resources.Vector
	// Start and End are 5-minute sample indexes relative to the trace
	// start; the VM is live for samples [Start, End).
	Start, End int
	Offering   Offering
	// Util holds one fractional utilization series per resource kind,
	// sample i covering trace sample Start+i.
	Util [resources.NumKinds]timeseries.Series
	// Cluster is the home cluster index (0-based) the VM was observed in.
	Cluster int
}

// DurationSamples returns the VM lifetime in 5-minute samples.
func (vm *VM) DurationSamples() int { return vm.End - vm.Start }

// Duration returns the VM lifetime as a time.Duration.
func (vm *VM) Duration() time.Duration {
	return time.Duration(vm.DurationSamples()) * timeseries.SampleMinutes * time.Minute
}

// Cores returns the CPU allocation in cores.
func (vm *VM) Cores() float64 { return vm.Alloc[resources.CPU] }

// MemoryGB returns the memory allocation in GB.
func (vm *VM) MemoryGB() float64 { return vm.Alloc[resources.Memory] }

// LongRunning reports whether the VM lasts more than one day, the paper's
// focus population (§2.1: such VMs consume ~96% of core-hours).
func (vm *VM) LongRunning() bool {
	return vm.DurationSamples() > timeseries.SamplesPerDay
}

// AliveAt reports whether the VM is live at trace sample t.
func (vm *VM) AliveAt(t int) bool { return t >= vm.Start && t < vm.End }

// UtilAt returns the fractional utilization of kind k at trace sample t,
// or 0 when the VM is not live at t.
func (vm *VM) UtilAt(k resources.Kind, t int) float64 {
	if !vm.AliveAt(t) {
		return 0
	}
	i := t - vm.Start
	if i >= len(vm.Util[k]) {
		return 0
	}
	return vm.Util[k][i]
}

// DemandAt returns the absolute resource demand vector at trace sample t
// (allocation x utilization fraction).
func (vm *VM) DemandAt(t int) resources.Vector {
	var u resources.Vector
	for _, k := range resources.Kinds {
		u[k] = vm.UtilAt(k, t)
	}
	return vm.Alloc.Mul(u)
}

// ResourceHours returns allocation x lifetime for kind k, in unit-hours
// (core-hours for CPU, GB-hours for memory, ...). This is the paper's
// "resource hours" weighting (§2.1).
func (vm *VM) ResourceHours(k resources.Kind) float64 {
	hours := float64(vm.DurationSamples()) * timeseries.SampleMinutes / 60
	return vm.Alloc[k] * hours
}

// Trace is a complete VM trace over a fixed horizon.
type Trace struct {
	// Horizon is the number of 5-minute samples covered.
	Horizon int
	// StartWeekday is the weekday of trace sample 0.
	StartWeekday  time.Weekday
	Configs       []VMConfig
	Subscriptions []Subscription
	VMs           []VM
	// Clusters is the number of distinct home clusters referenced by VMs.
	Clusters int
}

// Days returns the horizon length in days.
func (tr *Trace) Days() int { return tr.Horizon / timeseries.SamplesPerDay }

// WeekdayAt returns the weekday at trace sample t.
func (tr *Trace) WeekdayAt(t int) time.Weekday {
	day := t / timeseries.SamplesPerDay
	return time.Weekday((int(tr.StartWeekday) + day) % 7)
}

// LongRunning returns the subset of VMs lasting more than one day.
func (tr *Trace) LongRunning() []*VM {
	var out []*VM
	for i := range tr.VMs {
		if tr.VMs[i].LongRunning() {
			out = append(out, &tr.VMs[i])
		}
	}
	return out
}

// InCluster returns the VMs homed in cluster c.
func (tr *Trace) InCluster(c int) []*VM {
	var out []*VM
	for i := range tr.VMs {
		if tr.VMs[i].Cluster == c {
			out = append(out, &tr.VMs[i])
		}
	}
	return out
}

// Validate checks trace internal consistency: sample ranges, series
// lengths, and index references. It is used by tests and by readers of
// externally supplied traces.
func (tr *Trace) Validate() error {
	if tr.Horizon <= 0 {
		return fmt.Errorf("trace: non-positive horizon %d", tr.Horizon)
	}
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.Start < 0 || vm.End > tr.Horizon || vm.Start >= vm.End {
			return fmt.Errorf("trace: vm %d has invalid lifetime [%d,%d) in horizon %d", vm.ID, vm.Start, vm.End, tr.Horizon)
		}
		if vm.Config < 0 || vm.Config >= len(tr.Configs) {
			return fmt.Errorf("trace: vm %d references unknown config %d", vm.ID, vm.Config)
		}
		if vm.Subscription < 0 || vm.Subscription >= len(tr.Subscriptions) {
			return fmt.Errorf("trace: vm %d references unknown subscription %d", vm.ID, vm.Subscription)
		}
		if !vm.Alloc.Positive() {
			return fmt.Errorf("trace: vm %d has non-positive allocation %v", vm.ID, vm.Alloc)
		}
		for _, k := range resources.Kinds {
			if got, want := len(vm.Util[k]), vm.DurationSamples(); got != want {
				return fmt.Errorf("trace: vm %d %v series has %d samples, want %d", vm.ID, k, got, want)
			}
			for _, u := range vm.Util[k] {
				if u < 0 || u > 1 {
					return fmt.Errorf("trace: vm %d %v utilization %f outside [0,1]", vm.ID, k, u)
				}
			}
		}
	}
	return nil
}
