// Package scheduler implements Coach's cluster scheduler: a rule-based
// best-fit vector bin-packing allocator (in the style of the production
// allocator the paper simulates around, §4.1) extended with Coach's
// time-window dimensions (§3.3).
//
// Four oversubscription policies are provided, matching Fig. 20:
//
//	None      — allocate the full requested resources (no oversubscription).
//	Single    — one static oversubscription rate per VM per resource,
//	            the state-of-the-art baseline (Resource Central style).
//	Coach     — per-time-window oversubscription with P95 guarantees.
//	AggrCoach — Coach with a P50 prediction percentile.
package scheduler

import (
	"fmt"

	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
)

// PolicyKind selects the oversubscription policy.
type PolicyKind int

const (
	// PolicyNone allocates every VM fully guaranteed.
	PolicyNone PolicyKind = iota
	// PolicySingle predicts a single static oversubscription rate per VM
	// (the per-window structure is collapsed to its lifetime maximum).
	PolicySingle
	// PolicyCoach uses per-time-window predictions (the paper's system).
	PolicyCoach
	// PolicyAggrCoach is Coach with an aggressive P50 percentile.
	PolicyAggrCoach
)

func (p PolicyKind) String() string {
	switch p {
	case PolicyNone:
		return "None"
	case PolicySingle:
		return "Single"
	case PolicyCoach:
		return "Coach"
	case PolicyAggrCoach:
		return "AggrCoach"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// Policies lists the policy kinds in Fig. 20 order.
var Policies = []PolicyKind{PolicyNone, PolicySingle, PolicyCoach, PolicyAggrCoach}

// BuildCVM shapes a VM request into a CoachVM according to the policy.
// pred is the long-term prediction for the VM; ok=false means the
// prediction model had insufficient history, in which case every policy
// conservatively allocates the VM fully guaranteed (§3.3).
func BuildCVM(kind PolicyKind, id int, alloc resources.Vector, pred coachvm.Prediction, ok bool, w timeseries.Windows) (*coachvm.CVM, error) {
	if kind == PolicyNone || !ok {
		return coachvm.FullyGuaranteed(id, alloc, w), nil
	}
	if kind == PolicySingle {
		pred = collapseWindows(pred)
	}
	return coachvm.New(id, alloc, pred)
}

// collapseWindows flattens a per-window prediction into a static one: every
// window carries the lifetime maxima. The resulting CVM still has a
// guaranteed/oversubscribed split (static oversubscription) but exposes no
// temporal complementarity to multiplex.
func collapseWindows(p coachvm.Prediction) coachvm.Prediction {
	out := p
	for _, k := range resources.Kinds {
		var mMax, mPct float64
		for t := range p.Max[k] {
			if p.Max[k][t] > mMax {
				mMax = p.Max[k][t]
			}
			if p.Pct[k][t] > mPct {
				mPct = p.Pct[k][t]
			}
		}
		out.Max[k] = make([]float64, len(p.Max[k]))
		out.Pct[k] = make([]float64, len(p.Pct[k]))
		for t := range out.Max[k] {
			out.Max[k][t] = mMax
			out.Pct[k][t] = mPct
		}
	}
	return out
}
