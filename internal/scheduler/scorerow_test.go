package scheduler

import "testing"

// TestScoreRowIntoMatchesCandidates pins the dense row form of candidate
// scoring to the ranked form: every feasible server carries exactly the
// score CandidatesInto ranks it by, every infeasible or down server is -1,
// and picking the row's max with ties on the lowest index reproduces the
// top of the ranking.
func TestScoreRowIntoMatchesCandidates(t *testing.T) {
	s, servers := equalScoreFleet(t)
	s.SetDown(3, true)
	vm := guaranteedVM(1, 2, 8)

	if got := s.NumServers(); got != servers {
		t.Fatalf("NumServers = %d, want %d", got, servers)
	}
	row := make([]float64, servers)
	s.ScoreRowInto(vm, row)

	byServer := make(map[int]float64)
	for _, c := range s.Candidates(vm, -1) {
		byServer[c.Server] = c.Score
	}
	for i, sc := range row {
		want, feasible := byServer[i]
		if !feasible {
			if sc >= 0 {
				t.Errorf("server %d: row score %v for a server Candidates excludes", i, sc)
			}
		} else if sc != want {
			t.Errorf("server %d: row score %v, ranked score %v", i, sc, want)
		}
		if got := s.ScoreAt(vm, i); got != sc {
			t.Errorf("server %d: ScoreAt %v != row %v", i, got, sc)
		}
	}

	// Row argmax (strict >, ascending) == Place's choice.
	best, bestScore := -1, -1.0
	for i, sc := range row {
		if sc > bestScore {
			best, bestScore = i, sc
		}
	}
	srv, ok := s.Place(vm)
	if !ok || srv != best {
		t.Fatalf("Place chose %d/%v, row argmax %d", srv, ok, best)
	}

	// After the placement, only the chosen server's cell changes.
	after := make([]float64, servers)
	s.ScoreRowInto(vm, after)
	for i := range row {
		if i == srv {
			continue
		}
		if after[i] != row[i] {
			t.Errorf("server %d: score changed %v -> %v though only %d was placed on", i, row[i], after[i], srv)
		}
	}
	if after[srv] == row[srv] && after[srv] >= 0 {
		// The committed server must re-score (fuller pool) or become
		// infeasible; identical scores would mean the placement was free.
		t.Errorf("server %d: score unchanged at %v after placement", srv, after[srv])
	}
}
