package scheduler

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
)

var w6 = timeseries.Windows{PerDay: 6}

func smallFleet(serversPer int) *cluster.Fleet {
	return cluster.NewFleet([]cluster.Config{
		{Name: "T", Spec: cluster.ServerSpec{Name: "t", Generation: 1,
			Capacity: resources.NewVector(16, 64, 10, 1024)}, Servers: serversPer},
	})
}

func guaranteedVM(id int, cores, mem float64) *coachvm.CVM {
	return coachvm.FullyGuaranteed(id, resources.NewVector(cores, mem, 1, 32), w6)
}

func mustScheduler(t *testing.T, fleet *cluster.Fleet) *Scheduler {
	t.Helper()
	s, err := New(fleet, w6)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(smallFleet(1), timeseries.Windows{PerDay: 7}); err == nil {
		t.Error("invalid windows must fail")
	}
}

func TestPlaceAndRemove(t *testing.T) {
	s := mustScheduler(t, smallFleet(2))
	vm := guaranteedVM(1, 4, 16)
	idx, ok := s.Place(vm)
	if !ok {
		t.Fatal("placement failed on empty fleet")
	}
	if s.ServerOf(1) != idx {
		t.Error("ServerOf inconsistent")
	}
	if s.Placed() != 1 || s.UsedServers() != 1 {
		t.Error("bookkeeping wrong after place")
	}
	got, from := s.Remove(1)
	if got != vm || from != idx {
		t.Error("Remove returned wrong VM/server")
	}
	if s.Placed() != 0 || s.ServerOf(1) != -1 {
		t.Error("bookkeeping wrong after remove")
	}
}

func TestPlaceRejectsDuplicateID(t *testing.T) {
	s := mustScheduler(t, smallFleet(2))
	if _, ok := s.Place(guaranteedVM(1, 1, 4)); !ok {
		t.Fatal("first placement failed")
	}
	if _, ok := s.Place(guaranteedVM(1, 1, 4)); ok {
		t.Error("duplicate ID placement must fail")
	}
}

func TestPlaceRejectsWhenFull(t *testing.T) {
	s := mustScheduler(t, smallFleet(1))
	// 16-core server: four 4-core VMs fit, the fifth cannot.
	for i := 0; i < 4; i++ {
		if _, ok := s.Place(guaranteedVM(i, 4, 16)); !ok {
			t.Fatalf("vm %d should fit", i)
		}
	}
	if _, ok := s.Place(guaranteedVM(4, 4, 16)); ok {
		t.Error("fifth VM must be rejected")
	}
}

func TestBestFitConsolidates(t *testing.T) {
	// Two servers; small VMs should pack onto one before using the other.
	s := mustScheduler(t, smallFleet(2))
	a, _ := s.Place(guaranteedVM(1, 2, 8))
	b, _ := s.Place(guaranteedVM(2, 2, 8))
	if a != b {
		t.Errorf("best-fit spread small VMs across servers: %d vs %d", a, b)
	}
	if s.UsedServers() != 1 {
		t.Errorf("UsedServers = %d, want 1", s.UsedServers())
	}
}

func TestMigrateMovesVM(t *testing.T) {
	s := mustScheduler(t, smallFleet(2))
	from, _ := s.Place(guaranteedVM(1, 4, 16))
	to, err := s.Migrate(1)
	if err != nil {
		t.Fatalf("migration failed with a free server available: %v", err)
	}
	if to == from {
		t.Error("migration must change servers")
	}
	if s.ServerOf(1) != to {
		t.Error("placement map not updated")
	}
}

func TestMigrateRestoresOnFailure(t *testing.T) {
	s := mustScheduler(t, smallFleet(1))
	idx, _ := s.Place(guaranteedVM(1, 4, 16))
	if _, err := s.Migrate(1); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("single-server migration = %v, want ErrNoCapacity", err)
	}
	if s.ServerOf(1) != idx {
		t.Error("VM must be restored to its original server")
	}
	if s.Servers()[idx].Pool.Len() != 1 {
		t.Error("pool must still hold the VM")
	}
}

func TestMigrateUnknownVM(t *testing.T) {
	s := mustScheduler(t, smallFleet(1))
	if _, err := s.Migrate(99); !errors.Is(err, ErrUnknownVM) {
		t.Errorf("migrating unknown VM = %v, want ErrUnknownVM", err)
	}
}

func TestMigrateNoCapacity(t *testing.T) {
	// Two servers, the second too full to take the first's VM: the
	// failure must be typed ErrNoCapacity, distinguishable from an
	// unknown VM, and leave the placement untouched.
	s := mustScheduler(t, smallFleet(2))
	idx, _ := s.Place(guaranteedVM(1, 10, 40))
	blocker, _ := s.Place(guaranteedVM(2, 10, 40))
	if idx == blocker {
		t.Fatal("fixture VMs must land on distinct servers")
	}
	if _, err := s.Migrate(1); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("migration into a full fleet = %v, want ErrNoCapacity", err)
	}
	if errors.Is(fmt.Errorf("%w: x", ErrNoCapacity), ErrUnknownVM) {
		t.Fatal("error kinds must be distinguishable")
	}
	if s.ServerOf(1) != idx {
		t.Error("failed migration must not move the VM")
	}
}

func TestMigrateToExplicitTarget(t *testing.T) {
	s := mustScheduler(t, smallFleet(3))
	from, _ := s.Place(guaranteedVM(1, 4, 16))
	target := (from + 2) % 3
	if err := s.MigrateTo(1, target); err != nil {
		t.Fatal(err)
	}
	if s.ServerOf(1) != target {
		t.Errorf("VM on server %d, want %d", s.ServerOf(1), target)
	}
	if err := s.MigrateTo(1, target); err == nil {
		t.Error("migrating onto the current server must fail")
	}
	if err := s.MigrateTo(1, 7); err == nil {
		t.Error("out-of-range target must fail")
	}
	if err := s.MigrateTo(99, 0); !errors.Is(err, ErrUnknownVM) {
		t.Errorf("unknown VM = %v, want ErrUnknownVM", err)
	}
	// Fill the target so the move cannot fit: typed failure, placement
	// restored.
	s.Place(guaranteedVM(2, 14, 56))
	blocked := s.ServerOf(2)
	if blocked == target {
		t.Fatal("fixture: blocker landed on the VM's own server")
	}
	if err := s.MigrateTo(1, blocked); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("move onto full server = %v, want ErrNoCapacity", err)
	}
	if s.ServerOf(1) != target {
		t.Error("failed MigrateTo must restore the VM")
	}
}

func TestCandidatesRankingMatchesPlace(t *testing.T) {
	fleet := cluster.NewFleet([]cluster.Config{
		{Name: "T", Spec: cluster.ServerSpec{Name: "t", Generation: 1,
			Capacity: resources.NewVector(16, 64, 10, 1024)}, Servers: 4},
	})
	s := mustScheduler(t, fleet)
	// Stagger occupancy so scores differ.
	s.PlaceAt(guaranteedVM(10, 8, 32), 2)
	s.PlaceAt(guaranteedVM(11, 4, 16), 1)
	probe := guaranteedVM(1, 2, 8)
	cands := s.Candidates(probe, -1)
	if len(cands) != 4 {
		t.Fatalf("got %d candidates, want 4", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatal("candidates not sorted by descending score")
		}
	}
	want, ok := s.Place(probe)
	if !ok || want != cands[0].Server {
		t.Errorf("Place chose %d, Candidates ranked %d first", want, cands[0].Server)
	}
	// Excluding the best candidate removes exactly it.
	rest := s.Candidates(guaranteedVM(2, 2, 8), cands[0].Server)
	for _, c := range rest {
		if c.Server == cands[0].Server {
			t.Error("excluded server still ranked")
		}
	}
	// HasFeasible agrees with the ranking without building it.
	if !s.HasFeasible(guaranteedVM(3, 2, 8), -1) {
		t.Error("HasFeasible false with feasible servers")
	}
	if s.HasFeasible(guaranteedVM(4, 99, 8), -1) {
		t.Error("HasFeasible true for an unplaceable VM")
	}
}

func TestPlaceAtAndCVM(t *testing.T) {
	s := mustScheduler(t, smallFleet(2))
	vm := guaranteedVM(1, 4, 16)
	if err := s.PlaceAt(vm, 1); err != nil {
		t.Fatal(err)
	}
	if s.ServerOf(1) != 1 {
		t.Error("PlaceAt ignored the explicit server")
	}
	if got := s.CVM(1); got != vm {
		t.Error("CVM accessor must return the placed CoachVM")
	}
	if s.CVM(42) != nil {
		t.Error("CVM of an unplaced id must be nil")
	}
	if err := s.PlaceAt(vm, 0); err == nil {
		t.Error("duplicate PlaceAt must fail")
	}
	if err := s.PlaceAt(guaranteedVM(2, 99, 16), 0); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("infeasible PlaceAt = %v, want ErrNoCapacity", err)
	}
	if err := s.PlaceAt(guaranteedVM(3, 1, 1), 9); err == nil {
		t.Error("out-of-range PlaceAt must fail")
	}
}

func TestPlaceDeterministic(t *testing.T) {
	mk := func() []int {
		s := mustScheduler(t, smallFleet(4))
		rng := rand.New(rand.NewSource(11))
		var idxs []int
		for i := 0; i < 30; i++ {
			vm := guaranteedVM(i, float64(1+rng.Intn(4)), float64(4*(1+rng.Intn(4))))
			if idx, ok := s.Place(vm); ok {
				idxs = append(idxs, idx)
			}
		}
		return idxs
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("nondeterministic placement count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTotalBacked(t *testing.T) {
	s := mustScheduler(t, smallFleet(2))
	s.Place(guaranteedVM(1, 4, 16))
	s.Place(guaranteedVM(2, 2, 8))
	got := s.TotalBacked()
	want := resources.NewVector(6, 24, 2, 64)
	if got != want {
		t.Errorf("TotalBacked = %v, want %v", got, want)
	}
}

func TestBuildCVMNonePolicy(t *testing.T) {
	alloc := resources.NewVector(4, 16, 2, 128)
	vm, err := BuildCVM(PolicyNone, 1, alloc, coachvm.Prediction{}, true, w6)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Guaranteed != alloc {
		t.Error("None policy must fully guarantee")
	}
}

func TestBuildCVMNoHistoryFallsBack(t *testing.T) {
	alloc := resources.NewVector(4, 16, 2, 128)
	for _, p := range []PolicyKind{PolicySingle, PolicyCoach, PolicyAggrCoach} {
		vm, err := BuildCVM(p, 1, alloc, coachvm.Prediction{}, false, w6)
		if err != nil {
			t.Fatal(err)
		}
		if vm.Guaranteed != alloc {
			t.Errorf("%v without history must fully guarantee", p)
		}
	}
}

func mkPrediction(maxCPU []float64) coachvm.Prediction {
	p := coachvm.Prediction{Windows: w6, Percentile: 95}
	for _, k := range resources.Kinds {
		p.Max[k] = make([]float64, w6.PerDay)
		p.Pct[k] = make([]float64, w6.PerDay)
		for i := range p.Max[k] {
			p.Max[k][i] = 0.5
			p.Pct[k][i] = 0.4
		}
	}
	copy(p.Max[resources.CPU], maxCPU)
	return p
}

func TestBuildCVMSingleCollapsesWindows(t *testing.T) {
	alloc := resources.NewVector(8, 32, 4, 256)
	pred := mkPrediction([]float64{0.2, 0.8, 0.4, 0.2, 0.2, 0.2})
	single, err := BuildCVM(PolicySingle, 1, alloc, pred, true, w6)
	if err != nil {
		t.Fatal(err)
	}
	// Single: every window's demand equals the lifetime max.
	first := single.SchedDemand(resources.CPU, 0)
	for tt := 1; tt < w6.PerDay; tt++ {
		if single.SchedDemand(resources.CPU, tt) != first {
			t.Fatal("Single policy must have flat per-window demand")
		}
	}
	coach, err := BuildCVM(PolicyCoach, 2, alloc, pred, true, w6)
	if err != nil {
		t.Fatal(err)
	}
	// Coach: window 1 demand must exceed window 0 (0.8 vs 0.2).
	if coach.SchedDemand(resources.CPU, 1) <= coach.SchedDemand(resources.CPU, 0) {
		t.Error("Coach policy must preserve per-window structure")
	}
	// And Coach's off-peak demand is below Single's flat demand.
	if coach.SchedDemand(resources.CPU, 0) >= first {
		t.Error("Coach off-peak demand must undercut Single")
	}
}

func TestCoachPacksComplementaryVMs(t *testing.T) {
	// Two VMs peaking in different windows fit together under Coach but
	// not under Single — the core of the paper's claim.
	cap := resources.NewVector(10, 64, 10, 1024)
	fleet := cluster.NewFleet([]cluster.Config{
		{Name: "T", Spec: cluster.ServerSpec{Name: "t", Capacity: cap}, Servers: 1},
	})
	alloc := resources.NewVector(8, 16, 1, 64)
	dayPeak := mkPrediction([]float64{0.2, 0.2, 0.2, 1, 1, 0.2})
	nightPeak := mkPrediction([]float64{1, 1, 0.2, 0.2, 0.2, 0.2})

	sCoach := mustScheduler(t, fleet)
	a, _ := BuildCVM(PolicyCoach, 1, alloc, dayPeak, true, w6)
	b, _ := BuildCVM(PolicyCoach, 2, alloc, nightPeak, true, w6)
	if _, ok := sCoach.Place(a); !ok {
		t.Fatal("first VM must place")
	}
	if _, ok := sCoach.Place(b); !ok {
		t.Fatal("Coach must colocate complementary VMs (peak demands 8+1.6 <= 10)")
	}

	fleet2 := cluster.NewFleet([]cluster.Config{
		{Name: "T", Spec: cluster.ServerSpec{Name: "t", Capacity: cap}, Servers: 1},
	})
	sSingle := mustScheduler(t, fleet2)
	a2, _ := BuildCVM(PolicySingle, 1, alloc, dayPeak, true, w6)
	b2, _ := BuildCVM(PolicySingle, 2, alloc, nightPeak, true, w6)
	if _, ok := sSingle.Place(a2); !ok {
		t.Fatal("first VM must place under Single")
	}
	if _, ok := sSingle.Place(b2); ok {
		t.Error("Single must reject the second VM (flat demands 8+8 > 10)")
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[PolicyKind]string{
		PolicyNone: "None", PolicySingle: "Single",
		PolicyCoach: "Coach", PolicyAggrCoach: "AggrCoach",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if len(Policies) != 4 {
		t.Error("Policies must list 4 kinds")
	}
}

// Property: whatever is placed never exceeds any server's capacity in any
// window.
func TestCapacityInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		s := mustScheduler(t, smallFleet(3))
		for i := 0; i < 50; i++ {
			pred := mkPrediction([]float64{
				rng.Float64(), rng.Float64(), rng.Float64(),
				rng.Float64(), rng.Float64(), rng.Float64(),
			})
			alloc := resources.NewVector(float64(1+rng.Intn(8)), float64(4+4*rng.Intn(8)), 1, 64)
			vm, err := BuildCVM(PolicyCoach, i, alloc, pred, true, w6)
			if err != nil {
				t.Fatal(err)
			}
			s.Place(vm)
		}
		for _, st := range s.Servers() {
			cap := st.Server.Capacity()
			for _, k := range resources.Kinds {
				for tt := 0; tt < w6.PerDay; tt++ {
					if st.Pool.DemandAt(k, tt) > cap[k]+1e-6 {
						t.Fatalf("window demand %v exceeds capacity %v", st.Pool.DemandAt(k, tt), cap[k])
					}
				}
			}
		}
	}
}

// TestDownTracking: a down server is invisible to placement until
// recovery, VMsOn reports its residents in ascending eviction order,
// and SetDown is bounds-safe.
func TestDownTracking(t *testing.T) {
	s := mustScheduler(t, smallFleet(2))
	// Fill server 0 first so both servers host VMs deterministically.
	if err := s.PlaceAt(guaranteedVM(3, 4, 16), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceAt(guaranteedVM(1, 4, 16), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceAt(guaranteedVM(2, 4, 16), 1); err != nil {
		t.Fatal(err)
	}
	if got := s.VMsOn(0); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("VMsOn(0) = %v, want ascending [1 3]", got)
	}

	s.SetDown(0, true)
	if !s.Down(0) || s.Down(1) {
		t.Fatal("down flags wrong after SetDown(0, true)")
	}
	if idx, ok := s.Place(guaranteedVM(4, 4, 16)); !ok || idx != 1 {
		t.Fatalf("Place during outage = (%d, %v), want server 1", idx, ok)
	}
	if err := s.PlaceAt(guaranteedVM(5, 1, 4), 0); err == nil {
		t.Fatal("PlaceAt onto a down server succeeded")
	}
	if s.HasFeasible(guaranteedVM(6, 16, 64), 1) {
		t.Fatal("HasFeasible found capacity on the down server")
	}

	// Evict + recover: the server accepts placements again.
	for _, id := range s.VMsOn(0) {
		s.Remove(id)
	}
	s.SetDown(0, false)
	if s.Down(0) {
		t.Fatal("still down after recovery")
	}
	if err := s.PlaceAt(guaranteedVM(7, 4, 16), 0); err != nil {
		t.Fatalf("PlaceAt after recovery: %v", err)
	}

	// Out-of-range servers are ignored, not panics.
	s.SetDown(-1, true)
	s.SetDown(99, true)
	if s.Down(-1) || s.Down(99) {
		t.Fatal("out-of-range Down reports true")
	}
}
