package scheduler

import (
	"sort"
	"testing"
)

// equalScoreFleet places VMs so several servers end up with identical
// packed fractions, exercising the stable-ordering guarantee.
func equalScoreFleet(t *testing.T) (*Scheduler, int) {
	t.Helper()
	const servers = 12
	s := mustScheduler(t, smallFleet(servers))
	// Identical load on pairs of servers: equal packScores within a pair.
	for i := 0; i < servers; i++ {
		if _, ok := s.Place(guaranteedVM(100+i, float64(1+(i/2)), 4)); !ok {
			t.Fatalf("fixture VM %d did not place", i)
		}
	}
	return s, servers
}

// TestCandidatesIntoMatchesCandidates pins CandidatesInto (insertion
// sort, scratch-backed) to the sort.SliceStable reference ranking,
// including ties: equal scores must keep ascending server order.
func TestCandidatesIntoMatchesCandidates(t *testing.T) {
	s, _ := equalScoreFleet(t)
	for _, exclude := range []int{-1, 0, 5} {
		vm := guaranteedVM(1, 2, 8)
		// Reference: the pre-refactor ranking, rebuilt inline.
		var want []Candidate
		for i, st := range s.servers {
			if i == exclude || s.Down(i) || !st.Pool.Fits(vm) {
				continue
			}
			want = append(want, Candidate{Server: i, Score: s.packScore(st, vm)})
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].Score > want[j].Score })

		got := s.Candidates(vm, exclude)
		if len(got) != len(want) {
			t.Fatalf("exclude %d: %d candidates, want %d", exclude, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("exclude %d: candidate %d = %+v, want %+v", exclude, i, got[i], want[i])
			}
		}
		// Scratch reuse returns the same ranking in the same backing array.
		scratch := make([]Candidate, 0, len(s.servers))
		again := s.CandidatesInto(vm, exclude, scratch)
		if &again[0] != &scratch[:1][0] {
			t.Fatalf("exclude %d: CandidatesInto reallocated despite sufficient scratch", exclude)
		}
		for i := range want {
			if again[i] != want[i] {
				t.Fatalf("exclude %d: scratch candidate %d = %+v, want %+v", exclude, i, again[i], want[i])
			}
		}
	}
}

// TestCandidatesIntoZeroAllocs is the satellite's allocs/op assertion:
// with a warm scratch the hot enumeration must not allocate at all.
func TestCandidatesIntoZeroAllocs(t *testing.T) {
	s, _ := equalScoreFleet(t)
	vm := guaranteedVM(2, 2, 8)
	scratch := make([]Candidate, 0, len(s.servers))
	if allocs := testing.AllocsPerRun(100, func() {
		scratch = s.CandidatesInto(vm, -1, scratch)[:0]
	}); allocs != 0 {
		t.Errorf("CandidatesInto allocates %.1f objects per call, want 0", allocs)
	}
}

// BenchmarkCandidates quantifies the scratch variant against the
// allocating one on the same fleet.
func BenchmarkCandidates(b *testing.B) {
	s, err := New(smallFleet(64), w6)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		s.Place(guaranteedVM(100+i, float64(1+i%4), 4))
	}
	vm := guaranteedVM(1, 2, 8)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Candidates(vm, -1)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		scratch := make([]Candidate, 0, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scratch = s.CandidatesInto(vm, -1, scratch)[:0]
		}
	})
}
