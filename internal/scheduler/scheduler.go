package scheduler

import (
	"errors"
	"fmt"
	"sort"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
)

// Typed migration failures: callers route on the distinction — an
// unknown VM is a caller bug or a lost race (drop), while missing
// capacity is an operational condition (re-route to another shard, retry
// later, or leave the VM in place).
var (
	// ErrUnknownVM reports a migration of a VM the scheduler never
	// placed (or already removed).
	ErrUnknownVM = errors.New("scheduler: unknown vm")
	// ErrNoCapacity reports that no feasible server could take the VM;
	// its placement is unchanged.
	ErrNoCapacity = errors.New("scheduler: no server has capacity")
)

// ServerState pairs a fleet server with its oversubscription bookkeeping.
type ServerState struct {
	Server *cluster.Server
	Pool   *coachvm.Pool
}

// Used reports whether the server hosts at least one VM.
func (s *ServerState) Used() bool { return s.Pool.Len() > 0 }

// Scheduler places CoachVMs onto a fleet using best-fit vector bin-packing
// over the (windows+1)-dimensional demand vectors of §3.3. It is
// deterministic: ties break on the lowest server ID.
type Scheduler struct {
	windows timeseries.Windows
	servers []*ServerState
	// placement maps VM ID -> index into servers.
	placement map[int]int
	// down marks failed servers: every placement path skips them until
	// SetDown lifts the mark. Evicting a crashed server's VMs is the
	// caller's job (the fault-handling layers in sim and serve); the
	// scheduler only refuses new placements there. Nil until the first
	// SetDown, so the fault-free fast paths stay allocation-free.
	down []bool
	// candScratch backs Migrate's candidate ranking across calls. A
	// Scheduler is single-goroutine (shards wrap their own), so one
	// scratch per scheduler suffices.
	candScratch []Candidate
}

// New builds a scheduler over the fleet with empty servers.
func New(fleet *cluster.Fleet, w timeseries.Windows) (*Scheduler, error) {
	if err := fleet.Validate(); err != nil {
		return nil, err
	}
	servers := make([]*cluster.Server, 0, len(fleet.Servers))
	for i := range fleet.Servers {
		servers = append(servers, &fleet.Servers[i])
	}
	return NewOverServers(servers, w)
}

// NewOverServers builds a scheduler restricted to an explicit server subset
// — a per-cluster view of the fleet. The sim package uses one such view per
// cluster shard so shards can be replayed concurrently without sharing
// state. Server indices returned by Place/ServerOf are positions in the
// given slice, not fleet-wide IDs.
func NewOverServers(servers []*cluster.Server, w timeseries.Windows) (*Scheduler, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if len(servers) == 0 {
		return nil, fmt.Errorf("scheduler: no servers")
	}
	s := &Scheduler{windows: w, placement: make(map[int]int)}
	for _, srv := range servers {
		if !srv.Capacity().Positive() {
			return nil, fmt.Errorf("scheduler: server %d has non-positive capacity %v", srv.ID, srv.Capacity())
		}
		s.servers = append(s.servers, &ServerState{
			Server: srv,
			Pool:   coachvm.NewPool(srv.Capacity(), w),
		})
	}
	return s, nil
}

// Windows returns the time-window configuration.
func (s *Scheduler) Windows() timeseries.Windows { return s.windows }

// Servers returns the server states (shared slice: do not mutate).
func (s *Scheduler) Servers() []*ServerState { return s.servers }

// Place assigns vm to the best feasible server and returns its index.
// ok is false when no server can host the VM.
//
// Placement preference follows the packing heuristics of production
// rule-based allocators: among feasible servers, prefer the one whose
// post-placement packed fraction is highest (best fit), consolidating VMs
// onto fewer servers and leaving empty servers for large requests.
func (s *Scheduler) Place(vm *coachvm.CVM) (serverIdx int, ok bool) {
	return s.PlaceExcluding(vm, -1)
}

// PlaceExcluding is Place but never considers server exclude (used by
// migration, which must move a VM off its current host).
func (s *Scheduler) PlaceExcluding(vm *coachvm.CVM, exclude int) (serverIdx int, ok bool) {
	if _, dup := s.placement[vm.ID]; dup {
		return -1, false
	}
	best := -1
	bestScore := -1.0
	for i, st := range s.servers {
		if i == exclude || s.Down(i) || !st.Pool.Fits(vm) {
			continue
		}
		if score := s.packScore(st, vm); score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return -1, false
	}
	s.addAt(vm, best)
	return best, true
}

// PlaceAt assigns vm to an explicit server, bypassing the best-fit
// preference but not the feasibility check. The migration engine uses it
// to commit a destination chosen from a Candidates ranking (possibly in
// another shard's scheduler); serve uses it for pressure-aware admission.
func (s *Scheduler) PlaceAt(vm *coachvm.CVM, server int) error {
	if server < 0 || server >= len(s.servers) {
		return fmt.Errorf("scheduler: server %d outside [0,%d)", server, len(s.servers))
	}
	if _, dup := s.placement[vm.ID]; dup {
		return fmt.Errorf("scheduler: vm %d already placed", vm.ID)
	}
	if s.Down(server) {
		return fmt.Errorf("%w: vm %d on down server %d", ErrNoCapacity, vm.ID, server)
	}
	if !s.servers[server].Pool.Fits(vm) {
		return fmt.Errorf("%w: vm %d on server %d", ErrNoCapacity, vm.ID, server)
	}
	s.addAt(vm, server)
	return nil
}

// addAt commits a feasibility-checked placement.
func (s *Scheduler) addAt(vm *coachvm.CVM, server int) {
	if err := s.servers[server].Pool.Add(vm); err != nil {
		// Fits was checked by the caller; failure here is a bookkeeping bug.
		panic(fmt.Sprintf("scheduler: place on feasible server failed: %v", err))
	}
	s.placement[vm.ID] = server
}

// Candidate is one feasible placement target with its best-fit score.
type Candidate struct {
	Server int
	// Score is the post-placement packed fraction (higher = fuller =
	// preferred by the best-fit policy).
	Score float64
}

// HasFeasible reports whether any server other than exclude (-1 = none)
// could take vm — the capacity question alone, without building the
// Candidates ranking.
func (s *Scheduler) HasFeasible(vm *coachvm.CVM, exclude int) bool {
	for i, st := range s.servers {
		if i != exclude && !s.Down(i) && st.Pool.Fits(vm) {
			return true
		}
	}
	return false
}

// Candidates ranks every feasible server for vm in placement-preference
// order: best-fit score descending, ties broken on the lowest index.
// exclude (-1 = none) is never considered — migration must move a VM off
// its current host. The ranking is the single placement path shared by
// Place, the migration engine (which filters it by data-plane pressure)
// and serve's pressure-aware admission, so every layer agrees on what
// "the scheduler's placement policy" means.
func (s *Scheduler) Candidates(vm *coachvm.CVM, exclude int) []Candidate {
	return s.CandidatesInto(vm, exclude, nil)
}

// CandidatesInto is Candidates appending into a caller-provided scratch
// slice (overwritten from index 0, reallocated only when too small) and
// returning the slice used. The hot decision paths — admission, migration
// relanding and recovery call the ranking per VM per tick — reuse one
// scratch across calls and stay allocation-free in steady state; the
// ranking itself is identical to Candidates'.
func (s *Scheduler) CandidatesInto(vm *coachvm.CVM, exclude int, scratch []Candidate) []Candidate {
	out := scratch[:0]
	for i, st := range s.servers {
		if i == exclude || s.Down(i) || !st.Pool.Fits(vm) {
			continue
		}
		out = append(out, Candidate{Server: i, Score: s.packScore(st, vm)})
	}
	// Insertion sort, descending by Score: moving an element only past
	// strictly lower scores keeps equal scores in server-index order —
	// exactly sort.SliceStable's ordering — without its allocations.
	for i := 1; i < len(out); i++ {
		c := out[i]
		j := i
		for j > 0 && out[j-1].Score < c.Score {
			out[j] = out[j-1]
			j--
		}
		out[j] = c
	}
	return out
}

// NumServers returns the number of servers the scheduler packs over.
func (s *Scheduler) NumServers() int { return len(s.servers) }

// ScoreRowInto fills row (length NumServers) with vm's post-placement
// packing score on every feasible server, and -1 where the server is down
// or vm does not fit — the same feasibility test and score CandidatesInto
// ranks, flattened to a dense per-server row. The batched admission
// rollout (core.WhatIfScorer.ScoreMany) scores many VMs against one fleet
// snapshot this way: a dense row never needs re-sorting, so committing an
// earlier VM invalidates exactly one cell per later row (ScoreAt) instead
// of a whole ranking. Picking the highest-scoring cell with ties on the
// lowest index reproduces CandidatesInto's rank order exactly.
func (s *Scheduler) ScoreRowInto(vm *coachvm.CVM, row []float64) {
	for i, st := range s.servers {
		if s.Down(i) || !st.Pool.Fits(vm) {
			row[i] = -1
			continue
		}
		row[i] = s.packScore(st, vm)
	}
}

// ScoreAt re-evaluates one (vm, server) cell of a ScoreRowInto row against
// the scheduler's current state: -1 when server is down or vm no longer
// fits, the packing score otherwise. After a placement commits on a
// server, re-scoring that single column is bit-identical to rebuilding the
// whole row — no other server's pool changed.
func (s *Scheduler) ScoreAt(vm *coachvm.CVM, server int) float64 {
	st := s.servers[server]
	if s.Down(server) || !st.Pool.Fits(vm) {
		return -1
	}
	return s.packScore(st, vm)
}

// packScore scores placing vm on st: the mean packed fraction across
// resources after placement. Higher is fuller, which the best-fit
// preference maximizes.
func (s *Scheduler) packScore(st *ServerState, vm *coachvm.CVM) float64 {
	backed := st.Pool.Backed().Add(vm.Guaranteed)
	frac := backed.Utilization(st.Server.Capacity())
	var sum float64
	for _, k := range resources.Kinds {
		sum += frac[k]
	}
	return sum / float64(resources.NumKinds)
}

// Remove deletes a VM from its server, returning the CVM and its former
// server index (nil, -1 when unknown).
func (s *Scheduler) Remove(vmID int) (*coachvm.CVM, int) {
	idx, ok := s.placement[vmID]
	if !ok {
		return nil, -1
	}
	delete(s.placement, vmID)
	return s.servers[idx].Pool.Remove(vmID), idx
}

// Migrate moves a VM to the best-fit other feasible server. On failure
// the VM's placement is unchanged and the error is typed: ErrUnknownVM
// when the scheduler never placed vmID (drop the migration), ErrNoCapacity
// when no other server fits (re-route cross-shard or leave in place).
func (s *Scheduler) Migrate(vmID int) (newServer int, err error) {
	from, ok := s.placement[vmID]
	if !ok {
		return -1, fmt.Errorf("%w: %d", ErrUnknownVM, vmID)
	}
	cands := s.CandidatesInto(s.servers[from].Pool.Members()[vmID], from, s.candScratch)
	s.candScratch = cands[:0]
	if len(cands) == 0 {
		return -1, fmt.Errorf("%w: migrating vm %d", ErrNoCapacity, vmID)
	}
	return cands[0].Server, s.MigrateTo(vmID, cands[0].Server)
}

// MigrateTo moves a VM to an explicit server — the destination a
// migration engine picked from Candidates. On failure the VM stays where
// it was, with the same typed errors as Migrate.
func (s *Scheduler) MigrateTo(vmID, target int) error {
	if target < 0 || target >= len(s.servers) {
		return fmt.Errorf("scheduler: migration target %d outside [0,%d)", target, len(s.servers))
	}
	from, ok := s.placement[vmID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownVM, vmID)
	}
	if target == from {
		return fmt.Errorf("scheduler: vm %d already on server %d", vmID, target)
	}
	if s.Down(target) {
		return fmt.Errorf("%w: vm %d to down server %d", ErrNoCapacity, vmID, target)
	}
	vm := s.servers[from].Pool.Remove(vmID)
	if !s.servers[target].Pool.Fits(vm) {
		// Restore: capacity on the source is still reserved.
		if err := s.servers[from].Pool.Add(vm); err != nil {
			panic(fmt.Sprintf("scheduler: restore after failed migration: %v", err))
		}
		return fmt.Errorf("%w: vm %d on server %d", ErrNoCapacity, vmID, target)
	}
	if err := s.servers[target].Pool.Add(vm); err != nil {
		panic(fmt.Sprintf("scheduler: move to feasible server failed: %v", err))
	}
	s.placement[vmID] = target
	return nil
}

// CVM returns the placed CoachVM for vmID (nil when not placed). The
// migration engine uses it to re-place a VM whose live migration
// completed without re-deriving the guaranteed/oversubscribed split.
func (s *Scheduler) CVM(vmID int) *coachvm.CVM {
	idx, ok := s.placement[vmID]
	if !ok {
		return nil
	}
	return s.servers[idx].Pool.Members()[vmID]
}

// ServerOf returns the server index hosting vmID, or -1.
func (s *Scheduler) ServerOf(vmID int) int {
	if idx, ok := s.placement[vmID]; ok {
		return idx
	}
	return -1
}

// SetDown marks a server failed (down=true) or recovered (false). A
// down server is skipped by Place, PlaceAt, Candidates, HasFeasible and
// MigrateTo; VMs already placed there stay in the bookkeeping until the
// caller removes them.
func (s *Scheduler) SetDown(server int, down bool) {
	if server < 0 || server >= len(s.servers) {
		return
	}
	if s.down == nil {
		if !down {
			return
		}
		s.down = make([]bool, len(s.servers))
	}
	s.down[server] = down
}

// Down reports whether the server is marked failed.
func (s *Scheduler) Down(server int) bool {
	return s.down != nil && server >= 0 && server < len(s.down) && s.down[server]
}

// VMsOn returns the IDs of VMs placed on server, ascending — the
// deterministic eviction order crash handling uses.
func (s *Scheduler) VMsOn(server int) []int {
	var out []int
	for id, idx := range s.placement {
		if idx == server {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Placed returns the number of VMs currently placed.
func (s *Scheduler) Placed() int { return len(s.placement) }

// UsedServers returns the number of servers hosting at least one VM.
func (s *Scheduler) UsedServers() int {
	n := 0
	for _, st := range s.servers {
		if st.Used() {
			n++
		}
	}
	return n
}

// TotalBacked returns the fleet-wide physically backed resources.
func (s *Scheduler) TotalBacked() resources.Vector {
	var total resources.Vector
	for _, st := range s.servers {
		total = total.Add(st.Pool.Backed())
	}
	return total
}
