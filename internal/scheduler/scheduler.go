package scheduler

import (
	"fmt"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
)

// ServerState pairs a fleet server with its oversubscription bookkeeping.
type ServerState struct {
	Server *cluster.Server
	Pool   *coachvm.Pool
}

// Used reports whether the server hosts at least one VM.
func (s *ServerState) Used() bool { return s.Pool.Len() > 0 }

// Scheduler places CoachVMs onto a fleet using best-fit vector bin-packing
// over the (windows+1)-dimensional demand vectors of §3.3. It is
// deterministic: ties break on the lowest server ID.
type Scheduler struct {
	windows timeseries.Windows
	servers []*ServerState
	// placement maps VM ID -> index into servers.
	placement map[int]int
}

// New builds a scheduler over the fleet with empty servers.
func New(fleet *cluster.Fleet, w timeseries.Windows) (*Scheduler, error) {
	if err := fleet.Validate(); err != nil {
		return nil, err
	}
	servers := make([]*cluster.Server, 0, len(fleet.Servers))
	for i := range fleet.Servers {
		servers = append(servers, &fleet.Servers[i])
	}
	return NewOverServers(servers, w)
}

// NewOverServers builds a scheduler restricted to an explicit server subset
// — a per-cluster view of the fleet. The sim package uses one such view per
// cluster shard so shards can be replayed concurrently without sharing
// state. Server indices returned by Place/ServerOf are positions in the
// given slice, not fleet-wide IDs.
func NewOverServers(servers []*cluster.Server, w timeseries.Windows) (*Scheduler, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if len(servers) == 0 {
		return nil, fmt.Errorf("scheduler: no servers")
	}
	s := &Scheduler{windows: w, placement: make(map[int]int)}
	for _, srv := range servers {
		if !srv.Capacity().Positive() {
			return nil, fmt.Errorf("scheduler: server %d has non-positive capacity %v", srv.ID, srv.Capacity())
		}
		s.servers = append(s.servers, &ServerState{
			Server: srv,
			Pool:   coachvm.NewPool(srv.Capacity(), w),
		})
	}
	return s, nil
}

// Windows returns the time-window configuration.
func (s *Scheduler) Windows() timeseries.Windows { return s.windows }

// Servers returns the server states (shared slice: do not mutate).
func (s *Scheduler) Servers() []*ServerState { return s.servers }

// Place assigns vm to the best feasible server and returns its index.
// ok is false when no server can host the VM.
//
// Placement preference follows the packing heuristics of production
// rule-based allocators: among feasible servers, prefer the one whose
// post-placement packed fraction is highest (best fit), consolidating VMs
// onto fewer servers and leaving empty servers for large requests.
func (s *Scheduler) Place(vm *coachvm.CVM) (serverIdx int, ok bool) {
	return s.PlaceExcluding(vm, -1)
}

// PlaceExcluding is Place but never considers server exclude (used by
// migration, which must move a VM off its current host).
func (s *Scheduler) PlaceExcluding(vm *coachvm.CVM, exclude int) (serverIdx int, ok bool) {
	if _, dup := s.placement[vm.ID]; dup {
		return -1, false
	}
	best := -1
	bestScore := -1.0
	for i, st := range s.servers {
		if i == exclude || !st.Pool.Fits(vm) {
			continue
		}
		if score := s.packScore(st, vm); score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return -1, false
	}
	if err := s.servers[best].Pool.Add(vm); err != nil {
		// Fits was checked above; failure here indicates a bookkeeping bug.
		panic(fmt.Sprintf("scheduler: place on feasible server failed: %v", err))
	}
	s.placement[vm.ID] = best
	return best, true
}

// packScore scores placing vm on st: the mean packed fraction across
// resources after placement. Higher is fuller, which the best-fit
// preference maximizes.
func (s *Scheduler) packScore(st *ServerState, vm *coachvm.CVM) float64 {
	backed := st.Pool.Backed().Add(vm.Guaranteed)
	frac := backed.Utilization(st.Server.Capacity())
	var sum float64
	for _, k := range resources.Kinds {
		sum += frac[k]
	}
	return sum / float64(resources.NumKinds)
}

// Remove deletes a VM from its server, returning the CVM and its former
// server index (nil, -1 when unknown).
func (s *Scheduler) Remove(vmID int) (*coachvm.CVM, int) {
	idx, ok := s.placement[vmID]
	if !ok {
		return nil, -1
	}
	delete(s.placement, vmID)
	return s.servers[idx].Pool.Remove(vmID), idx
}

// Migrate moves a VM to another feasible server. It returns the new server
// index, or ok=false (with the VM restored in place) when no other server
// fits.
func (s *Scheduler) Migrate(vmID int) (newServer int, ok bool) {
	vm, from := s.Remove(vmID)
	if vm == nil {
		return -1, false
	}
	to, ok := s.PlaceExcluding(vm, from)
	if !ok {
		// Restore.
		if err := s.servers[from].Pool.Add(vm); err != nil {
			panic(fmt.Sprintf("scheduler: restore after failed migration: %v", err))
		}
		s.placement[vmID] = from
		return -1, false
	}
	return to, true
}

// ServerOf returns the server index hosting vmID, or -1.
func (s *Scheduler) ServerOf(vmID int) int {
	if idx, ok := s.placement[vmID]; ok {
		return idx
	}
	return -1
}

// Placed returns the number of VMs currently placed.
func (s *Scheduler) Placed() int { return len(s.placement) }

// UsedServers returns the number of servers hosting at least one VM.
func (s *Scheduler) UsedServers() int {
	n := 0
	for _, st := range s.servers {
		if st.Used() {
			n++
		}
	}
	return n
}

// TotalBacked returns the fleet-wide physically backed resources.
func (s *Scheduler) TotalBacked() resources.Vector {
	var total resources.Vector
	for _, st := range s.servers {
		total = total.Add(st.Pool.Backed())
	}
	return total
}
