package coachvm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
)

func randCVM(t *testing.T, rng *rand.Rand, id int, w timeseries.Windows) *CVM {
	t.Helper()
	alloc := resources.NewVector(
		float64(1+rng.Intn(8)),
		float64(4*(1+rng.Intn(8))),
		0.5+rng.Float64()*3,
		float64(32*(1+rng.Intn(8))),
	)
	p := Prediction{Windows: w, Percentile: 95}
	for _, k := range resources.Kinds {
		p.Max[k] = make([]float64, w.PerDay)
		p.Pct[k] = make([]float64, w.PerDay)
		for i := 0; i < w.PerDay; i++ {
			p.Max[k][i] = rng.Float64()
			p.Pct[k][i] = p.Max[k][i] * rng.Float64()
		}
	}
	vm, err := New(id, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestPoolAddRemoveRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cap := resources.NewVector(1000, 4000, 100, 100000)
	p := NewPool(cap, w6)
	var ids []int
	for i := 0; i < 20; i++ {
		vm := randCVM(t, rng, i, w6)
		if err := p.Add(vm); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, i)
	}
	if p.Len() != 20 {
		t.Fatalf("Len = %d", p.Len())
	}
	for _, id := range ids {
		if p.Remove(id) == nil {
			t.Fatalf("Remove(%d) returned nil", id)
		}
	}
	// After removing everything the pool must be exactly empty.
	if p.Len() != 0 {
		t.Fatalf("Len after removal = %d", p.Len())
	}
	if g := p.Guaranteed(); !vecAlmostZero(g) {
		t.Errorf("guaranteed after removal = %v", g)
	}
	if b := p.Backed(); !vecAlmostZero(b) {
		t.Errorf("backed after removal = %v", b)
	}
}

func vecAlmostZero(v resources.Vector) bool {
	for i := range v {
		if math.Abs(v[i]) > 1e-6 {
			return false
		}
	}
	return true
}

func TestPoolRejectsDuplicate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewPool(resources.NewVector(100, 400, 10, 10000), w6)
	vm := randCVM(t, rng, 1, w6)
	if err := p.Add(vm); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(vm); err == nil {
		t.Error("duplicate ID must be rejected")
	}
}

func TestPoolRemoveAbsent(t *testing.T) {
	p := NewPool(resources.NewVector(10, 40, 1, 100), w6)
	if p.Remove(42) != nil {
		t.Error("removing absent VM must return nil")
	}
}

func TestPoolFitsRejectsOverCapacity(t *testing.T) {
	// Tiny server: a fully guaranteed 8-core VM cannot fit twice.
	cap := resources.NewVector(10, 36, 5, 1000)
	p := NewPool(cap, w6)
	big := FullyGuaranteed(1, resources.NewVector(8, 30, 2, 100), w6)
	if !p.Fits(big) {
		t.Fatal("first VM must fit")
	}
	if err := p.Add(big); err != nil {
		t.Fatal(err)
	}
	big2 := FullyGuaranteed(2, resources.NewVector(8, 30, 2, 100), w6)
	if p.Fits(big2) {
		t.Error("second identical VM cannot fit a 10-core server")
	}
	if err := p.Add(big2); err == nil {
		t.Error("Add must fail when Fits is false")
	}
}

func TestPoolWindowMismatch(t *testing.T) {
	p := NewPool(resources.NewVector(100, 400, 10, 10000), w6)
	vm := FullyGuaranteed(1, resources.NewVector(1, 4, 1, 32), timeseries.Windows{PerDay: 3})
	if p.Fits(vm) {
		t.Error("window-config mismatch must not fit")
	}
}

func TestPaperOversubscriptionExample(t *testing.T) {
	// §3.2 example: CVM1 (2c/8GB), CVM2 (4c/16GB), CVM3 (8c/32GB) with
	// guaranteed 1/4GB, 4/4GB, 3/18GB fit into a 10-core/36GB server even
	// though their total allocation is 14 cores and 56GB.
	cap := resources.NewVector(10, 36, 100, 100000)
	p := NewPool(cap, w6)
	mk := func(id int, cores, mem, gCores, gMem float64) *CVM {
		pr := Prediction{Windows: w6, Percentile: 95}
		for _, k := range resources.Kinds {
			pr.Max[k] = make([]float64, w6.PerDay)
			pr.Pct[k] = make([]float64, w6.PerDay)
		}
		for i := 0; i < w6.PerDay; i++ {
			pr.Max[resources.CPU][i] = gCores / cores
			pr.Pct[resources.CPU][i] = gCores / cores
			pr.Max[resources.Memory][i] = gMem / mem
			pr.Pct[resources.Memory][i] = gMem / mem
		}
		vm, err := New(id, resources.NewVector(cores, mem, 1, 32), pr)
		if err != nil {
			t.Fatal(err)
		}
		return vm
	}
	for _, vm := range []*CVM{
		mk(1, 2, 8, 1, 4),
		mk(2, 4, 16, 4, 4),
		mk(3, 8, 32, 3, 18),
	} {
		if err := p.Add(vm); err != nil {
			t.Fatalf("vm %d: %v", vm.ID, err)
		}
	}
	// Total allocation (14 cores, 56GB) exceeds the server; the backed
	// resources must not.
	if b := p.Backed(); !b.FitsIn(cap) {
		t.Errorf("backed %v exceeds capacity %v", b, cap)
	}
}

// Property: formula (4) — the multiplexed oversubscribed pool is never
// larger than the sum of per-VM peak VA demands, and never smaller than
// any single window's VA sum.
func TestMultiplexingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		p := NewPool(resources.NewVector(1e6, 1e6, 1e6, 1e6), w6)
		n := 1 + rng.Intn(10)
		var naive resources.Vector
		for i := 0; i < n; i++ {
			vm := randCVM(t, rng, i, w6)
			if err := p.Add(vm); err != nil {
				t.Fatal(err)
			}
			for _, k := range resources.Kinds {
				var m float64
				for _, d := range vm.VADemand[k] {
					if d > m {
						m = d
					}
				}
				naive[k] += m
			}
		}
		over := p.Oversubscribed()
		for _, k := range resources.Kinds {
			if over[k] > naive[k]+1e-9 {
				t.Fatalf("multiplexed pool %v exceeds naive sum %v for %v", over[k], naive[k], k)
			}
		}
		sav := p.MultiplexSavings()
		for _, k := range resources.Kinds {
			if sav[k] < -1e-9 {
				t.Fatalf("negative multiplex savings for %v", k)
			}
			if math.Abs(sav[k]-(naive[k]-over[k])) > 1e-6 {
				t.Fatalf("savings accounting off for %v: %v vs %v", k, sav[k], naive[k]-over[k])
			}
		}
	}
}

// Property: after any sequence of feasible Adds, Backed fits in capacity.
func TestBackedWithinCapacityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		cap := resources.NewVector(32, 128, 10, 2048)
		p := NewPool(cap, w6)
		for i := 0; i < 30; i++ {
			vm := randCVM(t, rng, i, w6)
			if p.Fits(vm) {
				if err := p.Add(vm); err != nil {
					t.Fatal(err)
				}
			}
		}
		if b := p.Backed(); !b.FitsIn(cap.Add(resources.NewVector(1e-6, 1e-6, 1e-6, 1e-6))) {
			t.Fatalf("backed %v exceeds capacity %v", b, cap)
		}
	}
}

func TestDemandAtMatchesMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := NewPool(resources.NewVector(1e6, 1e6, 1e6, 1e6), w6)
	var vms []*CVM
	for i := 0; i < 5; i++ {
		vm := randCVM(t, rng, i, w6)
		vms = append(vms, vm)
		if err := p.Add(vm); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range resources.Kinds {
		for tt := 0; tt < w6.PerDay; tt++ {
			var want float64
			for _, vm := range vms {
				want += vm.SchedDemand(k, tt)
			}
			if got := p.DemandAt(k, tt); math.Abs(got-want) > 1e-9 {
				t.Fatalf("DemandAt(%v,%d) = %v, want %v", k, tt, got, want)
			}
		}
	}
}

func TestFreeNonNegative(t *testing.T) {
	p := NewPool(resources.NewVector(4, 16, 2, 128), w6)
	vm := FullyGuaranteed(1, resources.NewVector(4, 16, 2, 128), w6)
	if err := p.Add(vm); err != nil {
		t.Fatal(err)
	}
	free := p.Free()
	for _, k := range resources.Kinds {
		if free[k] < 0 {
			t.Errorf("negative free %v for %v", free[k], k)
		}
	}
}
