package coachvm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
)

var w6 = timeseries.Windows{PerDay: 6}

// mkPred builds a valid prediction with the given per-window memory max
// and pct fractions; other resources get flat 0.5/0.4.
func mkPred(t *testing.T, maxMem, pctMem []float64) Prediction {
	t.Helper()
	w := timeseries.Windows{PerDay: len(maxMem)}
	p := Prediction{Windows: w, Percentile: 95}
	for _, k := range resources.Kinds {
		p.Max[k] = make([]float64, w.PerDay)
		p.Pct[k] = make([]float64, w.PerDay)
		for i := 0; i < w.PerDay; i++ {
			p.Max[k][i], p.Pct[k][i] = 0.5, 0.4
		}
	}
	copy(p.Max[resources.Memory], maxMem)
	copy(p.Pct[resources.Memory], pctMem)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPredictionValidate(t *testing.T) {
	p := mkPred(t, []float64{0.5, 0.5, 0.5}, []float64{0.4, 0.4, 0.4})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.Max[resources.CPU] = []float64{0.5} // wrong length
	if err := bad.Validate(); err == nil {
		t.Error("wrong-length prediction must fail")
	}
	bad2 := mkPred(t, []float64{0.5, 0.5, 0.5}, []float64{0.4, 0.4, 0.4})
	bad2.Max[resources.CPU][0] = 1.5
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range prediction must fail")
	}
}

func TestClampForcesPctBelowMax(t *testing.T) {
	p := mkPred(t, []float64{0.5, 0.5, 0.5}, []float64{0.4, 0.4, 0.4})
	p.Pct[resources.Memory][0] = 0.9 // above max 0.5
	p.Clamp()
	if p.Pct[resources.Memory][0] != 0.5 {
		t.Errorf("Clamp left pct %v above max", p.Pct[resources.Memory][0])
	}
}

func TestPADemandFracFormula1(t *testing.T) {
	// Formula (1): PA = max over windows of bucketed PX.
	p := mkPred(t, []float64{0.9, 0.9, 0.9}, []float64{0.31, 0.52, 0.18})
	// Buckets: 0.35, 0.55, 0.20 -> max 0.55.
	if got := p.PADemandFrac(resources.Memory); math.Abs(got-0.55) > 1e-9 {
		t.Errorf("PADemandFrac = %v, want 0.55", got)
	}
}

func TestVADemandFracFormula2(t *testing.T) {
	// Formula (2): VA_t = max(0, bucketed Pmax_t - PA).
	p := mkPred(t, []float64{0.87, 0.25, 0.61}, []float64{0.5, 0.2, 0.5})
	pa := p.PADemandFrac(resources.Memory) // 0.5
	wantVA := []float64{0.90 - pa, 0, 0.65 - pa}
	for i, want := range wantVA {
		if got := p.VADemandFrac(resources.Memory, i); math.Abs(got-want) > 1e-9 {
			t.Errorf("VADemandFrac[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestNewRoundsToGranularity(t *testing.T) {
	alloc := resources.NewVector(4, 32, 2, 128)
	p := mkPred(t, []float64{0.8, 0.8, 0.8}, []float64{0.52, 0.52, 0.52})
	vm, err := New(1, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	// Memory PA: bucket(0.52)=0.55 -> 17.6GB -> rounded up to 18GB.
	if got := vm.Guaranteed[resources.Memory]; got != 18 {
		t.Errorf("guaranteed memory = %v, want 18", got)
	}
	// Guaranteed never exceeds allocation.
	if !vm.Guaranteed.FitsIn(alloc) {
		t.Errorf("guaranteed %v exceeds alloc %v", vm.Guaranteed, alloc)
	}
}

func TestNewPaperWorkedExample(t *testing.T) {
	// The Fig. 16a structure: PA-demand 16GB (max of per-window P95) with
	// window maxes 28, 8, 22 -> VA demands 12, 0, 6. A 40GB VM keeps all
	// fractions aligned to the 5% buckets and 1GB granularity.
	alloc := resources.NewVector(8, 40, 4, 256)
	p := mkPred(t,
		[]float64{0.70, 0.20, 0.55}, // window maxes: 28, 8, 22 GB
		[]float64{0.40, 0.20, 0.40}, // P95: max 0.40 -> 16GB
	)
	vm, err := New(1, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Guaranteed[resources.Memory] != 16 {
		t.Fatalf("PA = %v, want 16", vm.Guaranteed[resources.Memory])
	}
	wantVA := []float64{12, 0, 6}
	for i, want := range wantVA {
		if got := vm.VADemand[resources.Memory][i]; math.Abs(got-want) > 1e-9 {
			t.Errorf("VA[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestFullyGuaranteed(t *testing.T) {
	alloc := resources.NewVector(4, 16, 2, 128)
	vm := FullyGuaranteed(7, alloc, w6)
	if vm.Guaranteed != alloc {
		t.Errorf("guaranteed %v != alloc %v", vm.Guaranteed, alloc)
	}
	for _, k := range resources.Kinds {
		for tt := 0; tt < w6.PerDay; tt++ {
			if vm.VADemand[k][tt] != 0 {
				t.Errorf("fully guaranteed VM has VA demand %v", vm.VADemand[k][tt])
			}
		}
	}
	if !vm.OversubSavings().IsZero() {
		t.Errorf("fully guaranteed VM has savings %v", vm.OversubSavings())
	}
}

func TestSchedDemandFungibleVsNonFungible(t *testing.T) {
	alloc := resources.NewVector(8, 32, 4, 256)
	p := mkPred(t, []float64{0.8, 0.3, 0.6}, []float64{0.5, 0.25, 0.5})
	// CPU per-window maxes differ: {0.25, 0.75, 0.5}.
	p.Max[resources.CPU] = []float64{0.25, 0.75, 0.5}
	p.Pct[resources.CPU] = []float64{0.2, 0.6, 0.4}
	vm, err := New(1, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	// Fungible CPU: demand follows the window maxes (2, 6, 4 cores).
	want := []float64{2, 6, 4}
	for i := range want {
		if got := vm.SchedDemand(resources.CPU, i); got != want[i] {
			t.Errorf("CPU sched demand[%d] = %v, want %v", i, got, want[i])
		}
	}
	// Non-fungible memory: demand = static guaranteed + per-window VA.
	for i := 0; i < 3; i++ {
		want := vm.Guaranteed[resources.Memory] + vm.VADemand[resources.Memory][i]
		if got := vm.SchedDemand(resources.Memory, i); got != want {
			t.Errorf("memory sched demand[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestMaxDemandAndSavings(t *testing.T) {
	alloc := resources.NewVector(8, 32, 4, 256)
	p := mkPred(t, []float64{0.8, 0.3, 0.6}, []float64{0.5, 0.25, 0.5})
	vm, err := New(1, alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	// Memory max demand: 16 + 10 (window 0: 0.8*32=25.6 -> 26 - 16) = 26.
	if got := vm.MaxDemand(resources.Memory); got != 26 {
		t.Errorf("MaxDemand memory = %v, want 26", got)
	}
	s := vm.OversubSavings()
	if s[resources.Memory] != 32-26 {
		t.Errorf("memory savings = %v, want 6", s[resources.Memory])
	}
}

func TestNewRejectsInvalidPrediction(t *testing.T) {
	p := Prediction{Windows: timeseries.Windows{PerDay: 5}} // 5 doesn't divide 288... actually it does not matter; arrays empty
	if _, err := New(1, resources.NewVector(1, 4, 1, 32), p); err == nil {
		t.Error("invalid prediction must be rejected")
	}
}

// Property: guaranteed + VA never exceeds allocation by more than the
// rounding granularity, and all quantities are non-negative.
func TestCVMBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		alloc := resources.NewVector(
			float64(1+rng.Intn(40)),
			float64(4*(1+rng.Intn(128))),
			1+rng.Float64()*19,
			float64(32*(1+rng.Intn(64))),
		)
		p := Prediction{Windows: w6, Percentile: 95}
		for _, k := range resources.Kinds {
			p.Max[k] = make([]float64, w6.PerDay)
			p.Pct[k] = make([]float64, w6.PerDay)
			for i := 0; i < w6.PerDay; i++ {
				p.Max[k][i] = rng.Float64()
				p.Pct[k][i] = p.Max[k][i] * rng.Float64()
			}
		}
		vm, err := New(trial, alloc, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range resources.Kinds {
			if vm.Guaranteed[k] < 0 || vm.Guaranteed[k] > alloc[k] {
				t.Fatalf("guaranteed %v outside [0, %v]", vm.Guaranteed[k], alloc[k])
			}
			for tt := 0; tt < w6.PerDay; tt++ {
				if vm.VADemand[k][tt] < 0 {
					t.Fatalf("negative VA demand")
				}
				if vm.TotalDemand(k, tt) > alloc[k]+Granularity[k]+1e-9 {
					t.Fatalf("total demand %v exceeds alloc %v + granularity", vm.TotalDemand(k, tt), alloc[k])
				}
			}
		}
	}
}
