package coachvm

import (
	"fmt"

	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
)

// Pool tracks one server's guaranteed and multiplexed oversubscribed
// demand across CoachVMs. It is the server-manager bookkeeping of §3.3
// ("The server manager stores the VA-demand in each time window for each
// VM. It recomputes the multiplexed demand when it (de)allocates VMs and
// adjusts the oversubscribed portion accordingly.").
//
// Feasibility is the (windows + 1)-dimensional check of §3.3: per
// resource, the summed per-window scheduling demand must fit the capacity
// in every window, and — for non-fungible resources only — the summed
// static guaranteed portions must fit as well.
type Pool struct {
	windows  timeseries.Windows
	capacity resources.Vector

	// guaranteed is the sum of members' guaranteed portions (formula 3).
	guaranteed resources.Vector
	// demandSum[k][t] is the sum of members' scheduling demand in window
	// t (guaranteed + VA for non-fungible kinds; predicted per-window
	// utilization for fungible kinds).
	demandSum [resources.NumKinds][]float64

	members map[int]*CVM
}

// NewPool creates an empty pool for a server of the given capacity.
func NewPool(capacity resources.Vector, w timeseries.Windows) *Pool {
	p := &Pool{windows: w, capacity: capacity, members: make(map[int]*CVM)}
	for _, k := range resources.Kinds {
		p.demandSum[k] = make([]float64, w.PerDay)
	}
	return p
}

// Capacity returns the server capacity the pool manages.
func (p *Pool) Capacity() resources.Vector { return p.capacity }

// Windows returns the time-window configuration.
func (p *Pool) Windows() timeseries.Windows { return p.windows }

// Len returns the number of member VMs.
func (p *Pool) Len() int { return len(p.members) }

// Members returns the member VMs keyed by ID (shared map: do not mutate).
func (p *Pool) Members() map[int]*CVM { return p.members }

// Guaranteed returns the summed guaranteed portions (formula 3).
func (p *Pool) Guaranteed() resources.Vector { return p.guaranteed }

// DemandAt returns the summed scheduling demand of resource k in window t.
func (p *Pool) DemandAt(k resources.Kind, t int) float64 { return p.demandSum[k][t] }

// Oversubscribed returns, per resource, the multiplexed oversubscribed
// pool size: the max across windows of the summed VA demands (formula 4).
func (p *Pool) Oversubscribed() resources.Vector {
	var out resources.Vector
	for _, k := range resources.Kinds {
		var m float64
		for t := 0; t < p.windows.PerDay; t++ {
			var sum float64
			for _, vm := range p.members {
				sum += vm.VADemand[k][t]
			}
			if sum > m {
				m = sum
			}
		}
		out[k] = m
	}
	return out
}

// Backed returns, per resource, the peak summed scheduling demand across
// windows: the physical resources the server must actually reserve. For
// memory this equals guaranteed + oversubscribed (formulas 3 + 4).
func (p *Pool) Backed() resources.Vector {
	var out resources.Vector
	for _, k := range resources.Kinds {
		for _, s := range p.demandSum[k] {
			if s > out[k] {
				out[k] = s
			}
		}
	}
	return out
}

// Free returns capacity - Backed, the room left for further VMs.
func (p *Pool) Free() resources.Vector {
	return p.capacity.Sub(p.Backed()).ClampNonNegative()
}

// Fits reports whether adding vm would keep the pool feasible.
func (p *Pool) Fits(vm *CVM) bool {
	if vm.Pred.Windows != p.windows {
		return false
	}
	for _, k := range resources.Kinds {
		if resources.KindFungibility(k) == resources.NonFungible {
			if p.guaranteed[k]+vm.Guaranteed[k] > p.capacity[k]+1e-9 {
				return false
			}
		}
		for t := 0; t < p.windows.PerDay; t++ {
			if p.demandSum[k][t]+vm.SchedDemand(k, t) > p.capacity[k]+1e-9 {
				return false
			}
		}
	}
	return true
}

// Add inserts vm into the pool. It returns an error when the VM does not
// fit or its ID is already present; the pool is unchanged on error.
func (p *Pool) Add(vm *CVM) error {
	if _, ok := p.members[vm.ID]; ok {
		return fmt.Errorf("coachvm: vm %d already in pool", vm.ID)
	}
	if !p.Fits(vm) {
		return fmt.Errorf("coachvm: vm %d does not fit in pool", vm.ID)
	}
	p.members[vm.ID] = vm
	p.guaranteed = p.guaranteed.Add(vm.Guaranteed)
	for _, k := range resources.Kinds {
		for t := 0; t < p.windows.PerDay; t++ {
			p.demandSum[k][t] += vm.SchedDemand(k, t)
		}
	}
	return nil
}

// Remove deletes the VM with the given ID, returning it (nil if absent).
func (p *Pool) Remove(id int) *CVM {
	vm, ok := p.members[id]
	if !ok {
		return nil
	}
	delete(p.members, id)
	p.guaranteed = p.guaranteed.Sub(vm.Guaranteed).ClampNonNegative()
	for _, k := range resources.Kinds {
		for t := 0; t < p.windows.PerDay; t++ {
			p.demandSum[k][t] -= vm.SchedDemand(k, t)
			if p.demandSum[k][t] < 0 {
				p.demandSum[k][t] = 0
			}
		}
	}
	return vm
}

// MultiplexSavings returns, per resource, the amount saved by multiplexing
// the VA demands across windows instead of summing their peaks: sum over
// VMs of max_t VA_i,t minus max_t sum over VMs VA_i,t. This is the
// "Multiplex Saved" quantity illustrated in Fig. 16b.
func (p *Pool) MultiplexSavings() resources.Vector {
	var naive resources.Vector
	for _, vm := range p.members {
		for _, k := range resources.Kinds {
			var m float64
			for _, d := range vm.VADemand[k] {
				if d > m {
					m = d
				}
			}
			naive[k] += m
		}
	}
	return naive.Sub(p.Oversubscribed()).ClampNonNegative()
}
