// Package coachvm implements the CoachVM abstraction: the paper's new
// general-purpose VM type whose every resource is split into a guaranteed
// portion (always allocated: PA-backed memory, dedicated cores) and an
// oversubscribed portion (allocated on demand from a shared pool:
// VA-backed memory, shared cores). See paper §3.2 and §3.3.
//
// The allocation formulas (§3.3) implemented here are:
//
//	(1) PA_demand(VMi)      = max over windows t of PX_t
//	(2) VA_demand(VMi, t)   = max(0, Pmax_t - PA_demand(VMi))
//	(3) Guaranteed memory   = sum over VMs of PA_demand
//	(4) Oversubscribed mem  = max over t of sum over VMs of VA_demand(VMi,t)
//
// All demands are conservatively rounded up to 5% buckets of the VM's
// allocation and to the resource management granularity (1GB for memory,
// 1 core for CPU) before use, per §3.3 "Coach configuration".
package coachvm

import (
	"fmt"
	"math"

	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/stats"
	"github.com/coach-oss/coach/internal/timeseries"
)

// Prediction holds the per-time-window utilization predictions for one VM:
// the window maximum (total working set) and a percentile PX (the
// guaranteed portion target), both as fractions of the VM's allocation.
type Prediction struct {
	Windows timeseries.Windows
	// Max[k][t] is the predicted maximum utilization of resource k in
	// window t, as a fraction in [0,1].
	Max [resources.NumKinds][]float64
	// Pct[k][t] is the predicted PX (e.g., P95) utilization.
	Pct [resources.NumKinds][]float64
	// Percentile records which percentile Pct holds (e.g., 95).
	Percentile float64
}

// Validate checks the prediction's shape and value invariants.
func (p *Prediction) Validate() error {
	if err := p.Windows.Validate(); err != nil {
		return err
	}
	for _, k := range resources.Kinds {
		if len(p.Max[k]) != p.Windows.PerDay || len(p.Pct[k]) != p.Windows.PerDay {
			return fmt.Errorf("coachvm: prediction for %v has %d/%d windows, want %d",
				k, len(p.Max[k]), len(p.Pct[k]), p.Windows.PerDay)
		}
		for t := 0; t < p.Windows.PerDay; t++ {
			if p.Max[k][t] < 0 || p.Max[k][t] > 1 || p.Pct[k][t] < 0 || p.Pct[k][t] > 1 {
				return fmt.Errorf("coachvm: prediction for %v window %d outside [0,1]", k, t)
			}
		}
	}
	return nil
}

// Clamp forces Pct <= Max per window (a percentile can never exceed the
// maximum; predictions from independent models may disagree slightly).
func (p *Prediction) Clamp() {
	for _, k := range resources.Kinds {
		for t := range p.Pct[k] {
			if p.Pct[k][t] > p.Max[k][t] {
				p.Pct[k][t] = p.Max[k][t]
			}
		}
	}
}

// Granularity is the resource management granularity per kind (§3.3:
// allocations round up to 1GB for memory; we use 1 core, 0.1 Gbps and 1GB
// SSD for the remaining kinds).
var Granularity = resources.Vector{
	resources.CPU:     1,
	resources.Memory:  1,
	resources.Network: 0.1,
	resources.SSD:     1,
}

// FractionBucket is the conservative 5% rounding applied to predicted
// fractions before conversion to absolute units.
const FractionBucket = 0.05

// roundUp rounds an absolute amount up to the granularity of kind k,
// clamped to at most alloc.
func roundUp(amount, alloc float64, k resources.Kind) float64 {
	g := Granularity[k]
	if g > 0 {
		amount = math.Ceil(amount/g-1e-9) * g
	}
	if amount > alloc {
		amount = alloc
	}
	if amount < 0 {
		amount = 0
	}
	return amount
}

// PADemandFrac implements formula (1) on fractions: the maximum of the
// bucketed PX predictions across windows.
func (p *Prediction) PADemandFrac(k resources.Kind) float64 {
	var m float64
	for _, v := range p.Pct[k] {
		b := stats.BucketUp(v, FractionBucket)
		if b > m {
			m = b
		}
	}
	if m > 1 {
		m = 1
	}
	return m
}

// VADemandFrac implements formula (2) on fractions for window t:
// max(0, bucketed Pmax_t - PA fraction).
func (p *Prediction) VADemandFrac(k resources.Kind, t int) float64 {
	pa := p.PADemandFrac(k)
	mx := stats.BucketUp(p.Max[k][t], FractionBucket)
	if mx > 1 {
		mx = 1
	}
	if d := mx - pa; d > 0 {
		return d
	}
	return 0
}

// CVM is a placed CoachVM: an allocation plus its resolved guaranteed and
// oversubscribed portions in absolute units.
type CVM struct {
	ID    int
	Alloc resources.Vector
	Pred  Prediction

	// Guaranteed is the always-allocated portion per resource (formula 1,
	// rounded up to granularity). For memory this is the PA-backed size.
	Guaranteed resources.Vector
	// VADemand[k][t] is the absolute oversubscribed demand of resource k
	// in window t (formula 2, rounded up to granularity).
	VADemand [resources.NumKinds][]float64
}

// New resolves a prediction into a CoachVM's guaranteed/oversubscribed
// split. The caller must pass a validated prediction.
func New(id int, alloc resources.Vector, pred Prediction) (*CVM, error) {
	if err := pred.Validate(); err != nil {
		return nil, err
	}
	pred.Clamp()
	vm := &CVM{ID: id, Alloc: alloc, Pred: pred}
	for _, k := range resources.Kinds {
		pa := pred.PADemandFrac(k) * alloc[k]
		vm.Guaranteed[k] = roundUp(pa, alloc[k], k)
		vm.VADemand[k] = make([]float64, pred.Windows.PerDay)
		for t := 0; t < pred.Windows.PerDay; t++ {
			// Recompute VA against the rounded guaranteed portion so
			// guaranteed + VA never exceeds the bucketed window max by
			// more than the rounding slack, and never exceeds Alloc.
			mx := roundUp(stats.BucketUp(pred.Max[k][t], FractionBucket)*alloc[k], alloc[k], k)
			if d := mx - vm.Guaranteed[k]; d > 0 {
				vm.VADemand[k][t] = d
			}
		}
	}
	return vm, nil
}

// FullyGuaranteed builds a CVM whose entire allocation is guaranteed —
// the legacy general-purpose VM (Gpvm in §4.2), used by the None policy.
func FullyGuaranteed(id int, alloc resources.Vector, w timeseries.Windows) *CVM {
	vm := &CVM{ID: id, Alloc: alloc}
	vm.Pred.Windows = w
	vm.Guaranteed = alloc
	for _, k := range resources.Kinds {
		vm.Pred.Max[k] = ones(w.PerDay)
		vm.Pred.Pct[k] = ones(w.PerDay)
		vm.VADemand[k] = make([]float64, w.PerDay)
	}
	return vm
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// SchedDemand returns the VM's scheduling demand for resource k in window
// t — the quantity the time-window bin-packing sums per server (§3.3):
//
//   - For non-fungible resources (memory space, SSD space) the static
//     guaranteed portion must be physically present at all times, so the
//     demand is Guaranteed + VADemand_t.
//   - For fungible resources (CPU, network bandwidth) the hypervisor
//     reassigns capacity on demand, so the scheduler packs the predicted
//     per-window utilization directly (the paper's {2, 6, 4} cores
//     example) — this is where complementary temporal patterns pay off.
func (vm *CVM) SchedDemand(k resources.Kind, t int) float64 {
	if resources.KindFungibility(k) == resources.NonFungible {
		return vm.Guaranteed[k] + vm.VADemand[k][t]
	}
	return roundUp(stats.BucketUp(vm.Pred.Max[k][t], FractionBucket)*vm.Alloc[k], vm.Alloc[k], k)
}

// MaxDemand returns the VM's maximum scheduling demand for resource k
// across windows — the amount a lifetime-max allocator would reserve.
func (vm *CVM) MaxDemand(k resources.Kind) float64 {
	var m float64
	for t := range vm.VADemand[k] {
		if d := vm.SchedDemand(k, t); d > m {
			m = d
		}
	}
	if vm.Guaranteed[k] > m {
		m = vm.Guaranteed[k]
	}
	return m
}

// TotalDemand returns guaranteed + VA demand for resource k in window t.
func (vm *CVM) TotalDemand(k resources.Kind, t int) float64 {
	return vm.Guaranteed[k] + vm.VADemand[k][t]
}

// OversubSavings returns Alloc - MaxDemand per resource: what a CoachVM
// saves relative to a fully guaranteed VM before any multiplexing.
func (vm *CVM) OversubSavings() resources.Vector {
	var out resources.Vector
	for _, k := range resources.Kinds {
		out[k] = vm.Alloc[k] - vm.MaxDemand(k)
		if out[k] < 0 {
			out[k] = 0
		}
	}
	return out
}
