package cluster

import (
	"testing"

	"github.com/coach-oss/coach/internal/resources"
)

func TestGenerations(t *testing.T) {
	if len(Generations) != 4 {
		t.Fatalf("%d generations, want 4 (paper §2 methodology)", len(Generations))
	}
	for i, g := range Generations {
		if g.Generation != i+1 {
			t.Errorf("generation %d numbered %d", i, g.Generation)
		}
		if !g.Capacity.Positive() {
			t.Errorf("generation %s has non-positive capacity", g.Name)
		}
	}
}

func TestGBPerCore(t *testing.T) {
	s := ServerSpec{Capacity: resources.NewVector(64, 256, 40, 4096)}
	if s.GBPerCore() != 4 {
		t.Errorf("GBPerCore = %v, want 4", s.GBPerCore())
	}
	if (ServerSpec{}).GBPerCore() != 0 {
		t.Error("zero-CPU spec must report 0")
	}
}

func TestDefaultClusters(t *testing.T) {
	cs := DefaultClusters(3)
	if len(cs) != 10 {
		t.Fatalf("%d clusters, want 10 (C1-C10)", len(cs))
	}
	names := map[string]bool{}
	for _, c := range cs {
		if names[c.Name] {
			t.Errorf("duplicate cluster name %s", c.Name)
		}
		names[c.Name] = true
		if c.Servers != 3 {
			t.Errorf("%s has %d servers, want 3", c.Name, c.Servers)
		}
	}
	// C1 is memory-rich (CPU-bottlenecked); C4 is memory-poor
	// (memory-bottlenecked), per Fig. 5.
	var c1, c4 Config
	for _, c := range cs {
		if c.Name == "C1" {
			c1 = c
		}
		if c.Name == "C4" {
			c4 = c
		}
	}
	if c1.Spec.GBPerCore() <= c4.Spec.GBPerCore() {
		t.Errorf("C1 GB/core %v must exceed C4 %v", c1.Spec.GBPerCore(), c4.Spec.GBPerCore())
	}
}

func TestDefaultClustersMinServers(t *testing.T) {
	cs := DefaultClusters(0)
	for _, c := range cs {
		if c.Servers != 1 {
			t.Errorf("serversPer<1 must clamp to 1, got %d", c.Servers)
		}
	}
}

func TestNewFleet(t *testing.T) {
	f := NewFleet(DefaultClusters(2))
	if len(f.Servers) != 20 {
		t.Fatalf("%d servers, want 20", len(f.Servers))
	}
	seen := map[int]bool{}
	for i := range f.Servers {
		s := &f.Servers[i]
		if seen[s.ID] {
			t.Errorf("duplicate server ID %d", s.ID)
		}
		seen[s.ID] = true
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterServers(t *testing.T) {
	f := NewFleet(DefaultClusters(2))
	total := 0
	for ci := range f.Clusters {
		ss := f.ClusterServers(ci)
		total += len(ss)
		for _, s := range ss {
			if s.Cluster != ci {
				t.Errorf("server %d in wrong cluster", s.ID)
			}
		}
	}
	if total != len(f.Servers) {
		t.Errorf("cluster partition covers %d of %d servers", total, len(f.Servers))
	}
}

func TestTotalCapacity(t *testing.T) {
	f := NewFleet([]Config{
		{Name: "A", Spec: Generations[0], Servers: 2},
	})
	want := Generations[0].Capacity.Scale(2)
	if got := f.TotalCapacity(); got != want {
		t.Errorf("TotalCapacity = %v, want %v", got, want)
	}
}

func TestValidateCatchesBadServer(t *testing.T) {
	f := NewFleet(DefaultClusters(1))
	f.Servers[0].Cluster = 99
	if err := f.Validate(); err == nil {
		t.Error("dangling cluster reference must fail")
	}
}
