// Package cluster models the server fleet: hardware generations, cluster
// configurations and inventories.
//
// The paper's trace covers "thousands of servers from four hardware
// generations" across "ten popular clusters" whose differing GB/core and
// network ratios drive the stranding variation of Fig. 5 (C1 almost
// exclusively CPU-bottlenecked, C4 memory-bottlenecked, C2 mixed).
package cluster

import (
	"fmt"

	"github.com/coach-oss/coach/internal/resources"
)

// ServerSpec describes one server hardware configuration.
type ServerSpec struct {
	Name string
	// Generation is the hardware generation (1..4).
	Generation int
	// Capacity is the sellable resource capacity of the server.
	Capacity resources.Vector
}

// GBPerCore returns the server's memory-to-CPU ratio.
func (s ServerSpec) GBPerCore() float64 {
	if s.Capacity[resources.CPU] == 0 {
		return 0
	}
	return s.Capacity[resources.Memory] / s.Capacity[resources.CPU]
}

// Generations lists the four hardware generations in the fleet. The newest
// matches the paper's evaluation server (§4.1: 160 hyper-threaded cores
// normalized to 80, 512GB DRAM — we keep the paper's "core" normalization
// by using the HT count directly, as the trace does).
var Generations = []ServerSpec{
	{Name: "gen1", Generation: 1, Capacity: resources.NewVector(64, 256, 40, 4096)},
	{Name: "gen2", Generation: 2, Capacity: resources.NewVector(96, 384, 40, 8192)},
	{Name: "gen3", Generation: 3, Capacity: resources.NewVector(128, 512, 50, 8192)},
	{Name: "gen4", Generation: 4, Capacity: resources.NewVector(160, 512, 100, 16384)},
}

// Config describes one cluster: a name, a server spec and a server count.
type Config struct {
	Name    string
	Spec    ServerSpec
	Servers int
}

// scaled returns spec with memory and network capacity scaled; clusters
// differentiate on these ratios (§2.2: "servers in C4 have less memory
// relative to cores/network than the other clusters").
func scaled(base ServerSpec, name string, memFactor, netFactor float64) ServerSpec {
	c := base.Capacity
	c[resources.Memory] *= memFactor
	c[resources.Network] *= netFactor
	return ServerSpec{Name: name, Generation: base.Generation, Capacity: c}
}

// DefaultClusters returns the ten-cluster fleet used across experiments.
// Ratios are chosen so the stranding/bottleneck structure of Figs. 4 and 5
// emerges: C1 memory-rich (CPU-bound), C4 memory-poor (memory-bound),
// C2 network-constrained (mixed bottlenecks), the rest in between.
func DefaultClusters(serversPer int) []Config {
	if serversPer < 1 {
		serversPer = 1
	}
	return []Config{
		{Name: "C1", Spec: scaled(Generations[2], "gen3-memrich", 1.5, 1.0), Servers: serversPer},
		{Name: "C2", Spec: scaled(Generations[1], "gen2-netpoor", 1.0, 0.4), Servers: serversPer},
		{Name: "C3", Spec: scaled(Generations[2], "gen3-balanced", 1.0, 1.0), Servers: serversPer},
		{Name: "C4", Spec: scaled(Generations[3], "gen4-mempoor", 0.55, 1.0), Servers: serversPer},
		{Name: "C5", Spec: scaled(Generations[0], "gen1-balanced", 1.0, 1.0), Servers: serversPer},
		{Name: "C6", Spec: scaled(Generations[3], "gen4-balanced", 1.0, 1.0), Servers: serversPer},
		{Name: "C7", Spec: scaled(Generations[1], "gen2-memrich", 1.25, 1.0), Servers: serversPer},
		{Name: "C8", Spec: scaled(Generations[2], "gen3-mempoor", 0.75, 0.8), Servers: serversPer},
		{Name: "C9", Spec: scaled(Generations[0], "gen1-memrich", 1.4, 0.7), Servers: serversPer},
		{Name: "C10", Spec: scaled(Generations[3], "gen4-netrich", 0.9, 1.5), Servers: serversPer},
	}
}

// Server is one physical machine in a fleet.
type Server struct {
	ID      int
	Cluster int // index into the fleet's cluster list
	Spec    ServerSpec
}

// Capacity returns the server's total capacity vector.
func (s *Server) Capacity() resources.Vector { return s.Spec.Capacity }

// Fleet is an inventory of servers grouped into clusters.
type Fleet struct {
	Clusters []Config
	Servers  []Server
}

// NewFleet materializes the per-cluster server counts into a flat server
// inventory with stable IDs.
func NewFleet(clusters []Config) *Fleet {
	f := &Fleet{Clusters: clusters}
	id := 0
	for ci, c := range clusters {
		for i := 0; i < c.Servers; i++ {
			f.Servers = append(f.Servers, Server{ID: id, Cluster: ci, Spec: c.Spec})
			id++
		}
	}
	return f
}

// ClusterServers returns the servers of cluster ci.
func (f *Fleet) ClusterServers(ci int) []*Server {
	var out []*Server
	for i := range f.Servers {
		if f.Servers[i].Cluster == ci {
			out = append(out, &f.Servers[i])
		}
	}
	return out
}

// NumClusters returns the number of clusters in the fleet.
func (f *Fleet) NumClusters() int { return len(f.Clusters) }

// Shards groups the fleet's servers by cluster: one slice per cluster, in
// cluster order. Clusters never share VMs in the scheduler, so each group
// is an independently schedulable shard; the sim package replays shards
// concurrently.
func (f *Fleet) Shards() [][]*Server {
	shards := make([][]*Server, len(f.Clusters))
	for i := range f.Servers {
		ci := f.Servers[i].Cluster
		shards[ci] = append(shards[ci], &f.Servers[i])
	}
	return shards
}

// TotalCapacity returns the fleet-wide capacity vector.
func (f *Fleet) TotalCapacity() resources.Vector {
	var total resources.Vector
	for i := range f.Servers {
		total = total.Add(f.Servers[i].Capacity())
	}
	return total
}

// Validate checks inventory consistency.
func (f *Fleet) Validate() error {
	for i := range f.Servers {
		s := &f.Servers[i]
		if s.Cluster < 0 || s.Cluster >= len(f.Clusters) {
			return fmt.Errorf("cluster: server %d references unknown cluster %d", s.ID, s.Cluster)
		}
		if !s.Capacity().Positive() {
			return fmt.Errorf("cluster: server %d has non-positive capacity %v", s.ID, s.Capacity())
		}
	}
	return nil
}
