// Package experiments contains one registered, runnable experiment per
// table and figure of the paper (plus ablations), producing printable
// tables. The cmd/ tools, the benchmark harness and EXPERIMENTS.md are all
// generated from this registry, so every number reported anywhere comes
// from the same code path.
package experiments

import (
	"fmt"
	"sync"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

// Scale selects the input sizes experiments run at.
type Scale int

const (
	// ScaleSmall is sized for unit tests and quick benchmarks.
	ScaleSmall Scale = iota
	// ScaleMedium is the default for the cmd/ tools.
	ScaleMedium
	// ScaleFull is the largest laptop-friendly configuration.
	ScaleFull
)

func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts a string flag into a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "full":
		return ScaleFull, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (small|medium|full)", s)
	}
}

// GenConfig returns the trace generator configuration for a scale; the
// cmd/ tools (including coachd) use it so every entry point at a given
// scale serves the exact trace the tests and benchmarks use.
func (s Scale) GenConfig() trace.GenConfig {
	cfg := trace.DefaultGenConfig()
	vms, subs := s.population()
	cfg.VMs = vms
	cfg.Subscriptions = subs
	return cfg
}

// population is the (VMs, Subscriptions) sizing shared by the GenConfig
// and scenario trace paths at each scale.
func (s Scale) population() (vms, subscriptions int) {
	switch s {
	case ScaleSmall:
		return 500, 50
	case ScaleMedium:
		return 1500, 100
	default:
		return 3000, 150
	}
}

// ScenarioSpec rescales a workload spec's population to this scale,
// leaving its shape (classes, seasonality, surges) untouched — the
// scenario analogue of GenConfig.
func (s Scale) ScenarioSpec(sp *scenario.Spec) *scenario.Spec {
	vms, subs := s.population()
	return sp.Scaled(vms, subs)
}

// Context carries lazily built, cached artifacts shared across
// experiments: the synthetic trace, fleets, and trained predictors. It is
// safe for concurrent use, so independent experiments can run in parallel
// over one context (cmd/coach-experiments -parallel); cached artifacts are
// built at most once and shared read-only afterwards.
type Context struct {
	Scale Scale

	// TrainWorkers bounds how many goroutines grow forest trees when the
	// context trains a predictor (0 = GOMAXPROCS). The trained model is
	// byte-identical for any value, so experiment output never depends on
	// it; cmd tools expose it as -train-workers. Set before first use.
	TrainWorkers int

	// Scenario, when non-nil, replaces the GenConfig generator: the
	// context's trace comes from trace.GenerateScenario on this spec
	// (already scaled — see Scale.ScenarioSpec), and every experiment,
	// fleet sizing and model in the context follows it. Set before
	// first use; cmd tools expose it as -preset.
	Scenario *scenario.Spec

	mu     sync.Mutex
	tr     *trace.Trace
	models map[float64]*predict.LongTerm
}

// NewContext creates an empty context for the given scale.
func NewContext(scale Scale) *Context {
	return &Context{Scale: scale, models: make(map[float64]*predict.LongTerm)}
}

// Trace returns the context's trace, generating it on first use.
func (c *Context) Trace() (*trace.Trace, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traceLocked()
}

func (c *Context) traceLocked() (*trace.Trace, error) {
	if c.tr == nil {
		var tr *trace.Trace
		var err error
		if c.Scenario != nil {
			tr, err = trace.GenerateScenario(c.Scenario)
		} else {
			tr, err = trace.Generate(c.Scale.GenConfig())
		}
		if err != nil {
			return nil, err
		}
		c.tr = tr
	}
	return c.tr, nil
}

// Model returns a long-term predictor trained on the trace's first week at
// the given percentile, caching per percentile.
func (c *Context) Model(percentile float64) (*predict.LongTerm, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.models[percentile]; ok {
		return m, nil
	}
	tr, err := c.traceLocked()
	if err != nil {
		return nil, err
	}
	cfg := predict.DefaultLongTermConfig()
	cfg.Percentile = percentile
	cfg.Forest.Workers = c.TrainWorkers
	m, err := predict.TrainLongTerm(tr, trainUpTo(tr), cfg)
	if err != nil {
		return nil, err
	}
	c.models[percentile] = m
	return m, nil
}

// trainUpTo is the train/evaluate split: the first half of the trace
// (one week of the default two).
func trainUpTo(tr *trace.Trace) int { return tr.Horizon / 2 }

// Fleet builds a ten-cluster fleet with the given servers per cluster.
func (c *Context) Fleet(serversPer int) *cluster.Fleet {
	return cluster.NewFleet(cluster.DefaultClusters(serversPer))
}

// CapacityFleet sizes a fleet so its total CPU capacity is roughly frac of
// the peak allocated demand during the evaluation period — the fixed fleet
// the Fig. 20 capacity comparison packs VMs into. frac < 1 makes the None
// policy reject a meaningful share of arrivals. Servers are drawn from the
// ten cluster configurations round-robin until the target is met.
func (c *Context) CapacityFleet(frac float64) (*cluster.Fleet, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	peak := peakAllocated(tr, trainUpTo(tr))
	target := frac * peak[resources.CPU]

	// Draw servers with the memory-rich clusters doubled, so the fixed
	// fleet starts out CPU-bound like the paper's clusters (Fig. 5: CPU
	// is the most common bottleneck before oversubscription).
	configs := cluster.DefaultClusters(0)
	for i := range configs {
		configs[i].Servers = 0
	}
	order := []int{0, 2, 6, 8, 0, 5, 6, 8, 3, 9, 0, 6, 8, 1, 4, 7}
	var total float64
	for i := 0; total < target; i++ {
		cc := &configs[order[i%len(order)]]
		cc.Servers++
		total += cc.Spec.Capacity[resources.CPU]
	}
	var nonEmpty []cluster.Config
	for _, cc := range configs {
		if cc.Servers > 0 {
			nonEmpty = append(nonEmpty, cc)
		}
	}
	return cluster.NewFleet(nonEmpty), nil
}

// peakAllocated returns the element-wise peak of summed VM allocations
// over the evaluation period, sampled hourly.
func peakAllocated(tr *trace.Trace, from int) resources.Vector {
	var peak resources.Vector
	for t := from; t < tr.Horizon; t += timeseries.SamplesPerHour {
		var sum resources.Vector
		for i := range tr.VMs {
			if tr.VMs[i].AliveAt(t) {
				sum = sum.Add(tr.VMs[i].Alloc)
			}
		}
		peak = peak.Max(sum)
	}
	return peak
}
