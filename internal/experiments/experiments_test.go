package experiments

import (
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig15", "fig17", "fig18", "fig19",
		"fig20", "fig21", "tab1", "tab2", "sec45",
		"abl-faults", "abl-fleetmig", "abl-fleetmit", "abl-forest", "abl-monitor",
		"abl-percentile", "abl-scenarios", "abl-windows",
	}
	if len(all) != len(want) {
		var ids []string
		for _, e := range all {
			ids = append(ids, e.ID)
		}
		t.Fatalf("registry has %d experiments %v, want %d", len(all), ids, len(want))
	}
	got := map[string]bool{}
	for _, e := range all {
		got[e.ID] = true
		if e.Title == "" || e.PaperClaim == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestRegistryOrdering(t *testing.T) {
	all := All()
	// Figures come first, numerically.
	if all[0].ID != "fig2" {
		t.Errorf("first experiment = %s", all[0].ID)
	}
	idx := map[string]int{}
	for i, e := range all {
		idx[e.ID] = i
	}
	if idx["fig10"] < idx["fig9"] {
		t.Error("fig10 must sort after fig9 (numeric, not lexicographic)")
	}
	if idx["tab1"] < idx["fig21"] {
		t.Error("tables must sort after figures")
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig20"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id must fail")
	}
}

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"small": ScaleSmall, "medium": ScaleMedium, "full": ScaleFull} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Errorf("ParseScale(%s) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("unknown scale must fail")
	}
	if ScaleSmall.String() != "small" {
		t.Error("scale string wrong")
	}
}

func TestContextCachesTrace(t *testing.T) {
	ctx := NewContext(ScaleSmall)
	a, err := ctx.Trace()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("trace must be cached")
	}
}

func TestCapacityFleetSizing(t *testing.T) {
	ctx := NewContext(ScaleSmall)
	small, err := ctx.CapacityFleet(0.4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := ctx.CapacityFleet(1.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Servers) >= len(big.Servers) {
		t.Errorf("fleet sizing not monotone: %d vs %d servers", len(small.Servers), len(big.Servers))
	}
}

// TestFastExperimentsRun smoke-tests the quick experiments end to end.
func TestFastExperimentsRun(t *testing.T) {
	ctx := NewContext(ScaleSmall)
	for _, id := range []string{"tab1", "tab2", "fig2", "fig3", "fig6", "fig7", "fig15"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Errorf("%s produced no tables", id)
		}
		for _, tab := range tables {
			if len(tab.Headers) == 0 || len(tab.Rows) == 0 {
				t.Errorf("%s produced an empty table %q", id, tab.Title)
			}
		}
	}
}

// TestSlowExperimentsRun covers the heavier experiments; skipped in -short.
func TestSlowExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiments skipped in -short mode")
	}
	ctx := NewContext(ScaleSmall)
	for _, id := range []string{"fig18", "fig21"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Errorf("%s produced no tables", id)
		}
	}
}

func TestFig21Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig21 skipped in -short mode")
	}
	// The mitigation ordering of §4.4 must hold: None never recovers from
	// the second contention; Extend and Migrate do.
	runs := map[string]*fig21Run{}
	for _, p := range fig21Policies() {
		r, err := runFig21Policy(p)
		if err != nil {
			t.Fatal(err)
		}
		runs[p.name] = r
	}
	mean2nd := func(name string) float64 {
		r := runs[name]
		var sum float64
		for tt := 255; tt < fig21Duration; tt++ {
			sum += r.cacheSlow[tt]
		}
		return sum / float64(fig21Duration-255)
	}
	none := mean2nd("None")
	trim := mean2nd("Trim-Reactive")
	extend := mean2nd("Extend-Proactive")
	migrate := mean2nd("Migrate-Proactive")
	if none < 2 {
		t.Errorf("None must stay degraded through contention 2, mean %v", none)
	}
	if trim < 1.5 {
		t.Errorf("Trim cannot resolve contention 2, mean %v", trim)
	}
	if extend > trim {
		t.Errorf("Extend (%v) must beat Trim (%v) at contention 2", extend, trim)
	}
	if migrate > trim {
		t.Errorf("Migrate (%v) must beat Trim (%v) at contention 2", migrate, trim)
	}
}
