package experiments

import (
	"fmt"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/report"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "abl-fleetmit",
		Title: "Ablation: mitigation policies at fleet scale (None/Trim/Extend/Migrate)",
		PaperClaim: "Fig. 21's single-server ladder holds fleet-wide: None thrashes " +
			"(stolen working-set memory, hard-fault storms, latency tail at the " +
			"backing store), Trim converts blind evictions into cold-page trims, " +
			"Extend and Migrate additionally resolve the deficits trimming cannot " +
			"cover — trims always precede escalation",
		Run: runFleetMitigation,
	})
}

// fleetMitigationPolicies lists the §4.4 ladder in escalation order.
func fleetMitigationPolicies() []agent.Policy {
	return []agent.Policy{agent.PolicyNone, agent.PolicyTrim, agent.PolicyExtend, agent.PolicyMigrate}
}

// The ablation runs the AggrCoach scheduler policy (P50 guaranteed
// portions, so working sets routinely spill into the oversubscribed
// region) with the data plane enabled and the pool shrunk to 2% of server
// memory, so the evaluation period actually exercises pool exhaustion —
// under the Coach P95 defaults the guaranteed portions absorb nearly all
// demand and no mitigation ladder is observable.
func runFleetMitigation(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	fleet, err := c.CapacityFleet(0.55)
	if err != nil {
		return nil, err
	}
	base := sim.ConfigForPolicy(scheduler.PolicyAggrCoach)
	model, err := c.Model(base.Percentile)
	if err != nil {
		return nil, err
	}

	volumes := &report.Table{
		Title: "Fleet mitigation and paging volumes per policy (GB over the evaluation period)",
		Headers: []string{"policy", "trimmed", "extended", "migrated", "hard faults",
			"soft-fault %", "stolen", "evicted cold"},
	}
	actions := &report.Table{
		Title: "Agent actions and access latency per policy",
		Headers: []string{"policy", "contentions", "trims", "extends", "migrations",
			"P50 ns", "P99 ns", "max ns", "first trim tick", "first escalation tick"},
		Note: "first-escalation tick is the first Extend (Extend policy) or Migrate " +
			"(Migrate policy) start; '-' = never. Trims precede escalation by design (§3.4).",
	}
	for _, p := range fleetMitigationPolicies() {
		cfg := base
		cfg.TrainUpTo = trainUpTo(tr)
		cfg.Model = model
		cfg.DataPlane = true
		cfg.MitigationPolicy = p
		cfg.MitigationMode = agent.Reactive
		cfg.DataPlanePoolFrac = 0.02
		cfg.DataPlaneUnallocFrac = 0.02
		res, err := sim.Run(tr, fleet, cfg)
		if err != nil {
			return nil, fmt.Errorf("abl-fleetmit %s: %w", p, err)
		}
		dp := res.DataPlane
		if dp == nil {
			return nil, fmt.Errorf("abl-fleetmit %s: no data-plane result", p)
		}
		volumes.AddRow(p.String(), dp.Totals.TrimmedGB, dp.Totals.ExtendedGB,
			dp.Totals.MigratedGB, dp.Totals.HardFaultGB, 100*dp.SoftFaultFrac(),
			dp.Totals.StolenGB, dp.Totals.EvictedColdGB)
		escalation := dp.FirstExtendTick
		if p == agent.PolicyMigrate {
			escalation = dp.FirstMigrateTick
		}
		actions.AddRow(p.String(), dp.Counters.Contentions, dp.Counters.Trims,
			dp.Counters.Extends, dp.Counters.Migrations,
			dp.AccessP50Ns(), dp.AccessP99Ns(), dp.AccessMaxNs(),
			tickOrDash(dp.FirstTrimTick), tickOrDash(escalation))
	}
	return []*report.Table{volumes, actions}, nil
}

func tickOrDash(t int) any {
	if t < 0 {
		return "-"
	}
	return t
}
