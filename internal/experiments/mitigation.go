package experiments

import (
	"fmt"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/memsim"
	"github.com/coach-oss/coach/internal/report"
	"github.com/coach-oss/coach/internal/workload"
)

// The Fig. 21 storyline (§4.4): three 8GB CoachVMs share a server —
// Cache (3GB PA / 5GB VA), KV-Store (3GB PA / 5GB VA) and Video Conf
// (1GB PA / 7GB VA) — over an oversubscribed pool. Video Conf uses more
// memory than predicted, causing two contentions: the first is resolvable
// by trimming cold memory; the second exceeds the available cold memory
// and requires extending the pool or migrating a VM.
const (
	fig21PoolGB    = 8.0
	fig21UnallocGB = 8.0
	fig21Duration  = 330 // seconds

	cacheID = 1
	kvID    = 2
	vcID    = 3
)

// fig21Policy names one mitigation configuration of the experiment.
type fig21Policy struct {
	name   string
	policy agent.Policy
	mode   agent.Mode
}

func fig21Policies() []fig21Policy {
	return []fig21Policy{
		{"None", agent.PolicyNone, agent.Reactive},
		{"Trim-Reactive", agent.PolicyTrim, agent.Reactive},
		{"Trim-Proactive", agent.PolicyTrim, agent.Proactive},
		{"Extend-Reactive", agent.PolicyExtend, agent.Reactive},
		{"Extend-Proactive", agent.PolicyExtend, agent.Proactive},
		{"Migrate-Reactive", agent.PolicyMigrate, agent.Reactive},
		{"Migrate-Proactive", agent.PolicyMigrate, agent.Proactive},
	}
}

// vcWSS drives Video Conf's working set: steady at 3GB after a small
// warmup bump (leaving ~0.5GB of its own cold memory), then two growth
// ramps — to 5GB starting at t=135 (first contention, resolvable by
// trimming the colocated VMs' cold memory) and to 7GB starting at t=255
// (second contention, exceeding all remaining cold memory).
func vcWSS(t float64) float64 {
	switch {
	case t < 5:
		return 2.5
	case t < 25: // warmup bump: touch extra memory, then release it
		return 3.5
	case t < 135:
		return 3
	case t < 165: // first contention: ramp 3 -> 5.5
		return 3 + 2.5*(t-135)/30
	case t < 255:
		return 5.5
	case t < 285: // second contention: ramp 5.5 -> 7.5
		return 5.5 + 2*(t-255)/30
	default:
		return 7.5
	}
}

// cacheKVWSS drives Cache and KV-Store: steady 4GB working sets with a
// warmup overshoot (after Video Conf settles) that leaves 1GB of cold
// memory each — the reserve the Trim policy lives off.
func cacheKVWSS(t float64) float64 {
	switch {
	case t < 5:
		return 3.5
	case t < 30:
		return 4
	case t < 60:
		return 5
	default:
		return 4
	}
}

// fig21Run holds one policy's time series.
type fig21Run struct {
	name      string
	poolAvail []float64 // per second
	cacheSlow []float64
	kvSlow    []float64
	agent     *agent.Agent
}

func runFig21Policy(p fig21Policy) (*fig21Run, error) {
	return runFig21PolicyWithInterval(p, 0)
}

// runFig21PolicyWithInterval runs the storyline with an overridden agent
// monitoring interval (0 = the §3.4 default of 20 seconds).
func runFig21PolicyWithInterval(p fig21Policy, monitorIntervalS float64) (*fig21Run, error) {
	cfg := memsim.DefaultConfig()
	srv := memsim.NewServer(cfg, fig21PoolGB, fig21UnallocGB)

	mk := func(id int, pa float64) (*memsim.VMMem, error) {
		vm, err := memsim.NewVMMem(id, 8, pa)
		if err != nil {
			return nil, err
		}
		return vm, srv.AddVM(vm)
	}
	cacheVM, err := mk(cacheID, 3)
	if err != nil {
		return nil, err
	}
	kvVM, err := mk(kvID, 3)
	if err != nil {
		return nil, err
	}
	vcVM, err := mk(vcID, 1)
	if err != nil {
		return nil, err
	}

	cacheSpec, err := workload.SpecByName("Cache")
	if err != nil {
		return nil, err
	}
	kvSpec, err := workload.SpecByName("KV-Store")
	if err != nil {
		return nil, err
	}
	// The Fig. 21 instances are 8GB CVMs with ~4GB working sets; the
	// phase pattern is driven explicitly by the storyline.
	for _, s := range []*workload.Spec{&cacheSpec, &kvSpec} {
		s.VMSizeGB = 8
		s.WSSGB = 4
		s.PhaseAmpGB = 0
		s.ChurnGBs = 0
	}
	cacheRun, err := workload.NewRunner(cacheSpec, cacheVM, cfg)
	if err != nil {
		return nil, err
	}
	kvRun, err := workload.NewRunner(kvSpec, kvVM, cfg)
	if err != nil {
		return nil, err
	}

	aCfg := agent.DefaultConfig()
	aCfg.Policy = p.policy
	aCfg.Mode = p.mode
	if monitorIntervalS > 0 {
		aCfg.MonitorIntervalS = monitorIntervalS
	}
	// The pool runs intentionally full in this storyline; mitigations aim
	// at pending demand rather than permanent headroom.
	aCfg.HeadroomGB = 0.25
	ag, err := agent.New(aCfg, srv)
	if err != nil {
		return nil, err
	}

	run := &fig21Run{name: p.name, agent: ag}
	cacheBase := cacheRun.BaselineOpNs()
	kvBase := kvRun.BaselineOpNs()
	for t := 0; t < fig21Duration; t++ {
		now := float64(t)
		cacheVM.SetWSS(cacheKVWSS(now))
		kvVM.SetWSS(cacheKVWSS(now))
		if srv.VM(vcID) != nil { // may have been migrated away
			vcVM.SetWSS(vcWSS(now))
		}
		st, err := srv.Tick(1)
		if err != nil {
			return nil, fmt.Errorf("fig21 %s t=%d: %w", p.name, t, err)
		}
		ag.Tick(1, st)

		run.poolAvail = append(run.poolAvail, srv.PoolFree())
		run.cacheSlow = append(run.cacheSlow, cacheRun.TickSlowdown(st.Get(cacheID), cacheBase))
		run.kvSlow = append(run.kvSlow, kvRun.TickSlowdown(st.Get(kvID), kvBase))
	}
	return run, nil
}

func runFig21(c *Context) ([]*report.Table, error) {
	var runs []*fig21Run
	for _, p := range fig21Policies() {
		run, err := runFig21Policy(p)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}

	sample := []int{0, 30, 90, 135, 145, 155, 165, 180, 240, 260, 270, 280, 290, 300, 315, 329}
	headers := []string{"t (s)"}
	for _, r := range runs {
		headers = append(headers, r.name)
	}

	avail := &report.Table{Title: "Available oversubscribed memory (GB) over time", Headers: headers}
	cache := &report.Table{Title: "Cache normalized P99 slowdown over time", Headers: headers}
	kv := &report.Table{Title: "KV-Store normalized P99 slowdown over time", Headers: headers}
	for _, t := range sample {
		ra := []any{t}
		rc := []any{t}
		rk := []any{t}
		for _, r := range runs {
			ra = append(ra, r.poolAvail[t])
			rc = append(rc, r.cacheSlow[t])
			rk = append(rk, r.kvSlow[t])
		}
		avail.AddRow(ra...)
		cache.AddRow(rc...)
		kv.AddRow(rk...)
	}

	summary := &report.Table{
		Title: "Mitigation summary (cache VM)",
		Headers: []string{"policy", "peak slowdown", "mean 1st contention", "mean 2nd contention",
			"final pool avail GB", "trims", "extends", "migrations"},
	}
	window := func(r *fig21Run, from, to int) (peak, mean float64) {
		var sum float64
		for t := from; t < to; t++ {
			if r.cacheSlow[t] > peak {
				peak = r.cacheSlow[t]
			}
			sum += r.cacheSlow[t]
		}
		return peak, sum / float64(to-from)
	}
	for _, r := range runs {
		peak, _ := window(r, 135, fig21Duration)
		_, c1 := window(r, 135, 255)
		_, c2 := window(r, 255, fig21Duration)
		summary.AddRow(r.name, peak, c1, c2, r.poolAvail[fig21Duration-1],
			r.agent.TrimsStarted, r.agent.ExtendsStarted, r.agent.MigrationsStarted)
	}
	return []*report.Table{avail, cache, kv, summary}, nil
}
