package experiments

import (
	"fmt"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/report"
	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "abl-faults",
		Title: "Ablation: failure domains — VM loss and downtime under the chaos fault schedule",
		PaperClaim: "A crashing fleet exposes the capacity/robustness trade in both " +
			"directions. With headroom, the guaranteed-only fleet runs emptier " +
			"(it rejected more up front) and refits every evicted VM, while " +
			"Coach's denser packing converts a couple of evictions into losses. " +
			"Under saturation the sign flips: Coach's per-VM reservations are " +
			"smaller, so the same servers absorb more re-admissions — fewer lost " +
			"VMs and less downtime than the guaranteed-only fleet despite " +
			"admitting more. Every refitted VM is back within one 5-minute tick",
		Run: runAblFaults,
	})
}

// faultLadder is one row of the ablation.
type faultLadder struct {
	name      string
	policy    scheduler.PolicyKind
	dataPlane bool
}

// runAblFaults replays the chaos scenario preset — one pinned
// crash/recover cycle plus seed-driven chaos across the fleet — through
// the simulator's failure-domain engine, contrasting no oversubscription
// with Coach, with and without the pressure-aware data-plane recovery
// path. The uniform four-servers-per-cluster fleet is tight enough that
// crashes matter (a crashed server's VMs strain its three siblings) but
// roomy enough that both policies admit most arrivals, so the rows
// compare recovery outcomes, not admission rates.
func runAblFaults(c *Context) ([]*report.Table, error) {
	sp, err := scenario.Preset("chaos")
	if err != nil {
		return nil, err
	}
	sub := NewContext(c.Scale)
	sub.TrainWorkers = c.TrainWorkers
	sub.Scenario = c.Scale.ScenarioSpec(sp)

	tr, err := sub.Trace()
	if err != nil {
		return nil, err
	}
	fleet := sub.Fleet(4)
	model, err := sub.Model(95)
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title: "Failure domains under the chaos preset (four servers per cluster)",
		Headers: []string{"ladder", "placed %", "crashes", "recoveries", "evicted",
			"replaced", "lost", "loss %", "downtime h"},
		Note: "evicted VMs are re-admitted through the recovery placement path " +
			"(replaced) or dropped when no feasible server remains (lost); downtime " +
			"attributes one 5-minute tick per re-admission and the remaining " +
			"lifetime per lost VM.",
	}
	for _, l := range []faultLadder{
		{name: "None", policy: scheduler.PolicyNone},
		{name: "Coach", policy: scheduler.PolicyCoach},
		{name: "Coach+Recovery", policy: scheduler.PolicyCoach, dataPlane: true},
	} {
		cfg := sim.ConfigForPolicy(l.policy)
		cfg.TrainUpTo = trainUpTo(tr)
		cfg.Scenario = sub.Scenario // threads the faults: section into the run
		if l.policy != scheduler.PolicyNone {
			cfg.Model = model
		}
		if l.dataPlane {
			cfg.DataPlane = true
			cfg.MitigationPolicy = agent.PolicyMigrate
			cfg.MitigationMode = agent.Reactive
		}
		res, err := sim.Run(tr, fleet, cfg)
		if err != nil {
			return nil, fmt.Errorf("abl-faults %s: %w", l.name, err)
		}
		f := res.Faults
		if f == nil || f.Crashes == 0 {
			return nil, fmt.Errorf("abl-faults %s: fault schedule never fired", l.name)
		}
		lossPct := 0.0
		if f.EvictedVMs > 0 {
			lossPct = 100 * float64(f.LostVMs) / float64(f.EvictedVMs)
		}
		t.AddRow(l.name, 100*res.PlacedFrac(), f.Crashes, f.Recoveries,
			f.EvictedVMs, f.ReplacedVMs, f.LostVMs, lossPct,
			float64(f.DowntimeTicks)/12)
	}
	return []*report.Table{t}, nil
}
