package experiments

import (
	"fmt"
	"time"

	"github.com/coach-oss/coach/internal/characterize"
	"github.com/coach-oss/coach/internal/report"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Fig. 2: resource hours and VM count vs. VM duration",
		PaperClaim: "VMs lasting more than one day are ~28% of VMs but consume " +
			"~96% of core-hours and GB-hours",
		Run: runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Fig. 3: resource hours and VM count vs. VM size",
		PaperClaim: "VMs with >=32GB are ~20% of VMs but consume over 60% of " +
			"GB-hours; median VM has 4 cores and <16GB",
		Run: runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Fig. 4: average stranding per resource vs. oversubscription",
		PaperClaim: "No-oversub stranding: CPU lowest (~8%), then memory (~18%), " +
			"network (~29%), SSD (~54%); oversubscribing CPU raises CPU stranding " +
			"and lowers the others; CPU+Mem lowers memory's share of bottlenecks",
		Run: runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Fig. 5: bottleneck resource per cluster",
		PaperClaim: "Without oversubscription CPU is the most common bottleneck, " +
			"then memory, then network; oversubscribing CPU shifts the bottleneck " +
			"to memory and network; clusters differ (C1 CPU-bound, C4 memory-bound)",
		Run: runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Fig. 6: CPU vs. memory utilization correlation",
		PaperClaim: "Most VMs average <50% CPU; CPU ranges reach 60% while memory " +
			"stays within 30%; half of VMs have a memory range under 10%",
		Run: runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Fig. 7: one VM's weekly CPU pattern in 3x8h windows",
		PaperClaim: "Daily peaks recur in the same windows; the current window max " +
			"is close to the lifetime window max",
		Run: runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Fig. 8: share of VMs with peaks/valleys per 4h window",
		PaperClaim: "CPU peaks and valleys are spread across all six windows; " +
			"<10% of VMs have no CPU peaks; ~70% of VMs have memory peaks",
		Run: runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Fig. 9: peak consistency across consecutive days",
		PaperClaim: "With 6h windows, ~80% of window maxima change at most 20% " +
			"(CPU) and at most 5% (memory) day over day",
		Run: runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Fig. 10: daily savings for multiple window lengths (one cluster)",
		PaperClaim: "1x24h saves ~8% of both resources; 4x6h saves ~15% memory and " +
			"~20% CPU; 5-minute ideal saves ~18% memory and ~34% CPU",
		Run: runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Fig. 11: savings distribution across clusters per window config",
		PaperClaim: "Savings grow with window count and plateau around 6x4h; CPU " +
			"savings exceed memory savings",
		Run: runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Fig. 12: predictability of new VMs from prior VMs per grouping",
		PaperClaim: "Grouping by configuration gives many priors with huge ranges; " +
			"subscription+configuration gives the fewest priors with the smallest " +
			"ranges; memory peaks are more predictable than CPU",
		Run: runFig12,
	})
	register(Experiment{
		ID:    "fig17",
		Title: "Fig. 17: oversubscribed accesses vs. prediction percentile",
		PaperClaim: "VA accesses stay far below the worst-case (100-P) bound; finer " +
			"windows and lower percentiles increase VA accesses; with 4h windows at " +
			"P80, 99% of VMs see <5% VA accesses",
		Run: runFig17,
	})
}

func runFig2(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Share of resource hours / VMs from VMs lasting longer than threshold",
		Headers: []string{"duration >", "% core-hours", "% GB-hours", "% of VMs"},
	}
	for _, row := range characterize.DurationHours(tr) {
		t.AddRow(fmtDuration(row.Threshold), row.CPUHoursPct, row.MemHoursPct, row.VMsPct)
	}
	return []*report.Table{t}, nil
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= 24*time.Hour:
		return fmt.Sprintf("%gd", d.Hours()/24)
	case d >= time.Hour:
		return fmt.Sprintf("%gh", d.Hours())
	default:
		return fmt.Sprintf("%gm", d.Minutes())
	}
}

func runFig3(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	cpu := &report.Table{
		Title:   "Share of core-hours / VMs from VMs at least as large (cores)",
		Headers: []string{"cores >=", "% core-hours", "% of VMs"},
	}
	for _, row := range characterize.SizeHours(tr, resources.CPU, characterize.CoreThresholds) {
		cpu.AddRow(row.Threshold, row.HoursPct, row.VMsPct)
	}
	mem := &report.Table{
		Title:   "Share of GB-hours / VMs from VMs at least as large (memory)",
		Headers: []string{"GB >=", "% GB-hours", "% of VMs"},
	}
	for _, row := range characterize.SizeHours(tr, resources.Memory, characterize.MemThresholds) {
		mem.AddRow(row.Threshold, row.HoursPct, row.VMsPct)
	}
	mc, mm := characterize.MedianVMSize(tr)
	mem.Note = fmt.Sprintf("median VM: %.0f cores, %.0f GB", mc, mm)
	return []*report.Table{cpu, mem}, nil
}

func runFig4(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	res := characterize.Stranding(tr, c.Fleet(strandingServersPer(c.Scale)))
	t := &report.Table{
		Title:   "Average stranded capacity (%) per resource",
		Headers: []string{"config", "CPU", "Memory", "Network", "SSD"},
	}
	for li, level := range characterize.OversubLevels {
		s := res.StrandedPct[li]
		t.AddRow(level.String(), s[resources.CPU], s[resources.Memory], s[resources.Network], s[resources.SSD])
	}
	return []*report.Table{t}, nil
}

func strandingServersPer(s Scale) int {
	switch s {
	case ScaleSmall:
		return 2
	case ScaleMedium:
		return 4
	default:
		return 6
	}
}

func runFig5(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	fleet := c.Fleet(strandingServersPer(c.Scale))
	res := characterize.Stranding(tr, fleet)
	var tables []*report.Table
	for li, level := range characterize.OversubLevels {
		t := &report.Table{
			Title:   fmt.Sprintf("Bottleneck resource share per cluster (%% of time), %s", level),
			Headers: []string{"cluster", "CPU", "Memory", "Network", "SSD"},
		}
		for ci := 0; ci <= len(fleet.Clusters); ci++ {
			name := "ALL"
			if ci < len(fleet.Clusters) {
				name = fleet.Clusters[ci].Name
			}
			b := res.BottleneckPct[li][ci]
			t.AddRow(name, b[resources.CPU], b[resources.Memory], b[resources.Network], b[resources.SSD])
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runFig6(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	s := characterize.Utilization(tr)
	t := &report.Table{
		Title:   "CPU vs. memory utilization statistics (long-running VMs)",
		Headers: []string{"statistic", "value"},
	}
	t.AddRow("Pearson corr. of mean CPU vs. mean memory", s.MeanCorrelation)
	t.AddRow("Pearson corr. of CPU range vs. memory range", s.RangeCorrelation)
	t.AddRow("% VMs with mean CPU < 50%", s.CPUMeanBelow50Pct)
	t.AddRow("median CPU range (P95-P5, % of alloc)", 100*s.CPURangeViolin.Median)
	t.AddRow("P75 CPU range", 100*s.CPURangeViolin.P75)
	t.AddRow("median memory range", 100*s.MemRangeViolin.Median)
	t.AddRow("P75 memory range", 100*s.MemRangeViolin.P75)
	t.AddRow("% VMs with memory range < 10%", s.MemRangeBelow10Pct)
	t.AddRow("% VMs with memory range > 50%", s.MemRangeAbove50Pct)
	return []*report.Table{t}, nil
}

func runFig7(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	// Pick a long-running VM with a clear diurnal pattern: the VM with
	// the largest CPU utilization range among week-long VMs.
	var best *traceVM
	for _, vm := range tr.LongRunning() {
		if vm.DurationSamples() < 7*timeseries.SamplesPerDay {
			continue
		}
		r := vm.Util[resources.CPU].UtilRange(5, 95)
		if best == nil || r > best.rng {
			best = &traceVM{vm: vm, rng: r}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("fig7: no week-long VM in trace")
	}
	w := timeseries.Windows{PerDay: 3}
	life := best.vm.Util[resources.CPU].LifetimeWindowMax(w)
	t := &report.Table{
		Title:   fmt.Sprintf("VM %d weekly CPU pattern, 3x8h windows (%% utilization)", best.vm.ID),
		Headers: []string{"day", "win 0-8h", "win 8-16h", "win 16-24h"},
	}
	days := best.vm.Util[resources.CPU].Days()
	if days > 7 {
		days = 7
	}
	for d := 0; d < days; d++ {
		wm := best.vm.Util[resources.CPU].DayWindowMax(d, w)
		t.AddRow(fmt.Sprintf("day %d", d), 100*wm[0], 100*wm[1], 100*wm[2])
	}
	t.AddRow("lifetime max", 100*life[0], 100*life[1], 100*life[2])
	return []*report.Table{t}, nil
}

type traceVM struct {
	vm  *trace.VM
	rng float64
}

func runFig8(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	w := timeseries.Windows{PerDay: 6}
	var tables []*report.Table
	for _, spec := range []struct {
		kind  resources.Kind
		peaks bool
		title string
	}{
		{resources.CPU, true, "CPU peaks"},
		{resources.CPU, false, "CPU valleys"},
		{resources.Memory, true, "Memory peaks"},
		{resources.Memory, false, "Memory valleys"},
	} {
		rows := characterize.PeaksValleys(tr, spec.kind, w, spec.peaks)
		t := &report.Table{
			Title: fmt.Sprintf("%s per 4h window (%% of that day's peak/valley VMs)", spec.title),
			Headers: []string{"day", "0-4h", "4-8h", "8-12h", "12-16h", "16-20h", "20-24h",
				"none %"},
		}
		for _, r := range rows {
			cells := []any{r.Weekday.String()[:3]}
			for _, p := range r.WindowPct {
				cells = append(cells, p)
			}
			cells = append(cells, r.NonePct)
			t.AddRow(cells...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runFig9(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	configs := []timeseries.Windows{{PerDay: 24}, {PerDay: 12}, {PerDay: 8}, {PerDay: 6}, {PerDay: 4}, {PerDay: 2}, {PerDay: 1}}
	thresholds := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50}
	var tables []*report.Table
	for _, k := range []resources.Kind{resources.CPU, resources.Memory} {
		cdf := characterize.ConsistencyCDF(tr, k, configs, thresholds)
		t := &report.Table{
			Title:   fmt.Sprintf("%v: CDF of |day-over-day window max difference| (%% of window pairs)", k),
			Headers: []string{"window", "<=0%", "<=5%", "<=10%", "<=15%", "<=20%", "<=30%", "<=50%"},
		}
		for _, w := range configs {
			cells := []any{w.String()}
			for _, p := range cdf[w] {
				cells = append(cells, 100*p.Fraction)
			}
			t.AddRow(cells...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runFig10(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	configs := timeseries.CommonWindowConfigs()
	var tables []*report.Table
	for _, k := range []resources.Kind{resources.CPU, resources.Memory} {
		rows := characterize.Savings(tr, 0, k, configs)
		t := &report.Table{
			Title:   fmt.Sprintf("%% %v saved per day in cluster C1 per window config", k),
			Headers: []string{"day", "1x24h", "2x12h", "4x6h", "6x4h", "8x3h", "12x2h", "24x1h", "ideal"},
		}
		for _, r := range rows {
			cells := []any{fmt.Sprintf("day %d", r.Day)}
			for _, p := range r.Pct {
				cells = append(cells, p)
			}
			t.AddRow(cells...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runFig11(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	configs := timeseries.CommonWindowConfigs()
	labels := []string{"1x24h", "2x12h", "4x6h", "6x4h", "8x3h", "12x2h", "24x1h", "ideal"}
	var tables []*report.Table
	for _, k := range []resources.Kind{resources.CPU, resources.Memory} {
		violins := characterize.SavingsViolin(tr, k, configs)
		t := &report.Table{
			Title:   fmt.Sprintf("%% %v saved across clusters (violin summary)", k),
			Headers: []string{"windows", "min", "P25", "median", "P75", "max", "mean"},
		}
		for i, v := range violins {
			t.AddRow(labels[i], v.Min, v.P25, v.Median, v.P75, v.Max, v.Mean)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runFig12(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	var tables []*report.Table
	for _, k := range []resources.Kind{resources.CPU, resources.Memory} {
		t := &report.Table{
			Title: fmt.Sprintf("%v peak predictability per grouping", k),
			Headers: []string{"grouping", "median prior VMs", "median peak range (pts)",
				"% within 10pts", "% within 20pts", "evaluated"},
		}
		for _, g := range characterize.Groups(tr, k) {
			t.AddRow(g.Grouping.String(), g.MedianPriorVMs, g.MedianPeakRangePct,
				g.Within10Pct, g.Within20Pct, g.Evaluated)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runFig17(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	configs := []timeseries.Windows{{PerDay: 24}, {PerDay: 12}, {PerDay: 6}, {PerDay: 4}, {PerDay: 2}, {PerDay: 1}}
	rows := characterize.PercentileTradeoff(tr, resources.Memory, configs)
	byPct := make(map[float64]map[timeseries.Windows]float64)
	for _, r := range rows {
		if byPct[r.Percentile] == nil {
			byPct[r.Percentile] = make(map[timeseries.Windows]float64)
		}
		byPct[r.Percentile][r.Windows] = r.MeanOversubAccessPct
	}
	a := &report.Table{
		Title:   "Mean % of memory accesses to the oversubscribed portion",
		Headers: []string{"percentile", "1h", "2h", "4h", "6h", "12h", "24h", "worst"},
	}
	for _, pct := range characterize.TradeoffPercentiles {
		m := byPct[pct]
		a.AddRow(fmt.Sprintf("P%.0f", pct),
			m[timeseries.Windows{PerDay: 24}], m[timeseries.Windows{PerDay: 12}],
			m[timeseries.Windows{PerDay: 6}], m[timeseries.Windows{PerDay: 4}],
			m[timeseries.Windows{PerDay: 2}], m[timeseries.Windows{PerDay: 1}],
			100-pct)
	}

	thresholds := []float64{0, 1, 2, 5, 10, 20}
	cdf := characterize.OversubAccessCDF(tr, resources.Memory, timeseries.Windows{PerDay: 6}, thresholds)
	b := &report.Table{
		Title:   "CDF of per-VM oversubscribed access %% (4h windows)",
		Headers: []string{"percentile", "<=0%", "<=1%", "<=2%", "<=5%", "<=10%", "<=20%"},
	}
	for _, pct := range characterize.TradeoffPercentiles {
		cells := []any{fmt.Sprintf("P%.0f", pct)}
		for _, p := range cdf[pct] {
			cells = append(cells, 100*p.Fraction)
		}
		b.AddRow(cells...)
	}
	return []*report.Table{a, b}, nil
}
