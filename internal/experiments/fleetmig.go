package experiments

import (
	"fmt"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/report"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "abl-fleetmig",
		Title: "Ablation: fleet migration ladders — no-migration vs same-shard vs cross-shard",
		PaperClaim: "Live migration is the mitigation ladder's escape valve for pool " +
			"thrashing, but it only relieves pressure fleet-wide when a completed " +
			"migration moves the scheduler's capacity bookkeeping together with the " +
			"memory and may cross cluster boundaries: same-shard migration bounces " +
			"VMs between equally-pressured pools (failed landings, repeated pre-copy " +
			"volume), while the cross-shard exchange lands them on pools that can " +
			"absorb their working sets — fewer stolen working-set GB and a shorter " +
			"hard-fault tail at equal pool pressure",
		Run: runFleetMigrationLadders,
	})
}

// fleetMigLadder is one row of the ablation.
type fleetMigLadder struct {
	name       string
	mitigation agent.Policy
	crossShard bool
}

// fleetMigLadders sweeps how completed migrations may land: not at all
// (the Trim ladder), within the home cluster shard only, or fleet-wide
// through the sample-boundary exchange.
func fleetMigLadders() []fleetMigLadder {
	return []fleetMigLadder{
		{name: "NoMigration", mitigation: agent.PolicyTrim},
		{name: "SameShard", mitigation: agent.PolicyMigrate},
		{name: "CrossShard", mitigation: agent.PolicyMigrate, crossShard: true},
	}
}

// The ablation reuses abl-fleetmit's pressure recipe — AggrCoach P50
// guaranteed portions with the oversubscribed pool shrunk to 2% of
// server memory — over two fleets:
//
//   - The capacity fleet at 1.1x peak demand. Migration needs
//     schedulable headroom somewhere: at abl-fleetmit's 0.55x the
//     packed fleet leaves no feasible target server anywhere, every
//     completed migration re-lands on its contended source, and the
//     ladders collapse onto each other. 1.1x keeps the same per-server
//     pool pressure (pools are a fraction of server memory, not of
//     slack) while letting the valve actually open.
//   - A skewed hot/cold fleet — one small-memory cluster whose tenants
//     overwhelm its pool beside a memory-rich cluster with pool room to
//     spare (the Fig. 5 stranding skew pushed to its extreme).
//     Same-shard migration can only re-land VMs inside the hot cluster;
//     the exchange is the only route to the absorbing pools.
func runFleetMigrationLadders(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	base := sim.ConfigForPolicy(scheduler.PolicyAggrCoach)
	model, err := c.Model(base.Percentile)
	if err != nil {
		return nil, err
	}

	capacityFleet, err := c.CapacityFleet(1.1)
	if err != nil {
		return nil, err
	}
	skewed := cluster.NewFleet([]cluster.Config{
		{Name: "hot", Spec: cluster.ServerSpec{Name: "small", Generation: 1,
			Capacity: resources.NewVector(64, 128, 40, 4096)}, Servers: 1},
		{Name: "cold", Spec: cluster.ServerSpec{Name: "big", Generation: 4,
			Capacity: resources.NewVector(320, 4096, 100, 16384)}, Servers: 4},
	})

	var tables []*report.Table
	for _, sc := range []struct {
		title string
		fleet *cluster.Fleet
	}{
		{"Fleet migration ladders — capacity fleet at 1.1x peak demand (AggrCoach, 2% pools)", capacityFleet},
		{"Fleet migration ladders — skewed hot/cold fleet (AggrCoach, 2% pools)", skewed},
	} {
		t := &report.Table{
			Title: sc.title,
			Headers: []string{"ladder", "migrations", "same-shard", "cross-shard", "failed",
				"migrated GB", "warm GB", "stolen GB", "hard-fault GB", "P99 ns", "max ns"},
			Note: "same/cross-shard count landed migrations; failed ones re-land on their " +
				"contended source. Warm GB is pre-copied volume arriving resident at targets.",
		}
		for _, l := range fleetMigLadders() {
			cfg := base
			cfg.TrainUpTo = trainUpTo(tr)
			cfg.Model = model
			cfg.DataPlane = true
			cfg.MitigationPolicy = l.mitigation
			cfg.MitigationMode = agent.Reactive
			cfg.DataPlanePoolFrac = 0.02
			cfg.DataPlaneUnallocFrac = 0.02
			cfg.CrossShardMigration = l.crossShard
			res, err := sim.Run(tr, sc.fleet, cfg)
			if err != nil {
				return nil, fmt.Errorf("abl-fleetmig %s: %w", l.name, err)
			}
			dp := res.DataPlane
			if dp == nil {
				return nil, fmt.Errorf("abl-fleetmig %s: no data-plane result", l.name)
			}
			t.AddRow(l.name, dp.Counters.Migrations, dp.SameShardMigrations,
				dp.CrossShardMigrations, dp.FailedMigrations,
				dp.Totals.MigratedGB, dp.WarmArrivedGB, dp.Totals.StolenGB,
				dp.Totals.HardFaultGB, dp.AccessP99Ns(), dp.AccessMaxNs())
		}
		tables = append(tables, t)
	}
	return tables, nil
}
