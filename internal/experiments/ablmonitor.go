package experiments

import (
	"fmt"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/report"
)

func init() {
	register(Experiment{
		ID:    "abl-monitor",
		Title: "Ablation: monitoring interval vs. contention recovery",
		PaperClaim: "§3.4 chooses 20 seconds: memory spikes gradually, so 20s " +
			"detects contention in time; much coarser monitoring reacts late and " +
			"lets slowdown persist",
		Run: runAblMonitor,
	})
}

// runAblMonitor reruns the Fig. 21 storyline under the Extend-Reactive
// policy while sweeping the agent's monitoring interval.
func runAblMonitor(c *Context) ([]*report.Table, error) {
	t := &report.Table{
		Title: "Extend-Reactive mitigation vs. monitoring interval (Fig. 21 storyline)",
		Headers: []string{"interval (s)", "peak cache slowdown", "mean 2nd contention",
			"contentions detected", "extends"},
	}
	for _, interval := range []float64{5, 10, 20, 60, 120} {
		run, err := runFig21PolicyWithInterval(fig21Policy{
			name:   fmt.Sprintf("Extend-Reactive@%gs", interval),
			policy: agent.PolicyExtend, mode: agent.Reactive,
		}, interval)
		if err != nil {
			return nil, err
		}
		var peak, sum float64
		n := 0
		for tt := 255; tt < fig21Duration; tt++ {
			if run.cacheSlow[tt] > peak {
				peak = run.cacheSlow[tt]
			}
			sum += run.cacheSlow[tt]
			n++
		}
		t.AddRow(interval, peak, sum/float64(n),
			run.agent.ContentionsDetected, run.agent.ExtendsStarted)
	}
	return []*report.Table{t}, nil
}
