package experiments

import (
	"github.com/coach-oss/coach/internal/report"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "abl-scenarios",
		Title: "Ablation: Coach vs. None across the workload scenario presets",
		PaperClaim: "Coach's capacity win holds beyond the calibrated baseline mix: " +
			"across skewed, bursty, strongly diurnal, surge-hit and high-churn " +
			"fleets it packs more VMs into the same servers (the robustness " +
			"argument behind §4.3's sensitivity discussion)",
		Run: runAblScenarios,
	})
}

// runAblScenarios replays every shipped scenario preset through the
// full pipeline — scenario -> trace -> trained predictor -> sharded
// simulator — on a fleet sized to 55% of that preset's own peak demand,
// and contrasts the Coach policy with no oversubscription. Each preset
// gets a fresh sub-context so traces, fleets and models never leak
// between scenarios.
func runAblScenarios(c *Context) ([]*report.Table, error) {
	t := &report.Table{
		Title: "Coach vs. None across scenario presets (fleet at 55% of peak demand)",
		Headers: []string{"preset", "VMs", "None placed %", "Coach placed %",
			"gain pts", "CPU viol %", "mem viol %", "under-alloc mem %"},
	}
	for _, name := range scenario.PresetNames {
		sp, err := scenario.Preset(name)
		if err != nil {
			return nil, err
		}
		sub := NewContext(c.Scale)
		sub.TrainWorkers = c.TrainWorkers
		sub.Scenario = c.Scale.ScenarioSpec(sp)

		tr, err := sub.Trace()
		if err != nil {
			return nil, err
		}
		fleet, err := sub.CapacityFleet(0.55)
		if err != nil {
			return nil, err
		}
		model, err := sub.Model(95)
		if err != nil {
			return nil, err
		}

		none := sim.ConfigForPolicy(scheduler.PolicyNone)
		none.TrainUpTo = trainUpTo(tr)
		noneRes, err := sim.Run(tr, fleet, none)
		if err != nil {
			return nil, err
		}

		coach := sim.ConfigForPolicy(scheduler.PolicyCoach)
		coach.TrainUpTo = trainUpTo(tr)
		coach.Model = model
		coachRes, err := sim.Run(tr, fleet, coach)
		if err != nil {
			return nil, err
		}

		t.AddRow(name, len(tr.VMs),
			100*noneRes.PlacedFrac(), 100*coachRes.PlacedFrac(),
			100*(coachRes.PlacedFrac()-noneRes.PlacedFrac()),
			100*coachRes.CPUViolationFrac(), 100*coachRes.MemViolationFrac(),
			100*coachRes.UnderAllocFrac(resources.Memory))
	}
	return []*report.Table{t}, nil
}
