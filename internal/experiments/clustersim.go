package experiments

import (
	"fmt"

	"github.com/coach-oss/coach/internal/report"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig19",
		Title: "Fig. 19: long-term prediction effectiveness by percentile",
		PaperClaim: "Average over-allocation error is 23-30% for CPU and 19-24% for " +
			"memory, shrinking as the percentile drops; under-allocations are rare " +
			"(memory 1-2%, CPU 3-8%) and grow as the percentile drops",
		Run: runFig19,
	})
	register(Experiment{
		ID:    "fig20",
		Title: "Fig. 20: packing capacity and performance violations per policy",
		PaperClaim: "Single hosts ~22% more VMs than None; Coach adds ~16% over " +
			"Single; AggrCoach ~9% over Coach; violations stay small and ordered " +
			"None < Single < Coach < AggrCoach; Coach also needs ~44% fewer servers",
		Run: runFig20,
	})
}

func runFig19(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	fleet, err := c.CapacityFleet(2.0) // ample fleet: measure prediction, not packing
	if err != nil {
		return nil, err
	}
	over := &report.Table{
		Title:   "Average over-allocation error (% of allocation)",
		Headers: []string{"percentile", "CPU", "Memory"},
	}
	under := &report.Table{
		Title:   "VMs under-allocated (%)",
		Headers: []string{"percentile", "CPU", "Memory"},
	}
	for _, pct := range []float64{95, 90, 85} {
		cfg := sim.ConfigForPolicy(scheduler.PolicyCoach)
		cfg.Percentile = pct
		cfg.TrainUpTo = tr.Horizon / 2
		res, err := sim.Run(tr, fleet, cfg)
		if err != nil {
			return nil, err
		}
		over.AddRow(fmt.Sprintf("P%.0f", pct),
			100*res.MeanOverAllocFrac(resources.CPU),
			100*res.MeanOverAllocFrac(resources.Memory))
		under.AddRow(fmt.Sprintf("P%.0f", pct),
			100*res.UnderAllocFrac(resources.CPU),
			100*res.UnderAllocFrac(resources.Memory))
	}
	return []*report.Table{over, under}, nil
}

func runFig20(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	// Fixed, under-provisioned fleet: the capacity comparison packs VMs
	// until the fleet rejects.
	tight, err := c.CapacityFleet(0.55)
	if err != nil {
		return nil, err
	}
	results := make(map[scheduler.PolicyKind]*sim.Result, len(scheduler.Policies))
	for _, p := range scheduler.Policies {
		cfg := sim.ConfigForPolicy(p)
		cfg.TrainUpTo = tr.Horizon / 2
		res, err := sim.Run(tr, tight, cfg)
		if err != nil {
			return nil, err
		}
		results[p] = res
	}

	capTable := &report.Table{
		Title:   "Additional sellable capacity vs. None (fixed fleet)",
		Headers: []string{"policy", "VMs placed", "placed %", "+capacity vs None %", "+capacity vs prev %"},
	}
	nonePlaced := results[scheduler.PolicyNone].Placed
	prev := nonePlaced
	for _, p := range scheduler.Policies {
		r := results[p]
		vsNone, vsPrev := 0.0, 0.0
		if nonePlaced > 0 {
			vsNone = 100 * float64(r.Placed-nonePlaced) / float64(nonePlaced)
		}
		if prev > 0 {
			vsPrev = 100 * float64(r.Placed-prev) / float64(prev)
		}
		capTable.AddRow(p.String(), r.Placed, 100*r.PlacedFrac(), vsNone, vsPrev)
		prev = r.Placed
	}

	violTable := &report.Table{
		Title:   "Performance violations (% of used server ticks)",
		Headers: []string{"policy", "CPU", "Memory"},
	}
	for _, p := range scheduler.Policies {
		r := results[p]
		violTable.AddRow(p.String(), 100*r.CPUViolationFrac(), 100*r.MemViolationFrac())
	}

	// Server consolidation: how many servers each policy needs for the
	// same VM population, on an ample fleet.
	ample, err := c.CapacityFleet(2.0)
	if err != nil {
		return nil, err
	}
	consTable := &report.Table{
		Title:   "Servers in use for the full VM set (ample fleet)",
		Headers: []string{"policy", "servers used", "reduction vs None %"},
	}
	var noneServers int
	for _, p := range []scheduler.PolicyKind{scheduler.PolicyNone, scheduler.PolicyCoach} {
		cfg := sim.ConfigForPolicy(p)
		cfg.TrainUpTo = tr.Horizon / 2
		res, err := sim.Run(tr, ample, cfg)
		if err != nil {
			return nil, err
		}
		if p == scheduler.PolicyNone {
			noneServers = res.UsedServers
		}
		red := 0.0
		if noneServers > 0 {
			red = 100 * float64(noneServers-res.UsedServers) / float64(noneServers)
		}
		consTable.AddRow(p.String(), res.UsedServers, red)
	}
	return []*report.Table{capTable, violTable, consTable}, nil
}
