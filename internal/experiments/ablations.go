package experiments

import (
	"fmt"
	"time"

	"github.com/coach-oss/coach/internal/mlforest"
	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/report"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/sim"
	"github.com/coach-oss/coach/internal/timeseries"
)

func init() {
	register(Experiment{
		ID:    "abl-windows",
		Title: "Ablation: scheduler window count vs. capacity and violations",
		PaperClaim: "Savings grow with window count and plateau around 6x4h " +
			"(Fig. 11's trend, measured end-to-end through the scheduler)",
		Run: runAblWindows,
	})
	register(Experiment{
		ID:    "abl-percentile",
		Title: "Ablation: prediction percentile vs. capacity and violations",
		PaperClaim: "Lower percentiles pack more VMs at the cost of more memory " +
			"violations (the Coach -> AggrCoach trend of Fig. 20)",
		Run: runAblPercentile,
	})
	register(Experiment{
		ID:    "abl-forest",
		Title: "Ablation: forest size vs. prediction error and training time",
		PaperClaim: "Returns diminish beyond a few dozen trees; training cost " +
			"grows linearly (maintainability/simplicity discussion of §3.5)",
		Run: runAblForest,
	})
}

func runAblWindows(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	fleet, err := c.CapacityFleet(0.55)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Coach policy capacity by windows per day",
		Headers: []string{"windows", "VMs placed", "placed %", "CPU viol %", "mem viol %"},
	}
	for _, perDay := range []int{1, 2, 4, 6, 8, 12} {
		cfg := sim.ConfigForPolicy(scheduler.PolicyCoach)
		cfg.Windows = timeseries.Windows{PerDay: perDay}
		cfg.TrainUpTo = tr.Horizon / 2
		res, err := sim.Run(tr, fleet, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(cfg.Windows.String(), res.Placed, 100*res.PlacedFrac(),
			100*res.CPUViolationFrac(), 100*res.MemViolationFrac())
	}
	return []*report.Table{t}, nil
}

func runAblPercentile(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	fleet, err := c.CapacityFleet(0.55)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Coach policy capacity by prediction percentile",
		Headers: []string{"percentile", "VMs placed", "placed %", "CPU viol %", "mem viol %", "under-alloc mem %"},
	}
	for _, pct := range []float64{50, 65, 75, 85, 90, 95} {
		cfg := sim.ConfigForPolicy(scheduler.PolicyCoach)
		cfg.Percentile = pct
		cfg.TrainUpTo = tr.Horizon / 2
		res, err := sim.Run(tr, fleet, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("P%.0f", pct), res.Placed, 100*res.PlacedFrac(),
			100*res.CPUViolationFrac(), 100*res.MemViolationFrac(),
			100*res.UnderAllocFrac(resources.Memory))
	}
	return []*report.Table{t}, nil
}

func runAblForest(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Prediction quality by forest size (memory, P95)",
		Headers: []string{"trees", "train time", "model size", "mean |pred-actual| peak (pts)"},
	}
	for _, trees := range []int{5, 10, 20, 40, 80} {
		cfg := predict.DefaultLongTermConfig()
		// Carry the context's training parallelism: this is the one
		// experiment that reports train time, so -train-workers must
		// actually govern it.
		cfg.Forest = mlforest.ForestConfig{Trees: trees, Tree: cfg.Forest.Tree, Seed: 1, Workers: c.TrainWorkers}
		start := time.Now()
		model, err := predict.TrainLongTerm(tr, tr.Horizon/2, cfg)
		if err != nil {
			return nil, err
		}
		dur := time.Since(start)

		// Evaluate on second-week VMs: absolute error of the predicted
		// lifetime-max memory fraction vs. actual.
		var sumErr float64
		var n int
		for i := range tr.VMs {
			vm := &tr.VMs[i]
			if vm.Start < tr.Horizon/2 || !vm.LongRunning() {
				continue
			}
			pred, ok := model.Predict(tr, vm)
			if !ok {
				continue
			}
			var predMax float64
			for _, v := range pred.Max[resources.Memory] {
				if v > predMax {
					predMax = v
				}
			}
			actual := vm.Util[resources.Memory].Max()
			d := predMax - actual
			if d < 0 {
				d = -d
			}
			sumErr += 100 * d
			n++
		}
		meanErr := 0.0
		if n > 0 {
			meanErr = sumErr / float64(n)
		}
		t.AddRow(trees, dur.Round(time.Millisecond).String(), fmtBytes(model.MemoryBytes()), meanErr)
	}
	return []*report.Table{t}, nil
}
