package experiments

import (
	"fmt"
	"math"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/memsim"
	"github.com/coach-oss/coach/internal/report"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/stats"
	"github.com/coach-oss/coach/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig15",
		Title: "Fig. 15: PA/VA trade-off for a 32GB CoachVM with an 18GB working set",
		PaperClaim: "Slowdown is minimal while PA covers most of the working set " +
			"(bottom-right), grows once PA < 16GB, and configurations with " +
			"PA+VA below the working set page continuously (red); a 16GB-PA/" +
			"16GB-VA split backed at 70% saves 4GB",
		Run: runFig15,
	})
	register(Experiment{
		ID:    "fig18",
		Title: "Fig. 18: workload performance across VM configurations",
		PaperClaim: "OVM degrades tail-latency workloads up to ~2.4x; CVM stays " +
			"within ~10% everywhere; CVM-Floor degrades small-working-set tail " +
			"workloads (Cache, KV-Store) up to ~1.8x; LLM-FT is the most " +
			"sensitive non-tail workload (~1.24x)",
		Run: runFig18,
	})
	register(Experiment{
		ID:    "fig21",
		Title: "Fig. 21: mitigation policies during two memory contentions",
		PaperClaim: "None never recovers; Trim resolves contention 1 only; Extend " +
			"resolves contention 2 fastest; Migrate resolves it slower; Proactive " +
			"variants trigger earlier and cap slowdown lower than Reactive " +
			"(~1.3x vs up to ~4.3x unmitigated)",
		Run: runFig21,
	})
	register(Experiment{
		ID:         "tab1",
		Title:      "Table 1: resource fungibility and sharing mechanisms",
		PaperClaim: "CPU/bandwidth/power are fungible; memory space, local storage, SR-IOV and GPU are not",
		Run:        runTab1,
	})
	register(Experiment{
		ID:         "tab2",
		Title:      "Table 2: evaluated cloud workloads",
		PaperClaim: "Nine workloads spanning tail-latency, run-time and throughput metrics",
		Run:        runTab2,
	})
}

// runSteadyState runs a single VM with a static working set for the given
// number of 1-second ticks and returns its mean slowdown.
func runSteadyState(paGB, vaGB, wssGB float64, poolGB float64, ticks int) (float64, error) {
	cfg := memsim.DefaultConfig()
	srv := memsim.NewServer(cfg, poolGB, 0)
	vm, err := memsim.NewVMMem(1, paGB+vaGB, paGB)
	if err != nil {
		return 0, err
	}
	if err := srv.AddVM(vm); err != nil {
		return 0, err
	}
	vm.SetWSS(wssGB)
	var sum float64
	n := 0
	for i := 0; i < ticks; i++ {
		st, err := srv.Tick(1)
		if err != nil {
			return 0, err
		}
		// Skip the initial fault-in transient.
		if i >= ticks/4 {
			sum += st.Get(1).Slowdown(cfg)
			n++
		}
	}
	return sum / float64(n), nil
}

func runFig15(c *Context) ([]*report.Table, error) {
	const wss = 18.0
	const vmSize = 32.0
	sizes := []float64{0, 4, 8, 12, 16, 20, 24, 28, 32}

	slow := &report.Table{
		Title:   "Slowdown (%) by PA (rows) and VA (columns) allocation, GB",
		Headers: append([]string{"PA\\VA"}, fmtSizes(sizes)...),
		Note:    "'-' = invalid (PA+VA > 32GB or zero memory); 'page' = continuous paging (PA+VA < working set)",
	}
	alloc := &report.Table{
		Title:   "Total physical memory allocation (GB) backing 70% of VA",
		Headers: append([]string{"PA\\VA"}, fmtSizes(sizes)...),
	}
	for _, pa := range sizes {
		srow := []any{report.Float(pa)}
		arow := []any{report.Float(pa)}
		for _, va := range sizes {
			switch {
			case pa+va > vmSize || pa+va == 0:
				srow = append(srow, "-")
				arow = append(arow, "-")
			case pa+va < wss:
				srow = append(srow, "page")
				arow = append(arow, report.Float(pa+0.7*va))
			default:
				s, err := runSteadyState(pa, va, wss, va, 80)
				if err != nil {
					return nil, err
				}
				srow = append(srow, report.Float(100*(s-1)))
				arow = append(arow, report.Float(pa+0.7*va))
			}
		}
		slow.AddRow(srow...)
		alloc.AddRow(arow...)
	}
	return []*report.Table{slow, alloc}, nil
}

func fmtSizes(sizes []float64) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = report.Float(s)
	}
	return out
}

// VMVariant labels the four §4.2 VM configurations.
type VMVariant int

const (
	// GPVM is fully guaranteed (PA-backed).
	GPVM VMVariant = iota
	// CVM uses Coach's PA/VA split.
	CVM
	// CVMFloor emulates a 1GB under-allocation of the guaranteed portion.
	CVMFloor
	// OVM is fully oversubscribed (VA-backed).
	OVM
)

func (v VMVariant) String() string {
	switch v {
	case GPVM:
		return "GPVM"
	case CVM:
		return "CVM"
	case CVMFloor:
		return "CVM-Floor"
	default:
		return "OVM"
	}
}

// Variants lists the Fig. 18 configurations in paper order.
var Variants = []VMVariant{GPVM, CVM, CVMFloor, OVM}

// wssProfile samples the workload's working-set trajectory and returns its
// P95 and maximum — what Coach's predictor would see.
func wssProfile(spec workload.Spec, seconds int) (p95, max float64) {
	samples := make([]float64, seconds)
	for t := 0; t < seconds; t++ {
		samples[t] = spec.WSSAt(float64(t))
	}
	return stats.Percentile(samples, 95), stats.Max(samples)
}

// variantLayout returns the PA size and pool size for a workload under a
// VM variant.
func variantLayout(spec workload.Spec, v VMVariant) (paGB, poolGB float64) {
	p95, maxW := wssProfile(spec, 600)
	cvmPA := math.Ceil(stats.BucketUp(p95/spec.VMSizeGB, 0.05) * spec.VMSizeGB)
	if cvmPA > spec.VMSizeGB {
		cvmPA = spec.VMSizeGB
	}
	cvmPool := math.Ceil(maxW) - cvmPA
	if cvmPool < 0 {
		cvmPool = 0
	}
	switch v {
	case GPVM:
		return spec.VMSizeGB, 0
	case CVM:
		return cvmPA, cvmPool
	case CVMFloor:
		// Emulate a 1GB under-allocation: total physical coverage
		// (PA + pool) ends up 1GB below the true peak working set, so
		// the top 1GB keeps paging whenever the workload peaks.
		pa := math.Min(cvmPA, math.Ceil(maxW)) - 1
		if pa < 0 {
			pa = 0
		}
		return pa, cvmPool
	default: // OVM
		return 0, spec.VMSizeGB
	}
}

// runWorkloadVariant runs one workload under one VM variant for the given
// seconds and returns the runner with accumulated metrics. The server runs
// Coach's oversubscription agent with the reactive trim policy, as every
// Coach server does (§3.6): without it, allocation churn would let cold
// pages accumulate until blind hypervisor eviction thrashes the VM.
func runWorkloadVariant(spec workload.Spec, v VMVariant, seconds int) (*workload.Runner, error) {
	cfg := memsim.DefaultConfig()
	pa, pool := variantLayout(spec, v)
	srv := memsim.NewServer(cfg, pool, 0)
	vm, err := memsim.NewVMMem(1, spec.VMSizeGB, pa)
	if err != nil {
		return nil, err
	}
	if err := srv.AddVM(vm); err != nil {
		return nil, err
	}
	r, err := workload.NewRunner(spec, vm, cfg)
	if err != nil {
		return nil, err
	}
	ag, err := agent.New(agent.DefaultConfig(), srv)
	if err != nil {
		return nil, err
	}
	warmup := seconds / 5
	for t := 0; t < seconds; t++ {
		r.Step(1)
		st, err := srv.Tick(1)
		if err != nil {
			return nil, err
		}
		ag.Tick(1, st)
		if t >= warmup {
			r.Record(st.Get(1))
		}
	}
	return r, nil
}

func fig18Seconds(s Scale) int {
	if s == ScaleSmall {
		return 240
	}
	return 600
}

func runFig18(c *Context) ([]*report.Table, error) {
	t := &report.Table{
		Title:   "Normalized slowdown per workload and VM configuration",
		Headers: []string{"workload", "metric", "GPVM", "CVM", "CVM-Floor", "OVM"},
	}
	seconds := fig18Seconds(c.Scale)
	for _, spec := range workload.Table2() {
		runners := make(map[VMVariant]*workload.Runner, len(Variants))
		for _, v := range Variants {
			r, err := runWorkloadVariant(spec, v, seconds)
			if err != nil {
				return nil, fmt.Errorf("fig18 %s/%s: %w", spec.Name, v, err)
			}
			runners[v] = r
		}
		base := runners[GPVM]
		t.AddRow(spec.Name, spec.Metric.String(),
			runners[GPVM].Slowdown(base), runners[CVM].Slowdown(base),
			runners[CVMFloor].Slowdown(base), runners[OVM].Slowdown(base))
	}
	return []*report.Table{t}, nil
}

func runTab1(c *Context) ([]*report.Table, error) {
	t := &report.Table{
		Title:   "Fungible and non-fungible resources and sharing mechanisms",
		Headers: []string{"resource", "fungible", "mechanism"},
	}
	for _, r := range resources.Table1() {
		fung := "yes"
		if r.Fungibility == resources.NonFungible {
			fung = "no"
		}
		t.AddRow(r.Name, fung, r.Mechanism)
	}
	return []*report.Table{t}, nil
}

func runTab2(c *Context) ([]*report.Table, error) {
	t := &report.Table{
		Title:   "Evaluated cloud workloads",
		Headers: []string{"workload", "description", "key metric", "VM GB", "WSS GB"},
	}
	for _, s := range workload.Table2() {
		t.AddRow(s.Name, s.Description, s.Metric.String(), s.VMSizeGB, s.WSSGB)
	}
	return []*report.Table{t}, nil
}
