package experiments

import (
	"time"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/memsim"
	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/report"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "sec45",
		Title: "Sec. 4.5: Coach platform overheads",
		PaperClaim: "Daily offline training: ~121s / 186MB at 1M-VM scale (ours " +
			"scales with trace size); scheduling adds <1ms per VM; CVM worst-case " +
			"fault count <15% of OVM's; local predictor ~25KB and sub-ms cycles; " +
			"trim bandwidth 1.1GB/s, pool extension 15.7GB/s",
		Run: runSec45,
	})
}

func runSec45(c *Context) ([]*report.Table, error) {
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Platform overheads",
		Headers: []string{"component", "measurement", "value"},
	}

	// Long-term model: training time and resident size.
	start := time.Now()
	cfg := predict.DefaultLongTermConfig()
	model, err := predict.TrainLongTerm(tr, tr.Horizon/2, cfg)
	if err != nil {
		return nil, err
	}
	trainDur := time.Since(start)
	t.AddRow("long-term predictor", "training time", trainDur.Round(time.Millisecond).String())
	t.AddRow("long-term predictor", "training rows", model.TrainRows())
	t.AddRow("long-term predictor", "model memory", fmtBytes(model.MemoryBytes()))

	// Scheduling: time per placement with the extra window dimensions.
	fleet := cluster.NewFleet(cluster.DefaultClusters(20))
	sched, err := scheduler.New(fleet, cfg.Windows)
	if err != nil {
		return nil, err
	}
	var placedCount int
	start = time.Now()
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		pred, ok := model.Predict(tr, vm)
		cvm, err := scheduler.BuildCVM(scheduler.PolicyCoach, vm.ID, vm.Alloc, pred, ok, cfg.Windows)
		if err != nil {
			return nil, err
		}
		if _, ok := sched.Place(cvm); ok {
			placedCount++
		}
		if placedCount >= 500 {
			break
		}
	}
	per := time.Duration(0)
	if placedCount > 0 {
		per = time.Since(start) / time.Duration(placedCount)
	}
	t.AddRow("scheduler", "predict+place per VM", per.Round(time.Microsecond).String())

	// CVM vs OVM fault volume for the most memory-sensitive workload.
	spec, err := workload.SpecByName("Cache")
	if err != nil {
		return nil, err
	}
	cvmRun, err := runWorkloadVariant(spec, CVM, 300)
	if err != nil {
		return nil, err
	}
	ovmRun, err := runWorkloadVariant(spec, OVM, 300)
	if err != nil {
		return nil, err
	}
	ratio := 0.0
	if ovmRun.TotalFaultGB() > 0 {
		ratio = 100 * cvmRun.TotalFaultGB() / ovmRun.TotalFaultGB()
	}
	t.AddRow("CoachVM", "CVM fault volume vs OVM", report.Pct(ratio))

	// Local predictor: memory and train/infer cycle time.
	local, err := predict.NewLocal(predict.DefaultLocalConfig())
	if err != nil {
		return nil, err
	}
	start = time.Now()
	const cycles = 200
	for i := 0; i < cycles; i++ {
		for j := 0; j < 15; j++ {
			local.Observe(0.5 + 0.3*float64(j%5)/5)
		}
		local.CompleteWindow()
		local.PredictFiveMin()
	}
	cycle := time.Since(start) / cycles
	t.AddRow("local predictor", "train+inference cycle", cycle.Round(time.Microsecond).String())
	t.AddRow("local predictor", "memory", fmtBytes(local.MemoryBytes()))

	// Mitigation bandwidths, measured in simulation.
	msCfg := memsim.DefaultConfig()
	srv := memsim.NewServer(msCfg, 20, 20)
	vm, err := memsim.NewVMMem(1, 32, 8)
	if err != nil {
		return nil, err
	}
	if err := srv.AddVM(vm); err != nil {
		return nil, err
	}
	vm.SetWSS(24) // fault in 16GB of VA
	for i := 0; i < 20; i++ {
		if _, err := srv.Tick(1); err != nil {
			return nil, err
		}
	}
	vm.SetWSS(8) // everything in VA goes cold
	before := srv.PoolFree()
	srv.StartTrim(1, 16)
	secs := 0
	for srv.VM(1).Trimmable() > 1e-6 && secs < 60 {
		if _, err := srv.Tick(1); err != nil {
			return nil, err
		}
		secs++
	}
	trimBW := (srv.PoolFree() - before) / float64(secs)
	t.AddRow("mitigation", "trim bandwidth", report.Float(trimBW)+" GB/s")

	poolBefore := srv.PoolGB()
	srv.StartExtend(15)
	if _, err := srv.Tick(1); err != nil {
		return nil, err
	}
	t.AddRow("mitigation", "extend bandwidth", report.Float(srv.PoolGB()-poolBefore)+" GB/s")

	// The (windows+1)-dimension check cost is visible in the scheduler
	// timing above; record the dimensionality for reference.
	w := timeseries.Windows{PerDay: 6}
	t.AddRow("scheduler", "bin-packing dimensions per resource", (w.PerDay+1)*int(resources.NumKinds))
	return []*report.Table{t}, nil
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return report.Float(float64(n)/(1<<20)) + " MiB"
	case n >= 1<<10:
		return report.Float(float64(n)/(1<<10)) + " KiB"
	default:
		return report.Float(float64(n)) + " B"
	}
}
