package experiments

import (
	"fmt"
	"sort"

	"github.com/coach-oss/coach/internal/report"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the registry key, e.g. "fig20".
	ID string
	// Title is the paper artifact it regenerates.
	Title string
	// PaperClaim summarizes the shape the paper reports, against which
	// EXPERIMENTS.md compares the measured output.
	PaperClaim string
	// Run produces one table per panel.
	Run func(*Context) ([]*report.Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	registry[e.ID] = e
}

// All returns every registered experiment sorted by ID (figures first,
// then tables, then ablations, each numerically).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return idLess(out[i].ID, out[j].ID) })
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e, nil
}

// idLess orders experiment IDs: figN < tabN < secN < abl-*, numerically
// within each class.
func idLess(a, b string) bool {
	ca, na := classify(a)
	cb, nb := classify(b)
	if ca != cb {
		return ca < cb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

func classify(id string) (class, num int) {
	var n int
	switch {
	case len(id) > 3 && id[:3] == "fig":
		fmt.Sscanf(id[3:], "%d", &n)
		return 0, n
	case len(id) > 3 && id[:3] == "tab":
		fmt.Sscanf(id[3:], "%d", &n)
		return 1, n
	case len(id) > 3 && id[:3] == "sec":
		fmt.Sscanf(id[3:], "%d", &n)
		return 2, n
	default:
		return 3, 0
	}
}
