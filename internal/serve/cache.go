package serve

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/trace"
)

// ModelKey identifies one trained long-term model: the trace it was fitted
// on (by fingerprint), the train/serve split, and the complete training
// configuration (predict.LongTermConfig is a comparable value type, so any
// hyperparameter difference — forest size, tree bounds, safety buckets,
// history thresholds — yields a distinct key). Two services with equal
// keys can share a model. Config.Forest.Workers must be normalized to 0
// by the key's builder: it is a training-throughput knob that provably
// does not change the trained forest (byte-identical for any value), so
// it must not split the cache.
type ModelKey struct {
	TraceID   uint64
	TrainUpTo int
	Config    predict.LongTermConfig
}

// ModelCache memoizes trained prediction models so cold starts pay forest
// training once per (trace, config) and every later service or request
// reuses the fitted model. Lookups are singleflight: concurrent Get calls
// with the same key block on one training run instead of racing their own.
// A cache may be shared across services; a nil entry is trained at most
// once even under concurrent first use.
type ModelCache struct {
	mu      sync.Mutex
	entries map[ModelKey]*cacheEntry
	hits    int64
	misses  int64
}

type cacheEntry struct {
	once  sync.Once
	model *predict.LongTerm
	err   error
}

// NewModelCache returns an empty cache.
func NewModelCache() *ModelCache {
	return &ModelCache{entries: make(map[ModelKey]*cacheEntry)}
}

// CacheStats reports cache effectiveness. A "hit" is a Get that found an
// existing entry (even one still training); a "miss" created the entry and
// ran train.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Models int   `json:"models"`
}

// Get returns the model for key, calling train to build it on first use.
// Training errors are cached too: a trace/config pair that cannot train
// fails fast on every later lookup rather than retraining forever.
func (c *ModelCache) Get(key ModelKey, train func() (*predict.LongTerm, error)) (*predict.LongTerm, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.model, e.err = train() })
	return e.model, e.err
}

// Stats snapshots the cache counters.
func (c *ModelCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Models: len(c.entries)}
}

// Fingerprint hashes a trace's identity-bearing fields (horizon, VM
// lifetimes, allocations, subscriptions) into a 64-bit key component.
// It deliberately skips the utilization series — hashing every sample of
// every VM would dominate cold-start cost — so traces differing only in
// utilization collide; the generator's determinism (same config, same
// trace) makes that combination unreachable in practice.
func Fingerprint(tr *trace.Trace) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(tr.Horizon))
	put(uint64(int64(tr.StartWeekday)))
	put(uint64(len(tr.Subscriptions)))
	put(uint64(len(tr.VMs)))
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		put(uint64(vm.ID))
		put(uint64(vm.Subscription))
		put(uint64(vm.Start))
		put(uint64(vm.End))
		put(uint64(int64(vm.Offering)))
		for _, k := range resources.Kinds {
			put(math.Float64bits(vm.Alloc[k]))
		}
	}
	return h.Sum64()
}
