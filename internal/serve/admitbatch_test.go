package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/trace"
)

// tinyFleet builds a deliberately capacity-constrained fleet — ten
// clusters of serversPer small servers, each holding only a few median
// VMs — so admission storms hit genuine capacity conflicts.
func tinyFleet(serversPer int) *cluster.Fleet {
	spec := cluster.ServerSpec{Name: "tiny", Generation: 1,
		Capacity: resources.NewVector(16, 64, 10, 1024)}
	var cfgs []cluster.Config
	for i := 0; i < 10; i++ {
		cfgs = append(cfgs, cluster.Config{Name: fmt.Sprintf("T%d", i+1), Spec: spec, Servers: serversPer})
	}
	return cluster.NewFleet(cfgs)
}

// postAdmit drives one POST /v1/admit through the handler and returns the
// raw status and body — the bytes the equivalence tests compare.
func postAdmit(t *testing.T, h http.Handler, vmID int) (int, string) {
	t.Helper()
	body, err := json.Marshal(VMRequest{VM: vmID})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/admit", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// batchRecorder captures every admit batch's shard and arrival order from
// the batcher's loop goroutines.
type batchRecorder struct {
	mu      sync.Mutex
	byShard map[int][]int // shard → VM ids in coalesced arrival order
	sizes   []int
}

func (r *batchRecorder) hook(shard int, vms []*trace.VM) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byShard == nil {
		r.byShard = make(map[int][]int)
	}
	for _, vm := range vms {
		r.byShard[shard] = append(r.byShard[shard], vm.ID)
	}
	r.sizes = append(r.sizes, len(vms))
}

// TestAdmitStormBatchedSerialEquivalence is the acceptance storm: 64
// concurrent clients admit through the batched service over HTTP, a hook
// records the per-shard order requests actually coalesced in, and the same
// order replayed serially against a -no-batch service must produce
// byte-identical responses for every VM — on a fleet small enough that
// capacity conflicts are common, so later requests genuinely depend on
// earlier commits.
func TestAdmitStormBatchedSerialEquivalence(t *testing.T) {
	tr := getTrace(t)
	cache := NewModelCache()
	newSvc := func(serial bool) *Service {
		cfg := DefaultConfig()
		cfg.Cache = cache
		cfg.DataPlane = true
		cfg.AdmitPressureFrac = 0.95
		if serial {
			cfg.Batch.Disabled = true // mirrors into AdmitBatch: fully serial
		} else {
			cfg.Batch.MaxWait = 2 * time.Millisecond
		}
		// Two small servers per cluster: most shards run out of capacity
		// during the storm, forcing conflict commits inside batches.
		fleet := tinyFleet(2)
		s, err := New(tr, fleet, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		if err := s.Warm(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	batched, serial := newSvc(false), newSvc(true)

	rec := &batchRecorder{}
	batched.admit.onBatch = rec.hook

	vms := evalVMs(tr)
	if len(vms) < 64 {
		t.Fatalf("only %d evaluation VMs", len(vms))
	}
	const clients = 64
	got := make(map[int]string, len(vms)) // VM id → "status\nbody"
	var gotMu sync.Mutex
	var wg sync.WaitGroup
	h := batched.Handler()
	per := (len(vms) + clients - 1) / clients
	for c := 0; c < clients; c++ {
		lo := c * per
		if lo >= len(vms) {
			break
		}
		hi := lo + per
		if hi > len(vms) {
			hi = len(vms)
		}
		wg.Add(1)
		go func(mine []*trace.VM) {
			defer wg.Done()
			for _, vm := range mine {
				code, body := postAdmit(t, h, vm.ID)
				gotMu.Lock()
				got[vm.ID] = fmt.Sprintf("%d\n%s", code, body)
				gotMu.Unlock()
			}
		}(vms[lo:hi])
	}
	wg.Wait()

	// Replay the exact coalesced order serially. Shards are independent —
	// admission state never crosses them — so shard order is irrelevant.
	rec.mu.Lock()
	defer rec.mu.Unlock()
	sh := serial.Handler()
	total, rejected := 0, 0
	for shard, ids := range rec.byShard {
		for _, id := range ids {
			code, body := postAdmit(t, sh, id)
			want := fmt.Sprintf("%d\n%s", code, body)
			if got[id] != want {
				t.Fatalf("shard %d vm %d: batched response %q != serial replay %q", shard, id, got[id], want)
			}
			total++
			if code != http.StatusOK {
				rejected++
			}
		}
	}
	if total != len(vms) {
		t.Fatalf("hook saw %d admissions, want %d", total, len(vms))
	}
	if rejected == 0 {
		t.Fatalf("storm saw no rejections — fleet not capacity-constrained, conflicts untested")
	}
}

// forcedBatch admits vms concurrently against a service configured so they
// all coalesce into exactly one batch (MaxBatch = len(vms), a generous
// MaxWait), returning each VM's result in submission-slice order.
func forcedBatch(t *testing.T, s *Service, vms []*trace.VM) []AdmitResult {
	t.Helper()
	res := make([]AdmitResult, len(vms))
	var wg sync.WaitGroup
	for i, vm := range vms {
		wg.Add(1)
		go func(i int, vm *trace.VM) {
			defer wg.Done()
			r, err := s.Admit(vm)
			if err != nil {
				t.Errorf("admit vm %d: %v", vm.ID, err)
			}
			res[i] = r
		}(i, vm)
	}
	wg.Wait()
	return res
}

// sameClusterVMs returns up to n evaluation VMs homed in one cluster of a
// width-clusters fleet.
func sameClusterVMs(tr *trace.Trace, clusters, n int) []*trace.VM {
	byShard := make(map[int][]*trace.VM)
	best := -1
	for _, vm := range evalVMs(tr) {
		ci := vm.Cluster % clusters
		if ci < 0 {
			ci += clusters
		}
		byShard[ci] = append(byShard[ci], vm)
		if best < 0 || len(byShard[ci]) > len(byShard[best]) {
			best = ci
		}
	}
	vms := byShard[best]
	if len(vms) > n {
		vms = vms[:n]
	}
	return vms
}

// TestAdmitConflictReplaysWithinBatch forces one deterministic batch onto
// a single-server cluster so later requests must observe the capacity
// earlier requests consumed: the batch must both admit and reject, count
// conflict replays, and match a serial replay of the recorded order
// exactly.
func TestAdmitConflictReplaysWithinBatch(t *testing.T) {
	tr := getTrace(t)
	cache := NewModelCache()
	vms := sameClusterVMs(tr, 10, 12)
	if len(vms) < 4 {
		t.Fatalf("only %d VMs share a cluster", len(vms))
	}

	mk := func(serial bool) *Service {
		cfg := DefaultConfig()
		cfg.Cache = cache
		cfg.DataPlane = true
		cfg.AdmitPressureFrac = 0.95
		if serial {
			cfg.Batch.Disabled = true
		} else {
			cfg.AdmitBatch = BatchConfig{MaxBatch: len(vms), MaxWait: 2 * time.Second}
		}
		fleet := tinyFleet(1)
		s, err := New(tr, fleet, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		if err := s.Warm(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	batched, serial := mk(false), mk(true)

	rec := &batchRecorder{}
	batched.admit.onBatch = rec.hook

	byID := make(map[int]AdmitResult, len(vms))
	res := forcedBatch(t, batched, vms)
	for i, vm := range vms {
		byID[vm.ID] = res[i]
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.sizes) != 1 || rec.sizes[0] != len(vms) {
		t.Fatalf("expected one batch of %d, got sizes %v", len(vms), rec.sizes)
	}
	order := rec.byShard[batched.shardIndex(vms[0])]

	admitted, rejectedInBatch := 0, 0
	for _, id := range order {
		r := byID[id]
		want, err := serial.Admit(serial.vmByID[id])
		if err != nil {
			t.Fatalf("serial admit vm %d: %v", id, err)
		}
		if r != want {
			t.Fatalf("vm %d: batched %+v != serial-in-order %+v", id, r, want)
		}
		if r.Admitted {
			admitted++
		} else {
			rejectedInBatch++
		}
	}
	if admitted == 0 || rejectedInBatch == 0 {
		t.Fatalf("conflict batch must both admit and reject (admitted=%d rejected=%d)", admitted, rejectedInBatch)
	}
	st := batched.Stats().AdmitBatch
	if st.ConflictReplays == 0 {
		t.Error("commits inside a multi-request batch must be folded back as conflict replays")
	}
	if st.Batches != 1 || st.Requests != int64(len(vms)) || st.MaxBatch != len(vms) || st.P50Size != len(vms) {
		t.Errorf("stats %+v do not describe one batch of %d", st, len(vms))
	}
}

// TestAdmitBatchOnePassPerBatch pins the whole point of the tentpole:
// however many admissions coalesce, the batch runs one set of forest
// passes (identical to a single fresh prediction's) and one what-if sweep
// — not one per request.
func TestAdmitBatchOnePassPerBatch(t *testing.T) {
	tr := getTrace(t)
	cache := NewModelCache()
	vms := sameClusterVMs(tr, 10, 8)
	if len(vms) < 4 {
		t.Fatalf("only %d VMs share a cluster", len(vms))
	}

	cfg := DefaultConfig()
	cfg.Cache = cache
	cfg.DataPlane = true
	cfg.AdmitPressureFrac = 0.99
	cfg.AdmitBatch = BatchConfig{MaxBatch: len(vms), MaxWait: 2 * time.Second}
	fleet := cluster.NewFleet(cluster.DefaultClusters(len(vms)))
	s, err := New(tr, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	model, err := s.modelFor()
	if err != nil {
		t.Fatal(err)
	}

	// Reference cost: one single-request batch.
	solo := vms[:1]
	passes0 := model.InferenceStats().Passes
	batches0 := s.Stats().DataPlane.WhatIfBatches
	forcedBatch(t, s, solo)
	passesSolo := model.InferenceStats().Passes - passes0
	if got := s.Stats().DataPlane.WhatIfBatches - batches0; got != 1 {
		t.Fatalf("single admission ran %d what-if sweeps, want 1", got)
	}
	for _, vm := range solo {
		if _, err := s.Release(vm); err != nil {
			t.Fatal(err)
		}
	}

	// The full batch must cost exactly the same number of forest passes
	// and still exactly one what-if sweep.
	passes1 := model.InferenceStats().Passes
	batches1 := s.Stats().DataPlane.WhatIfBatches
	forcedBatch(t, s, vms)
	if got := model.InferenceStats().Passes - passes1; got != passesSolo {
		t.Errorf("batch of %d ran %d forest passes, want %d (same as batch of 1)", len(vms), got, passesSolo)
	}
	if got := s.Stats().DataPlane.WhatIfBatches - batches1; got != 1 {
		t.Errorf("batch of %d ran %d what-if sweeps, want 1", len(vms), got)
	}
	st := s.Stats().AdmitBatch
	if st.Batches != 2 || st.MaxBatch != len(vms) {
		t.Errorf("stats %+v after a solo batch and a full batch", st)
	}
}

// TestAdmitBatchDisabledMirrorsPredictionBatcher checks the config
// defaulting: AdmitBatch's zero value follows Batch (one -no-batch knob
// disables both), and an explicit AdmitBatch stands alone.
func TestAdmitBatchDisabledMirrorsPredictionBatcher(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Batch.Disabled = true
	s := newTestService(t, cfg)
	if s.admit != nil {
		t.Error("zero AdmitBatch must mirror a disabled Batch")
	}

	cfg = DefaultConfig()
	cfg.Batch.Disabled = true
	cfg.AdmitBatch = BatchConfig{MaxBatch: 8}
	s = newTestService(t, cfg)
	if s.admit == nil {
		t.Error("explicit AdmitBatch must override the Batch mirror")
	}

	s = newTestService(t, DefaultConfig())
	if s.admit == nil {
		t.Error("default config must batch admissions")
	}
}

// TestAdmitBatchedDuplicateRejected checks duplicate admissions through
// the batched path keep the serial contract, whether the duplicate lands
// in a later batch or races into the same one.
func TestAdmitBatchedDuplicateRejected(t *testing.T) {
	cfg := DefaultConfig()
	s := newTestService(t, cfg)
	tr := getTrace(t)
	vm := evalVMs(tr)[0]
	if res, err := s.Admit(vm); err != nil || !res.Admitted {
		t.Fatalf("first admit: res=%+v err=%v", res, err)
	}
	if _, err := s.Admit(vm); err == nil {
		t.Fatal("duplicate admit must fail")
	}
}
