package serve

import (
	"errors"
	"sync"
	"time"

	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/trace"
)

// ErrClosed is returned for requests submitted after shutdown began.
var ErrClosed = errors.New("serve: service is shutting down")

// ErrAlreadyAdmitted is wrapped by Admit when the VM is already placed.
var ErrAlreadyAdmitted = errors.New("already admitted")

// BatchConfig tunes the prediction batcher.
type BatchConfig struct {
	// Disabled routes every prediction through the per-request path,
	// bypassing the batcher entirely (the baseline the batched path is
	// benchmarked against).
	Disabled bool
	// MaxBatch caps how many requests coalesce into one forest pass
	// (default 64). Larger batches amortize per-tree dispatch further but
	// add head-of-line latency for the first request in the batch.
	MaxBatch int
	// MaxWait bounds how long a non-full batch waits for stragglers after
	// the first request arrives. The default 0 is purely opportunistic:
	// the batcher drains whatever is already queued and runs immediately,
	// so an idle service adds no latency while a loaded one naturally
	// forms large batches (requests queue up while the previous forest
	// pass runs).
	MaxWait time.Duration
	// Queue is the request channel capacity (default 4*MaxBatch).
	Queue int
}

func (b BatchConfig) withDefaults() BatchConfig {
	if b.MaxBatch <= 0 {
		b.MaxBatch = 64
	}
	if b.Queue <= 0 {
		b.Queue = 4 * b.MaxBatch
	}
	return b
}

// predictOut is one request's result, delivered on its private channel.
type predictOut struct {
	pred coachvm.Prediction
	ok   bool
	err  error
}

// predictJob is one queued prediction request.
type predictJob struct {
	vm   *trace.VM
	resp chan predictOut
}

// BatchStats reports how effectively concurrent requests coalesced.
type BatchStats struct {
	Requests int64   `json:"requests"`
	Batches  int64   `json:"batches"`
	MaxBatch int     `json:"max_batch"`
	MeanSize float64 `json:"mean_size"`
}

// batcher coalesces concurrent prediction requests into single batched
// forest passes. One background goroutine owns the loop: it blocks for the
// first request, opportunistically drains everything already queued (up to
// MaxBatch, waiting at most MaxWait for more), runs one
// LongTerm.PredictBatch over the whole batch, and fans results back out.
// Because the batched pass is bit-identical to per-request prediction,
// responses do not depend on which requests happened to share a batch.
type batcher struct {
	cfg  BatchConfig
	run  func(vms []*trace.VM) ([]coachvm.Prediction, []bool, error)
	jobs chan predictJob
	done chan struct{}

	// respPool recycles the per-request response channels (each carries
	// exactly one value per use, so a drained channel is safely reusable).
	respPool sync.Pool

	mu sync.Mutex
	// senders counts submits that passed the closed check but have not
	// finished sending; close() waits for them before closing jobs, so no
	// send can hit a closed channel.
	senders  sync.WaitGroup
	closed   bool
	requests int64
	batches  int64
	maxSeen  int
}

// newBatcher starts the collection loop. run performs one batched
// prediction pass; it is called from the loop goroutine only.
func newBatcher(cfg BatchConfig, run func(vms []*trace.VM) ([]coachvm.Prediction, []bool, error)) *batcher {
	b := &batcher{
		cfg:  cfg.withDefaults(),
		run:  run,
		done: make(chan struct{}),
	}
	b.jobs = make(chan predictJob, b.cfg.Queue)
	go b.loop()
	return b
}

// submit enqueues one prediction and blocks for its result.
func (b *batcher) submit(vm *trace.VM) (coachvm.Prediction, bool, error) {
	resp, _ := b.respPool.Get().(chan predictOut)
	if resp == nil {
		resp = make(chan predictOut, 1)
	}
	job := predictJob{vm: vm, resp: resp}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return coachvm.Prediction{}, false, ErrClosed
	}
	b.requests++
	b.senders.Add(1)
	b.mu.Unlock()
	// The loop drains jobs until the channel closes, so this send always
	// completes even when the queue is momentarily full.
	b.jobs <- job
	b.senders.Done()
	out := <-resp
	b.respPool.Put(resp)
	return out.pred, out.ok, out.err
}

// close stops accepting work, waits for queued requests to be answered and
// stops the loop goroutine.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.mu.Unlock()
	b.senders.Wait()
	close(b.jobs)
	<-b.done
}

// stats snapshots the coalescing counters.
func (b *batcher) stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BatchStats{Requests: b.requests, Batches: b.batches, MaxBatch: b.maxSeen}
	if b.batches > 0 {
		s.MeanSize = float64(b.requests) / float64(b.batches)
	}
	return s
}

// loop is the batcher's single consumer.
func (b *batcher) loop() {
	defer close(b.done)
	batch := make([]predictJob, 0, b.cfg.MaxBatch)
	for {
		first, ok := <-b.jobs
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		batch, ok = b.fill(batch)
		b.flush(batch)
		if !ok {
			return
		}
	}
}

// fill grows batch up to MaxBatch: first by draining what is already
// queued without blocking, then — when MaxWait is set — by waiting up to
// MaxWait for stragglers. Returns ok=false once the jobs channel closed.
func (b *batcher) fill(batch []predictJob) ([]predictJob, bool) {
	for len(batch) < b.cfg.MaxBatch {
		select {
		case j, ok := <-b.jobs:
			if !ok {
				return batch, false
			}
			batch = append(batch, j)
		default:
			if b.cfg.MaxWait <= 0 {
				return batch, true
			}
			return b.fillTimed(batch)
		}
	}
	return batch, true
}

// fillTimed continues filling until MaxWait elapses or the batch is full.
func (b *batcher) fillTimed(batch []predictJob) ([]predictJob, bool) {
	timer := time.NewTimer(b.cfg.MaxWait)
	defer timer.Stop()
	for len(batch) < b.cfg.MaxBatch {
		select {
		case j, ok := <-b.jobs:
			if !ok {
				return batch, false
			}
			batch = append(batch, j)
		case <-timer.C:
			return batch, true
		}
	}
	return batch, true
}

// flush runs one batched pass and fans results out to the waiters.
func (b *batcher) flush(batch []predictJob) {
	if len(batch) == 0 {
		return
	}
	vms := make([]*trace.VM, len(batch))
	for i, j := range batch {
		vms[i] = j.vm
	}
	preds, oks, err := b.run(vms)
	b.mu.Lock()
	b.batches++
	if len(batch) > b.maxSeen {
		b.maxSeen = len(batch)
	}
	b.mu.Unlock()
	for i, j := range batch {
		if err != nil {
			j.resp <- predictOut{err: err}
			continue
		}
		j.resp <- predictOut{pred: preds[i], ok: oks[i]}
	}
}
