package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/trace"
)

// HTTP/JSON wire types. Field order is fixed so identical requests
// marshal to byte-identical responses (docs/api.md documents the schema).

// VMRequest addresses one trace VM by id.
type VMRequest struct {
	VM int `json:"vm"`
}

// ResourceSeries is one resource's per-window prediction pair.
type ResourceSeries struct {
	Pct []float64 `json:"pct"`
	Max []float64 `json:"max"`
}

// PredictResponse is the /v1/predict result.
type PredictResponse struct {
	VM         int     `json:"vm"`
	OK         bool    `json:"ok"`
	Percentile float64 `json:"percentile,omitempty"`
	Windows    int     `json:"windows,omitempty"`
	// Resources maps resource kind name (cpu, memory, network, ssd) to
	// its per-window prediction; omitted when OK is false.
	Resources map[string]ResourceSeries `json:"resources,omitempty"`
}

// AdmitResponse is the /v1/admit result.
type AdmitResponse struct {
	VM             int                `json:"vm"`
	Admitted       bool               `json:"admitted"`
	Reason         string             `json:"reason,omitempty"`
	Cluster        int                `json:"cluster"`
	Server         int                `json:"server"`
	Oversubscribed bool               `json:"oversubscribed"`
	Alloc          map[string]float64 `json:"alloc,omitempty"`
	Guaranteed     map[string]float64 `json:"guaranteed,omitempty"`
	// Retryable marks a rejection that capacity churn can relieve; such
	// rejections are served as 503 with a Retry-After header.
	Retryable bool `json:"retryable,omitempty"`
	// Degraded reports the admission was shaped without a prediction
	// model (fully guaranteed, best-fit).
	Degraded bool `json:"degraded,omitempty"`
}

// ReadyResponse is the /readyz result.
type ReadyResponse struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
}

// ReleaseResponse is the /v1/release result.
type ReleaseResponse struct {
	VM       int  `json:"vm"`
	Released bool `json:"released"`
}

// ReportRequest is the /v1/report body: a live memory-utilization push
// for an admitted VM, as a fraction of its allocation.
type ReportRequest struct {
	VM         int     `json:"vm"`
	MemoryUtil float64 `json:"memory_util"`
}

// ReportResponse is the /v1/report result.
type ReportResponse struct {
	VM      int  `json:"vm"`
	Applied bool `json:"applied"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	GET  /healthz     — liveness probe (process up)
//	GET  /readyz      — readiness probe (model trained, not degraded)
//	GET  /v1/stats    — admission counters, batching and cache stats
//	POST /v1/predict  — per-window utilization prediction for one VM
//	POST /v1/admit    — predict, shape into a CoachVM and place it
//	POST /v1/release  — free an admitted VM's capacity
//	POST /v1/report   — push live memory utilization for an admitted VM
//
// Retryable conditions — capacity/pressure rejections, a degraded
// prediction model, shutdown — are served as 503 with a Retry-After
// header. See docs/api.md for request/response schemas, error codes and
// curl examples.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/admit", s.handleAdmit)
	mux.HandleFunc("/v1/release", s.handleRelease)
	mux.HandleFunc("/v1/report", s.handleReport)
	return mux
}

// injectDelay sleeps the fault schedule's injected latency for the
// current tick, if any — applied to the request-serving endpoints only,
// never the probes.
func (s *Service) injectDelay() {
	if d := s.InjectedDelay(); d > 0 {
		time.Sleep(d)
	}
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady serves the readiness probe: 200 once the model is trained
// and the service is not degraded or shutting down, 503 with a
// Retry-After otherwise — so rollout gates and load balancers hold
// traffic through cold starts and degraded windows.
func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	ready, reason := s.Ready()
	if !ready {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Ready: false, Reason: reason})
		return
	}
	writeJSON(w, http.StatusOK, ReadyResponse{Ready: true})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handlePredict(w http.ResponseWriter, r *http.Request) {
	vm, ok := s.decodeVM(w, r)
	if !ok {
		return
	}
	s.injectDelay()
	pred, predicted, err := s.Predict(vm)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	resp := PredictResponse{VM: vm.ID, OK: predicted}
	if predicted {
		resp.Percentile = pred.Percentile
		resp.Windows = pred.Windows.PerDay
		resp.Resources = make(map[string]ResourceSeries, resources.NumKinds)
		for _, k := range resources.Kinds {
			resp.Resources[kindName(k)] = ResourceSeries{Pct: pred.Pct[k], Max: pred.Max[k]}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleAdmit(w http.ResponseWriter, r *http.Request) {
	vm, ok := s.decodeVM(w, r)
	if !ok {
		return
	}
	s.injectDelay()
	res, err := s.Admit(vm)
	if err != nil {
		if errors.Is(err, ErrAlreadyAdmitted) {
			writeJSON(w, http.StatusConflict, ErrorResponse{Error: err.Error()})
			return
		}
		writeServiceError(w, err)
		return
	}
	resp := AdmitResponse{
		VM:             vm.ID,
		Admitted:       res.Admitted,
		Cluster:        res.Cluster,
		Server:         res.Server,
		Oversubscribed: res.Oversubscribed,
		Retryable:      res.Retryable,
		Degraded:       res.Degraded,
	}
	if res.Admitted {
		resp.Alloc = vectorMap(res.Alloc)
		resp.Guaranteed = vectorMap(res.Guaranteed)
	} else if resp.Reason = res.Reason; resp.Reason == "" {
		resp.Reason = "no server in the home cluster has capacity"
	}
	if !res.Admitted && res.Retryable {
		// Transient full/pressured fleet: released capacity or a server
		// recovery can admit this VM later — tell the client when to
		// come back instead of making rejection look permanent.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReport applies a live utilization report (POST /v1/report): the
// pushed memory_util fraction drives the VM's data-plane working set
// instead of the age-indexed trace replay. 409 when the VM is not
// admitted, 404 when unknown, 400 on a malformed body or a disabled data
// plane.
func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req ReportRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "malformed request body: " + err.Error()})
		return
	}
	vm := s.VM(req.VM)
	if vm == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown vm %d", req.VM)})
		return
	}
	s.injectDelay()
	applied, err := s.Report(vm, req.MemoryUtil)
	if err != nil {
		if errors.Is(err, ErrDataPlaneDisabled) {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
		writeServiceError(w, err)
		return
	}
	if !applied {
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: fmt.Sprintf("vm %d is not admitted", vm.ID)})
		return
	}
	writeJSON(w, http.StatusOK, ReportResponse{VM: vm.ID, Applied: true})
}

func (s *Service) handleRelease(w http.ResponseWriter, r *http.Request) {
	vm, ok := s.decodeVM(w, r)
	if !ok {
		return
	}
	s.injectDelay()
	released, err := s.Release(vm)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	if !released {
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: fmt.Sprintf("vm %d is not admitted", vm.ID)})
		return
	}
	writeJSON(w, http.StatusOK, ReleaseResponse{VM: vm.ID, Released: true})
}

// decodeVM parses a POSTed VMRequest and resolves the trace VM, writing
// the error response itself when it returns ok=false.
func (s *Service) decodeVM(w http.ResponseWriter, r *http.Request) (*trace.VM, bool) {
	if !requireMethod(w, r, http.MethodPost) {
		return nil, false
	}
	var req VMRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "malformed request body: " + err.Error()})
		return nil, false
	}
	vm := s.VM(req.VM)
	if vm == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown vm %d", req.VM)})
		return nil, false
	}
	return vm, true
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "method not allowed"})
		return false
	}
	return true
}

// writeServiceError maps service errors to status codes: shutdown and an
// unavailable prediction model (degraded mode) are 503 — the model case
// with a Retry-After, since a later training run can recover — anything
// else is a 500.
func writeServiceError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if errors.Is(err, ErrModelUnavailable) {
		w.Header().Set("Retry-After", "1")
		code = http.StatusServiceUnavailable
	} else if errors.Is(err, ErrClosed) {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// kindName is the wire name of a resource kind.
func kindName(k resources.Kind) string {
	switch k {
	case resources.CPU:
		return "cpu"
	case resources.Memory:
		return "memory"
	case resources.Network:
		return "network"
	case resources.SSD:
		return "ssd"
	default:
		return fmt.Sprintf("kind%d", int(k))
	}
}

// vectorMap renders a resource vector as a JSON object keyed by kind name.
func vectorMap(v resources.Vector) map[string]float64 {
	out := make(map[string]float64, resources.NumKinds)
	for _, k := range resources.Kinds {
		out[kindName(k)] = v[k]
	}
	return out
}
