package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := newTestService(t, DefaultConfig())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestHTTPHealthAndStats(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Policy != "Coach" || len(st.Clusters) == 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestHTTPErrorCodes(t *testing.T) {
	_, ts := newTestServer(t)

	if code, _ := post(t, ts.URL+"/v1/predict", "{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", code)
	}
	if code, _ := post(t, ts.URL+"/v1/predict", `{"vm": 99999999}`); code != http.StatusNotFound {
		t.Errorf("unknown vm: status %d, want 404", code)
	}
	if code, _ := post(t, ts.URL+"/v1/release", `{"vm": 0}`); code != http.StatusConflict {
		t.Errorf("release of unadmitted vm: status %d, want 409", code)
	}
	// GET on a POST endpoint.
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET predict: status %d, want 405", resp.StatusCode)
	}
}

func TestHTTPAdmitLifecycle(t *testing.T) {
	s, ts := newTestServer(t)
	tr := getTrace(t)

	var admitted *AdmitResponse
	for _, vm := range evalVMs(tr) {
		code, body := post(t, ts.URL+"/v1/admit", fmt.Sprintf(`{"vm": %d}`, vm.ID))
		// Retryable rejections (full/pressured fleet) are 503; everything
		// else on this path should admit with a 200.
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Fatalf("admit status %d: %s", code, body)
		}
		var ar AdmitResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		if ar.Admitted {
			admitted = &ar
			break
		}
	}
	if admitted == nil {
		t.Fatal("no VM admitted over HTTP")
	}
	if admitted.Server < 0 || len(admitted.Guaranteed) == 0 {
		t.Fatalf("admitted response incomplete: %+v", admitted)
	}

	if code, body := post(t, ts.URL+"/v1/admit", fmt.Sprintf(`{"vm": %d}`, admitted.VM)); code != http.StatusConflict {
		t.Fatalf("duplicate admit status %d: %s", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/release", fmt.Sprintf(`{"vm": %d}`, admitted.VM)); code != http.StatusOK {
		t.Fatalf("release status %d: %s", code, body)
	}
	if got := s.Stats().Placed; got != 0 {
		t.Fatalf("placed after release: %d, want 0", got)
	}
}

// TestHTTPPredictByteIdentical posts the same body concurrently many
// times and requires every response to be byte-identical — the wire-level
// face of batching determinism.
func TestHTTPPredictByteIdentical(t *testing.T) {
	_, ts := newTestServer(t)
	tr := getTrace(t)
	vms := evalVMs(tr)

	for _, vm := range vms[:3] {
		body := fmt.Sprintf(`{"vm": %d}`, vm.ID)
		code, want := post(t, ts.URL+"/v1/predict", body)
		if code != http.StatusOK {
			t.Fatalf("predict status %d: %s", code, want)
		}
		const n = 24
		got := make([][]byte, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					errs[i] = err
					return
				}
				defer resp.Body.Close()
				got[i], errs[i] = io.ReadAll(resp.Body)
			}(i)
		}
		wg.Wait()
		for i := range got {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			if !bytes.Equal(got[i], want) {
				t.Fatalf("vm %d response %d differs:\n got: %s\nwant: %s", vm.ID, i, got[i], want)
			}
		}
	}
}

func TestHTTPShutdown(t *testing.T) {
	s, ts := newTestServer(t)
	tr := getTrace(t)
	s.Close()
	code, _ := post(t, ts.URL+"/v1/predict", fmt.Sprintf(`{"vm": %d}`, tr.VMs[0].ID))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("predict after shutdown: status %d, want 503", code)
	}
}
