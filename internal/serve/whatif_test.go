package serve

import (
	"testing"

	"github.com/coach-oss/coach/internal/cluster"
)

// TestAdmissionScoresCandidatesInOneBatch is the acceptance test for the
// batched what-if scoring path: an admission decision costs one forest
// evaluation of the VM (however many candidate servers exist) plus one
// batched what-if sweep over the whole candidate ranking. Growing the
// fleet 8x must grow only the candidates-per-sweep, never the forest
// passes or the sweep count.
func TestAdmissionScoresCandidatesInOneBatch(t *testing.T) {
	tr := getTrace(t)
	cache := NewModelCache()
	mkService := func(serversPer int) *Service {
		sc := DefaultConfig()
		sc.Cache = cache
		sc.DataPlane = true
		sc.AdmitPressureFrac = 0.99
		sc.Batch.Disabled = true // deterministic per-admission Predict counts
		svc, err := New(tr, cluster.NewFleet(cluster.DefaultClusters(serversPer)), sc)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		return svc
	}
	small := mkService(2)
	big := mkService(16)

	model, err := small.modelFor()
	if err != nil {
		t.Fatal(err)
	}
	vms := evalVMs(tr)
	if len(vms) > 12 {
		vms = vms[:12]
	}

	// The services share one cached model, so forest counters are measured
	// as sequential deltas: small fleet first, then the 8x fleet.
	base := model.InferenceStats()
	for _, vm := range vms {
		if _, err := small.Admit(vm); err != nil {
			t.Fatal(err)
		}
	}
	afterSmall := model.InferenceStats()
	for _, vm := range vms {
		if _, err := big.Admit(vm); err != nil {
			t.Fatal(err)
		}
	}
	afterBig := model.InferenceStats()

	passesSmall := afterSmall.Passes - base.Passes
	passesBig := afterBig.Passes - afterSmall.Passes
	if passesSmall != passesBig {
		t.Errorf("forest passes depend on fleet size: %d on 2 servers/cluster, %d on 16",
			passesSmall, passesBig)
	}
	if passesSmall == 0 {
		t.Fatal("fixture regression: admissions never consulted the forest")
	}

	smallDP := small.Stats().DataPlane
	bigDP := big.Stats().DataPlane
	if smallDP.WhatIfBatches == 0 {
		t.Fatal("fixture regression: no admission took the pressure-scored path")
	}
	// Same VMs, same decisions to make: the 8x fleet runs the same number
	// of batched sweeps...
	if smallDP.WhatIfBatches != bigDP.WhatIfBatches {
		t.Errorf("what-if batches depend on fleet size: %d vs %d",
			smallDP.WhatIfBatches, bigDP.WhatIfBatches)
	}
	// ...but each sweep covers more candidates.
	if bigDP.WhatIfCandidates <= smallDP.WhatIfCandidates {
		t.Errorf("what-if candidates did not grow with the fleet: %d (2/cluster) vs %d (16/cluster)",
			smallDP.WhatIfCandidates, bigDP.WhatIfCandidates)
	}
	if smallDP.WhatIfCandidates < smallDP.WhatIfBatches {
		t.Errorf("scored %d candidates across %d sweeps: sweeps must cover whole rankings",
			smallDP.WhatIfCandidates, smallDP.WhatIfBatches)
	}
}
