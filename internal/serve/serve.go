// Package serve is Coach's online control plane: a long-running,
// concurrency-safe prediction-and-admission service over the offline
// stack — the long-term forest predictor (internal/predict), the
// time-window scheduler (internal/scheduler) and CoachVM shaping
// (internal/coachvm) — exposed over HTTP/JSON by cmd/coachd and driven by
// cmd/coach-loadgen.
//
// Three mechanisms make the hot path production-shaped rather than a thin
// wrapper (docs/DESIGN.md §7):
//
//   - A request batcher coalesces concurrent predictions into single
//     batched forest passes (predict.LongTerm.PredictBatch), amortizing
//     per-tree dispatch across requests. Batched results are bit-identical
//     to per-request prediction, so responses never depend on batch
//     composition.
//   - A trained-model cache keyed by (trace fingerprint, training config)
//     makes cold starts pay forest training once; later services and
//     requests share the fitted model (singleflight under concurrency).
//   - Fleet state is sharded per cluster — the same boundaries the
//     parallel simulator replays concurrently — with one lock per shard,
//     so admissions and releases in different clusters never contend.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/core"
	"github.com/coach-oss/coach/internal/fault"
	"github.com/coach-oss/coach/internal/memsim"
	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

// ErrDataPlaneDisabled is returned by TickDataPlane when the service was
// built without Config.DataPlane.
var ErrDataPlaneDisabled = errors.New("serve: data plane disabled")

// ErrModelUnavailable marks predictions that failed because the model
// could not be trained — a real training error or an injected
// train-fail fault. The service runs degraded: admissions fall back to
// fully-guaranteed best-fit placement, predictions map to HTTP 503 with
// a Retry-After, and /readyz reports not-ready.
var ErrModelUnavailable = errors.New("serve: prediction model unavailable")

// dpTickSeconds is the simulated length of one data-plane tick: one
// 5-minute utilization sample, matching the cluster simulator's replay
// granularity.
const dpTickSeconds = float64(timeseries.SampleMinutes) * 60

// Config parameterizes a Service.
type Config struct {
	// Policy is the oversubscription policy admissions are shaped under
	// (default Coach).
	Policy scheduler.PolicyKind
	// Windows is the time-window split (default 6x4h).
	Windows timeseries.Windows
	// Percentile sizes the guaranteed portion (default 95).
	Percentile float64
	// LongTerm configures predictor training; Windows/Percentile above
	// override its corresponding fields.
	LongTerm predict.LongTermConfig
	// TrainUpTo is the trace sample separating the model's training
	// period from served requests (default: half the horizon).
	TrainUpTo int
	// Batch tunes the prediction batcher.
	Batch BatchConfig
	// AdmitBatch tunes the admission batcher, which coalesces concurrent
	// admissions on the same shard into one fleet-sized what-if rollout
	// (one forest pass, one score matrix, one pool sweep) committed in
	// arrival order — bit-identical to serial admission (docs/DESIGN.md
	// §15). The zero value mirrors Batch, so disabling prediction
	// batching (-no-batch) disables admission batching too unless
	// AdmitBatch is set explicitly.
	AdmitBatch BatchConfig
	// Cache optionally shares a trained-model cache across services.
	// When nil the service creates a private one.
	Cache *ModelCache
	// DataPlane enables the per-server memory data plane: every fleet
	// server runs a memsim server plus oversubscription agent, admitted
	// VMs attach their memory, and TickDataPlane advances the fleet by one
	// 5-minute sample (cmd/coachd drives it on a timer). GET /v1/stats
	// then reports fleet-wide mitigation aggregates.
	DataPlane bool
	// MitigationPolicy and MitigationMode configure the per-server agents
	// when DataPlane is set.
	MitigationPolicy agent.Policy
	MitigationMode   agent.Mode
	// DataPlanePoolFrac and DataPlaneUnallocFrac override the per-server
	// pool sizing (fractions of memory capacity; 0 = the
	// core.DefaultDataPlaneConfig defaults), mirroring the simulator's
	// knobs so coachd can serve the same pressure scenarios experiments
	// replay.
	DataPlanePoolFrac    float64
	DataPlaneUnallocFrac float64
	// CrossShardMigration lets completed live migrations escape their
	// home cluster shard through the two-phase (reserve-then-commit)
	// handoff in TickDataPlane. Requires DataPlane.
	CrossShardMigration bool
	// MigrationDirtyFrac and MigrationPressureFrac override the
	// migration engine defaults (0 = core.DefaultMigrationConfig): the
	// working-set fraction that demand-faults at a migration target, and
	// the projected pool occupancy above which a server is not a target.
	MigrationDirtyFrac    float64
	MigrationPressureFrac float64
	// AdmitPressureFrac makes admission pressure-aware (0 = off): an
	// oversubscribed VM is only placed on a server whose pool, after
	// absorbing the VM's scheduled peak VA demand, stays below this
	// occupancy — re-routing it off the best-fit server when that pool
	// is thrashing, and rejecting it when no server in the home cluster
	// can absorb it (even if raw capacity exists). Requires DataPlane.
	AdmitPressureFrac float64
	// Faults optionally supplies a compiled fault schedule (internal/
	// fault) — the same schedule the simulator applies for this spec, so
	// one scenario drives identical failure sequences in both. Server
	// crash/recover events apply on data-plane ticks; train-fail forces
	// degraded (best-fit-only) serving; latency windows delay requests;
	// handoff crash points kill the cross-shard handoff coordinator
	// mid-protocol, exercising the intent-log recovery sweep. See
	// docs/DESIGN.md §13.
	Faults *fault.Schedule
}

// DefaultConfig returns the paper's deployed configuration with
// opportunistic batching.
func DefaultConfig() Config {
	return Config{
		Policy:     scheduler.PolicyCoach,
		Windows:    timeseries.Windows{PerDay: 6},
		Percentile: 95,
		LongTerm:   predict.DefaultLongTermConfig(),
	}
}

// fleetShard is one cluster's independently lockable slice of fleet
// state. Placement never crosses cluster boundaries (cluster.Fleet.Shards
// — the invariant the parallel simulator is built on), so per-shard
// locking admits full concurrency between clusters while each shard's
// scheduler stays the deterministic single-threaded bin-packer.
type fleetShard struct {
	mu       sync.Mutex
	sched    *scheduler.Scheduler // nil when the cluster has no servers
	admitted int64
	released int64
	rejected int64

	// dp is the shard's memory data plane (nil unless Config.DataPlane);
	// dpVMs tracks each attached VM's utilization cursor so TickDataPlane
	// can replay its working set sample by sample; eng is the shard's
	// migration engine over the same scheduler and data plane. All are
	// guarded by mu.
	dp    *core.DataPlane
	dpVMs map[int]*dpTracked
	eng   *core.MigrationEngine

	// scorer batches placement scoring for this shard: the migration
	// engine's scorer when the data plane is on (so admission, migration
	// and recovery share one scratch and one set of counters), a
	// scheduler-only scorer otherwise. Guarded by mu; nil when the shard
	// has no servers.
	scorer *core.WhatIfScorer

	// Admission-batch scratch, owned exclusively by the shard's admit
	// loop goroutine (admitBatcher.loop) — never touched elsewhere, so
	// it needs no locking of its own.
	abPreds []coachvm.Prediction
	abOKs   []bool
	abCVMs  []*coachvm.CVM
	abNeeds []float64

	// Migration-landing and pressure-admission counters (guarded by mu).
	// Cross-shard landings are attributed to the source shard, warm
	// arrivals to the landing shard.
	sameShardMigs    int64
	crossShardMigs   int64
	failedMigs       int64
	warmArrivedGB    float64
	pressureRejected int64
}

// countPlan folds a landed migration plan into the shard's counters.
func (sh *fleetShard) countPlan(p core.MigrationPlan) {
	if p.Relanded {
		sh.failedMigs++
	} else {
		sh.sameShardMigs++
	}
	sh.warmArrivedGB += p.WarmGB
}

// dpTracked is one admitted VM's data-plane state: age counts the
// 5-minute ticks since admission, indexing into the VM's utilization
// series (clamped to its last sample once the series is exhausted) —
// until a live utilization report (POST /v1/report) overrides the
// replayed series with client-pushed truth.
type dpTracked struct {
	vm  *trace.VM
	age int
	// reported is the last client-reported memory utilization fraction;
	// once hasReport is set it drives the working set instead of the
	// age-indexed replay.
	reported  float64
	hasReport bool
}

// wss returns the VM's current working-set size: allocation times the
// reported utilization when a client pushed one, otherwise the
// utilization sample at the VM's age.
func (d *dpTracked) wss() float64 {
	if d.hasReport {
		return d.vm.Alloc[resources.Memory] * d.reported
	}
	s := d.vm.Util[resources.Memory]
	if len(s) == 0 {
		return 0
	}
	i := d.age
	if i >= len(s) {
		i = len(s) - 1
	}
	return d.vm.Alloc[resources.Memory] * s[i]
}

// Service is a concurrency-safe prediction-and-admission server over one
// trace and one fleet. All methods are safe for concurrent use. The
// zero value is not usable; construct with New.
type Service struct {
	cfg   Config
	tr    *trace.Trace
	fleet *cluster.Fleet
	cache *ModelCache
	key   ModelKey
	// trainCfg is the full training configuration, including the
	// Forest.Workers throughput knob the cache key normalizes away.
	trainCfg predict.LongTermConfig
	vmByID   map[int]*trace.VM
	shards   []*fleetShard

	// route maps an admitted VM to the shard that currently holds it.
	// Admission always lands a VM in its home cluster's shard, but a
	// cross-shard migration can move it; Release, Report and duplicate
	// detection follow the route, not the home. Guarded by routeMu,
	// never held together with a shard lock.
	routeMu sync.Mutex
	route   map[int]int

	batcher *batcher
	// admit is the admission batcher (nil when AdmitBatch.Disabled):
	// per-shard queues whose loop goroutines run admitBatch.
	admit *admitBatcher

	// dpTicks counts completed TickDataPlane passes.
	dpTicks atomic.Int64

	closeMu sync.Mutex
	closed  bool

	// model is the trained predictor, set once; the atomic pointer keeps
	// the per-request fast path lock-free (modelMu only guards training).
	model   atomic.Pointer[predict.LongTerm]
	modelMu sync.Mutex

	// Failure-domain state (docs/DESIGN.md §13). injector fires the
	// serving-only faults (handoff crash points, injected request
	// latency); fEvents/fi walk the compiled server crash/recover
	// events, applied at the top of each data-plane tick; intents is the
	// write-ahead log of in-flight cross-shard handoffs, swept for
	// crash recovery before every tick; degraded flips when model
	// training fails and the service falls back to best-fit-only
	// admission.
	injector *fault.Injector
	fMu      sync.Mutex
	fEvents  []fault.Event
	fi       int

	intentMu sync.Mutex
	intents  map[int]*handoffIntent

	degraded atomic.Bool

	// Failure-domain counters, surfaced in Stats.
	crashes     atomic.Int64
	recoveries  atomic.Int64
	evictedVMs  atomic.Int64
	replacedVMs atomic.Int64
	lostVMs     atomic.Int64
}

// New builds a service over tr and fleet. The model is trained lazily on
// the first prediction (through the model cache — see Warm to front-load
// it) so construction stays cheap.
func New(tr *trace.Trace, fleet *cluster.Fleet, cfg Config) (*Service, error) {
	if cfg.Percentile == 0 {
		cfg.Percentile = 95
	}
	if cfg.Windows.PerDay == 0 {
		cfg.Windows = timeseries.Windows{PerDay: 6}
	}
	if err := cfg.Windows.Validate(); err != nil {
		return nil, err
	}
	if cfg.TrainUpTo == 0 {
		cfg.TrainUpTo = tr.Horizon / 2
	}
	if cfg.TrainUpTo <= 0 || cfg.TrainUpTo >= tr.Horizon {
		return nil, fmt.Errorf("serve: TrainUpTo %d outside (0,%d)", cfg.TrainUpTo, tr.Horizon)
	}
	if err := fleet.Validate(); err != nil {
		return nil, err
	}
	if fleet.NumClusters() == 0 {
		return nil, fmt.Errorf("serve: fleet has no clusters")
	}
	cache := cfg.Cache
	if cache == nil {
		cache = NewModelCache()
	}
	if cfg.AdmitBatch == (BatchConfig{}) {
		// Unconfigured admission batching follows the prediction batcher,
		// so one -no-batch knob yields fully serial serving.
		cfg.AdmitBatch = cfg.Batch
	}

	ltCfg := cfg.LongTerm
	ltCfg.Windows = cfg.Windows
	ltCfg.Percentile = cfg.Percentile
	// Forest.Workers only sets how many goroutines grow trees — the
	// trained forest is byte-identical for any value — so it is zeroed in
	// the cache key: services differing only in training parallelism share
	// one model instead of each paying a cold start.
	keyCfg := ltCfg
	keyCfg.Forest.Workers = 0
	s := &Service{
		cfg:      cfg,
		tr:       tr,
		fleet:    fleet,
		cache:    cache,
		trainCfg: ltCfg,
		vmByID:   make(map[int]*trace.VM, len(tr.VMs)),
		route:    make(map[int]int),
		key:      ModelKey{TraceID: Fingerprint(tr), TrainUpTo: cfg.TrainUpTo, Config: keyCfg},
		injector: fault.NewInjector(cfg.Faults),
		fEvents:  cfg.Faults.Events(),
		intents:  make(map[int]*handoffIntent),
	}
	for i := range tr.VMs {
		s.vmByID[tr.VMs[i].ID] = &tr.VMs[i]
	}
	for ci, servers := range fleet.Shards() {
		sh := &fleetShard{}
		if len(servers) > 0 {
			sched, err := scheduler.NewOverServers(servers, cfg.Windows)
			if err != nil {
				return nil, err
			}
			sh.sched = sched
			if cfg.DataPlane {
				dpCfg := core.DefaultDataPlaneConfig()
				dpCfg.Agent.Policy = cfg.MitigationPolicy
				dpCfg.Agent.Mode = cfg.MitigationMode
				if cfg.DataPlanePoolFrac > 0 {
					dpCfg.PoolFrac = cfg.DataPlanePoolFrac
				}
				if cfg.DataPlaneUnallocFrac > 0 {
					dpCfg.UnallocFrac = cfg.DataPlaneUnallocFrac
				}
				dp, err := core.NewDataPlane(dpCfg, servers)
				if err != nil {
					return nil, err
				}
				mc := core.MigrationConfigFor(cfg.MigrationDirtyFrac, cfg.MigrationPressureFrac,
					cfg.CrossShardMigration, fleet.NumClusters())
				eng, err := core.NewMigrationEngine(mc, ci, sched, dp)
				if err != nil {
					return nil, err
				}
				sh.dp = dp
				sh.dpVMs = make(map[int]*dpTracked)
				sh.eng = eng
				sh.scorer = eng.Scorer()
			} else {
				sh.scorer = core.NewWhatIfScorer(sched, nil)
			}
		}
		s.shards = append(s.shards, sh)
	}
	if !cfg.Batch.Disabled {
		s.batcher = newBatcher(cfg.Batch, s.predictBatch)
	}
	if !cfg.AdmitBatch.Disabled {
		s.admit = newAdmitBatcher(len(s.shards), cfg.AdmitBatch, s.admitBatch)
	}
	return s, nil
}

// modelFor returns the trained model, training through the cache on first
// use. Concurrent callers on a cold cache block on one training run;
// afterwards the lookup is a lock-free atomic load. A failed (or
// fault-injected) training run marks the service degraded and returns
// ErrModelUnavailable; a later successful run clears the flag.
func (s *Service) modelFor() (*predict.LongTerm, error) {
	if m := s.model.Load(); m != nil {
		return m, nil
	}
	s.modelMu.Lock()
	defer s.modelMu.Unlock()
	if m := s.model.Load(); m != nil {
		return m, nil
	}
	if s.cfg.Faults.TrainFail() {
		// Injected training failure: degraded for the process lifetime,
		// exactly like a training run that errored and keeps erroring.
		s.degraded.Store(true)
		return nil, fmt.Errorf("%w: injected training failure", ErrModelUnavailable)
	}
	m, err := s.cache.Get(s.key, func() (*predict.LongTerm, error) {
		return predict.TrainLongTerm(s.tr, s.key.TrainUpTo, s.trainCfg)
	})
	if err != nil {
		s.degraded.Store(true)
		return nil, fmt.Errorf("%w: %v", ErrModelUnavailable, err)
	}
	s.degraded.Store(false)
	s.model.Store(m)
	return m, nil
}

// Warm trains (or fetches) the model eagerly so the first request does not
// pay the cold start.
func (s *Service) Warm() error {
	_, err := s.modelFor()
	return err
}

// predictBatch is the batcher's worker: one batched forest pass.
func (s *Service) predictBatch(vms []*trace.VM) ([]coachvm.Prediction, []bool, error) {
	m, err := s.modelFor()
	if err != nil {
		return nil, nil, err
	}
	preds, oks := m.PredictBatch(s.tr, vms)
	return preds, oks, nil
}

// VM resolves a trace VM id (nil when unknown).
func (s *Service) VM(id int) *trace.VM { return s.vmByID[id] }

// Predict returns the per-window utilization prediction for vm. ok=false
// means the model lacks history to predict it (§3.3: such VMs must not be
// oversubscribed). Concurrent calls coalesce into batched forest passes
// unless batching is disabled; either path returns bit-identical results.
func (s *Service) Predict(vm *trace.VM) (coachvm.Prediction, bool, error) {
	if s.isClosed() {
		return coachvm.Prediction{}, false, ErrClosed
	}
	if s.batcher != nil {
		return s.batcher.submit(vm)
	}
	m, err := s.modelFor()
	if err != nil {
		return coachvm.Prediction{}, false, err
	}
	pred, ok := m.Predict(s.tr, vm)
	return pred, ok, nil
}

// AdmitResult reports one admission decision.
type AdmitResult struct {
	// Admitted is false when no server in the VM's home cluster had
	// capacity, or (with AdmitPressureFrac set) when no server's pool
	// could absorb the VM's oversubscribed demand.
	Admitted bool
	// Reason explains a rejection ("" when admitted).
	Reason string
	// Cluster is the home cluster the VM was routed to.
	Cluster int
	// Server is the shard-local server index the VM was placed on (-1
	// when rejected).
	Server int
	// Oversubscribed reports whether the VM received a non-trivial
	// guaranteed/oversubscribed split (false: fully guaranteed).
	Oversubscribed bool
	// Alloc and Guaranteed are the requested allocation and the resolved
	// always-backed portion.
	Alloc      resources.Vector
	Guaranteed resources.Vector
	// Retryable marks rejections worth retrying later: capacity or pool
	// pressure that admitted VMs releasing (or servers recovering) can
	// relieve. HTTP maps them to 503 + Retry-After.
	Retryable bool
	// Degraded reports that the admission was shaped without a model
	// (training failed): the VM was placed fully guaranteed, best-fit.
	Degraded bool
}

// Admit predicts vm, shapes it into a CoachVM under the configured policy
// and places it onto its home cluster's shard. Admissions of distinct
// clusters run concurrently; within a cluster concurrent admissions
// coalesce into batched decision passes (unless AdmitBatch.Disabled)
// whose results are bit-identical to serial admission in arrival order —
// the shard lock serializes placement either way, so the underlying
// best-fit packer stays deterministic.
//
// With AdmitPressureFrac set, admission of an oversubscribed VM consults
// the shard's data-plane pressure through the migration engine's shared
// placement path: the VM is re-routed to the best-fit server whose pool
// can absorb its scheduled peak VA demand, and rejected — even when raw
// capacity exists — when every pool in the home cluster is thrashing.
func (s *Service) Admit(vm *trace.VM) (AdmitResult, error) {
	if s.admit != nil {
		return s.admit.submit(s.shardIndex(vm), vm)
	}
	return s.admitSerial(vm)
}

// admitSerial is the per-request admission path: one prediction (through
// the prediction batcher when enabled), one CVM shaping, one placement
// decision under the shard lock. It is the reference the batched path is
// bit-identical to.
func (s *Service) admitSerial(vm *trace.VM) (AdmitResult, error) {
	pred, ok, err := s.Predict(vm)
	degraded := false
	if err != nil {
		if !errors.Is(err, ErrModelUnavailable) {
			return AdmitResult{}, err
		}
		// Degraded admission: no model, no oversubscription — the VM is
		// shaped fully guaranteed and best-fit placed, the safe envelope
		// §3.3 prescribes for unpredictable VMs.
		pred, ok, degraded = coachvm.Prediction{}, false, true
	}
	cvm, err := scheduler.BuildCVM(s.cfg.Policy, vm.ID, vm.Alloc, pred, ok, s.cfg.Windows)
	if err != nil {
		return AdmitResult{}, err
	}
	ci := s.shardIndex(vm)
	res := AdmitResult{
		Cluster:        ci,
		Server:         -1,
		Oversubscribed: ok && s.cfg.Policy != scheduler.PolicyNone,
		Alloc:          vm.Alloc,
		Guaranteed:     cvm.Guaranteed,
		Degraded:       degraded,
	}
	if s.routedShard(vm.ID) >= 0 {
		return res, fmt.Errorf("serve: vm %d %w", vm.ID, ErrAlreadyAdmitted)
	}
	sh := s.shards[ci]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sched == nil {
		sh.rejected++
		res.Reason = "home cluster has no servers"
		return res, nil
	}
	if sh.sched.ServerOf(vm.ID) >= 0 {
		return res, fmt.Errorf("serve: vm %d %w", vm.ID, ErrAlreadyAdmitted)
	}
	srv, placed := -1, false
	if sh.dp != nil && s.cfg.AdmitPressureFrac > 0 {
		if need := core.VAPeakGB(cvm); need > 0 {
			// One batched what-if pass scores every candidate server for
			// this admission (docs/DESIGN.md §14); the scorer's scratch is
			// the engine's, reused under the shard lock.
			if c, ok := sh.eng.Scorer().PickPlacement(cvm, -1, need, s.cfg.AdmitPressureFrac); ok {
				if err := sh.sched.PlaceAt(cvm, c.Server); err == nil {
					srv, placed = c.Server, true
				}
			} else if sh.sched.HasFeasible(cvm, -1) {
				// Capacity exists, but no pool can absorb the VM's
				// oversubscribed demand: admitting it would only add to
				// the thrashing.
				sh.rejected++
				sh.pressureRejected++
				res.Reason = "pool pressure: no server in the home cluster can absorb the VM's oversubscribed demand"
				res.Retryable = true
				return res, nil
			}
		}
	}
	if !placed {
		if srv, placed = sh.sched.Place(cvm); !placed {
			sh.rejected++
			res.Reason = "no server in the home cluster has capacity"
			res.Retryable = true
			return res, nil
		}
	}
	sh.admitted++
	res.Admitted = true
	res.Server = srv
	if sh.dp != nil {
		err := sh.dp.Attach(srv, vm.ID,
			vm.Alloc[resources.Memory], cvm.Guaranteed[resources.Memory])
		if err != nil {
			return res, err
		}
		tr := &dpTracked{vm: vm}
		sh.dpVMs[vm.ID] = tr
		sh.dp.SetWSS(vm.ID, tr.wss())
	}
	s.setRoute(vm.ID, ci)
	return res, nil
}

// admitBatch is the admission batcher's per-shard worker: one batched
// decision pass over every request that coalesced on shard ci, returning
// the number of conflict-replayed rollout cells (docs/DESIGN.md §15).
//
// The expensive sweeps run once per batch instead of once per request —
// one batched forest pass (PredictBatchInto), one scored
// (request × server) matrix plus one pool-state sweep (ScoreMany) — then
// a serial commit loop walks the requests in arrival order, applying each
// decision exactly as admitSerial would have at that point: every check,
// counter and reason string below mirrors admitSerial line for line, and
// Rollout.Commit folds each placement into the snapshot so request i+1
// observes the capacity request i consumed. The equivalence and conflict
// tests in admitbatch_test.go pin the bit-identity.
func (s *Service) admitBatch(ci int, vms []*trace.VM, out []admitOut) int {
	sh := s.shards[ci]

	degraded := false
	m, merr := s.modelFor()
	if merr != nil {
		if !errors.Is(merr, ErrModelUnavailable) {
			for i := range out {
				out[i] = admitOut{err: merr}
			}
			return 0
		}
		// Degraded admission, exactly as admitSerial: no model, no
		// oversubscription — every VM in the batch shapes fully
		// guaranteed and best-fit places.
		degraded = true
	}
	if cap(sh.abPreds) < len(vms) {
		sh.abPreds = make([]coachvm.Prediction, len(vms))
		sh.abOKs = make([]bool, len(vms))
	}
	preds, oks := sh.abPreds[:len(vms)], sh.abOKs[:len(vms)]
	if !degraded {
		m.PredictBatchInto(s.tr, vms, preds, oks)
	}

	cvms, needs := sh.abCVMs[:0], sh.abNeeds[:0]
	for i, vm := range vms {
		pred, ok := coachvm.Prediction{}, false
		if !degraded {
			pred, ok = preds[i], oks[i]
		}
		cvm, err := scheduler.BuildCVM(s.cfg.Policy, vm.ID, vm.Alloc, pred, ok, s.cfg.Windows)
		if err != nil {
			out[i] = admitOut{err: err}
			cvms, needs = append(cvms, nil), append(needs, 0)
			continue
		}
		out[i].res = AdmitResult{
			Cluster:        ci,
			Server:         -1,
			Oversubscribed: ok && s.cfg.Policy != scheduler.PolicyNone,
			Alloc:          vm.Alloc,
			Guaranteed:     cvm.Guaranteed,
			Degraded:       degraded,
		}
		cvms, needs = append(cvms, cvm), append(needs, core.VAPeakGB(cvm))
	}
	sh.abCVMs, sh.abNeeds = cvms, needs

	sh.mu.Lock()
	defer sh.mu.Unlock()
	var ro *core.Rollout
	if sh.scorer != nil {
		ro = sh.scorer.ScoreMany(cvms, needs)
	}
	replays := 0
	for r, vm := range vms {
		cvm := cvms[r]
		if cvm == nil {
			continue // BuildCVM failed; out[r] already carries the error
		}
		if s.routedShard(vm.ID) >= 0 {
			out[r].err = fmt.Errorf("serve: vm %d %w", vm.ID, ErrAlreadyAdmitted)
			continue
		}
		if sh.sched == nil {
			sh.rejected++
			out[r].res.Reason = "home cluster has no servers"
			continue
		}
		if sh.sched.ServerOf(vm.ID) >= 0 {
			out[r].err = fmt.Errorf("serve: vm %d %w", vm.ID, ErrAlreadyAdmitted)
			continue
		}
		srv, placed := -1, false
		if sh.dp != nil && s.cfg.AdmitPressureFrac > 0 && needs[r] > 0 {
			if c := ro.PickPressured(r, s.cfg.AdmitPressureFrac); c >= 0 {
				if err := sh.sched.PlaceAt(cvm, c); err == nil {
					srv, placed = c, true
				}
			} else if ro.HasFeasible(r) {
				sh.rejected++
				sh.pressureRejected++
				out[r].res.Reason = "pool pressure: no server in the home cluster can absorb the VM's oversubscribed demand"
				out[r].res.Retryable = true
				continue
			}
		}
		if !placed {
			if f := ro.PickFit(r); f >= 0 {
				if err := sh.sched.PlaceAt(cvm, f); err == nil {
					srv, placed = f, true
				}
			}
			if !placed {
				sh.rejected++
				out[r].res.Reason = "no server in the home cluster has capacity"
				out[r].res.Retryable = true
				continue
			}
		}
		sh.admitted++
		out[r].res.Admitted = true
		out[r].res.Server = srv
		attached := true
		if sh.dp != nil {
			err := sh.dp.Attach(srv, vm.ID,
				vm.Alloc[resources.Memory], cvm.Guaranteed[resources.Memory])
			if err != nil {
				out[r].err = err
				attached = false
			} else {
				tr := &dpTracked{vm: vm}
				sh.dpVMs[vm.ID] = tr
				sh.dp.SetWSS(vm.ID, tr.wss())
			}
		}
		if attached {
			s.setRoute(vm.ID, ci)
		}
		// The placement mutated this server's pool whether or not the
		// attach succeeded; fold it in so later requests see it.
		replays += ro.Commit(r, srv)
	}
	return replays
}

// routedShard returns the shard currently holding vmID (-1 when not
// admitted).
func (s *Service) routedShard(vmID int) int {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	if ci, ok := s.route[vmID]; ok {
		return ci
	}
	return -1
}

func (s *Service) setRoute(vmID, shard int) {
	s.routeMu.Lock()
	s.route[vmID] = shard
	s.routeMu.Unlock()
}

func (s *Service) clearRoute(vmID int) {
	s.routeMu.Lock()
	delete(s.route, vmID)
	s.routeMu.Unlock()
}

// Release removes an admitted VM from its server — wherever migration
// routed it — freeing its capacity. released reports whether the VM was
// admitted; after Close it returns ErrClosed like every other mutating
// call, so a post-shutdown Stats snapshot is final.
//
// A Release can race a cross-shard handoff mid-flight: the route still
// names the source shard while the VM's bookkeeping has left it but not
// yet committed at the destination. Returning false there would leak the
// VM (the caller believes it gone while the commit re-admits it
// elsewhere), so Release retries while the route says "admitted" but the
// routed shard does not hold the VM — the handoff always completes and
// re-points or clears the route, at which point the retry resolves.
func (s *Service) Release(vm *trace.VM) (released bool, err error) {
	if s.isClosed() {
		return false, ErrClosed
	}
	for attempt := 0; ; attempt++ {
		ci := s.routedShard(vm.ID)
		routed := ci >= 0
		if !routed {
			ci = s.shardIndex(vm)
		}
		sh := s.shards[ci]
		sh.mu.Lock()
		if sh.sched == nil {
			sh.mu.Unlock()
			return false, nil
		}
		if cvm, _ := sh.sched.Remove(vm.ID); cvm == nil {
			sh.mu.Unlock()
			if routed && attempt < 1000 {
				// In-flight handoff: drive its intent forward (the
				// coordinator may have crashed mid-protocol — the intent
				// log makes completion safe from any caller), then yield
				// until it commits or cancels.
				if in := s.intentFor(vm.ID); in != nil {
					if err := s.driveHandoff(in); err != nil {
						return false, err
					}
				}
				runtime.Gosched()
				continue
			}
			return false, nil
		}
		if sh.dp != nil {
			sh.dp.Detach(vm.ID)
			delete(sh.dpVMs, vm.ID)
		}
		sh.released++
		sh.mu.Unlock()
		s.clearRoute(vm.ID)
		return true, nil
	}
}

// Report records a live memory-utilization report for an admitted VM:
// the client-pushed fraction of the VM's allocation drives its data-plane
// working set from now on, replacing the age-indexed replay of its trace
// utilization series (POST /v1/report). Out-of-range fractions are
// clamped to [0,1]. applied is false when the VM is not admitted (or the
// service has no data plane attachment for it).
func (s *Service) Report(vm *trace.VM, memUtil float64) (applied bool, err error) {
	if s.isClosed() {
		return false, ErrClosed
	}
	if !s.cfg.DataPlane {
		return false, ErrDataPlaneDisabled
	}
	if memUtil < 0 {
		memUtil = 0
	}
	if memUtil > 1 {
		memUtil = 1
	}
	ci := s.routedShard(vm.ID)
	if ci < 0 {
		return false, nil
	}
	sh := s.shards[ci]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tr, ok := sh.dpVMs[vm.ID]
	if !ok {
		return false, nil
	}
	tr.reported, tr.hasReport = memUtil, true
	sh.dp.SetWSS(vm.ID, tr.wss())
	return true, nil
}

// TickDataPlane advances every shard's memory data plane by one 5-minute
// sample: each admitted VM's working set follows its utilization series
// (or its last live report), every server runs hypervisor paging plus the
// agent's monitoring/prediction/mitigation pass, and completed live
// migrations resolve through the shard's migration engine under its lock
// — scheduler bookkeeping and memory moving together. Migrations with no
// unpressured same-shard target hand off cross-shard afterwards through
// the write-ahead intent log (driveHandoff). Each tick first sweeps that
// log for intents a crashed coordinator left mid-protocol, then applies
// any compiled fault events due this tick (server crashes/recoveries).
// cmd/coachd calls it on a wall-clock timer (-dp-interval); tests drive
// it directly. It returns ErrDataPlaneDisabled when the service was
// built without a data plane.
func (s *Service) TickDataPlane() error {
	if s.isClosed() {
		return ErrClosed
	}
	if !s.cfg.DataPlane {
		return ErrDataPlaneDisabled
	}
	tick := int(s.dpTicks.Load())
	// Recovery sweep before fault application: intents parked by a
	// crashed coordinator complete (or roll back) while the fleet state
	// they reference is still the state they were logged against.
	if err := s.recoverHandoffs(); err != nil {
		return err
	}
	if err := s.applyFaultEvents(tick); err != nil {
		return err
	}
	var handoffs []core.MigrationRequest
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.dp == nil {
			sh.mu.Unlock()
			continue
		}
		for id, tr := range sh.dpVMs {
			tr.age++
			sh.dp.SetWSS(id, tr.wss())
		}
		_, completed, err := sh.dp.Tick(dpTickSeconds)
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		plans, reqs, err := sh.eng.Resolve(tick, completed)
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		for _, p := range plans {
			sh.countPlan(p)
		}
		handoffs = append(handoffs, reqs...)
		sh.mu.Unlock()
	}
	for _, req := range handoffs {
		if err := s.driveHandoff(s.newIntent(req)); err != nil {
			return err
		}
	}
	s.dpTicks.Add(1)
	return nil
}

// shardIndex routes a VM to its home cluster's shard, folding trace
// cluster indices modulo the fleet's cluster count exactly as the
// simulator does, so serving and replay agree on placement domains.
func (s *Service) shardIndex(vm *trace.VM) int {
	ci := vm.Cluster % len(s.shards)
	if ci < 0 {
		ci += len(s.shards)
	}
	return ci
}

// ClusterStats is one shard's admission counters and occupancy.
type ClusterStats struct {
	Cluster     int    `json:"cluster"`
	Name        string `json:"name"`
	Servers     int    `json:"servers"`
	UsedServers int    `json:"used_servers"`
	Placed      int    `json:"placed"`
	Admitted    int64  `json:"admitted"`
	Released    int64  `json:"released"`
	Rejected    int64  `json:"rejected"`
}

// DataPlaneStats aggregates the fleet-wide memory data plane for
// GET /v1/stats: current pool occupancy plus the cumulative mitigation
// and paging volumes across every server's memsim + agent.
type DataPlaneStats struct {
	Enabled       bool    `json:"enabled"`
	Policy        string  `json:"policy,omitempty"`
	Mode          string  `json:"mode,omitempty"`
	Ticks         int64   `json:"ticks"`
	AttachedVMs   int     `json:"attached_vms"`
	PoolGB        float64 `json:"pool_gb"`
	PoolUsedGB    float64 `json:"pool_used_gb"`
	TrimmedGB     float64 `json:"trimmed_gb"`
	ExtendedGB    float64 `json:"extended_gb"`
	MigratedGB    float64 `json:"migrated_gb"`
	HardFaultGB   float64 `json:"hard_fault_gb"`
	SoftFaultGB   float64 `json:"soft_fault_gb"`
	SoftFaultFrac float64 `json:"soft_fault_frac"`
	StolenGB      float64 `json:"stolen_gb"`
	EvictedColdGB float64 `json:"evicted_cold_gb"`
	Contentions   int     `json:"contentions"`
	Trims         int     `json:"trims"`
	Extends       int     `json:"extends"`
	Migrations    int     `json:"migrations"`
	// Migration-landing outcomes (docs/DESIGN.md §10): same-shard
	// landings, cross-shard handoffs, failed (re-landed) migrations, and
	// the pre-copied volume that arrived resident at targets.
	SameShardMigrations  int64   `json:"same_shard_migrations"`
	CrossShardMigrations int64   `json:"cross_shard_migrations"`
	FailedMigrations     int64   `json:"failed_migrations"`
	WarmArrivedGB        float64 `json:"warm_arrived_gb"`
	// PressureRejected counts admissions rejected because no pool in the
	// home cluster could absorb the VM's oversubscribed demand
	// (Config.AdmitPressureFrac).
	PressureRejected int64 `json:"pressure_rejected"`
	// WhatIfBatches and WhatIfCandidates count the batched placement
	// scoring sweeps behind admission, migration landing and crash
	// recovery: each decision runs one sweep over its whole candidate
	// ranking (docs/DESIGN.md §14), so batches track decisions while
	// candidates track fleet size × decisions.
	WhatIfBatches    int64 `json:"whatif_batches"`
	WhatIfCandidates int64 `json:"whatif_candidates"`
	// Failure-domain counters (docs/DESIGN.md §13): applied server
	// crash/recover fault events, VMs evicted by crashes, and their fate
	// (re-admitted elsewhere vs lost — no feasible server remained).
	Crashes     int64 `json:"crashes"`
	Recoveries  int64 `json:"recoveries"`
	EvictedVMs  int64 `json:"evicted_vms"`
	ReplacedVMs int64 `json:"replaced_vms"`
	LostVMs     int64 `json:"lost_vms"`
	// PendingHandoffs is the current depth of the cross-shard handoff
	// intent log — non-zero only while a handoff is mid-protocol (or
	// parked awaiting the next recovery sweep).
	PendingHandoffs int `json:"pending_handoffs"`
}

// Stats is a point-in-time snapshot of the service.
type Stats struct {
	Policy string `json:"policy"`
	// Degraded reports that the service is running without a prediction
	// model (training failed or was fault-injected to fail): admissions
	// fall back to fully-guaranteed best-fit and /readyz is not-ready.
	Degraded bool           `json:"degraded"`
	Placed   int            `json:"placed"`
	Clusters []ClusterStats `json:"clusters"`
	Batch    BatchStats     `json:"batch"`
	// AdmitBatch reports admission-batch coalescing: how many admissions
	// shared fleet-sized rollouts and how much commit-time re-scoring the
	// sharing cost (docs/api.md).
	AdmitBatch AdmitBatchStats `json:"admit_batch"`
	Cache      CacheStats      `json:"cache"`
	DataPlane  DataPlaneStats  `json:"data_plane"`
}

// Stats snapshots admission counters, occupancy, batching effectiveness,
// model-cache behaviour and the data-plane aggregates.
func (s *Service) Stats() Stats {
	st := Stats{Policy: s.cfg.Policy.String(), Cache: s.cache.Stats()}
	st.Degraded = s.degraded.Load()
	if s.batcher != nil {
		st.Batch = s.batcher.stats()
	}
	if s.admit != nil {
		st.AdmitBatch = s.admit.stats()
	}
	if s.cfg.DataPlane {
		st.DataPlane.Enabled = true
		st.DataPlane.Policy = s.cfg.MitigationPolicy.String()
		st.DataPlane.Mode = s.cfg.MitigationMode.String()
		st.DataPlane.Ticks = s.dpTicks.Load()
		st.DataPlane.Crashes = s.crashes.Load()
		st.DataPlane.Recoveries = s.recoveries.Load()
		st.DataPlane.EvictedVMs = s.evictedVMs.Load()
		st.DataPlane.ReplacedVMs = s.replacedVMs.Load()
		st.DataPlane.LostVMs = s.lostVMs.Load()
		st.DataPlane.PendingHandoffs = s.pendingHandoffs()
	}
	var totals memsim.Totals
	var counters core.AgentCounters
	for ci, sh := range s.shards {
		cs := ClusterStats{Cluster: ci, Name: s.fleet.Clusters[ci].Name, Servers: s.fleet.Clusters[ci].Servers}
		sh.mu.Lock()
		cs.Admitted, cs.Released, cs.Rejected = sh.admitted, sh.released, sh.rejected
		if sh.sched != nil {
			cs.Placed = sh.sched.Placed()
			cs.UsedServers = sh.sched.UsedServers()
		}
		if sh.dp != nil {
			st.DataPlane.AttachedVMs += sh.dp.Attached()
			st.DataPlane.PoolGB += sh.dp.PoolGB()
			st.DataPlane.PoolUsedGB += sh.dp.PoolUsedGB()
			totals = totals.Add(sh.dp.Totals())
			counters = counters.Add(sh.dp.Counters())
			st.DataPlane.SameShardMigrations += sh.sameShardMigs
			st.DataPlane.CrossShardMigrations += sh.crossShardMigs
			st.DataPlane.FailedMigrations += sh.failedMigs
			st.DataPlane.WarmArrivedGB += sh.warmArrivedGB
			st.DataPlane.PressureRejected += sh.pressureRejected
			if sh.eng != nil {
				ws := sh.eng.Scorer().Stats()
				st.DataPlane.WhatIfBatches += ws.Batches
				st.DataPlane.WhatIfCandidates += ws.Scored
			}
		}
		sh.mu.Unlock()
		st.Placed += cs.Placed
		st.Clusters = append(st.Clusters, cs)
	}
	if st.DataPlane.Enabled {
		st.DataPlane.TrimmedGB = totals.TrimmedGB
		st.DataPlane.ExtendedGB = totals.ExtendedGB
		st.DataPlane.MigratedGB = totals.MigratedGB
		st.DataPlane.HardFaultGB = totals.HardFaultGB
		st.DataPlane.SoftFaultGB = totals.SoftFaultGB
		st.DataPlane.SoftFaultFrac = totals.SoftFaultFrac()
		st.DataPlane.StolenGB = totals.StolenGB
		st.DataPlane.EvictedColdGB = totals.EvictedColdGB
		st.DataPlane.Contentions = counters.Contentions
		st.DataPlane.Trims = counters.Trims
		st.DataPlane.Extends = counters.Extends
		st.DataPlane.Migrations = counters.Migrations
	}
	return st
}

// Close drains the batchers and rejects further requests with ErrClosed.
// It is idempotent and safe to call concurrently with requests: in-flight
// admissions and predictions complete before Close returns. The admission
// batcher drains first — its workers predict through the model directly,
// never through the prediction batcher, so the order only matters for
// answering every queued admission before the service goes quiet.
func (s *Service) Close() {
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
	if s.admit != nil {
		s.admit.close() // idempotent; waits for the drain either way
	}
	if s.batcher != nil {
		s.batcher.close() // idempotent; waits for the drain either way
	}
}

func (s *Service) isClosed() bool {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	return s.closed
}
