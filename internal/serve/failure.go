package serve

import (
	"sort"
	"sync"
	"time"

	"github.com/coach-oss/coach/internal/core"
	"github.com/coach-oss/coach/internal/fault"
	"github.com/coach-oss/coach/internal/scheduler"
)

// This file is the serving half of the failure-domain engine
// (docs/DESIGN.md §13): compiled server crash/recover events apply at
// the top of each data-plane tick through the same eviction-and-recovery
// semantics the simulator uses, and the cross-shard handoff gains a
// write-ahead intent log so a coordinator crash at any point of the
// pick/reserve/release/commit protocol leaves the VM recoverable —
// never lost, never double-placed.

// Handoff intent phases — the write-ahead record of how far a
// cross-shard handoff progressed. Each phase names the durable state
// the protocol reached, so recovery knows exactly what to undo or
// finish:
//
//	hoPending   nothing done; safe to restart (or settle home).
//	hoPicked    destination chosen, no capacity held yet.
//	hoReserved  capacity held at the destination, source still intact —
//	            recovery may roll back (cancel) or forward (release
//	            source and commit).
//	hoReleased  source released; the VM exists only as the reservation
//	            plus in-flight memory — recovery MUST roll forward.
//	hoCommitted memory attached at the destination; only the route
//	            update remains.
const (
	hoPending   = "pending"
	hoPicked    = "picked"
	hoReserved  = "reserved"
	hoReleased  = "released"
	hoCommitted = "committed"
)

// handoffIntent is one logged cross-shard handoff. Its mutex serializes
// the drivers (the tick loop, the recovery sweep, a racing Release);
// lock ordering is intent → shard, never the reverse.
type handoffIntent struct {
	mu        sync.Mutex
	req       core.MigrationRequest
	phase     string
	dstShard  int
	dstServer int
	// tracked carries the VM's utilization cursor across the shard move
	// once the source releases it.
	tracked *dpTracked
	done    bool
}

// newIntent logs a fresh handoff intent before any protocol step runs —
// the write-ahead discipline: the record exists before the actions it
// describes.
func (s *Service) newIntent(req core.MigrationRequest) *handoffIntent {
	in := &handoffIntent{req: req, phase: hoPending, dstShard: -1, dstServer: -1}
	s.intentMu.Lock()
	s.intents[req.VMID] = in
	s.intentMu.Unlock()
	return in
}

// intentFor returns the live intent for vmID (nil when none).
func (s *Service) intentFor(vmID int) *handoffIntent {
	s.intentMu.Lock()
	defer s.intentMu.Unlock()
	return s.intents[vmID]
}

// pendingHandoffs reports the intent-log depth.
func (s *Service) pendingHandoffs() int {
	s.intentMu.Lock()
	defer s.intentMu.Unlock()
	return len(s.intents)
}

// finishIntent retires a completed intent from the log. Callers hold
// in.mu; done guards drivers that already fetched the pointer.
func (s *Service) finishIntent(in *handoffIntent) {
	in.done = true
	s.intentMu.Lock()
	delete(s.intents, in.req.VMID)
	s.intentMu.Unlock()
}

// recoverHandoffs sweeps the intent log, driving every parked intent to
// completion — the crash-recovery pass a restarted coordinator would
// run. TickDataPlane calls it at the top of every tick; VM order keeps
// the sweep deterministic.
func (s *Service) recoverHandoffs() error {
	s.intentMu.Lock()
	ids := make([]int, 0, len(s.intents))
	for id := range s.intents {
		ids = append(ids, id)
	}
	s.intentMu.Unlock()
	sort.Ints(ids)
	for _, id := range ids {
		if in := s.intentFor(id); in != nil {
			if err := s.driveHandoff(in); err != nil {
				return err
			}
		}
	}
	return nil
}

// driveHandoff advances one handoff intent as far as it can go,
// idempotently: any driver (the tick loop, the recovery sweep, a
// Release spinning on the in-flight VM) may call it, from any phase,
// any number of times. Injected crash points (fault.HandoffCrash) park
// the intent mid-protocol by returning early — exactly what a real
// coordinator crash leaves behind — and the next driver resumes from
// the logged phase.
//
// The protocol never holds two shard locks at once:
//
//  1. Pick: poll every other shard (one lock at a time) for its best
//     unpressured best-fit server.
//  2. Reserve: place the CoachVM on the chosen destination — capacity is
//     now held at the destination while the source still holds its own,
//     so a concurrent admission cannot squeeze the VM out mid-flight.
//  3. Release: verify the VM still lives on its source server as the
//     exact CoachVM being migrated (a concurrent Release may have
//     dropped it, or a server crash re-homed it with fresh memory —
//     either way the reservation is cancelled and the in-flight memory
//     discarded), then remove the source bookkeeping.
//  4. Commit: attach the memory at the destination, pre-copied pages
//     arriving resident, and update the route so Release/Report find
//     the VM in its new shard.
//
// Requests no shard can absorb settle back in their home shard through
// the engine's same-shard fallback. Once the source is released (phase
// hoReleased) the protocol only rolls forward: the reservation plus the
// intent record are the VM's sole existence, and completing the commit
// is the only path that neither loses nor duplicates it.
func (s *Service) driveHandoff(in *handoffIntent) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.done {
		return nil
	}
	req := in.req
	src := s.shards[req.SrcShard]

	if in.phase == hoPending {
		if s.injector.CrashPoint("before-pick") {
			return nil
		}
		bestShard, found := -1, false
		var bestCand scheduler.Candidate
		for j, dst := range s.shards {
			if j == req.SrcShard || dst.eng == nil {
				continue
			}
			dst.mu.Lock()
			c, ok := dst.eng.PickInbound(req)
			dst.mu.Unlock()
			// Strict > keeps the lowest shard index on score ties.
			if ok && (!found || c.Score > bestCand.Score) {
				bestShard, bestCand, found = j, c, true
			}
		}
		if !found {
			err := s.settleHome(src, req)
			s.finishIntent(in)
			return err
		}
		in.dstShard, in.dstServer = bestShard, bestCand.Server
		in.phase = hoPicked
		if s.injector.CrashPoint("after-pick") {
			return nil
		}
	}

	if in.phase == hoPicked {
		if s.injector.CrashPoint("before-reserve") {
			return nil
		}
		dst := s.shards[in.dstShard]
		dst.mu.Lock()
		err := dst.eng.Reserve(req, in.dstServer)
		dst.mu.Unlock()
		if err != nil {
			// The candidate filled up (or went down) between pick and
			// reserve; settle at home rather than retrying a moving target.
			err := s.settleHome(src, req)
			s.finishIntent(in)
			return err
		}
		in.phase = hoReserved
		if s.injector.CrashPoint("after-reserve") {
			return nil
		}
	}

	if in.phase == hoReserved {
		if s.injector.CrashPoint("before-release") {
			return nil
		}
		// Verify the exact CoachVM we are migrating still lives on its
		// source server. Pointer identity guards the ABA race where a
		// concurrent Release and re-Admit put a fresh CVM with the same
		// id back mid-flight; the server check guards a crash that
		// evicted and re-homed the VM with freshly attached memory — in
		// both cases the in-flight copy has no owner and is dropped.
		src.mu.Lock()
		if src.sched == nil || src.sched.CVM(req.VMID) != req.CVM ||
			src.sched.ServerOf(req.VMID) != req.SrcServer {
			src.mu.Unlock()
			dst := s.shards[in.dstShard]
			dst.mu.Lock()
			dst.eng.CancelReservation(req.VMID)
			dst.mu.Unlock()
			s.finishIntent(in)
			return nil
		}
		src.eng.ReleaseSource(req.VMID)
		in.tracked = src.dpVMs[req.VMID]
		delete(src.dpVMs, req.VMID)
		src.crossShardMigs++
		src.mu.Unlock()
		in.phase = hoReleased
		if s.injector.CrashPoint("after-release") {
			return nil
		}
	}

	if in.phase == hoReleased {
		if s.injector.CrashPoint("before-commit") {
			return nil
		}
		dst := s.shards[in.dstShard]
		dst.mu.Lock()
		plan, err := dst.eng.CommitInbound(req, in.dstServer)
		if err == nil {
			tracked := in.tracked
			if tracked == nil {
				tracked = &dpTracked{vm: s.vmByID[req.VMID]}
			}
			dst.dpVMs[req.VMID] = tracked
			dst.dp.SetWSS(req.VMID, tracked.wss())
			dst.warmArrivedGB += plan.WarmGB
		}
		dst.mu.Unlock()
		if err != nil {
			// Leave the intent parked: the next sweep retries the commit.
			// Rolling back here would lose the VM — the source is gone.
			return err
		}
		in.phase = hoCommitted
		if s.injector.CrashPoint("after-commit") {
			return nil
		}
	}

	if in.phase == hoCommitted {
		s.setRoute(req.VMID, in.dstShard)
		s.finishIntent(in)
	}
	return nil
}

// settleHome lands a declined cross-shard request back in its home shard
// (least-pressured feasible server, else a warm re-land on the source),
// unless the VM was released — or crash-evicted and re-homed — mid-flight.
func (s *Service) settleHome(src *fleetShard, req core.MigrationRequest) error {
	src.mu.Lock()
	defer src.mu.Unlock()
	if src.sched == nil || src.sched.CVM(req.VMID) != req.CVM ||
		src.sched.ServerOf(req.VMID) != req.SrcServer {
		return nil // released (or re-admitted elsewhere) mid-flight
	}
	plan, err := src.eng.Settle(req)
	if err != nil {
		return err
	}
	src.countPlan(plan)
	return nil
}

// applyFaultEvents applies the compiled server crash/recover events due
// at or before tick. TickDataPlane calls it once per tick, after the
// recovery sweep, so parked handoffs complete against the fleet state
// they were logged under before servers fail beneath them.
func (s *Service) applyFaultEvents(tick int) error {
	s.fMu.Lock()
	var due []fault.Event
	for s.fi < len(s.fEvents) && s.fEvents[s.fi].Tick <= tick {
		due = append(due, s.fEvents[s.fi])
		s.fi++
	}
	s.fMu.Unlock()
	for _, e := range due {
		if e.Shard < 0 || e.Shard >= len(s.shards) {
			continue
		}
		if e.Up {
			s.recoverServer(e.Shard, e.Server)
		} else if err := s.crashServer(e.Shard, e.Server); err != nil {
			return err
		}
	}
	return nil
}

// crashServer fails one shard server: its data-plane memory state is
// lost, the scheduler marks it down, and every VM attached there is
// evicted and re-admitted through the pressure-aware recovery placement
// (core.PickRecovery) — or lost when no feasible server remains in the
// shard. Reservations held by in-flight handoffs are not dp-attached
// and are deliberately left alone: the handoff protocol owns them.
func (s *Service) crashServer(shard, srv int) error {
	sh := s.shards[shard]
	var lost []int
	sh.mu.Lock()
	if sh.sched == nil || sh.sched.Down(srv) {
		sh.mu.Unlock()
		return nil
	}
	s.crashes.Add(1)
	var evicted []int
	for _, id := range sh.sched.VMsOn(srv) {
		if sh.dp == nil || sh.dp.ServerOf(id) == srv {
			evicted = append(evicted, id)
		}
	}
	if sh.dp != nil {
		sh.dp.CrashServer(srv)
	}
	sh.sched.SetDown(srv, true)
	for _, id := range evicted {
		cvm := sh.sched.CVM(id)
		tracked := sh.dpVMs[id]
		sh.sched.Remove(id)
		delete(sh.dpVMs, id)
		if cvm == nil {
			continue
		}
		s.evictedVMs.Add(1)

		target := -1
		if sh.dp != nil {
			if s2, ok := sh.eng.Scorer().PickRecovery(cvm,
				sh.eng.Config().PressureFrac); ok {
				if err := sh.sched.PlaceAt(cvm, s2); err != nil {
					sh.mu.Unlock()
					return err
				}
				target = s2
			}
		} else if s2, ok := sh.sched.Place(cvm); ok {
			target = s2
		}
		if target < 0 {
			s.lostVMs.Add(1)
			lost = append(lost, id)
			continue
		}
		if sh.dp != nil {
			sizeGB, paGB := core.MemoryProfile(cvm)
			if err := sh.dp.Attach(target, id, sizeGB, paGB); err != nil {
				sh.mu.Unlock()
				return err
			}
			if tracked == nil {
				tracked = &dpTracked{vm: s.vmByID[id]}
			}
			sh.dpVMs[id] = tracked
			sh.dp.SetWSS(id, tracked.wss())
		}
		s.replacedVMs.Add(1)
	}
	sh.mu.Unlock()
	// Lost VMs leave the fleet entirely; clearing their routes (outside
	// the shard lock — routeMu is never nested inside one) makes a later
	// Release report them as already gone.
	for _, id := range lost {
		s.clearRoute(id)
	}
	return nil
}

// recoverServer returns a crashed server to service, empty.
func (s *Service) recoverServer(shard, srv int) {
	sh := s.shards[shard]
	sh.mu.Lock()
	if sh.sched != nil && sh.sched.Down(srv) {
		sh.sched.SetDown(srv, false)
		s.recoveries.Add(1)
	}
	sh.mu.Unlock()
}

// Degraded reports whether the service is running without a prediction
// model (training failed or was fault-injected to fail).
func (s *Service) Degraded() bool { return s.degraded.Load() }

// Ready reports readiness for /readyz: the service can serve
// model-backed admissions. It is not-ready while shutting down, while
// degraded, and before the (possibly lazy) training run has produced a
// model — so a rollout gate waits for the cold start instead of routing
// traffic into it.
func (s *Service) Ready() (bool, string) {
	if s.isClosed() {
		return false, "shutting down"
	}
	if s.degraded.Load() {
		return false, "degraded: prediction model unavailable"
	}
	if s.model.Load() == nil {
		return false, "model training"
	}
	return true, ""
}

// InjectedDelay returns the fault schedule's request latency for the
// current data-plane tick (0 when no latency window is active). The
// HTTP handlers sleep it before serving, simulating a fleet-wide slow
// patch without touching the decision logic.
func (s *Service) InjectedDelay() time.Duration {
	return s.injector.Delay(int(s.dpTicks.Load()))
}
