package serve

import (
	"errors"
	"testing"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/fault"
	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/scheduler"
)

// handoffFixture builds the hot/cold cross-shard service and admits the
// evaluation population — the same pressure cooker TestCrossShardHandoff
// uses, so handoffs fire within a bounded number of ticks.
func handoffFixture(t *testing.T) *Service {
	t.Helper()
	tr := getTrace(t)
	sc := DefaultConfig()
	sc.Cache = testCache
	sc.Policy = scheduler.PolicyAggrCoach
	sc.Percentile = 50
	sc.DataPlane = true
	sc.MitigationPolicy = agent.PolicyMigrate
	sc.CrossShardMigration = true
	sc.DataPlanePoolFrac = 0.02
	sc.DataPlaneUnallocFrac = 0.02
	svc, err := New(tr, serveHotColdFleet(), sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.Start >= tr.Horizon/2 {
			if _, err := svc.Admit(vm); err != nil {
				t.Fatal(err)
			}
		}
	}
	return svc
}

// parkHandoff ticks the fixture until an injected crash point parks a
// handoff intent mid-protocol, returning the parked VM's id.
func parkHandoff(t *testing.T, svc *Service) int {
	t.Helper()
	for i := 0; i < 200; i++ {
		if err := svc.TickDataPlane(); err != nil {
			t.Fatal(err)
		}
		svc.intentMu.Lock()
		for id := range svc.intents {
			svc.intentMu.Unlock()
			return id
		}
		svc.intentMu.Unlock()
	}
	t.Fatal("no handoff parked — the crash point never fired")
	return -1
}

// shardsHolding returns the shards whose scheduler has vm id placed and
// the shards whose data plane has its memory attached.
func shardsHolding(svc *Service, id int) (sched, mem []int) {
	for ci, sh := range svc.shards {
		sh.mu.Lock()
		if sh.sched != nil && sh.sched.ServerOf(id) >= 0 {
			sched = append(sched, ci)
		}
		if sh.dp != nil && sh.dp.ServerOf(id) >= 0 {
			mem = append(mem, ci)
		}
		sh.mu.Unlock()
	}
	return sched, mem
}

// TestHandoffCrashPointsExhaustive kills the handoff coordinator at
// every crash point of the pick/reserve/release/commit protocol and
// proves the write-ahead intent log recovers: after the next tick's
// recovery sweep the VM is placed in exactly one shard with its memory
// attached there (never lost, never double-placed), the intent log is
// empty, and Release finds the VM wherever it ended up.
func TestHandoffCrashPointsExhaustive(t *testing.T) {
	for _, phase := range scenario.HandoffPhases {
		phase := phase
		t.Run(phase, func(t *testing.T) {
			t.Parallel()
			svc := handoffFixture(t)
			svc.injector = fault.InjectorForCrashes(fault.HandoffCrash{Phase: phase, Nth: 1})
			id := parkHandoff(t, svc)

			// The next tick's recovery sweep must finish what the crashed
			// coordinator started.
			if err := svc.TickDataPlane(); err != nil {
				t.Fatal(err)
			}
			if n := svc.pendingHandoffs(); n != 0 {
				t.Fatalf("%d intents still parked after recovery", n)
			}
			sched, mem := shardsHolding(svc, id)
			if len(sched) != 1 {
				t.Fatalf("vm %d placed in %v shards after recovery, want exactly 1", id, sched)
			}
			if len(mem) != 1 || mem[0] != sched[0] {
				t.Fatalf("vm %d memory in shards %v, bookkeeping in %v", id, mem, sched)
			}
			sh := svc.shards[sched[0]]
			sh.mu.Lock()
			_, tracked := sh.dpVMs[id]
			sh.mu.Unlock()
			if !tracked {
				t.Fatalf("vm %d has no utilization tracking in shard %d", id, sched[0])
			}
			released, err := svc.Release(svc.VM(id))
			if err != nil || !released {
				t.Fatalf("release after recovery = %v, %v", released, err)
			}
		})
	}
}

// TestHandoffCrashPointsConcurrentRelease re-runs every crash point
// with the other racer: a client Release arriving while the intent is
// parked. Release must drive the interrupted protocol itself — rolling
// forward past the point of no return, cancelling before it — and the
// VM must end up cleanly gone from every shard.
func TestHandoffCrashPointsConcurrentRelease(t *testing.T) {
	for _, phase := range scenario.HandoffPhases {
		phase := phase
		t.Run(phase, func(t *testing.T) {
			t.Parallel()
			svc := handoffFixture(t)
			svc.injector = fault.InjectorForCrashes(fault.HandoffCrash{Phase: phase, Nth: 1})
			id := parkHandoff(t, svc)

			released, err := svc.Release(svc.VM(id))
			if err != nil || !released {
				t.Fatalf("release of parked vm = %v, %v", released, err)
			}
			// One more tick: the sweep retires any intent the Release
			// raced past (e.g. a still-held reservation to cancel).
			if err := svc.TickDataPlane(); err != nil {
				t.Fatal(err)
			}
			if n := svc.pendingHandoffs(); n != 0 {
				t.Fatalf("%d intents still parked after release", n)
			}
			sched, mem := shardsHolding(svc, id)
			if len(sched) != 0 || len(mem) != 0 {
				t.Fatalf("released vm %d still held: sched=%v mem=%v", id, sched, mem)
			}
			if svc.routedShard(id) >= 0 {
				t.Fatalf("released vm %d still routed", id)
			}
		})
	}
}

// TestServeDegradedMode pins the train-fail fault: admission keeps
// working fully guaranteed (Degraded on every decision and in Stats),
// prediction fails with ErrModelUnavailable, and readiness reports
// not-ready so rollout gates hold traffic.
func TestServeDegradedMode(t *testing.T) {
	sched, err := fault.Compile([]scenario.Fault{{Kind: "train-fail"}}, 1, []int{1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Faults = sched
	svc := newTestService(t, cfg)

	if err := svc.Warm(); !errors.Is(err, ErrModelUnavailable) {
		t.Fatalf("Warm under train-fail = %v, want ErrModelUnavailable", err)
	}
	if !svc.Degraded() {
		t.Fatal("service not degraded after injected training failure")
	}
	if ready, reason := svc.Ready(); ready || reason == "" {
		t.Fatalf("Ready = (%v, %q), want not-ready with a reason", ready, reason)
	}
	if _, _, err := svc.Predict(&getTrace(t).VMs[0]); !errors.Is(err, ErrModelUnavailable) {
		t.Fatalf("Predict under train-fail = %v, want ErrModelUnavailable", err)
	}

	admitted := 0
	for _, vm := range evalVMs(getTrace(t)) {
		res, err := svc.Admit(vm)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded {
			t.Fatalf("admission decision for vm %d not marked degraded", vm.ID)
		}
		if res.Admitted {
			admitted++
			if res.Oversubscribed {
				t.Fatalf("vm %d oversubscribed without a model", vm.ID)
			}
		}
	}
	if admitted == 0 {
		t.Fatal("degraded mode admitted nothing")
	}
	if st := svc.Stats(); !st.Degraded {
		t.Fatal("stats do not report degraded")
	}
}

// TestServeCrashAndRecoverEvents applies a compiled crash/recover pair
// through TickDataPlane and checks the serving-side failure accounting:
// evicted VMs are re-admitted or lost (counters add up), a lost VM's
// route is cleared so Release reports it gone, and the server returns
// to service on the recovery event.
func TestServeCrashAndRecoverEvents(t *testing.T) {
	tr := getTrace(t)
	fleet := cluster.NewFleet(cluster.DefaultClusters(2))
	sizes := make([]int, 0, fleet.NumClusters())
	for _, servers := range fleet.Shards() {
		sizes = append(sizes, len(servers))
	}
	faults, err := fault.Compile([]scenario.Fault{
		{Kind: "crash", Day: 0, Cluster: 0, Server: 0, RecoverHours: 0.05},
	}, 1, sizes, 1000)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Cache = testCache
	cfg.DataPlane = true
	cfg.MitigationPolicy = agent.PolicyTrim
	cfg.Faults = faults
	svc, err := New(tr, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	for _, vm := range evalVMs(tr) {
		if _, err := svc.Admit(vm); err != nil {
			t.Fatal(err)
		}
	}
	sh := svc.shards[0]
	sh.mu.Lock()
	victims := sh.sched.VMsOn(0)
	sh.mu.Unlock()
	if len(victims) == 0 {
		t.Fatal("fixture placed nothing on the crash target")
	}

	// Tick 0 applies the crash, tick 1 the recovery.
	if err := svc.TickDataPlane(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats().DataPlane
	if st.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", st.Crashes)
	}
	if st.EvictedVMs != int64(len(victims)) {
		t.Fatalf("evicted = %d, want %d", st.EvictedVMs, len(victims))
	}
	if st.ReplacedVMs+st.LostVMs != st.EvictedVMs {
		t.Fatalf("accounting broken: %d replaced + %d lost != %d evicted",
			st.ReplacedVMs, st.LostVMs, st.EvictedVMs)
	}
	for _, id := range victims {
		sh.mu.Lock()
		srv := sh.sched.ServerOf(id)
		sh.mu.Unlock()
		if srv == 0 {
			t.Fatalf("vm %d still on the crashed server", id)
		}
		if srv < 0 {
			// Lost: the route must be cleared so Release reports it gone.
			released, err := svc.Release(svc.VM(id))
			if err != nil || released {
				t.Fatalf("release of lost vm %d = %v, %v, want (false, nil)", id, released, err)
			}
		} else if sh.dp.ServerOf(id) != srv {
			t.Fatalf("vm %d bookkeeping on %d but memory on %d", id, srv, sh.dp.ServerOf(id))
		}
	}

	if err := svc.TickDataPlane(); err != nil {
		t.Fatal(err)
	}
	st = svc.Stats().DataPlane
	if st.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", st.Recoveries)
	}
	sh.mu.Lock()
	down := sh.sched.Down(0)
	sh.mu.Unlock()
	if down {
		t.Fatal("server still down after the recovery event")
	}
}
