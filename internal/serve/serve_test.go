package serve

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/trace"
)

var (
	testOnce  sync.Once
	testTrace *trace.Trace
	// testCache is shared by tests that don't bring their own cache, so
	// the package trains each distinct model configuration only once.
	testCache = NewModelCache()
)

// getTrace shares one small trace across the package's tests; forests are
// shared through a ModelCache per test as needed.
func getTrace(t *testing.T) *trace.Trace {
	t.Helper()
	testOnce.Do(func() {
		cfg := trace.DefaultGenConfig()
		cfg.VMs = 300
		cfg.Subscriptions = 30
		tr, err := trace.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		testTrace = tr
	})
	if testTrace == nil {
		t.Fatal("trace generation failed earlier")
	}
	return testTrace
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = testCache
	}
	tr := getTrace(t)
	fleet := cluster.NewFleet(cluster.DefaultClusters(6))
	s, err := New(tr, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// evalVMs returns VMs arriving in the evaluation period — the population
// an online admission service would actually see.
func evalVMs(tr *trace.Trace) []*trace.VM {
	var out []*trace.VM
	for i := range tr.VMs {
		if tr.VMs[i].Start >= tr.Horizon/2 {
			out = append(out, &tr.VMs[i])
		}
	}
	return out
}

func TestServiceValidation(t *testing.T) {
	tr := getTrace(t)
	fleet := cluster.NewFleet(cluster.DefaultClusters(2))
	cfg := DefaultConfig()
	cfg.TrainUpTo = tr.Horizon + 1
	if _, err := New(tr, fleet, cfg); err == nil {
		t.Error("out-of-range TrainUpTo must fail")
	}
	if _, err := New(tr, cluster.NewFleet(nil), DefaultConfig()); err == nil {
		t.Error("empty fleet must fail")
	}
}

// TestPredictDeterministicAcrossBatching drives many concurrent batched
// predictions and checks every response equals the sequential unbatched
// prediction for the same VM — the acceptance bar that batching must not
// leak batch composition into results.
func TestPredictDeterministicAcrossBatching(t *testing.T) {
	cache := NewModelCache()
	cfgDirect := DefaultConfig()
	cfgDirect.Batch.Disabled = true
	cfgDirect.Cache = cache
	direct := newTestService(t, cfgDirect)

	cfgBatched := DefaultConfig()
	cfgBatched.Batch.MaxBatch = 16
	cfgBatched.Cache = cache
	batched := newTestService(t, cfgBatched)

	tr := getTrace(t)
	vms := evalVMs(tr)
	if len(vms) < 10 {
		t.Fatalf("only %d evaluation VMs", len(vms))
	}

	want := make([]coachvm.Prediction, len(vms))
	wantOK := make([]bool, len(vms))
	for i, vm := range vms {
		pred, ok, err := direct.Predict(vm)
		if err != nil {
			t.Fatal(err)
		}
		want[i], wantOK[i] = pred, ok
	}

	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(vms))
	for r := 0; r < rounds; r++ {
		for i, vm := range vms {
			wg.Add(1)
			go func(i int, vm *trace.VM) {
				defer wg.Done()
				pred, ok, err := batched.Predict(vm)
				if err != nil {
					errs <- err
					return
				}
				if ok != wantOK[i] || !reflect.DeepEqual(pred, want[i]) {
					errs <- errors.New("batched prediction diverged from unbatched")
				}
			}(i, vm)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := batched.Stats()
	if st.Batch.Requests != int64(rounds*len(vms)) {
		t.Errorf("batcher saw %d requests, want %d", st.Batch.Requests, rounds*len(vms))
	}
	if st.Batch.Batches == 0 {
		t.Error("no batches recorded")
	}
}

// TestConcurrentAdmitRelease churns admissions and releases from many
// goroutines (disjoint VM sets per goroutine) and checks the shard
// bookkeeping balances.
func TestConcurrentAdmitRelease(t *testing.T) {
	s := newTestService(t, DefaultConfig())
	tr := getTrace(t)
	vms := evalVMs(tr)

	const workers = 8
	var wg sync.WaitGroup
	var admitted, released atomic.Int64
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(vms); i += workers {
				res, err := s.Admit(vms[i])
				if err != nil {
					errs <- err
					return
				}
				if !res.Admitted {
					continue
				}
				admitted.Add(1)
				// Release every other admitted VM to churn shard state.
				if i%2 == 0 {
					ok, err := s.Release(vms[i])
					if err != nil {
						errs <- err
						return
					}
					if !ok {
						errs <- errors.New("release of admitted vm reported not admitted")
						return
					}
					released.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	var admSum, relSum int64
	for _, cs := range st.Clusters {
		admSum += cs.Admitted
		relSum += cs.Released
	}
	if admSum != admitted.Load() || relSum != released.Load() {
		t.Errorf("stats admitted/released %d/%d, want %d/%d", admSum, relSum, admitted.Load(), released.Load())
	}
	if got, want := int64(st.Placed), admitted.Load()-released.Load(); got != want {
		t.Errorf("placed %d, want %d", got, want)
	}
	if admitted.Load() == 0 {
		t.Error("no VM was admitted")
	}
}

func TestAdmitDuplicateAndRelease(t *testing.T) {
	s := newTestService(t, DefaultConfig())
	tr := getTrace(t)
	vms := evalVMs(tr)

	var vm *trace.VM
	for _, cand := range vms {
		res, err := s.Admit(cand)
		if err != nil {
			t.Fatal(err)
		}
		if res.Admitted {
			vm = cand
			break
		}
	}
	if vm == nil {
		t.Fatal("no admissible VM found")
	}
	if _, err := s.Admit(vm); !errors.Is(err, ErrAlreadyAdmitted) {
		t.Fatalf("duplicate admit error = %v, want ErrAlreadyAdmitted", err)
	}
	if ok, err := s.Release(vm); err != nil || !ok {
		t.Fatalf("release of admitted VM: ok=%v err=%v", ok, err)
	}
	if ok, err := s.Release(vm); err != nil || ok {
		t.Fatalf("double release: ok=%v err=%v, want not admitted", ok, err)
	}
	// Re-admission after release must succeed again.
	res, err := s.Admit(vm)
	if err != nil || !res.Admitted {
		t.Fatalf("re-admit after release: admitted=%v err=%v", res.Admitted, err)
	}
}

// TestModelCacheSharing asserts the cold start trains once and every
// later service on the same (trace, config) hits the cache.
func TestModelCacheSharing(t *testing.T) {
	cache := NewModelCache()
	cfg := DefaultConfig()
	cfg.Cache = cache

	a := newTestService(t, cfg)
	if err := a.Warm(); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.Models != 1 {
		t.Fatalf("after first warm: %+v, want 1 miss, 0 hits, 1 model", st)
	}

	b := newTestService(t, cfg)
	if err := b.Warm(); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Models != 1 {
		t.Fatalf("after second warm: %+v, want 1 miss, 1 hit, 1 model", st)
	}

	// Any differing training hyperparameter is a different model —
	// including ones beyond percentile/windows, so a shared cache can
	// never hand a canary config the live config's model.
	for i, mutate := range []func(*Config){
		func(c *Config) { c.Percentile = 50 },
		func(c *Config) { c.LongTerm.Forest.Trees = 10 },
		func(c *Config) { c.LongTerm.SafetyBuckets = 2 },
		func(c *Config) { c.LongTerm.MinHistory = 5 },
	} {
		cfg2 := cfg
		mutate(&cfg2)
		c := newTestService(t, cfg2)
		if err := c.Warm(); err != nil {
			t.Fatal(err)
		}
		want := int64(2 + i)
		if st = cache.Stats(); st.Misses != want || st.Models != int(want) {
			t.Fatalf("after config variant %d: %+v, want %d misses/models", i, st, want)
		}
	}
}

// TestModelCacheSingleflight floods a cold cache with concurrent gets and
// checks train ran exactly once.
func TestModelCacheSingleflight(t *testing.T) {
	cache := NewModelCache()
	var trains atomic.Int64
	key := ModelKey{TraceID: 7}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = cache.Get(key, func() (*predict.LongTerm, error) {
				trains.Add(1)
				return nil, nil
			})
		}()
	}
	wg.Wait()
	if trains.Load() != 1 {
		t.Fatalf("train ran %d times, want 1", trains.Load())
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 15 {
		t.Fatalf("stats %+v, want 1 miss, 15 hits", st)
	}
}

func TestCloseRejectsAndDrains(t *testing.T) {
	s := newTestService(t, DefaultConfig())
	tr := getTrace(t)
	vms := evalVMs(tr)
	if _, _, err := s.Predict(vms[0]); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, _, err := s.Predict(vms[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("predict after close: %v, want ErrClosed", err)
	}
	if _, err := s.Admit(vms[1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("admit after close: %v, want ErrClosed", err)
	}
	if _, err := s.Release(vms[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("release after close: %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestFingerprintDistinguishesTraces(t *testing.T) {
	tr := getTrace(t)
	if Fingerprint(tr) != Fingerprint(tr) {
		t.Fatal("fingerprint not deterministic")
	}
	cfg := trace.DefaultGenConfig()
	cfg.VMs = 120
	cfg.Subscriptions = 12
	other, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(tr) == Fingerprint(other) {
		t.Fatal("distinct traces share a fingerprint")
	}
}
