package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/core"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/trace"
)

// dpService builds a data-plane-enabled service over the shared test
// trace, reusing the package's model cache so training happens once.
func dpService(t *testing.T, policy agent.Policy) (*Service, *trace.Trace) {
	t.Helper()
	tr := getTrace(t)
	sc := DefaultConfig()
	sc.Cache = testCache
	sc.DataPlane = true
	sc.MitigationPolicy = policy
	sc.MitigationMode = agent.Reactive
	svc, err := New(tr, cluster.NewFleet(cluster.DefaultClusters(2)), sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, tr
}

// admitSome admits up to n evaluation-period VMs and returns them.
func admitSome(t *testing.T, svc *Service, tr *trace.Trace, n int) []*trace.VM {
	t.Helper()
	var admitted []*trace.VM
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.Start < tr.Horizon/2 {
			continue
		}
		res, err := svc.Admit(vm)
		if err != nil {
			t.Fatal(err)
		}
		if res.Admitted {
			admitted = append(admitted, vm)
		}
		if len(admitted) == n {
			break
		}
	}
	if len(admitted) == 0 {
		t.Fatal("nothing admitted")
	}
	return admitted
}

func TestTickDataPlaneDisabled(t *testing.T) {
	svc := newTestService(t, DefaultConfig())
	if err := svc.TickDataPlane(); !errors.Is(err, ErrDataPlaneDisabled) {
		t.Errorf("TickDataPlane without a data plane = %v, want ErrDataPlaneDisabled", err)
	}
	if st := svc.Stats(); st.DataPlane.Enabled {
		t.Error("stats must report the data plane disabled")
	}
}

func TestDataPlaneAdmitTickRelease(t *testing.T) {
	svc, tr := dpService(t, agent.PolicyTrim)
	admitted := admitSome(t, svc, tr, 20)

	st := svc.Stats()
	if !st.DataPlane.Enabled || st.DataPlane.Policy != "Trim" {
		t.Fatalf("data plane stats not enabled: %+v", st.DataPlane)
	}
	if st.DataPlane.AttachedVMs != len(admitted) {
		t.Errorf("attached %d VMs, stats say %d", len(admitted), st.DataPlane.AttachedVMs)
	}
	if st.DataPlane.PoolGB <= 0 {
		t.Error("no pool capacity reported")
	}

	for i := 0; i < 12; i++ {
		if err := svc.TickDataPlane(); err != nil {
			t.Fatal(err)
		}
	}
	st = svc.Stats()
	if st.DataPlane.Ticks != 12 {
		t.Errorf("ticks = %d, want 12", st.DataPlane.Ticks)
	}
	if st.DataPlane.PoolUsedGB <= 0 && st.DataPlane.SoftFaultGB <= 0 {
		t.Error("ticking admitted VMs moved no memory at all")
	}

	for _, vm := range admitted {
		released, err := svc.Release(vm)
		if err != nil || !released {
			t.Fatalf("release %d: %v %v", vm.ID, released, err)
		}
	}
	if st = svc.Stats(); st.DataPlane.AttachedVMs != 0 {
		t.Errorf("%d VMs still attached after release", st.DataPlane.AttachedVMs)
	}
}

// TestDataPlaneStatsDeterministic runs the same admit/tick sequence on
// two services and requires identical data-plane aggregates.
func TestDataPlaneStatsDeterministic(t *testing.T) {
	run := func() DataPlaneStats {
		svc, tr := dpService(t, agent.PolicyExtend)
		admitSome(t, svc, tr, 30)
		for i := 0; i < 10; i++ {
			if err := svc.TickDataPlane(); err != nil {
				t.Fatal(err)
			}
		}
		return svc.Stats().DataPlane
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("data-plane stats diverge:\n  %+v\n  %+v", a, b)
	}
}

// TestDataPlaneConcurrentTicksAndAdmits exercises the shard locking under
// -race: admissions, releases and ticks interleave from multiple
// goroutines.
func TestDataPlaneConcurrentTicksAndAdmits(t *testing.T) {
	svc, tr := dpService(t, agent.PolicyMigrate)
	var eval []*trace.VM
	for i := range tr.VMs {
		if tr.VMs[i].Start >= tr.Horizon/2 {
			eval = append(eval, &tr.VMs[i])
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, vm := range eval {
			if _, err := svc.Admit(vm); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := svc.TickDataPlane(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if st := svc.Stats(); st.DataPlane.Ticks != 20 {
		t.Errorf("ticks = %d", st.DataPlane.Ticks)
	}
}

// TestReportDrivesWSS pins the live-report path: a pushed utilization
// fraction replaces the age-indexed replay as the VM's working-set
// driver, reports for unadmitted VMs are refused, and the override
// survives subsequent ticks.
func TestReportDrivesWSS(t *testing.T) {
	svc, tr := dpService(t, agent.PolicyTrim)
	admitted := admitSome(t, svc, tr, 5)
	vm := admitted[0]

	applied, err := svc.Report(vm, 0.5)
	if err != nil || !applied {
		t.Fatalf("Report(admitted) = %v, %v", applied, err)
	}
	ci := svc.routedShard(vm.ID)
	sh := svc.shards[ci]
	sh.mu.Lock()
	tracked := sh.dpVMs[vm.ID]
	mem := sh.dp.Servers()[sh.dp.ServerOf(vm.ID)].Server.VM(vm.ID)
	sh.mu.Unlock()
	want := 0.5 * vm.Alloc[resources.Memory]
	if !tracked.hasReport || tracked.wss() != want {
		t.Errorf("tracked wss %v, want reported %v", tracked.wss(), want)
	}
	if mem.WSS() != want {
		t.Errorf("memsim wss %v, want %v", mem.WSS(), want)
	}
	// The report keeps driving the working set across ticks (the
	// age-indexed series no longer applies).
	for i := 0; i < 3; i++ {
		if err := svc.TickDataPlane(); err != nil {
			t.Fatal(err)
		}
	}
	sh.mu.Lock()
	got := sh.dp.Servers()[sh.dp.ServerOf(vm.ID)].Server.VM(vm.ID).WSS()
	sh.mu.Unlock()
	if got != want {
		t.Errorf("wss after ticks %v, want sticky reported %v", got, want)
	}
	// Out-of-range fractions clamp.
	if applied, err := svc.Report(vm, 7); err != nil || !applied {
		t.Fatal("clamped report must apply")
	}
	if w := tracked.wss(); w != vm.Alloc[resources.Memory] {
		t.Errorf("wss %v after util 7, want clamped to alloc %v", w, vm.Alloc[resources.Memory])
	}

	// Unadmitted VM: refused.
	var stranger *trace.VM
	for i := range tr.VMs {
		if svc.routedShard(tr.VMs[i].ID) < 0 {
			stranger = &tr.VMs[i]
			break
		}
	}
	if applied, err := svc.Report(stranger, 0.5); err != nil || applied {
		t.Errorf("Report(unadmitted) = %v, %v; want false, nil", applied, err)
	}

	// Disabled data plane: typed error.
	plain := newTestService(t, DefaultConfig())
	if _, err := plain.Report(stranger, 0.5); !errors.Is(err, ErrDataPlaneDisabled) {
		t.Errorf("Report without data plane = %v, want ErrDataPlaneDisabled", err)
	}
}

// TestReportEndpoint pins the /v1/report wire format and error codes.
func TestReportEndpoint(t *testing.T) {
	svc, tr := dpService(t, agent.PolicyTrim)
	admitted := admitSome(t, svc, tr, 3)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	post := func(body string) (int, string) {
		resp, err := srv.Client().Post(srv.URL+"/v1/report", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := post(fmt.Sprintf(`{"vm":%d,"memory_util":0.42}`, admitted[0].ID))
	if code != 200 || body != fmt.Sprintf("{\"vm\":%d,\"applied\":true}\n", admitted[0].ID) {
		t.Errorf("report = %d %q", code, body)
	}
	if code, _ := post(`{"vm":999999,"memory_util":0.4}`); code != 404 {
		t.Errorf("unknown vm = %d, want 404", code)
	}
	if code, _ := post(`{"bad json`); code != 400 {
		t.Errorf("malformed = %d, want 400", code)
	}
	var unadmitted int
	for i := range tr.VMs {
		if svc.routedShard(tr.VMs[i].ID) < 0 {
			unadmitted = tr.VMs[i].ID
			break
		}
	}
	if code, _ := post(fmt.Sprintf(`{"vm":%d,"memory_util":0.4}`, unadmitted)); code != 409 {
		t.Errorf("unadmitted vm = %d, want 409", code)
	}
}

// TestAdmitPressureAware pins ROADMAP item 5: with AdmitPressureFrac
// set, an oversubscribed VM whose scheduled VA demand no pool can absorb
// is rejected with a typed reason even though raw capacity exists, while
// fully-guaranteed VMs (no pool footprint) still admit.
func TestAdmitPressureAware(t *testing.T) {
	tr := getTrace(t)
	sc := DefaultConfig()
	sc.Cache = testCache
	sc.Policy = scheduler.PolicyAggrCoach
	sc.Percentile = 50
	sc.DataPlane = true
	sc.MitigationPolicy = agent.PolicyTrim
	// An (effectively) unreachable bar: every oversubscribed admission
	// must be refused for pool pressure.
	sc.AdmitPressureFrac = 1e-9
	svc, err := New(tr, cluster.NewFleet(cluster.DefaultClusters(2)), sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	overRejected, guaranteed := 0, 0
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.Start < tr.Horizon/2 {
			continue
		}
		res, err := svc.Admit(vm)
		if err != nil {
			t.Fatal(err)
		}
		if res.Oversubscribed && !res.Admitted && strings.Contains(res.Reason, "pool pressure") {
			overRejected++
		}
		if res.Admitted {
			guaranteed++
			if res.Oversubscribed {
				// An oversubscribed VM admitted under an impossible bar
				// can only mean its VA peak was zero.
				sh := svc.shards[res.Cluster]
				sh.mu.Lock()
				peak := core.VAPeakGB(sh.sched.CVM(vm.ID))
				sh.mu.Unlock()
				if peak > 0 {
					t.Fatalf("vm %d with VA peak %v admitted past an impossible pressure bar", vm.ID, peak)
				}
			}
		}
	}
	if overRejected == 0 {
		t.Fatal("no oversubscribed admission was pressure-rejected")
	}
	if guaranteed == 0 {
		t.Fatal("pressure-aware admission also blocked pool-neutral VMs")
	}
	if st := svc.Stats(); st.DataPlane.PressureRejected != int64(overRejected) {
		t.Errorf("stats pressure_rejected %d, want %d", st.DataPlane.PressureRejected, overRejected)
	}
}

// serveHotColdFleet mirrors the simulator's escape-valve fixture: a hot
// single-server cluster whose pool is far too small next to a cold
// cluster with room to spare.
func serveHotColdFleet() *cluster.Fleet {
	return cluster.NewFleet([]cluster.Config{
		{Name: "hot", Spec: cluster.ServerSpec{Name: "small", Generation: 1,
			Capacity: resources.NewVector(64, 128, 40, 4096)}, Servers: 1},
		{Name: "cold", Spec: cluster.ServerSpec{Name: "big", Generation: 4,
			Capacity: resources.NewVector(320, 4096, 100, 16384)}, Servers: 4},
	})
}

// TestCrossShardHandoff drives coachd's two-phase handoff end to end:
// VMs admitted to the hot cluster contend its tiny pool, the agent
// live-migrates, the engine finds no same-shard target, and the handoff
// re-homes scheduler bookkeeping and memory into the cold cluster —
// after which Release must find the VM in its new shard.
func TestCrossShardHandoff(t *testing.T) {
	tr := getTrace(t)
	sc := DefaultConfig()
	sc.Cache = testCache
	sc.Policy = scheduler.PolicyAggrCoach
	sc.Percentile = 50
	sc.DataPlane = true
	sc.MitigationPolicy = agent.PolicyMigrate
	sc.CrossShardMigration = true
	sc.DataPlanePoolFrac = 0.02
	sc.DataPlaneUnallocFrac = 0.02
	svc, err := New(tr, serveHotColdFleet(), sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.Start >= tr.Horizon/2 {
			if _, err := svc.Admit(vm); err != nil {
				t.Fatal(err)
			}
		}
	}
	var moved []int
	for i := 0; i < 120 && len(moved) == 0; i++ {
		if err := svc.TickDataPlane(); err != nil {
			t.Fatal(err)
		}
		svc.routeMu.Lock()
		for id, ci := range svc.route {
			if svc.shardIndex(svc.vmByID[id]) != ci {
				moved = append(moved, id)
			}
		}
		svc.routeMu.Unlock()
	}
	if len(moved) == 0 {
		t.Fatal("no VM was handed off cross-shard")
	}
	st := svc.Stats()
	if st.DataPlane.CrossShardMigrations == 0 {
		t.Error("stats carry no cross-shard migrations")
	}
	// The moved VM is fully consistent in its new shard: scheduler
	// bookkeeping, memory and utilization tracking all present.
	id := moved[0]
	ci := svc.routedShard(id)
	sh := svc.shards[ci]
	sh.mu.Lock()
	okSched := sh.sched.ServerOf(id) >= 0
	okMem := sh.dp.ServerOf(id) >= 0
	_, okTracked := sh.dpVMs[id]
	sh.mu.Unlock()
	if !okSched || !okMem || !okTracked {
		t.Fatalf("handed-off vm %d inconsistent in shard %d: sched=%v mem=%v tracked=%v",
			id, ci, okSched, okMem, okTracked)
	}
	// Release follows the route.
	released, err := svc.Release(svc.VM(id))
	if err != nil || !released {
		t.Fatalf("release of migrated vm = %v, %v", released, err)
	}
}

// TestStatsEndpointCarriesDataPlane pins the /v1/stats wire format.
func TestStatsEndpointCarriesDataPlane(t *testing.T) {
	svc, tr := dpService(t, agent.PolicyTrim)
	admitSome(t, svc, tr, 5)
	if err := svc.TickDataPlane(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		DataPlane DataPlaneStats `json:"data_plane"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.DataPlane.Enabled || body.DataPlane.Ticks != 1 || body.DataPlane.AttachedVMs == 0 {
		t.Errorf("wire data_plane wrong: %+v", body.DataPlane)
	}
}
