package serve

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/trace"
)

// dpService builds a data-plane-enabled service over the shared test
// trace, reusing the package's model cache so training happens once.
func dpService(t *testing.T, policy agent.Policy) (*Service, *trace.Trace) {
	t.Helper()
	tr := getTrace(t)
	sc := DefaultConfig()
	sc.Cache = testCache
	sc.DataPlane = true
	sc.MitigationPolicy = policy
	sc.MitigationMode = agent.Reactive
	svc, err := New(tr, cluster.NewFleet(cluster.DefaultClusters(2)), sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, tr
}

// admitSome admits up to n evaluation-period VMs and returns them.
func admitSome(t *testing.T, svc *Service, tr *trace.Trace, n int) []*trace.VM {
	t.Helper()
	var admitted []*trace.VM
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.Start < tr.Horizon/2 {
			continue
		}
		res, err := svc.Admit(vm)
		if err != nil {
			t.Fatal(err)
		}
		if res.Admitted {
			admitted = append(admitted, vm)
		}
		if len(admitted) == n {
			break
		}
	}
	if len(admitted) == 0 {
		t.Fatal("nothing admitted")
	}
	return admitted
}

func TestTickDataPlaneDisabled(t *testing.T) {
	svc := newTestService(t, DefaultConfig())
	if err := svc.TickDataPlane(); !errors.Is(err, ErrDataPlaneDisabled) {
		t.Errorf("TickDataPlane without a data plane = %v, want ErrDataPlaneDisabled", err)
	}
	if st := svc.Stats(); st.DataPlane.Enabled {
		t.Error("stats must report the data plane disabled")
	}
}

func TestDataPlaneAdmitTickRelease(t *testing.T) {
	svc, tr := dpService(t, agent.PolicyTrim)
	admitted := admitSome(t, svc, tr, 20)

	st := svc.Stats()
	if !st.DataPlane.Enabled || st.DataPlane.Policy != "Trim" {
		t.Fatalf("data plane stats not enabled: %+v", st.DataPlane)
	}
	if st.DataPlane.AttachedVMs != len(admitted) {
		t.Errorf("attached %d VMs, stats say %d", len(admitted), st.DataPlane.AttachedVMs)
	}
	if st.DataPlane.PoolGB <= 0 {
		t.Error("no pool capacity reported")
	}

	for i := 0; i < 12; i++ {
		if err := svc.TickDataPlane(); err != nil {
			t.Fatal(err)
		}
	}
	st = svc.Stats()
	if st.DataPlane.Ticks != 12 {
		t.Errorf("ticks = %d, want 12", st.DataPlane.Ticks)
	}
	if st.DataPlane.PoolUsedGB <= 0 && st.DataPlane.SoftFaultGB <= 0 {
		t.Error("ticking admitted VMs moved no memory at all")
	}

	for _, vm := range admitted {
		released, err := svc.Release(vm)
		if err != nil || !released {
			t.Fatalf("release %d: %v %v", vm.ID, released, err)
		}
	}
	if st = svc.Stats(); st.DataPlane.AttachedVMs != 0 {
		t.Errorf("%d VMs still attached after release", st.DataPlane.AttachedVMs)
	}
}

// TestDataPlaneStatsDeterministic runs the same admit/tick sequence on
// two services and requires identical data-plane aggregates.
func TestDataPlaneStatsDeterministic(t *testing.T) {
	run := func() DataPlaneStats {
		svc, tr := dpService(t, agent.PolicyExtend)
		admitSome(t, svc, tr, 30)
		for i := 0; i < 10; i++ {
			if err := svc.TickDataPlane(); err != nil {
				t.Fatal(err)
			}
		}
		return svc.Stats().DataPlane
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("data-plane stats diverge:\n  %+v\n  %+v", a, b)
	}
}

// TestDataPlaneConcurrentTicksAndAdmits exercises the shard locking under
// -race: admissions, releases and ticks interleave from multiple
// goroutines.
func TestDataPlaneConcurrentTicksAndAdmits(t *testing.T) {
	svc, tr := dpService(t, agent.PolicyMigrate)
	var eval []*trace.VM
	for i := range tr.VMs {
		if tr.VMs[i].Start >= tr.Horizon/2 {
			eval = append(eval, &tr.VMs[i])
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, vm := range eval {
			if _, err := svc.Admit(vm); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := svc.TickDataPlane(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if st := svc.Stats(); st.DataPlane.Ticks != 20 {
		t.Errorf("ticks = %d", st.DataPlane.Ticks)
	}
}

// TestStatsEndpointCarriesDataPlane pins the /v1/stats wire format.
func TestStatsEndpointCarriesDataPlane(t *testing.T) {
	svc, tr := dpService(t, agent.PolicyTrim)
	admitSome(t, svc, tr, 5)
	if err := svc.TickDataPlane(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		DataPlane DataPlaneStats `json:"data_plane"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.DataPlane.Enabled || body.DataPlane.Ticks != 1 || body.DataPlane.AttachedVMs == 0 {
		t.Errorf("wire data_plane wrong: %+v", body.DataPlane)
	}
}
