package serve

import (
	"sort"
	"sync"
	"time"

	"github.com/coach-oss/coach/internal/trace"
)

// This file implements cross-request admission batching (docs/DESIGN.md
// §15): the opportunistic batcher shape proven for predictions (batch.go),
// extended to whole admission decisions. Requests are queued per shard —
// admission never crosses cluster boundaries, so batches never do either —
// and each shard's single loop goroutine coalesces whatever arrived inside
// the batch window into one fleet-sized rollout: one batched forest pass
// (predict.LongTerm.PredictBatchInto), one scored (request × server)
// matrix plus one pool-state sweep (core.WhatIfScorer.ScoreMany), then a
// serial arrival-order commit loop. Results are bit-identical to serial
// admission in arrival order — including capacity conflicts where request
// i consumes the slot request i+1 wanted — so responses never depend on
// which requests happened to share a batch.

// admitOut is one request's admission result, delivered on its private
// channel.
type admitOut struct {
	res AdmitResult
	err error
}

// admitJob is one queued admission request.
type admitJob struct {
	vm   *trace.VM
	resp chan admitOut
}

// AdmitBatchStats reports how effectively concurrent admissions coalesced
// and how much commit-time rework the batches caused.
type AdmitBatchStats struct {
	Requests int64   `json:"requests"`
	Batches  int64   `json:"batches"`
	MaxBatch int     `json:"max_batch"`
	MeanSize float64 `json:"mean_size"`
	// P50Size is the median batch size: the smallest size s such that at
	// least half of all batches had size ≤ s.
	P50Size int `json:"p50_size"`
	// ConflictReplays counts (request, server) cells re-scored after an
	// earlier request in the same batch committed a placement on that
	// server — the incremental work that keeps batched decisions
	// bit-identical to serial arrival order (core.Rollout.Commit).
	ConflictReplays int64 `json:"conflict_replays"`
}

// admitBatcher coalesces concurrent admission requests into per-shard
// batched decision passes. One background goroutine per shard owns that
// shard's loop — the same block-drain-flush collection discipline as the
// prediction batcher — and run executes the whole batch under the shard
// lock. The submit/close protocol (closed flag, senders WaitGroup) is the
// prediction batcher's, shared across every shard queue.
type admitBatcher struct {
	cfg    BatchConfig
	run    func(shard int, vms []*trace.VM, out []admitOut) (replays int)
	queues []chan admitJob
	done   sync.WaitGroup

	// respPool recycles the per-request response channels (each carries
	// exactly one value per use, so a drained channel is safely reusable).
	respPool sync.Pool

	// onBatch, when set before any traffic, observes every batch's shard
	// and arrival order from the loop goroutine — the equivalence tests
	// replay exactly the coalesced order serially.
	onBatch func(shard int, vms []*trace.VM)

	mu sync.Mutex
	// senders counts submits that passed the closed check but have not
	// finished sending; close() waits for them before closing the queues,
	// so no send can hit a closed channel.
	senders  sync.WaitGroup
	closed   bool
	requests int64
	batches  int64
	maxSeen  int
	sizes    map[int]int64 // batch size → occurrences, for the p50
	replays  int64
}

// newAdmitBatcher starts one collection loop per shard. run performs one
// batched admission pass for a shard; it is called from that shard's loop
// goroutine only, so per-shard scratch needs no locking beyond the shard
// lock run itself takes.
func newAdmitBatcher(shards int, cfg BatchConfig, run func(shard int, vms []*trace.VM, out []admitOut) int) *admitBatcher {
	b := &admitBatcher{
		cfg:    cfg.withDefaults(),
		run:    run,
		queues: make([]chan admitJob, shards),
		sizes:  make(map[int]int64),
	}
	for i := range b.queues {
		b.queues[i] = make(chan admitJob, b.cfg.Queue)
		b.done.Add(1)
		go b.loop(i)
	}
	return b
}

// submit enqueues one admission on its home shard's queue and blocks for
// the result.
func (b *admitBatcher) submit(shard int, vm *trace.VM) (AdmitResult, error) {
	resp, _ := b.respPool.Get().(chan admitOut)
	if resp == nil {
		resp = make(chan admitOut, 1)
	}
	job := admitJob{vm: vm, resp: resp}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return AdmitResult{}, ErrClosed
	}
	b.requests++
	b.senders.Add(1)
	b.mu.Unlock()
	// The loop drains its queue until the channel closes, so this send
	// always completes even when the queue is momentarily full.
	b.queues[shard] <- job
	b.senders.Done()
	out := <-resp
	b.respPool.Put(resp)
	return out.res, out.err
}

// close stops accepting work, waits for queued requests to be answered and
// stops every shard loop.
func (b *admitBatcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.done.Wait()
		return
	}
	b.closed = true
	b.mu.Unlock()
	b.senders.Wait()
	for _, q := range b.queues {
		close(q)
	}
	b.done.Wait()
}

// stats snapshots the coalescing counters.
func (b *admitBatcher) stats() AdmitBatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := AdmitBatchStats{
		Requests:        b.requests,
		Batches:         b.batches,
		MaxBatch:        b.maxSeen,
		ConflictReplays: b.replays,
	}
	if b.batches > 0 {
		s.MeanSize = float64(b.requests) / float64(b.batches)
		s.P50Size = percentileSize(b.sizes, b.batches)
	}
	return s
}

// percentileSize returns the median batch size from a size histogram.
func percentileSize(sizes map[int]int64, batches int64) int {
	keys := make([]int, 0, len(sizes))
	for k := range sizes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	half := (batches + 1) / 2
	var seen int64
	for _, k := range keys {
		seen += sizes[k]
		if seen >= half {
			return k
		}
	}
	return 0
}

// loop is one shard queue's single consumer.
func (b *admitBatcher) loop(shard int) {
	defer b.done.Done()
	batch := make([]admitJob, 0, b.cfg.MaxBatch)
	vms := make([]*trace.VM, 0, b.cfg.MaxBatch)
	out := make([]admitOut, b.cfg.MaxBatch)
	for {
		first, ok := <-b.queues[shard]
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		batch, ok = b.fill(shard, batch)
		b.flush(shard, batch, vms, out)
		if !ok {
			return
		}
	}
}

// fill grows batch up to MaxBatch: first by draining what is already
// queued without blocking, then — when MaxWait is set — by waiting up to
// MaxWait for stragglers. Returns ok=false once the shard queue closed.
func (b *admitBatcher) fill(shard int, batch []admitJob) ([]admitJob, bool) {
	for len(batch) < b.cfg.MaxBatch {
		select {
		case j, ok := <-b.queues[shard]:
			if !ok {
				return batch, false
			}
			batch = append(batch, j)
		default:
			if b.cfg.MaxWait <= 0 {
				return batch, true
			}
			return b.fillTimed(shard, batch)
		}
	}
	return batch, true
}

// fillTimed continues filling until MaxWait elapses or the batch is full.
func (b *admitBatcher) fillTimed(shard int, batch []admitJob) ([]admitJob, bool) {
	timer := time.NewTimer(b.cfg.MaxWait)
	defer timer.Stop()
	for len(batch) < b.cfg.MaxBatch {
		select {
		case j, ok := <-b.queues[shard]:
			if !ok {
				return batch, false
			}
			batch = append(batch, j)
		case <-timer.C:
			return batch, true
		}
	}
	return batch, true
}

// flush runs one batched admission pass and fans results out to the
// waiters. vms and out are the loop's scratch.
func (b *admitBatcher) flush(shard int, batch []admitJob, vms []*trace.VM, out []admitOut) {
	if len(batch) == 0 {
		return
	}
	vms = vms[:0]
	for _, j := range batch {
		vms = append(vms, j.vm)
	}
	if b.onBatch != nil {
		b.onBatch(shard, vms)
	}
	out = out[:len(batch)]
	for i := range out {
		out[i] = admitOut{}
	}
	replays := b.run(shard, vms, out)
	b.mu.Lock()
	b.batches++
	b.sizes[len(batch)]++
	b.replays += int64(replays)
	if len(batch) > b.maxSeen {
		b.maxSeen = len(batch)
	}
	b.mu.Unlock()
	for i, j := range batch {
		j.resp <- out[i]
	}
}
