// Package workload models the nine cloud workloads of the paper's Table 2
// as drivers for the memory simulator: each has a working-set size and
// dynamics, an access-locality profile (which zNUMA funneling interacts
// with), allocation churn, and a key performance metric.
//
// These synthetic models substitute for the real applications
// (memcached, SQL, TeraSort, SpecJBB, YCSB-style KV, PageRank,
// DeathStarBench, BERT fine-tuning, video conferencing) — see docs/DESIGN.md §2.
// What Fig. 18/21 measure is the interaction between working set, PA/VA
// split and paging, which the models encode per workload.
package workload

import (
	"fmt"
	"math"

	"github.com/coach-oss/coach/internal/memsim"
)

// Metric is the key performance metric class of a workload (Table 2).
type Metric int

const (
	// TailLatency workloads report P99 latency (lower is better).
	TailLatency Metric = iota
	// RunTime workloads report completion time (lower is better).
	RunTime
	// Throughput workloads report operations per second (higher is
	// better).
	Throughput
)

func (m Metric) String() string {
	switch m {
	case TailLatency:
		return "P99 latency"
	case RunTime:
		return "run time"
	case Throughput:
		return "throughput"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Spec is the static description of one workload.
type Spec struct {
	Name        string
	Description string
	Metric      Metric

	// VMSizeGB is the memory size of the VM the workload runs on.
	VMSizeGB float64
	// WSSGB is the steady-state working-set size.
	WSSGB float64

	// HotFrac is the fraction of accesses to the hot subset; HotSize is
	// the hot subset's share of the working set. Together they control
	// how well zNUMA funneling shields the workload.
	HotFrac float64
	HotSize float64

	// PhaseAmpGB, PhasePeriodS and BurstS give the working set a bursty
	// phase pattern: every PhasePeriodS seconds the working set grows by
	// PhaseAmpGB for BurstS seconds (request spikes, batch phases). The
	// burst duty cycle is what Coach's percentile prediction trades off:
	// a P95 guaranteed portion intentionally leaves sub-5%-duty bursts
	// to the oversubscribed portion.
	PhaseAmpGB   float64
	PhasePeriodS float64
	BurstS       float64

	// ChurnGBs is the allocation churn rate: GB/s of working-set pages
	// freed and re-allocated at fresh guest-physical addresses (LLM
	// fine-tuning's per-iteration alloc/free, §4.2).
	ChurnGBs float64

	// OpBaseNs is the non-memory cost of one operation (request
	// processing, network, compute); OpAccesses is the number of memory
	// accesses an operation performs. Together they convert the memory
	// simulator's access-level latency mixture into operation-level
	// latency: a request's tail inflates once the chance of hitting at
	// least one page fault per operation becomes non-negligible.
	OpBaseNs   float64
	OpAccesses float64
}

// Table2 returns the paper's Table 2 workload suite.
func Table2() []Spec {
	return []Spec{
		{
			Name: "Cache", Description: "Memcached read/writes", Metric: TailLatency,
			VMSizeGB: 32, WSSGB: 18, HotFrac: 0.60, HotSize: 0.50,
			PhaseAmpGB: 3.0, PhasePeriodS: 120, BurstS: 4, ChurnGBs: 0.010,
			OpBaseNs: 30_000, OpAccesses: 150,
		},
		{
			Name: "Database", Description: "Queries on a SQL database", Metric: TailLatency,
			VMSizeGB: 32, WSSGB: 22, HotFrac: 0.85, HotSize: 0.20,
			PhaseAmpGB: 2.0, PhasePeriodS: 300, BurstS: 10, ChurnGBs: 0.002,
			OpBaseNs: 400_000, OpAccesses: 800,
		},
		{
			Name: "Big Data", Description: "Sorting with TeraSort", Metric: RunTime,
			VMSizeGB: 32, WSSGB: 26, HotFrac: 0.40, HotSize: 0.60,
			PhaseAmpGB: 4.0, PhasePeriodS: 180, BurstS: 30, ChurnGBs: 0.02,
			OpBaseNs: 100_000, OpAccesses: 600,
		},
		{
			Name: "Web", Description: "3-tier web application (SPECjbb)", Metric: Throughput,
			VMSizeGB: 16, WSSGB: 10, HotFrac: 0.80, HotSize: 0.25,
			PhaseAmpGB: 1.5, PhasePeriodS: 240, BurstS: 8, ChurnGBs: 0.004,
			OpBaseNs: 200_000, OpAccesses: 400,
		},
		{
			Name: "KV-Store", Description: "Querying a KV-store", Metric: TailLatency,
			VMSizeGB: 32, WSSGB: 18, HotFrac: 0.55, HotSize: 0.55,
			PhaseAmpGB: 3.0, PhasePeriodS: 150, BurstS: 5, ChurnGBs: 0.010,
			OpBaseNs: 25_000, OpAccesses: 120,
		},
		{
			Name: "Graph", Description: "Computing PageRank", Metric: RunTime,
			VMSizeGB: 32, WSSGB: 28, HotFrac: 0.45, HotSize: 0.65,
			PhaseAmpGB: 2.0, PhasePeriodS: 200, BurstS: 20, ChurnGBs: 0.008,
			OpBaseNs: 80_000, OpAccesses: 700,
		},
		{
			Name: "Microservice", Description: "Social network (DeathStarBench)", Metric: TailLatency,
			VMSizeGB: 16, WSSGB: 8, HotFrac: 0.70, HotSize: 0.30,
			PhaseAmpGB: 1.5, PhasePeriodS: 90, BurstS: 3, ChurnGBs: 0.006,
			OpBaseNs: 150_000, OpAccesses: 300,
		},
		{
			Name: "LLM-FT", Description: "BERT LLM fine-tuning", Metric: RunTime,
			VMSizeGB: 64, WSSGB: 48, HotFrac: 0.50, HotSize: 0.70,
			PhaseAmpGB: 6.0, PhasePeriodS: 60, BurstS: 10, ChurnGBs: 0.35,
			OpBaseNs: 120_000, OpAccesses: 900,
		},
		{
			Name: "Video Conf", Description: "Video conference application", Metric: Throughput,
			VMSizeGB: 8, WSSGB: 5, HotFrac: 0.75, HotSize: 0.40,
			PhaseAmpGB: 1.0, PhasePeriodS: 120, BurstS: 5, ChurnGBs: 0.004,
			OpBaseNs: 300_000, OpAccesses: 250,
		},
	}
}

// SpecByName returns the Table 2 spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Table2() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Runner drives one workload instance against a VMMem and accumulates its
// key metric.
type Runner struct {
	Spec Spec
	vm   *memsim.VMMem
	cfg  memsim.Config

	elapsed  float64
	churnAcc float64

	ticks     int
	sumMean   float64
	sumP99    float64
	sumOpMean float64
	sumOpP99  float64
	sumFaults float64
	worstP99  float64
	sumPPA    float64
	sumPVA    float64
	sumPSoft  float64
	sumPHard  float64
	sumMeanNs float64
}

// NewRunner attaches a workload to a VM memory state and configures the
// VM's locality profile from the spec. cfg must match the memsim server
// the VM lives on (it supplies the fault latency for the op-level model).
func NewRunner(spec Spec, vm *memsim.VMMem, cfg memsim.Config) (*Runner, error) {
	if vm.SizeGB < spec.WSSGB {
		return nil, fmt.Errorf("workload: %s working set %.1fGB exceeds VM size %.1fGB", spec.Name, spec.WSSGB, vm.SizeGB)
	}
	vm.HotFrac = spec.HotFrac
	vm.HotSize = spec.HotSize
	return &Runner{Spec: spec, vm: vm, cfg: cfg}, nil
}

// VM returns the driven memory state.
func (r *Runner) VM() *memsim.VMMem { return r.vm }

// WSSAt returns the working set the spec prescribes at elapsed seconds:
// the base plus PhaseAmpGB during the burst window of each period.
func (s Spec) WSSAt(elapsed float64) float64 {
	wss := s.WSSGB
	if s.PhaseAmpGB > 0 && s.PhasePeriodS > 0 && s.BurstS > 0 {
		if math.Mod(elapsed, s.PhasePeriodS) < s.BurstS {
			wss += s.PhaseAmpGB
		}
	}
	if wss < 0.1 {
		wss = 0.1
	}
	return wss
}

// Step advances the workload by dt seconds: it updates the working set
// according to the phase pattern and applies allocation churn.
func (r *Runner) Step(dt float64) {
	r.elapsed += dt
	r.vm.SetWSS(r.Spec.WSSAt(r.elapsed))

	if r.Spec.ChurnGBs > 0 {
		r.churnAcc += r.Spec.ChurnGBs * dt
		if r.churnAcc >= 0.05 {
			r.vm.Rotate(r.churnAcc)
			r.churnAcc = 0
		}
	}
}

// Record accumulates one tick's memory stats into the workload metrics.
func (r *Runner) Record(st memsim.TickStats) {
	r.ticks++
	r.sumMean += st.MeanNs
	r.sumP99 += st.P99Ns
	opMean, opP99 := r.OpLatencies(st)
	r.sumOpMean += opMean
	r.sumOpP99 += opP99
	r.sumFaults += st.FaultGB
	r.sumPPA += st.PPA
	r.sumPVA += st.PVA
	r.sumPSoft += st.PSoft
	r.sumPHard += st.PHard
	r.sumMeanNs += st.MeanNs
	if opP99 > r.worstP99 {
		r.worstP99 = opP99
	}
}

// OpLatencies converts one tick's access mixture into operation-level mean
// and P99 latencies. An operation performs OpAccesses memory accesses on
// top of OpBaseNs of fixed work. Its P99 pays the hypervisor allocation
// tail once the chance of an operation hitting at least one soft fault
// exceeds 1%, and the backing-store latency once the chance of hitting a
// hard fault exceeds 1%.
func (r *Runner) OpLatencies(st memsim.TickStats) (opMean, opP99 float64) {
	return r.opLatencies(st.MeanNs, st.PPA, st.PVA, st.PSoft, st.PHard)
}

func (r *Runner) opLatencies(meanNs, pPA, pVA, pSoft, pHard float64) (opMean, opP99 float64) {
	n := r.Spec.OpAccesses
	if n <= 0 {
		n = 1
	}
	opMean = r.Spec.OpBaseNs + n*meanNs

	// Latency of accesses that do not fault (PA/VA mixture).
	noFault := r.cfg.PAAccessNs
	if pnf := pPA + pVA; pnf > 0 {
		noFault = (pPA*r.cfg.PAAccessNs + pVA*r.cfg.VAAccessNs) / pnf
	}
	opP99 = r.Spec.OpBaseNs + n*noFault
	if 1-math.Pow(1-pSoft, n) > 0.01 {
		opP99 += r.cfg.SoftTailNs
	}
	if 1-math.Pow(1-pHard, n) > 0.01 {
		opP99 += r.cfg.FaultNs
	}
	return opMean, opP99
}

// Ticks returns the number of recorded ticks.
func (r *Runner) Ticks() int { return r.ticks }

// MeanLatencyNs returns the time-averaged mean access latency.
func (r *Runner) MeanLatencyNs() float64 {
	if r.ticks == 0 {
		return 0
	}
	return r.sumMean / float64(r.ticks)
}

// MeanOpLatencyNs returns the time-averaged mean operation latency.
func (r *Runner) MeanOpLatencyNs() float64 {
	if r.ticks == 0 {
		return 0
	}
	return r.sumOpMean / float64(r.ticks)
}

// MeanOpP99Ns returns the time-averaged P99 operation latency: the key
// metric of the tail-latency workloads.
func (r *Runner) MeanOpP99Ns() float64 {
	if r.ticks == 0 {
		return 0
	}
	return r.sumOpP99 / float64(r.ticks)
}

// WorstOpP99Ns returns the worst single-tick P99 operation latency.
func (r *Runner) WorstOpP99Ns() float64 { return r.worstP99 }

// TotalFaultGB returns the cumulative faulted GB.
func (r *Runner) TotalFaultGB() float64 { return r.sumFaults }

// RunOpP99Ns returns the P99 operation latency over the whole run,
// computed from the run-averaged access mixture: once more than 1% of the
// run's operations hit at least one soft (hard) fault, the run's tail pays
// the allocation (backing-store) latency. This is the key metric of the
// tail-latency workloads.
func (r *Runner) RunOpP99Ns() float64 {
	if r.ticks == 0 {
		return 0
	}
	n := float64(r.ticks)
	_, p99 := r.opLatencies(r.sumMeanNs/n, r.sumPPA/n, r.sumPVA/n, r.sumPSoft/n, r.sumPHard/n)
	return p99
}

// KeyMetricNs returns the accumulated key metric in latency terms: P99
// operation latency for tail workloads, mean operation latency otherwise
// (run time and throughput both scale with mean latency).
func (r *Runner) KeyMetricNs() float64 {
	if r.Spec.Metric == TailLatency {
		return r.RunOpP99Ns()
	}
	return r.MeanOpLatencyNs()
}

// Slowdown returns the workload's key-metric slowdown relative to a
// baseline runner (typically the fully guaranteed GPVM), normalized so the
// baseline is 1.0 and higher means worse, matching Fig. 18's
// "normalized slowdown" for all three metric classes.
func (r *Runner) Slowdown(baseline *Runner) float64 {
	b := baseline.KeyMetricNs()
	if b == 0 {
		return 1
	}
	return r.KeyMetricNs() / b
}

// TickSlowdown returns one tick's key-metric slowdown against a baseline
// tick value — the per-second normalized slowdown plotted in Fig. 21b/c.
func (r *Runner) TickSlowdown(st memsim.TickStats, baselineNs float64) float64 {
	if baselineNs == 0 {
		return 1
	}
	opMean, opP99 := r.OpLatencies(st)
	if r.Spec.Metric == TailLatency {
		return opP99 / baselineNs
	}
	return opMean / baselineNs
}

// BaselineOpNs returns the operation latency of an uncontended, fully
// guaranteed run: all accesses at PA speed.
func (r *Runner) BaselineOpNs() float64 {
	n := r.Spec.OpAccesses
	if n <= 0 {
		n = 1
	}
	return r.Spec.OpBaseNs + n*r.cfg.PAAccessNs
}
