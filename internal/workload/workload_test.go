package workload

import (
	"math"
	"testing"

	"github.com/coach-oss/coach/internal/memsim"
)

func TestTable2Complete(t *testing.T) {
	specs := Table2()
	if len(specs) != 9 {
		t.Fatalf("%d workloads, want 9 (paper Table 2)", len(specs))
	}
	names := map[string]bool{}
	metrics := map[string]Metric{
		"Cache": TailLatency, "Database": TailLatency, "Big Data": RunTime,
		"Web": Throughput, "KV-Store": TailLatency, "Graph": RunTime,
		"Microservice": TailLatency, "LLM-FT": RunTime, "Video Conf": Throughput,
	}
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate workload %s", s.Name)
		}
		names[s.Name] = true
		want, ok := metrics[s.Name]
		if !ok {
			t.Errorf("unexpected workload %s", s.Name)
			continue
		}
		if s.Metric != want {
			t.Errorf("%s metric = %v, want %v", s.Name, s.Metric, want)
		}
		if s.WSSGB <= 0 || s.WSSGB > s.VMSizeGB {
			t.Errorf("%s working set %v outside (0, %v]", s.Name, s.WSSGB, s.VMSizeGB)
		}
		if s.OpBaseNs <= 0 || s.OpAccesses <= 0 {
			t.Errorf("%s op model not set", s.Name)
		}
	}
}

func TestLLMFTHasLargestWorkingSetAndChurn(t *testing.T) {
	// §4.2: LLM-FT "has the largest working set and frequently
	// allocates/deallocates memory for each training iteration".
	specs := Table2()
	var llm Spec
	maxWSS, maxChurn := 0.0, 0.0
	for _, s := range specs {
		if s.Name == "LLM-FT" {
			llm = s
		}
		if s.WSSGB > maxWSS {
			maxWSS = s.WSSGB
		}
		if s.ChurnGBs > maxChurn {
			maxChurn = s.ChurnGBs
		}
	}
	if llm.WSSGB != maxWSS {
		t.Errorf("LLM-FT WSS %v is not the largest (%v)", llm.WSSGB, maxWSS)
	}
	if llm.ChurnGBs != maxChurn {
		t.Errorf("LLM-FT churn %v is not the largest (%v)", llm.ChurnGBs, maxChurn)
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("Cache")
	if err != nil || s.Name != "Cache" {
		t.Errorf("SpecByName(Cache) = %v, %v", s.Name, err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Error("unknown workload must fail")
	}
}

func TestMetricString(t *testing.T) {
	if TailLatency.String() != "P99 latency" || RunTime.String() != "run time" || Throughput.String() != "throughput" {
		t.Error("metric strings wrong")
	}
}

func TestWSSAtBurstPattern(t *testing.T) {
	s := Spec{WSSGB: 10, PhaseAmpGB: 3, PhasePeriodS: 100, BurstS: 5}
	if got := s.WSSAt(2); got != 13 {
		t.Errorf("during burst WSS = %v, want 13", got)
	}
	if got := s.WSSAt(50); got != 10 {
		t.Errorf("off burst WSS = %v, want 10", got)
	}
	if got := s.WSSAt(102); got != 13 {
		t.Errorf("second period burst WSS = %v, want 13", got)
	}
}

func TestWSSAtNoPattern(t *testing.T) {
	s := Spec{WSSGB: 4}
	if s.WSSAt(123) != 4 {
		t.Error("no phase pattern must return base WSS")
	}
}

func TestWSSAtFloor(t *testing.T) {
	s := Spec{WSSGB: 0}
	if s.WSSAt(0) != 0.1 {
		t.Error("WSS must floor at 0.1")
	}
}

func newRunner(t *testing.T, spec Spec, pa float64) (*Runner, *memsim.Server, *memsim.VMMem) {
	t.Helper()
	cfg := memsim.DefaultConfig()
	srv := memsim.NewServer(cfg, spec.VMSizeGB, 0)
	vm, err := memsim.NewVMMem(1, spec.VMSizeGB, pa)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddVM(vm); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(spec, vm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, srv, vm
}

func TestNewRunnerRejectsOversizedWSS(t *testing.T) {
	cfg := memsim.DefaultConfig()
	vm, _ := memsim.NewVMMem(1, 4, 4)
	spec := Spec{Name: "x", WSSGB: 8, VMSizeGB: 4}
	if _, err := NewRunner(spec, vm, cfg); err == nil {
		t.Error("WSS > VM size must fail")
	}
}

func TestRunnerConfiguresLocality(t *testing.T) {
	spec, _ := SpecByName("Database")
	_, _, vm := newRunner(t, spec, spec.VMSizeGB)
	if vm.HotFrac != spec.HotFrac || vm.HotSize != spec.HotSize {
		t.Error("runner must configure the VM's locality profile")
	}
}

func TestSelfSlowdownIsOne(t *testing.T) {
	spec, _ := SpecByName("Web")
	r, srv, _ := newRunner(t, spec, spec.VMSizeGB) // fully guaranteed
	for i := 0; i < 60; i++ {
		r.Step(1)
		st, err := srv.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		r.Record(st.Get(1))
	}
	if got := r.Slowdown(r); math.Abs(got-1) > 1e-9 {
		t.Errorf("self slowdown = %v", got)
	}
	if r.Ticks() != 60 {
		t.Errorf("Ticks = %d", r.Ticks())
	}
}

func TestFullyGuaranteedRunsAtBaseline(t *testing.T) {
	spec, _ := SpecByName("Cache")
	r, srv, _ := newRunner(t, spec, spec.VMSizeGB)
	for i := 0; i < 30; i++ {
		r.Step(1)
		st, _ := srv.Tick(1)
		r.Record(st.Get(1))
	}
	if got, want := r.MeanOpLatencyNs(), r.BaselineOpNs(); math.Abs(got-want) > 1e-6 {
		t.Errorf("fully guaranteed op latency %v != baseline %v", got, want)
	}
}

func TestOpLatenciesFaultTail(t *testing.T) {
	spec, _ := SpecByName("Cache")
	cfg := memsim.DefaultConfig()
	vm, _ := memsim.NewVMMem(1, spec.VMSizeGB, spec.VMSizeGB)
	r, err := NewRunner(spec, vm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean := memsim.TickStats{PPA: 1, MeanNs: cfg.PAAccessNs}
	_, p99Clean := r.OpLatencies(clean)

	hard := memsim.TickStats{PPA: 0.99, PHard: 0.01, MeanNs: cfg.PAAccessNs}
	_, p99Hard := r.OpLatencies(hard)
	if p99Hard-p99Clean < cfg.FaultNs*0.99 {
		t.Errorf("1%% hard faults must add the fault latency to P99: %v vs %v", p99Hard, p99Clean)
	}

	soft := memsim.TickStats{PPA: 0.99, PSoft: 0.01, MeanNs: cfg.PAAccessNs}
	_, p99Soft := r.OpLatencies(soft)
	if p99Soft-p99Clean < cfg.SoftTailNs*0.99 {
		t.Errorf("1%% soft faults must add the allocation tail to P99")
	}
	if p99Soft >= p99Hard {
		t.Error("soft tail must be cheaper than hard tail")
	}
}

func TestOpLatenciesMonotoneInFaults(t *testing.T) {
	spec, _ := SpecByName("KV-Store")
	cfg := memsim.DefaultConfig()
	vm, _ := memsim.NewVMMem(1, spec.VMSizeGB, spec.VMSizeGB)
	r, _ := NewRunner(spec, vm, cfg)
	prev := -1.0
	for _, pf := range []float64{0, 0.001, 0.01, 0.1} {
		st := memsim.TickStats{PPA: 1 - pf, PHard: pf,
			MeanNs: (1-pf)*cfg.PAAccessNs + pf*cfg.FaultNs}
		mean, _ := r.OpLatencies(st)
		if mean <= prev {
			t.Fatalf("op mean not monotone in fault rate at %v", pf)
		}
		prev = mean
	}
}

func TestTickSlowdown(t *testing.T) {
	spec, _ := SpecByName("Cache")
	cfg := memsim.DefaultConfig()
	vm, _ := memsim.NewVMMem(1, spec.VMSizeGB, spec.VMSizeGB)
	r, _ := NewRunner(spec, vm, cfg)
	clean := memsim.TickStats{PPA: 1, MeanNs: cfg.PAAccessNs}
	if got := r.TickSlowdown(clean, r.BaselineOpNs()); math.Abs(got-1) > 1e-9 {
		t.Errorf("clean tick slowdown = %v", got)
	}
	if r.TickSlowdown(clean, 0) != 1 {
		t.Error("zero baseline must return 1")
	}
}

func TestChurnGeneratesFaults(t *testing.T) {
	// LLM-FT on a fully VA VM must fault continuously from churn.
	spec, _ := SpecByName("LLM-FT")
	r, srv, _ := newRunner(t, spec, 0) // all VA, pool = size
	var soft float64
	for i := 0; i < 120; i++ {
		r.Step(1)
		st, err := srv.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		if i > 60 {
			soft += st.Get(1).PSoft
		}
	}
	if soft == 0 {
		t.Error("allocation churn on a VA-backed VM must produce soft faults")
	}
}

func TestRunOpP99UsesRunAverage(t *testing.T) {
	spec, _ := SpecByName("Cache")
	cfg := memsim.DefaultConfig()
	vm, _ := memsim.NewVMMem(1, spec.VMSizeGB, spec.VMSizeGB)
	r, _ := NewRunner(spec, vm, cfg)
	// 10% of ticks have heavy hard faults: the run-level tail must pay.
	for i := 0; i < 100; i++ {
		st := memsim.TickStats{PPA: 1, MeanNs: cfg.PAAccessNs}
		if i%10 == 0 {
			st = memsim.TickStats{PPA: 0.9, PHard: 0.1, MeanNs: 0.9*cfg.PAAccessNs + 0.1*cfg.FaultNs}
		}
		r.Record(st)
	}
	if r.RunOpP99Ns() < cfg.FaultNs {
		t.Errorf("run P99 %v must include the fault latency", r.RunOpP99Ns())
	}
}
