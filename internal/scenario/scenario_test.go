package scenario

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/coach-oss/coach/internal/timeseries"
)

// validSpec is a minimal spec passing Validate, used as the mutation
// base for the error table.
func validSpec() *Spec {
	return &Spec{
		Name: "base", Seed: 5, Days: 7, VMs: 100,
		Subscriptions: 12, Clusters: 4, StartWeekday: time.Monday,
		Seasonality: Seasonality{DiurnalAmp: 0.3, PeakHour: 14, WeekendFactor: 0.8},
		Classes: []Class{
			{Name: "a", Fraction: 0.6, Arrival: PoissonArrival(),
				Lifetime: Lognormal(40, 1), WorkingSet: Uniform(0.3, 0.6)},
			{Name: "b", Fraction: 0.4, Arrival: GammaArrival(2),
				Lifetime: Exponential(8), WorkingSet: Fixed(0.5)},
		},
		Surges: []Surge{{Kind: "spike", Classes: []string{"a"},
			Day: 4, DurationHours: 6, RateMult: 3, UtilMult: 1.2, Cluster: -1}},
	}
}

func TestValidSpecValidates(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSpecValidateErrors exercises every error branch of Spec.Validate.
func TestSpecValidateErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"days-zero", func(sp *Spec) { sp.Days = 0 }, "Days"},
		{"vms-zero", func(sp *Spec) { sp.VMs = 0 }, "VMs"},
		{"clusters-zero", func(sp *Spec) { sp.Clusters = 0 }, "Clusters"},
		{"too-few-subscriptions", func(sp *Spec) { sp.Subscriptions = 1 }, "subscriptions"},
		{"weekday-negative", func(sp *Spec) { sp.StartWeekday = -1 }, "StartWeekday"},
		{"weekday-above-saturday", func(sp *Spec) { sp.StartWeekday = 7 }, "StartWeekday"},
		{"no-classes", func(sp *Spec) { sp.Classes = nil; sp.Subscriptions = 0 }, "no classes"},
		{"diurnal-amp-negative", func(sp *Spec) { sp.Seasonality.DiurnalAmp = -0.1 }, "diurnal-amp"},
		{"diurnal-amp-one", func(sp *Spec) { sp.Seasonality.DiurnalAmp = 1 }, "diurnal-amp"},
		{"peak-hour-negative", func(sp *Spec) { sp.Seasonality.PeakHour = -1 }, "peak-hour"},
		{"peak-hour-24", func(sp *Spec) { sp.Seasonality.PeakHour = 24 }, "peak-hour"},
		{"weekend-negative", func(sp *Spec) { sp.Seasonality.WeekendFactor = -0.5 }, "weekend-factor"},
		{"class-unnamed", func(sp *Spec) { sp.Classes[0].Name = "" }, "no name"},
		{"class-duplicate", func(sp *Spec) { sp.Classes[1].Name = "a" }, "duplicate"},
		{"fraction-zero", func(sp *Spec) { sp.Classes[0].Fraction = 0 }, "fraction"},
		{"fraction-above-one", func(sp *Spec) { sp.Classes[0].Fraction = 1.1 }, "fraction"},
		{"size-unknown", func(sp *Spec) { sp.Classes[0].Size = "tiny" }, "size"},
		{"class-cluster-negative", func(sp *Spec) { sp.Classes[0].Clusters = []int{-1} }, "cluster"},
		{"class-cluster-too-big", func(sp *Spec) { sp.Classes[0].Clusters = []int{4} }, "cluster"},
		{"arrival-bad", func(sp *Spec) { sp.Classes[0].Arrival = GammaArrival(-1) }, "arrival"},
		{"lifetime-bad", func(sp *Spec) { sp.Classes[0].Lifetime = Exponential(-1) }, "lifetime"},
		{"lifetime-zero-mean", func(sp *Spec) { sp.Classes[0].Lifetime = Fixed(0) }, "lifetime mean"},
		{"working-set-bad", func(sp *Spec) { sp.Classes[0].WorkingSet = Uniform(0.5, 0.2) }, "working-set"},
		{"working-set-above-one", func(sp *Spec) { sp.Classes[0].WorkingSet = Fixed(1.5) }, "working-set mean"},
		{"fractions-dont-sum", func(sp *Spec) { sp.Classes[0].Fraction = 0.3 }, "sum"},
		{"surge-no-kind", func(sp *Spec) { sp.Surges[0].Kind = "" }, "no kind"},
		{"surge-day-negative", func(sp *Spec) { sp.Surges[0].Day = -1 }, "day"},
		{"surge-day-past-horizon", func(sp *Spec) { sp.Surges[0].Day = 7 }, "day"},
		{"surge-duration-zero", func(sp *Spec) { sp.Surges[0].DurationHours = 0 }, "duration"},
		{"surge-rate-negative", func(sp *Spec) { sp.Surges[0].RateMult = -1 }, "negative multiplier"},
		{"surge-util-negative", func(sp *Spec) { sp.Surges[0].UtilMult = -1 }, "negative multiplier"},
		{"surge-cluster-below-minus-one", func(sp *Spec) { sp.Surges[0].Cluster = -2 }, "cluster"},
		{"surge-cluster-too-big", func(sp *Spec) { sp.Surges[0].Cluster = 4 }, "cluster"},
		{"surge-unknown-class", func(sp *Spec) { sp.Surges[0].Classes = []string{"ghost"} }, "unknown class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := validSpec()
			tc.mutate(sp)
			err := sp.Validate()
			if err == nil {
				t.Fatal("Validate accepted the mutated spec")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestHorizonAndWeekday(t *testing.T) {
	sp := validSpec()
	if got := sp.Horizon(); got != 7*timeseries.SamplesPerDay {
		t.Errorf("Horizon = %d", got)
	}
	wants := []time.Weekday{time.Monday, time.Tuesday, time.Wednesday, time.Thursday,
		time.Friday, time.Saturday, time.Sunday}
	for d, want := range wants {
		if got := sp.WeekdayAt(d * timeseries.SamplesPerDay); got != want {
			t.Errorf("day %d = %v, want %v", d, got, want)
		}
	}
	// Weeks wrap.
	sp.Days = 14
	if got := sp.WeekdayAt(7 * timeseries.SamplesPerDay); got != time.Monday {
		t.Errorf("day 7 = %v, want Monday", got)
	}
}

func TestSeasonalityAt(t *testing.T) {
	s := Seasonality{DiurnalAmp: 0.4, PeakHour: 14, WeekendFactor: 0.5}
	if got := s.At(14, time.Wednesday); math.Abs(got-1.4) > 1e-12 {
		t.Errorf("peak = %v, want 1.4", got)
	}
	if got := s.At(2, time.Wednesday); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("trough = %v, want 0.6", got)
	}
	if got := s.At(14, time.Saturday); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("weekend peak = %v, want 0.7", got)
	}
	// The zero value is flat: multiplier 1 everywhere.
	flat := Seasonality{}
	for _, h := range []float64{0, 6.5, 23} {
		if got := flat.At(h, time.Sunday); math.Abs(got-1) > 1e-12 {
			t.Errorf("flat At(%v) = %v", h, got)
		}
	}
}

func TestSurgeActiveAndAffects(t *testing.T) {
	sg := Surge{Kind: "x", Day: 2, DurationHours: 6, Cluster: -1}
	start := 2 * timeseries.SamplesPerDay
	end := start + 6*timeseries.SamplesPerHour
	if sg.Active(start - 1) {
		t.Error("active before window")
	}
	if !sg.Active(start) || !sg.Active(end-1) {
		t.Error("inactive inside window")
	}
	if sg.Active(end) {
		t.Error("active at window end")
	}
	if !sg.Affects("anything") {
		t.Error("empty Classes must affect all")
	}
	sg.Classes = []string{"a"}
	if !sg.Affects("a") || sg.Affects("b") {
		t.Error("Affects ignores the class list")
	}
}

func TestRateUtilAndHomeCluster(t *testing.T) {
	sp := validSpec()
	sp.Seasonality = Seasonality{WeekendFactor: 1} // flat
	sp.Surges = []Surge{{Kind: "spike", Classes: []string{"a"},
		Day: 4, DurationHours: 6, RateMult: 3, UtilMult: 1.2, Cluster: 2}}
	in := 4*timeseries.SamplesPerDay + 1
	out := 2 * timeseries.SamplesPerDay
	if got := sp.RateAt(0, in); math.Abs(got-3) > 1e-12 {
		t.Errorf("surged rate = %v, want 3", got)
	}
	if got := sp.RateAt(0, out); math.Abs(got-1) > 1e-12 {
		t.Errorf("quiet rate = %v, want 1", got)
	}
	if got := sp.RateAt(1, in); math.Abs(got-1) > 1e-12 {
		t.Errorf("unaffected class rate = %v, want 1", got)
	}
	if got := sp.UtilMultAt(0, in); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("surged util mult = %v, want 1.2", got)
	}
	if got := sp.UtilMultAt(0, out); got != 1 {
		t.Errorf("quiet util mult = %v, want 1", got)
	}
	if got := sp.UtilMultAt(1, in); got != 1 {
		t.Errorf("unaffected util mult = %v, want 1", got)
	}
	if got := sp.HomeClusterAt(0, in, 9); got != 2 {
		t.Errorf("surged home = %d, want 2", got)
	}
	if got := sp.HomeClusterAt(0, out, 9); got != 9 {
		t.Errorf("quiet home = %d, want 9", got)
	}
	if got := sp.HomeClusterAt(1, in, 9); got != 9 {
		t.Errorf("unaffected home = %d, want 9", got)
	}
}

// TestSubscriptionBounds pins the partition invariants: bounds cover
// [0,Subscriptions), every class owns at least one subscription, and
// generous budgets split proportionally to Fraction.
func TestSubscriptionBounds(t *testing.T) {
	sp := validSpec()
	lo0, hi0 := sp.SubscriptionRange(0)
	lo1, hi1 := sp.SubscriptionRange(1)
	if lo0 != 0 || hi0 != lo1 || hi1 != sp.Subscriptions {
		t.Errorf("ranges [%d,%d) [%d,%d) don't tile [0,%d)", lo0, hi0, lo1, hi1, sp.Subscriptions)
	}
	// 0.6 of 12 subscriptions.
	if hi0 != 7 {
		t.Errorf("class 0 owns %d subscriptions, want 7", hi0)
	}
	for sub := 0; sub < sp.Subscriptions; sub++ {
		ci := sp.ClassOfSubscription(sub)
		lo, hi := sp.SubscriptionRange(ci)
		if sub < lo || sub >= hi {
			t.Errorf("sub %d mapped to class %d owning [%d,%d)", sub, ci, lo, hi)
		}
	}
	if sp.ClassOfSubscription(-1) != -1 || sp.ClassOfSubscription(sp.Subscriptions) != -1 {
		t.Error("out-of-range subscription must map to -1")
	}

	// Tight budget: one subscription per class even with skewed fractions.
	tight := &Spec{Subscriptions: 3, Classes: []Class{
		{Fraction: 0.98}, {Fraction: 0.01}, {Fraction: 0.01},
	}}
	prev := 0
	for ci := range tight.Classes {
		lo, hi := tight.SubscriptionRange(ci)
		if lo != prev || hi <= lo {
			t.Errorf("class %d range [%d,%d) not contiguous with at least one sub", ci, lo, hi)
		}
		prev = hi
	}
	if prev != 3 {
		t.Errorf("bounds end at %d, want 3", prev)
	}
}

func TestScaled(t *testing.T) {
	sp := validSpec()
	got := sp.Scaled(500, 50)
	if got.VMs != 500 || got.Subscriptions != 50 {
		t.Errorf("Scaled = %d VMs / %d subs", got.VMs, got.Subscriptions)
	}
	if sp.VMs != 100 || sp.Subscriptions != 12 {
		t.Error("Scaled mutated the receiver")
	}
	if got.Name != sp.Name || len(got.Classes) != len(sp.Classes) {
		t.Error("Scaled dropped spec content")
	}
	// Subscriptions clamp to one per class.
	if clamped := sp.Scaled(10, 0); clamped.Subscriptions != len(sp.Classes) {
		t.Errorf("clamped subscriptions = %d, want %d", clamped.Subscriptions, len(sp.Classes))
	}
	if err := sp.Scaled(300, 30).Validate(); err != nil {
		t.Errorf("scaled spec invalid: %v", err)
	}
}
