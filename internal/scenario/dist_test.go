package scenario

import (
	"math"
	"math/rand"
	"testing"
)

// TestDistSampleMean: every distribution's sample mean must match
// MeanValue at a fixed seed — the property the lifetime and working-set
// calibrations rely on.
func TestDistSampleMean(t *testing.T) {
	cases := []struct {
		name string
		d    Dist
	}{
		{"fixed", Fixed(3.5)},
		{"uniform", Uniform(0.2, 0.8)},
		{"exponential", Exponential(8)},
		{"lognormal", Lognormal(40, 1.1)},
		{"lognormal-tight", Lognormal(140, 0.3)},
		{"weibull-heavy", Weibull(10, 0.6)},
		{"weibull-concentrated", Weibull(10, 3)},
	}
	const n = 200000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			var sum float64
			for i := 0; i < n; i++ {
				x := tc.d.Sample(rng)
				if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("sample %d = %v", i, x)
				}
				sum += x
			}
			mean := sum / n
			want := tc.d.MeanValue()
			if math.Abs(mean-want)/want > 0.05 {
				t.Errorf("sample mean = %.3f, want %.3f +- 5%%", mean, want)
			}
		})
	}
}

func TestDistValidate(t *testing.T) {
	bad := []Dist{
		{Kind: DistKind(42)},
		Fixed(-1),
		Fixed(math.NaN()),
		Uniform(-0.1, 0.5),
		Uniform(0.5, 0.1),
		Exponential(0),
		Exponential(-3),
		Lognormal(0, 1),
		Lognormal(10, -1),
		Lognormal(10, math.Inf(1)),
		Weibull(0, 1),
		Weibull(10, 0),
		Weibull(10, -2),
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("dist %d (%v) should be invalid", i, d.Kind)
		}
	}
	good := []Dist{Fixed(0), Uniform(0, 0), Uniform(1, 2), Exponential(3), Lognormal(40, 0), Weibull(10, 0.5)}
	for i, d := range good {
		if err := d.Validate(); err != nil {
			t.Errorf("dist %d: %v", i, err)
		}
	}
}

func TestDistKindStrings(t *testing.T) {
	for k, name := range distNames {
		got, err := ParseDistKind(name)
		if err != nil || got != k {
			t.Errorf("ParseDistKind(%s) = %v, %v", name, got, err)
		}
		if k.String() != name {
			t.Errorf("%v.String() = %s", k, k.String())
		}
	}
	if _, err := ParseDistKind("zipf"); err == nil {
		t.Error("unknown kind must fail")
	}
	if s := DistKind(9).String(); s != "DistKind(9)" {
		t.Errorf("unknown kind string = %s", s)
	}
}

func TestProcessStrings(t *testing.T) {
	for p, name := range processNames {
		got, err := ParseProcess(name)
		if err != nil || got != p {
			t.Errorf("ParseProcess(%s) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseProcess("pareto"); err == nil {
		t.Error("unknown process must fail")
	}
}
