package scenario

import (
	"reflect"
	"testing"
)

// FuzzParseSpec pins the parser's two safety properties: it never
// panics on arbitrary input, and any accepted spec round-trips through
// its canonical text form (Parse(Format(sp)) == sp).
func FuzzParseSpec(f *testing.F) {
	for _, sp := range Presets() {
		f.Add(Format(sp))
	}
	f.Add(handwrittenSpec)
	f.Add("")
	f.Add("# comment only\n")
	f.Add("name: x\ndays: 7\n")
	f.Add("classes:\n  - name: a\n    arrival: gamma cv=2\n")
	f.Add("surges:\n  - kind: s\n    day: 1.5\n    cluster: 3\n")
	f.Add("seasonality:\n  diurnal-amp: 0.5\n")
	f.Add("days: nope\nclasses:\n\t- name: tab\n")
	f.Fuzz(func(t *testing.T, text string) {
		sp, err := Parse(text)
		if err != nil {
			return
		}
		formatted := Format(sp)
		got, err := Parse(formatted)
		if err != nil {
			t.Fatalf("reparse of formatted spec failed: %v\ninput: %q\nformatted: %q", err, text, formatted)
		}
		if !reflect.DeepEqual(got, sp) {
			t.Fatalf("round trip changed the spec\ninput: %q\nbefore: %+v\nafter: %+v", text, sp, got)
		}
	})
}
