package scenario

import (
	"fmt"
	"math"
	"math/rand"
)

// Process enumerates the supported inter-arrival processes.
type Process int

const (
	// Poisson arrivals: exponential inter-arrival times (CV = 1,
	// memoryless) — the default for steady aggregate traffic.
	Poisson Process = iota
	// Gamma arrivals: gamma inter-arrival times with coefficient of
	// variation CV. CV > 1 clusters arrivals into bursts; CV < 1
	// regularizes them.
	Gamma
	// WeibullArrivals: Weibull inter-arrival times with shape Shape.
	// Shape < 1 is heavy-tailed (long gaps punctuated by clumps).
	WeibullArrivals
)

var processNames = map[Process]string{
	Poisson:         "poisson",
	Gamma:           "gamma",
	WeibullArrivals: "weibull",
}

func (p Process) String() string {
	if s, ok := processNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Process(%d)", int(p))
}

// ParseProcess converts a process name into its kind.
func ParseProcess(s string) (Process, error) {
	for p, name := range processNames {
		if name == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown arrival process %q (poisson|gamma|weibull)", s)
}

// Arrival specifies a renewal arrival process. Inter-arrival times are
// drawn with unit mean and mapped through the class's integrated rate,
// so seasonality and surges change the local rate while the process
// keeps its dispersion (CV) structure.
type Arrival struct {
	Process Process
	// CV is the inter-arrival coefficient of variation for Gamma
	// (0 means 1, i.e. Poisson-like).
	CV float64
	// Shape is the Weibull shape for WeibullArrivals (0 means 1).
	Shape float64
}

// PoissonArrival returns a Poisson arrival spec.
func PoissonArrival() Arrival { return Arrival{Process: Poisson} }

// GammaArrival returns a bursty (cv > 1) or regular (cv < 1) gamma
// arrival spec.
func GammaArrival(cv float64) Arrival { return Arrival{Process: Gamma, CV: cv} }

// WeibullArrival returns a Weibull arrival spec with the given shape.
func WeibullArrival(shape float64) Arrival { return Arrival{Process: WeibullArrivals, Shape: shape} }

// Validate reports an error for out-of-range parameters.
func (a Arrival) Validate() error {
	switch a.Process {
	case Poisson:
	case Gamma:
		if a.CV < 0 || a.CV > 10 || math.IsNaN(a.CV) {
			return fmt.Errorf("gamma cv %g outside [0,10]", a.CV)
		}
	case WeibullArrivals:
		if a.Shape < 0 || math.IsNaN(a.Shape) || math.IsInf(a.Shape, 0) {
			return fmt.Errorf("weibull shape %g < 0", a.Shape)
		}
		if a.Shape != 0 && a.Shape < 0.2 {
			return fmt.Errorf("weibull shape %g < 0.2 (too heavy-tailed to calibrate)", a.Shape)
		}
	default:
		return fmt.Errorf("unknown process %d", int(a.Process))
	}
	return nil
}

// MeanCV returns the theoretical coefficient of variation of the
// process's inter-arrival times.
func (a Arrival) MeanCV() float64 {
	switch a.Process {
	case Gamma:
		if a.CV == 0 {
			return 1
		}
		return a.CV
	case WeibullArrivals:
		k := a.Shape
		if k == 0 {
			k = 1
		}
		m := math.Gamma(1 + 1/k)
		return math.Sqrt(math.Gamma(1+2/k)/(m*m) - 1)
	default:
		return 1
	}
}

// Draw samples one unit-mean inter-arrival time.
func (a Arrival) Draw(rng *rand.Rand) float64 {
	switch a.Process {
	case Gamma:
		cv := a.CV
		if cv == 0 {
			return rng.ExpFloat64()
		}
		k := 1 / (cv * cv)
		return gammaDraw(rng, k) / k
	case WeibullArrivals:
		k := a.Shape
		if k == 0 {
			k = 1
		}
		return Weibull(1, k).Sample(rng)
	default:
		return rng.ExpFloat64()
	}
}

// gammaDraw samples Gamma(shape k, scale 1) by Marsaglia-Tsang, with
// the standard U^(1/k) boost for k < 1.
func gammaDraw(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaDraw(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// classSeed derives the deterministic RNG seed for class ci's arrival
// stream (splitmix-style odd-constant mixing, matching the trace
// generator's per-VM scheme).
func (sp *Spec) classSeed(ci int) int64 {
	return sp.Seed ^ int64(uint64(ci+1)*0xbf58476d1ce4e5b9)
}

// BaseRate returns class ci's calibrated base arrival rate in arrivals
// per 5-minute sample: the rate that makes the expected arrival count
// over the horizon (under seasonality and surges) equal VMs*Fraction.
func (sp *Spec) BaseRate(ci int) float64 {
	var sum float64
	for t := 0; t < sp.Horizon(); t++ {
		sum += sp.RateAt(ci, t)
	}
	if sum == 0 {
		return 0
	}
	return float64(sp.VMs) * sp.Classes[ci].Fraction / sum
}

// ClassArrivals generates class ci's arrival stream: sorted sample
// indices over the horizon, deterministic in (Seed, ci). Unit-mean
// renewal draws are mapped through the inverse integrated rate
// (piecewise-constant per sample), so the realized count is close to
// VMs*Fraction and the inter-arrival dispersion matches the process.
func (sp *Spec) ClassArrivals(ci int) []int {
	rng := rand.New(rand.NewSource(sp.classSeed(ci)))
	base := sp.BaseRate(ci)
	if base == 0 {
		return nil
	}
	arr := sp.Classes[ci].Arrival
	out := make([]int, 0, int(float64(sp.VMs)*sp.Classes[ci].Fraction)+8)
	acc := 0.0
	next := arr.Draw(rng)
	for t := 0; t < sp.Horizon(); t++ {
		acc += base * sp.RateAt(ci, t)
		for next <= acc {
			out = append(out, t)
			next += arr.Draw(rng)
		}
	}
	return out
}
