package scenario

import (
	"fmt"
	"math"
	"math/rand"
)

// DistKind enumerates the supported scalar distributions.
type DistKind int

const (
	// DistFixed always returns Value.
	DistFixed DistKind = iota
	// DistUniform is uniform on [Min, Max].
	DistUniform
	// DistExponential has the given Mean.
	DistExponential
	// DistLognormal has the given (arithmetic) Mean and log-space
	// standard deviation Sigma.
	DistLognormal
	// DistWeibull has the given Mean and shape parameter Shape.
	DistWeibull
)

var distNames = map[DistKind]string{
	DistFixed:       "fixed",
	DistUniform:     "uniform",
	DistExponential: "exponential",
	DistLognormal:   "lognormal",
	DistWeibull:     "weibull",
}

func (k DistKind) String() string {
	if s, ok := distNames[k]; ok {
		return s
	}
	return fmt.Sprintf("DistKind(%d)", int(k))
}

// ParseDistKind converts a distribution name into its kind.
func ParseDistKind(s string) (DistKind, error) {
	for k, name := range distNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown distribution %q (fixed|uniform|exponential|lognormal|weibull)", s)
}

// Dist is a scalar distribution. Scenarios use it for per-class VM
// lifetimes (in hours) and working-set fractions. Only the parameter
// fields relevant to Kind are meaningful.
type Dist struct {
	Kind DistKind
	// Value is the constant for DistFixed.
	Value float64
	// Min and Max bound DistUniform.
	Min, Max float64
	// Mean parameterizes DistExponential, DistLognormal and DistWeibull
	// (always the arithmetic mean).
	Mean float64
	// Sigma is the log-space standard deviation for DistLognormal.
	Sigma float64
	// Shape is the Weibull shape k (k < 1: heavy-tailed; k > 1:
	// concentrated around the mean).
	Shape float64
}

// Fixed returns a constant distribution.
func Fixed(v float64) Dist { return Dist{Kind: DistFixed, Value: v} }

// Uniform returns a uniform distribution on [min, max].
func Uniform(min, max float64) Dist { return Dist{Kind: DistUniform, Min: min, Max: max} }

// Exponential returns an exponential distribution with the given mean.
func Exponential(mean float64) Dist { return Dist{Kind: DistExponential, Mean: mean} }

// Lognormal returns a lognormal distribution with the given arithmetic
// mean and log-space standard deviation.
func Lognormal(mean, sigma float64) Dist { return Dist{Kind: DistLognormal, Mean: mean, Sigma: sigma} }

// Weibull returns a Weibull distribution with the given mean and shape.
func Weibull(mean, shape float64) Dist { return Dist{Kind: DistWeibull, Mean: mean, Shape: shape} }

// Validate reports an error for non-sensical parameters.
func (d Dist) Validate() error {
	switch d.Kind {
	case DistFixed:
		if d.Value < 0 || math.IsNaN(d.Value) || math.IsInf(d.Value, 0) {
			return fmt.Errorf("fixed value %g < 0", d.Value)
		}
	case DistUniform:
		if d.Min < 0 || d.Max < d.Min || math.IsInf(d.Max, 0) {
			return fmt.Errorf("uniform bounds [%g,%g] invalid", d.Min, d.Max)
		}
	case DistExponential:
		if !(d.Mean > 0) || math.IsInf(d.Mean, 0) {
			return fmt.Errorf("exponential mean %g <= 0", d.Mean)
		}
	case DistLognormal:
		if !(d.Mean > 0) || math.IsInf(d.Mean, 0) {
			return fmt.Errorf("lognormal mean %g <= 0", d.Mean)
		}
		if !(d.Sigma >= 0) || math.IsInf(d.Sigma, 0) {
			return fmt.Errorf("lognormal sigma %g < 0", d.Sigma)
		}
	case DistWeibull:
		if !(d.Mean > 0) || math.IsInf(d.Mean, 0) {
			return fmt.Errorf("weibull mean %g <= 0", d.Mean)
		}
		if !(d.Shape > 0) || math.IsInf(d.Shape, 0) {
			return fmt.Errorf("weibull shape %g <= 0", d.Shape)
		}
	default:
		return fmt.Errorf("unknown distribution kind %d", int(d.Kind))
	}
	return nil
}

// MeanValue returns the distribution's mean.
func (d Dist) MeanValue() float64 {
	switch d.Kind {
	case DistFixed:
		return d.Value
	case DistUniform:
		return (d.Min + d.Max) / 2
	default:
		return d.Mean
	}
}

// Sample draws one value (always >= 0).
func (d Dist) Sample(rng *rand.Rand) float64 {
	switch d.Kind {
	case DistFixed:
		return d.Value
	case DistUniform:
		return d.Min + rng.Float64()*(d.Max-d.Min)
	case DistExponential:
		return d.Mean * rng.ExpFloat64()
	case DistLognormal:
		// mu places the arithmetic mean at d.Mean: E[X] = exp(mu+sigma²/2).
		mu := math.Log(d.Mean) - d.Sigma*d.Sigma/2
		return math.Exp(mu + d.Sigma*rng.NormFloat64())
	case DistWeibull:
		// Inverse CDF with scale chosen for the requested mean:
		// E[X] = lambda*Gamma(1+1/k).
		lambda := d.Mean / math.Gamma(1+1/d.Shape)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return lambda * math.Pow(-math.Log(u), 1/d.Shape)
	default:
		return 0
	}
}
