package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestPresetsValid: every shipped preset must pass Validate — the
// contract every consumer (trace, sim, loadgen) relies on.
func TestPresetsValid(t *testing.T) {
	for _, name := range PresetNames {
		sp, err := Preset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sp.Name != name {
			t.Errorf("preset %q has Name %q", name, sp.Name)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestPresetNamesCoverMap: the canonical name list and the preset map
// must agree exactly, so no preset is unreachable or phantom.
func TestPresetNamesCoverMap(t *testing.T) {
	want := sortedPresetNames()
	got := append([]string(nil), PresetNames...)
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PresetNames %v != preset map keys %v", got, want)
	}
	specs := Presets()
	if len(specs) != len(PresetNames) {
		t.Fatalf("Presets() returned %d specs", len(specs))
	}
	for i, sp := range specs {
		if sp.Name != PresetNames[i] {
			t.Errorf("Presets()[%d] = %q, want %q", i, sp.Name, PresetNames[i])
		}
	}
}

func TestPresetUnknown(t *testing.T) {
	_, err := Preset("no-such-preset")
	if err == nil {
		t.Fatal("unknown preset accepted")
	}
	if !strings.Contains(err.Error(), "capacity") {
		t.Errorf("error %q does not list the known presets", err)
	}
}

// TestPresetReturnsFreshCopy: callers may mutate the returned spec
// without corrupting later lookups.
func TestPresetReturnsFreshCopy(t *testing.T) {
	a, _ := Preset("capacity")
	a.Classes[0].Fraction = 0.99
	a.VMs = 1
	b, _ := Preset("capacity")
	if b.Classes[0].Fraction == 0.99 || b.VMs == 1 {
		t.Error("Preset returned a shared spec")
	}
}

func TestLoadPresetName(t *testing.T) {
	sp, err := Load("bursty")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Preset("bursty")
	if !reflect.DeepEqual(sp, want) {
		t.Error("Load(name) differs from Preset(name)")
	}
}

func TestLoadSpecFile(t *testing.T) {
	want, _ := Preset("surge")
	path := filepath.Join(t.TempDir(), "surge.txt")
	if err := os.WriteFile(path, []byte(Format(want)), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp, want) {
		t.Error("Load(file) differs from the formatted preset")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/no/such/path.txt"); err == nil {
		t.Error("unreadable path accepted")
	} else if !strings.Contains(err.Error(), "preset") {
		t.Errorf("error %q does not mention presets", err)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("days soon\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("unparseable file accepted")
	}
	// Parses but fails Validate: no classes.
	invalid := filepath.Join(dir, "invalid.txt")
	if err := os.WriteFile(invalid, []byte("days: 7\nvms: 10\nclusters: 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(invalid); err == nil {
		t.Error("invalid spec file accepted")
	}
}
