package scenario

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// PresetNames lists the shipped presets in canonical order: the two
// traffic shapes the experiments already exercised implicitly
// (capacity, skewed-hot-cold), the four that open new axes (bursty,
// diurnal, surge, churn), and the event-replay stressor whose
// population churns while utilization barely moves (sparse-churn).
// chaos, the failure-domain stressor, injects a deterministic crash
// schedule on top of a capacity-like mix.
var PresetNames = []string{"capacity", "skewed-hot-cold", "bursty", "diurnal", "surge", "churn", "sparse-churn", "chaos"}

// Preset returns a fresh copy of the named preset spec.
func Preset(name string) (*Spec, error) {
	mk, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown preset %q (have %s)", name, strings.Join(PresetNames, ", "))
	}
	return mk(), nil
}

// Presets returns fresh copies of every shipped preset, in canonical
// order.
func Presets() []*Spec {
	out := make([]*Spec, len(PresetNames))
	for i, name := range PresetNames {
		out[i], _ = Preset(name)
	}
	return out
}

// Load resolves a preset name or reads and parses a spec file. The
// loaded spec is validated.
func Load(nameOrPath string) (*Spec, error) {
	if _, ok := presets[nameOrPath]; ok {
		return Preset(nameOrPath)
	}
	data, err := os.ReadFile(nameOrPath)
	if err != nil {
		names := strings.Join(PresetNames, ", ")
		return nil, fmt.Errorf("scenario: %q is neither a preset (%s) nor a readable spec file: %w",
			nameOrPath, names, err)
	}
	sp, err := Parse(string(data))
	if err != nil {
		return nil, err
	}
	if err := sp.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", nameOrPath, err)
	}
	return sp, nil
}

var presets = map[string]func() *Spec{
	"capacity":        presetCapacity,
	"skewed-hot-cold": presetSkewedHotCold,
	"bursty":          presetBursty,
	"diurnal":         presetDiurnal,
	"surge":           presetSurge,
	"churn":           presetChurn,
	"sparse-churn":    presetSparseChurn,
	"chaos":           presetChaos,
}

func base(name string, seed int64) *Spec {
	return &Spec{
		Name:          name,
		Seed:          seed,
		Days:          14,
		VMs:           2000,
		Subscriptions: 120,
		Clusters:      10,
		StartWeekday:  time.Monday,
	}
}

// presetCapacity formalizes the archetype mix the GenConfig generator
// produced implicitly: a resident core holding most resource-hours,
// daily business traffic, nightly batch and short-lived test churn,
// under gentle business-week seasonality. It is the neutral baseline
// the Fig. 20-style capacity comparisons pack into a fixed fleet.
func presetCapacity() *Spec {
	sp := base("capacity", 42)
	sp.Seasonality = Seasonality{DiurnalAmp: 0.3, PeakHour: 14, WeekendFactor: 0.8}
	sp.Classes = []Class{
		{
			Name: "resident", Fraction: 0.28, Size: "large",
			Arrival:  PoissonArrival(),
			Lifetime: Lognormal(140, 1.0), WorkingSet: Uniform(0.35, 0.7),
		},
		{
			Name: "daily", Fraction: 0.3, Archetype: "business-hours",
			Arrival:  PoissonArrival(),
			Lifetime: Lognormal(30, 0.8), WorkingSet: Uniform(0.3, 0.6),
		},
		{
			Name: "batch", Fraction: 0.22, Archetype: "nightly-batch",
			Arrival:  PoissonArrival(),
			Lifetime: Exponential(8), WorkingSet: Uniform(0.25, 0.55),
		},
		{
			Name: "test", Fraction: 0.2, Size: "small",
			Arrival:  PoissonArrival(),
			Lifetime: Exponential(3), WorkingSet: Uniform(0.15, 0.4),
		},
	}
	return sp
}

// presetSkewedHotCold formalizes the skewed fleet of the migration
// experiments: a small hot class of large, memory-hungry, long-lived
// VMs pinned to two clusters, over a cold majority spread fleet-wide —
// the shape where mitigation ladders and cross-shard migration earn
// their keep.
func presetSkewedHotCold() *Spec {
	sp := base("skewed-hot-cold", 1007)
	sp.Seasonality = Seasonality{DiurnalAmp: 0.2, PeakHour: 13, WeekendFactor: 1}
	sp.Classes = []Class{
		{
			Name: "hot", Fraction: 0.15, Archetype: "steady-high", Size: "large",
			Clusters: []int{0, 1},
			Arrival:  PoissonArrival(),
			Lifetime: Lognormal(180, 0.8), WorkingSet: Uniform(0.6, 0.9),
		},
		{
			Name: "cold", Fraction: 0.85, Archetype: "steady-low",
			Arrival:  PoissonArrival(),
			Lifetime: Lognormal(40, 1.2), WorkingSet: Uniform(0.1, 0.3),
		},
	}
	return sp
}

// presetBursty trades Poisson smoothness for clumped arrivals: gamma
// inter-arrivals at CV 3 on the interactive class and a heavy-tailed
// Weibull batch class, stressing admission and batcher behaviour with
// temporary overloads at unchanged average rate.
func presetBursty() *Spec {
	sp := base("bursty", 7)
	sp.Seasonality = Seasonality{DiurnalAmp: 0.25, PeakHour: 15, WeekendFactor: 0.9}
	sp.Classes = []Class{
		{
			Name: "interactive", Fraction: 0.55, Archetype: "business-hours",
			Arrival:  GammaArrival(3),
			Lifetime: Lognormal(36, 1.0), WorkingSet: Uniform(0.3, 0.65),
		},
		{
			Name: "batch", Fraction: 0.45, Archetype: "nightly-batch",
			Arrival:  WeibullArrival(0.55),
			Lifetime: Exponential(10), WorkingSet: Uniform(0.25, 0.55),
		},
	}
	return sp
}

// presetDiurnal pushes seasonality to the front: a 0.7 diurnal
// amplitude ((1+a)/(1-a) ~ 5.7x peak-to-trough), half-rate weekends,
// and phase-spread daily archetypes — the scenario where time-window
// policies should shine over whole-day ones.
func presetDiurnal() *Spec {
	sp := base("diurnal", 99)
	sp.Seasonality = Seasonality{DiurnalAmp: 0.7, PeakHour: 13, WeekendFactor: 0.5}
	sp.Classes = []Class{
		{
			Name: "office", Fraction: 0.45, Archetype: "business-hours",
			Arrival:  PoissonArrival(),
			Lifetime: Lognormal(48, 0.9), WorkingSet: Uniform(0.3, 0.6),
		},
		{
			Name: "morning", Fraction: 0.25, Archetype: "morning-peak",
			Arrival:  PoissonArrival(),
			Lifetime: Lognormal(30, 0.9), WorkingSet: Uniform(0.3, 0.6),
		},
		{
			Name: "evening", Fraction: 0.3, Archetype: "evening-peak",
			Arrival:  PoissonArrival(),
			Lifetime: Lognormal(30, 0.9), WorkingSet: Uniform(0.3, 0.6),
		},
	}
	return sp
}

// presetSurge layers the three canonical correlated events over a
// steady base: a launch-day stampede (sharp, one class), a regional
// failover (arrivals re-homed to one cluster), and a black friday
// (day-long rate and utilization lift across classes). All windows sit
// in the evaluation week so simulators see them after training.
func presetSurge() *Spec {
	sp := base("surge", 1234)
	sp.Seasonality = Seasonality{DiurnalAmp: 0.3, PeakHour: 14, WeekendFactor: 0.85}
	sp.Classes = []Class{
		{
			Name: "web", Fraction: 0.5, Archetype: "business-hours",
			Arrival:  PoissonArrival(),
			Lifetime: Lognormal(40, 1.0), WorkingSet: Uniform(0.3, 0.65),
		},
		{
			Name: "api", Fraction: 0.3, Archetype: "double-peak",
			Arrival:  PoissonArrival(),
			Lifetime: Lognormal(60, 0.9), WorkingSet: Uniform(0.35, 0.7),
		},
		{
			Name: "launch", Fraction: 0.2, Archetype: "unpredictable",
			Arrival:  GammaArrival(2),
			Lifetime: Exponential(12), WorkingSet: Uniform(0.3, 0.6),
		},
	}
	sp.Surges = []Surge{
		{
			Kind: "launch-stampede", Classes: []string{"launch"},
			Day: 8.25, DurationHours: 6, RateMult: 6, Cluster: -1,
		},
		{
			Kind: "regional-failover", Classes: []string{"web", "api"},
			Day: 10, DurationHours: 12, RateMult: 1.5, Cluster: 2,
		},
		{
			Kind: "black-friday",
			Day:  12, DurationHours: 24, RateMult: 2.5, UtilMult: 1.25, Cluster: -1,
		},
	}
	return sp
}

// presetChurn inverts the population: 80% of arrivals are short-lived
// small VMs on a heavy-tailed arrival process, over a thin resident
// base (which also keeps the predictor trainable). Placement and
// release bookkeeping dominate; prediction value is marginal.
func presetChurn() *Spec {
	sp := base("churn", 271828)
	sp.Seasonality = Seasonality{DiurnalAmp: 0.35, PeakHour: 12, WeekendFactor: 0.9}
	sp.Classes = []Class{
		{
			Name: "ephemeral", Fraction: 0.8, Size: "small",
			Arrival:  WeibullArrival(0.7),
			Lifetime: Exponential(2), WorkingSet: Uniform(0.2, 0.5),
		},
		{
			Name: "resident", Fraction: 0.2, Size: "large",
			Arrival:  PoissonArrival(),
			Lifetime: Lognormal(120, 0.9), WorkingSet: Uniform(0.35, 0.7),
		},
	}
	return sp
}

// presetSparseChurn models the fleet the event-driven simulator core is
// built for: a large steady population whose quantized utilization
// samples stay flat for long runs (most VMs change demand at only a
// handful of ticks), plus an ephemeral tail that keeps placement and
// release bookkeeping honest. Dense replay visits every VM every tick;
// event replay visits each VM only at its change points — this preset
// is where the gap is widest, and BenchmarkSimCore measures it here.
func presetSparseChurn() *Spec {
	sp := base("sparse-churn", 424242)
	sp.Seasonality = Seasonality{DiurnalAmp: 0.2, PeakHour: 13, WeekendFactor: 0.9}
	sp.UtilQuantum = 0.3
	sp.Classes = []Class{
		{
			Name: "steady-core", Fraction: 0.6, Archetype: "steady-high", Size: "large",
			Arrival:  PoissonArrival(),
			Lifetime: Lognormal(200, 0.6), WorkingSet: Uniform(0.45, 0.7),
		},
		{
			Name: "cold-tier", Fraction: 0.25, Archetype: "steady-low",
			Arrival:  PoissonArrival(),
			Lifetime: Lognormal(160, 0.7), WorkingSet: Uniform(0.15, 0.35),
		},
		{
			Name: "ephemeral", Fraction: 0.15, Size: "small", Archetype: "steady-low",
			Arrival:  WeibullArrival(0.8),
			Lifetime: Exponential(3), WorkingSet: Uniform(0.2, 0.4),
		},
	}
	return sp
}

// presetChaos is the failure-domain stressor: a capacity-like mix with
// a long-lived resident core (so crashed servers hold real state) under
// a deterministic fault schedule — recurring seed-driven crashes from
// half a day into the evaluation period, one pinned crash with
// recovery, and a train failure is deliberately absent so the chaos run
// measures crash handling, not degraded admission. The abl-faults
// experiment and the CI chaos-smoke job both replay it; fault days
// count from the start of the evaluation period (see Fault).
func presetChaos() *Spec {
	sp := base("chaos", 5150)
	sp.Seasonality = Seasonality{DiurnalAmp: 0.3, PeakHour: 14, WeekendFactor: 0.85}
	sp.Classes = []Class{
		{
			Name: "resident", Fraction: 0.45, Size: "large",
			Arrival:  PoissonArrival(),
			Lifetime: Lognormal(150, 0.9), WorkingSet: Uniform(0.35, 0.7),
		},
		{
			Name: "daily", Fraction: 0.35, Archetype: "business-hours",
			Arrival:  PoissonArrival(),
			Lifetime: Lognormal(30, 0.8), WorkingSet: Uniform(0.3, 0.6),
		},
		{
			Name: "test", Fraction: 0.2, Size: "small",
			Arrival:  WeibullArrival(0.7),
			Lifetime: Exponential(4), WorkingSet: Uniform(0.15, 0.4),
		},
	}
	sp.Faults = []Fault{
		{Kind: "crash", Day: 0.25, Cluster: 0, Server: 0, RecoverHours: 6},
		{Kind: "chaos", Day: 0.5, MTBFHours: 8, RecoverHours: 3, Cluster: -1, Server: -1},
	}
	return sp
}

// sortedPresetNames is used by tests to assert PresetNames covers the
// preset map exactly.
func sortedPresetNames() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
