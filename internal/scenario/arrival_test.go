package scenario

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/coach-oss/coach/internal/timeseries"
)

// flatSpec is a single-class spec with seasonality switched off, so
// arrival statistics depend on the process alone.
func flatSpec(arrival Arrival, vms, days int) *Spec {
	return &Spec{
		Name: "flat", Seed: 1, Days: days, VMs: vms,
		Subscriptions: 10, Clusters: 4, StartWeekday: time.Monday,
		Seasonality: Seasonality{WeekendFactor: 1},
		Classes: []Class{{
			Name: "only", Fraction: 1, Arrival: arrival,
			Lifetime: Exponential(10), WorkingSet: Uniform(0.2, 0.5),
		}},
	}
}

// sampleStats returns the mean and coefficient of variation of draws.
func sampleStats(xs []float64) (mean, cv float64) {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss/float64(len(xs))) / mean
}

// TestArrivalDrawMoments pins each process's unit mean and theoretical
// CV at a fixed seed — the statistical contract behind the "unchanged
// average rate, different burstiness" preset descriptions.
func TestArrivalDrawMoments(t *testing.T) {
	cases := []struct {
		name string
		a    Arrival
	}{
		{"poisson", PoissonArrival()},
		{"gamma-cv0.5", GammaArrival(0.5)},
		{"gamma-cv2.5", GammaArrival(2.5)},
		{"gamma-cv3", GammaArrival(3)},
		{"weibull-shape0.55", WeibullArrival(0.55)},
		{"weibull-shape0.7", WeibullArrival(0.7)},
		{"weibull-shape2", WeibullArrival(2)},
	}
	const n = 200000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = tc.a.Draw(rng)
				if xs[i] < 0 || math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
					t.Fatalf("draw %d = %v", i, xs[i])
				}
			}
			mean, cv := sampleStats(xs)
			if math.Abs(mean-1) > 0.03 {
				t.Errorf("mean = %.4f, want 1 +- 0.03", mean)
			}
			want := tc.a.MeanCV()
			if math.Abs(cv-want)/want > 0.05 {
				t.Errorf("cv = %.3f, want %.3f +- 5%%", cv, want)
			}
		})
	}
}

// TestClassArrivalsCalibration: the realized arrival count must land
// near VMs*Fraction for every process — BaseRate calibrates the renewal
// process against seasonality.
func TestClassArrivalsCalibration(t *testing.T) {
	for _, a := range []Arrival{PoissonArrival(), GammaArrival(3), WeibullArrival(0.55)} {
		sp := flatSpec(a, 5000, 14)
		got := len(sp.ClassArrivals(0))
		if math.Abs(float64(got)-5000)/5000 > 0.10 {
			t.Errorf("%s: %d arrivals, want 5000 +- 10%%", a.Process, got)
		}
	}
	// Calibration holds under seasonality too.
	sp := flatSpec(PoissonArrival(), 5000, 14)
	sp.Seasonality = Seasonality{DiurnalAmp: 0.6, PeakHour: 12, WeekendFactor: 0.5}
	got := len(sp.ClassArrivals(0))
	if math.Abs(float64(got)-5000)/5000 > 0.10 {
		t.Errorf("seasonal: %d arrivals, want 5000 +- 10%%", got)
	}
}

func TestClassArrivalsDeterministicAndSorted(t *testing.T) {
	sp := flatSpec(GammaArrival(2), 2000, 7)
	a := sp.ClassArrivals(0)
	b := sp.ClassArrivals(0)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %d vs %d", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		if a[i] < 0 || a[i] >= sp.Horizon() {
			t.Fatalf("arrival %d = %d outside horizon", i, a[i])
		}
	}
}

// TestDiurnalPeakToTrough: with amplitude a, the arrival count at the
// peak hour over the trough hour must approach (1+a)/(1-a).
func TestDiurnalPeakToTrough(t *testing.T) {
	const amp = 0.6
	sp := flatSpec(PoissonArrival(), 40000, 28)
	sp.Seasonality = Seasonality{DiurnalAmp: amp, PeakHour: 12, WeekendFactor: 1}
	byHour := make([]int, 24)
	for _, s := range sp.ClassArrivals(0) {
		byHour[(s%timeseries.SamplesPerDay)/timeseries.SamplesPerHour]++
	}
	peak, trough := float64(byHour[12]), float64(byHour[0])
	want := (1 + amp) / (1 - amp)
	got := peak / trough
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("peak/trough = %.2f, want %.2f +- 20%%", got, want)
	}
}

// TestWeekendFactor: per-day weekend arrival rate over weekday rate
// must approach WeekendFactor.
func TestWeekendFactor(t *testing.T) {
	const wf = 0.5
	sp := flatSpec(PoissonArrival(), 40000, 28)
	sp.Seasonality = Seasonality{WeekendFactor: wf}
	var weekend, weekday, weekendDays, weekdayDays float64
	perDay := make([]int, sp.Days)
	for _, s := range sp.ClassArrivals(0) {
		perDay[s/timeseries.SamplesPerDay]++
	}
	for d, n := range perDay {
		wd := sp.WeekdayAt(d * timeseries.SamplesPerDay)
		if wd == time.Saturday || wd == time.Sunday {
			weekend += float64(n)
			weekendDays++
		} else {
			weekday += float64(n)
			weekdayDays++
		}
	}
	got := (weekend / weekendDays) / (weekday / weekdayDays)
	if got < wf*0.85 || got > wf*1.15 {
		t.Errorf("weekend/weekday rate = %.3f, want %.2f +- 15%%", got, wf)
	}
}

// TestSurgeRateLift: a 4x surge window must receive ~4x the arrivals of
// the same window on a quiet day.
func TestSurgeRateLift(t *testing.T) {
	sp := flatSpec(PoissonArrival(), 40000, 14)
	sp.Surges = []Surge{{Kind: "stampede", Day: 10, DurationHours: 6, RateMult: 4, Cluster: -1}}
	inWindow := func(day float64) int {
		lo := int(day * timeseries.SamplesPerDay)
		hi := lo + 6*timeseries.SamplesPerHour
		n := 0
		for _, s := range sp.ClassArrivals(0) {
			if s >= lo && s < hi {
				n++
			}
		}
		return n
	}
	// Day 3 is the same weekday phase (both mid-week, flat seasonality).
	surged, quiet := float64(inWindow(10)), float64(inWindow(3))
	if got := surged / quiet; got < 3 || got > 5 {
		t.Errorf("surge window lift = %.2f, want ~4", got)
	}
}

func TestArrivalValidate(t *testing.T) {
	bad := []Arrival{
		{Process: Process(99)},
		{Process: Gamma, CV: -1},
		{Process: Gamma, CV: 11},
		{Process: Gamma, CV: math.NaN()},
		{Process: WeibullArrivals, Shape: -0.5},
		{Process: WeibullArrivals, Shape: 0.1},
		{Process: WeibullArrivals, Shape: math.Inf(1)},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("arrival %d should be invalid", i)
		}
	}
	good := []Arrival{PoissonArrival(), GammaArrival(0), GammaArrival(10), WeibullArrival(0.2), WeibullArrival(0)}
	for i, a := range good {
		if err := a.Validate(); err != nil {
			t.Errorf("arrival %d: %v", i, err)
		}
	}
}

func TestBaseRateDegenerate(t *testing.T) {
	// A zero seasonality multiplier everywhere must not divide by zero.
	sp := flatSpec(PoissonArrival(), 100, 7)
	sp.Seasonality = Seasonality{WeekendFactor: 1}
	sp.Surges = []Surge{{Kind: "kill", Day: 0, DurationHours: 24.0 * 7, RateMult: 0.0000001, Cluster: -1}}
	if r := sp.BaseRate(0); math.IsInf(r, 0) || math.IsNaN(r) {
		t.Errorf("BaseRate = %v", r)
	}
}
