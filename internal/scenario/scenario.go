// Package scenario defines declarative workload specifications: named
// client classes with rate fractions, stochastic arrival processes,
// per-class lifetime and working-set distributions, diurnal and weekly
// seasonality, and correlated surge events. One Spec drives all three
// traffic consumers in this repo — synthetic trace generation
// (trace.GenerateScenario), the sharded simulator (sim.Config.Scenario)
// and cmd/coach-loadgen against a live coachd — so offline replay and
// online serving are exercised by the same scenario, deterministically
// from a seed. See docs/DESIGN.md §11.
//
// The package is intentionally free of trace/sim dependencies: it holds
// the spec schema, its text form (Parse/Format), the stochastic machinery
// (arrival processes, distributions, seasonality) and the preset library.
// Consumers interpret the spec.
package scenario

import (
	"fmt"
	"math"
	"time"

	"github.com/coach-oss/coach/internal/timeseries"
)

// Spec is one complete workload scenario. The zero value is not valid;
// build specs from a preset (Preset), the text form (Parse/Load) or a
// literal, and check Validate before use.
type Spec struct {
	// Name identifies the scenario in tables and logs.
	Name string
	// Seed drives every stochastic choice. The same Spec (including
	// Seed) always produces the same arrivals, lifetimes and traces.
	Seed int64
	// Days is the scenario horizon in days.
	Days int
	// VMs is the target VM population: expected total arrivals across
	// all classes over the horizon (the realized count varies slightly
	// with the arrival processes).
	VMs int
	// Subscriptions is the number of customer subscriptions, split
	// across classes proportionally to their rate fractions.
	Subscriptions int
	// Clusters is the number of home clusters.
	Clusters int
	// StartWeekday is the weekday of sample 0.
	StartWeekday time.Weekday
	// Seasonality modulates every class's arrival rate by hour of day
	// and day of week.
	Seasonality Seasonality
	// Classes are the named client classes; Fraction must sum to 1.
	Classes []Class
	// Surges are correlated rate/utilization events layered on top of
	// seasonality (regional failover, launch-day stampede, black friday).
	Surges []Surge
	// Faults are injected failures (server crashes, chaos windows, train
	// failures, request latency, handoff crash points). Unlike surges
	// they do not shape the generated trace: internal/fault compiles them
	// into a deterministic schedule that the simulator and a live coachd
	// replay identically.
	Faults []Fault
	// UtilQuantum, when non-zero, snaps every generated utilization
	// sample to the nearest multiple of this fraction (e.g. 0.1 = 10%
	// steps). Quantization turns the generator's continuous per-sample
	// noise into piecewise-constant series whose demand only moves at
	// genuine level shifts — the sparse-churn preset uses it to model
	// telemetry resolution and to give event-driven replay cores change
	// points to exploit. 0 keeps full-resolution samples.
	UtilQuantum float64
}

// Class is one named client population.
type Class struct {
	// Name identifies the class (unique within the spec).
	Name string
	// Fraction is the class's share of total arrivals, in (0,1].
	Fraction float64
	// Archetype names the behavioural template (trace.Archetypes) that
	// shapes this class's utilization series; "mixed" (or empty) draws
	// archetypes per subscription like the GenConfig generator.
	Archetype string
	// Size biases the VM configuration ladder: "small", "large" or
	// "mixed" (empty = mixed).
	Size string
	// Clusters optionally pins the class to specific home clusters;
	// empty means uniform across all clusters.
	Clusters []int
	// Arrival is the inter-arrival process.
	Arrival Arrival
	// Lifetime is the VM lifetime distribution, in hours.
	Lifetime Dist
	// WorkingSet is the distribution of a VM's base memory utilization
	// (resident-set fraction of its allocation), in [0,1]. It overrides
	// the archetype's base memory level.
	WorkingSet Dist
}

// Seasonality modulates arrival rates over the day and week. The
// instantaneous multiplier is
//
//	m(t) = (1 + DiurnalAmp*cos(2π(hour-PeakHour)/24)) * weekend(t)
//
// where weekend(t) is WeekendFactor on Saturday and Sunday and 1
// otherwise. With DiurnalAmp a, the weekday peak-to-trough arrival-rate
// ratio is (1+a)/(1-a).
type Seasonality struct {
	// DiurnalAmp is the relative amplitude of the daily cycle, in [0,1).
	DiurnalAmp float64
	// PeakHour is the hour of day [0,24) of maximum arrival rate.
	PeakHour float64
	// WeekendFactor scales Saturday and Sunday rates (1 = no weekly
	// cycle; business workloads < 1, consumer > 1). 0 means 1.
	WeekendFactor float64
}

// At returns the seasonality multiplier at the given hour of day and
// weekday.
func (s Seasonality) At(hour float64, wd time.Weekday) float64 {
	m := 1 + s.DiurnalAmp*math.Cos(2*math.Pi*(hour-s.PeakHour)/24)
	if wd == time.Saturday || wd == time.Sunday {
		m *= s.weekend()
	}
	return m
}

func (s Seasonality) weekend() float64 {
	if s.WeekendFactor == 0 {
		return 1
	}
	return s.WeekendFactor
}

// Surge is one correlated event: for its window it multiplies the
// arrival rate (and optionally the utilization amplitude) of the
// affected classes, and can re-home arrivals to one cluster. The three
// canonical kinds are:
//
//   - "regional-failover": arrivals re-homed to Cluster with a rate
//     bump — a region's load landing on the surviving clusters.
//   - "launch-stampede": a short, sharp RateMult spike for some classes.
//   - "black-friday": a day-long rate and utilization lift across
//     classes.
//
// Kind is a label; behaviour is entirely parameter-driven.
type Surge struct {
	// Kind labels the event (used in tables and docs).
	Kind string
	// Classes names the affected classes; empty means all.
	Classes []string
	// Day is the window start, in (fractional) days from scenario start.
	Day float64
	// DurationHours is the window length.
	DurationHours float64
	// RateMult multiplies affected classes' arrival rates during the
	// window (0 means 1).
	RateMult float64
	// UtilMult multiplies affected VMs' diurnal utilization amplitude
	// during the window (0 means 1). Applies to VMs of affected classes
	// whose lifetime overlaps the window.
	UtilMult float64
	// Cluster, when >= 0, re-homes affected arrivals during the window
	// to this cluster. -1 leaves homes unchanged.
	Cluster int
}

// window returns the surge's [start, end) sample interval.
func (sg *Surge) window() (start, end int) {
	start = int(sg.Day * timeseries.SamplesPerDay)
	end = start + int(sg.DurationHours*timeseries.SamplesPerHour)
	return start, end
}

// Active reports whether the surge window covers sample t.
func (sg *Surge) Active(t int) bool {
	start, end := sg.window()
	return t >= start && t < end
}

// Affects reports whether the surge applies to the named class.
func (sg *Surge) Affects(class string) bool {
	if len(sg.Classes) == 0 {
		return true
	}
	for _, c := range sg.Classes {
		if c == class {
			return true
		}
	}
	return false
}

func (sg *Surge) rateMult() float64 {
	if sg.RateMult == 0 {
		return 1
	}
	return sg.RateMult
}

// utilMultOr1 returns the utilization multiplier, defaulting to 1.
func (sg *Surge) utilMultOr1() float64 {
	if sg.UtilMult == 0 {
		return 1
	}
	return sg.UtilMult
}

// Fault is one injected failure. Unlike Surge.Day, Day counts from the
// start of the evaluation (served) period, not from scenario start: the
// simulator injects faults only into the half it replays after training,
// and a live coachd counts data-plane ticks from process start, so this
// convention makes the same spec line fire at the same evaluation tick
// in both. The kinds are:
//
//   - "crash": one server fails at Day and, with recover-hours > 0,
//     comes back empty after that long. cluster/server select the
//     victim; -1 picks one from the spec seed.
//   - "chaos": recurring seed-driven crashes over [Day, Day+duration)
//     (duration 0 = to the horizon) with exponential gaps of mean
//     mtbf-hours, each down for recover-hours.
//   - "train-fail": model training fails; coachd degrades to
//     best-fit-only admission, the simulator runs unpredicted.
//   - "latency": every request during [Day, Day+duration) is delayed by
//     delay-ms plus uniform jitter in [0, jitter-ms). Serving only.
//   - "handoff-crash": the cross-shard handoff coordinator dies at
//     phase (its nth pass through that crash point); the recovery
//     sweep must roll the interrupted handoff forward or back.
//     Serving only — the simulator's exchange is a serial barrier.
//
// Kind is semantic here (unlike Surge.Kind): it selects which fields
// apply.
type Fault struct {
	// Kind selects the failure mode (see above).
	Kind string
	// Day is the event (or window) start in fractional days from the
	// start of the evaluation period.
	Day float64
	// DurationHours bounds chaos and latency windows (0 = to horizon).
	DurationHours float64
	// RecoverHours is how long a crashed server stays down (0 = forever).
	RecoverHours float64
	// MTBFHours is the mean time between chaos crashes.
	MTBFHours float64
	// DelayMs and JitterMs shape injected request latency.
	DelayMs  float64
	JitterMs float64
	// Cluster and Server select a crash victim; -1 = seed-picked.
	Cluster int
	Server  int
	// Phase names the handoff crash point: {before,after}-{pick,reserve,
	// release,commit}.
	Phase string
	// Nth is which pass through the crash point fires (1-based; 0 = 1).
	Nth int
}

// FaultKinds lists the accepted Fault.Kind values.
var FaultKinds = []string{"crash", "chaos", "train-fail", "latency", "handoff-crash"}

// HandoffPhases lists the accepted handoff-crash Phase values, in
// protocol order.
var HandoffPhases = []string{
	"before-pick", "after-pick",
	"before-reserve", "after-reserve",
	"before-release", "after-release",
	"before-commit", "after-commit",
}

// Horizon returns the scenario length in 5-minute samples.
func (sp *Spec) Horizon() int { return sp.Days * timeseries.SamplesPerDay }

// WeekdayAt returns the weekday at sample t.
func (sp *Spec) WeekdayAt(t int) time.Weekday {
	day := t / timeseries.SamplesPerDay
	return time.Weekday((int(sp.StartWeekday) + day) % 7)
}

// RateAt returns the rate multiplier for class ci at sample t:
// seasonality times every active surge affecting the class. The class's
// absolute arrival rate is its calibrated base rate times this.
func (sp *Spec) RateAt(ci, t int) float64 {
	hour := float64(t%timeseries.SamplesPerDay) / timeseries.SamplesPerHour
	m := sp.Seasonality.At(hour, sp.WeekdayAt(t))
	name := sp.Classes[ci].Name
	for i := range sp.Surges {
		sg := &sp.Surges[i]
		if sg.Active(t) && sg.Affects(name) {
			m *= sg.rateMult()
		}
	}
	return m
}

// UtilMultAt returns the utilization amplitude multiplier for class ci
// at sample t (surge UtilMult of every active surge affecting the
// class; 1 outside surge windows).
func (sp *Spec) UtilMultAt(ci, t int) float64 {
	m := 1.0
	name := sp.Classes[ci].Name
	for i := range sp.Surges {
		sg := &sp.Surges[i]
		if sg.Active(t) && sg.Affects(name) {
			m *= sg.utilMultOr1()
		}
	}
	return m
}

// HomeClusterAt resolves the home cluster for a class-ci VM arriving at
// sample t whose default (pre-surge) choice is def: an active
// re-homing surge overrides it.
func (sp *Spec) HomeClusterAt(ci, t, def int) int {
	name := sp.Classes[ci].Name
	for i := range sp.Surges {
		sg := &sp.Surges[i]
		if sg.Cluster >= 0 && sg.Active(t) && sg.Affects(name) {
			return sg.Cluster
		}
	}
	return def
}

// SubscriptionRange returns the half-open subscription-ID interval
// [lo,hi) owned by class ci: subscriptions are split across classes
// proportionally to Fraction, every class getting at least one.
func (sp *Spec) SubscriptionRange(ci int) (lo, hi int) {
	bounds := sp.subscriptionBounds()
	return bounds[ci], bounds[ci+1]
}

// ClassOfSubscription returns the index of the class owning
// subscription ID sub, or -1 when out of range.
func (sp *Spec) ClassOfSubscription(sub int) int {
	bounds := sp.subscriptionBounds()
	for ci := range sp.Classes {
		if sub >= bounds[ci] && sub < bounds[ci+1] {
			return ci
		}
	}
	return -1
}

// subscriptionBounds computes cumulative class subscription boundaries:
// len(Classes)+1 entries from 0 to Subscriptions. Every class gets at
// least one subscription (Validate requires Subscriptions >=
// len(Classes)).
func (sp *Spec) subscriptionBounds() []int {
	n := len(sp.Classes)
	bounds := make([]int, n+1)
	var cum float64
	for i := 0; i < n; i++ {
		cum += sp.Classes[i].Fraction
		b := int(math.Round(cum * float64(sp.Subscriptions)))
		// Monotone with at least one subscription per class, and never
		// overshooting what the remaining classes still need.
		if min := bounds[i] + 1; b < min {
			b = min
		}
		if max := sp.Subscriptions - (n - 1 - i); b > max {
			b = max
		}
		bounds[i+1] = b
	}
	bounds[n] = sp.Subscriptions
	return bounds
}

// Scaled returns a copy of the spec with the population resized: VMs
// and Subscriptions replaced (Subscriptions is clamped to at least one
// per class). Scale-aware consumers (experiments.Context) use it so a
// preset's traffic shape can be replayed at any population size.
func (sp *Spec) Scaled(vms, subscriptions int) *Spec {
	out := *sp
	out.VMs = vms
	if subscriptions < len(sp.Classes) {
		subscriptions = len(sp.Classes)
	}
	out.Subscriptions = subscriptions
	return &out
}

// Validate reports the first structural problem with the spec.
func (sp *Spec) Validate() error {
	switch {
	case sp.Days < 1:
		return fmt.Errorf("scenario: Days %d < 1", sp.Days)
	case sp.VMs < 1:
		return fmt.Errorf("scenario: VMs %d < 1", sp.VMs)
	case sp.Clusters < 1:
		return fmt.Errorf("scenario: Clusters %d < 1", sp.Clusters)
	case sp.Subscriptions < len(sp.Classes):
		return fmt.Errorf("scenario: %d subscriptions for %d classes (need >= 1 per class)",
			sp.Subscriptions, len(sp.Classes))
	case sp.StartWeekday < time.Sunday || sp.StartWeekday > time.Saturday:
		return fmt.Errorf("scenario: StartWeekday %d outside [0,6]", sp.StartWeekday)
	case len(sp.Classes) == 0:
		return fmt.Errorf("scenario: no classes")
	case sp.UtilQuantum < 0 || sp.UtilQuantum > 0.5:
		return fmt.Errorf("scenario: util-quantum %g outside [0,0.5]", sp.UtilQuantum)
	}
	if s := sp.Seasonality; s.DiurnalAmp < 0 || s.DiurnalAmp >= 1 {
		return fmt.Errorf("scenario: seasonality diurnal-amp %g outside [0,1)", s.DiurnalAmp)
	} else if s.PeakHour < 0 || s.PeakHour >= 24 {
		return fmt.Errorf("scenario: seasonality peak-hour %g outside [0,24)", s.PeakHour)
	} else if s.WeekendFactor < 0 {
		return fmt.Errorf("scenario: seasonality weekend-factor %g < 0", s.WeekendFactor)
	}
	names := map[string]bool{}
	var fracSum float64
	for i := range sp.Classes {
		c := &sp.Classes[i]
		if c.Name == "" {
			return fmt.Errorf("scenario: class %d has no name", i)
		}
		if names[c.Name] {
			return fmt.Errorf("scenario: duplicate class %q", c.Name)
		}
		names[c.Name] = true
		if c.Fraction <= 0 || c.Fraction > 1 {
			return fmt.Errorf("scenario: class %q fraction %g outside (0,1]", c.Name, c.Fraction)
		}
		fracSum += c.Fraction
		switch c.Size {
		case "", "mixed", "small", "large":
		default:
			return fmt.Errorf("scenario: class %q size %q (want small, large or mixed)", c.Name, c.Size)
		}
		for _, cl := range c.Clusters {
			if cl < 0 || cl >= sp.Clusters {
				return fmt.Errorf("scenario: class %q cluster %d outside [0,%d)", c.Name, cl, sp.Clusters)
			}
		}
		if err := c.Arrival.Validate(); err != nil {
			return fmt.Errorf("scenario: class %q arrival: %w", c.Name, err)
		}
		if err := c.Lifetime.Validate(); err != nil {
			return fmt.Errorf("scenario: class %q lifetime: %w", c.Name, err)
		}
		if c.Lifetime.MeanValue() <= 0 {
			return fmt.Errorf("scenario: class %q lifetime mean %g <= 0 hours", c.Name, c.Lifetime.MeanValue())
		}
		if err := c.WorkingSet.Validate(); err != nil {
			return fmt.Errorf("scenario: class %q working-set: %w", c.Name, err)
		}
		if m := c.WorkingSet.MeanValue(); m > 1 {
			return fmt.Errorf("scenario: class %q working-set mean %g > 1 (fraction of allocation)", c.Name, m)
		}
	}
	if math.Abs(fracSum-1) > 1e-3 {
		return fmt.Errorf("scenario: class fractions sum to %g, want 1", fracSum)
	}
	for i := range sp.Surges {
		sg := &sp.Surges[i]
		if sg.Kind == "" {
			return fmt.Errorf("scenario: surge %d has no kind", i)
		}
		if sg.Day < 0 || sg.Day >= float64(sp.Days) {
			return fmt.Errorf("scenario: surge %q day %g outside [0,%d)", sg.Kind, sg.Day, sp.Days)
		}
		if sg.DurationHours <= 0 {
			return fmt.Errorf("scenario: surge %q duration %gh <= 0", sg.Kind, sg.DurationHours)
		}
		if sg.RateMult < 0 || sg.UtilMult < 0 {
			return fmt.Errorf("scenario: surge %q negative multiplier", sg.Kind)
		}
		if sg.Cluster < -1 || sg.Cluster >= sp.Clusters {
			return fmt.Errorf("scenario: surge %q cluster %d outside [-1,%d)", sg.Kind, sg.Cluster, sp.Clusters)
		}
		for _, name := range sg.Classes {
			if !names[name] {
				return fmt.Errorf("scenario: surge %q references unknown class %q", sg.Kind, name)
			}
		}
	}
	for i := range sp.Faults {
		if err := sp.Faults[i].validate(sp); err != nil {
			return fmt.Errorf("scenario: fault %d: %w", i, err)
		}
	}
	return nil
}

func (f *Fault) validate(sp *Spec) error {
	known := false
	for _, k := range FaultKinds {
		if f.Kind == k {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("unknown kind %q (have %v)", f.Kind, FaultKinds)
	}
	switch {
	case f.Day < 0:
		return fmt.Errorf("%s day %g < 0", f.Kind, f.Day)
	case f.DurationHours < 0:
		return fmt.Errorf("%s duration %gh < 0", f.Kind, f.DurationHours)
	case f.RecoverHours < 0:
		return fmt.Errorf("%s recover %gh < 0", f.Kind, f.RecoverHours)
	case f.DelayMs < 0 || f.JitterMs < 0:
		return fmt.Errorf("%s negative delay/jitter", f.Kind)
	case f.Cluster < -1 || f.Cluster >= sp.Clusters:
		return fmt.Errorf("%s cluster %d outside [-1,%d)", f.Kind, f.Cluster, sp.Clusters)
	case f.Server < -1:
		return fmt.Errorf("%s server %d < -1", f.Kind, f.Server)
	case f.Nth < 0:
		return fmt.Errorf("%s nth %d < 0", f.Kind, f.Nth)
	}
	if f.Kind == "chaos" && f.MTBFHours <= 0 {
		return fmt.Errorf("chaos mtbf %gh <= 0", f.MTBFHours)
	}
	if f.Kind != "chaos" && f.MTBFHours != 0 {
		return fmt.Errorf("%s has mtbf-hours (chaos only)", f.Kind)
	}
	if f.Kind == "handoff-crash" {
		ok := false
		for _, p := range HandoffPhases {
			if f.Phase == p {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("handoff-crash phase %q (have %v)", f.Phase, HandoffPhases)
		}
	} else if f.Phase != "" {
		return fmt.Errorf("%s has phase (handoff-crash only)", f.Kind)
	}
	return nil
}
