package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// The text form of a Spec is a small, strict, YAML-ish format:
// two-space indentation, "key: value" pairs, "- " list items under the
// "classes:", "surges:" and "faults:" sections, and full-line "#"
// comments.
// Distributions and arrival processes are one-line expressions
// ("lognormal mean=40 sigma=1.1", "gamma cv=2.5"). Parse and Format
// round-trip: for any accepted input, Parse(Format(Parse(in))) equals
// Parse(in) — pinned by FuzzParseSpec. See docs/DESIGN.md §11 for the
// full grammar and docs/experiments.md for examples.

// Parse reads a workload spec from its text form. It performs only
// syntactic checks; call Validate on the result before use.
func Parse(text string) (*Spec, error) {
	sp := &Spec{StartWeekday: time.Monday}
	// section is the open indent-0 block; item points at the class or
	// surge the current "- " item populates.
	section := ""
	var class *Class
	var surge *Surge
	var flt *Fault
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimRight(raw, " \r")
		trimmed := strings.TrimLeft(line, " ")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if strings.HasPrefix(trimmed, "\t") {
			return nil, parseErr(ln, "tab indentation (use spaces)")
		}
		indent := len(line) - len(trimmed)
		item := strings.HasPrefix(trimmed, "- ")
		if item {
			trimmed = trimmed[2:]
		}
		key, value, err := splitKV(ln, trimmed)
		if err != nil {
			return nil, err
		}
		switch {
		case indent == 0 && !item:
			class, surge, flt = nil, nil, nil
			section = ""
			switch key {
			case "seasonality", "classes", "surges", "faults":
				if value != "" {
					return nil, parseErr(ln, "section %q takes no value", key)
				}
				section = key
			default:
				if err := sp.setTop(key, value); err != nil {
					return nil, parseErr(ln, "%v", err)
				}
			}
		case indent == 2 && item && section == "classes":
			sp.Classes = append(sp.Classes, Class{})
			class = &sp.Classes[len(sp.Classes)-1]
			if err := class.set(key, value); err != nil {
				return nil, parseErr(ln, "%v", err)
			}
		case indent == 2 && item && section == "surges":
			sp.Surges = append(sp.Surges, Surge{Cluster: -1})
			surge = &sp.Surges[len(sp.Surges)-1]
			if err := surge.set(key, value); err != nil {
				return nil, parseErr(ln, "%v", err)
			}
		case indent == 2 && item && section == "faults":
			sp.Faults = append(sp.Faults, Fault{Cluster: -1, Server: -1})
			flt = &sp.Faults[len(sp.Faults)-1]
			if err := flt.set(key, value); err != nil {
				return nil, parseErr(ln, "%v", err)
			}
		case indent == 2 && !item && section == "seasonality":
			if err := sp.Seasonality.set(key, value); err != nil {
				return nil, parseErr(ln, "%v", err)
			}
		case indent == 4 && !item && class != nil:
			if err := class.set(key, value); err != nil {
				return nil, parseErr(ln, "%v", err)
			}
		case indent == 4 && !item && surge != nil:
			if err := surge.set(key, value); err != nil {
				return nil, parseErr(ln, "%v", err)
			}
		case indent == 4 && !item && flt != nil:
			if err := flt.set(key, value); err != nil {
				return nil, parseErr(ln, "%v", err)
			}
		default:
			return nil, parseErr(ln, "unexpected indentation %d", indent)
		}
	}
	return sp, nil
}

func parseErr(ln int, format string, args ...any) error {
	return fmt.Errorf("scenario: line %d: %s", ln+1, fmt.Sprintf(format, args...))
}

func splitKV(ln int, s string) (key, value string, err error) {
	i := strings.Index(s, ":")
	if i < 0 {
		return "", "", parseErr(ln, "missing ':' in %q", s)
	}
	return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), nil
}

func (sp *Spec) setTop(key, value string) error {
	switch key {
	case "name":
		sp.Name = value
	case "seed":
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("seed %q: not an integer", value)
		}
		sp.Seed = v
	case "days":
		return setInt(&sp.Days, key, value)
	case "vms":
		return setInt(&sp.VMs, key, value)
	case "subscriptions":
		return setInt(&sp.Subscriptions, key, value)
	case "clusters":
		return setInt(&sp.Clusters, key, value)
	case "start-weekday":
		wd, err := parseWeekday(value)
		if err != nil {
			return err
		}
		sp.StartWeekday = wd
	case "util-quantum":
		return setFloat(&sp.UtilQuantum, key, value)
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

func (s *Seasonality) set(key, value string) error {
	switch key {
	case "diurnal-amp":
		return setFloat(&s.DiurnalAmp, key, value)
	case "peak-hour":
		return setFloat(&s.PeakHour, key, value)
	case "weekend-factor":
		return setFloat(&s.WeekendFactor, key, value)
	default:
		return fmt.Errorf("unknown seasonality key %q", key)
	}
}

func (c *Class) set(key, value string) error {
	switch key {
	case "name":
		c.Name = value
	case "fraction":
		return setFloat(&c.Fraction, key, value)
	case "archetype":
		if value == "mixed" {
			value = ""
		}
		c.Archetype = value
	case "size":
		if value == "mixed" {
			value = ""
		}
		c.Size = value
	case "clusters":
		for _, f := range strings.Split(value, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("clusters %q: not an integer list", value)
			}
			c.Clusters = append(c.Clusters, v)
		}
	case "arrival":
		a, err := parseArrival(value)
		if err != nil {
			return err
		}
		c.Arrival = a
	case "lifetime":
		d, err := parseDist(value)
		if err != nil {
			return err
		}
		c.Lifetime = d
	case "working-set":
		d, err := parseDist(value)
		if err != nil {
			return err
		}
		c.WorkingSet = d
	default:
		return fmt.Errorf("unknown class key %q", key)
	}
	return nil
}

func (sg *Surge) set(key, value string) error {
	switch key {
	case "kind":
		sg.Kind = value
	case "classes":
		for _, f := range strings.Split(value, ",") {
			if f = strings.TrimSpace(f); f != "" {
				sg.Classes = append(sg.Classes, f)
			}
		}
	case "day":
		return setFloat(&sg.Day, key, value)
	case "duration-hours":
		return setFloat(&sg.DurationHours, key, value)
	case "rate-mult":
		return setFloat(&sg.RateMult, key, value)
	case "util-mult":
		return setFloat(&sg.UtilMult, key, value)
	case "cluster":
		return setInt(&sg.Cluster, key, value)
	default:
		return fmt.Errorf("unknown surge key %q", key)
	}
	return nil
}

func (f *Fault) set(key, value string) error {
	switch key {
	case "kind":
		f.Kind = value
	case "day":
		return setFloat(&f.Day, key, value)
	case "duration-hours":
		return setFloat(&f.DurationHours, key, value)
	case "recover-hours":
		return setFloat(&f.RecoverHours, key, value)
	case "mtbf-hours":
		return setFloat(&f.MTBFHours, key, value)
	case "delay-ms":
		return setFloat(&f.DelayMs, key, value)
	case "jitter-ms":
		return setFloat(&f.JitterMs, key, value)
	case "cluster":
		return setInt(&f.Cluster, key, value)
	case "server":
		return setInt(&f.Server, key, value)
	case "phase":
		f.Phase = value
	case "nth":
		return setInt(&f.Nth, key, value)
	default:
		return fmt.Errorf("unknown fault key %q", key)
	}
	return nil
}

func setInt(dst *int, key, value string) error {
	v, err := strconv.Atoi(value)
	if err != nil {
		return fmt.Errorf("%s %q: not an integer", key, value)
	}
	*dst = v
	return nil
}

func setFloat(dst *float64, key, value string) error {
	v, err := parseFinite(value)
	if err != nil {
		return fmt.Errorf("%s %q: %v", key, value, err)
	}
	*dst = v
	return nil
}

// parseFinite parses a finite float (a cosmetic trailing "h" unit as in
// "36h" is dropped; NaN and infinities are rejected so specs stay
// comparable and round-trippable).
func parseFinite(s string) (float64, error) {
	s = strings.TrimSuffix(s, "h")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("not a number")
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("not finite")
	}
	return v, nil
}

// parseArrival reads "poisson", "gamma cv=2.5" or "weibull shape=0.7".
func parseArrival(s string) (Arrival, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return Arrival{}, fmt.Errorf("empty arrival")
	}
	p, err := ParseProcess(fields[0])
	if err != nil {
		return Arrival{}, err
	}
	a := Arrival{Process: p}
	params, err := parseParams(fields[1:])
	if err != nil {
		return Arrival{}, fmt.Errorf("arrival %q: %v", s, err)
	}
	for k, v := range params {
		switch {
		case k == "cv" && p == Gamma:
			a.CV = v
		case k == "shape" && p == WeibullArrivals:
			a.Shape = v
		default:
			return Arrival{}, fmt.Errorf("arrival %q: unknown parameter %q", s, k)
		}
	}
	return a, nil
}

// parseDist reads "<kind> key=value ..." distribution expressions.
func parseDist(s string) (Dist, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return Dist{}, fmt.Errorf("empty distribution")
	}
	k, err := ParseDistKind(fields[0])
	if err != nil {
		return Dist{}, err
	}
	d := Dist{Kind: k}
	params, err := parseParams(fields[1:])
	if err != nil {
		return Dist{}, fmt.Errorf("distribution %q: %v", s, err)
	}
	allowed := map[DistKind][]string{
		DistFixed:       {"value"},
		DistUniform:     {"min", "max"},
		DistExponential: {"mean"},
		DistLognormal:   {"mean", "sigma"},
		DistWeibull:     {"mean", "shape"},
	}[k]
	for key, v := range params {
		ok := false
		for _, a := range allowed {
			if key == a {
				ok = true
			}
		}
		if !ok {
			return Dist{}, fmt.Errorf("distribution %q: unknown parameter %q", s, key)
		}
		switch key {
		case "value":
			d.Value = v
		case "min":
			d.Min = v
		case "max":
			d.Max = v
		case "mean":
			d.Mean = v
		case "sigma":
			d.Sigma = v
		case "shape":
			d.Shape = v
		}
	}
	return d, nil
}

func parseParams(fields []string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("parameter %q is not key=value", f)
		}
		x, err := parseFinite(v)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %v", f, err)
		}
		out[k] = x
	}
	return out, nil
}

// Format renders the spec in its canonical text form. Parse(Format(sp))
// reproduces sp for any spec Parse can produce.
func Format(sp *Spec) string {
	var b strings.Builder
	if sp.Name != "" {
		fmt.Fprintf(&b, "name: %s\n", sp.Name)
	}
	fmt.Fprintf(&b, "seed: %d\n", sp.Seed)
	fmt.Fprintf(&b, "days: %d\n", sp.Days)
	fmt.Fprintf(&b, "vms: %d\n", sp.VMs)
	fmt.Fprintf(&b, "subscriptions: %d\n", sp.Subscriptions)
	fmt.Fprintf(&b, "clusters: %d\n", sp.Clusters)
	fmt.Fprintf(&b, "start-weekday: %s\n", sp.StartWeekday)
	if sp.UtilQuantum != 0 {
		// Emitted only when set so pre-quantization spec files round-trip
		// byte-identically.
		fmt.Fprintf(&b, "util-quantum: %s\n", ftoa(sp.UtilQuantum))
	}
	fmt.Fprintf(&b, "seasonality:\n")
	fmt.Fprintf(&b, "  diurnal-amp: %s\n", ftoa(sp.Seasonality.DiurnalAmp))
	fmt.Fprintf(&b, "  peak-hour: %s\n", ftoa(sp.Seasonality.PeakHour))
	fmt.Fprintf(&b, "  weekend-factor: %s\n", ftoa(sp.Seasonality.WeekendFactor))
	if len(sp.Classes) > 0 {
		fmt.Fprintf(&b, "classes:\n")
		for i := range sp.Classes {
			c := &sp.Classes[i]
			fmt.Fprintf(&b, "  - name: %s\n", c.Name)
			fmt.Fprintf(&b, "    fraction: %s\n", ftoa(c.Fraction))
			if c.Archetype != "" {
				fmt.Fprintf(&b, "    archetype: %s\n", c.Archetype)
			}
			if c.Size != "" {
				fmt.Fprintf(&b, "    size: %s\n", c.Size)
			}
			if len(c.Clusters) > 0 {
				fmt.Fprintf(&b, "    clusters: %s\n", joinInts(c.Clusters))
			}
			fmt.Fprintf(&b, "    arrival: %s\n", formatArrival(c.Arrival))
			fmt.Fprintf(&b, "    lifetime: %s\n", formatDist(c.Lifetime))
			fmt.Fprintf(&b, "    working-set: %s\n", formatDist(c.WorkingSet))
		}
	}
	if len(sp.Surges) > 0 {
		fmt.Fprintf(&b, "surges:\n")
		for i := range sp.Surges {
			sg := &sp.Surges[i]
			fmt.Fprintf(&b, "  - kind: %s\n", sg.Kind)
			if len(sg.Classes) > 0 {
				fmt.Fprintf(&b, "    classes: %s\n", strings.Join(sg.Classes, ","))
			}
			fmt.Fprintf(&b, "    day: %s\n", ftoa(sg.Day))
			fmt.Fprintf(&b, "    duration-hours: %s\n", ftoa(sg.DurationHours))
			if sg.RateMult != 0 {
				fmt.Fprintf(&b, "    rate-mult: %s\n", ftoa(sg.RateMult))
			}
			if sg.UtilMult != 0 {
				fmt.Fprintf(&b, "    util-mult: %s\n", ftoa(sg.UtilMult))
			}
			if sg.Cluster != -1 {
				fmt.Fprintf(&b, "    cluster: %d\n", sg.Cluster)
			}
		}
	}
	if len(sp.Faults) > 0 {
		fmt.Fprintf(&b, "faults:\n")
		for i := range sp.Faults {
			f := &sp.Faults[i]
			fmt.Fprintf(&b, "  - kind: %s\n", f.Kind)
			fmt.Fprintf(&b, "    day: %s\n", ftoa(f.Day))
			if f.DurationHours != 0 {
				fmt.Fprintf(&b, "    duration-hours: %s\n", ftoa(f.DurationHours))
			}
			if f.RecoverHours != 0 {
				fmt.Fprintf(&b, "    recover-hours: %s\n", ftoa(f.RecoverHours))
			}
			if f.MTBFHours != 0 {
				fmt.Fprintf(&b, "    mtbf-hours: %s\n", ftoa(f.MTBFHours))
			}
			if f.DelayMs != 0 {
				fmt.Fprintf(&b, "    delay-ms: %s\n", ftoa(f.DelayMs))
			}
			if f.JitterMs != 0 {
				fmt.Fprintf(&b, "    jitter-ms: %s\n", ftoa(f.JitterMs))
			}
			if f.Cluster != -1 {
				fmt.Fprintf(&b, "    cluster: %d\n", f.Cluster)
			}
			if f.Server != -1 {
				fmt.Fprintf(&b, "    server: %d\n", f.Server)
			}
			if f.Phase != "" {
				fmt.Fprintf(&b, "    phase: %s\n", f.Phase)
			}
			if f.Nth != 0 {
				fmt.Fprintf(&b, "    nth: %d\n", f.Nth)
			}
		}
	}
	return b.String()
}

func formatArrival(a Arrival) string {
	switch a.Process {
	case Gamma:
		return fmt.Sprintf("gamma cv=%s", ftoa(a.CV))
	case WeibullArrivals:
		return fmt.Sprintf("weibull shape=%s", ftoa(a.Shape))
	default:
		return "poisson"
	}
}

func formatDist(d Dist) string {
	switch d.Kind {
	case DistUniform:
		return fmt.Sprintf("uniform min=%s max=%s", ftoa(d.Min), ftoa(d.Max))
	case DistExponential:
		return fmt.Sprintf("exponential mean=%s", ftoa(d.Mean))
	case DistLognormal:
		return fmt.Sprintf("lognormal mean=%s sigma=%s", ftoa(d.Mean), ftoa(d.Sigma))
	case DistWeibull:
		return fmt.Sprintf("weibull mean=%s shape=%s", ftoa(d.Mean), ftoa(d.Shape))
	default:
		return fmt.Sprintf("fixed value=%s", ftoa(d.Value))
	}
}

// ftoa formats floats so they re-parse to the exact same bits.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

func parseWeekday(s string) (time.Weekday, error) {
	for wd := time.Sunday; wd <= time.Saturday; wd++ {
		if strings.EqualFold(s, wd.String()) {
			return wd, nil
		}
	}
	return 0, fmt.Errorf("unknown weekday %q", s)
}
