package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

const handwrittenSpec = `# A handwritten scenario exercising every construct.
name: handwritten
seed: 99
days: 14
vms: 800
subscriptions: 40
clusters: 6
start-weekday: wednesday

seasonality:
  diurnal-amp: 0.45
  peak-hour: 13.5
  weekend-factor: 0.7

classes:
  - name: web
    fraction: 0.6
    archetype: business-hours
    size: mixed
    arrival: gamma cv=2.5
    lifetime: lognormal mean=36h sigma=1.1
    working-set: uniform min=0.3 max=0.65
  - name: batch
    fraction: 0.4
    size: large
    clusters: 0,1,2
    arrival: weibull shape=0.7
    lifetime: exponential mean=8
    working-set: fixed value=0.5

surges:
  - kind: black-friday
    day: 11.5
    duration-hours: 24
    rate-mult: 2.5
    util-mult: 1.3
  - kind: regional-failover
    classes: web
    day: 9
    duration-hours: 6
    rate-mult: 1.5
    cluster: 3
`

func TestParseHandwritten(t *testing.T) {
	sp, err := Parse(handwrittenSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.Name != "handwritten" || sp.Seed != 99 || sp.Days != 14 || sp.VMs != 800 {
		t.Errorf("top-level fields wrong: %+v", sp)
	}
	if sp.StartWeekday != time.Wednesday {
		t.Errorf("start weekday = %v", sp.StartWeekday)
	}
	if sp.Seasonality != (Seasonality{DiurnalAmp: 0.45, PeakHour: 13.5, WeekendFactor: 0.7}) {
		t.Errorf("seasonality = %+v", sp.Seasonality)
	}
	if len(sp.Classes) != 2 {
		t.Fatalf("%d classes", len(sp.Classes))
	}
	web := sp.Classes[0]
	if web.Name != "web" || web.Fraction != 0.6 || web.Archetype != "business-hours" || web.Size != "" {
		t.Errorf("web class = %+v", web)
	}
	if web.Arrival != GammaArrival(2.5) {
		t.Errorf("web arrival = %+v", web.Arrival)
	}
	// The "h" on the lifetime mean is a cosmetic unit.
	if web.Lifetime != Lognormal(36, 1.1) {
		t.Errorf("web lifetime = %+v", web.Lifetime)
	}
	batch := sp.Classes[1]
	if batch.Size != "large" || !reflect.DeepEqual(batch.Clusters, []int{0, 1, 2}) {
		t.Errorf("batch class = %+v", batch)
	}
	if batch.WorkingSet != Fixed(0.5) {
		t.Errorf("batch working set = %+v", batch.WorkingSet)
	}
	if len(sp.Surges) != 2 {
		t.Fatalf("%d surges", len(sp.Surges))
	}
	if sp.Surges[0].Cluster != -1 {
		t.Errorf("surge without cluster must default to -1, got %d", sp.Surges[0].Cluster)
	}
	if sp.Surges[1].Cluster != 3 || !reflect.DeepEqual(sp.Surges[1].Classes, []string{"web"}) {
		t.Errorf("failover surge = %+v", sp.Surges[1])
	}
}

// TestFormatParseRoundTrip: Parse(Format(sp)) must reproduce sp exactly
// for every preset and for the handwritten spec.
func TestFormatParseRoundTrip(t *testing.T) {
	specs := Presets()
	hw, err := Parse(handwrittenSpec)
	if err != nil {
		t.Fatal(err)
	}
	specs = append(specs, hw)
	for _, sp := range specs {
		got, err := Parse(Format(sp))
		if err != nil {
			t.Fatalf("%s: reparse: %v", sp.Name, err)
		}
		if !reflect.DeepEqual(got, sp) {
			t.Errorf("%s: round trip changed the spec:\nbefore: %+v\nafter:  %+v", sp.Name, sp, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"tab-indent", "classes:\n\t- name: x", "tab"},
		{"bad-indent", "classes:\n   - name: x", "indentation"},
		{"missing-colon", "days 14", "missing ':'"},
		{"unknown-top-key", "dayz: 14", "unknown key"},
		{"unknown-class-key", "classes:\n  - name: a\n    color: red", "unknown class key"},
		{"unknown-surge-key", "surges:\n  - kind: a\n    blast: 3", "unknown surge key"},
		{"unknown-seasonality-key", "seasonality:\n  lunar-amp: 1", "unknown seasonality key"},
		{"section-with-value", "classes: all", "takes no value"},
		{"bad-int", "days: soon", "not an integer"},
		{"bad-seed", "seed: 1.5", "not an integer"},
		{"bad-float", "seasonality:\n  peak-hour: noon", "not a number"},
		{"nan-rejected", "seasonality:\n  peak-hour: NaN", "not finite"},
		{"inf-rejected", "seasonality:\n  peak-hour: +Inf", "not finite"},
		{"bad-weekday", "start-weekday: Holiday", "unknown weekday"},
		{"bad-process", "classes:\n  - name: a\n    arrival: pareto", "unknown arrival process"},
		{"bad-dist-kind", "classes:\n  - name: a\n    lifetime: zipf mean=3", "unknown distribution"},
		{"bad-dist-param", "classes:\n  - name: a\n    lifetime: exponential rate=3", "unknown parameter"},
		{"bad-arrival-param", "classes:\n  - name: a\n    arrival: poisson cv=2", "unknown parameter"},
		{"bad-param-syntax", "classes:\n  - name: a\n    lifetime: exponential mean", "not key=value"},
		{"bad-clusters", "classes:\n  - name: a\n    clusters: 0,x", "not an integer list"},
		{"orphan-item", "- name: a", "indentation"},
		{"orphan-subkey", "fraction: 0.5", "unknown key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.text)
			if err == nil {
				t.Fatalf("Parse accepted %q", tc.text)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	sp, err := Parse("# header\n\nname: x\ndays: 7\n  \n# trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "x" || sp.Days != 7 {
		t.Errorf("spec = %+v", sp)
	}
	// Default weekday is Monday when unspecified.
	if sp.StartWeekday != time.Monday {
		t.Errorf("default weekday = %v", sp.StartWeekday)
	}
}

func TestParseWeekdayCaseInsensitive(t *testing.T) {
	for _, s := range []string{"monday", "Monday", "MONDAY"} {
		wd, err := parseWeekday(s)
		if err != nil || wd != time.Monday {
			t.Errorf("parseWeekday(%s) = %v, %v", s, wd, err)
		}
	}
}

func TestFormatOmitsDefaults(t *testing.T) {
	sp, _ := Preset("surge")
	text := Format(sp)
	if strings.Contains(text, "cluster: -1") {
		t.Error("Format must omit the default surge cluster")
	}
	if strings.Contains(text, "size: mixed") || strings.Contains(text, "archetype: mixed") {
		t.Error("Format must omit mixed size/archetype")
	}
}
