package sim

import (
	"bytes"
	"testing"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/trace"
)

// TestFaultScheduleDeterminism is the fault-path determinism pin, run
// under -race in CI: the chaos preset's compiled schedule must produce
// byte-identical Results on repeated runs of the same configuration —
// dense and event engines, Workers 1/2/8 — and the fault counters must
// satisfy the accounting identities (every evicted VM is replaced or
// lost, one downtime tick minimum per displacement). Golden equivalence
// (golden_test.go) pins dense-vs-event; this pins run-vs-run, which
// would catch nondeterminism that happened to bite both engines the
// same way.
func TestFaultScheduleDeterminism(t *testing.T) {
	full, err := scenario.Preset("chaos")
	if err != nil {
		t.Fatal(err)
	}
	sp := full.Scaled(200, 20)
	tr, err := trace.GenerateScenario(sp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ConfigForPolicy(scheduler.PolicyNone)
	cfg.TrainUpTo = tr.Horizon / 2
	cfg.Scenario = sp

	type variant struct {
		name    string
		engine  EngineKind
		workers int
	}
	variants := []variant{
		{"dense-w1", EngineDense, 1},
		{"event-w1", EngineEvent, 1},
		{"event-w2", EngineEvent, 2},
		{"event-w8", EngineEvent, 8},
	}
	var golden []byte
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			c := cfg
			c.Engine = v.engine
			c.Workers = v.workers
			fleet := cluster.NewFleet(cluster.DefaultClusters(2))
			first, err := Run(tr, fleet, c)
			if err != nil {
				t.Fatal(err)
			}
			f := first.Faults
			if f == nil || f.Crashes == 0 {
				t.Fatalf("fault schedule never fired: %+v", f)
			}
			if f.ReplacedVMs+f.LostVMs != f.EvictedVMs {
				t.Fatalf("eviction accounting broken: %d replaced + %d lost != %d evicted",
					f.ReplacedVMs, f.LostVMs, f.EvictedVMs)
			}
			if f.EvictedVMs > 0 && f.DowntimeTicks < f.EvictedVMs {
				t.Fatalf("downtime %d ticks < %d displacements", f.DowntimeTicks, f.EvictedVMs)
			}
			enc := encodeResult(t, first)
			again, err := Run(tr, fleet, c)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, encodeResult(t, again)) {
				t.Fatalf("same config, different Results:\nfirst:  %+v\nsecond: %+v",
					summary(first), summary(again))
			}
			if golden == nil {
				golden = enc
			} else if !bytes.Equal(golden, enc) {
				t.Fatalf("%s diverges from dense-w1 under faults: %+v", v.name, summary(first))
			}
		})
	}
}
