package sim

import (
	"reflect"
	"testing"

	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/scheduler"
)

// TestRunDeterministicAcrossWorkers is the hard requirement of the sharded
// engine: the merged Result — counters, peak server usage, and Outcomes
// (sorted by VMID) — must be identical whether shards replay serially or
// on any number of workers.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	tr, fleet := fixtures(t)
	for _, p := range []scheduler.PolicyKind{scheduler.PolicyCoach, scheduler.PolicyNone} {
		cfg := ConfigForPolicy(p)
		cfg.TrainUpTo = tr.Horizon / 2

		// Share one trained model so the comparison isolates the replay
		// engine (training is deterministic too, but retraining per worker
		// count would triple the test's cost).
		if p != scheduler.PolicyNone {
			ltCfg := cfg.LongTerm
			ltCfg.Windows = cfg.Windows
			ltCfg.Percentile = cfg.Percentile
			model, err := predict.TrainLongTerm(tr, cfg.TrainUpTo, ltCfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Model = model
		}

		var base *Result
		for _, workers := range []int{1, 2, 8} {
			cfg.Workers = workers
			res, err := Run(tr, fleet, cfg)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", p, workers, err)
			}
			if base == nil {
				base = res
				continue
			}
			if !reflect.DeepEqual(base, res) {
				t.Errorf("%v: Workers=%d result differs from Workers=1:\n  base: %+v\n  got:  %+v",
					p, workers, summary(base), summary(res))
			}
		}
	}
}

// summary shrinks a Result for failure messages.
func summary(r *Result) map[string]int {
	return map[string]int{
		"requested":   r.Requested,
		"placed":      r.Placed,
		"rejected":    r.Rejected,
		"oversub":     r.Oversubscribed,
		"usedServers": r.UsedServers,
		"serverTicks": r.ServerTicks,
		"cpuViol":     r.CPUViolations,
		"memViol":     r.MemViolations,
		"outcomes":    len(r.Outcomes),
	}
}

// TestOutcomesSortedByVMID pins the documented merge order.
func TestOutcomesSortedByVMID(t *testing.T) {
	tr, fleet := fixtures(t)
	cfg := ConfigForPolicy(scheduler.PolicyCoach)
	cfg.TrainUpTo = tr.Horizon / 2
	cfg.Workers = 4
	res, err := Run(tr, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Outcomes); i++ {
		if res.Outcomes[i-1].VMID >= res.Outcomes[i].VMID {
			t.Fatalf("outcomes not sorted by VMID at %d: %d >= %d",
				i, res.Outcomes[i-1].VMID, res.Outcomes[i].VMID)
		}
	}
}

// TestRunParallelRace replays with maximum shard concurrency so
// `go test -race ./internal/sim/...` exercises the worker pool and the
// shared read-only model.
func TestRunParallelRace(t *testing.T) {
	tr, fleet := fixtures(t)
	cfg := ConfigForPolicy(scheduler.PolicyCoach)
	cfg.TrainUpTo = tr.Horizon / 2
	cfg.Workers = fleet.NumClusters()
	res, err := Run(tr, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requested == 0 || res.Placed == 0 {
		t.Fatalf("parallel run did no work: %+v", summary(res))
	}
}

// TestShardIndexFoldsClusters covers traces whose home-cluster indices
// exceed the fleet's cluster count (e.g. the default ten-cluster trace on
// a CapacityFleet subset).
func TestShardIndexFoldsClusters(t *testing.T) {
	tr, _ := fixtures(t)
	for i := range tr.VMs {
		got := shardIndex(&tr.VMs[i], 3)
		if got < 0 || got >= 3 {
			t.Fatalf("shardIndex(%d, 3) = %d", tr.VMs[i].Cluster, got)
		}
	}
}
