package sim

import (
	"math"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/core"
	"github.com/coach-oss/coach/internal/memsim"
	"github.com/coach-oss/coach/internal/timeseries"
)

// dpTickSeconds is the data-plane tick length: one trace sample (5
// simulated minutes). The agent's monitoring pass therefore runs once per
// sample — the granularity the paper's cluster evaluation works at (§4.3
// uses the 5-minute data).
const dpTickSeconds = float64(timeseries.SampleMinutes) * 60

// latencyBuckets sizes the access-latency histogram: 8 buckets per
// doubling from latencyBase ns covers 50ns..~3ms, enough for the PA-hit
// to hard-fault latency range with <9% bucket-width error.
const (
	latencyBuckets = 128
	latencyBase    = 50.0
)

// latencyBucket maps a mean access latency to its histogram bucket.
func latencyBucket(ns float64) int {
	if ns <= latencyBase {
		return 0
	}
	b := int(8 * math.Log2(ns/latencyBase))
	if b >= latencyBuckets {
		return latencyBuckets - 1
	}
	return b
}

// latencyOf returns the representative (lower-bound) latency of a bucket.
func latencyOf(bucket int) float64 {
	return latencyBase * math.Exp2(float64(bucket)/8)
}

// DataPlaneResult aggregates the fleet-wide memory data plane of one run:
// mitigation volumes, paging volumes and the access-latency distribution
// over every (VM, tick) sample. Shards accumulate one each and merge sums
// them in shard order, so the merged result is byte-identical for any
// worker count.
type DataPlaneResult struct {
	// Policy and Mode are the mitigation configuration under test.
	Policy agent.Policy
	Mode   agent.Mode
	// Servers is the number of fleet servers running a data plane.
	Servers int
	// VMTicks counts (attached VM, 5-minute tick) samples.
	VMTicks int
	// Totals sums the servers' cumulative trim/extend/migrate/fault
	// volumes.
	Totals memsim.Totals
	// Counters sums the agents' contention and mitigation counters.
	Counters core.AgentCounters
	// FirstTrimTick, FirstExtendTick and FirstMigrateTick are the
	// evaluation-period ticks (0-based, -1 = never) at which the first
	// trim / pool-extend / migration started — the observable order of
	// the mitigation ladder.
	FirstTrimTick    int
	FirstExtendTick  int
	FirstMigrateTick int
	// Migration-landing outcomes (docs/DESIGN.md §10): completed live
	// migrations that landed on another server in their home shard
	// (SameShard), re-homed into a different cluster shard through the
	// sample-boundary exchange (CrossShard, attributed to the source
	// shard), or found no feasible target anywhere and re-landed on
	// their source (Failed). WarmArrivedGB is the pre-copied volume that
	// arrived resident at targets instead of demand-faulting.
	SameShardMigrations  int
	CrossShardMigrations int
	FailedMigrations     int
	WarmArrivedGB        float64
	// LatencyHist is a log-scale histogram of per-VM-tick mean access
	// latencies (8 buckets per doubling from 50ns). Histograms merge by
	// integer addition, which is how percentiles stay deterministic
	// across shard and worker counts.
	LatencyHist [latencyBuckets]int64
}

func newDataPlaneResult(cfg Config) *DataPlaneResult {
	return &DataPlaneResult{
		Policy:           cfg.MitigationPolicy,
		Mode:             cfg.MitigationMode,
		FirstTrimTick:    -1,
		FirstExtendTick:  -1,
		FirstMigrateTick: -1,
	}
}

// observe folds one tick's frames into the histogram and tick counters.
func (d *DataPlaneResult) observe(frames []*memsim.TickFrame) {
	for _, f := range frames {
		for i := 0; i < f.Len(); i++ {
			if f.Departed(i) {
				continue
			}
			d.VMTicks++
			d.LatencyHist[latencyBucket(f.At(i).MeanNs)]++
		}
	}
}

// mark records first-mitigation ticks from the counter deltas at
// evaluation tick t.
func (d *DataPlaneResult) mark(t int, c core.AgentCounters) {
	if d.FirstTrimTick < 0 && c.Trims > d.Counters.Trims {
		d.FirstTrimTick = t
	}
	if d.FirstExtendTick < 0 && c.Extends > d.Counters.Extends {
		d.FirstExtendTick = t
	}
	if d.FirstMigrateTick < 0 && c.Migrations > d.Counters.Migrations {
		d.FirstMigrateTick = t
	}
	d.Counters = c
}

// finish captures the end-of-run totals from the shard's data plane.
func (d *DataPlaneResult) finish(dp *core.DataPlane) {
	d.Servers = len(dp.Servers())
	d.Totals = dp.Totals()
	d.Counters = dp.Counters()
}

// merge folds o into d (shard order): sums, histogram addition, and the
// earliest first-mitigation ticks.
func (d *DataPlaneResult) merge(o *DataPlaneResult) {
	d.Servers += o.Servers
	d.VMTicks += o.VMTicks
	d.Totals = d.Totals.Add(o.Totals)
	d.Counters = d.Counters.Add(o.Counters)
	d.FirstTrimTick = minTick(d.FirstTrimTick, o.FirstTrimTick)
	d.FirstExtendTick = minTick(d.FirstExtendTick, o.FirstExtendTick)
	d.FirstMigrateTick = minTick(d.FirstMigrateTick, o.FirstMigrateTick)
	d.SameShardMigrations += o.SameShardMigrations
	d.CrossShardMigrations += o.CrossShardMigrations
	d.FailedMigrations += o.FailedMigrations
	d.WarmArrivedGB += o.WarmArrivedGB
	for i, n := range o.LatencyHist {
		d.LatencyHist[i] += n
	}
}

// minTick returns the earliest of two first-occurrence ticks, where -1
// means never.
func minTick(a, b int) int {
	switch {
	case a < 0:
		return b
	case b < 0 || a <= b:
		return a
	default:
		return b
	}
}

// SoftFaultFrac returns the share of faulted volume served by demand-zero
// soft faults rather than backing-store reads.
func (d *DataPlaneResult) SoftFaultFrac() float64 { return d.Totals.SoftFaultFrac() }

// AccessP50Ns returns the median per-VM-tick mean access latency.
func (d *DataPlaneResult) AccessP50Ns() float64 { return d.latencyPercentile(0.50) }

// AccessP99Ns returns the 99th-percentile per-VM-tick mean access latency.
func (d *DataPlaneResult) AccessP99Ns() float64 { return d.latencyPercentile(0.99) }

// AccessMaxNs returns the highest observed per-VM-tick mean access
// latency (bucket lower bound) — the worst tick any VM suffered, which
// separates policies even when contention touches too few VM-ticks to
// move the P99.
func (d *DataPlaneResult) AccessMaxNs() float64 {
	for i := latencyBuckets - 1; i >= 0; i-- {
		if d.LatencyHist[i] > 0 {
			return latencyOf(i)
		}
	}
	return 0
}

func (d *DataPlaneResult) latencyPercentile(q float64) float64 {
	var total int64
	for _, n := range d.LatencyHist {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range d.LatencyHist {
		seen += n
		if seen >= rank {
			return latencyOf(i)
		}
	}
	return latencyOf(latencyBuckets - 1)
}

// shardDataPlane bundles a shard's data plane and migration engine with
// its result accumulator.
type shardDataPlane struct {
	dp  *core.DataPlane
	eng *core.MigrationEngine
	res *DataPlaneResult
	// sparse enables the steady-server observe cache (event engine only);
	// obs[i] holds server i's cached per-tick histogram contribution.
	sparse bool
	obs    []steadyObs
}

// steadyObs caches one steady server's per-tick contribution to the
// shard's DataPlaneResult: the VM-tick count and the latency-histogram
// increments its (unchanging) frame produces. While the server stays
// steady its frame is bit-identical every tick, so applying the cached
// integer increments equals re-walking the frame. ticks pins the cache
// to the server's real-tick count: any fresh full tick (a touched
// server re-simulating and settling back to steady) may change the
// frame, which must invalidate the cache.
type steadyObs struct {
	valid   bool
	ticks   int64
	vmTicks int
	bucket  []int32
	count   []int64
}

// observeSparse folds one tick's frames into the result like
// DataPlaneResult.observe, but replays cached increments for servers that
// stayed steady and only walks frames that could have changed.
func (s *shardDataPlane) observeSparse(frames []*memsim.TickFrame) {
	steady := s.dp.Steady()
	servers := s.dp.Servers()
	for i, f := range frames {
		o := &s.obs[i]
		tc := servers[i].Server.TickCount()
		if steady[i] && o.valid && o.ticks == tc {
			s.res.VMTicks += o.vmTicks
			for j, b := range o.bucket {
				s.res.LatencyHist[b] += o.count[j]
			}
			continue
		}
		o.valid = false
		o.vmTicks = 0
		o.bucket = o.bucket[:0]
		o.count = o.count[:0]
		cache := steady[i]
		for j := 0; j < f.Len(); j++ {
			if f.Departed(j) {
				continue
			}
			s.res.VMTicks++
			b := latencyBucket(f.At(j).MeanNs)
			s.res.LatencyHist[b]++
			if cache {
				o.vmTicks++
				o.addBucket(int32(b))
			}
		}
		o.valid = cache
		o.ticks = tc
	}
}

func (o *steadyObs) addBucket(b int32) {
	for j, have := range o.bucket {
		if have == b {
			o.count[j]++
			return
		}
	}
	o.bucket = append(o.bucket, b)
	o.count = append(o.count, 1)
}

// newShardDataPlane builds the data plane and migration engine over a
// shard's servers (both nil when the cluster has none; the accumulator
// still merges so the merged Result always carries a DataPlaneResult when
// the config enables one). The engine shares the shard scheduler the
// replay places VMs with, so a landed migration moves capacity
// bookkeeping and memory together.
func newShardDataPlane(sh *shard, cfg Config) (*shardDataPlane, error) {
	sdp := &shardDataPlane{res: newDataPlaneResult(cfg)}
	if sh.sched == nil {
		return sdp, nil
	}
	dpCfg := core.DefaultDataPlaneConfig()
	dpCfg.Agent.Policy = cfg.MitigationPolicy
	dpCfg.Agent.Mode = cfg.MitigationMode
	// The dense reference core re-simulates every server every tick; the
	// event core lets provably idle servers skip (core.DataPlane docs).
	dpCfg.AlwaysTick = cfg.Engine == EngineDense
	if cfg.DataPlanePoolFrac > 0 {
		dpCfg.PoolFrac = cfg.DataPlanePoolFrac
	}
	if cfg.DataPlaneUnallocFrac > 0 {
		dpCfg.UnallocFrac = cfg.DataPlaneUnallocFrac
	}
	states := sh.sched.Servers()
	servers := make([]*cluster.Server, len(states))
	for i, st := range states {
		servers[i] = st.Server
	}
	dp, err := core.NewDataPlane(dpCfg, servers)
	if err != nil {
		return nil, err
	}
	mc := core.MigrationConfigFor(cfg.MigrationDirtyFrac, cfg.MigrationPressureFrac,
		cfg.CrossShardMigration, cfg.shards)
	eng, err := core.NewMigrationEngine(mc, sh.index, sh.sched, dp)
	if err != nil {
		return nil, err
	}
	sdp.dp = dp
	sdp.eng = eng
	if cfg.Engine == EngineEvent {
		sdp.sparse = true
		sdp.obs = make([]steadyObs, len(servers))
	}
	return sdp, nil
}

// result finalizes and returns the shard's data-plane result.
func (s *shardDataPlane) result() *DataPlaneResult {
	if s.dp != nil {
		s.res.finish(s.dp)
	}
	return s.res
}
