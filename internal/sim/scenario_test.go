package sim

import (
	"reflect"
	"testing"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/trace"
)

// TestScenarioRunDeterministicAcrossWorkers is the scenario-path
// determinism contract: for every preset, running with Config.Scenario
// and a nil trace must produce the identical merged Result on 1, 2 and
// 8 workers. With -race this also exercises scenario trace generation
// under the worker pool.
func TestScenarioRunDeterministicAcrossWorkers(t *testing.T) {
	for _, name := range scenario.PresetNames {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			full, err := scenario.Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			sp := full.Scaled(300, 30)
			// Pre-train one model from the identically-generated trace so
			// the worker sweep isolates replay (as in the GenConfig-trace
			// determinism test).
			tr, err := trace.GenerateScenario(sp)
			if err != nil {
				t.Fatal(err)
			}
			cfg := ConfigForPolicy(scheduler.PolicyCoach)
			cfg.Scenario = sp
			cfg.TrainUpTo = tr.Horizon / 2
			ltCfg := cfg.LongTerm
			ltCfg.Windows = cfg.Windows
			ltCfg.Percentile = cfg.Percentile
			model, err := predict.TrainLongTerm(tr, cfg.TrainUpTo, ltCfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Model = model

			fleet := cluster.NewFleet(cluster.DefaultClusters(1))
			var base *Result
			for _, workers := range []int{1, 2, 8} {
				cfg.Workers = workers
				res, err := Run(nil, fleet, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if res.Requested == 0 || res.Placed == 0 {
					t.Fatalf("workers=%d: no work done: %+v", workers, summary(res))
				}
				if base == nil {
					base = res
					continue
				}
				if !reflect.DeepEqual(base, res) {
					t.Errorf("Workers=%d result differs from Workers=1:\n  base: %+v\n  got:  %+v",
						workers, summary(base), summary(res))
				}
			}
		})
	}
}

// TestRunNilTraceRequiresScenario pins the Config.Scenario contract.
func TestRunNilTraceRequiresScenario(t *testing.T) {
	fleet := cluster.NewFleet(cluster.DefaultClusters(1))
	if _, err := Run(nil, fleet, ConfigForPolicy(scheduler.PolicyNone)); err == nil {
		t.Fatal("nil trace with no scenario must error")
	}
}
