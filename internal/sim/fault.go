package sim

import (
	"github.com/coach-oss/coach/internal/core"
)

// This file is the simulator half of the failure-domain engine
// (docs/DESIGN.md §13): compiled fault events apply at the top of each
// shard's evaluation tick, before that tick's departures and arrivals.
// A crash evicts the server's memory state wholesale and turns every
// hosted VM into a pending re-admission through the same pressure-aware
// placement path serve's crash handler uses (core.PickRecovery); a
// recovery returns the server to service empty. All processing is
// per-shard and in deterministic order (events pre-sorted, evictions in
// ascending VM id), so faulted Results stay byte-identical for any
// worker count and for both replay engines — the golden-equivalence
// tests pin this via the chaos preset.

// FaultResult aggregates the failure-domain engine's outcomes across
// shards. It is map-free so gob encodings stay deterministic.
type FaultResult struct {
	// Crashes and Recoveries count applied server fault events.
	Crashes    int
	Recoveries int
	// EvictedVMs counts VMs displaced by crashes; each one was either
	// re-admitted elsewhere (ReplacedVMs) or had no feasible home left
	// and dropped out of the replay (LostVMs).
	EvictedVMs  int
	ReplacedVMs int
	LostVMs     int
	// DowntimeTicks attributes unavailability per displaced VM in
	// 5-minute ticks: one tick per re-admission, the remaining scheduled
	// lifetime for a lost VM.
	DowntimeTicks int
}

// merge folds o into f (shard order).
func (f *FaultResult) merge(o FaultResult) {
	f.Crashes += o.Crashes
	f.Recoveries += o.Recoveries
	f.EvictedVMs += o.EvictedVMs
	f.ReplacedVMs += o.ReplacedVMs
	f.LostVMs += o.LostVMs
	f.DowntimeTicks += o.DowntimeTicks
}

// applyFaults processes the shard's fault events due at trace tick t.
// Run pre-sorts events by tick, so a cursor walk suffices.
func (st *shardState) applyFaults(t int) error {
	evTick := t - st.cfg.TrainUpTo
	for st.fi < len(st.fEvents) && st.fEvents[st.fi].Tick <= evTick {
		e := st.fEvents[st.fi]
		st.fi++
		if e.Up {
			st.recoverServer(e.Server)
		} else if err := st.crashServer(t, e.Server); err != nil {
			return err
		}
	}
	return nil
}

// crashServer fails one shard server at trace tick t: its data-plane
// state is lost, the scheduler marks it down, and every hosted VM is
// evicted and re-admitted through the recovery placement path — or
// lost, its remaining lifetime attributed as downtime, when no feasible
// server remains in the shard.
func (st *shardState) crashServer(t, srv int) error {
	if st.sh.sched == nil || srv < 0 || srv >= len(st.servers) || st.sh.sched.Down(srv) {
		return nil
	}
	st.sr.faults.Crashes++
	evicted := st.sh.sched.VMsOn(srv)
	if st.sdp != nil && st.sdp.dp != nil {
		st.sdp.dp.CrashServer(srv)
	}
	st.sh.sched.SetDown(srv, true)
	for _, id := range evicted {
		cvm := st.sh.sched.CVM(id)
		p, tracked := st.pos[id]
		if !tracked || cvm == nil {
			// Scheduler-only residue (e.g. a reservation whose replay
			// accounting lives elsewhere): drop the bookkeeping and move on.
			st.sh.sched.Remove(id)
			st.removeTracked(id, false)
			continue
		}
		rec := st.recs[p]
		st.sh.sched.Remove(id)
		st.removeTracked(id, false) // memory already gone with the crash
		st.sr.faults.EvictedVMs++

		target := -1
		if st.sdp != nil && st.sdp.dp != nil {
			if s2, ok := st.sdp.eng.Scorer().PickRecovery(cvm,
				st.sdp.eng.Config().PressureFrac); ok {
				if err := st.sh.sched.PlaceAt(cvm, s2); err != nil {
					return err
				}
				target = s2
			}
		} else if s2, ok := st.sh.sched.Place(cvm); ok {
			target = s2
		}
		if target < 0 {
			st.sr.faults.LostVMs++
			end := rec.vm.End
			if end > st.tr.Horizon {
				end = st.tr.Horizon
			}
			st.sr.faults.DowntimeTicks += end - t
			continue
		}

		// Re-admitted: mirror addImmigrated's bookkeeping — a fresh
		// unsynced record carrying the change-point cursor, folded into
		// the demand totals by this tick's delta pass.
		if st.vmCount[target] == 0 {
			st.used++
		}
		st.vmCount[target]++
		st.pos[id] = len(st.recs)
		st.recs = append(st.recs, placedRec{
			vm: rec.vm, srv: target,
			changes: rec.changes, nextCh: rec.nextCh,
		})
		if st.queue != nil {
			st.slots = append(st.slots, id)
			st.touchServer(target)
		}
		if st.sdp != nil && st.sdp.dp != nil {
			sizeGB, paGB := core.MemoryProfile(cvm)
			if err := st.sdp.dp.Attach(target, id, sizeGB, paGB); err != nil {
				return err
			}
		}
		st.sr.faults.ReplacedVMs++
		st.sr.faults.DowntimeTicks++
	}
	return nil
}

// recoverServer returns a crashed server to service, empty: the
// scheduler accepts placements on it again.
func (st *shardState) recoverServer(srv int) {
	if st.sh.sched == nil || srv < 0 || srv >= len(st.servers) || !st.sh.sched.Down(srv) {
		return
	}
	st.sh.sched.SetDown(srv, false)
	st.sr.faults.Recoveries++
}
