package sim

import (
	"reflect"
	"testing"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
)

// dataPlaneConfig returns a configuration whose data plane actually
// contends: P50 guaranteed portions (AggrCoach) spill working sets into
// the oversubscribed region and a 2% pool exhausts under them.
func dataPlaneConfig(t *testing.T, policy agent.Policy) Config {
	t.Helper()
	tr, _ := fixtures(t)
	cfg := ConfigForPolicy(scheduler.PolicyAggrCoach)
	cfg.TrainUpTo = tr.Horizon / 2
	cfg.DataPlane = true
	cfg.MitigationPolicy = policy
	cfg.DataPlanePoolFrac = 0.02
	cfg.DataPlaneUnallocFrac = 0.02
	return cfg
}

// sharedModel trains one predictor for a config so repeated runs isolate
// the replay engine.
func sharedModel(t *testing.T, cfg Config) *predict.LongTerm {
	t.Helper()
	tr, _ := fixtures(t)
	ltCfg := cfg.LongTerm
	ltCfg.Windows = cfg.Windows
	ltCfg.Percentile = cfg.Percentile
	model, err := predict.TrainLongTerm(tr, cfg.TrainUpTo, ltCfg)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// TestDataPlaneDeterministicAcrossWorkers extends the engine's hard
// requirement to the memory data plane: the merged Result — including
// every DataPlaneResult field (volumes, counters, first-mitigation ticks
// and the latency histogram) — must be byte-identical whether shards
// replay serially or on any number of workers.
func TestDataPlaneDeterministicAcrossWorkers(t *testing.T) {
	tr, fleet := fixtures(t)
	cfg := dataPlaneConfig(t, agent.PolicyExtend)
	cfg.Model = sharedModel(t, cfg)

	var base *Result
	for _, workers := range []int{1, 2, 8} {
		cfg.Workers = workers
		res, err := Run(tr, fleet, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.DataPlane == nil {
			t.Fatal("DataPlane result missing")
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Errorf("Workers=%d result differs from Workers=1:\n  base dp: %+v\n  got dp:  %+v",
				workers, base.DataPlane, res.DataPlane)
		}
	}
}

// TestDataPlanePolicies checks the fleet-scale mitigation ladder's
// observable counters per policy: None never mitigates but thrashes;
// Trim only trims; Extend and Migrate escalate within their lane.
func TestDataPlanePolicies(t *testing.T) {
	tr, fleet := fixtures(t)
	results := make(map[agent.Policy]*DataPlaneResult)
	var model *predict.LongTerm
	for _, p := range []agent.Policy{agent.PolicyNone, agent.PolicyTrim, agent.PolicyExtend, agent.PolicyMigrate} {
		cfg := dataPlaneConfig(t, p)
		if model == nil {
			model = sharedModel(t, cfg)
		}
		cfg.Model = model
		res, err := Run(tr, fleet, cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		dp := res.DataPlane
		if dp == nil {
			t.Fatalf("%s: no data-plane result", p)
		}
		if dp.Policy != p {
			t.Errorf("result policy %s, want %s", dp.Policy, p)
		}
		if dp.VMTicks == 0 || dp.Servers == 0 {
			t.Fatalf("%s: data plane did no work: %+v", p, dp)
		}
		results[p] = dp
	}

	none := results[agent.PolicyNone]
	if none.Counters.Trims+none.Counters.Extends+none.Counters.Migrations != 0 {
		t.Error("None policy must not mitigate")
	}
	if none.Totals.StolenGB <= 0 {
		t.Error("None policy under pool pressure must steal working-set memory")
	}
	if none.Counters.Contentions == 0 {
		t.Error("None policy never detected contention despite a 2% pool")
	}

	trim := results[agent.PolicyTrim]
	if trim.Counters.Trims == 0 || trim.Totals.TrimmedGB <= 0 {
		t.Error("Trim policy never trimmed")
	}
	if trim.Counters.Extends+trim.Counters.Migrations != 0 {
		t.Error("Trim policy must not escalate")
	}
	if trim.Totals.StolenGB >= none.Totals.StolenGB {
		t.Errorf("trimming did not reduce stolen memory: %v >= %v",
			trim.Totals.StolenGB, none.Totals.StolenGB)
	}

	extend := results[agent.PolicyExtend]
	if extend.Counters.Extends == 0 || extend.Totals.ExtendedGB <= 0 {
		t.Error("Extend policy never extended")
	}
	if extend.Counters.Migrations != 0 {
		t.Error("Extend policy must not migrate")
	}
	if extend.Counters.Trims == 0 {
		t.Error("Extend policy must still trim first")
	}

	migrate := results[agent.PolicyMigrate]
	if migrate.Counters.Migrations == 0 || migrate.Totals.MigratedGB <= 0 {
		t.Error("Migrate policy never migrated")
	}
	if migrate.Counters.Extends != 0 {
		t.Error("Migrate policy must not extend")
	}

	// Latency accounting: histograms populated, percentiles ordered.
	for p, dp := range results {
		if dp.AccessP50Ns() <= 0 || dp.AccessP99Ns() < dp.AccessP50Ns() || dp.AccessMaxNs() < dp.AccessP99Ns() {
			t.Errorf("%s: latency percentiles inconsistent: p50=%v p99=%v max=%v",
				p, dp.AccessP50Ns(), dp.AccessP99Ns(), dp.AccessMaxNs())
		}
		if f := dp.SoftFaultFrac(); f < 0 || f > 1 {
			t.Errorf("%s: soft-fault fraction %v", p, f)
		}
	}
}

// TestCrossShardMigrationDeterministicAcrossWorkers extends the
// byte-identity requirement to the sample-boundary exchange: with
// cross-shard migration enabled — shards coupled at every sample
// boundary — the merged Result, including every migration counter, must
// be identical whether shards tick serially or on any number of workers.
// The fixture's single-server clusters leave migrations no same-shard
// target, so the exchange path genuinely runs (asserted below).
func TestCrossShardMigrationDeterministicAcrossWorkers(t *testing.T) {
	tr, fleet := fixtures(t)
	cfg := dataPlaneConfig(t, agent.PolicyMigrate)
	cfg.CrossShardMigration = true
	cfg.Model = sharedModel(t, cfg)

	var base *Result
	for _, workers := range []int{1, 2, 8} {
		cfg.Workers = workers
		res, err := Run(tr, fleet, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Errorf("Workers=%d result differs from Workers=1:\n  base dp: %+v\n  got dp:  %+v",
				workers, base.DataPlane, res.DataPlane)
		}
	}
	if base.DataPlane.CrossShardMigrations == 0 {
		t.Fatal("exchange never re-homed a VM cross-shard: the byte-identity test is vacuous")
	}
	if base.Requested != base.Placed+base.Rejected {
		t.Errorf("accounting broke under migration: requested %d != placed %d + rejected %d",
			base.Requested, base.Placed, base.Rejected)
	}
}

// hotColdFleet engineers the escape-valve scenario: one "hot" cluster
// with a single small-memory server (a pool too small for its tenants'
// working sets) next to a "cold" cluster of large-memory servers with
// room to spare. Same-shard migration has nowhere to go; the cross-shard
// exchange can re-home hot VMs onto the cold pools.
func hotColdFleet() *cluster.Fleet {
	return cluster.NewFleet([]cluster.Config{
		{Name: "hot", Spec: cluster.ServerSpec{Name: "small", Generation: 1,
			Capacity: resources.NewVector(64, 128, 40, 4096)}, Servers: 1},
		{Name: "cold", Spec: cluster.ServerSpec{Name: "big", Generation: 4,
			Capacity: resources.NewVector(320, 4096, 100, 16384)}, Servers: 4},
	})
}

// TestCrossShardRelievesPressure compares the Migrate ladder with and
// without the cross-shard escape valve at equal pool pressure on the
// hot/cold fleet: same-shard mode can only re-land the hot cluster's
// migrations on their contended source (failed migrations), while
// cross-shard mode moves them to pools that can absorb them — so it must
// convert failures into landings and reduce the thrashing signals
// (stolen working-set memory, hard-fault volume).
func TestCrossShardRelievesPressure(t *testing.T) {
	tr, _ := fixtures(t)
	fleet := hotColdFleet()
	cfg := dataPlaneConfig(t, agent.PolicyMigrate)
	cfg.Model = sharedModel(t, cfg)

	same, err := Run(tr, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CrossShardMigration = true
	cross, err := Run(tr, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, cd := same.DataPlane, cross.DataPlane
	if sd.Counters.Migrations == 0 {
		t.Fatal("fixture regression: the hot pool never provoked a migration")
	}
	if sd.CrossShardMigrations != 0 {
		t.Errorf("same-shard run recorded %d cross-shard migrations", sd.CrossShardMigrations)
	}
	if cd.CrossShardMigrations == 0 {
		t.Fatal("cross-shard mode never escaped the shard")
	}
	if cd.FailedMigrations >= sd.FailedMigrations+sd.SameShardMigrations {
		t.Errorf("cross-shard mode failed %d migrations vs %d same-shard landings+failures — escape valve ineffective",
			cd.FailedMigrations, sd.FailedMigrations+sd.SameShardMigrations)
	}
	if cd.Totals.StolenGB > sd.Totals.StolenGB+1e-9 {
		t.Errorf("cross-shard migration stole more working-set memory: %v > %v",
			cd.Totals.StolenGB, sd.Totals.StolenGB)
	}
	if cd.Totals.HardFaultGB > sd.Totals.HardFaultGB+1e-9 {
		t.Errorf("cross-shard migration hard-faulted more: %v > %v",
			cd.Totals.HardFaultGB, sd.Totals.HardFaultGB)
	}
}

// TestDataPlaneRace replays with maximum shard concurrency and the data
// plane enabled so `go test -race ./internal/sim/...` exercises the new
// per-shard tick path.
func TestDataPlaneRace(t *testing.T) {
	tr, fleet := fixtures(t)
	cfg := dataPlaneConfig(t, agent.PolicyMigrate)
	cfg.Workers = fleet.NumClusters()
	res, err := Run(tr, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataPlane == nil || res.DataPlane.VMTicks == 0 {
		t.Fatal("parallel data-plane run did no work")
	}
}

// TestDataPlaneDisabledByDefault pins that plain runs carry no data-plane
// result and pay no data-plane cost path.
func TestDataPlaneDisabledByDefault(t *testing.T) {
	res := runPolicy(t, scheduler.PolicyCoach)
	if res.DataPlane != nil {
		t.Error("DataPlane result must be nil when Config.DataPlane is off")
	}
}

func TestLatencyBucketRoundTrip(t *testing.T) {
	for _, ns := range []float64{1, 50, 100, 140, 2000, 150000, 1e7} {
		b := latencyBucket(ns)
		if b < 0 || b >= latencyBuckets {
			t.Fatalf("bucket %d out of range for %v ns", b, ns)
		}
		// The representative latency is the bucket's lower bound: within
		// one bucket width (2^(1/8)) of the sample and never above it —
		// except in the clamped top bucket, which absorbs every outlier.
		rep := latencyOf(b)
		if ns >= latencyBase && rep > ns {
			t.Errorf("bucket representative %v above sample %v ns", rep, ns)
		}
		if ns >= latencyBase && b < latencyBuckets-1 && rep < ns/1.10 {
			t.Errorf("bucket representative %v too far below %v ns", rep, ns)
		}
	}
	if minTick(-1, 5) != 5 || minTick(3, -1) != 3 || minTick(7, 4) != 4 || minTick(-1, -1) != -1 {
		t.Error("minTick wrong")
	}
}
