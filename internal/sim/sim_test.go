package sim

import (
	"testing"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/trace"
)

var (
	simTrace *trace.Trace
	simFleet *cluster.Fleet
)

func fixtures(t *testing.T) (*trace.Trace, *cluster.Fleet) {
	t.Helper()
	if simTrace == nil {
		cfg := trace.DefaultGenConfig()
		cfg.VMs = 250
		cfg.Subscriptions = 25
		tr, err := trace.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		simTrace = tr
		simFleet = cluster.NewFleet(cluster.DefaultClusters(1))
	}
	return simTrace, simFleet
}

func TestRunValidation(t *testing.T) {
	tr, fleet := fixtures(t)
	cfg := DefaultConfig()
	cfg.TrainUpTo = 0
	if _, err := Run(tr, fleet, cfg); err == nil {
		t.Error("zero TrainUpTo must fail")
	}
	cfg.TrainUpTo = tr.Horizon + 1
	if _, err := Run(tr, fleet, cfg); err == nil {
		t.Error("TrainUpTo beyond horizon must fail")
	}
	cfg = DefaultConfig()
	cfg.TrainUpTo = tr.Horizon / 2
	bad := &cluster.Fleet{
		Clusters: cluster.DefaultClusters(1)[:2],
		Servers:  []cluster.Server{{ID: 0, Cluster: 5, Spec: cluster.Generations[0]}},
	}
	if _, err := Run(tr, bad, cfg); err == nil {
		t.Error("fleet with out-of-range cluster index must fail, not panic")
	}
}

func runPolicy(t *testing.T, p scheduler.PolicyKind) *Result {
	t.Helper()
	tr, fleet := fixtures(t)
	cfg := ConfigForPolicy(p)
	cfg.TrainUpTo = tr.Horizon / 2
	res, err := Run(tr, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunAccounting(t *testing.T) {
	res := runPolicy(t, scheduler.PolicyCoach)
	if res.Requested != res.Placed+res.Rejected {
		t.Errorf("requested %d != placed %d + rejected %d", res.Requested, res.Placed, res.Rejected)
	}
	if res.Placed == 0 {
		t.Fatal("nothing placed")
	}
	if f := res.PlacedFrac(); f < 0 || f > 1 {
		t.Errorf("placed frac %v", f)
	}
	if f := res.CPUViolationFrac(); f < 0 || f > 1 {
		t.Errorf("cpu violation frac %v", f)
	}
	if f := res.MemViolationFrac(); f < 0 || f > 1 {
		t.Errorf("mem violation frac %v", f)
	}
	if res.UsedServers <= 0 {
		t.Error("no servers used")
	}
}

func TestNonePolicyIsFullyGuaranteed(t *testing.T) {
	res := runPolicy(t, scheduler.PolicyNone)
	if res.Oversubscribed != 0 {
		t.Errorf("None policy oversubscribed %d VMs", res.Oversubscribed)
	}
	if len(res.Outcomes) != 0 {
		t.Error("None policy must produce no prediction outcomes")
	}
	// No oversubscription means backed = allocation: memory demand can
	// never exceed it.
	if res.MemViolations != 0 {
		t.Errorf("None policy has %d memory violations", res.MemViolations)
	}
}

func TestCoachOversubscribes(t *testing.T) {
	res := runPolicy(t, scheduler.PolicyCoach)
	if res.Oversubscribed == 0 {
		t.Error("Coach policy never oversubscribed")
	}
	if len(res.Outcomes) != res.Oversubscribed {
		t.Errorf("outcomes %d != oversubscribed %d", len(res.Outcomes), res.Oversubscribed)
	}
}

func TestCoachPlacesAtLeastAsMuchAsNone(t *testing.T) {
	none := runPolicy(t, scheduler.PolicyNone)
	coach := runPolicy(t, scheduler.PolicyCoach)
	// On this ample fleet both should place everything; the invariant we
	// assert is that oversubscription never reduces capacity.
	if coach.Placed < none.Placed {
		t.Errorf("Coach placed %d < None %d", coach.Placed, none.Placed)
	}
}

func TestOutcomeMetricsBounded(t *testing.T) {
	res := runPolicy(t, scheduler.PolicyCoach)
	for _, k := range []resources.Kind{resources.CPU, resources.Memory} {
		if v := res.MeanOverAllocFrac(k); v < 0 || v > 1 {
			t.Errorf("over-alloc frac %v for %v", v, k)
		}
		if v := res.UnderAllocFrac(k); v < 0 || v > 1 {
			t.Errorf("under-alloc frac %v for %v", v, k)
		}
	}
}

func TestUnderAllocationsAreRare(t *testing.T) {
	// Fig. 19b: the scheduling policy is robust against under-allocations.
	res := runPolicy(t, scheduler.PolicyCoach)
	if len(res.Outcomes) == 0 {
		t.Skip("no oversubscribed VMs")
	}
	if f := res.UnderAllocFrac(resources.Memory); f > 0.25 {
		t.Errorf("memory under-allocation fraction %v too high", f)
	}
}

func TestConfigForPolicy(t *testing.T) {
	if ConfigForPolicy(scheduler.PolicyAggrCoach).Percentile != 50 {
		t.Error("AggrCoach must use P50")
	}
	if ConfigForPolicy(scheduler.PolicyCoach).Percentile != 95 {
		t.Error("Coach must use P95")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runPolicy(t, scheduler.PolicySingle)
	b := runPolicy(t, scheduler.PolicySingle)
	if a.Placed != b.Placed || a.CPUViolations != b.CPUViolations || a.MemViolations != b.MemViolations {
		t.Error("simulation is not deterministic")
	}
}
