package sim

import "sort"

// eventQueue is a calendar (bucket) queue over trace ticks. The replay
// horizon is known up front and small (a two-week trace is 4032 samples),
// so a flat slice of buckets indexed by tick beats a heap: Push is an
// append, PopDue is a slice swap, and there is no comparison cost at all.
//
// Each bucket holds the VM IDs with a pending event at that tick. IDs are
// unique for the lifetime of a run and never reused, which makes the
// shard's pos map a perfect stale-event filter: a popped ID that is no
// longer placed (departed, or emigrated to another shard) is simply
// skipped, so events never need to be cancelled.
//
// Determinism: PopDue returns IDs in ascending order. Combined with
// shards being stepped in index order and the exchange sorting requests
// by (Tick, SrcShard, VMID), the fleet-wide event order is the total
// order (tick, shard, vmID) that PR 5's cross-shard handoff relies on.
type eventQueue struct {
	base     int     // tick of buckets[0]
	buckets  [][]int // buckets[t-base] = VM IDs due at tick t
	freelist [][]int // recycled bucket slices
}

func newEventQueue(base, horizon int) *eventQueue {
	n := horizon - base
	if n < 0 {
		n = 0
	}
	return &eventQueue{base: base, buckets: make([][]int, n)}
}

// Push schedules an event for id at tick. Ticks before base or at/after
// the horizon are dropped: the replay never looks at them.
func (q *eventQueue) Push(tick, id int) {
	i := tick - q.base
	if i < 0 || i >= len(q.buckets) {
		return
	}
	if q.buckets[i] == nil && len(q.freelist) > 0 {
		q.buckets[i] = q.freelist[len(q.freelist)-1]
		q.freelist = q.freelist[:len(q.freelist)-1]
	}
	q.buckets[i] = append(q.buckets[i], id)
}

// PopDue appends the IDs due at tick t to dst in ascending order and
// drains the bucket. The bucket's backing slice is recycled immediately,
// so callers pass a scratch buffer they own (typically reused across
// ticks) rather than aliasing queue storage.
func (q *eventQueue) PopDue(t int, dst []int) []int {
	i := t - q.base
	if i < 0 || i >= len(q.buckets) || len(q.buckets[i]) == 0 {
		return dst
	}
	b := q.buckets[i]
	n := len(dst)
	dst = append(dst, b...)
	q.freelist = append(q.freelist, b[:0])
	q.buckets[i] = nil
	sort.Ints(dst[n:])
	return dst
}

// Len reports the number of pending events (testing helper).
func (q *eventQueue) Len() int {
	n := 0
	for _, b := range q.buckets {
		n += len(b)
	}
	return n
}
