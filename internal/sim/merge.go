package sim

import (
	"sort"
)

// merge folds per-shard results into one fleet-wide Result. It is fully
// deterministic: counters are summed in shard order, the fleet's peak
// occupied-server count is taken over the element-wise sum of the shards'
// per-tick usage (per-shard peaks occur at different ticks and must not be
// added), outcomes are sorted by VMID, and the per-shard data-plane
// aggregates (volumes, counters, latency histograms) are summed in shard
// order too. The output is therefore byte-identical for any worker count.
func merge(cfg Config, shardResults []*shardResult, ticks int) *Result {
	res := &Result{Policy: cfg.Policy}
	if cfg.DataPlane {
		res.DataPlane = newDataPlaneResult(cfg)
	}
	if !cfg.Faults.Empty() {
		res.Faults = &FaultResult{}
	}
	usedByTick := make([]int, ticks)
	for _, sr := range shardResults {
		res.Requested += sr.requested
		res.Placed += sr.placed
		res.Rejected += sr.rejected
		res.Oversubscribed += sr.oversubscribed
		res.ServerTicks += sr.serverTicks
		res.CPUViolations += sr.cpuViolations
		res.MemViolations += sr.memViolations
		for t, u := range sr.usedByTick {
			usedByTick[t] += u
		}
		res.Outcomes = append(res.Outcomes, sr.outcomes...)
		if res.DataPlane != nil && sr.dataPlane != nil {
			res.DataPlane.merge(sr.dataPlane)
		}
		if res.Faults != nil {
			res.Faults.merge(sr.faults)
		}
	}
	for _, u := range usedByTick {
		if u > res.UsedServers {
			res.UsedServers = u
		}
	}
	sort.Slice(res.Outcomes, func(i, j int) bool {
		return res.Outcomes[i].VMID < res.Outcomes[j].VMID
	})
	return res
}
