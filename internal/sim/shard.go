package sim

import (
	"sort"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/trace"
)

// event is one VM arrival or departure in a shard's replay stream.
type event struct {
	sample  int
	arrival bool
	vm      *trace.VM
}

// shard is one independently replayable partition of the simulation: the
// servers of a single cluster plus the event stream of the VMs homed
// there. Clusters never share VMs in the scheduler, so shards exchange no
// state during replay and can run concurrently.
type shard struct {
	index  int
	sched  *scheduler.Scheduler // nil when the cluster has no servers
	events []event
}

// shardResult is the per-shard slice of Result, merged by merge().
type shardResult struct {
	requested      int
	placed         int
	rejected       int
	oversubscribed int
	serverTicks    int
	cpuViolations  int
	memViolations  int
	// usedByTick[t-TrainUpTo] is the shard's occupied-server count at
	// tick t; merge sums these element-wise before taking the fleet peak,
	// since per-shard peaks at different ticks must not be added.
	usedByTick []int
	outcomes   []VMOutcome
	// dataPlane carries the shard's fleet-memory aggregates (nil when
	// Config.DataPlane is off).
	dataPlane *DataPlaneResult
}

// buildShards partitions the fleet into per-cluster shards and routes each
// VM's arrival/departure events to its home cluster's shard. VM cluster
// indices are folded modulo the fleet's cluster count so traces generated
// for the default ten clusters replay on smaller fleets too.
func buildShards(tr *trace.Trace, fleet *cluster.Fleet, cfg Config) ([]*shard, error) {
	groups := fleet.Shards()
	shards := make([]*shard, len(groups))
	for i, servers := range groups {
		sh := &shard{index: i}
		if len(servers) > 0 {
			sched, err := scheduler.NewOverServers(servers, cfg.Windows)
			if err != nil {
				return nil, err
			}
			sh.sched = sched
		}
		shards[i] = sh
	}
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.End <= cfg.TrainUpTo {
			continue
		}
		at := vm.Start
		if at < cfg.TrainUpTo {
			at = cfg.TrainUpTo
		}
		sh := shards[shardIndex(vm, len(shards))]
		sh.events = append(sh.events, event{sample: at, arrival: true, vm: vm})
		sh.events = append(sh.events, event{sample: vm.End, arrival: false, vm: vm})
	}
	for _, sh := range shards {
		evs := sh.events
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].sample != evs[j].sample {
				return evs[i].sample < evs[j].sample
			}
			// Departures before arrivals at the same tick frees capacity first.
			return !evs[i].arrival && evs[j].arrival
		})
	}
	return shards, nil
}

func shardIndex(vm *trace.VM, n int) int {
	c := vm.Cluster % n
	if c < 0 {
		c += n
	}
	return c
}

// placedRec tracks one placed VM's incremental-accounting state.
type placedRec struct {
	vm  *trace.VM
	srv int // index into the shard scheduler's server slice
	// last is the demand vector currently accumulated into the server's
	// running total for this VM.
	last resources.Vector
	// synced is set once last reflects a delta pass; until then the
	// unchanged-sample fast path must not fire (a VM arriving mid-life
	// can have an unchanged but nonzero sample at its arrival tick).
	synced bool
}

// run replays the shard sequentially over the evaluation period. It is the
// single-threaded hot loop; Run schedules many of these on a worker pool.
//
// Contention is accounted incrementally: each placed VM's current demand
// contribution is kept in its record and in a running per-server demand
// vector, updated on arrival/departure and by a per-tick delta pass that
// touches only VMs whose utilization sample changed — O(placed deltas +
// occupied servers) per tick instead of the former O(fleet servers +
// placed) full rebuild. All updates happen in deterministic (event/slice)
// order, so float sums are bit-reproducible across runs and worker counts.
func (sh *shard) run(tr *trace.Trace, model *predict.LongTerm, cfg Config) (*shardResult, error) {
	ticks := tr.Horizon - cfg.TrainUpTo
	sr := &shardResult{usedByTick: make([]int, ticks)}

	var servers []*scheduler.ServerState
	if sh.sched != nil {
		servers = sh.sched.Servers()
	}

	var sdp *shardDataPlane
	if cfg.DataPlane {
		var err error
		if sdp, err = newShardDataPlane(sh, cfg); err != nil {
			return nil, err
		}
	}
	demand := make([]resources.Vector, len(servers))
	vmCount := make([]int, len(servers))
	cpuLimit := make([]float64, len(servers))
	for i, st := range servers {
		cpuLimit[i] = cfg.CPUContentionFrac * st.Server.Capacity()[resources.CPU]
	}

	var (
		recs []placedRec
		zero resources.Vector
	)
	pos := make(map[int]int) // VM ID -> index into recs
	used := 0
	ei := 0
	for t := cfg.TrainUpTo; t < tr.Horizon; t++ {
		for ei < len(sh.events) && sh.events[ei].sample == t {
			ev := sh.events[ei]
			ei++
			if !ev.arrival {
				p, ok := pos[ev.vm.ID]
				if !ok {
					continue // was rejected on arrival
				}
				if sdp != nil && sdp.dp != nil {
					sdp.dp.Detach(ev.vm.ID)
				}
				r := recs[p]
				demand[r.srv] = demand[r.srv].Sub(r.last)
				vmCount[r.srv]--
				if vmCount[r.srv] == 0 {
					used--
					// Reset to cancel residual float drift from the
					// incremental adds and subtracts.
					demand[r.srv] = zero
				}
				sh.sched.Remove(ev.vm.ID)
				last := len(recs) - 1
				recs[p] = recs[last]
				pos[recs[p].vm.ID] = p
				recs = recs[:last]
				delete(pos, ev.vm.ID)
				continue
			}
			sr.requested++
			var pred coachvm.Prediction
			ok := false
			if model != nil {
				pred, ok = model.Predict(tr, ev.vm)
			}
			cvm, err := scheduler.BuildCVM(cfg.Policy, ev.vm.ID, ev.vm.Alloc, pred, ok, cfg.Windows)
			if err != nil {
				return nil, err
			}
			if sh.sched == nil {
				sr.rejected++
				continue
			}
			srv, placedOK := sh.sched.Place(cvm)
			if !placedOK {
				sr.rejected++
				continue
			}
			sr.placed++
			if vmCount[srv] == 0 {
				used++
			}
			vmCount[srv]++
			pos[ev.vm.ID] = len(recs)
			recs = append(recs, placedRec{vm: ev.vm, srv: srv})
			if sdp != nil && sdp.dp != nil {
				err := sdp.dp.Attach(srv, ev.vm.ID,
					cvm.Alloc[resources.Memory], cvm.Guaranteed[resources.Memory])
				if err != nil {
					return nil, err
				}
			}
			if ok && cfg.Policy != scheduler.PolicyNone {
				sr.oversubscribed++
				sr.outcomes = append(sr.outcomes, outcome(ev.vm, cvm, cfg))
			}
		}

		// Delta pass: fold each placed VM's demand change into its
		// server's running total. The same change drives the VM's working
		// set on the data plane, so WSS updates ride the delta fast path.
		for i := range recs {
			r := &recs[i]
			if r.synced && utilUnchanged(r.vm, t) {
				continue
			}
			cur := r.vm.DemandAt(t)
			if cur != r.last {
				demand[r.srv] = demand[r.srv].Add(cur.Sub(r.last))
				r.last = cur
				if sdp != nil && sdp.dp != nil {
					sdp.dp.SetWSS(r.vm.ID, cur[resources.Memory])
				}
			}
			r.synced = true
		}

		if sdp != nil {
			if err := sdp.tick(t - cfg.TrainUpTo); err != nil {
				return nil, err
			}
		}

		sr.usedByTick[t-cfg.TrainUpTo] = used
		for i := range servers {
			if vmCount[i] == 0 {
				continue
			}
			sr.serverTicks++
			if demand[i][resources.CPU] > cpuLimit[i] {
				sr.cpuViolations++
			}
			// Memory contention: utilized memory beyond the physically
			// backed amount pages to disk (§4.3).
			if demand[i][resources.Memory] > servers[i].Pool.Backed()[resources.Memory]+1e-9 {
				sr.memViolations++
			}
		}
	}
	if sdp != nil {
		sr.dataPlane = sdp.result()
	}
	return sr, nil
}

// utilUnchanged reports whether every resource's utilization sample at
// trace tick t equals the previous tick's, in which case the VM's demand —
// and therefore its server's running total — needs no update.
func utilUnchanged(vm *trace.VM, t int) bool {
	i := t - vm.Start
	if i <= 0 {
		return false
	}
	for _, k := range resources.Kinds {
		s := vm.Util[k]
		if i >= len(s) {
			// Outside the recorded series both samples read as zero
			// unless i-1 is the final sample.
			if i-1 < len(s) && s[i-1] != 0 {
				return false
			}
			continue
		}
		if s[i] != s[i-1] {
			return false
		}
	}
	return true
}
