package sim

import (
	"sort"
	"sync/atomic"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/core"
	"github.com/coach-oss/coach/internal/fault"
	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/trace"
)

// event is one VM arrival or departure in a shard's replay stream.
type event struct {
	sample  int
	arrival bool
	vm      *trace.VM
}

// shard is one independently replayable partition of the simulation: the
// servers of a single cluster plus the event stream of the VMs homed
// there. Clusters never share VMs in the scheduler, so shards exchange no
// state while ticking and replay concurrently; with cross-shard migration
// enabled they additionally trade migrated VMs at sample boundaries
// through the deterministic exchange step (docs/DESIGN.md §10).
type shard struct {
	index  int
	sched  *scheduler.Scheduler // nil when the cluster has no servers
	events []event
}

// shardResult is the per-shard slice of Result, merged by merge().
type shardResult struct {
	requested      int
	placed         int
	rejected       int
	oversubscribed int
	serverTicks    int
	cpuViolations  int
	memViolations  int
	// usedByTick[t-TrainUpTo] is the shard's occupied-server count at
	// tick t; merge sums these element-wise before taking the fleet peak,
	// since per-shard peaks at different ticks must not be added.
	usedByTick []int
	outcomes   []VMOutcome
	// dataPlane carries the shard's fleet-memory aggregates (nil when
	// Config.DataPlane is off).
	dataPlane *DataPlaneResult
	// faults accumulates the shard's failure-domain counters (all zero
	// when no fault schedule is active).
	faults FaultResult
}

// buildShards partitions the fleet into per-cluster shards and routes each
// VM's arrival/departure events to its home cluster's shard. VM cluster
// indices are folded modulo the fleet's cluster count so traces generated
// for the default ten clusters replay on smaller fleets too.
func buildShards(tr *trace.Trace, fleet *cluster.Fleet, cfg Config) ([]*shard, error) {
	groups := fleet.Shards()
	shards := make([]*shard, len(groups))
	for i, servers := range groups {
		sh := &shard{index: i}
		if len(servers) > 0 {
			sched, err := scheduler.NewOverServers(servers, cfg.Windows)
			if err != nil {
				return nil, err
			}
			sh.sched = sched
		}
		shards[i] = sh
	}
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.End <= cfg.TrainUpTo {
			continue
		}
		at := vm.Start
		if at < cfg.TrainUpTo {
			at = cfg.TrainUpTo
		}
		sh := shards[shardIndex(vm, len(shards))]
		sh.events = append(sh.events, event{sample: at, arrival: true, vm: vm})
		sh.events = append(sh.events, event{sample: vm.End, arrival: false, vm: vm})
	}
	for _, sh := range shards {
		evs := sh.events
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].sample != evs[j].sample {
				return evs[i].sample < evs[j].sample
			}
			// Departures before arrivals at the same tick frees capacity first.
			return !evs[i].arrival && evs[j].arrival
		})
	}
	return shards, nil
}

func shardIndex(vm *trace.VM, n int) int {
	c := vm.Cluster % n
	if c < 0 {
		c += n
	}
	return c
}

// placedRec tracks one placed VM's incremental-accounting state.
type placedRec struct {
	vm  *trace.VM
	srv int // index into the shard scheduler's server slice
	// last is the demand vector currently accumulated into the server's
	// running total for this VM.
	last resources.Vector
	// synced is set once last reflects a delta pass; until then the
	// unchanged-sample fast path must not fire (a VM arriving mid-life
	// can have an unchanged but nonzero sample at its arrival tick).
	synced bool
	// changes and nextCh drive the event core: changes is the VM's
	// utilization change-point list (trace.VM.ChangePoints, computed once
	// at placement) and nextCh the cursor of the next unscheduled one.
	// Unused by the dense core.
	changes []int32
	nextCh  int
}

// migRequest pairs a cross-shard migration request with the trace VM it
// moves, so the destination shard can keep replaying its utilization
// series and schedule its departure. The change-point cursor rides along
// so the destination's event queue resumes where the source's left off
// without recomputing the list.
type migRequest struct {
	core.MigrationRequest
	vm      *trace.VM
	changes []int32
	nextCh  int
}

// shardState is one shard's live replay state. It persists across ticks
// so Run can advance every shard one 5-minute sample in parallel, apply
// the cross-shard migration exchange at the boundary, and continue —
// replacing the former run-to-completion loop. All mutation is
// single-threaded: inside step by the shard's worker, inside the
// add/remove helpers by the serial exchange.
type shardState struct {
	sh    *shard
	tr    *trace.Trace
	model *predict.LongTerm
	cfg   Config
	sr    *shardResult

	servers  []*scheduler.ServerState
	sdp      *shardDataPlane
	demand   []resources.Vector
	vmCount  []int
	cpuLimit []float64
	recs     []placedRec
	pos      map[int]int // VM ID -> index into recs
	used     int
	ei       int
	zero     resources.Vector

	// extra holds migration-injected departure events for VMs that moved
	// in from another shard, kept sorted by (sample, vm.ID); xi is the
	// cursor. Their original departure events still sit in the source
	// shard's stream, where they no-op (the VM is no longer tracked
	// there).
	extra []event
	xi    int
	// outbox collects this tick's cross-shard migration requests for the
	// sample-boundary exchange.
	outbox []migRequest

	// fEvents is the shard's slice of the compiled fault schedule (nil
	// without faults); fi is the applied-events cursor.
	fEvents []fault.Event
	fi      int

	// Event-core state (nil/unused under EngineDense). queue holds one
	// pending utilization-change event per placed VM; due, slots and
	// slotPos are per-tick scratch — slots collects the VM ids due a
	// demand re-sync (by id, not record index: crash evictions can
	// swap-remove records between a slot's append and the delta pass),
	// slotPos their resolved record positions. Contention is settled
	// incrementally: violCPU / violMem mirror each server's
	// contended-or-not state with running counts, and dirty lists the
	// servers whose demand, backing or population changed this tick and
	// need their flags re-derived.
	queue     *eventQueue
	due       []int
	slots     []int
	slotPos   []int
	violCPU   []bool
	violMem   []bool
	cpuViol   int
	memViol   int
	dirty     []int
	dirtyFlag []bool
}

// newShardState builds a shard's replay state at the start of the
// evaluation period.
func newShardState(sh *shard, tr *trace.Trace, model *predict.LongTerm, cfg Config) (*shardState, error) {
	ticks := tr.Horizon - cfg.TrainUpTo
	st := &shardState{
		sh:    sh,
		tr:    tr,
		model: model,
		cfg:   cfg,
		sr:    &shardResult{usedByTick: make([]int, ticks)},
		pos:   make(map[int]int),
	}
	if sh.sched != nil {
		st.servers = sh.sched.Servers()
	}
	if cfg.DataPlane {
		sdp, err := newShardDataPlane(sh, cfg)
		if err != nil {
			return nil, err
		}
		st.sdp = sdp
	}
	st.demand = make([]resources.Vector, len(st.servers))
	st.vmCount = make([]int, len(st.servers))
	st.cpuLimit = make([]float64, len(st.servers))
	for i, srv := range st.servers {
		st.cpuLimit[i] = cfg.CPUContentionFrac * srv.Server.Capacity()[resources.CPU]
	}
	if cfg.Engine == EngineEvent {
		st.queue = newEventQueue(cfg.TrainUpTo, tr.Horizon)
		st.violCPU = make([]bool, len(st.servers))
		st.violMem = make([]bool, len(st.servers))
		st.dirtyFlag = make([]bool, len(st.servers))
	}
	st.fEvents = cfg.Faults.ForShard(sh.index)
	return st, nil
}

// touchServer marks a server's contention flags stale (event core): its
// demand, backed capacity or population changed this tick.
func (st *shardState) touchServer(srv int) {
	if st.dirtyFlag == nil || st.dirtyFlag[srv] {
		return
	}
	st.dirtyFlag[srv] = true
	st.dirty = append(st.dirty, srv)
}

// scheduleNext queues r's next utilization-change event after tick t.
// The cursor is left on the scheduled change point; when that event fires
// the advance loop steps past it, so each VM has at most one pending
// event. Push bounds-checks the horizon, so late change points of VMs
// outliving the trace drop out naturally.
func (st *shardState) scheduleNext(r *placedRec, t int) {
	rel := t - r.vm.Start
	for r.nextCh < len(r.changes) && int(r.changes[r.nextCh]) <= rel {
		r.nextCh++
	}
	if r.nextCh < len(r.changes) {
		st.queue.Push(r.vm.Start+int(r.changes[r.nextCh]), r.vm.ID)
	}
}

// step replays one evaluation tick t: events, the incremental demand
// delta pass, the data-plane tick with migration resolution, and the
// contention counters. It is the single-threaded hot loop; Run schedules
// one step per shard per tick (or whole shards when no exchange is
// possible) on the worker pool.
//
// Contention is accounted incrementally: each placed VM's current demand
// contribution is kept in its record and in a running per-server demand
// vector, updated on arrival/departure/migration and by a per-tick delta
// pass that touches only VMs whose utilization sample changed — O(placed
// deltas + occupied servers) per tick instead of a full rebuild. All
// updates happen in deterministic (event/slice) order, so float sums are
// bit-reproducible across runs and worker counts.
func (st *shardState) step(t int) error {
	// Fault events first: a server crashing this tick evicts its VMs
	// before the tick's departures fire and its recovered capacity (or
	// its absence) shapes this tick's placements.
	if st.fEvents != nil {
		if err := st.applyFaults(t); err != nil {
			return err
		}
	}
	// Migration-injected departures next: like the event stream's
	// departures-before-arrivals discipline, they free capacity before
	// this tick's arrivals place.
	for st.xi < len(st.extra) && st.extra[st.xi].sample == t {
		ev := st.extra[st.xi]
		st.xi++
		if st.removeTracked(ev.vm.ID, true) {
			st.sh.sched.Remove(ev.vm.ID)
		}
	}
	for st.ei < len(st.sh.events) && st.sh.events[st.ei].sample == t {
		ev := st.sh.events[st.ei]
		st.ei++
		if !ev.arrival {
			// No-op when the VM was rejected on arrival or emigrated to
			// another shard (its departure fires there instead).
			if st.removeTracked(ev.vm.ID, true) {
				st.sh.sched.Remove(ev.vm.ID)
			}
			continue
		}
		st.sr.requested++
		var pred coachvm.Prediction
		ok := false
		if st.model != nil {
			pred, ok = st.model.Predict(st.tr, ev.vm)
		}
		cvm, err := scheduler.BuildCVM(st.cfg.Policy, ev.vm.ID, ev.vm.Alloc, pred, ok, st.cfg.Windows)
		if err != nil {
			return err
		}
		if st.sh.sched == nil {
			st.sr.rejected++
			continue
		}
		srv, placedOK := st.sh.sched.Place(cvm)
		if !placedOK {
			st.sr.rejected++
			continue
		}
		st.sr.placed++
		if st.vmCount[srv] == 0 {
			st.used++
		}
		st.vmCount[srv]++
		st.pos[ev.vm.ID] = len(st.recs)
		st.recs = append(st.recs, placedRec{vm: ev.vm, srv: srv})
		if st.queue != nil {
			// The event core applies the new record's demand this tick via
			// its slot; scheduleNext (in the delta pass) queues the rest of
			// its life.
			st.recs[len(st.recs)-1].changes = ev.vm.ChangePoints()
			st.slots = append(st.slots, ev.vm.ID)
			st.touchServer(srv)
		}
		if st.sdp != nil && st.sdp.dp != nil {
			err := st.sdp.dp.Attach(srv, ev.vm.ID,
				cvm.Alloc[resources.Memory], cvm.Guaranteed[resources.Memory])
			if err != nil {
				return err
			}
		}
		if ok && st.cfg.Policy != scheduler.PolicyNone {
			st.sr.oversubscribed++
			st.sr.outcomes = append(st.sr.outcomes, outcome(ev.vm, cvm, st.cfg))
		}
	}

	if st.queue != nil {
		st.eventDeltaPass(t)
	} else {
		st.denseDeltaPass(t)
	}

	if st.sdp != nil {
		if err := st.dataPlaneTick(t - st.cfg.TrainUpTo); err != nil {
			return err
		}
	}

	st.sr.usedByTick[t-st.cfg.TrainUpTo] = st.used
	if st.queue != nil {
		st.settleContention()
	} else {
		st.denseContention()
	}
	return nil
}

// denseDeltaPass is the reference demand pass: visit every placed VM,
// fold in its demand change if this tick's utilization sample differs.
// The same change drives the VM's working set on the data plane, so WSS
// updates ride the delta fast path.
func (st *shardState) denseDeltaPass(t int) {
	for i := range st.recs {
		r := &st.recs[i]
		if r.synced && utilUnchanged(r.vm, t) {
			continue
		}
		cur := r.vm.DemandAt(t)
		if cur != r.last {
			st.demand[r.srv] = st.demand[r.srv].Add(cur.Sub(r.last))
			r.last = cur
			if st.sdp != nil && st.sdp.dp != nil {
				st.sdp.dp.SetWSS(r.vm.ID, cur[resources.Memory])
			}
		}
		r.synced = true
	}
	if st.cfg.VisitCounter != nil {
		atomic.AddInt64(st.cfg.VisitCounter, int64(len(st.recs)))
	}
}

// eventDeltaPass is the event core's demand pass: only VMs with a
// pending change event (popped from the calendar queue), placed this
// tick, or re-admitted by a crash are visited. Slots carry VM ids and
// resolve to record positions here — a crash eviction swap-removes
// records mid-tick, so positions captured earlier could go stale — then
// apply in ascending position order, the same order the dense pass
// walks st.recs, with the same cur != last guard, so the float
// accumulation into st.demand is bit-identical: every slot the dense
// pass would have updated has a change point here (utilUnchanged ⇔ no
// change point at this offset), and spurious events for unchanged
// demand no-op on the guard. Duplicate positions (a re-admitted VM
// whose stale queue event also popped) are deduped after the sort.
func (st *shardState) eventDeltaPass(t int) {
	st.due = st.queue.PopDue(t, st.due[:0])
	// st.slots already holds this tick's placements and re-admissions.
	st.slots = append(st.slots, st.due...)
	st.slotPos = st.slotPos[:0]
	for _, id := range st.slots {
		// An id missing from pos is a stale event: the VM departed,
		// emigrated to another shard, or was lost to a crash. Ids are
		// never reused, so the map lookup is a complete filter and events
		// need no cancellation.
		if p, ok := st.pos[id]; ok {
			st.slotPos = append(st.slotPos, p)
		}
	}
	sort.Ints(st.slotPos)
	applied, prev := 0, -1
	for _, si := range st.slotPos {
		if si == prev {
			continue
		}
		prev = si
		applied++
		r := &st.recs[si]
		cur := r.vm.DemandAt(t)
		if cur != r.last {
			st.demand[r.srv] = st.demand[r.srv].Add(cur.Sub(r.last))
			r.last = cur
			st.touchServer(r.srv)
			if st.sdp != nil && st.sdp.dp != nil {
				st.sdp.dp.SetWSS(r.vm.ID, cur[resources.Memory])
			}
		}
		r.synced = true
		st.scheduleNext(r, t)
	}
	if st.cfg.VisitCounter != nil {
		atomic.AddInt64(st.cfg.VisitCounter, int64(applied))
	}
	st.slots = st.slots[:0]
}

// denseContention is the reference per-tick contention accounting: scan
// every server.
func (st *shardState) denseContention() {
	for i := range st.servers {
		if st.vmCount[i] == 0 {
			continue
		}
		st.sr.serverTicks++
		if st.demand[i][resources.CPU] > st.cpuLimit[i] {
			st.sr.cpuViolations++
		}
		// Memory contention: utilized memory beyond the physically
		// backed amount pages to disk (§4.3).
		if st.demand[i][resources.Memory] > st.servers[i].Pool.Backed()[resources.Memory]+1e-9 {
			st.sr.memViolations++
		}
	}
}

// settleContention is the event core's contention accounting: servers
// whose demand, backed capacity or population changed this tick were
// marked dirty; re-derive just their contended/not flags and keep
// running counts. An untouched server's inputs are all unchanged —
// every mutation path (delta, placement, removal, migration landing,
// exchange) marks the server — so its flags from the previous tick
// still hold and the counts equal the dense scan's.
func (st *shardState) settleContention() {
	for _, i := range st.dirty {
		st.dirtyFlag[i] = false
		occupied := st.vmCount[i] > 0
		cpu := occupied && st.demand[i][resources.CPU] > st.cpuLimit[i]
		mem := occupied && st.demand[i][resources.Memory] > st.servers[i].Pool.Backed()[resources.Memory]+1e-9
		if cpu != st.violCPU[i] {
			st.violCPU[i] = cpu
			if cpu {
				st.cpuViol++
			} else {
				st.cpuViol--
			}
		}
		if mem != st.violMem[i] {
			st.violMem[i] = mem
			if mem {
				st.memViol++
			} else {
				st.memViol--
			}
		}
	}
	st.dirty = st.dirty[:0]
	st.sr.serverTicks += st.used
	st.sr.cpuViolations += st.cpuViol
	st.sr.memViolations += st.memViol
}

// dataPlaneTick advances the shard's servers one sample and resolves
// completed live migrations through the shard's migration engine:
// same-shard landings move bookkeeping, memory and the incremental
// accounting together; cross-shard requests go to the outbox for the
// sample-boundary exchange. t is the 0-based evaluation tick.
func (st *shardState) dataPlaneTick(t int) error {
	s := st.sdp
	if s.dp == nil {
		return nil
	}
	frames, completed, err := s.dp.Tick(dpTickSeconds)
	if err != nil {
		return err
	}
	if s.sparse {
		s.observeSparse(frames)
	} else {
		s.res.observe(frames)
	}
	plans, reqs, err := s.eng.Resolve(t, completed)
	if err != nil {
		return err
	}
	for _, p := range plans {
		st.applyPlan(p)
	}
	for _, r := range reqs {
		rec := &st.recs[st.pos[r.VMID]]
		st.outbox = append(st.outbox, migRequest{
			MigrationRequest: r,
			vm:               rec.vm,
			changes:          rec.changes,
			nextCh:           rec.nextCh,
		})
	}
	s.res.mark(t, s.dp.Counters())
	return nil
}

// applyPlan folds a landed migration into the incremental accounting:
// the VM's demand contribution moves from its old server's running total
// to the new one's.
func (st *shardState) applyPlan(p core.MigrationPlan) {
	dp := st.sdp.res
	if p.Relanded {
		dp.FailedMigrations++
		dp.WarmArrivedGB += p.WarmGB
		return
	}
	dp.SameShardMigrations++
	dp.WarmArrivedGB += p.WarmGB
	r := &st.recs[st.pos[p.VMID]]
	st.demand[p.From] = st.demand[p.From].Sub(r.last)
	st.vmCount[p.From]--
	if st.vmCount[p.From] == 0 {
		st.used--
		st.demand[p.From] = st.zero
	}
	if st.vmCount[p.To] == 0 {
		st.used++
	}
	st.vmCount[p.To]++
	st.demand[p.To] = st.demand[p.To].Add(r.last)
	r.srv = p.To
	st.touchServer(p.From)
	st.touchServer(p.To)
}

// removeTracked drops a VM from the incremental accounting (and, when
// detachMemory is set, from the data plane). It returns false when the
// shard does not track the VM — rejected on arrival, or emigrated.
func (st *shardState) removeTracked(vmID int, detachMemory bool) bool {
	p, ok := st.pos[vmID]
	if !ok {
		return false
	}
	if detachMemory && st.sdp != nil && st.sdp.dp != nil {
		st.sdp.dp.Detach(vmID)
	}
	r := st.recs[p]
	st.demand[r.srv] = st.demand[r.srv].Sub(r.last)
	st.vmCount[r.srv]--
	if st.vmCount[r.srv] == 0 {
		st.used--
		// Reset to cancel residual float drift from the incremental adds
		// and subtracts.
		st.demand[r.srv] = st.zero
	}
	st.touchServer(r.srv)
	last := len(st.recs) - 1
	st.recs[p] = st.recs[last]
	st.pos[st.recs[p].vm.ID] = p
	st.recs = st.recs[:last]
	delete(st.pos, vmID)
	return true
}

// addImmigrated registers a cross-shard-migrated VM in this shard's
// accounting after the exchange committed it: a fresh unsynced record
// (the next delta pass folds its demand in) plus an injected departure
// event at the VM's end-of-life.
func (st *shardState) addImmigrated(rq migRequest, server int) {
	if st.vmCount[server] == 0 {
		st.used++
	}
	st.vmCount[server]++
	st.pos[rq.VMID] = len(st.recs)
	st.recs = append(st.recs, placedRec{
		vm: rq.vm, srv: server,
		changes: rq.changes, nextCh: rq.nextCh,
	})
	st.insertExtra(event{sample: rq.vm.End, arrival: false, vm: rq.vm})
	if st.queue != nil {
		// Re-sync on the very next tick — the dense core's unsynced
		// record is picked up by its next full pass; the event core gets
		// the same effect from an explicit event. The fired event's
		// scheduleNext then resumes the carried change-point cursor.
		st.queue.Push(rq.Tick+st.cfg.TrainUpTo+1, rq.VMID)
		st.touchServer(server)
	}
}

// insertExtra queues a migration-injected event, keeping the pending
// suffix sorted by (sample, vm.ID) so replay order stays deterministic.
func (st *shardState) insertExtra(ev event) {
	i := st.xi
	for i < len(st.extra) &&
		(st.extra[i].sample < ev.sample ||
			(st.extra[i].sample == ev.sample && st.extra[i].vm.ID < ev.vm.ID)) {
		i++
	}
	st.extra = append(st.extra, event{})
	copy(st.extra[i+1:], st.extra[i:])
	st.extra[i] = ev
}

// finish seals the shard's result after the last tick.
func (st *shardState) finish() *shardResult {
	if st.sdp != nil {
		st.sr.dataPlane = st.sdp.result()
	}
	return st.sr
}

// utilUnchanged reports whether every resource's utilization sample at
// trace tick t equals the previous tick's, in which case the VM's demand —
// and therefore its server's running total — needs no update.
func utilUnchanged(vm *trace.VM, t int) bool {
	i := t - vm.Start
	if i <= 0 {
		return false
	}
	for _, k := range resources.Kinds {
		s := vm.Util[k]
		if i >= len(s) {
			// Outside the recorded series both samples read as zero
			// unless i-1 is the final sample.
			if i-1 < len(s) && s[i-1] != 0 {
				return false
			}
			continue
		}
		if s[i] != s[i-1] {
			return false
		}
	}
	return true
}
