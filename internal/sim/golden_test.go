package sim

import (
	"bytes"
	"encoding/gob"
	"testing"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/trace"
)

// encodeResult gob-serializes a Result. Result has no maps or
// interfaces, so the encoding is deterministic and byte comparison is
// exact equality — including every float bit pattern.
func encodeResult(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenEquivalence is the wall the event-driven core was rebuilt
// behind: for every scenario preset, the event core's Result must be
// gob-byte-identical to the dense reference core's, at every worker
// count, on both the decoupled replay path (plain scheduler replay, no
// data plane) and the cross-shard-barrier path (data plane + migration
// mitigation + cross-shard exchange over a multi-cluster fleet). Run
// under -race in CI, this also races the event core's per-shard state.
func TestGoldenEquivalence(t *testing.T) {
	for _, name := range scenario.PresetNames {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			full, err := scenario.Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			sp := full.Scaled(250, 25)
			tr, err := trace.GenerateScenario(sp)
			if err != nil {
				t.Fatal(err)
			}

			base := ConfigForPolicy(scheduler.PolicyAggrCoach)
			base.TrainUpTo = tr.Horizon / 2
			// Threading the source spec lets Run compile its faults: section
			// (if any), so the chaos preset pins golden equivalence under an
			// active fault schedule too.
			base.Scenario = sp
			ltCfg := base.LongTerm
			ltCfg.Windows = base.Windows
			ltCfg.Percentile = base.Percentile
			model, err := predict.TrainLongTerm(tr, base.TrainUpTo, ltCfg)
			if err != nil {
				t.Fatal(err)
			}
			base.Model = model

			xshard := base
			xshard.DataPlane = true
			xshard.MitigationPolicy = agent.PolicyMigrate
			xshard.CrossShardMigration = true
			xshard.DataPlanePoolFrac = 0.02
			xshard.DataPlaneUnallocFrac = 0.02

			variants := []struct {
				name string
				cfg  Config
			}{
				{"plain", base},
				{"xshard", xshard},
			}
			for _, v := range variants {
				v := v
				t.Run(v.name, func(t *testing.T) {
					fleet := cluster.NewFleet(cluster.DefaultClusters(2))
					cfg := v.cfg
					cfg.Engine = EngineDense
					cfg.Workers = 1
					dense, err := Run(tr, fleet, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if dense.Requested == 0 || dense.Placed == 0 {
						t.Fatalf("fixture regression: no work done: %+v", summary(dense))
					}
					if len(sp.Faults) > 0 && (dense.Faults == nil || dense.Faults.Crashes == 0) {
						t.Fatalf("fixture regression: fault schedule never fired: %+v", dense.Faults)
					}
					golden := encodeResult(t, dense)
					for _, workers := range []int{1, 2, 8} {
						cfg.Engine = EngineEvent
						cfg.Workers = workers
						ev, err := Run(tr, fleet, cfg)
						if err != nil {
							t.Fatalf("event workers=%d: %v", workers, err)
						}
						if got := encodeResult(t, ev); !bytes.Equal(golden, got) {
							t.Errorf("event core (workers=%d) diverges from dense core:\n  dense: %+v\n  event: %+v",
								workers, summary(dense), summary(ev))
						}
					}
				})
			}
		})
	}
}
