// Package sim is the cluster-scale simulator of §4.1: it replays a VM
// trace against a fleet, runs the production-style scheduler extended with
// Coach's time-window policy, and accounts capacity and contention.
//
// The paper's simulator "assigns VMs to servers by executing the real
// production VM scheduler code on the production VM traces ... Based on
// the VM placements of the simulator, we simulate the resource utilization
// for each server using the 5-minute data and estimate the contention."
// This package follows the same structure with our reimplemented
// scheduler and synthetic traces.
//
// The engine is sharded: the fleet is partitioned by cluster, each VM's
// event stream is routed to its home cluster's shard, and shards replay
// concurrently on a bounded worker pool (Config.Workers) with incremental
// per-server demand accounting inside each shard. Results merge
// deterministically, so output is independent of the worker count. See
// docs/DESIGN.md §6.
package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/coach-oss/coach/internal/agent"
	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/fault"
	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

// Config parameterizes one simulation run.
type Config struct {
	// Policy is the oversubscription policy under test.
	Policy scheduler.PolicyKind
	// Windows is the time-window split (Coach default 6x4h).
	Windows timeseries.Windows
	// Percentile is the guaranteed-portion percentile: 95 for Coach and
	// Single, 50 for AggrCoach (§4.3).
	Percentile float64
	// TrainUpTo is the trace sample that separates the prediction model's
	// training period from the evaluated period (default: day 7).
	TrainUpTo int
	// LongTerm configures predictor training; Windows/Percentile above
	// override its corresponding fields. LongTerm.Forest.Workers sets how
	// many goroutines grow forest trees during training (0 = GOMAXPROCS)
	// without changing the trained model — cmd/coach-sim exposes it as
	// -train-workers.
	LongTerm predict.LongTermConfig
	// CPUContentionFrac: a server tick counts as CPU-contended when
	// utilized CPU demand exceeds this fraction of server capacity
	// (§4.3: "CPU contention occurs when demand exceeds 50% of the
	// server capacity" — the hyperthread-sharing threshold).
	CPUContentionFrac float64
	// Workers bounds how many cluster shards are replayed concurrently.
	// 0 (the default) uses runtime.GOMAXPROCS(0); 1 replays serially.
	// The merged Result is byte-identical for any value.
	Workers int
	// Model optionally supplies a pre-trained long-term predictor to
	// reuse across runs (it must have been trained on the same trace up
	// to TrainUpTo with matching Windows/Percentile). When nil, Run
	// trains its own unless Policy is PolicyNone.
	Model *predict.LongTerm
	// DataPlane enables the per-server memory data plane: every fleet
	// server runs a memsim server plus oversubscription agent, placed VMs'
	// working sets follow their utilization samples, and each shard ticks
	// its servers once per 5-minute sample inside the replay worker pool.
	// Result.DataPlane then carries fleet-wide mitigation metrics, still
	// byte-identical for any Workers value. See docs/DESIGN.md §9.
	DataPlane bool
	// MitigationPolicy and MitigationMode configure the per-server agents
	// when DataPlane is set (§4.4: None/Trim/Extend/Migrate, reactive or
	// proactive).
	MitigationPolicy agent.Policy
	MitigationMode   agent.Mode
	// DataPlanePoolFrac and DataPlaneUnallocFrac override the per-server
	// pool sizing (fractions of memory capacity; 0 = the
	// core.DefaultDataPlaneConfig defaults). Experiments shrink the pool
	// fraction to provoke the contention the mitigation ladder resolves.
	DataPlanePoolFrac    float64
	DataPlaneUnallocFrac float64
	// CrossShardMigration lets completed live migrations escape their
	// home cluster shard: shards tick one sample in parallel, emit
	// migration requests into per-shard outboxes, and a deterministic
	// sample-boundary exchange (requests sorted by (tick, srcShard,
	// vmID)) re-homes VMs — scheduler bookkeeping, memory, and replay
	// accounting together — across shards between samples. Result stays
	// byte-identical for any Workers value. Requires DataPlane; only
	// meaningful with MitigationPolicy Migrate. See docs/DESIGN.md §10.
	CrossShardMigration bool
	// MigrationDirtyFrac and MigrationPressureFrac override the
	// migration engine's defaults (0 = core.DefaultMigrationConfig):
	// the working-set fraction that demand-faults at the target because
	// it was dirtied after the final pre-copy pass, and the pool
	// occupancy above which a server is not a migration target.
	MigrationDirtyFrac    float64
	MigrationPressureFrac float64
	// Scenario, when non-nil, is a declarative workload spec. Run called
	// with a nil trace generates it from the scenario
	// (trace.GenerateScenario), and a zero TrainUpTo then defaults to
	// half the spec's horizon. When both a trace and a Scenario are
	// given, the trace wins — the Scenario is assumed to be its source.
	Scenario *scenario.Spec
	// Faults optionally supplies a pre-compiled fault schedule (see
	// internal/fault). When nil and Config.Scenario declares faults, Run
	// compiles the scenario's faults against the fleet's shard shape, so
	// one spec drives the identical fault schedule here and in a live
	// coachd. Server crash/recover events apply at the top of each
	// evaluation tick in both engines; train-fail skips model training
	// (every admission degrades to the fully-guaranteed best-fit split);
	// serving-only faults (latency, handoff crash points) are ignored.
	// Result.Faults then reports crash/eviction/loss/downtime counters,
	// still byte-identical for any Workers value. See docs/DESIGN.md §13.
	Faults *fault.Schedule
	// Engine selects the replay core. EngineEvent (the zero value)
	// drives each shard from a calendar queue of per-VM utilization
	// change events and skips steady data-plane servers; EngineDense is
	// the reference loop that visits every placed VM and ticks every
	// server each sample. Both produce byte-identical Results — the
	// golden-equivalence tests pin this. See docs/DESIGN.md §12.
	Engine EngineKind
	// VisitCounter, when non-nil, is incremented atomically with the
	// number of placed-VM records each shard tick visits. Benchmarks use
	// it as the machine-independent work metric: the event core's count
	// scales with demand changes, the dense core's with population.
	VisitCounter *int64

	// shards is the fleet's shard count, recorded by Run for the
	// per-shard engine construction.
	shards int
}

// EngineKind selects the simulator replay core.
type EngineKind int

const (
	// EngineEvent is the event-driven core: a per-shard calendar queue
	// schedules one event per VM utilization change point, each tick
	// touches only due VMs, and provably idle data-plane servers reuse
	// their last tick's frame instead of re-simulating.
	EngineEvent EngineKind = iota
	// EngineDense is the reference core: every placed VM is visited and
	// every server fully ticked each sample.
	EngineDense
)

func (e EngineKind) String() string {
	switch e {
	case EngineEvent:
		return "event"
	case EngineDense:
		return "dense"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(e))
	}
}

// ParseEngine converts a string flag into an EngineKind.
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "event":
		return EngineEvent, nil
	case "dense":
		return EngineDense, nil
	default:
		return 0, fmt.Errorf("sim: unknown engine %q (event|dense)", s)
	}
}

// DefaultConfig returns the Coach policy configuration.
func DefaultConfig() Config {
	return Config{
		Policy:            scheduler.PolicyCoach,
		Windows:           timeseries.Windows{PerDay: 6},
		Percentile:        95,
		TrainUpTo:         7 * timeseries.SamplesPerDay,
		LongTerm:          predict.DefaultLongTermConfig(),
		CPUContentionFrac: 0.5,
	}
}

// ConfigForPolicy adapts DefaultConfig to one of the Fig. 20 policies.
func ConfigForPolicy(p scheduler.PolicyKind) Config {
	cfg := DefaultConfig()
	cfg.Policy = p
	if p == scheduler.PolicyAggrCoach {
		cfg.Percentile = 50
	}
	return cfg
}

// VMOutcome records prediction quality for one placed, oversubscribed VM,
// comparing the guaranteed (percentile-based) allocation against the ideal
// allocation — the utilization the VM actually exhibited (Fig. 19).
type VMOutcome struct {
	VMID int
	// OverAllocFrac[k] is the mean over windows of the positive gap
	// between the predicted PX utilization (as allocated, with bucket
	// rounding) and the actual PX utilization, as a fraction of the
	// allocation: resources that could have been saved with an ideal
	// allocation.
	OverAllocFrac resources.Vector
	// UnderAllocated[k] is true when the guaranteed portion (the max of
	// the predicted PX across windows) fell below the actual PX maximum:
	// the misprediction §3.3's design guards against, which requires
	// under-predicting every window's contribution to the maximum.
	UnderAllocated [resources.NumKinds]bool
}

// Result summarizes one run.
type Result struct {
	Policy    scheduler.PolicyKind
	Requested int // VM arrivals during the evaluation period
	Placed    int
	Rejected  int
	// Oversubscribed counts placed VMs that received a non-trivial
	// guaranteed/oversubscribed split.
	Oversubscribed int
	// UsedServers is the peak number of concurrently occupied servers.
	UsedServers int
	// ServerTicks is the number of (used server, 5-minute tick) slots.
	ServerTicks int
	// CPUViolations / MemViolations count contended slots.
	CPUViolations int
	MemViolations int
	Outcomes      []VMOutcome
	// DataPlane aggregates the fleet-wide memory data plane (nil unless
	// Config.DataPlane was set): mitigation and paging volumes, agent
	// counters and the access-latency distribution.
	DataPlane *DataPlaneResult
	// Faults aggregates the failure-domain engine's counters (nil unless
	// a fault schedule was active). See docs/DESIGN.md §13.
	Faults *FaultResult
}

// CPUViolationFrac returns CPU-contended slots as a fraction of slots.
func (r *Result) CPUViolationFrac() float64 { return frac(r.CPUViolations, r.ServerTicks) }

// MemViolationFrac returns memory-contended slots as a fraction of slots.
func (r *Result) MemViolationFrac() float64 { return frac(r.MemViolations, r.ServerTicks) }

// PlacedFrac returns the share of arrivals the fleet could host.
func (r *Result) PlacedFrac() float64 { return frac(r.Placed, r.Requested) }

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// MeanOverAllocFrac averages the over-allocation error across outcomes for
// resource k (Fig. 19a).
func (r *Result) MeanOverAllocFrac(k resources.Kind) float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	var sum float64
	for _, o := range r.Outcomes {
		sum += o.OverAllocFrac[k]
	}
	return sum / float64(len(r.Outcomes))
}

// UnderAllocFrac returns the fraction of oversubscribed VMs whose reserved
// maximum under-ran their actual maximum for resource k (Fig. 19b).
func (r *Result) UnderAllocFrac(k resources.Kind) float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	n := 0
	for _, o := range r.Outcomes {
		if o.UnderAllocated[k] {
			n++
		}
	}
	return float64(n) / float64(len(r.Outcomes))
}

// Run executes one simulation over the evaluation period of tr
// ([cfg.TrainUpTo, horizon)) on the given fleet.
//
// The fleet is partitioned into one shard per cluster (clusters never
// share VMs in the scheduler, so shards are independent), each VM's
// arrival/departure events are routed to its home cluster's shard, and
// shards replay concurrently on a worker pool bounded by cfg.Workers.
// Per-shard results are merged deterministically — the Result (including
// Outcomes order, sorted by VMID) is byte-identical for any worker count.
func Run(tr *trace.Trace, fleet *cluster.Fleet, cfg Config) (*Result, error) {
	if tr == nil {
		if cfg.Scenario == nil {
			return nil, fmt.Errorf("sim: nil trace and no Config.Scenario to generate one from")
		}
		var err error
		if tr, err = trace.GenerateScenario(cfg.Scenario); err != nil {
			return nil, err
		}
		if cfg.TrainUpTo == 0 {
			cfg.TrainUpTo = tr.Horizon / 2
		}
	}
	if cfg.TrainUpTo <= 0 || cfg.TrainUpTo >= tr.Horizon {
		return nil, fmt.Errorf("sim: TrainUpTo %d outside (0,%d)", cfg.TrainUpTo, tr.Horizon)
	}
	if fleet.NumClusters() == 0 {
		return nil, fmt.Errorf("sim: fleet has no clusters")
	}
	if err := fleet.Validate(); err != nil {
		return nil, err
	}

	if cfg.Faults == nil && cfg.Scenario != nil && len(cfg.Scenario.Faults) > 0 {
		groups := fleet.Shards()
		sizes := make([]int, len(groups))
		for i, g := range groups {
			sizes[i] = len(g)
		}
		var err error
		cfg.Faults, err = fault.Compile(cfg.Scenario.Faults, cfg.Scenario.Seed,
			sizes, tr.Horizon-cfg.TrainUpTo)
		if err != nil {
			return nil, err
		}
	}

	model := cfg.Model
	if cfg.Faults.TrainFail() {
		// Injected training failure: the run degrades exactly like a live
		// coachd whose lazy training errored — no model, every VM admitted
		// on its fully-guaranteed best-fit split.
		model = nil
	} else if model == nil && cfg.Policy != scheduler.PolicyNone {
		ltCfg := cfg.LongTerm
		ltCfg.Windows = cfg.Windows
		ltCfg.Percentile = cfg.Percentile
		var err error
		model, err = predict.TrainLongTerm(tr, cfg.TrainUpTo, ltCfg)
		if err != nil {
			return nil, err
		}
	}

	shards, err := buildShards(tr, fleet, cfg)
	if err != nil {
		return nil, err
	}
	cfg.shards = len(shards)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shards) {
		workers = len(shards)
	}

	states := make([]*shardState, len(shards))
	for i, sh := range shards {
		if states[i], err = newShardState(sh, tr, model, cfg); err != nil {
			return nil, err
		}
	}

	// Cross-shard migration couples shards at sample boundaries; without
	// it shards stay closed worlds and replay to completion without
	// barriers. Both paths produce byte-identical Results for any worker
	// count.
	exchanging := cfg.DataPlane && cfg.CrossShardMigration &&
		cfg.MitigationPolicy == agent.PolicyMigrate && len(shards) > 1
	if exchanging {
		err = runExchanging(states, tr, cfg, workers)
	} else {
		err = runDecoupled(states, tr, cfg, workers)
	}
	if err != nil {
		return nil, err
	}

	results := make([]*shardResult, len(states))
	for i, st := range states {
		results[i] = st.finish()
	}
	return merge(cfg, results, tr.Horizon-cfg.TrainUpTo), nil
}

// runDecoupled replays every shard to completion independently on the
// worker pool — the fast path when no inter-shard coupling is possible.
func runDecoupled(states []*shardState, tr *trace.Trace, cfg Config, workers int) error {
	runShard := func(st *shardState) error {
		for t := cfg.TrainUpTo; t < tr.Horizon; t++ {
			if err := st.step(t); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(states))
	if workers <= 1 {
		for i, st := range states {
			errs[i] = runShard(st)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = runShard(states[i])
				}
			}()
		}
		for i := range states {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	return firstErr(errs)
}

// runExchanging advances every shard one 5-minute sample in parallel,
// then applies the cross-shard migration exchange at the sample boundary
// — the ordered-parallelism discipline: compute in parallel, trade state
// only at the barrier, in one deterministic order.
func runExchanging(states []*shardState, tr *trace.Trace, cfg Config, workers int) error {
	errs := make([]error, len(states))
	var wg sync.WaitGroup
	for t := cfg.TrainUpTo; t < tr.Horizon; t++ {
		if workers <= 1 {
			for i, st := range states {
				errs[i] = st.step(t)
			}
		} else {
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(states); i += workers {
						errs[i] = states[i].step(t)
					}
				}(w)
			}
			wg.Wait()
		}
		if err := firstErr(errs); err != nil {
			return err
		}
		if err := exchangeMigrations(states); err != nil {
			return err
		}
	}
	return nil
}

// firstErr returns the lowest-indexed shard's error so failures are
// independent of scheduling order.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// exchangeMigrations is the serial inter-shard apply step: collect every
// shard's outbox, order requests by (tick, srcShard, vmID), and land each
// on the best unpressured best-fit server across all other shards —
// reserve at the destination, release the source, commit the memory,
// move the replay accounting. Requests no shard can take settle back in
// their home shard (least-pressured feasible server, else a warm re-land
// on the source). Serial execution over a sorted order keeps the merged
// Result byte-identical for any worker count.
func exchangeMigrations(states []*shardState) error {
	var reqs []migRequest
	for _, st := range states {
		reqs = append(reqs, st.outbox...)
		st.outbox = st.outbox[:0]
	}
	if len(reqs) == 0 {
		return nil
	}
	sort.SliceStable(reqs, func(i, j int) bool {
		a, b := &reqs[i].MigrationRequest, &reqs[j].MigrationRequest
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		if a.SrcShard != b.SrcShard {
			return a.SrcShard < b.SrcShard
		}
		return a.VMID < b.VMID
	})
	for _, rq := range reqs {
		src := states[rq.SrcShard]
		bestShard, found := -1, false
		var bestCand scheduler.Candidate
		for j, dst := range states {
			if j == rq.SrcShard || dst.sdp == nil || dst.sdp.eng == nil {
				continue
			}
			// Strict > keeps the lowest shard index on score ties.
			if c, ok := dst.sdp.eng.PickInbound(rq.MigrationRequest); ok && (!found || c.Score > bestCand.Score) {
				bestShard, bestCand, found = j, c, true
			}
		}
		if !found {
			plan, err := src.sdp.eng.Settle(rq.MigrationRequest)
			if err != nil {
				return err
			}
			src.applyPlan(plan)
			continue
		}
		dst := states[bestShard]
		if err := dst.sdp.eng.Reserve(rq.MigrationRequest, bestCand.Server); err != nil {
			return err
		}
		src.sdp.eng.ReleaseSource(rq.VMID)
		src.removeTracked(rq.VMID, false) // memory already left with the migration
		plan, err := dst.sdp.eng.CommitInbound(rq.MigrationRequest, bestCand.Server)
		if err != nil {
			return err
		}
		dst.addImmigrated(rq, bestCand.Server)
		src.sdp.res.CrossShardMigrations++
		src.sdp.res.WarmArrivedGB += plan.WarmGB
	}
	return nil
}

// outcome compares a CVM's guaranteed (percentile-based) allocation
// against the VM's actual percentile utilization over its lifetime.
func outcome(vm *trace.VM, cvm *coachvm.CVM, cfg Config) VMOutcome {
	o := VMOutcome{VMID: vm.ID}
	for _, k := range resources.Kinds {
		actualPct := vm.Util[k].WindowPercentile(cfg.Windows, cfg.Percentile)
		var sum float64
		var actualGuar float64
		for t := 0; t < cfg.Windows.PerDay; t++ {
			if d := cvm.Pred.Pct[k][t] - actualPct[t]; d > 0 {
				sum += d
			}
			if actualPct[t] > actualGuar {
				actualGuar = actualPct[t]
			}
		}
		o.OverAllocFrac[k] = sum / float64(cfg.Windows.PerDay)
		if cvm.Pred.PADemandFrac(k) < actualGuar-1e-9 {
			o.UnderAllocated[k] = true
		}
	}
	return o
}
