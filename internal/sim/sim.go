// Package sim is the cluster-scale simulator of §4.1: it replays a VM
// trace against a fleet, runs the production-style scheduler extended with
// Coach's time-window policy, and accounts capacity and contention.
//
// The paper's simulator "assigns VMs to servers by executing the real
// production VM scheduler code on the production VM traces ... Based on
// the VM placements of the simulator, we simulate the resource utilization
// for each server using the 5-minute data and estimate the contention."
// This package follows the same structure with our reimplemented
// scheduler and synthetic traces.
package sim

import (
	"fmt"
	"sort"

	"github.com/coach-oss/coach/internal/cluster"
	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/predict"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/scheduler"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

// Config parameterizes one simulation run.
type Config struct {
	// Policy is the oversubscription policy under test.
	Policy scheduler.PolicyKind
	// Windows is the time-window split (Coach default 6x4h).
	Windows timeseries.Windows
	// Percentile is the guaranteed-portion percentile: 95 for Coach and
	// Single, 50 for AggrCoach (§4.3).
	Percentile float64
	// TrainUpTo is the trace sample that separates the prediction model's
	// training period from the evaluated period (default: day 7).
	TrainUpTo int
	// LongTerm configures predictor training; Windows/Percentile above
	// override its corresponding fields.
	LongTerm predict.LongTermConfig
	// CPUContentionFrac: a server tick counts as CPU-contended when
	// utilized CPU demand exceeds this fraction of server capacity
	// (§4.3: "CPU contention occurs when demand exceeds 50% of the
	// server capacity" — the hyperthread-sharing threshold).
	CPUContentionFrac float64
}

// DefaultConfig returns the Coach policy configuration.
func DefaultConfig() Config {
	return Config{
		Policy:            scheduler.PolicyCoach,
		Windows:           timeseries.Windows{PerDay: 6},
		Percentile:        95,
		TrainUpTo:         7 * timeseries.SamplesPerDay,
		LongTerm:          predict.DefaultLongTermConfig(),
		CPUContentionFrac: 0.5,
	}
}

// ConfigForPolicy adapts DefaultConfig to one of the Fig. 20 policies.
func ConfigForPolicy(p scheduler.PolicyKind) Config {
	cfg := DefaultConfig()
	cfg.Policy = p
	if p == scheduler.PolicyAggrCoach {
		cfg.Percentile = 50
	}
	return cfg
}

// VMOutcome records prediction quality for one placed, oversubscribed VM,
// comparing the guaranteed (percentile-based) allocation against the ideal
// allocation — the utilization the VM actually exhibited (Fig. 19).
type VMOutcome struct {
	VMID int
	// OverAllocFrac[k] is the mean over windows of the positive gap
	// between the predicted PX utilization (as allocated, with bucket
	// rounding) and the actual PX utilization, as a fraction of the
	// allocation: resources that could have been saved with an ideal
	// allocation.
	OverAllocFrac resources.Vector
	// UnderAllocated[k] is true when the guaranteed portion (the max of
	// the predicted PX across windows) fell below the actual PX maximum:
	// the misprediction §3.3's design guards against, which requires
	// under-predicting every window's contribution to the maximum.
	UnderAllocated [resources.NumKinds]bool
}

// Result summarizes one run.
type Result struct {
	Policy    scheduler.PolicyKind
	Requested int // VM arrivals during the evaluation period
	Placed    int
	Rejected  int
	// Oversubscribed counts placed VMs that received a non-trivial
	// guaranteed/oversubscribed split.
	Oversubscribed int
	// UsedServers is the peak number of concurrently occupied servers.
	UsedServers int
	// ServerTicks is the number of (used server, 5-minute tick) slots.
	ServerTicks int
	// CPUViolations / MemViolations count contended slots.
	CPUViolations int
	MemViolations int
	Outcomes      []VMOutcome
}

// CPUViolationFrac returns CPU-contended slots as a fraction of slots.
func (r *Result) CPUViolationFrac() float64 { return frac(r.CPUViolations, r.ServerTicks) }

// MemViolationFrac returns memory-contended slots as a fraction of slots.
func (r *Result) MemViolationFrac() float64 { return frac(r.MemViolations, r.ServerTicks) }

// PlacedFrac returns the share of arrivals the fleet could host.
func (r *Result) PlacedFrac() float64 { return frac(r.Placed, r.Requested) }

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// MeanOverAllocFrac averages the over-allocation error across outcomes for
// resource k (Fig. 19a).
func (r *Result) MeanOverAllocFrac(k resources.Kind) float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	var sum float64
	for _, o := range r.Outcomes {
		sum += o.OverAllocFrac[k]
	}
	return sum / float64(len(r.Outcomes))
}

// UnderAllocFrac returns the fraction of oversubscribed VMs whose reserved
// maximum under-ran their actual maximum for resource k (Fig. 19b).
func (r *Result) UnderAllocFrac(k resources.Kind) float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	n := 0
	for _, o := range r.Outcomes {
		if o.UnderAllocated[k] {
			n++
		}
	}
	return float64(n) / float64(len(r.Outcomes))
}

// Run executes one simulation over the evaluation period of tr
// ([cfg.TrainUpTo, horizon)) on the given fleet.
func Run(tr *trace.Trace, fleet *cluster.Fleet, cfg Config) (*Result, error) {
	if cfg.TrainUpTo <= 0 || cfg.TrainUpTo >= tr.Horizon {
		return nil, fmt.Errorf("sim: TrainUpTo %d outside (0,%d)", cfg.TrainUpTo, tr.Horizon)
	}
	ltCfg := cfg.LongTerm
	ltCfg.Windows = cfg.Windows
	ltCfg.Percentile = cfg.Percentile

	var model *predict.LongTerm
	if cfg.Policy != scheduler.PolicyNone {
		var err error
		model, err = predict.TrainLongTerm(tr, cfg.TrainUpTo, ltCfg)
		if err != nil {
			return nil, err
		}
	}

	sched, err := scheduler.New(fleet, cfg.Windows)
	if err != nil {
		return nil, err
	}

	// Build the event list: VMs live during the evaluation period arrive
	// at max(Start, TrainUpTo) and depart at End.
	type event struct {
		sample  int
		arrival bool
		vm      *trace.VM
	}
	var events []event
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.End <= cfg.TrainUpTo {
			continue
		}
		at := vm.Start
		if at < cfg.TrainUpTo {
			at = cfg.TrainUpTo
		}
		events = append(events, event{sample: at, arrival: true, vm: vm})
		events = append(events, event{sample: vm.End, arrival: false, vm: vm})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].sample != events[j].sample {
			return events[i].sample < events[j].sample
		}
		// Departures before arrivals at the same tick frees capacity first.
		return !events[i].arrival && events[j].arrival
	})

	res := &Result{Policy: cfg.Policy}
	placed := make(map[int]*trace.VM)
	ei := 0
	for t := cfg.TrainUpTo; t < tr.Horizon; t++ {
		for ei < len(events) && events[ei].sample == t {
			ev := events[ei]
			ei++
			if !ev.arrival {
				if _, ok := placed[ev.vm.ID]; ok {
					sched.Remove(ev.vm.ID)
					delete(placed, ev.vm.ID)
				}
				continue
			}
			res.Requested++
			var pred coachvm.Prediction
			ok := false
			if model != nil {
				pred, ok = model.Predict(tr, ev.vm)
			}
			cvm, err := scheduler.BuildCVM(cfg.Policy, ev.vm.ID, ev.vm.Alloc, pred, ok, cfg.Windows)
			if err != nil {
				return nil, err
			}
			if _, placedOK := sched.Place(cvm); placedOK {
				res.Placed++
				placed[ev.vm.ID] = ev.vm
				if ok && cfg.Policy != scheduler.PolicyNone {
					res.Oversubscribed++
					res.Outcomes = append(res.Outcomes, outcome(ev.vm, cvm, cfg))
				}
			} else {
				res.Rejected++
			}
		}
		used := accountContention(sched, placed, t, cfg, res)
		if used > res.UsedServers {
			res.UsedServers = used
		}
	}
	return res, nil
}

// accountContention sums each used server's actual demand at tick t,
// counts CPU/memory violations, and returns the number of occupied
// servers.
func accountContention(s *scheduler.Scheduler, placed map[int]*trace.VM, t int, cfg Config, res *Result) (used int) {
	servers := s.Servers()
	demand := make([]resources.Vector, len(servers))
	active := make([]bool, len(servers))
	for id, vm := range placed {
		idx := s.ServerOf(id)
		if idx < 0 {
			continue
		}
		demand[idx] = demand[idx].Add(vm.DemandAt(t))
		active[idx] = true
	}
	for i, st := range servers {
		if !active[i] {
			continue
		}
		used++
		res.ServerTicks++
		cap := st.Server.Capacity()
		if demand[i][resources.CPU] > cfg.CPUContentionFrac*cap[resources.CPU] {
			res.CPUViolations++
		}
		// Memory contention: utilized memory beyond the physically backed
		// amount pages to disk (§4.3).
		if demand[i][resources.Memory] > st.Pool.Backed()[resources.Memory]+1e-9 {
			res.MemViolations++
		}
	}
	return used
}

// outcome compares a CVM's guaranteed (percentile-based) allocation
// against the VM's actual percentile utilization over its lifetime.
func outcome(vm *trace.VM, cvm *coachvm.CVM, cfg Config) VMOutcome {
	o := VMOutcome{VMID: vm.ID}
	for _, k := range resources.Kinds {
		actualPct := vm.Util[k].WindowPercentile(cfg.Windows, cfg.Percentile)
		var sum float64
		var actualGuar float64
		for t := 0; t < cfg.Windows.PerDay; t++ {
			if d := cvm.Pred.Pct[k][t] - actualPct[t]; d > 0 {
				sum += d
			}
			if actualPct[t] > actualGuar {
				actualGuar = actualPct[t]
			}
		}
		o.OverAllocFrac[k] = sum / float64(cfg.Windows.PerDay)
		if cvm.Pred.PADemandFrac(k) < actualGuar-1e-9 {
			o.UnderAllocated[k] = true
		}
	}
	return o
}
