package sim

import (
	"container/heap"
	"testing"
)

func TestEventQueueBasics(t *testing.T) {
	q := newEventQueue(10, 20)
	q.Push(12, 7)
	q.Push(12, 3)
	q.Push(12, 5)
	q.Push(15, 1)
	// Out-of-range ticks are dropped: the replay never visits them.
	q.Push(9, 99)
	q.Push(20, 99)
	q.Push(-1, 99)
	if n := q.Len(); n != 4 {
		t.Fatalf("Len = %d, want 4", n)
	}
	if got := q.PopDue(11, nil); len(got) != 0 {
		t.Fatalf("PopDue(11) = %v, want empty", got)
	}
	got := q.PopDue(12, nil)
	want := []int{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("PopDue(12) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PopDue(12) = %v, want %v (ascending)", got, want)
		}
	}
	// Draining is destructive and the freelist recycles the bucket.
	if got := q.PopDue(12, nil); len(got) != 0 {
		t.Fatalf("second PopDue(12) = %v, want empty", got)
	}
	q.Push(16, 2) // reuses the recycled bucket slice
	if got := q.PopDue(15, nil); len(got) != 1 || got[0] != 1 {
		t.Fatalf("PopDue(15) = %v, want [1]", got)
	}
	if got := q.PopDue(16, nil); len(got) != 1 || got[0] != 2 {
		t.Fatalf("PopDue(16) = %v, want [2]", got)
	}
	if n := q.Len(); n != 0 {
		t.Fatalf("Len after drain = %d, want 0", n)
	}
}

// TestEventQueuePopDueAppends pins the scratch-buffer contract: PopDue
// appends to dst and sorts only the appended region.
func TestEventQueuePopDueAppends(t *testing.T) {
	q := newEventQueue(0, 8)
	q.Push(3, 9)
	q.Push(3, 4)
	dst := []int{100}
	dst = q.PopDue(3, dst)
	want := []int{100, 4, 9}
	if len(dst) != len(want) {
		t.Fatalf("PopDue = %v, want %v", dst, want)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("PopDue = %v, want %v", dst, want)
		}
	}
}

// eventKey is a fleet-wide event identity for the fuzz cross-check.
type eventKey struct{ tick, shard, vm int }

// keyHeap is the reference priority queue: a plain container/heap over
// (tick, shard, vmID) — the total order the deterministic cross-shard
// exchange relies on (requests sorted by (Tick, SrcShard, VMID), shards
// stepped in index order, PopDue ascending by ID).
type keyHeap []eventKey

func (h keyHeap) Len() int { return len(h) }
func (h keyHeap) Less(i, j int) bool {
	if h[i].tick != h[j].tick {
		return h[i].tick < h[j].tick
	}
	if h[i].shard != h[j].shard {
		return h[i].shard < h[j].shard
	}
	return h[i].vm < h[j].vm
}
func (h keyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *keyHeap) Push(x interface{}) { *h = append(*h, x.(eventKey)) }
func (h *keyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// FuzzEventQueue cross-checks the calendar queue's pop order against a
// reference container/heap on random (tick, shard, vmID) keys: draining
// per-shard calendar queues tick-by-tick in shard order must yield
// exactly the heap's (tick, shard, vmID) order, duplicates included.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{5, 1, 200, 5, 0, 7, 5, 1, 3, 63, 3, 255, 0, 2, 0})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1}) // duplicate keys
	f.Fuzz(func(t *testing.T, data []byte) {
		const shards, horizon = 4, 64
		qs := make([]*eventQueue, shards)
		for i := range qs {
			qs[i] = newEventQueue(0, horizon)
		}
		ref := &keyHeap{}
		for ; len(data) >= 3; data = data[3:] {
			k := eventKey{
				tick:  int(data[0]) % horizon,
				shard: int(data[1]) % shards,
				vm:    int(data[2]),
			}
			qs[k.shard].Push(k.tick, k.vm)
			heap.Push(ref, k)
		}
		var scratch []int
		for tick := 0; tick < horizon; tick++ {
			for sh := 0; sh < shards; sh++ {
				scratch = qs[sh].PopDue(tick, scratch[:0])
				for _, id := range scratch {
					if ref.Len() == 0 {
						t.Fatalf("queue popped (%d,%d,%d) but reference heap is empty", tick, sh, id)
					}
					want := heap.Pop(ref).(eventKey)
					got := eventKey{tick: tick, shard: sh, vm: id}
					if got != want {
						t.Fatalf("pop order diverged: queue %+v, heap %+v", got, want)
					}
				}
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("%d events never popped from the calendar queue", ref.Len())
		}
	})
}
