// Package report renders experiment results as aligned ASCII tables and
// Markdown, the output format of the cmd/ tools and EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, stringifying each cell: floats as %.2f (trailing
// zeros trimmed), everything else via %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = cellString(c)
	}
	t.Rows = append(t.Rows, row)
}

func cellString(c any) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return Float(v)
	case float32:
		return Float(float64(v))
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Float formats a float compactly: two decimals, trailing zeros trimmed.
func Float(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Pct formats a percentage with one decimal and a % sign.
func Pct(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) + "%" }

// widths returns the display width of each column.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	widths := t.widths()
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "note: %s\n", t.Note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Markdown writes the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", t.Note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
