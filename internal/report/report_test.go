package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "Sample",
		Note:    "a note",
		Headers: []string{"name", "value"},
	}
	t.AddRow("alpha", 1.5)
	t.AddRow("beta", "raw")
	t.AddRow("gamma", 42)
	return t
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		1.5:     "1.5",
		1.50001: "1.5",
		2:       "2",
		0:       "0",
		-0.25:   "-0.25",
		100.129: "100.13",
	}
	for in, want := range cases {
		if got := Float(in); got != want {
			t.Errorf("Float(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(12.345); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestAddRowStringification(t *testing.T) {
	tab := sample()
	if tab.Rows[0][1] != "1.5" {
		t.Errorf("float cell = %q", tab.Rows[0][1])
	}
	if tab.Rows[1][1] != "raw" {
		t.Errorf("string cell = %q", tab.Rows[1][1])
	}
	if tab.Rows[2][1] != "42" {
		t.Errorf("int cell = %q", tab.Rows[2][1])
	}
}

func TestRender(t *testing.T) {
	var b strings.Builder
	if err := sample().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== Sample ==", "name", "alpha", "1.5", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Separator line present.
	if !strings.Contains(out, "----") {
		t.Error("missing separator")
	}
}

func TestRenderAlignment(t *testing.T) {
	var b strings.Builder
	if err := sample().Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// The value column starts right after the widest first column
	// ("gamma", 5 chars) plus two spaces, on every data row.
	// lines: 0 title, 1 header, 2 separator, 3-5 data.
	offsets := []int{
		strings.Index(lines[3], "1.5"),
		strings.Index(lines[4], "raw"),
		strings.Index(lines[5], "42"),
	}
	for i, off := range offsets {
		if off != 7 {
			t.Errorf("row %d value offset = %d, want 7 (lines: %q)", i, off, lines[3:6])
		}
	}
}

func TestMarkdown(t *testing.T) {
	var b strings.Builder
	if err := sample().Markdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### Sample", "| name | value |", "| --- | --- |", "| alpha | 1.5 |", "*a note*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyTable(t *testing.T) {
	tab := &Table{Headers: []string{"a"}}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := tab.Markdown(&b); err != nil {
		t.Fatal(err)
	}
}
