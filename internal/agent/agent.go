// Package agent implements Coach's per-server oversubscription agent
// (paper §3.4, §3.6): a monitoring component sampling utilization and
// contention metrics every 20 seconds, a two-level prediction component
// (EWMA for the next 20 seconds, LSTM for the next 5 minutes), and a
// mitigation component that triggers trim, pool-extend and live-migration
// actions either reactively (on detected contention) or proactively (on
// predicted contention).
package agent

import (
	"fmt"
	"sort"
	"strings"

	"github.com/coach-oss/coach/internal/memsim"
	"github.com/coach-oss/coach/internal/predict"
)

// Policy selects the mitigation ladder, matching the §4.4 evaluation:
// Trim only trims cold memory; Extend additionally grows the
// oversubscribed pool from unallocated server memory when no cold memory
// remains; Migrate instead live-migrates a VM away when trimming is
// insufficient.
type Policy int

const (
	// PolicyNone performs no mitigation (the §4.4 baseline).
	PolicyNone Policy = iota
	// PolicyTrim trims cold pages to the backing store.
	PolicyTrim
	// PolicyExtend trims, then extends the pool with unallocated memory.
	PolicyExtend
	// PolicyMigrate trims, then live-migrates the heaviest VM away.
	PolicyMigrate
)

func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "None"
	case PolicyTrim:
		return "Trim"
	case PolicyExtend:
		return "Extend"
	case PolicyMigrate:
		return "Migrate"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name (as produced by Policy.String,
// case-insensitively) into a Policy; the cmd tools use it for flags.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range []Policy{PolicyNone, PolicyTrim, PolicyExtend, PolicyMigrate} {
		if strings.EqualFold(s, p.String()) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("agent: unknown mitigation policy %q (None|Trim|Extend|Migrate)", s)
}

// Mode selects when mitigations trigger.
type Mode int

const (
	// Reactive triggers only after the monitoring component detects
	// contention.
	Reactive Mode = iota
	// Proactive additionally triggers when the prediction component
	// forecasts contention.
	Proactive
)

func (m Mode) String() string {
	if m == Reactive {
		return "Reactive"
	}
	return "Proactive"
}

// ParseMode converts a mode name (case-insensitively) into a Mode.
func ParseMode(s string) (Mode, error) {
	switch {
	case strings.EqualFold(s, "Reactive"):
		return Reactive, nil
	case strings.EqualFold(s, "Proactive"):
		return Proactive, nil
	default:
		return 0, fmt.Errorf("agent: unknown mitigation mode %q (Reactive|Proactive)", s)
	}
}

// Config parameterizes the agent.
type Config struct {
	// MonitorIntervalS is the monitoring period (paper: 20 seconds).
	MonitorIntervalS float64
	// Policy and Mode select the mitigation behaviour.
	Policy Policy
	Mode   Mode
	// PoolLowFrac flags contention when free pool memory drops below
	// this fraction of the pool.
	PoolLowFrac float64
	// FaultRateGBs flags contention when backing-store page-in rate
	// exceeds this threshold (the "page read/write operations" signal of
	// §3.4).
	FaultRateGBs float64
	// HeadroomGB is the pool slack mitigations aim to restore.
	HeadroomGB float64
	// EscalateGB is the minimum deficit left after trimming before the
	// agent escalates to Extend or Migrate; tiny residuals are left to
	// demand paging rather than triggering heavyweight actions.
	EscalateGB float64
	// Local configures the two-level predictor.
	Local predict.LocalConfig
}

// DefaultConfig returns the §3.6 settings with a reactive trim-only
// policy.
func DefaultConfig() Config {
	return Config{
		MonitorIntervalS: 20,
		Policy:           PolicyTrim,
		Mode:             Reactive,
		PoolLowFrac:      0.10,
		FaultRateGBs:     0.05,
		HeadroomGB:       1.0,
		EscalateGB:       0.25,
		Local:            predict.DefaultLocalConfig(),
	}
}

// Agent supervises one memsim.Server.
type Agent struct {
	cfg    Config
	server *memsim.Server
	local  *predict.Local

	sinceMonitor float64
	faultAcc     float64
	obsInWindow  int

	prevUsedFrac float64
	havePrev     bool

	// Counters for evaluation.
	ContentionsDetected  int
	ProactiveTriggers    int
	ReactiveTriggers     int
	TrimsStarted         int
	ExtendsStarted       int
	MigrationsStarted    int
	monitorsSinceTrigger int
}

// New builds an agent supervising server.
func New(cfg Config, server *memsim.Server) (*Agent, error) {
	if cfg.MonitorIntervalS <= 0 {
		return nil, fmt.Errorf("agent: non-positive monitor interval %g", cfg.MonitorIntervalS)
	}
	local, err := predict.NewLocal(cfg.Local)
	if err != nil {
		return nil, err
	}
	return &Agent{cfg: cfg, server: server, local: local, monitorsSinceTrigger: 1 << 20}, nil
}

// Local exposes the two-level predictor (for tests and overhead profiling).
func (a *Agent) Local() *predict.Local { return a.local }

// Tick must be called after every memsim Server.Tick with the same dt and
// the returned stats frame; it accumulates monitoring input and, on each
// 20 s monitoring boundary, runs detection, prediction and mitigation.
// The frame's fixed (ascending VM id) order makes the fault accumulation
// bit-reproducible — the former map iteration summed floats in random
// order, so identical runs could diverge in the last bits.
func (a *Agent) Tick(dt float64, frame *memsim.TickFrame) {
	for i := 0; i < frame.Len(); i++ {
		a.faultAcc += frame.At(i).FaultGB
	}
	a.tickCommon(dt)
}

// TickIdle advances the agent without a fresh stats frame — the
// skipped-server path of the sparse data-plane tick. A skippable server's
// cached frame carries exactly-zero FaultGB entries, so omitting the
// fault accumulation is bit-identical to Tick on that frame. Everything
// else — the monitoring clock, the EWMA/LSTM predictor observations, the
// contention detection and the mitigation ladder — runs as usual, so the
// agent's state evolves exactly as under full ticking; a mitigation
// started here puts operations in flight, which the caller must treat as
// the server turning busy again.
func (a *Agent) TickIdle(dt float64) { a.tickCommon(dt) }

// tickCommon is the shared monitoring/prediction/mitigation pass.
func (a *Agent) tickCommon(dt float64) {
	a.sinceMonitor += dt
	if a.sinceMonitor < a.cfg.MonitorIntervalS {
		return
	}
	interval := a.sinceMonitor
	a.sinceMonitor = 0
	a.monitorsSinceTrigger++

	pool := a.server.PoolGB()
	usedFrac := 1.0
	if pool > 0 {
		usedFrac = a.server.PoolUsed() / pool
	}
	faultRate := a.faultAcc / interval
	a.faultAcc = 0

	// Feed the two-level predictor: one observation per 20 s, one window
	// per 5 minutes (15 observations).
	a.local.Observe(usedFrac)
	a.obsInWindow++
	if a.obsInWindow >= 15 {
		a.local.CompleteWindow()
		a.obsInWindow = 0
	}

	highUsed := usedFrac > 1-a.cfg.PoolLowFrac
	contention := highUsed || faultRate > a.cfg.FaultRateGBs
	if contention {
		a.ContentionsDetected++
	}

	trigger := false
	proactive := false
	if contention {
		trigger = true
	} else if a.cfg.Mode == Proactive {
		if a.predictUsedFrac(usedFrac) > 1-a.cfg.PoolLowFrac {
			trigger = true
			proactive = true
		}
	}
	a.prevUsedFrac, a.havePrev = usedFrac, true

	if !trigger || a.cfg.Policy == PolicyNone {
		return
	}
	// Debounce: give an in-flight mitigation one monitoring interval to
	// make progress before piling on.
	if a.monitorsSinceTrigger < 1 {
		return
	}
	a.monitorsSinceTrigger = 0
	if proactive {
		a.ProactiveTriggers++
	} else {
		a.ReactiveTriggers++
	}
	// In proactive mode, size the mitigation for the predicted usage
	// growth over the prediction horizon, not just the current deficit:
	// this is what lets proactive variants resolve contention faster
	// (§4.4, Fig. 21).
	var lookaheadGB float64
	if a.cfg.Mode == Proactive {
		if extra := a.predictUsedFrac(usedFrac) - usedFrac; extra > 0 {
			lookaheadGB = extra * pool
			if lookaheadGB > pool {
				lookaheadGB = pool
			}
		}
	}
	a.mitigate(lookaheadGB)
}

// predictUsedFrac forecasts pool usage five minutes out using the
// two-level predictor; while the LSTM is in its 24-hour warmup the agent
// falls back to linear trend extrapolation of the monitored signal, which
// stands in for the trained LSTM in short experiments.
func (a *Agent) predictUsedFrac(usedFrac float64) float64 {
	if a.local.LSTMReady() {
		return a.local.PredictFiveMin()
	}
	if !a.havePrev {
		return a.local.PredictShort()
	}
	slope := usedFrac - a.prevUsedFrac // per monitoring interval
	horizonIntervals := 300 / a.cfg.MonitorIntervalS
	p := usedFrac + slope*horizonIntervals
	if p < 0 {
		p = 0
	}
	return p
}

// mitigate runs one round of the policy ladder: trim cold memory first;
// when cold memory cannot cover the deficit, escalate to extending the
// pool or migrating the heaviest VM, per the configured policy.
// lookaheadGB inflates the deficit by the predicted near-term growth.
func (a *Agent) mitigate(lookaheadGB float64) {
	deficit := a.deficitGB() + lookaheadGB
	if deficit <= 0 {
		return
	}

	// Trim the largest cold holdings first (§3.4: "the agent first trims
	// cold pages").
	type coldVM struct {
		id   int
		cold float64
	}
	var colds []coldVM
	var totalCold float64
	for _, id := range a.server.VMs() {
		if c := a.server.VM(id).Trimmable(); c > 1e-6 {
			colds = append(colds, coldVM{id, c})
			totalCold += c
		}
	}
	sort.Slice(colds, func(i, j int) bool {
		if colds[i].cold != colds[j].cold {
			return colds[i].cold > colds[j].cold
		}
		return colds[i].id < colds[j].id
	})
	remaining := deficit
	for _, c := range colds {
		if remaining <= 0 {
			break
		}
		amount := c.cold
		if amount > remaining {
			amount = remaining
		}
		a.server.StartTrim(c.id, amount)
		a.TrimsStarted++
		remaining -= amount
	}
	if remaining <= a.cfg.EscalateGB {
		return
	}

	switch a.cfg.Policy {
	case PolicyExtend:
		if a.server.UnallocatedGB() > 1e-6 {
			a.server.StartExtend(remaining)
			a.ExtendsStarted++
		}
	case PolicyMigrate:
		if a.server.MigrationsInFlight() > 0 {
			return // one migration at a time
		}
		if victim, ok := a.pickMigrationVictim(); ok {
			if a.server.StartMigrate(victim) {
				a.MigrationsStarted++
			}
		}
	}
}

// deficitGB estimates how much pool memory must be freed: pending
// working-set demand not yet resident, plus enough headroom to clear the
// contention threshold (otherwise refault cycles restart immediately),
// minus what is already free.
func (a *Agent) deficitGB() float64 {
	var missing float64
	for _, id := range a.server.VMs() {
		missing += a.server.VM(id).Missing()
	}
	// Aim past the detection threshold (1.5x), otherwise the pool idles
	// exactly at the contention boundary and every later wobble
	// re-triggers mitigation.
	head := a.cfg.HeadroomGB
	if h := 1.5 * a.cfg.PoolLowFrac * a.server.PoolGB(); h > head {
		head = h
	}
	d := missing + head - a.server.PoolFree()
	if d < 0 {
		return 0
	}
	return d
}

// pickMigrationVictim chooses the VM whose oversubscribed footprint
// (resident + pending VA demand) is largest — the "busier VMs cause more
// contention" preference of §3.4 — breaking ties toward smaller total
// memory (cheaper to migrate).
func (a *Agent) pickMigrationVictim() (int, bool) {
	best := -1
	bestScore := -1.0
	for _, id := range a.server.VMs() {
		if a.server.Migrating(id) {
			continue
		}
		vm := a.server.VM(id)
		score := vm.ResidentVA() + vm.Missing()
		if score > bestScore || (score == bestScore && best >= 0 && vm.SizeGB < a.server.VM(best).SizeGB) {
			best, bestScore = id, score
		}
	}
	return best, best >= 0
}
