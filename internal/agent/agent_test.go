package agent

import (
	"testing"

	"github.com/coach-oss/coach/internal/memsim"
)

// rig builds a server with one VM whose working set can be driven to
// create pool pressure: pool 4GB, VA demand up to 6GB.
func rig(t *testing.T, cfg Config, poolGB, unallocGB float64) (*Agent, *memsim.Server, *memsim.VMMem) {
	t.Helper()
	srv := memsim.NewServer(memsim.DefaultConfig(), poolGB, unallocGB)
	vm, err := memsim.NewVMMem(1, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddVM(vm); err != nil {
		t.Fatal(err)
	}
	a, err := New(cfg, srv)
	if err != nil {
		t.Fatal(err)
	}
	return a, srv, vm
}

// run drives the rig for seconds, setting the working set per tick.
func run(a *Agent, srv *memsim.Server, vm *memsim.VMMem, seconds int, wss func(t int) float64) error {
	for t := 0; t < seconds; t++ {
		vm.SetWSS(wss(t))
		st, err := srv.Tick(1)
		if err != nil {
			return err
		}
		a.Tick(1, st)
	}
	return nil
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MonitorIntervalS = 0
	srv := memsim.NewServer(memsim.DefaultConfig(), 4, 0)
	if _, err := New(cfg, srv); err == nil {
		t.Error("zero monitor interval must fail")
	}
}

func TestStrings(t *testing.T) {
	if PolicyNone.String() != "None" || PolicyTrim.String() != "Trim" ||
		PolicyExtend.String() != "Extend" || PolicyMigrate.String() != "Migrate" {
		t.Error("policy strings wrong")
	}
	if Reactive.String() != "Reactive" || Proactive.String() != "Proactive" {
		t.Error("mode strings wrong")
	}
}

func TestDetectsContention(t *testing.T) {
	a, srv, vm := rig(t, DefaultConfig(), 4, 0)
	// Fill the pool completely: WSS 4 (PA) + 4 VA.
	if err := run(a, srv, vm, 60, func(int) float64 { return 8.5 }); err != nil {
		t.Fatal(err)
	}
	if a.ContentionsDetected == 0 {
		t.Error("full pool must be detected as contention")
	}
}

func TestNoContentionWhenIdle(t *testing.T) {
	a, srv, vm := rig(t, DefaultConfig(), 4, 0)
	if err := run(a, srv, vm, 60, func(int) float64 { return 3 }); err != nil {
		t.Fatal(err)
	}
	if a.ContentionsDetected != 0 {
		t.Errorf("idle server flagged %d contentions", a.ContentionsDetected)
	}
}

func TestPolicyNoneNeverMitigates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyNone
	a, srv, vm := rig(t, cfg, 4, 4)
	if err := run(a, srv, vm, 120, func(int) float64 { return 9 }); err != nil {
		t.Fatal(err)
	}
	if a.TrimsStarted+a.ExtendsStarted+a.MigrationsStarted != 0 {
		t.Error("None policy must not mitigate")
	}
}

func TestTrimPolicyTrimsColdMemory(t *testing.T) {
	// Two VMs: one holds cold memory, the other grows into the pool.
	// The agent must trim the cold holder's pages to make room.
	cfg := DefaultConfig()
	cfg.Policy = PolicyTrim
	srv := memsim.NewServer(memsim.DefaultConfig(), 5, 0)
	holder, _ := memsim.NewVMMem(1, 16, 4)
	grower, _ := memsim.NewVMMem(2, 16, 4)
	srv.AddVM(holder)
	srv.AddVM(grower)
	a, err := New(cfg, srv)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 150; tick++ {
		switch {
		case tick < 20:
			holder.SetWSS(7) // touch 3GB VA
			grower.SetWSS(4)
		case tick < 40:
			holder.SetWSS(4) // holder's 3GB goes cold
			grower.SetWSS(4)
		default:
			holder.SetWSS(4)
			grower.SetWSS(8) // needs 4GB VA; pool 5 with 3 cold occupied
		}
		st, err := srv.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		a.Tick(1, st)
	}
	if a.TrimsStarted == 0 {
		t.Error("trim policy under pressure with cold memory must trim")
	}
	if a.ExtendsStarted != 0 || a.MigrationsStarted != 0 {
		t.Error("trim policy must not escalate")
	}
}

func TestExtendPolicyEscalates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyExtend
	a, srv, vm := rig(t, cfg, 4, 8)
	// No cold memory: straight to pressure beyond the pool.
	if err := run(a, srv, vm, 120, func(int) float64 { return 10 }); err != nil {
		t.Fatal(err)
	}
	if a.ExtendsStarted == 0 {
		t.Error("extend policy must extend when trimming cannot cover")
	}
	if srv.PoolGB() <= 4 {
		t.Errorf("pool did not grow: %v", srv.PoolGB())
	}
}

func TestMigratePolicyEscalates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyMigrate
	a, srv, vm := rig(t, cfg, 4, 0)
	if err := run(a, srv, vm, 120, func(int) float64 { return 10 }); err != nil {
		t.Fatal(err)
	}
	if a.MigrationsStarted == 0 {
		t.Error("migrate policy must migrate when trimming cannot cover")
	}
	_ = vm
}

func TestMigrateOneAtATime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyMigrate
	srv := memsim.NewServer(memsim.DefaultConfig(), 4, 0)
	for i := 1; i <= 3; i++ {
		vm, _ := memsim.NewVMMem(i, 16, 1)
		srv.AddVM(vm)
	}
	a, err := New(cfg, srv)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 60; tick++ {
		for _, id := range srv.VMs() {
			srv.VM(id).SetWSS(8)
		}
		st, err := srv.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		a.Tick(1, st)
		if srv.MigrationsInFlight() > 1 {
			t.Fatal("more than one concurrent migration")
		}
	}
}

func TestProactiveTriggersOnTrend(t *testing.T) {
	mk := func(mode Mode) (*Agent, int) {
		cfg := DefaultConfig()
		cfg.Policy = PolicyTrim
		cfg.Mode = mode
		a, srv, vm := rig(t, cfg, 8, 0)
		triggeredAt := -1
		// Slow ramp from 4 to 12 over 200s: usage climbs steadily.
		for tick := 0; tick < 200; tick++ {
			vm.SetWSS(4 + 8*float64(tick)/200)
			st, err := srv.Tick(1)
			if err != nil {
				t.Fatal(err)
			}
			a.Tick(1, st)
			if triggeredAt < 0 && a.ReactiveTriggers+a.ProactiveTriggers > 0 {
				triggeredAt = tick
			}
		}
		return a, triggeredAt
	}
	_, reactiveAt := mk(Reactive)
	proactiveAgent, proactiveAt := mk(Proactive)
	if proactiveAt < 0 || reactiveAt < 0 {
		t.Fatalf("triggers never fired: proactive=%d reactive=%d", proactiveAt, reactiveAt)
	}
	if proactiveAt >= reactiveAt {
		t.Errorf("proactive triggered at %ds, not before reactive at %ds", proactiveAt, reactiveAt)
	}
	if proactiveAgent.ProactiveTriggers == 0 {
		t.Error("proactive agent recorded no proactive triggers")
	}
}

func TestMigrationVictimIsHeaviest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyMigrate
	srv := memsim.NewServer(memsim.DefaultConfig(), 6, 0)
	small, _ := memsim.NewVMMem(1, 8, 3)
	big, _ := memsim.NewVMMem(2, 8, 1)
	srv.AddVM(small)
	srv.AddVM(big)
	a, err := New(cfg, srv)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 120 && srv.VM(2) != nil; tick++ {
		small.SetWSS(4) // vaNeed 1
		if srv.VM(2) != nil {
			big.SetWSS(8) // vaNeed 7: the offender
		}
		st, err := srv.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		a.Tick(1, st)
	}
	if srv.VM(2) != nil {
		t.Fatal("offending VM never migrated")
	}
	if srv.VM(1) == nil {
		t.Error("wrong victim: the light VM was migrated")
	}
}

func TestLocalPredictorFed(t *testing.T) {
	a, srv, vm := rig(t, DefaultConfig(), 4, 0)
	// 20s monitor x 15 observations = one 5-minute window per 300s.
	if err := run(a, srv, vm, 301, func(int) float64 { return 6 }); err != nil {
		t.Fatal(err)
	}
	if a.Local().CompletedWindows() != 1 {
		t.Errorf("completed windows = %d, want 1 after 300s", a.Local().CompletedWindows())
	}
}
