package fault

import (
	"reflect"
	"testing"

	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/timeseries"
)

const horizon = 7 * timeseries.SamplesPerDay

func compile(t *testing.T, faults []scenario.Fault, seed int64, shards []int) *Schedule {
	t.Helper()
	s, err := Compile(faults, seed, shards, horizon)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCompileDeterministic: the schedule is a pure function of
// (spec, seed, fleet shape, horizon) — compiling twice yields deep-equal
// schedules, and a different seed moves the chaos events.
func TestCompileDeterministic(t *testing.T) {
	faults := []scenario.Fault{
		{Kind: "crash", Day: 0.25, Cluster: 0, Server: 0, RecoverHours: 6},
		{Kind: "chaos", Day: 0.5, MTBFHours: 8, RecoverHours: 3, Cluster: -1, Server: -1},
	}
	shards := []int{4, 4, 4}
	a := compile(t, faults, 5150, shards)
	b := compile(t, faults, 5150, shards)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatalf("same inputs compiled to different schedules:\n%v\n%v", a.Events(), b.Events())
	}
	if a.Crashes() == 0 {
		t.Fatal("chaos schedule compiled no crashes")
	}
	c := compile(t, faults, 5151, shards)
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatal("different seeds compiled identical chaos schedules")
	}
	// Per-shard views partition the event list.
	n := 0
	for i := range shards {
		n += len(a.ForShard(i))
	}
	if n != len(a.Events()) {
		t.Fatalf("ForShard partitions %d events, Events has %d", n, len(a.Events()))
	}
}

// TestCompilePinnedCrash: a fully pinned crash lands exactly where the
// spec says, with its recovery event RecoverHours later.
func TestCompilePinnedCrash(t *testing.T) {
	s := compile(t, []scenario.Fault{
		{Kind: "crash", Day: 1, Cluster: 1, Server: 2, RecoverHours: 6},
	}, 1, []int{4, 4})
	ev := s.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %v, want crash+recovery", ev)
	}
	wantDown := Event{Tick: timeseries.SamplesPerDay, Shard: 1, Server: 2}
	if ev[0] != wantDown {
		t.Fatalf("crash event %+v, want %+v", ev[0], wantDown)
	}
	wantUp := Event{Tick: timeseries.SamplesPerDay + 6*timeseries.SamplesPerHour, Shard: 1, Server: 2, Up: true}
	if ev[1] != wantUp {
		t.Fatalf("recovery event %+v, want %+v", ev[1], wantUp)
	}
	if s.Crashes() != 1 {
		t.Fatalf("crashes = %d, want 1", s.Crashes())
	}
}

// TestCompileOverlapDropped: a second crash aimed at a server that is
// still down is dropped, so the event stream never crashes a down
// server; with no recovery the server stays down for good.
func TestCompileOverlapDropped(t *testing.T) {
	s := compile(t, []scenario.Fault{
		{Kind: "crash", Day: 1, Cluster: 0, Server: 0, RecoverHours: 24},
		{Kind: "crash", Day: 1.5, Cluster: 0, Server: 0, RecoverHours: 24}, // still down
		{Kind: "crash", Day: 3, Cluster: 0, Server: 0},                     // back up, no recovery
		{Kind: "crash", Day: 4, Cluster: 0, Server: 0, RecoverHours: 1},    // down for good: dropped
	}, 1, []int{2})
	if s.Crashes() != 2 {
		t.Fatalf("crashes = %d, want 2 (overlaps dropped)", s.Crashes())
	}
	down := 0
	for _, e := range s.Events() {
		if !e.Up {
			down++
		}
	}
	if down != 2 {
		t.Fatalf("down events = %d, want 2", down)
	}
}

// TestCompileModuloMapping: cluster/server indexes beyond the fleet wrap
// modulo its shape, mirroring how consumers map home clusters onto
// smaller fleets.
func TestCompileModuloMapping(t *testing.T) {
	s := compile(t, []scenario.Fault{
		{Kind: "crash", Day: 1, Cluster: 7, Server: 9},
	}, 1, []int{3, 3})
	ev := s.Events()
	if len(ev) != 1 || ev[0].Shard != 1 || ev[0].Server != 0 {
		t.Fatalf("events = %v, want shard 7%%2=1 server 9%%3=0", ev)
	}
}

// TestCompileHorizonClipped: events at or past the horizon are dropped,
// and a recovery past the horizon never fires.
func TestCompileHorizonClipped(t *testing.T) {
	s := compile(t, []scenario.Fault{
		{Kind: "crash", Day: 8, Cluster: 0, Server: 0, RecoverHours: 1},    // past horizon
		{Kind: "crash", Day: 6.9, Cluster: 0, Server: 1, RecoverHours: 48}, // recovery past horizon
	}, 1, []int{2})
	if s.Crashes() != 1 {
		t.Fatalf("crashes = %d, want 1", s.Crashes())
	}
	for _, e := range s.Events() {
		if e.Tick >= horizon {
			t.Fatalf("event past horizon survived: %+v", e)
		}
		if e.Up {
			t.Fatalf("recovery past horizon survived: %+v", e)
		}
	}
}

// TestScheduleFlagsAndLatency: train-fail, latency windows and
// handoff-crash points ride the schedule; nil and empty schedules are
// safe everywhere.
func TestScheduleFlagsAndLatency(t *testing.T) {
	s := compile(t, []scenario.Fault{
		{Kind: "train-fail"},
		{Kind: "latency", Day: 1, DurationHours: 2, DelayMs: 40, JitterMs: 10},
		{Kind: "handoff-crash", Phase: "after-release", Nth: 2},
	}, 1, []int{2})
	if !s.TrainFail() {
		t.Fatal("TrainFail not set")
	}
	if s.Empty() {
		t.Fatal("schedule with faults reports Empty")
	}
	start := timeseries.SamplesPerDay
	if _, ok := s.LatencyAt(start - 1); ok {
		t.Fatal("latency before window start")
	}
	w, ok := s.LatencyAt(start)
	if !ok || w.DelayMs != 40 || w.JitterMs != 10 {
		t.Fatalf("LatencyAt(start) = %+v, %v", w, ok)
	}
	if _, ok := s.LatencyAt(start + 2*timeseries.SamplesPerHour); ok {
		t.Fatal("latency at window end (exclusive)")
	}
	hc := s.HandoffCrashes()
	if len(hc) != 1 || hc[0] != (HandoffCrash{Phase: "after-release", Nth: 2}) {
		t.Fatalf("handoff crashes = %v", hc)
	}

	var nilSched *Schedule
	if !nilSched.Empty() || nilSched.Crashes() != 0 || nilSched.TrainFail() ||
		nilSched.Events() != nil || nilSched.ForShard(0) != nil {
		t.Fatal("nil schedule is not inert")
	}
	if _, ok := nilSched.LatencyAt(0); ok {
		t.Fatal("nil schedule has latency")
	}
}

// TestCompileUnknownKind rejects unknown fault kinds.
func TestCompileUnknownKind(t *testing.T) {
	if _, err := Compile([]scenario.Fault{{Kind: "meteor"}}, 1, []int{2}, horizon); err == nil {
		t.Fatal("unknown kind compiled")
	}
}

// TestInjectorCrashPoint: the Nth pass through a phase fires exactly
// once; other phases and other occurrence counts never fire.
func TestInjectorCrashPoint(t *testing.T) {
	in := InjectorForCrashes(HandoffCrash{Phase: "after-reserve", Nth: 2})
	if in.CrashPoint("after-reserve") {
		t.Fatal("fired on first pass, want second")
	}
	if in.CrashPoint("before-pick") {
		t.Fatal("fired on unarmed phase")
	}
	if !in.CrashPoint("after-reserve") {
		t.Fatal("did not fire on second pass")
	}
	if in.CrashPoint("after-reserve") {
		t.Fatal("fired again after firing once")
	}

	var nilIn *Injector
	if nilIn.CrashPoint("after-reserve") || nilIn.Delay(0) != 0 {
		t.Fatal("nil injector is not inert")
	}
	if NewInjector(nil).CrashPoint("after-reserve") {
		t.Fatal("empty injector fired")
	}
}

// TestInjectorDelay: delay is zero outside windows, at least the base
// inside, and bounded by base+jitter.
func TestInjectorDelay(t *testing.T) {
	s := compile(t, []scenario.Fault{
		{Kind: "latency", Day: 0, DurationHours: 1, DelayMs: 20, JitterMs: 5},
	}, 1, []int{2})
	in := NewInjector(s)
	if d := in.Delay(horizon - 1); d != 0 {
		t.Fatalf("delay outside window = %v", d)
	}
	for i := 0; i < 32; i++ {
		d := in.Delay(0)
		if d < 20e6 || d > 25e6 {
			t.Fatalf("delay %v outside [20ms, 25ms]", d)
		}
	}
}
