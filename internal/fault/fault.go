// Package fault compiles a scenario's declarative faults: section into
// a deterministic, seed-driven fault schedule and provides the runtime
// hooks that inject it. One compiled Schedule drives both traffic
// consumers identically: the sharded simulator applies its server
// crash/recover events at the top of each evaluation tick (both
// engines, so golden equivalence holds under faults), and a live coachd
// applies the same events on its data-plane ticks plus the
// serving-only faults (injected request latency, handoff crash points)
// through an Injector. Ticks count from the start of the evaluation
// period, matching scenario.Fault.Day. See docs/DESIGN.md §13.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/timeseries"
)

// Event is one server state change: at Tick (evaluation ticks), the
// server goes down (Up=false: its memory is lost and its VMs must be
// re-admitted elsewhere) or comes back empty (Up=true).
type Event struct {
	Tick   int
	Shard  int
	Server int
	Up     bool
}

// Window is one injected-latency interval over [Start, End) ticks.
type Window struct {
	Start, End int
	DelayMs    float64
	JitterMs   float64
}

// HandoffCrash kills the cross-shard handoff coordinator the Nth time
// (1-based) it passes the named crash point; scenario.HandoffPhases
// lists the points.
type HandoffCrash struct {
	Phase string
	Nth   int
}

// Schedule is a compiled fault plan. The zero value and the nil pointer
// are both valid empty schedules; every method is nil-safe so callers
// can thread an optional *Schedule without guarding.
type Schedule struct {
	events    []Event // sorted by (Tick, Shard, Server), recoveries first
	byShard   [][]Event
	trainFail bool
	latency   []Window
	handoffs  []HandoffCrash
	crashes   int
}

// Compile expands a fault list into a schedule for a concrete fleet:
// shardServers[i] is the server count of shard i, horizonTicks the
// evaluation length (events at or past it are dropped; a recovery
// scheduled past it simply never fires). Seed drives every random
// choice — chaos crash times and seed-picked victims — through the same
// math/rand mixing the trace generator uses, so the same (spec, fleet)
// pair always compiles to the same schedule. A fault cluster outside
// the fleet's shard range wraps modulo the shard count, mirroring how
// the consumers map home clusters onto smaller fleets.
func Compile(faults []scenario.Fault, seed int64, shardServers []int, horizonTicks int) (*Schedule, error) {
	s := &Schedule{}
	if len(faults) == 0 {
		return s, nil
	}
	if len(shardServers) == 0 {
		return nil, fmt.Errorf("fault: no shards to compile against")
	}
	total := 0
	for _, n := range shardServers {
		if n < 1 {
			return nil, fmt.Errorf("fault: empty shard")
		}
		total += n
	}
	rng := rand.New(rand.NewSource(seed ^ int64(0x5ca1ab1e0ddba11)))

	// One candidate crash per victim pick; overlaps (a victim still down)
	// are dropped in time order below, so the surviving events never
	// crash a down server or recover an up one.
	type cand struct {
		tick, shard, server, recover, seq int
	}
	var cands []cand
	seq := 0
	pick := func(f *scenario.Fault) (int, int) {
		shard, server := f.Cluster, f.Server
		if shard < 0 {
			shard = rng.Intn(len(shardServers))
		} else {
			shard %= len(shardServers)
		}
		if server < 0 {
			server = rng.Intn(shardServers[shard])
		} else if server >= shardServers[shard] {
			server %= shardServers[shard]
		}
		return shard, server
	}
	for i := range faults {
		f := &faults[i]
		start := int(f.Day * timeseries.SamplesPerDay)
		recover := hoursToTicks(f.RecoverHours)
		switch f.Kind {
		case "crash":
			shard, server := pick(f)
			cands = append(cands, cand{start, shard, server, recover, seq})
			seq++
		case "chaos":
			end := horizonTicks
			if f.DurationHours > 0 {
				if e := start + hoursToTicks(f.DurationHours); e < end {
					end = e
				}
			}
			mtbf := f.MTBFHours * timeseries.SamplesPerHour
			for t := start + expGap(rng, mtbf); t < end; t += expGap(rng, mtbf) {
				shard, server := pick(f)
				cands = append(cands, cand{t, shard, server, recover, seq})
				seq++
			}
		case "train-fail":
			s.trainFail = true
		case "latency":
			end := horizonTicks
			if f.DurationHours > 0 {
				end = start + hoursToTicks(f.DurationHours)
			}
			s.latency = append(s.latency, Window{Start: start, End: end,
				DelayMs: f.DelayMs, JitterMs: f.JitterMs})
		case "handoff-crash":
			nth := f.Nth
			if nth < 1 {
				nth = 1
			}
			s.handoffs = append(s.handoffs, HandoffCrash{Phase: f.Phase, Nth: nth})
		default:
			return nil, fmt.Errorf("fault: unknown kind %q", f.Kind)
		}
	}

	sort.Slice(cands, func(i, j int) bool {
		if cands[i].tick != cands[j].tick {
			return cands[i].tick < cands[j].tick
		}
		return cands[i].seq < cands[j].seq
	})
	downUntil := map[[2]int]int{} // (shard, server) -> first tick it is up again
	for _, c := range cands {
		if c.tick < 0 || c.tick >= horizonTicks {
			continue
		}
		key := [2]int{c.shard, c.server}
		if until, down := downUntil[key]; down && c.tick < until {
			continue
		}
		s.events = append(s.events, Event{Tick: c.tick, Shard: c.shard, Server: c.server})
		s.crashes++
		if up := c.tick + c.recover; c.recover > 0 && up < horizonTicks {
			downUntil[key] = up
			s.events = append(s.events, Event{Tick: up, Shard: c.shard, Server: c.server, Up: true})
		} else {
			// No recovery, or recovery past the horizon: down for good.
			downUntil[key] = horizonTicks
		}
	}
	sort.Slice(s.events, func(i, j int) bool {
		a, b := s.events[i], s.events[j]
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		if a.Server != b.Server {
			return a.Server < b.Server
		}
		return a.Up && !b.Up // recover before a same-tick re-crash
	})
	s.byShard = make([][]Event, len(shardServers))
	for _, e := range s.events {
		s.byShard[e.Shard] = append(s.byShard[e.Shard], e)
	}
	return s, nil
}

// hoursToTicks converts fault hours to whole evaluation ticks, never
// rounding a positive duration down to zero (a crashed server is down
// for at least one tick).
func hoursToTicks(hours float64) int {
	if hours <= 0 {
		return 0
	}
	t := int(hours * timeseries.SamplesPerHour)
	if t < 1 {
		t = 1
	}
	return t
}

// expGap draws an exponential inter-crash gap with the given mean in
// ticks, at least one tick.
func expGap(rng *rand.Rand, meanTicks float64) int {
	g := int(rng.ExpFloat64()*meanTicks + 0.5)
	if g < 1 {
		g = 1
	}
	return g
}

// Empty reports whether the schedule injects nothing at all.
func (s *Schedule) Empty() bool {
	return s == nil || (len(s.events) == 0 && !s.trainFail &&
		len(s.latency) == 0 && len(s.handoffs) == 0)
}

// Events returns all server events across shards in schedule order.
func (s *Schedule) Events() []Event {
	if s == nil {
		return nil
	}
	return s.events
}

// ForShard returns shard i's server events in tick order; the simulator
// threads one slice per shard so fault application needs no cross-shard
// coordination.
func (s *Schedule) ForShard(i int) []Event {
	if s == nil || i < 0 || i >= len(s.byShard) {
		return nil
	}
	return s.byShard[i]
}

// Crashes returns the number of compiled crash events.
func (s *Schedule) Crashes() int {
	if s == nil {
		return 0
	}
	return s.crashes
}

// TrainFail reports whether model training is scheduled to fail.
func (s *Schedule) TrainFail() bool { return s != nil && s.trainFail }

// HandoffCrashes returns the configured handoff crash points.
func (s *Schedule) HandoffCrashes() []HandoffCrash {
	if s == nil {
		return nil
	}
	return s.handoffs
}

// LatencyAt returns the latency window covering tick, if any.
func (s *Schedule) LatencyAt(tick int) (Window, bool) {
	if s != nil {
		for _, w := range s.latency {
			if tick >= w.Start && tick < w.End {
				return w, true
			}
		}
	}
	return Window{}, false
}

// Injector is the serving-side fault hook: handoff crash points fire by
// occurrence count and injected latency draws per-request jitter. All
// methods are safe for concurrent use and nil-safe, so the serving path
// can call them unconditionally.
type Injector struct {
	mu      sync.Mutex
	counts  map[string]int
	crashes []HandoffCrash
	sched   *Schedule
	rng     *rand.Rand
}

// NewInjector builds an injector over a compiled schedule. Returns a
// usable (never firing) injector for an empty schedule.
func NewInjector(s *Schedule) *Injector {
	return &Injector{
		counts:  make(map[string]int),
		crashes: s.HandoffCrashes(),
		sched:   s,
		rng:     rand.New(rand.NewSource(0x7ea2e57)),
	}
}

// InjectorForCrashes builds an injector that fires only the given
// handoff crash points — the exhaustive crash-point tests use it to arm
// one point at a time without compiling a spec.
func InjectorForCrashes(crashes ...HandoffCrash) *Injector {
	in := NewInjector(nil)
	for _, c := range crashes {
		if c.Nth < 1 {
			c.Nth = 1
		}
		in.crashes = append(in.crashes, c)
	}
	return in
}

// CrashPoint counts one pass through the named crash point and reports
// whether the coordinator dies here: true exactly when some configured
// HandoffCrash matches the phase on this occurrence. A fired point does
// not fire again on later passes, so the recovery sweep can re-drive
// the interrupted handoff through the same point.
func (in *Injector) CrashPoint(phase string) bool {
	if in == nil || len(in.crashes) == 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[phase]++
	n := in.counts[phase]
	for _, c := range in.crashes {
		if c.Phase == phase && c.Nth == n {
			return true
		}
	}
	return false
}

// Delay returns the injected latency for a request arriving at the
// given evaluation tick: the covering window's base delay plus uniform
// jitter. Zero outside latency windows.
func (in *Injector) Delay(tick int) time.Duration {
	if in == nil {
		return 0
	}
	w, ok := in.sched.LatencyAt(tick)
	if !ok {
		return 0
	}
	ms := w.DelayMs
	if w.JitterMs > 0 {
		in.mu.Lock()
		ms += in.rng.Float64() * w.JitterMs
		in.mu.Unlock()
	}
	return time.Duration(ms * float64(time.Millisecond))
}
