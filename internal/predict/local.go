package predict

import (
	"github.com/coach-oss/coach/internal/mllstm"
	"github.com/coach-oss/coach/internal/stats"
)

// LocalConfig configures the per-server two-level predictor.
type LocalConfig struct {
	// Alpha is the EWMA smoothing factor (paper §3.6: 0.5).
	Alpha float64
	// SeqLen is the number of 5-minute windows fed to the LSTM
	// (paper §3.6: five).
	SeqLen int
	// WarmupWindows is the number of completed 5-minute windows before
	// the LSTM's predictions are trusted (paper trains for 24 hours
	// before use; that is 288 windows).
	WarmupWindows int
	// LSTM configures the network.
	LSTM mllstm.Config
}

// DefaultLocalConfig matches §3.6: alpha=0.5, five-window LSTM input,
// 24-hour warmup.
func DefaultLocalConfig() LocalConfig {
	return LocalConfig{
		Alpha:         0.5,
		SeqLen:        5,
		WarmupWindows: 288,
		LSTM:          mllstm.DefaultConfig(),
	}
}

// Local is the per-VM (or per-server) contention predictor: an EWMA over
// 20-second observations for the short horizon and an online LSTM over
// 5-minute window statistics for the 5-minute horizon.
type Local struct {
	cfg  LocalConfig
	ewma *stats.EWMA
	lstm *mllstm.LSTM

	// Rolling history of completed 5-minute windows: [max, avg] pairs.
	hist [][]float64

	// Accumulator for the current 5-minute window.
	curMax   float64
	curSum   float64
	curCount int

	completed int
}

// NewLocal builds the predictor. Invalid config fields fall back to
// defaults.
func NewLocal(cfg LocalConfig) (*Local, error) {
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.5
	}
	if cfg.SeqLen < 1 {
		cfg.SeqLen = 5
	}
	if cfg.LSTM.InputDim != 2 {
		cfg.LSTM.InputDim = 2
	}
	lstm, err := mllstm.New(cfg.LSTM)
	if err != nil {
		return nil, err
	}
	return &Local{cfg: cfg, ewma: stats.NewEWMA(cfg.Alpha), lstm: lstm}, nil
}

// Observe feeds one 20-second utilization observation (a fraction of the
// watched capacity). It updates the EWMA immediately and accumulates the
// current 5-minute window.
func (l *Local) Observe(util float64) {
	l.ewma.Observe(util)
	if util > l.curMax {
		l.curMax = util
	}
	l.curSum += util
	l.curCount++
}

// CompleteWindow closes the current 5-minute window: it trains the LSTM
// online (sequence of the previous SeqLen windows -> this window's max)
// and rolls the history. Call it every 15 observations (5 minutes of
// 20-second samples); calling with no observations is a no-op.
func (l *Local) CompleteWindow() {
	if l.curCount == 0 {
		return
	}
	avg := l.curSum / float64(l.curCount)
	point := []float64{l.curMax, avg}

	if len(l.hist) >= l.cfg.SeqLen {
		seq := l.hist[len(l.hist)-l.cfg.SeqLen:]
		l.lstm.Train(seq, l.curMax)
	}
	l.hist = append(l.hist, point)
	if len(l.hist) > l.cfg.SeqLen {
		l.hist = l.hist[len(l.hist)-l.cfg.SeqLen:]
	}
	l.curMax, l.curSum, l.curCount = 0, 0, 0
	l.completed++
}

// PredictShort forecasts utilization for the next 20 seconds (EWMA).
func (l *Local) PredictShort() float64 { return clamp01(l.ewma.Predict()) }

// PredictFiveMin forecasts the maximum utilization over the next 5
// minutes. Before warmup completes it falls back to the EWMA forecast,
// mirroring the paper's 24-hour LSTM training gate.
func (l *Local) PredictFiveMin() float64 {
	if !l.LSTMReady() || len(l.hist) < l.cfg.SeqLen {
		return l.PredictShort()
	}
	return clamp01(l.lstm.Predict(l.hist))
}

// LSTMReady reports whether the LSTM has trained past its warmup.
func (l *Local) LSTMReady() bool { return l.completed >= l.cfg.WarmupWindows }

// CompletedWindows returns the number of closed 5-minute windows.
func (l *Local) CompletedWindows() int { return l.completed }

// MemoryBytes estimates the predictor's resident size (§4.5: ~25KB).
func (l *Local) MemoryBytes() int {
	return l.lstm.MemoryBytes() + len(l.hist)*2*8 + 64
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
