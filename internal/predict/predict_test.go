package predict

import (
	"math"
	"reflect"
	"testing"

	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

var (
	cachedTrace *trace.Trace
	cachedModel *LongTerm
)

func getTraceAndModel(t *testing.T) (*trace.Trace, *LongTerm) {
	t.Helper()
	if cachedTrace == nil {
		cfg := trace.DefaultGenConfig()
		cfg.VMs = 300
		cfg.Subscriptions = 30
		tr, err := trace.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := TrainLongTerm(tr, tr.Horizon/2, DefaultLongTermConfig())
		if err != nil {
			t.Fatal(err)
		}
		cachedTrace, cachedModel = tr, m
	}
	return cachedTrace, cachedModel
}

func TestTrainLongTermValidation(t *testing.T) {
	tr, _ := getTraceAndModel(t)
	cfg := DefaultLongTermConfig()
	cfg.Percentile = 0
	if _, err := TrainLongTerm(tr, tr.Horizon/2, cfg); err == nil {
		t.Error("zero percentile must fail")
	}
	cfg = DefaultLongTermConfig()
	cfg.Windows = timeseries.Windows{PerDay: 7}
	if _, err := TrainLongTerm(tr, tr.Horizon/2, cfg); err == nil {
		t.Error("invalid windows must fail")
	}
}

func TestModelTrained(t *testing.T) {
	_, m := getTraceAndModel(t)
	if m.TrainRows() == 0 {
		t.Fatal("no training rows")
	}
	if m.MemoryBytes() <= 0 {
		t.Error("model memory must be positive")
	}
}

func TestOwnHistoryPredictionAccuracy(t *testing.T) {
	// For VMs observable during training, the prediction comes from their
	// own history and must cover their actual P95 in most cases.
	tr, m := getTraceAndModel(t)
	covered, total := 0, 0
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.Start > 0 || vm.End < tr.Horizon-1 || !vm.LongRunning() {
			continue
		}
		pred, ok := m.Predict(tr, vm)
		if !ok {
			continue
		}
		total++
		actual := vm.Util[resources.Memory].WindowPercentile(pred.Windows, 95)
		ok2 := true
		var predGuar, actGuar float64
		for tt := range actual {
			if pred.Pct[resources.Memory][tt] > predGuar {
				predGuar = pred.Pct[resources.Memory][tt]
			}
			if actual[tt] > actGuar {
				actGuar = actual[tt]
			}
		}
		if predGuar < actGuar-1e-9 {
			ok2 = false
		}
		if ok2 {
			covered++
		}
	}
	if total == 0 {
		t.Skip("no full-lifetime VMs at this scale")
	}
	if frac := float64(covered) / float64(total); frac < 0.8 {
		t.Errorf("own-history coverage = %.2f, want >= 0.8", frac)
	}
}

func TestFreshVMRequiresSubscriptionHistory(t *testing.T) {
	tr, m := getTraceAndModel(t)
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if vm.Start <= tr.Horizon/2 {
			continue // not fresh
		}
		_, ok := m.Predict(tr, vm)
		if ok && m.HistoryCount(vm.Subscription) < DefaultLongTermConfig().MinHistory {
			t.Fatalf("vm %d predicted without history", vm.ID)
		}
	}
}

func TestPredictionsQuantized(t *testing.T) {
	tr, m := getTraceAndModel(t)
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		pred, ok := m.Predict(tr, vm)
		if !ok {
			continue
		}
		for _, k := range resources.Kinds {
			for _, v := range pred.Max[k] {
				if v < 0 || v > 1 {
					t.Fatalf("prediction %v outside [0,1]", v)
				}
				steps := v / 0.05
				if math.Abs(steps-math.Round(steps)) > 1e-6 {
					t.Fatalf("prediction %v not on a 5%% bucket", v)
				}
			}
		}
		if i > 50 {
			break
		}
	}
}

func TestQuantize(t *testing.T) {
	if got := quantize(0.17, 0); math.Abs(got-0.20) > 1e-12 {
		t.Errorf("quantize(0.17, 0) = %v", got)
	}
	if got := quantize(0.17, 1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("quantize(0.17, 1) = %v", got)
	}
	if got := quantize(0.99, 2); got != 1 {
		t.Errorf("quantize must clamp at 1, got %v", got)
	}
	if got := quantize(-0.5, 0); got != 0 {
		t.Errorf("quantize(-0.5) = %v", got)
	}
}

func TestNewLocalValidation(t *testing.T) {
	cfg := DefaultLocalConfig()
	cfg.Alpha = -1
	l, err := NewLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Observe(0.5)
	if l.PredictShort() != 0.5 {
		t.Error("invalid alpha must default and track first observation")
	}
}

func TestLocalShortPrediction(t *testing.T) {
	l, err := NewLocal(DefaultLocalConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		l.Observe(0.6)
	}
	if got := l.PredictShort(); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("short prediction = %v, want 0.6", got)
	}
}

func TestLocalWindowRolling(t *testing.T) {
	l, _ := NewLocal(DefaultLocalConfig())
	for w := 0; w < 3; w++ {
		for i := 0; i < 15; i++ {
			l.Observe(0.5)
		}
		l.CompleteWindow()
	}
	if l.CompletedWindows() != 3 {
		t.Errorf("completed = %d", l.CompletedWindows())
	}
	// Empty window is a no-op.
	l.CompleteWindow()
	if l.CompletedWindows() != 3 {
		t.Error("empty CompleteWindow must not count")
	}
}

func TestLocalWarmupGating(t *testing.T) {
	cfg := DefaultLocalConfig()
	cfg.WarmupWindows = 2
	l, _ := NewLocal(cfg)
	if l.LSTMReady() {
		t.Error("LSTM ready before warmup")
	}
	for w := 0; w < 2; w++ {
		for i := 0; i < 15; i++ {
			l.Observe(0.4)
		}
		l.CompleteWindow()
	}
	if !l.LSTMReady() {
		t.Error("LSTM not ready after warmup")
	}
}

func TestLocalFiveMinFallsBackBeforeWarmup(t *testing.T) {
	l, _ := NewLocal(DefaultLocalConfig()) // 288-window warmup
	for i := 0; i < 15; i++ {
		l.Observe(0.7)
	}
	l.CompleteWindow()
	if got := l.PredictFiveMin(); math.Abs(got-l.PredictShort()) > 1e-9 {
		t.Errorf("pre-warmup 5-min prediction %v != EWMA %v", got, l.PredictShort())
	}
}

func TestLocalLSTMLearnsLevel(t *testing.T) {
	cfg := DefaultLocalConfig()
	cfg.WarmupWindows = 5
	l, _ := NewLocal(cfg)
	for w := 0; w < 120; w++ {
		for i := 0; i < 15; i++ {
			l.Observe(0.5)
		}
		l.CompleteWindow()
	}
	if got := l.PredictFiveMin(); math.Abs(got-0.5) > 0.15 {
		t.Errorf("LSTM prediction of constant 0.5 = %v", got)
	}
}

func TestLocalMemoryBudget(t *testing.T) {
	l, _ := NewLocal(DefaultLocalConfig())
	// Paper §4.5: each local predictor requires ~25KB.
	if mb := l.MemoryBytes(); mb > 64<<10 {
		t.Errorf("local predictor uses %d bytes, want ~25KB", mb)
	}
}

func TestPredictionClampAgainstMax(t *testing.T) {
	tr, m := getTraceAndModel(t)
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		pred, ok := m.Predict(tr, vm)
		if !ok {
			continue
		}
		for _, k := range resources.Kinds {
			for tt := range pred.Pct[k] {
				if pred.Pct[k][tt] > pred.Max[k][tt]+1e-9 {
					t.Fatalf("pct above max at vm %d", vm.ID)
				}
			}
		}
		if i > 50 {
			break
		}
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	tr, m := getTraceAndModel(t)
	var vms []*trace.VM
	for i := range tr.VMs {
		vms = append(vms, &tr.VMs[i])
		if len(vms) == 120 {
			break
		}
	}
	preds, oks := m.PredictBatch(tr, vms)
	if len(preds) != len(vms) || len(oks) != len(vms) {
		t.Fatalf("batch sizes %d/%d, want %d", len(preds), len(oks), len(vms))
	}
	sawFresh, sawSelf, sawNoHist := false, false, false
	for i, vm := range vms {
		single, ok := m.Predict(tr, vm)
		if ok != oks[i] {
			t.Fatalf("vm %d: batch ok=%v, single ok=%v", vm.ID, oks[i], ok)
		}
		if !ok {
			sawNoHist = true
			continue
		}
		if vm.Start >= tr.Horizon/2 {
			sawFresh = true
		} else {
			sawSelf = true
		}
		for _, k := range resources.Kinds {
			for w := range single.Pct[k] {
				if preds[i].Pct[k][w] != single.Pct[k][w] {
					t.Fatalf("vm %d %v pct window %d: batch %v != single %v",
						vm.ID, k, w, preds[i].Pct[k][w], single.Pct[k][w])
				}
				if preds[i].Max[k][w] != single.Max[k][w] {
					t.Fatalf("vm %d %v max window %d: batch %v != single %v",
						vm.ID, k, w, preds[i].Max[k][w], single.Max[k][w])
				}
			}
		}
	}
	if !sawFresh || !sawSelf {
		t.Errorf("batch did not cover both paths: fresh=%v self=%v noHistory=%v",
			sawFresh, sawSelf, sawNoHist)
	}
}

// TestPredictBatchIntoOverwritesReusedSlices pins the Into form's reuse
// contract: a second batch written into the same slices must leave no
// residue of the first — in particular a VM rejected for insufficient
// history must not inherit the previous occupant's prediction windows.
func TestPredictBatchIntoOverwritesReusedSlices(t *testing.T) {
	tr, m := getTraceAndModel(t)
	var okVMs, noHistVMs []*trace.VM
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		if _, ok := m.Predict(tr, vm); ok {
			okVMs = append(okVMs, vm)
		} else {
			noHistVMs = append(noHistVMs, vm)
		}
	}
	if len(okVMs) == 0 || len(noHistVMs) == 0 {
		t.Skipf("need both predictable and history-poor VMs (%d/%d)", len(okVMs), len(noHistVMs))
	}
	preds := make([]coachvm.Prediction, 1)
	oks := make([]bool, 1)
	m.PredictBatchInto(tr, okVMs[:1], preds, oks)
	if !oks[0] || preds[0].Pct[resources.Memory] == nil {
		t.Fatalf("first batch: ok=%v pred=%+v", oks[0], preds[0])
	}
	m.PredictBatchInto(tr, noHistVMs[:1], preds, oks)
	if oks[0] {
		t.Fatal("history-poor VM predicted ok on reused slice")
	}
	if preds[0].Pct[resources.Memory] != nil || preds[0].Max[resources.Memory] != nil {
		t.Fatal("reused prediction entry kept the previous batch's windows")
	}
	want, _ := m.Predict(tr, okVMs[0])
	m.PredictBatchInto(tr, okVMs[:1], preds, oks)
	if !oks[0] || !reflect.DeepEqual(preds[0], want) {
		t.Fatalf("reused slice batch diverged from Predict: %+v vs %+v", preds[0], want)
	}
}
