// Package predict implements Coach's two predictors:
//
//   - The long-term, cluster-level model (§3.3): a random-forest regressor
//     that predicts per-time-window percentile and maximum utilization for
//     each resource of a new VM from VM- and customer-specific features,
//     quantized to 5% buckets. It feeds the scheduling policy.
//   - The local, server-level two-level model (§3.4): an EWMA forecasting
//     the next 20 seconds and an online-trained LSTM forecasting the next
//     5 minutes. It feeds proactive contention mitigation.
package predict

import (
	"fmt"
	"math"
	"sync"

	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/mlforest"
	"github.com/coach-oss/coach/internal/resources"
	"github.com/coach-oss/coach/internal/stats"
	"github.com/coach-oss/coach/internal/timeseries"
	"github.com/coach-oss/coach/internal/trace"
)

// LongTermConfig configures training of the cluster-level model.
type LongTermConfig struct {
	// Windows is the per-day time-window split (Coach default: 6x4h).
	Windows timeseries.Windows
	// Percentile is the PX used for the guaranteed portion (default 95).
	Percentile float64
	// Forest configures each per-resource regressor.
	Forest mlforest.ForestConfig
	// MinHistory is the minimum number of prior same-subscription VMs
	// required before Coach will oversubscribe a VM (§3.3: "If there is
	// insufficient data to predict a VM, we conservatively do not
	// oversubscribe it").
	MinHistory int
	// MinSamples is the minimum series length (in 5-minute samples) for a
	// VM to contribute training rows; defaults to one day.
	MinSamples int
	// SafetyBuckets is the number of extra 5% buckets added on top of
	// each quantized prediction. Coach prioritizes protecting workload
	// performance over savings (G2, §3.3): under-predictions are far more
	// costly than over-predictions, so the deployed configuration biases
	// the regressor's point estimate upward by one bucket.
	SafetyBuckets int
}

// DefaultLongTermConfig returns Coach's deployed configuration: P95
// predictions over six 4-hour windows (§3.3 "Coach configuration").
func DefaultLongTermConfig() LongTermConfig {
	return LongTermConfig{
		Windows:       timeseries.Windows{PerDay: 6},
		Percentile:    95,
		Forest:        mlforest.DefaultForestConfig(),
		MinHistory:    3,
		MinSamples:    timeseries.SamplesPerDay,
		SafetyBuckets: 1,
	}
}

// subscriptionHistory aggregates the observed behaviour of a subscription's
// earlier VMs: the model's customer-specific features (§3.3).
type subscriptionHistory struct {
	count    int
	meanPeak [resources.NumKinds]float64 // mean lifetime max utilization
	meanMean [resources.NumKinds]float64 // mean of mean utilization
}

// featureDim is the length of the model's feature vector. Layout:
//
//	0: cores                5: weekday of allocation (0-6)
//	1: memory GB            6: window index
//	2: GB per core          7: history count (log1p)
//	3: offering (0/1)       8: history mean peak (this resource)
//	4: subscription type    9: history mean of means (this resource)
const featureDim = 10

// LongTerm is a trained cluster-level utilization predictor.
type LongTerm struct {
	cfg  LongTermConfig
	upTo int // end of the training period, in trace samples
	// pctForest[k] predicts the PX utilization of resource k in a window;
	// maxForest[k] predicts the window maximum.
	pctForest [resources.NumKinds]*mlforest.Forest
	maxForest [resources.NumKinds]*mlforest.Forest
	history   map[int]*subscriptionHistory
	trainRows int
	// scratch recycles PredictBatch working buffers across batches (the
	// serving hot path calls PredictBatch continuously); see batchScratch.
	scratch sync.Pool
}

// batchScratch is the reusable working set of one PredictBatch call: the
// feature-major input matrix for the level-synchronous forest path, a
// staging row for assembling one feature vector at a time, and the raw
// forest outputs. Only buffers not retained by the returned Predictions
// live here.
type batchScratch struct {
	m      mlforest.RowMatrix
	row    []float64 // one featureDim staging row scattered into m
	pctOut []float64
	maxOut []float64
}

// grow resizes the scratch for n rows of featureDim features. The matrix
// reset reuses its flat backing buffer across batches.
func (sc *batchScratch) grow(n int) {
	sc.m.Reset(n, featureDim)
	if sc.row == nil {
		sc.row = make([]float64, featureDim)
	}
	if cap(sc.pctOut) < n {
		sc.pctOut = make([]float64, n)
		sc.maxOut = make([]float64, n)
	}
	sc.pctOut = sc.pctOut[:n]
	sc.maxOut = sc.maxOut[:n]
}

// TrainLongTerm fits the model on every VM of tr that ends (or is fully
// observed) before upToSample — the paper trains on the first week and
// evaluates on the second (§2.3, Fig. 12). Utilization after upToSample is
// never consulted.
func TrainLongTerm(tr *trace.Trace, upToSample int, cfg LongTermConfig) (*LongTerm, error) {
	if err := cfg.Windows.Validate(); err != nil {
		return nil, err
	}
	if cfg.Percentile <= 0 || cfg.Percentile > 100 {
		return nil, fmt.Errorf("predict: percentile %f outside (0,100]", cfg.Percentile)
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = timeseries.SamplesPerDay
	}

	lt := &LongTerm{cfg: cfg, upTo: upToSample, history: make(map[int]*subscriptionHistory)}

	// First pass: accumulate subscription history over the training period.
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		visible := visibleSamples(vm, upToSample)
		if visible < cfg.MinSamples {
			continue
		}
		h := lt.history[vm.Subscription]
		if h == nil {
			h = &subscriptionHistory{}
			lt.history[vm.Subscription] = h
		}
		for _, k := range resources.Kinds {
			s := vm.Util[k][:visible]
			h.meanPeak[k] += s.Max()
			h.meanMean[k] += s.Mean()
		}
		h.count++
	}
	for _, h := range lt.history {
		for _, k := range resources.Kinds {
			h.meanPeak[k] /= float64(h.count)
			h.meanMean[k] /= float64(h.count)
		}
	}

	// Second pass: build one training row per (VM, window) with targets
	// from the observed series. The percentile and max forests share each
	// resource's feature rows — only their target vectors differ — so the
	// rows are kept once per resource and both forests train on one
	// columnar matrix below.
	var featRows [resources.NumKinds][][]float64
	var pctTargets, maxTargets [resources.NumKinds][]float64
	for i := range tr.VMs {
		vm := &tr.VMs[i]
		visible := visibleSamples(vm, upToSample)
		if visible < cfg.MinSamples {
			continue
		}
		for _, k := range resources.Kinds {
			s := vm.Util[k][:visible]
			pct := s.WindowPercentile(cfg.Windows, cfg.Percentile)
			mx := s.LifetimeWindowMax(cfg.Windows)
			for t := 0; t < cfg.Windows.PerDay; t++ {
				featRows[k] = append(featRows[k], lt.features(tr, vm, k, t))
				pctTargets[k] = append(pctTargets[k], pct[t])
				maxTargets[k] = append(maxTargets[k], mx[t])
				lt.trainRows++
			}
		}
	}

	for _, k := range resources.Kinds {
		if len(featRows[k]) == 0 {
			return nil, fmt.Errorf("predict: no training rows for %v (horizon %d, upTo %d)", k, tr.Horizon, upToSample)
		}
		// One transpose + argsort per resource, shared by both forests.
		m, err := mlforest.NewMatrix(featRows[k])
		if err != nil {
			return nil, err
		}
		fc := cfg.Forest
		fc.Seed = cfg.Forest.Seed + int64(k)
		pf, err := mlforest.TrainOnMatrix(m, pctTargets[k], fc)
		if err != nil {
			return nil, err
		}
		fc.Seed += 100
		mf, err := mlforest.TrainOnMatrix(m, maxTargets[k], fc)
		if err != nil {
			return nil, err
		}
		lt.pctForest[k] = pf
		lt.maxForest[k] = mf
	}
	return lt, nil
}

func visibleSamples(vm *trace.VM, upToSample int) int {
	if vm.Start >= upToSample {
		return 0
	}
	end := vm.End
	if end > upToSample {
		end = upToSample
	}
	return end - vm.Start
}

// features builds the feature vector for one (VM, resource, window).
func (lt *LongTerm) features(tr *trace.Trace, vm *trace.VM, k resources.Kind, window int) []float64 {
	f := make([]float64, featureDim)
	lt.featuresInto(f, tr, vm, k, window)
	return f
}

// featuresInto fills a caller-provided featureDim-length buffer; the
// batched prediction path uses it to carve rows out of one allocation.
func (lt *LongTerm) featuresInto(f []float64, tr *trace.Trace, vm *trace.VM, k resources.Kind, window int) {
	f[0] = vm.Cores()
	f[1] = vm.MemoryGB()
	f[2] = vm.MemoryGB() / vm.Cores()
	f[3] = float64(vm.Offering)
	f[4] = float64(tr.Subscriptions[vm.Subscription].Type)
	f[5] = float64(tr.WeekdayAt(vm.Start))
	f[6] = float64(window)
	if h := lt.history[vm.Subscription]; h != nil {
		f[7] = math.Log1p(float64(h.count))
		f[8] = h.meanPeak[k]
		f[9] = h.meanMean[k]
	} else {
		f[7], f[8], f[9] = 0, 0, 0
	}
}

// HistoryCount returns how many prior VMs the model saw for a subscription.
func (lt *LongTerm) HistoryCount(subscription int) int {
	if h := lt.history[subscription]; h != nil {
		return h.count
	}
	return 0
}

// TrainRows returns the number of (VM, resource, window) training rows.
func (lt *LongTerm) TrainRows() int { return lt.trainRows }

// InferenceStats sums the inference counters of every underlying forest:
// total ensemble passes, feature rows evaluated, and rows rejected for
// feature-dimension mismatch (any nonzero MismatchedRows means a
// feature-schema bug that would otherwise read as confident
// zero-utilization predictions).
func (lt *LongTerm) InferenceStats() mlforest.Stats {
	var s mlforest.Stats
	for _, k := range resources.Kinds {
		for _, f := range [...]*mlforest.Forest{lt.pctForest[k], lt.maxForest[k]} {
			if f == nil {
				continue
			}
			fs := f.Stats()
			s.Passes += fs.Passes
			s.Rows += fs.Rows
			s.MismatchedRows += fs.MismatchedRows
		}
	}
	return s
}

// MemoryBytes estimates the resident model size (§4.5 reports 186MB at
// production scale; ours scales with trace size).
func (lt *LongTerm) MemoryBytes() int {
	var total int
	for _, k := range resources.Kinds {
		if lt.pctForest[k] != nil {
			total += lt.pctForest[k].MemoryBytes()
		}
		if lt.maxForest[k] != nil {
			total += lt.maxForest[k].MemoryBytes()
		}
	}
	return total
}

// Predict returns the per-window prediction for a VM, quantized up to 5%
// buckets. ok is false when the VM's subscription lacks sufficient history,
// in which case the caller must not oversubscribe the VM (§3.3).
//
// A VM that has already run for at least a day within the training period
// is predicted from its own observed utilization (the platform telemetry
// keeps accumulating per-VM data, and VM behaviour is consistent day over
// day — Fig. 9); only fresh VMs fall back to the cross-VM forest.
func (lt *LongTerm) Predict(tr *trace.Trace, vm *trace.VM) (pred coachvm.Prediction, ok bool) {
	pred.Windows = lt.cfg.Windows
	pred.Percentile = lt.cfg.Percentile
	if visible := visibleSamples(vm, lt.upTo); visible >= lt.cfg.MinSamples {
		for _, k := range resources.Kinds {
			s := vm.Util[k][:visible]
			pred.Pct[k] = quantizeAll(s.WindowPercentile(lt.cfg.Windows, lt.cfg.Percentile), lt.cfg.SafetyBuckets)
			pred.Max[k] = quantizeAll(s.LifetimeWindowMax(lt.cfg.Windows), lt.cfg.SafetyBuckets)
		}
		pred.Clamp()
		return pred, true
	}
	if lt.HistoryCount(vm.Subscription) < lt.cfg.MinHistory {
		return pred, false
	}
	for _, k := range resources.Kinds {
		pred.Max[k] = make([]float64, lt.cfg.Windows.PerDay)
		pred.Pct[k] = make([]float64, lt.cfg.Windows.PerDay)
		for t := 0; t < lt.cfg.Windows.PerDay; t++ {
			feats := lt.features(tr, vm, k, t)
			pred.Pct[k][t] = quantize(lt.pctForest[k].Predict(feats), lt.cfg.SafetyBuckets)
			pred.Max[k][t] = quantize(lt.maxForest[k].Predict(feats), lt.cfg.SafetyBuckets)
		}
	}
	pred.Clamp()
	return pred, true
}

// PredictBatch predicts a batch of VMs in single forest passes. The
// results are exactly those of calling Predict per VM — bit-identical,
// since mlforest.Forest.PredictMatrix accumulates per-row tree
// contributions in the same order as the per-row walk — but all fresh
// VMs' (window, resource) feature rows are evaluated through each forest
// in one level-synchronous matrix pass, advancing the whole batch one
// tree level at a time instead of pointer-chasing rows one by one, and
// each VM's prediction windows are backed by shared flat allocations.
// This is the inference hot path of the serving layer (internal/serve),
// which coalesces concurrent prediction requests into such batches.
func (lt *LongTerm) PredictBatch(tr *trace.Trace, vms []*trace.VM) ([]coachvm.Prediction, []bool) {
	preds := make([]coachvm.Prediction, len(vms))
	oks := make([]bool, len(vms))
	lt.PredictBatchInto(tr, vms, preds, oks)
	return preds, oks
}

// PredictBatchInto is PredictBatch writing into caller-owned slices (both
// len(vms)), so a steady-state caller — serve's admission batcher reuses
// per-shard scratch — pays no per-batch result allocation beyond the
// prediction windows themselves. Entries are fully overwritten.
func (lt *LongTerm) PredictBatchInto(tr *trace.Trace, vms []*trace.VM, preds []coachvm.Prediction, oks []bool) {
	// First pass: resolve VMs predictable from their own observed series
	// or rejected for insufficient history; collect the forest-path rest.
	var fresh []int // indexes into vms needing a forest evaluation
	for i, vm := range vms {
		// Fully overwrite the caller's (possibly reused) entries.
		preds[i] = coachvm.Prediction{Windows: lt.cfg.Windows, Percentile: lt.cfg.Percentile}
		oks[i] = false
		if visible := visibleSamples(vm, lt.upTo); visible >= lt.cfg.MinSamples {
			for _, k := range resources.Kinds {
				s := vm.Util[k][:visible]
				preds[i].Pct[k] = quantizeAll(s.WindowPercentile(lt.cfg.Windows, lt.cfg.Percentile), lt.cfg.SafetyBuckets)
				preds[i].Max[k] = quantizeAll(s.LifetimeWindowMax(lt.cfg.Windows), lt.cfg.SafetyBuckets)
			}
			preds[i].Clamp()
			oks[i] = true
			continue
		}
		if lt.HistoryCount(vm.Subscription) < lt.cfg.MinHistory {
			continue
		}
		oks[i] = true
		fresh = append(fresh, i)
	}
	if len(fresh) == 0 {
		return
	}

	// Second pass: one batched ensemble evaluation per (resource, target)
	// over every fresh VM's windows, level-synchronously through the
	// forests' breadth-first layout. Features assemble into a feature-major
	// matrix carved from a pooled flat buffer (recycled across batches);
	// only the per-VM window slices handed back inside Predictions are
	// freshly allocated.
	w := lt.cfg.Windows.PerDay
	n := len(fresh) * w
	sc, _ := lt.scratch.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	sc.grow(n)
	defer lt.scratch.Put(sc)
	for _, k := range resources.Kinds {
		for bi, vi := range fresh {
			vm := vms[vi]
			for t := 0; t < w; t++ {
				lt.featuresInto(sc.row, tr, vm, k, t)
				sc.m.SetRow(bi*w+t, sc.row)
			}
		}
		pctOut := lt.pctForest[k].PredictMatrix(&sc.m, sc.pctOut)
		maxOut := lt.maxForest[k].PredictMatrix(&sc.m, sc.maxOut)
		pctFlat := make([]float64, n)
		maxFlat := make([]float64, n)
		for bi, vi := range fresh {
			lo, hi := bi*w, (bi+1)*w
			preds[vi].Pct[k] = pctFlat[lo:hi:hi]
			preds[vi].Max[k] = maxFlat[lo:hi:hi]
			for t := 0; t < w; t++ {
				preds[vi].Pct[k][t] = quantize(pctOut[lo+t], lt.cfg.SafetyBuckets)
				preds[vi].Max[k][t] = quantize(maxOut[lo+t], lt.cfg.SafetyBuckets)
			}
		}
	}
	for _, vi := range fresh {
		preds[vi].Clamp()
	}
}

// quantizeAll applies quantize element-wise.
func quantizeAll(xs []float64, safetyBuckets int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = quantize(x, safetyBuckets)
	}
	return out
}

// quantize rounds a predicted fraction up to the next 5% bucket, adds the
// configured safety margin, and clamps into [0,1] ("predicts utilization
// in 5% buckets", §3.3).
func quantize(x float64, safetyBuckets int) float64 {
	if x < 0 {
		x = 0
	}
	b := stats.BucketUp(x, coachvm.FractionBucket) + float64(safetyBuckets)*coachvm.FractionBucket
	if b > 1 {
		b = 1
	}
	return b
}
