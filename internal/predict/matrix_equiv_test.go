package predict

import (
	"bytes"
	"encoding/gob"
	"testing"

	"github.com/coach-oss/coach/internal/coachvm"
	"github.com/coach-oss/coach/internal/scenario"
	"github.com/coach-oss/coach/internal/trace"
)

// TestPredictBatchMatrixEquivalence is the predict half of the
// level-synchronous equivalence wall: with PredictBatch now feeding the
// forests through the feature-major matrix path, every scenario preset's
// batched predictions must stay gob-byte-identical to per-VM Predict at
// each required batch size. Run under -race in CI, this also races the
// pooled matrix scratch across parallel presets.
func TestPredictBatchMatrixEquivalence(t *testing.T) {
	for _, name := range scenario.PresetNames {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			full, err := scenario.Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			sp := full.Scaled(220, 22)
			tr, err := trace.GenerateScenario(sp)
			if err != nil {
				t.Fatal(err)
			}
			lt, err := TrainLongTerm(tr, tr.Horizon/2, DefaultLongTermConfig())
			if err != nil {
				t.Fatal(err)
			}

			// Every VM participates — own-history, insufficient-history and
			// fresh forest-path VMs alike — cycling the population to fill
			// the largest batch.
			forestRows := 0
			for _, n := range []int{1, 7, 64, 4096} {
				vms := make([]*trace.VM, n)
				for i := range vms {
					vms[i] = &tr.VMs[i%len(tr.VMs)]
				}
				gotPred, gotOK := lt.PredictBatch(tr, vms)
				wantPred := make([]coachvm.Prediction, n)
				wantOK := make([]bool, n)
				for i, vm := range vms {
					wantPred[i], wantOK[i] = lt.Predict(tr, vm)
					if wantOK[i] && wantPred[i].Pct[0] != nil && n == 4096 {
						forestRows++
					}
				}
				var got, want bytes.Buffer
				if err := gob.NewEncoder(&got).Encode(struct {
					P  []coachvm.Prediction
					OK []bool
				}{gotPred, gotOK}); err != nil {
					t.Fatal(err)
				}
				if err := gob.NewEncoder(&want).Encode(struct {
					P  []coachvm.Prediction
					OK []bool
				}{wantPred, wantOK}); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Fatalf("batch %d: PredictBatch diverges from per-VM Predict", n)
				}
			}
			if forestRows == 0 {
				t.Fatal("fixture regression: no VM was predicted at all")
			}
			if s := lt.InferenceStats(); s.MismatchedRows != 0 || s.Rows == 0 {
				t.Fatalf("inference stats %+v: want forest rows and no mismatches", s)
			}
		})
	}
}
