// Package memsim simulates CoachVM memory management on one server: the
// guaranteed PA-backed portion, the oversubscribed VA-backed portion fed
// from a shared physical pool, zNUMA funneling, the disk backing store,
// and the trim / extend / migrate mechanics Coach's mitigations rely on
// (paper §3.2, §3.4, §3.6).
//
// The simulator is a deterministic fluid model at GB granularity: page
// populations are tracked as continuous quantities and access latencies as
// mixtures over (PA hit, VA hit, page fault). This substitutes for the
// paper's production Hyper-V server (see docs/DESIGN.md §2): absolute numbers
// differ, but the interactions that produce Figs. 15, 18 and 21 — working
// set vs. PA size, pool exhaustion, eviction storms, mitigation bandwidth —
// are modeled directly.
package memsim

// Config holds the hardware/hypervisor parameters of the simulated server.
type Config struct {
	// PAAccessNs is the latency of an access served by guaranteed
	// (PA-backed, huge-page mapped) memory.
	PAAccessNs float64
	// VAAccessNs is the latency of an access served by resident
	// oversubscribed (VA-backed) memory; slightly slower than PA due to
	// smaller TLB reach and on-demand mapping.
	VAAccessNs float64
	// SoftFaultNs is the mean latency of a first touch to a
	// never-materialized VA page: a demand-zero soft fault through the
	// hypervisor's on-demand allocation path (no disk I/O).
	SoftFaultNs float64
	// SoftTailNs is the tail latency of that allocation path (intercepts,
	// mapping locks, TLB shootdowns): what an operation's P99 pays once
	// soft faults become non-negligible.
	SoftTailNs float64
	// FaultNs is the latency of an access that hard-faults: the page was
	// trimmed or evicted and must be read back from the NVMe backing
	// store under load.
	FaultNs float64
	// FaultBandwidthGBs is the page-in bandwidth from the backing store.
	FaultBandwidthGBs float64
	// EvictBandwidthGBs is the page-out bandwidth to the backing store.
	EvictBandwidthGBs float64
	// TrimBandwidthGBs is the background trim bandwidth (§4.5: 1.1 GB/s —
	// cold pages must be written to the backing store).
	TrimBandwidthGBs float64
	// ExtendBandwidthGBs is the rate at which unallocated server memory
	// can be added to the oversubscribed pool (§4.5: 15.7 GB/s — no
	// writeback needed).
	ExtendBandwidthGBs float64
	// MigrateBandwidthGBs is the live-migration copy bandwidth.
	MigrateBandwidthGBs float64
	// PageMB is the tracking granularity used to convert GB of faults
	// into fault counts.
	PageMB float64
}

// DefaultConfig returns parameters representative of a production server
// with a local NVMe page file (paper §4.1: Dell P5600).
func DefaultConfig() Config {
	return Config{
		PAAccessNs:          100,
		VAAccessNs:          140,
		SoftFaultNs:         2_000,
		SoftTailNs:          50_000,
		FaultNs:             150_000, // NVMe page-in under contention
		FaultBandwidthGBs:   2.0,
		EvictBandwidthGBs:   1.5,
		TrimBandwidthGBs:    1.1,
		ExtendBandwidthGBs:  15.7,
		MigrateBandwidthGBs: 1.0,
		PageMB:              2,
	}
}

// FaultPages converts GB of faulted memory into a page count.
func (c Config) FaultPages(gb float64) float64 {
	if c.PageMB <= 0 {
		return 0
	}
	return gb * 1024 / c.PageMB
}
