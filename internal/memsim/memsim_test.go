package memsim

import (
	"math"
	"math/rand"
	"testing"
)

func mustVM(t *testing.T, id int, size, pa float64) *VMMem {
	t.Helper()
	vm, err := NewVMMem(id, size, pa)
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestNewVMMemValidation(t *testing.T) {
	if _, err := NewVMMem(1, 0, 0); err == nil {
		t.Error("zero size must fail")
	}
	if _, err := NewVMMem(1, 8, 9); err == nil {
		t.Error("PA > size must fail")
	}
	if _, err := NewVMMem(1, 8, -1); err == nil {
		t.Error("negative PA must fail")
	}
	vm := mustVM(t, 1, 8, 3)
	if vm.VAGB() != 5 {
		t.Errorf("VAGB = %v", vm.VAGB())
	}
}

func TestSetWSSWithinPA(t *testing.T) {
	vm := mustVM(t, 1, 8, 3)
	vm.SetWSS(2) // fits entirely in PA
	if vm.vaNeed() != 0 || vm.Missing() != 0 || vm.ResidentVA() != 0 {
		t.Error("WSS within PA must create no VA demand")
	}
}

func TestSetWSSGrowthCreatesFresh(t *testing.T) {
	vm := mustVM(t, 1, 8, 3)
	vm.SetWSS(5) // 2GB spill into VA, never touched -> fresh
	if vm.needFresh != 2 {
		t.Errorf("needFresh = %v, want 2", vm.needFresh)
	}
	if vm.Missing() != 2 {
		t.Errorf("Missing = %v", vm.Missing())
	}
}

func TestSetWSSClampsToSize(t *testing.T) {
	vm := mustVM(t, 1, 8, 3)
	vm.SetWSS(100)
	if vm.WSS() != 8 {
		t.Errorf("WSS clamped to %v, want 8", vm.WSS())
	}
	vm.SetWSS(-3)
	if vm.WSS() != 0 {
		t.Errorf("negative WSS = %v", vm.WSS())
	}
}

func TestShrinkThenRegrowReusesColdResident(t *testing.T) {
	vm := mustVM(t, 1, 8, 3)
	vm.SetWSS(5)
	vm.admit(2) // materialize the spill
	vm.SetWSS(3)
	if vm.coldResident != 2 {
		t.Fatalf("coldResident = %v after shrink", vm.coldResident)
	}
	vm.SetWSS(5) // regrow: must reuse cold pages without faulting
	if vm.Missing() != 0 {
		t.Errorf("regrowth faulted %v GB despite cold pages", vm.Missing())
	}
	if vm.needResident != 2 {
		t.Errorf("needResident = %v", vm.needResident)
	}
}

func TestShrinkCancelsPendingDemand(t *testing.T) {
	vm := mustVM(t, 1, 8, 3)
	vm.SetWSS(5) // 2 fresh pending
	vm.SetWSS(3) // shrink before servicing
	if vm.Missing() != 0 {
		t.Errorf("pending demand survived shrink: %v", vm.Missing())
	}
	if vm.needFresh != 0 {
		t.Errorf("needFresh = %v", vm.needFresh)
	}
}

func TestTrimAndRefault(t *testing.T) {
	vm := mustVM(t, 1, 8, 3)
	vm.SetWSS(5)
	vm.admit(2)
	vm.SetWSS(3)
	if got := vm.trimCold(1.5); got != 1.5 {
		t.Fatalf("trimCold = %v", got)
	}
	if vm.coldStore != 1.5 || vm.coldResident != 0.5 {
		t.Fatalf("cold accounting wrong: store=%v resident=%v", vm.coldStore, vm.coldResident)
	}
	// Regrow: reuse remaining cold resident (0.5) then refault from store.
	vm.SetWSS(5)
	if vm.needStore != 1.5 {
		t.Errorf("needStore = %v, want 1.5 (refault)", vm.needStore)
	}
	_, fromStore := vm.admit(1.5)
	if fromStore != 1.5 {
		t.Errorf("admit fromStore = %v", fromStore)
	}
}

func TestStealResident(t *testing.T) {
	vm := mustVM(t, 1, 8, 3)
	vm.SetWSS(5)
	vm.admit(2)
	if got := vm.stealResident(1); got != 1 {
		t.Fatalf("stealResident = %v", got)
	}
	if vm.needStore != 1 {
		t.Errorf("stolen pages must land in the store: %v", vm.needStore)
	}
}

func TestRotateConservation(t *testing.T) {
	vm := mustVM(t, 1, 16, 4)
	vm.SetWSS(10)
	vm.admit(6)
	before := vm.vaNeed()
	vm.Rotate(2)
	// Working-set size unchanged; total need population preserved.
	if vm.vaNeed() != before {
		t.Errorf("Rotate changed vaNeed: %v vs %v", vm.vaNeed(), before)
	}
	total := vm.needResident + vm.needStore + vm.needFresh
	if math.Abs(total-before) > 1e-9 {
		t.Errorf("need population %v != %v", total, before)
	}
	// The rotated-away pages linger as cold garbage.
	if vm.coldResident != 2 {
		t.Errorf("coldResident = %v, want 2", vm.coldResident)
	}
	if vm.needFresh != 2 {
		t.Errorf("fresh allocations = %v, want 2", vm.needFresh)
	}
	if err := vm.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRotateExhaustsFreshThenRecycles(t *testing.T) {
	vm := mustVM(t, 1, 8, 3) // VA = 5
	vm.SetWSS(7)             // vaNeed 4
	vm.admit(4)
	// Fresh space = 5 - 4 = 1. Rotating 2GB: 1 fresh + 1 recycled.
	vm.Rotate(2)
	if vm.needFresh != 1 {
		t.Errorf("needFresh = %v, want 1", vm.needFresh)
	}
	if err := vm.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAccessMixSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		size := 4 + rng.Float64()*60
		pa := rng.Float64() * size
		vm := mustVM(t, 1, size, pa)
		vm.SetWSS(rng.Float64() * size * 1.2)
		vm.admit(rng.Float64() * vm.Missing())
		if rng.Float64() < 0.5 {
			vm.SetWSS(rng.Float64() * size)
		}
		pPA, pVA, pSoft, pHard := vm.accessMix()
		sum := pPA + pVA + pSoft + pHard
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("mix sums to %v", sum)
		}
		for _, p := range []float64{pPA, pVA, pSoft, pHard} {
			if p < -1e-12 || p > 1+1e-12 {
				t.Fatalf("probability %v outside [0,1]", p)
			}
		}
	}
}

func TestAccessMixZNUMAFunneling(t *testing.T) {
	// With the hot set inside PA, the VA share must be below the uniform
	// share (zNUMA funnels hot accesses to guaranteed memory).
	vm := mustVM(t, 1, 32, 16)
	vm.HotFrac, vm.HotSize = 0.8, 0.2
	vm.SetWSS(20)
	vm.admit(vm.Missing())
	_, pVA, _, _ := vm.accessMix()
	uniform := 4.0 / 20 // spill / wss
	if pVA >= uniform {
		t.Errorf("VA share %v not funneled below uniform %v", pVA, uniform)
	}
}

// Property: random operation sequences preserve the VMMem invariants.
func TestVMMemInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 100; trial++ {
		vm := mustVM(t, 1, 8+rng.Float64()*56, 0)
		vm.PAGB = rng.Float64() * vm.SizeGB
		for op := 0; op < 50; op++ {
			switch rng.Intn(5) {
			case 0:
				vm.SetWSS(rng.Float64() * vm.SizeGB * 1.1)
			case 1:
				vm.admit(rng.Float64() * vm.Missing())
			case 2:
				vm.trimCold(rng.Float64() * 4)
			case 3:
				vm.stealResident(rng.Float64() * 2)
			case 4:
				vm.Rotate(rng.Float64() * 2)
			}
			if err := vm.checkInvariants(); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
		}
	}
}

func TestServerAddRemoveVM(t *testing.T) {
	s := NewServer(DefaultConfig(), 10, 5)
	vm := mustVM(t, 1, 8, 3)
	if err := s.AddVM(vm); err != nil {
		t.Fatal(err)
	}
	if err := s.AddVM(vm); err == nil {
		t.Error("duplicate AddVM must fail")
	}
	if s.VM(1) != vm || s.VM(2) != nil {
		t.Error("VM lookup wrong")
	}
	if !s.RemoveVM(1) || s.RemoveVM(1) {
		t.Error("RemoveVM semantics wrong")
	}
	if len(s.VMs()) != 0 {
		t.Error("VMs list not empty")
	}
}

// TestAdmitWarmVsColdArrival pins the resident-arrival accounting a
// completed live migration relies on: warm-admitted pages become
// resident immediately, consume pool frames, and charge no fault volume
// — while an identical cold arrival pays for every page through the
// fault path (soft faults here, since the pages were never trimmed).
func TestAdmitWarmVsColdArrival(t *testing.T) {
	build := func() (*Server, *VMMem) {
		s := NewServer(DefaultConfig(), 10, 0)
		vm := mustVM(t, 1, 12, 2)
		if err := s.AddVM(vm); err != nil {
			t.Fatal(err)
		}
		vm.SetWSS(8) // 6GB VA demand against a 10GB pool
		return s, vm
	}

	warmSrv, warmVM := build()
	if got := warmSrv.AdmitWarm(1, 4); math.Abs(got-4) > 1e-9 {
		t.Fatalf("AdmitWarm admitted %v GB, want 4", got)
	}
	if warmSrv.AdmitWarm(2, 1) != 0 || warmSrv.AdmitWarm(1, 0) != 0 {
		t.Error("AdmitWarm of absent VM or zero volume must admit nothing")
	}
	if got := warmVM.ResidentVA(); math.Abs(got-4) > 1e-9 {
		t.Errorf("warm VM resident %v GB, want 4", got)
	}
	if got := warmSrv.PoolUsed(); math.Abs(got-4) > 1e-9 {
		t.Errorf("pool used %v GB after warm arrival, want 4", got)
	}
	if tot := warmSrv.Totals(); tot.HardFaultGB != 0 || tot.SoftFaultGB != 0 {
		t.Errorf("warm arrival charged fault volume: %+v", tot)
	}

	coldSrv, _ := build()
	for i := 0; i < 10; i++ {
		if _, err := coldSrv.Tick(1); err != nil {
			t.Fatal(err)
		}
		if _, err := warmSrv.Tick(1); err != nil {
			t.Fatal(err)
		}
	}
	coldTot, warmTot := coldSrv.Totals(), warmSrv.Totals()
	if coldTot.FaultGB() < 6-1e-6 {
		t.Errorf("cold arrival faulted %v GB, want the full 6", coldTot.FaultGB())
	}
	// The warm VM only demand-faults the remainder its pre-copy missed.
	if want := 2.0; math.Abs(warmTot.FaultGB()-want) > 1e-6 {
		t.Errorf("warm arrival faulted %v GB, want %v", warmTot.FaultGB(), want)
	}
	// Both end fully resident; only the fault bill differs.
	if cr, wr := coldSrv.PoolUsed(), warmSrv.PoolUsed(); math.Abs(cr-wr) > 1e-6 {
		t.Errorf("steady-state residency differs: cold %v vs warm %v", cr, wr)
	}

	// Warm admission is clamped by free pool frames.
	tight := NewServer(DefaultConfig(), 3, 0)
	tvm := mustVM(t, 7, 12, 2)
	if err := tight.AddVM(tvm); err != nil {
		t.Fatal(err)
	}
	tvm.SetWSS(8)
	if got := tight.AdmitWarm(7, 6); math.Abs(got-3) > 1e-9 {
		t.Errorf("AdmitWarm past the pool admitted %v GB, want 3", got)
	}
}

func TestServerTickValidation(t *testing.T) {
	s := NewServer(DefaultConfig(), 10, 0)
	if _, err := s.Tick(0); err == nil {
		t.Error("zero dt must fail")
	}
}

func TestFaultServiceBoundedByBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FaultBandwidthGBs = 1
	s := NewServer(cfg, 100, 0)
	vm := mustVM(t, 1, 64, 0)
	if err := s.AddVM(vm); err != nil {
		t.Fatal(err)
	}
	vm.SetWSS(50)
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	if got := vm.ResidentVA(); got > 1+1e-9 {
		t.Errorf("admitted %v GB in 1s at 1GB/s", got)
	}
}

func TestPoolAccountingAfterTicks(t *testing.T) {
	s := NewServer(DefaultConfig(), 6, 0)
	a := mustVM(t, 1, 8, 2)
	b := mustVM(t, 2, 8, 2)
	s.AddVM(a)
	s.AddVM(b)
	a.SetWSS(6)
	b.SetWSS(6)
	for i := 0; i < 20; i++ {
		if _, err := s.Tick(1); err != nil {
			t.Fatal(err)
		}
	}
	if used := s.PoolUsed(); used > s.PoolGB()+1e-6 {
		t.Errorf("pool used %v exceeds pool %v", used, s.PoolGB())
	}
	if free := s.PoolFree(); free < 0 {
		t.Errorf("negative pool free %v", free)
	}
}

func TestTrimOperationFreesPool(t *testing.T) {
	s := NewServer(DefaultConfig(), 10, 0)
	vm := mustVM(t, 1, 16, 4)
	s.AddVM(vm)
	vm.SetWSS(12)
	for i := 0; i < 10; i++ {
		s.Tick(1)
	}
	vm.SetWSS(4) // 8GB goes cold
	if vm.Trimmable() < 7.9 {
		t.Fatalf("trimmable = %v", vm.Trimmable())
	}
	freeBefore := s.PoolFree()
	s.StartTrim(1, 8)
	for i := 0; i < 12; i++ { // 8GB at 1.1GB/s ~ 8s
		s.Tick(1)
	}
	if s.PoolFree()-freeBefore < 7.9 {
		t.Errorf("trim freed only %v GB", s.PoolFree()-freeBefore)
	}
}

func TestTrimBandwidthHonored(t *testing.T) {
	cfg := DefaultConfig()
	s := NewServer(cfg, 10, 0)
	vm := mustVM(t, 1, 16, 4)
	s.AddVM(vm)
	vm.SetWSS(12)
	for i := 0; i < 10; i++ {
		s.Tick(1)
	}
	vm.SetWSS(4)
	trimmableBefore := vm.Trimmable()
	s.StartTrim(1, 8)
	s.Tick(1)
	trimmed := trimmableBefore - vm.Trimmable()
	if trimmed > cfg.TrimBandwidthGBs+1e-9 {
		t.Errorf("trimmed %v GB in 1s at %v GB/s", trimmed, cfg.TrimBandwidthGBs)
	}
}

func TestExtendBoundedByUnallocated(t *testing.T) {
	s := NewServer(DefaultConfig(), 4, 3)
	s.StartExtend(10)
	for i := 0; i < 5; i++ {
		s.Tick(1)
	}
	if s.PoolGB() != 7 {
		t.Errorf("pool = %v, want 7 (4 + 3 unallocated)", s.PoolGB())
	}
	if s.UnallocatedGB() != 0 {
		t.Errorf("unallocated = %v", s.UnallocatedGB())
	}
}

func TestMigrationRemovesVMAndFreesPool(t *testing.T) {
	s := NewServer(DefaultConfig(), 10, 0)
	vm := mustVM(t, 1, 8, 2)
	s.AddVM(vm)
	vm.SetWSS(6)
	for i := 0; i < 5; i++ {
		s.Tick(1)
	}
	if !s.StartMigrate(1) {
		t.Fatal("StartMigrate failed")
	}
	if s.StartMigrate(1) {
		t.Error("double migration of same VM must fail")
	}
	if !s.Migrating(1) || s.MigrationsInFlight() != 1 {
		t.Error("migration tracking wrong")
	}
	for i := 0; i < 30 && s.VM(1) != nil; i++ {
		s.Tick(1)
	}
	if s.VM(1) != nil {
		t.Fatal("migration never completed")
	}
	if s.PoolUsed() != 0 {
		t.Errorf("pool still used after migration: %v", s.PoolUsed())
	}
}

func TestBlindEvictionStealsUnderPressure(t *testing.T) {
	// Demand exceeding the pool with no agent: the hypervisor must steal
	// working-set pages (the None-policy paging storm).
	s := NewServer(DefaultConfig(), 4, 0)
	a := mustVM(t, 1, 8, 1)
	b := mustVM(t, 2, 8, 1)
	s.AddVM(a)
	s.AddVM(b)
	a.SetWSS(5) // vaNeed 4
	b.SetWSS(5) // vaNeed 4; total 8 > pool 4
	var stolen float64
	for i := 0; i < 20; i++ {
		st, err := s.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		stolen += st.Get(1).StolenGB + st.Get(2).StolenGB
	}
	if stolen == 0 {
		t.Error("pool pressure without cold memory must steal working-set pages")
	}
}

func TestTickStatsLatencyOrdering(t *testing.T) {
	cfg := DefaultConfig()
	// Fully PA VM: mean latency = PA latency.
	s := NewServer(cfg, 0, 0)
	vm := mustVM(t, 1, 8, 8)
	s.AddVM(vm)
	vm.SetWSS(6)
	st, err := s.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Get(1).MeanNs != cfg.PAAccessNs {
		t.Errorf("fully guaranteed VM mean = %v, want %v", st.Get(1).MeanNs, cfg.PAAccessNs)
	}
	if st.Get(1).Slowdown(cfg) != 1 {
		t.Errorf("slowdown = %v", st.Get(1).Slowdown(cfg))
	}
}

func TestMixtureQuantile(t *testing.T) {
	lats := [4]float64{100, 140, 2000, 150000}
	if got := mixtureQuantile(0.99, [4]float64{1, 0, 0, 0}, lats); got != 100 {
		t.Errorf("pure PA quantile = %v", got)
	}
	if got := mixtureQuantile(0.99, [4]float64{0.5, 0.5, 0, 0}, lats); got != 140 {
		t.Errorf("half VA quantile = %v", got)
	}
	// 2% hard faults -> P99 is a fault.
	if got := mixtureQuantile(0.99, [4]float64{0.98, 0, 0, 0.02}, lats); got != 150000 {
		t.Errorf("2%% hard-fault quantile = %v", got)
	}
	if got := mixtureQuantile(0.99, [4]float64{0.985, 0, 0.015, 0}, lats); got != 2000 {
		t.Errorf("soft-tail quantile = %v", got)
	}
}

func TestPFaultSum(t *testing.T) {
	st := TickStats{PSoft: 0.01, PHard: 0.02}
	if st.PFault() != 0.03 {
		t.Errorf("PFault = %v", st.PFault())
	}
}

func TestFaultPages(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.FaultPages(1); got != 512 { // 1GB at 2MB pages
		t.Errorf("FaultPages(1GB) = %v, want 512", got)
	}
	cfg.PageMB = 0
	if cfg.FaultPages(1) != 0 {
		t.Error("zero page size must return 0")
	}
}

// busyServer builds a server under enough pressure that every mechanism —
// faulting, trimming, extension, migration, blind eviction — runs.
func busyServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer(DefaultConfig(), 10, 6)
	for i := 1; i <= 6; i++ {
		vm := mustVM(t, i, 12, 2)
		if err := s.AddVM(vm); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func driveBusyTick(t *testing.T, s *Server, tick int) *TickFrame {
	t.Helper()
	for j, id := range s.VMs() {
		// Phases shift per VM so cold memory, refaults and pressure all
		// appear at different times.
		wss := 3 + 3*math.Sin(float64(tick+13*j)/9)
		s.VM(id).SetWSS(wss)
	}
	switch tick % 40 {
	case 11:
		s.StartTrim(s.VMs()[tick%len(s.VMs())], 2)
	case 23:
		s.StartExtend(1)
	case 31:
		if ids := s.VMs(); len(ids) > 2 {
			s.StartMigrate(ids[0])
		}
	}
	f, err := s.Tick(1)
	if err != nil {
		t.Fatalf("tick %d: %v", tick, err)
	}
	return f
}

// TestPoolUsedIncrementalMatchesNaive pins the O(1) incremental
// pool-resident counter to the ground-truth per-VM sum under every
// mechanism that moves resident pages (satellite: replaces the former
// O(VMs²) PoolUsed recomputation inside stepFaults).
func TestPoolUsedIncrementalMatchesNaive(t *testing.T) {
	s := busyServer(t)
	for tick := 0; tick < 300; tick++ {
		driveBusyTick(t, s, tick)
		if got, want := s.PoolUsed(), s.poolUsedNaive(); math.Abs(got-want) > 1e-6 {
			t.Fatalf("tick %d: incremental PoolUsed %v != naive %v", tick, got, want)
		}
	}
	// Removing every VM resets the counter exactly (drift cancellation).
	for _, id := range s.VMs() {
		s.RemoveVM(id)
	}
	if s.PoolUsed() != 0 {
		t.Errorf("PoolUsed after removing all VMs = %v", s.PoolUsed())
	}
}

// TestTickFrameSemantics covers the reusable frame: deterministic order,
// id lookup, zero-value reads for absent ids, and buffer reuse across
// ticks.
func TestTickFrameSemantics(t *testing.T) {
	s := NewServer(DefaultConfig(), 10, 0)
	for _, id := range []int{7, 3, 5} {
		if err := s.AddVM(mustVM(t, id, 8, 2)); err != nil {
			t.Fatal(err)
		}
		s.VM(id).SetWSS(4)
	}
	f, err := s.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	for i, want := range []int{3, 5, 7} {
		if f.ID(i) != want {
			t.Errorf("ID(%d) = %d, want %d", i, f.ID(i), want)
		}
		if got, ok := f.Lookup(want); !ok || got != f.At(i) {
			t.Errorf("Lookup(%d) inconsistent with At(%d)", want, i)
		}
	}
	if _, ok := f.Lookup(99); ok {
		t.Error("Lookup of absent id must report false")
	}
	if f.Get(99) != (TickStats{}) {
		t.Error("Get of absent id must return the zero value")
	}
	f2, err := s.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	if f2 != f {
		t.Error("frame must be reused across ticks")
	}
}

// TestTickFrameDepartedOnMigration pins the mid-tick departure marking:
// a completed migration leaves the frame entry flagged and its Get
// reading as zero, matching the former map-delete semantics.
func TestTickFrameDepartedOnMigration(t *testing.T) {
	s := NewServer(DefaultConfig(), 10, 0)
	if err := s.AddVM(mustVM(t, 1, 8, 2)); err != nil {
		t.Fatal(err)
	}
	s.VM(1).SetWSS(3)
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	if !s.StartMigrate(1) {
		t.Fatal("StartMigrate failed")
	}
	var last *TickFrame
	for i := 0; i < 30 && s.VM(1) != nil; i++ {
		f, err := s.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		last = f
	}
	if s.VM(1) != nil {
		t.Fatal("migration never completed")
	}
	if last.Len() != 1 || !last.Departed(0) {
		t.Error("completed migration must mark the frame entry departed")
	}
	if _, ok := last.Lookup(1); ok {
		t.Error("departed VM must read as absent")
	}
	if got := s.Totals().MigratedGB; got <= 0 {
		t.Errorf("MigratedGB = %v after completed migration", got)
	}
}

// TestTotalsAccumulate checks the cumulative volume counters against the
// mechanisms that feed them.
func TestTotalsAccumulate(t *testing.T) {
	s := busyServer(t)
	for tick := 0; tick < 300; tick++ {
		driveBusyTick(t, s, tick)
	}
	tot := s.Totals()
	if tot.SoftFaultGB <= 0 {
		t.Error("no demand-zero faults recorded")
	}
	if tot.HardFaultGB <= 0 {
		t.Error("no hard faults recorded despite refault churn")
	}
	if tot.TrimmedGB <= 0 {
		t.Error("no trims recorded despite StartTrim")
	}
	if tot.ExtendedGB <= 0 {
		t.Error("no extends recorded despite StartExtend")
	}
	if tot.StolenGB+tot.EvictedColdGB <= 0 {
		t.Error("no blind eviction under sustained pool pressure")
	}
	if f := tot.SoftFaultFrac(); f <= 0 || f >= 1 {
		t.Errorf("soft-fault fraction %v outside (0,1)", f)
	}
	if got := tot.FaultGB(); math.Abs(got-(tot.SoftFaultGB+tot.HardFaultGB)) > 1e-12 {
		t.Errorf("FaultGB %v != soft+hard", got)
	}
	sum := (Totals{TrimmedGB: 1, HardFaultGB: 2}).Add(Totals{TrimmedGB: 3, StolenGB: 4})
	if sum.TrimmedGB != 4 || sum.HardFaultGB != 2 || sum.StolenGB != 4 {
		t.Errorf("Totals.Add wrong: %+v", sum)
	}
}

// TestTickBitIdenticalAcrossRuns is the map-order regression test: two
// identical multi-VM runs must produce bit-identical stats and pool
// state. Before the frame refactor, per-tick map iteration could reorder
// float additions and diverge in the last bits.
func TestTickBitIdenticalAcrossRuns(t *testing.T) {
	run := func() []float64 {
		s := busyServer(t)
		var sig []float64
		for tick := 0; tick < 200; tick++ {
			f := driveBusyTick(t, s, tick)
			sig = append(sig, s.PoolUsed(), s.PoolGB(), s.UnallocatedGB())
			for i := 0; i < f.Len(); i++ {
				st := f.At(i)
				sig = append(sig, st.MeanNs, st.P99Ns, st.FaultGB, st.StolenGB,
					st.PPA, st.PVA, st.PSoft, st.PHard)
			}
		}
		tot := s.Totals()
		sig = append(sig, tot.TrimmedGB, tot.ExtendedGB, tot.MigratedGB,
			tot.HardFaultGB, tot.SoftFaultGB, tot.StolenGB, tot.EvictedColdGB)
		return sig
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("signature lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at signature element %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestServerCrash pins the host-failure contract: every VM and its
// memory vanishes, in-flight operations abort, the pool reverts to its
// boot-time split (extensions do not survive a reboot), and the server
// comes back non-quiet so the next pass runs a real tick. History —
// cumulative totals, tick counters, the clock — persists.
func TestServerCrash(t *testing.T) {
	s := NewServer(DefaultConfig(), 10, 5)
	vm := mustVM(t, 1, 8, 3)
	if err := s.AddVM(vm); err != nil {
		t.Fatal(err)
	}
	vm.SetWSS(6)
	if _, err := s.Tick(60); err != nil {
		t.Fatal(err)
	}
	s.StartExtend(5)
	if _, err := s.Tick(60); err != nil {
		t.Fatal(err)
	}
	s.StartTrim(1, 1)
	ticksBefore, totalsBefore, nowBefore := s.TickCount(), s.Totals(), s.Now()
	if totalsBefore.SoftFaultGB <= 0 {
		t.Fatalf("fixture never faulted pages in: %+v", totalsBefore)
	}

	s.Crash()

	if s.VM(1) != nil || len(s.VMs()) != 0 {
		t.Error("VMs survived the crash")
	}
	if s.OpsInFlight() != 0 {
		t.Errorf("ops in flight after crash: %d", s.OpsInFlight())
	}
	if s.PoolGB() != 10 || s.UnallocatedGB() != 5 {
		t.Errorf("pool split after crash = (%.1f, %.1f), want boot-time (10, 5)",
			s.PoolGB(), s.UnallocatedGB())
	}
	if got := s.PoolUsed(); got != 0 {
		t.Errorf("pool used after crash = %.2f, want 0", got)
	}
	if s.Quiet() {
		t.Error("server quiet after crash — next pass would replay a stale frame")
	}
	if s.TickCount() != ticksBefore || s.Totals() != totalsBefore || s.Now() != nowBefore {
		t.Error("crash rewrote history (ticks/totals/clock)")
	}

	// The rebooted server is immediately usable.
	if err := s.AddVM(mustVM(t, 2, 4, 2)); err != nil {
		t.Fatalf("AddVM after crash: %v", err)
	}
	if _, err := s.Tick(60); err != nil {
		t.Fatalf("Tick after crash: %v", err)
	}
}
