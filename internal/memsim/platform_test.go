package memsim

import (
	"math"
	"testing"
)

func TestPinValidation(t *testing.T) {
	vm := mustVM(t, 1, 8, 3) // VA = 5
	if err := vm.Pin(-1); err == nil {
		t.Error("negative pin must fail")
	}
	if err := vm.Pin(6); err == nil {
		t.Error("pin beyond VA size must fail")
	}
	if err := vm.Pin(2); err != nil {
		t.Fatal(err)
	}
	if vm.PinnedGB() != 2 {
		t.Errorf("PinnedGB = %v", vm.PinnedGB())
	}
	// A second pin beyond remaining space must fail.
	if err := vm.Pin(4); err == nil {
		t.Error("over-pinning must fail")
	}
}

func TestPinnedBackedEagerly(t *testing.T) {
	s := NewServer(DefaultConfig(), 10, 0)
	vm := mustVM(t, 1, 8, 3)
	s.AddVM(vm)
	if err := vm.Pin(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	if vm.pinnedDemand() != 0 {
		t.Errorf("pinned demand %v after tick, want 0 (eager backing)", vm.pinnedDemand())
	}
	if used := s.PoolUsed(); math.Abs(used-2) > 1e-9 {
		t.Errorf("pool used = %v, want 2 (pinned frames)", used)
	}
}

func TestPinnedNeverTrimmedOrStolen(t *testing.T) {
	s := NewServer(DefaultConfig(), 4, 0)
	vm := mustVM(t, 1, 16, 2)
	s.AddVM(vm)
	if err := vm.Pin(2); err != nil {
		t.Fatal(err)
	}
	// Saturate the pool well beyond capacity: 2 pinned + wss spill 4 > 4.
	vm.SetWSS(6)
	for i := 0; i < 20; i++ {
		if _, err := s.Tick(1); err != nil {
			t.Fatal(err)
		}
	}
	if backed := vm.PinnedGB() - vm.pinnedDemand(); backed < 2-1e-9 {
		t.Errorf("pinned memory lost frames under pressure: backed %v", backed)
	}
	// Trim must not touch pinned pages either.
	s.StartTrim(1, 10)
	for i := 0; i < 5; i++ {
		s.Tick(1)
	}
	if backed := vm.PinnedGB() - vm.pinnedDemand(); backed < 2-1e-9 {
		t.Errorf("trim reclaimed pinned frames: backed %v", backed)
	}
}

func TestPinReducesWorkingSetRoom(t *testing.T) {
	vm := mustVM(t, 1, 8, 3) // VA 5
	if err := vm.Pin(3); err != nil {
		t.Fatal(err)
	}
	vm.SetWSS(8) // would need 5 VA, but only 2 unpinned
	if got := vm.vaNeed(); got != 2 {
		t.Errorf("vaNeed = %v, want 2 (pinned range unavailable)", got)
	}
}

func TestHostUpdatePreservesState(t *testing.T) {
	s := NewServer(DefaultConfig(), 10, 4)
	vm := mustVM(t, 1, 16, 4)
	s.AddVM(vm)
	vm.SetWSS(10)
	for i := 0; i < 10; i++ {
		s.Tick(1)
	}
	vm.SetWSS(6) // leave some cold
	s.Tick(1)

	beforeResident := vm.ResidentVA()
	beforeCold := vm.Trimmable()
	beforePool := s.PoolUsed()

	rep := s.HostUpdate()
	if rep.DowntimeS <= hostUpdateFixedS {
		t.Errorf("downtime %v must include metadata persistence", rep.DowntimeS)
	}
	if math.Abs(rep.PersistedGB-beforeResident) > 1e-9 {
		t.Errorf("persisted %v, want %v", rep.PersistedGB, beforeResident)
	}
	// All VA-backing state survives the reboot.
	if vm.ResidentVA() != beforeResident || vm.Trimmable() != beforeCold {
		t.Error("host update lost VA-backing state")
	}
	if s.PoolUsed() != beforePool {
		t.Error("host update changed pool accounting")
	}
	// The server keeps running normally afterwards.
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
}

func TestHostUpdateCancelsMigrations(t *testing.T) {
	s := NewServer(DefaultConfig(), 10, 0)
	vm := mustVM(t, 1, 8, 2)
	s.AddVM(vm)
	vm.SetWSS(5)
	s.Tick(1)
	if !s.StartMigrate(1) {
		t.Fatal("migration failed to start")
	}
	rep := s.HostUpdate()
	if rep.CancelledMigrations != 1 {
		t.Errorf("cancelled migrations = %d", rep.CancelledMigrations)
	}
	if s.MigrationsInFlight() != 0 {
		t.Error("migration survived the host update")
	}
	if s.VM(1) == nil {
		t.Error("VM must remain on the source after a cancelled migration")
	}
}

func TestHostUpdateAdvancesClock(t *testing.T) {
	s := NewServer(DefaultConfig(), 4, 0)
	before := s.Now()
	rep := s.HostUpdate()
	if s.Now()-before != rep.DowntimeS {
		t.Error("host update must advance the simulated clock by its downtime")
	}
}
