package memsim

import "fmt"

// This file models the platform-management compatibility features of
// paper §3.2: direct device access to oversubscribed memory via guest
// enlightenments (DMA-pinned ranges), and VM-preserving host updates that
// persist the VA-backing structures across a host OS reboot.

// Pin reserves gb of the VM's VA region for device I/O (DMA). Most devices
// lack ATS/PRI, so the guest enlightenment exchanges I/O memory ranges at
// boot and the host keeps them resident and immovable: pinned pages always
// hold pool frames and are never trimmed, stolen or paged.
//
// Pin must be called before the working set grows into the region (at VM
// boot, per the paper); it fails when the VA region cannot accommodate the
// pin alongside the current populations.
func (v *VMMem) Pin(gb float64) error {
	if gb < 0 {
		return fmt.Errorf("memsim: vm %d negative pin %.2fGB", v.ID, gb)
	}
	inUse := v.needResident + v.needStore + v.needFresh + v.coldResident + v.coldStore
	if v.pinned+gb+inUse > v.VAGB()+1e-9 {
		return fmt.Errorf("memsim: vm %d pin %.2fGB exceeds free VA (%.2fGB of %.2fGB in use)",
			v.ID, gb, inUse+v.pinned, v.VAGB())
	}
	v.pinned += gb
	v.pinnedMissing += gb
	return nil
}

// PinnedGB returns the VM's total DMA-pinned VA memory.
func (v *VMMem) PinnedGB() float64 { return v.pinned }

// pinnedDemand returns pinned memory not yet backed by pool frames
// (pinned ranges are faulted in eagerly right after Pin).
func (v *VMMem) pinnedDemand() float64 { return v.pinnedMissing }

// admitPinned backs up to gb of pinned memory with pool frames.
func (v *VMMem) admitPinned(gb float64) float64 {
	taken := min2(gb, v.pinnedMissing)
	v.pinnedMissing -= taken
	return taken
}

// HostUpdateReport describes one VM-preserving host update.
type HostUpdateReport struct {
	// DowntimeS is the VM pause duration: a fixed reboot overhead plus
	// the cost of persisting the VA-backing metadata (§3.2: "we incur
	// this necessary complexity to persist these complex structures with
	// negligible overhead").
	DowntimeS float64
	// PersistedGB is the VA-backed memory whose mapping structures were
	// persisted across the update.
	PersistedGB float64
	// CancelledMigrations counts in-flight live migrations aborted by
	// the update (they restart from scratch afterwards).
	CancelledMigrations int
}

// hostUpdateFixedS is the VM-pause overhead of the kernel soft-reboot.
const hostUpdateFixedS = 2.0

// hostUpdatePerGBS is the metadata persistence cost per GB of VA-backed
// memory (page-table and backing-store index serialization).
const hostUpdatePerGBS = 0.02

// HostUpdate performs a VM-preserving host update (§3.2): VMs pause, the
// host OS reboots, and both the PA mappings and the VA-backing structures
// are persisted and restored. All page populations — resident, cold,
// store, pinned — survive unchanged; in-flight trims and extends complete
// logically (their state is part of the persisted structures) while live
// migrations are cancelled.
func (s *Server) HostUpdate() HostUpdateReport {
	rep := HostUpdateReport{
		DowntimeS:           hostUpdateFixedS,
		CancelledMigrations: len(s.migrations),
	}
	s.migrations = nil
	for _, id := range s.order {
		rep.PersistedGB += s.vms[id].ResidentVA()
	}
	rep.DowntimeS += rep.PersistedGB * hostUpdatePerGBS
	s.now += rep.DowntimeS
	return rep
}
