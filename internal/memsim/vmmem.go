package memsim

import "fmt"

// VMMem is the memory state of one CoachVM on the simulated server.
//
// The VM's guest-physical space is SizeGB; the hypervisor backs PAGB of it
// with guaranteed physical memory and exposes the remaining VAGB as a
// zNUMA node whose pages are materialized on demand from the server's
// oversubscribed pool (§3.2).
//
// VA page populations (all in GB, all >= 0):
//
//	needResident — pages inside the current working set, resident.
//	needStore    — pages inside the working set, currently in the
//	               backing store (each access faults).
//	needFresh    — pages inside the working set never yet materialized
//	               (zero-fill on first touch; still needs pool frames).
//	coldResident — resident pages outside the working set (trimmable).
//	coldStore    — trimmed pages outside the working set.
type VMMem struct {
	ID     int
	SizeGB float64
	PAGB   float64

	// HotFrac is the fraction of accesses that go to the hot subset of
	// the working set; HotSize is that subset's share of the working set.
	// zNUMA funneling places the hot subset in PA first (§3.2).
	HotFrac float64
	HotSize float64

	wss float64 // current working set in GB (set by the workload)

	needResident float64
	needStore    float64
	needFresh    float64
	coldResident float64
	coldStore    float64

	// pinned is VA memory reserved for device DMA via guest
	// enlightenments (§3.2); pinnedMissing is the part not yet backed.
	// Pinned pages always hold frames once backed and are never trimmed,
	// stolen or paged. See Pin in platform.go.
	pinned        float64
	pinnedMissing float64
}

// NewVMMem creates the memory state for a VM with the given total size and
// guaranteed (PA) portion. Hot-set parameters default to 70% of accesses
// hitting 30% of the working set.
func NewVMMem(id int, sizeGB, paGB float64) (*VMMem, error) {
	if sizeGB <= 0 {
		return nil, fmt.Errorf("memsim: vm %d size %.2fGB <= 0", id, sizeGB)
	}
	if paGB < 0 || paGB > sizeGB {
		return nil, fmt.Errorf("memsim: vm %d PA %.2fGB outside [0,%.2f]", id, paGB, sizeGB)
	}
	return &VMMem{ID: id, SizeGB: sizeGB, PAGB: paGB, HotFrac: 0.7, HotSize: 0.3}, nil
}

// VAGB returns the size of the oversubscribed (VA) region.
func (v *VMMem) VAGB() float64 { return v.SizeGB - v.PAGB }

// WSS returns the current working-set size.
func (v *VMMem) WSS() float64 { return v.wss }

// ResidentVA returns the VA GB currently holding pool frames, including
// backed DMA-pinned memory.
func (v *VMMem) ResidentVA() float64 {
	return v.needResident + v.coldResident + (v.pinned - v.pinnedMissing)
}

// Trimmable returns the cold resident GB a trim operation can reclaim.
func (v *VMMem) Trimmable() float64 { return v.coldResident }

// Missing returns the working-set GB not yet resident (faults pending).
func (v *VMMem) Missing() float64 { return v.needStore + v.needFresh }

// vaNeed returns the working-set spillover into the VA region: the pages
// zNUMA could not funnel into the guaranteed portion. DMA-pinned ranges
// are not available to the working set.
func (v *VMMem) vaNeed() float64 {
	n := v.wss - v.PAGB
	if n < 0 {
		return 0
	}
	if avail := v.VAGB() - v.pinned; n > avail {
		n = avail
	}
	return n
}

// SetWSS moves the working set to w GB (clamped to the VM size) and
// reclassifies VA page populations:
//
//   - Growth reuses cold resident pages first (no fault), then refaults
//     trimmed pages from the store, then demand-zeroes fresh pages.
//   - Shrinkage turns resident working-set pages cold and cancels pending
//     store/fresh demand (store pages outside the WSS stay in the store).
func (v *VMMem) SetWSS(w float64) {
	if w < 0 {
		w = 0
	}
	if w > v.SizeGB {
		w = v.SizeGB
	}
	old := v.vaNeed()
	v.wss = w
	next := v.vaNeed()

	switch {
	case next > old:
		grow := next - old
		// Reuse cold resident pages: they become working-set resident.
		reuse := min2(grow, v.coldResident)
		v.coldResident -= reuse
		v.needResident += reuse
		grow -= reuse
		// Refault previously trimmed pages.
		refault := min2(grow, v.coldStore)
		v.coldStore -= refault
		v.needStore += refault
		grow -= refault
		// Remaining growth is never-touched memory.
		v.needFresh += grow
	case next < old:
		shrink := old - next
		// Cancel pending fresh demand first (cheapest).
		cf := min2(shrink, v.needFresh)
		v.needFresh -= cf
		shrink -= cf
		// Pending store demand returns to cold store.
		cs := min2(shrink, v.needStore)
		v.needStore -= cs
		v.coldStore += cs
		shrink -= cs
		// Resident working-set pages go cold.
		cr := min2(shrink, v.needResident)
		v.needResident -= cr
		v.coldResident += cr
	}
}

// Rotate models allocation churn: gb of working-set pages are freed by the
// guest and re-allocated at different guest-physical addresses (the
// per-iteration alloc/free of LLM fine-tuning, §4.2). Because the VM is
// opaque, the hypervisor cannot reclaim the freed pages: they stay
// resident as cold pages until trimmed. The replacement allocation prefers
// untouched GPA (demand-zero, needs fresh frames), then recycles trimmed
// addresses (refault), then reuses cold resident addresses (free).
func (v *VMMem) Rotate(gb float64) {
	freed := min2(gb, v.needResident)
	if freed <= 0 {
		return
	}
	v.needResident -= freed
	v.coldResident += freed

	remaining := freed
	freshAvail := v.VAGB() - (v.needResident + v.needStore + v.needFresh + v.coldResident + v.coldStore)
	if freshAvail < 0 {
		freshAvail = 0
	}
	fresh := min2(remaining, freshAvail)
	v.needFresh += fresh
	remaining -= fresh

	refault := min2(remaining, v.coldStore)
	v.coldStore -= refault
	v.needStore += refault
	remaining -= refault

	reuse := min2(remaining, v.coldResident)
	v.coldResident -= reuse
	v.needResident += reuse
}

// accessMix returns the probability an access is served by PA, by
// resident VA, by a demand-zero soft fault (first touch of a fresh page)
// or by a hard fault (page-in from the backing store), given zNUMA
// placement: the hot subset of the working set fills PA first, then the
// remainder spills to VA; the missing share of the VA working set faults,
// split between soft and hard according to the pending fresh/store page
// populations.
func (v *VMMem) accessMix() (pPA, pVA, pSoft, pHard float64) {
	if v.wss <= 0 {
		return 1, 0, 0, 0
	}
	hotGB := v.HotSize * v.wss
	coldGB := v.wss - hotGB

	hotInPA := min2(hotGB, v.PAGB)
	paLeft := v.PAGB - hotInPA
	coldInPA := min2(coldGB, paLeft)

	vaShare := 0.0
	if hotGB > 0 {
		vaShare += v.HotFrac * (hotGB - hotInPA) / hotGB
	}
	if coldGB > 0 {
		vaShare += (1 - v.HotFrac) * (coldGB - coldInPA) / coldGB
	}

	// Within the VA working set, accesses are uniform; the missing
	// fraction faults, split soft/hard by the pending page populations.
	need := v.vaNeed()
	missFrac := 0.0
	if need > 0 {
		missFrac = v.Missing() / need
		if missFrac > 1 {
			missFrac = 1
		}
	}
	pFault := vaShare * missFrac
	if m := v.Missing(); m > 0 {
		pHard = pFault * v.needStore / m
		pSoft = pFault - pHard
	}
	pVA = vaShare - pFault
	pPA = 1 - vaShare
	return pPA, pVA, pSoft, pHard
}

// stealResident forcibly evicts up to gb of working-set resident pages
// (thrashing under pool pressure): they move to the backing store and will
// fault on next access. Returns the GB actually stolen.
func (v *VMMem) stealResident(gb float64) float64 {
	taken := min2(gb, v.needResident)
	v.needResident -= taken
	v.needStore += taken
	return taken
}

// trimCold moves up to gb of cold resident pages to the backing store,
// freeing pool frames. Returns the GB trimmed.
func (v *VMMem) trimCold(gb float64) float64 {
	taken := min2(gb, v.coldResident)
	v.coldResident -= taken
	v.coldStore += taken
	return taken
}

// admit materializes up to gb of missing working-set pages (store first,
// then fresh). The caller must have reserved pool frames. It returns the
// GB admitted and how much of it came from the backing store (I/O cost).
func (v *VMMem) admit(gb float64) (admitted, fromStore float64) {
	fs := min2(gb, v.needStore)
	v.needStore -= fs
	v.needResident += fs
	gb -= fs
	ff := min2(gb, v.needFresh)
	v.needFresh -= ff
	v.needResident += ff
	return fs + ff, fs
}

// checkInvariants panics if a page population went negative or resident
// exceeds the VA size; used by tests and enabled in Server.Tick.
func (v *VMMem) checkInvariants() error {
	for _, q := range []struct {
		name string
		val  float64
	}{
		{"needResident", v.needResident},
		{"needStore", v.needStore},
		{"needFresh", v.needFresh},
		{"coldResident", v.coldResident},
		{"coldStore", v.coldStore},
	} {
		if q.val < -1e-6 {
			return fmt.Errorf("memsim: vm %d %s negative: %g", v.ID, q.name, q.val)
		}
	}
	if v.pinnedMissing < -1e-6 || v.pinnedMissing > v.pinned+1e-6 {
		return fmt.Errorf("memsim: vm %d pinnedMissing %.3f outside [0, %.3f]", v.ID, v.pinnedMissing, v.pinned)
	}
	if v.ResidentVA() > v.VAGB()+1e-6 {
		return fmt.Errorf("memsim: vm %d resident VA %.3f exceeds VA size %.3f", v.ID, v.ResidentVA(), v.VAGB())
	}
	if got, want := v.needResident+v.needStore+v.needFresh, v.vaNeed(); got > want+1e-6 {
		return fmt.Errorf("memsim: vm %d working-set accounting %.3f exceeds need %.3f", v.ID, got, want)
	}
	return nil
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
