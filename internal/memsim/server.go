package memsim

import (
	"fmt"
	"sort"
)

// TickStats reports one VM's memory behaviour over one simulated tick.
type TickStats struct {
	// MeanNs is the expected access latency over the tick.
	MeanNs float64
	// P99Ns is the 99th-percentile access latency (mixture quantile).
	P99Ns float64
	// FaultGB is the memory hard-faulted in from the backing store this
	// tick.
	FaultGB float64
	// StolenGB is working-set memory forcibly evicted from this VM due to
	// pool pressure (thrashing).
	StolenGB float64
	// PPA, PVA, PSoft, PHard are the access-mix probabilities: PA hit,
	// resident VA hit, demand-zero soft fault, backing-store hard fault.
	PPA, PVA, PSoft, PHard float64
}

// PFault returns the total faulting probability (soft + hard).
func (t TickStats) PFault() float64 { return t.PSoft + t.PHard }

// Slowdown returns the mean-latency slowdown relative to a fully
// PA-backed VM.
func (t TickStats) Slowdown(cfg Config) float64 {
	if cfg.PAAccessNs <= 0 {
		return 1
	}
	return t.MeanNs / cfg.PAAccessNs
}

// opTrim is an in-flight trim of one VM's cold pages.
type opTrim struct {
	vmID   int
	leftGB float64
}

// opExtend is an in-flight extension of the oversubscribed pool from the
// server's unallocated memory.
type opExtend struct {
	leftGB float64
}

// opMigrate is an in-flight live migration: the VM's memory (resident plus
// paged-in cold memory, per §3.2 "Live migration") is copied during
// pre-copy; on completion the VM leaves the server and its frames free.
type opMigrate struct {
	vmID   int
	leftGB float64
}

// Server simulates one host's oversubscribed memory pool and its VMs.
type Server struct {
	cfg Config

	poolGB    float64 // physical frames backing VA regions
	unallocGB float64 // spare server memory available to Extend

	vms   map[int]*VMMem
	order []int // sorted VM ids for deterministic iteration

	trims      []opTrim
	extends    []opExtend
	migrations []opMigrate

	now float64 // seconds
}

// NewServer creates a server whose oversubscribed pool holds poolGB of
// physical memory, with unallocGB spare for Extend mitigations.
func NewServer(cfg Config, poolGB, unallocGB float64) *Server {
	return &Server{cfg: cfg, poolGB: poolGB, unallocGB: unallocGB, vms: make(map[int]*VMMem)}
}

// Config returns the server's hardware parameters.
func (s *Server) Config() Config { return s.cfg }

// Now returns the simulated time in seconds.
func (s *Server) Now() float64 { return s.now }

// PoolGB returns the oversubscribed pool's physical size.
func (s *Server) PoolGB() float64 { return s.poolGB }

// PoolUsed returns the pool frames currently holding resident VA pages.
func (s *Server) PoolUsed() float64 {
	var used float64
	for _, vm := range s.vms {
		used += vm.ResidentVA()
	}
	return used
}

// PoolFree returns the available oversubscribed memory — the quantity
// plotted in Fig. 21a.
func (s *Server) PoolFree() float64 {
	f := s.poolGB - s.PoolUsed()
	if f < 0 {
		return 0
	}
	return f
}

// UnallocatedGB returns the spare memory Extend can still claim.
func (s *Server) UnallocatedGB() float64 { return s.unallocGB }

// AddVM registers a VM. Its working set starts at zero; drive it with
// VM(id).SetWSS.
func (s *Server) AddVM(vm *VMMem) error {
	if _, dup := s.vms[vm.ID]; dup {
		return fmt.Errorf("memsim: vm %d already on server", vm.ID)
	}
	s.vms[vm.ID] = vm
	s.order = append(s.order, vm.ID)
	sort.Ints(s.order)
	return nil
}

// RemoveVM detaches a VM, freeing its pool frames. Returns false if absent.
func (s *Server) RemoveVM(id int) bool {
	if _, ok := s.vms[id]; !ok {
		return false
	}
	delete(s.vms, id)
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return true
}

// VM returns the memory state of a VM (nil when absent).
func (s *Server) VM(id int) *VMMem { return s.vms[id] }

// VMs returns the ids of resident VMs in deterministic order.
func (s *Server) VMs() []int {
	out := make([]int, len(s.order))
	copy(out, s.order)
	return out
}

// StartTrim schedules trimming up to gb of the VM's cold pages at the trim
// bandwidth (§4.5: 1.1 GB/s).
func (s *Server) StartTrim(vmID int, gb float64) {
	if gb > 0 {
		s.trims = append(s.trims, opTrim{vmID: vmID, leftGB: gb})
	}
}

// StartExtend schedules growing the pool by up to gb from unallocated
// server memory at the extend bandwidth (§4.5: 15.7 GB/s).
func (s *Server) StartExtend(gb float64) {
	if gb > 0 {
		s.extends = append(s.extends, opExtend{leftGB: gb})
	}
}

// StartMigrate schedules live-migrating the VM away. The copied volume is
// the VM's working set plus its trimmed cold memory, which must be paged
// in during pre-copy (§3.2).
func (s *Server) StartMigrate(vmID int) bool {
	vm, ok := s.vms[vmID]
	if !ok {
		return false
	}
	for _, m := range s.migrations {
		if m.vmID == vmID {
			return false // already migrating
		}
	}
	vol := vm.PAGB + vm.ResidentVA() + vm.Missing() + vm.coldStore
	s.migrations = append(s.migrations, opMigrate{vmID: vmID, leftGB: vol})
	return true
}

// MigrationsInFlight returns the number of live migrations in progress.
func (s *Server) MigrationsInFlight() int { return len(s.migrations) }

// Migrating reports whether vmID has an in-flight migration.
func (s *Server) Migrating(vmID int) bool {
	for _, m := range s.migrations {
		if m.vmID == vmID {
			return true
		}
	}
	return false
}

// Tick advances the simulation by dt seconds and returns per-VM stats.
func (s *Server) Tick(dt float64) (map[int]TickStats, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("memsim: non-positive dt %g", dt)
	}
	stats := make(map[int]TickStats, len(s.vms))
	// The latency mixture is evaluated against the demand present at the
	// start of the tick: pages that must fault in during this tick are
	// the ones whose accesses pay the fault latency.
	for _, id := range s.order {
		vm := s.vms[id]
		var st TickStats
		pPA, pVA, pSoft, pHard := vm.accessMix()
		st.PPA, st.PVA, st.PSoft, st.PHard = pPA, pVA, pSoft, pHard
		st.MeanNs = pPA*s.cfg.PAAccessNs + pVA*s.cfg.VAAccessNs +
			pSoft*s.cfg.SoftFaultNs + pHard*s.cfg.FaultNs
		st.P99Ns = mixtureQuantile(0.99,
			[]float64{pPA, pVA, pSoft, pHard},
			[]float64{s.cfg.PAAccessNs, s.cfg.VAAccessNs, s.cfg.SoftFaultNs, s.cfg.FaultNs})
		stats[id] = st
	}

	s.stepExtends(dt)
	s.stepTrims(dt)
	s.stepMigrations(dt, stats)
	if err := s.stepFaults(dt, stats); err != nil {
		return nil, err
	}
	for _, id := range s.order {
		if err := s.vms[id].checkInvariants(); err != nil {
			return nil, err
		}
	}
	s.now += dt
	return stats, nil
}

func (s *Server) stepExtends(dt float64) {
	budget := s.cfg.ExtendBandwidthGBs * dt
	var rest []opExtend
	for _, op := range s.extends {
		if budget <= 0 {
			rest = append(rest, op)
			continue
		}
		amount := min2(min2(op.leftGB, budget), s.unallocGB)
		s.unallocGB -= amount
		s.poolGB += amount
		op.leftGB -= amount
		budget -= amount
		if op.leftGB > 1e-9 && s.unallocGB > 1e-9 {
			rest = append(rest, op)
		}
	}
	s.extends = rest
}

func (s *Server) stepTrims(dt float64) {
	budget := s.cfg.TrimBandwidthGBs * dt
	var rest []opTrim
	for _, op := range s.trims {
		vm := s.vms[op.vmID]
		if vm == nil {
			continue
		}
		if budget <= 0 {
			rest = append(rest, op)
			continue
		}
		amount := vm.trimCold(min2(op.leftGB, budget))
		op.leftGB -= amount
		budget -= amount
		if op.leftGB > 1e-9 && vm.Trimmable() > 1e-9 {
			rest = append(rest, op)
		}
	}
	s.trims = rest
}

func (s *Server) stepMigrations(dt float64, stats map[int]TickStats) {
	if len(s.migrations) == 0 {
		return
	}
	budget := s.cfg.MigrateBandwidthGBs * dt / float64(len(s.migrations))
	var rest []opMigrate
	for _, op := range s.migrations {
		vm := s.vms[op.vmID]
		if vm == nil {
			continue
		}
		op.leftGB -= budget
		if op.leftGB <= 0 {
			// Migration complete: the VM leaves, freeing its frames.
			s.RemoveVM(op.vmID)
			delete(stats, op.vmID)
			continue
		}
		rest = append(rest, op)
	}
	s.migrations = rest
}

// stepFaults services missing working-set pages subject to fault bandwidth
// and pool frames, evicting cold pages — and, if forced, stealing resident
// working-set pages — when the pool is exhausted. A VM's admission this
// tick is capped at its demand pending when the tick started: pages stolen
// mid-tick cannot be read back instantly (the write-out/read-back round
// trip spans ticks), which is what makes thrashing observable.
func (s *Server) stepFaults(dt float64, stats map[int]TickStats) error {
	faultBudget := s.cfg.FaultBandwidthGBs * dt
	evictBudget := s.cfg.EvictBandwidthGBs * dt

	// DMA-pinned ranges are backed eagerly and first: devices must never
	// hit an invalid translation (§3.2 guest enlightenments).
	for _, id := range s.order {
		vm := s.vms[id]
		want := vm.pinnedDemand()
		if want <= 1e-9 || faultBudget <= 1e-9 {
			continue
		}
		free := s.poolGB - s.PoolUsed()
		if free < want {
			free += s.makeRoom(want-free, &evictBudget, stats)
		}
		faultBudget -= vm.admitPinned(min2(min2(want, free), faultBudget))
	}

	allowance := make(map[int]float64, len(s.vms))
	for _, id := range s.order {
		allowance[id] = s.vms[id].Missing()
	}

	// Deterministic round-robin over VMs with pending demand.
	for iter := 0; iter < 64 && faultBudget > 1e-9; iter++ {
		var pending []int
		var totalMissing float64
		for _, id := range s.order {
			if m := min2(s.vms[id].Missing(), allowance[id]); m > 1e-9 {
				pending = append(pending, id)
				totalMissing += m
			}
		}
		if len(pending) == 0 {
			break
		}
		progressed := false
		for _, id := range pending {
			vm := s.vms[id]
			m := min2(vm.Missing(), allowance[id])
			want := min2(m, faultBudget*m/totalMissing+1e-12)
			if want <= 1e-9 {
				continue
			}
			free := s.poolGB - s.PoolUsed()
			if free < want {
				freed := s.makeRoom(want-free, &evictBudget, stats)
				free += freed
			}
			admit := min2(want, free)
			if admit <= 1e-9 {
				continue
			}
			admitted, fromStore := vm.admit(admit)
			faultBudget -= admitted
			allowance[id] -= admitted
			st := stats[id]
			st.FaultGB += fromStore
			stats[id] = st
			if admitted > 1e-9 {
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return nil
}

// makeRoom frees up to gb of pool frames through the hypervisor's default
// demand paging. Without the oversubscription agent's access tracking the
// hypervisor cannot tell cold pages from hot ones, so eviction is blind:
// it takes cold and working-set resident pages in proportion to their
// populations. Stolen working-set pages fault right back in — the paging
// storm the None policy suffers in Fig. 21 ("frequently pages out memory
// that is paged in later"). Coach's agent avoids this by trimming
// known-cold pages ahead of demand (StartTrim).
func (s *Server) makeRoom(gb float64, evictBudget *float64, stats map[int]TickStats) float64 {
	var totalCold, totalRes float64
	for _, id := range s.order {
		vm := s.vms[id]
		totalCold += vm.coldResident
		totalRes += vm.needResident
	}
	evictable := totalCold + totalRes
	if evictable <= 1e-9 || *evictBudget <= 1e-9 {
		return 0
	}
	want := min2(min2(gb, *evictBudget), evictable)
	var freed float64
	for _, id := range s.order {
		vm := s.vms[id]
		share := want * (vm.coldResident + vm.needResident) / evictable
		coldTake := share
		if vm.coldResident+vm.needResident > 0 {
			coldTake = share * vm.coldResident / (vm.coldResident + vm.needResident)
		}
		freed += vm.trimCold(coldTake)
		stolen := vm.stealResident(share - coldTake)
		if stolen > 0 {
			st := stats[id]
			st.StolenGB += stolen
			stats[id] = st
			freed += stolen
		}
	}
	*evictBudget -= freed
	return freed
}

// mixtureQuantile returns the q-quantile of a discrete latency mixture
// given parallel probability and latency slices in ascending latency
// order: the largest latency whose upper tail mass exceeds 1-q.
func mixtureQuantile(q float64, probs, lats []float64) float64 {
	tail := 1 - q
	var mass float64
	for i := len(probs) - 1; i > 0; i-- {
		mass += probs[i]
		if mass > tail {
			return lats[i]
		}
	}
	return lats[0]
}
