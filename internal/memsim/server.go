package memsim

import (
	"fmt"
	"sort"
)

// TickStats reports one VM's memory behaviour over one simulated tick.
type TickStats struct {
	// MeanNs is the expected access latency over the tick.
	MeanNs float64
	// P99Ns is the 99th-percentile access latency (mixture quantile).
	P99Ns float64
	// FaultGB is the memory hard-faulted in from the backing store this
	// tick.
	FaultGB float64
	// StolenGB is working-set memory forcibly evicted from this VM due to
	// pool pressure (thrashing).
	StolenGB float64
	// PPA, PVA, PSoft, PHard are the access-mix probabilities: PA hit,
	// resident VA hit, demand-zero soft fault, backing-store hard fault.
	PPA, PVA, PSoft, PHard float64
}

// PFault returns the total faulting probability (soft + hard).
func (t TickStats) PFault() float64 { return t.PSoft + t.PHard }

// Slowdown returns the mean-latency slowdown relative to a fully
// PA-backed VM.
func (t TickStats) Slowdown(cfg Config) float64 {
	if cfg.PAAccessNs <= 0 {
		return 1
	}
	return t.MeanNs / cfg.PAAccessNs
}

// TickFrame holds one tick's per-VM stats in the server's deterministic
// (ascending VM id) order at the start of the tick. The frame and its
// backing arrays are owned by the server and reused on the next Tick:
// callers must copy anything they keep. Replacing the former per-tick
// map[int]TickStats, it makes ticking allocation-free in steady state and
// gives every consumer (agent, fleet simulator) a fixed iteration order,
// so float accumulations over it are bit-reproducible.
type TickFrame struct {
	ids      []int
	stats    []TickStats
	departed []bool
}

// Len returns the number of VMs present at the start of the tick.
func (f *TickFrame) Len() int { return len(f.ids) }

// ID returns the VM id at frame position i.
func (f *TickFrame) ID(i int) int { return f.ids[i] }

// At returns the stats at frame position i. For a VM that departed
// mid-tick (completed live migration) the entry still holds the latency
// mixture computed at tick start; check Departed.
func (f *TickFrame) At(i int) TickStats { return f.stats[i] }

// Departed reports whether the VM at position i left the server mid-tick
// (its live migration completed).
func (f *TickFrame) Departed(i int) bool { return f.departed[i] }

// Get returns the stats for VM id, or the zero TickStats when the VM was
// absent at the start of the tick or departed mid-tick — matching the
// former map semantics, where such lookups read as the zero value.
func (f *TickFrame) Get(id int) TickStats {
	st, _ := f.Lookup(id)
	return st
}

// Lookup is Get with an explicit presence report.
func (f *TickFrame) Lookup(id int) (TickStats, bool) {
	i := f.index(id)
	if i < 0 || f.departed[i] {
		return TickStats{}, false
	}
	return f.stats[i], true
}

// index returns id's frame position, or -1. ids are sorted ascending.
func (f *TickFrame) index(id int) int {
	i := sort.SearchInts(f.ids, id)
	if i >= len(f.ids) || f.ids[i] != id {
		return -1
	}
	return i
}

// reset re-points the frame at the given VM order, zeroing stats in place.
func (f *TickFrame) reset(order []int) {
	n := len(order)
	if cap(f.ids) < n {
		f.ids = make([]int, n)
		f.stats = make([]TickStats, n)
		f.departed = make([]bool, n)
	}
	f.ids = f.ids[:n]
	f.stats = f.stats[:n]
	f.departed = f.departed[:n]
	copy(f.ids, order)
	for i := range f.stats {
		f.stats[i] = TickStats{}
		f.departed[i] = false
	}
}

// depart marks id as gone mid-tick.
func (f *TickFrame) depart(id int) {
	if i := f.index(id); i >= 0 {
		f.departed[i] = true
	}
}

// Totals are the server's cumulative data-plane volumes since creation:
// what the mitigation mechanisms moved and what the paging machinery paid.
// The fleet simulator sums them across servers into per-policy metrics.
type Totals struct {
	// TrimmedGB is cold memory written to the backing store by trim
	// operations (agent-initiated, StartTrim).
	TrimmedGB float64
	// ExtendedGB is unallocated server memory added to the pool.
	ExtendedGB float64
	// MigratedGB is the volume copied by completed live migrations.
	MigratedGB float64
	// HardFaultGB is memory paged in from the backing store.
	HardFaultGB float64
	// SoftFaultGB is demand-zero memory materialized on first touch
	// (including eagerly backed DMA-pinned ranges).
	SoftFaultGB float64
	// StolenGB is working-set memory blindly evicted under pool pressure
	// (the thrashing the None policy suffers).
	StolenGB float64
	// EvictedColdGB is cold memory blindly evicted under pool pressure
	// (hypervisor demand paging, not agent trims).
	EvictedColdGB float64
}

// Add returns the element-wise sum of two Totals.
func (t Totals) Add(o Totals) Totals {
	t.TrimmedGB += o.TrimmedGB
	t.ExtendedGB += o.ExtendedGB
	t.MigratedGB += o.MigratedGB
	t.HardFaultGB += o.HardFaultGB
	t.SoftFaultGB += o.SoftFaultGB
	t.StolenGB += o.StolenGB
	t.EvictedColdGB += o.EvictedColdGB
	return t
}

// FaultGB returns the total faulted volume (soft + hard).
func (t Totals) FaultGB() float64 { return t.HardFaultGB + t.SoftFaultGB }

// SoftFaultFrac returns the share of faulted volume served by demand-zero
// soft faults rather than backing-store reads (0 when nothing faulted).
func (t Totals) SoftFaultFrac() float64 {
	if f := t.FaultGB(); f > 0 {
		return t.SoftFaultGB / f
	}
	return 0
}

// opTrim is an in-flight trim of one VM's cold pages.
type opTrim struct {
	vmID   int
	leftGB float64
}

// opExtend is an in-flight extension of the oversubscribed pool from the
// server's unallocated memory.
type opExtend struct {
	leftGB float64
}

// opMigrate is an in-flight live migration: the VM's memory (resident plus
// paged-in cold memory, per §3.2 "Live migration") is copied during
// pre-copy; on completion the VM leaves the server and its frames free.
type opMigrate struct {
	vmID    int
	leftGB  float64
	totalGB float64
}

// Server simulates one host's oversubscribed memory pool and its VMs.
type Server struct {
	cfg Config

	poolGB    float64 // physical frames backing VA regions
	unallocGB float64 // spare server memory available to Extend

	// initPoolGB/initUnallocGB remember the boot-time sizing so Crash can
	// undo pool extensions: a rebooted host comes back with its original
	// memory split, not with whatever Extend had claimed.
	initPoolGB    float64
	initUnallocGB float64

	vms   map[int]*VMMem
	order []int // sorted VM ids for deterministic iteration

	// residentGB tracks the pool frames holding resident VA pages,
	// maintained incrementally at every admit/trim/steal/migrate so
	// PoolUsed is O(1) instead of a per-call sum over VMs (which made
	// stepFaults quadratic in the VM count).
	residentGB float64

	totals Totals

	trims      []opTrim
	extends    []opExtend
	migrations []opMigrate

	frame     TickFrame
	allowance []float64 // stepFaults scratch, parallel to frame
	pending   []int     // stepFaults scratch: frame positions with demand

	// quiet reports whether the last full Tick was a complete no-op: no
	// in-flight operations remained, no memory moved, and no working-set
	// or pinned demand was left unserved. A quiet server that nothing
	// mutates from outside would reproduce the exact same tick forever,
	// which is what lets callers skip it (SkipTick) and reuse its frame.
	quiet bool

	ticks int64 // full Tick passes executed
	skips int64 // SkipTick passes executed

	now float64 // seconds
}

// NewServer creates a server whose oversubscribed pool holds poolGB of
// physical memory, with unallocGB spare for Extend mitigations.
func NewServer(cfg Config, poolGB, unallocGB float64) *Server {
	return &Server{
		cfg: cfg, poolGB: poolGB, unallocGB: unallocGB,
		initPoolGB: poolGB, initUnallocGB: unallocGB,
		vms: make(map[int]*VMMem),
	}
}

// Config returns the server's hardware parameters.
func (s *Server) Config() Config { return s.cfg }

// Now returns the simulated time in seconds.
func (s *Server) Now() float64 { return s.now }

// PoolGB returns the oversubscribed pool's physical size.
func (s *Server) PoolGB() float64 { return s.poolGB }

// PoolUsed returns the pool frames currently holding resident VA pages.
// The value is maintained incrementally (O(1)); it tracks the exact
// per-VM sum to within float-summation noise.
func (s *Server) PoolUsed() float64 {
	if s.residentGB < 0 {
		return 0
	}
	return s.residentGB
}

// poolUsedNaive recomputes pool usage from the per-VM populations in
// deterministic order; tests pin the incremental counter against it.
func (s *Server) poolUsedNaive() float64 {
	var used float64
	for _, id := range s.order {
		used += s.vms[id].ResidentVA()
	}
	return used
}

// PoolFree returns the available oversubscribed memory — the quantity
// plotted in Fig. 21a.
func (s *Server) PoolFree() float64 {
	f := s.poolGB - s.PoolUsed()
	if f < 0 {
		return 0
	}
	return f
}

// UnallocatedGB returns the spare memory Extend can still claim.
func (s *Server) UnallocatedGB() float64 { return s.unallocGB }

// Totals returns the cumulative data-plane volumes since creation.
func (s *Server) Totals() Totals { return s.totals }

// AddVM registers a VM. Its working set starts at zero; drive it with
// VM(id).SetWSS.
func (s *Server) AddVM(vm *VMMem) error {
	if _, dup := s.vms[vm.ID]; dup {
		return fmt.Errorf("memsim: vm %d already on server", vm.ID)
	}
	s.vms[vm.ID] = vm
	s.order = append(s.order, vm.ID)
	sort.Ints(s.order)
	s.residentGB += vm.ResidentVA()
	return nil
}

// RemoveVM detaches a VM, freeing its pool frames. Returns false if absent.
func (s *Server) RemoveVM(id int) bool {
	vm, ok := s.vms[id]
	if !ok {
		return false
	}
	s.residentGB -= vm.ResidentVA()
	delete(s.vms, id)
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if len(s.vms) == 0 {
		// Cancel residual float drift from the incremental updates.
		s.residentGB = 0
	}
	return true
}

// Crash models a host failure followed by an immediate reboot: every
// VM's memory is lost, in-flight trim/extend/migrate operations abort,
// and the machine comes back with its boot-time pool/unallocated split
// (pool extensions do not survive a reboot). Cumulative totals and the
// tick/skip counters persist — they record history, not machine state —
// but the simulated clock keeps running and the stats frame resets to
// empty. The server is left non-quiet so the next data-plane pass runs
// a full tick instead of replaying a stale cached frame.
func (s *Server) Crash() {
	for id := range s.vms {
		delete(s.vms, id)
	}
	s.order = s.order[:0]
	s.residentGB = 0
	s.trims = s.trims[:0]
	s.extends = s.extends[:0]
	s.migrations = s.migrations[:0]
	s.poolGB = s.initPoolGB
	s.unallocGB = s.initUnallocGB
	s.frame.reset(nil)
	s.quiet = false
}

// VM returns the memory state of a VM (nil when absent).
func (s *Server) VM(id int) *VMMem { return s.vms[id] }

// AdmitWarm makes up to gb of the VM's pending working-set demand
// resident immediately, clamped to free pool frames, without fault
// accounting: the pages arrived with a live migration's pre-copy stream,
// so their transfer cost was already charged as MigratedGB at the source
// and the target pays neither fault bandwidth nor fault latency for
// them. Returns the GB made resident. The un-admitted remainder (dirtied
// after the final pre-copy pass, or beyond the free pool) demand-faults
// like any cold arrival.
func (s *Server) AdmitWarm(id int, gb float64) float64 {
	vm, ok := s.vms[id]
	if !ok || gb <= 0 {
		return 0
	}
	free := s.poolGB - s.residentGB
	if free <= 0 {
		return 0
	}
	admitted, _ := vm.admit(min2(gb, free))
	s.residentGB += admitted
	return admitted
}

// VMs returns the ids of resident VMs in deterministic order.
func (s *Server) VMs() []int {
	out := make([]int, len(s.order))
	copy(out, s.order)
	return out
}

// StartTrim schedules trimming up to gb of the VM's cold pages at the trim
// bandwidth (§4.5: 1.1 GB/s).
func (s *Server) StartTrim(vmID int, gb float64) {
	if gb > 0 {
		s.trims = append(s.trims, opTrim{vmID: vmID, leftGB: gb})
	}
}

// StartExtend schedules growing the pool by up to gb from unallocated
// server memory at the extend bandwidth (§4.5: 15.7 GB/s).
func (s *Server) StartExtend(gb float64) {
	if gb > 0 {
		s.extends = append(s.extends, opExtend{leftGB: gb})
	}
}

// StartMigrate schedules live-migrating the VM away. The copied volume is
// the VM's working set plus its trimmed cold memory, which must be paged
// in during pre-copy (§3.2).
func (s *Server) StartMigrate(vmID int) bool {
	vm, ok := s.vms[vmID]
	if !ok {
		return false
	}
	for _, m := range s.migrations {
		if m.vmID == vmID {
			return false // already migrating
		}
	}
	vol := vm.PAGB + vm.ResidentVA() + vm.Missing() + vm.coldStore
	s.migrations = append(s.migrations, opMigrate{vmID: vmID, leftGB: vol, totalGB: vol})
	return true
}

// MigrationsInFlight returns the number of live migrations in progress.
func (s *Server) MigrationsInFlight() int { return len(s.migrations) }

// OpsInFlight returns the number of in-flight trim, extend and migration
// operations. A server with pending operations must keep running full
// ticks: each of them moves memory on the next Tick.
func (s *Server) OpsInFlight() int {
	return len(s.trims) + len(s.extends) + len(s.migrations)
}

// Quiet reports whether the last full Tick was a complete no-op (see the
// quiet field). It says nothing about mutations made after that tick
// (AddVM, SetWSS, Start*, AdmitWarm, ...): callers that skip ticks must
// invalidate their own skip decision on such mutations, which is what
// core.DataPlane's dirty-server tracking does.
func (s *Server) Quiet() bool { return s.quiet }

// TickCount returns the number of full Tick passes executed — the test
// hook the sparse-ticking coverage counts (a provably idle server must
// receive zero full ticks while skipped).
func (s *Server) TickCount() int64 { return s.ticks }

// SkipCount returns the number of SkipTick passes executed.
func (s *Server) SkipCount() int64 { return s.skips }

// Frame returns the server's tick-stats frame as of the last full Tick
// (empty before the first). Like Tick's return value it is owned by the
// server and overwritten by the next full Tick.
func (s *Server) Frame() *TickFrame { return &s.frame }

// SkipTick is the sparse tick entry point: it advances simulated time
// without re-running the paging and mitigation machinery, returning the
// cached frame of the last full Tick. It is only valid when that tick
// was a complete no-op (Quiet() with OpsInFlight() == 0) and nothing
// mutated the server since — an idle server re-ticked for dt would
// reproduce exactly that frame, so skipping is bit-identical to ticking.
func (s *Server) SkipTick(dt float64) *TickFrame {
	s.now += dt
	s.skips++
	return &s.frame
}

// settled reports whether every VM's working-set and pinned demand is
// fully served (below the same 1e-9 threshold the fault path uses, so a
// residue the fault loop would ignore does not keep the server busy).
func (s *Server) settled() bool {
	for _, id := range s.order {
		vm := s.vms[id]
		if vm.Missing() > 1e-9 || vm.pinnedDemand() > 1e-9 {
			return false
		}
	}
	return true
}

// Migrating reports whether vmID has an in-flight migration.
func (s *Server) Migrating(vmID int) bool {
	for _, m := range s.migrations {
		if m.vmID == vmID {
			return true
		}
	}
	return false
}

// Tick advances the simulation by dt seconds and returns the per-VM stats
// frame. The frame is owned by the server and overwritten by the next
// Tick; copy entries that must outlive it.
func (s *Server) Tick(dt float64) (*TickFrame, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("memsim: non-positive dt %g", dt)
	}
	totalsBefore := s.totals
	f := &s.frame
	f.reset(s.order)
	// The latency mixture is evaluated against the demand present at the
	// start of the tick: pages that must fault in during this tick are
	// the ones whose accesses pay the fault latency.
	for i, id := range f.ids {
		vm := s.vms[id]
		st := &f.stats[i]
		pPA, pVA, pSoft, pHard := vm.accessMix()
		st.PPA, st.PVA, st.PSoft, st.PHard = pPA, pVA, pSoft, pHard
		st.MeanNs = pPA*s.cfg.PAAccessNs + pVA*s.cfg.VAAccessNs +
			pSoft*s.cfg.SoftFaultNs + pHard*s.cfg.FaultNs
		st.P99Ns = mixtureQuantile(0.99,
			[4]float64{pPA, pVA, pSoft, pHard},
			[4]float64{s.cfg.PAAccessNs, s.cfg.VAAccessNs, s.cfg.SoftFaultNs, s.cfg.FaultNs})
	}

	s.stepExtends(dt)
	s.stepTrims(dt)
	s.stepMigrations(dt, f)
	if err := s.stepFaults(dt, f); err != nil {
		return nil, err
	}
	for _, id := range s.order {
		if err := s.vms[id].checkInvariants(); err != nil {
			return nil, err
		}
	}
	s.now += dt
	s.ticks++
	// No memory moved (totals unchanged also implies every frame FaultGB/
	// StolenGB entry is zero), nothing is in flight, and no demand is
	// pending: re-running this tick would change nothing.
	s.quiet = s.totals == totalsBefore && s.OpsInFlight() == 0 && s.settled()
	return f, nil
}

func (s *Server) stepExtends(dt float64) {
	budget := s.cfg.ExtendBandwidthGBs * dt
	rest := s.extends[:0]
	for _, op := range s.extends {
		if budget <= 0 {
			rest = append(rest, op)
			continue
		}
		amount := min2(min2(op.leftGB, budget), s.unallocGB)
		s.unallocGB -= amount
		s.poolGB += amount
		s.totals.ExtendedGB += amount
		op.leftGB -= amount
		budget -= amount
		if op.leftGB > 1e-9 && s.unallocGB > 1e-9 {
			rest = append(rest, op)
		}
	}
	s.extends = rest
}

func (s *Server) stepTrims(dt float64) {
	budget := s.cfg.TrimBandwidthGBs * dt
	rest := s.trims[:0]
	for _, op := range s.trims {
		vm := s.vms[op.vmID]
		if vm == nil {
			continue
		}
		if budget <= 0 {
			rest = append(rest, op)
			continue
		}
		amount := vm.trimCold(min2(op.leftGB, budget))
		s.residentGB -= amount
		s.totals.TrimmedGB += amount
		op.leftGB -= amount
		budget -= amount
		if op.leftGB > 1e-9 && vm.Trimmable() > 1e-9 {
			rest = append(rest, op)
		}
	}
	s.trims = rest
}

func (s *Server) stepMigrations(dt float64, f *TickFrame) {
	if len(s.migrations) == 0 {
		return
	}
	budget := s.cfg.MigrateBandwidthGBs * dt / float64(len(s.migrations))
	rest := s.migrations[:0]
	for _, op := range s.migrations {
		vm := s.vms[op.vmID]
		if vm == nil {
			continue
		}
		op.leftGB -= budget
		if op.leftGB <= 0 {
			// Migration complete: the VM leaves, freeing its frames.
			s.totals.MigratedGB += op.totalGB
			s.RemoveVM(op.vmID)
			f.depart(op.vmID)
			continue
		}
		rest = append(rest, op)
	}
	s.migrations = rest
}

// stepFaults services missing working-set pages subject to fault bandwidth
// and pool frames, evicting cold pages — and, if forced, stealing resident
// working-set pages — when the pool is exhausted. A VM's admission this
// tick is capped at its demand pending when the tick started: pages stolen
// mid-tick cannot be read back instantly (the write-out/read-back round
// trip spans ticks), which is what makes thrashing observable.
func (s *Server) stepFaults(dt float64, f *TickFrame) error {
	faultBudget := s.cfg.FaultBandwidthGBs * dt
	evictBudget := s.cfg.EvictBandwidthGBs * dt

	// DMA-pinned ranges are backed eagerly and first: devices must never
	// hit an invalid translation (§3.2 guest enlightenments).
	for _, id := range f.ids {
		vm := s.vms[id]
		if vm == nil {
			continue // departed mid-tick
		}
		want := vm.pinnedDemand()
		if want <= 1e-9 || faultBudget <= 1e-9 {
			continue
		}
		free := s.poolGB - s.residentGB
		if free < want {
			free += s.makeRoom(want-free, &evictBudget, f)
		}
		got := vm.admitPinned(min2(min2(want, free), faultBudget))
		s.residentGB += got
		s.totals.SoftFaultGB += got
		faultBudget -= got
	}

	if cap(s.allowance) < len(f.ids) {
		s.allowance = make([]float64, len(f.ids))
	}
	allowance := s.allowance[:len(f.ids)]
	for i, id := range f.ids {
		if vm := s.vms[id]; vm != nil {
			allowance[i] = vm.Missing()
		} else {
			allowance[i] = 0
		}
	}

	// Deterministic round-robin over VMs with pending demand.
	pending := s.pending[:0]
	for iter := 0; iter < 64 && faultBudget > 1e-9; iter++ {
		pending = pending[:0]
		var totalMissing float64
		for i, id := range f.ids {
			vm := s.vms[id]
			if vm == nil {
				continue
			}
			if m := min2(vm.Missing(), allowance[i]); m > 1e-9 {
				pending = append(pending, i)
				totalMissing += m
			}
		}
		if len(pending) == 0 {
			break
		}
		progressed := false
		for _, i := range pending {
			vm := s.vms[f.ids[i]]
			m := min2(vm.Missing(), allowance[i])
			want := min2(m, faultBudget*m/totalMissing+1e-12)
			if want <= 1e-9 {
				continue
			}
			free := s.poolGB - s.residentGB
			if free < want {
				freed := s.makeRoom(want-free, &evictBudget, f)
				free += freed
			}
			admit := min2(want, free)
			if admit <= 1e-9 {
				continue
			}
			admitted, fromStore := vm.admit(admit)
			s.residentGB += admitted
			s.totals.HardFaultGB += fromStore
			s.totals.SoftFaultGB += admitted - fromStore
			faultBudget -= admitted
			allowance[i] -= admitted
			f.stats[i].FaultGB += fromStore
			if admitted > 1e-9 {
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	s.pending = pending
	return nil
}

// makeRoom frees up to gb of pool frames through the hypervisor's default
// demand paging. Without the oversubscription agent's access tracking the
// hypervisor cannot tell cold pages from hot ones, so eviction is blind:
// it takes cold and working-set resident pages in proportion to their
// populations. Stolen working-set pages fault right back in — the paging
// storm the None policy suffers in Fig. 21 ("frequently pages out memory
// that is paged in later"). Coach's agent avoids this by trimming
// known-cold pages ahead of demand (StartTrim).
func (s *Server) makeRoom(gb float64, evictBudget *float64, f *TickFrame) float64 {
	var totalCold, totalRes float64
	for _, id := range s.order {
		vm := s.vms[id]
		totalCold += vm.coldResident
		totalRes += vm.needResident
	}
	evictable := totalCold + totalRes
	if evictable <= 1e-9 || *evictBudget <= 1e-9 {
		return 0
	}
	want := min2(min2(gb, *evictBudget), evictable)
	var freed float64
	for i, id := range f.ids {
		vm := s.vms[id]
		if vm == nil {
			continue // departed mid-tick
		}
		share := want * (vm.coldResident + vm.needResident) / evictable
		coldTake := share
		if vm.coldResident+vm.needResident > 0 {
			coldTake = share * vm.coldResident / (vm.coldResident + vm.needResident)
		}
		trimmed := vm.trimCold(coldTake)
		s.totals.EvictedColdGB += trimmed
		freed += trimmed
		stolen := vm.stealResident(share - coldTake)
		if stolen > 0 {
			f.stats[i].StolenGB += stolen
			s.totals.StolenGB += stolen
			freed += stolen
		}
	}
	s.residentGB -= freed
	*evictBudget -= freed
	return freed
}

// mixtureQuantile returns the q-quantile of a discrete latency mixture
// given parallel probability and latency arrays in ascending latency
// order: the largest latency whose upper tail mass exceeds 1-q. The
// fixed-size arrays keep the per-VM tick path allocation-free.
func mixtureQuantile(q float64, probs, lats [4]float64) float64 {
	tail := 1 - q
	var mass float64
	for i := len(probs) - 1; i > 0; i-- {
		mass += probs[i]
		if mass > tail {
			return lats[i]
		}
	}
	return lats[0]
}
