package mlforest

import "sort"

// dataset is the feature-major (columnar) view of one training matrix,
// built once and shared read-only across every tree builder: cols[f][r]
// is feature f of row r and sortedRows[f] holds the rows argsorted by
// feature f. Targets live outside the dataset — the long-term predictor
// trains percentile and max forests on one feature matrix with different
// target vectors (Matrix/TrainOnMatrix), so the transpose and argsort are
// paid once per matrix, not once per forest.
//
// The pre-sorted index columns are the heart of the training engine
// (docs/DESIGN.md §8): the seed engine re-sorted (value, target) pairs at
// every node — O(m log m) per tried feature per node — while here each
// tree derives its bootstrap's sorted columns from sortedRows by a
// counting pass in O(n) per feature and every node afterwards is a linear
// sweep plus a stable in-place partition. No sort ever runs inside tree
// growth.
type dataset struct {
	cols       [][]float64
	sortedRows [][]int32
	nFeat      int
	n          int
}

// newDataset builds the columnar matrix and the per-feature argsort from
// row-major feature vectors (shape already validated by the caller).
// Column and index storage are carved from one flat backing allocation
// each, so the dataset costs 2 large allocations plus headers regardless
// of feature count.
func newDataset(rows [][]float64) *dataset {
	n := len(rows)
	nFeat := len(rows[0])
	ds := &dataset{nFeat: nFeat, n: n}

	colFlat := make([]float64, n*nFeat)
	ds.cols = make([][]float64, nFeat)
	for f := range ds.cols {
		ds.cols[f] = colFlat[f*n : (f+1)*n : (f+1)*n]
	}
	for r := range rows {
		for f, v := range rows[r] {
			ds.cols[f][r] = v
		}
	}

	idxFlat := make([]int32, n*nFeat)
	ds.sortedRows = make([][]int32, nFeat)
	for f := range ds.sortedRows {
		col := idxFlat[f*n : (f+1)*n : (f+1)*n]
		for r := range col {
			col[r] = int32(r)
		}
		vals := ds.cols[f]
		sort.Slice(col, func(a, b int) bool { return vals[col[a]] < vals[col[b]] })
		ds.sortedRows[f] = col
	}
	return ds
}
