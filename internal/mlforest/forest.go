package mlforest

import (
	"fmt"
	"math/rand"
)

// ForestConfig configures a bagged random forest.
type ForestConfig struct {
	// Trees is the ensemble size.
	Trees int
	// Tree bounds each member tree.
	Tree TreeConfig
	// Seed makes training deterministic.
	Seed int64
}

// DefaultForestConfig mirrors a small production-style regressor: 40 trees,
// depth 12, sqrt-ish feature sampling.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{
		Trees: 40,
		Tree:  TreeConfig{MaxDepth: 12, MinLeaf: 2, FeatureFrac: 0.6},
		Seed:  1,
	}
}

// Forest is a trained random forest regressor.
type Forest struct {
	trees    []*Tree
	nFeat    int
	nSamples int
}

// Train fits a forest with bootstrap bagging. Each tree sees a bootstrap
// resample of the training set and random feature subsets per split.
func Train(samples []Sample, cfg ForestConfig) (*Forest, error) {
	if err := validateSamples(samples); err != nil {
		return nil, err
	}
	if cfg.Trees < 1 {
		return nil, fmt.Errorf("mlforest: ForestConfig.Trees %d < 1", cfg.Trees)
	}
	if cfg.Tree.MinLeaf < 1 {
		cfg.Tree.MinLeaf = 1
	}
	if cfg.Tree.FeatureFrac <= 0 || cfg.Tree.FeatureFrac > 1 {
		cfg.Tree.FeatureFrac = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{nFeat: len(samples[0].Features), nSamples: len(samples)}
	n := len(samples)
	for t := 0; t < cfg.Trees; t++ {
		boot := make([]int, n)
		for i := range boot {
			boot[i] = rng.Intn(n)
		}
		f.trees = append(f.trees, growTree(samples, boot, cfg.Tree, rng))
	}
	return f, nil
}

// Predict returns the ensemble mean prediction.
func (f *Forest) Predict(features []float64) float64 {
	if len(features) != f.nFeat {
		return 0
	}
	var sum float64
	for _, t := range f.trees {
		sum += t.Predict(features)
	}
	return sum / float64(len(f.trees))
}

// PredictBatch predicts every feature row in one ensemble pass, writing
// into out when it has matching length (allocating otherwise) and returning
// the slice used. The result is bit-identical to calling Predict per row —
// each row's per-tree contributions accumulate in the same tree order and
// the final division is the same operation — but the tree loop is the outer
// loop, so one tree's node array stays hot in cache across the whole batch
// and the per-tree dispatch overhead is amortized over all rows. Rows whose
// length differs from the trained feature count predict 0, as in Predict.
func (f *Forest) PredictBatch(rows [][]float64, out []float64) []float64 {
	if len(out) != len(rows) {
		out = make([]float64, len(rows))
	} else {
		for i := range out {
			out[i] = 0
		}
	}
	valid := true
	for _, r := range rows {
		if len(r) != f.nFeat {
			valid = false
			break
		}
	}
	if !valid {
		// Rare slow path: keep the hot loop free of per-row length checks.
		for i, r := range rows {
			out[i] = f.Predict(r)
		}
		return out
	}
	for _, t := range f.trees {
		for i, r := range rows {
			out[i] += t.Predict(r)
		}
	}
	n := float64(len(f.trees))
	for i := range out {
		out[i] /= n
	}
	return out
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// NumFeatures returns the feature dimensionality the forest was trained on.
func (f *Forest) NumFeatures() int { return f.nFeat }

// FeatureImportance returns per-feature total variance reduction, normalized
// to sum to 1 (all zeros when the forest never split).
func (f *Forest) FeatureImportance() []float64 {
	imp := make([]float64, f.nFeat)
	for _, t := range f.trees {
		for i, v := range t.importance {
			imp[i] += v
		}
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// MemoryBytes estimates the resident size of the model (nodes dominate),
// used by the §4.5 overhead experiment.
func (f *Forest) MemoryBytes() int {
	var nodes int
	for _, t := range f.trees {
		nodes += len(t.nodes)
	}
	const nodeBytes = 8 + 8 + 4 + 4 + 8 // feature, threshold, children, value
	return nodes * nodeBytes
}

// MSE returns the mean squared error of the forest on a sample set.
func (f *Forest) MSE(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		d := f.Predict(s.Features) - s.Target
		sum += d * d
	}
	return sum / float64(len(samples))
}
